//! Cross-crate correctness: every index in the workspace must agree
//! with the materialized transitive closure on every vertex pair, for
//! every generator family.

use hoplite::baselines::twohop::TwoHopConfig;
use hoplite::baselines::{
    BfsOnline, BidirOnline, ChainIndex, DfsOnline, DualLabeling, FullTc, Grail, IntervalIndex,
    KReach, PathTree, PrunedLandmark, Pwah8, Scarab, TfLabel, TwoHop,
};
use hoplite::core::{DistributionLabeling, DlConfig, HierarchicalLabeling, HlConfig, ReachIndex};
use hoplite::graph::{gen, Dag, TransitiveClosure};

/// Builds one of every index over `dag`.
fn all_indexes(dag: &Dag, seed: u64) -> Vec<Box<dyn ReachIndex>> {
    vec![
        Box::new(DistributionLabeling::build(dag, &DlConfig::default())),
        Box::new(HierarchicalLabeling::build(
            dag,
            &HlConfig {
                core_size_limit: 16,
                ..HlConfig::default()
            },
        )),
        Box::new(Grail::build(dag, 5, seed)),
        Box::new(IntervalIndex::build(dag, u64::MAX).expect("no budget")),
        Box::new(PathTree::build(dag, u64::MAX).expect("no budget")),
        Box::new(Pwah8::build(dag, u64::MAX).expect("no budget")),
        Box::new(KReach::build(dag, u64::MAX).expect("no budget")),
        Box::new(TwoHop::build(dag, &TwoHopConfig::default()).expect("no budget")),
        Box::new(TfLabel::build(dag, 12)),
        Box::new(PrunedLandmark::build(dag)),
        Box::new(
            Scarab::build(dag, 2, "GL*", |bb| Ok(Grail::build(bb, 5, seed))).expect("inner ok"),
        ),
        Box::new(
            Scarab::build(dag, 2, "PT*", |bb| PathTree::build(bb, u64::MAX)).expect("inner ok"),
        ),
        Box::new(BfsOnline::build(dag)),
        Box::new(DfsOnline::build(dag)),
        Box::new(BidirOnline::build(dag)),
        Box::new(FullTc::build(dag, u64::MAX).expect("no budget")),
        Box::new(DualLabeling::build(dag, u64::MAX).expect("no budget")),
        Box::new(ChainIndex::build(dag, u64::MAX).expect("no budget")),
        Box::new(ChainIndex::build_min_cover(dag, u64::MAX).expect("no budget")),
    ]
}

fn check_all(dag: &Dag, seed: u64) {
    let tc = TransitiveClosure::build(dag);
    let n = dag.num_vertices() as u32;
    for idx in all_indexes(dag, seed) {
        for u in 0..n {
            for v in 0..n {
                assert_eq!(
                    idx.query(u, v),
                    tc.reaches(u, v),
                    "{} disagrees with TC at ({u},{v}), seed {seed}",
                    idx.name()
                );
            }
        }
    }
}

#[test]
fn all_indexes_on_random_dags() {
    for seed in 0..4 {
        check_all(&gen::random_dag(70, 200, seed), seed);
    }
}

#[test]
fn all_indexes_on_tree_like_dags() {
    for seed in 0..3 {
        check_all(&gen::tree_plus_dag(80, 24, seed), seed);
    }
}

#[test]
fn all_indexes_on_power_law_dags() {
    for seed in 0..3 {
        check_all(&gen::power_law_dag(80, 240, seed), seed);
    }
}

#[test]
fn all_indexes_on_layered_dags() {
    for seed in 0..3 {
        check_all(&gen::layered_dag(80, 6, 200, seed), seed);
    }
}

#[test]
fn all_indexes_on_forest_dags() {
    for seed in 0..3 {
        check_all(&gen::forest_dag(80, 50, seed), seed);
    }
}

#[test]
fn all_indexes_on_grid() {
    check_all(&gen::grid_dag(7, 9), 0);
}

#[test]
fn all_indexes_on_degenerate_graphs() {
    // Edgeless and single-vertex graphs: every index must degrade
    // gracefully to the identity relation.
    for dag in [
        Dag::from_edges(1, &[]).unwrap(),
        Dag::from_edges(9, &[]).unwrap(),
        Dag::from_edges(2, &[(0, 1)]).unwrap(),
    ] {
        check_all(&dag, 0);
    }
}

#[test]
fn all_indexes_on_long_path() {
    // Deep DAG: exercises recursion-free traversals and interval
    // chains. 300 vertices keeps the all-pairs check cheap.
    let n = 300;
    let edges: Vec<_> = (0..n as u32 - 1).map(|i| (i, i + 1)).collect();
    check_all(&Dag::from_edges(n, &edges).unwrap(), 0);
}

#[test]
fn index_size_reporting_is_consistent() {
    // Sizes must be positive for real indexes and zero for online
    // search; the oracle sizes must count every label entry.
    let dag = gen::random_dag(60, 170, 9);
    let dl = DistributionLabeling::build(&dag, &DlConfig::default());
    assert!(dl.size_in_integers() >= dl.labeling().total_entries());
    assert_eq!(BfsOnline::build(&dag).size_in_integers(), 0);
    let tc = FullTc::build(&dag, u64::MAX).unwrap();
    assert!(tc.size_in_integers() > 0);
}
