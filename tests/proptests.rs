//! Property-based tests over randomized DAGs (proptest).
//!
//! Strategy: an arbitrary edge set over `n ≤ 40` vertices is forced
//! acyclic by orienting every edge from the smaller to the larger id;
//! vertex ids are *not* permuted here, which is fine because the crates
//! under test never assume id order (the unit suites cover permuted
//! generators).

use proptest::prelude::*;

use hoplite::baselines::{
    ChainIndex, DualLabeling, Grail, IntervalIndex, KReach, PathTree, Pwah8, TfLabel,
};
use hoplite::core::{
    sorted_intersect, DistributionLabeling, DlConfig, HierarchicalLabeling, HlConfig, OrderKind,
    ReachIndex,
};
use hoplite::graph::{scc, traversal, Dag, DiGraph, TransitiveClosure};

/// An arbitrary DAG with up to `max_n` vertices and `max_m` candidate
/// edges.
fn arb_dag(max_n: u32, max_m: usize) -> impl Strategy<Value = Dag> {
    (2..=max_n).prop_flat_map(move |n| {
        proptest::collection::vec((0..n, 0..n), 0..max_m).prop_map(move |pairs| {
            let edges: Vec<(u32, u32)> = pairs
                .into_iter()
                .filter(|&(a, b)| a != b)
                .map(|(a, b)| if a < b { (a, b) } else { (b, a) })
                .collect();
            Dag::from_edges(n as usize, &edges).expect("forward edges are acyclic")
        })
    })
}

/// An arbitrary digraph (cycles allowed).
fn arb_digraph(max_n: u32, max_m: usize) -> impl Strategy<Value = DiGraph> {
    (2..=max_n).prop_flat_map(move |n| {
        proptest::collection::vec((0..n, 0..n), 0..max_m).prop_map(move |pairs| {
            DiGraph::from_edges(
                n as usize,
                &pairs
                    .into_iter()
                    .filter(|&(a, b)| a != b)
                    .collect::<Vec<_>>(),
            )
            .expect("in range")
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The signature-accelerated hot path (`Oracle::reaches`), the
    /// filter-free label path (`reaches_unfiltered`, signatures on),
    /// the signature-free kernel (`Labeling::query_unsigned`), the
    /// tallied batch path, and BFS ground truth all agree on random
    /// *cyclic* digraphs — the signature layer may only reject pairs
    /// whose lists are truly disjoint.
    #[test]
    fn signature_query_paths_match_bfs_on_cyclic_digraphs(g in arb_digraph(30, 140)) {
        let oracle = hoplite::Oracle::new(&g);
        let comp_of = oracle.comp_of();
        let labeling = oracle.inner().labeling();
        let n = g.num_vertices() as u32;
        let mut scratch = traversal::TraversalScratch::new(g.num_vertices());
        let mut pairs = Vec::with_capacity((n * n) as usize);
        let mut truth = Vec::with_capacity((n * n) as usize);
        for u in 0..n {
            for v in 0..n {
                let t = traversal::reaches_with(&g, u, v, &mut scratch);
                prop_assert_eq!(oracle.reaches(u, v), t, "filtered ({},{})", u, v);
                prop_assert_eq!(oracle.reaches_unfiltered(u, v), t, "unfiltered ({},{})", u, v);
                let (cu, cv) = (comp_of[u as usize], comp_of[v as usize]);
                prop_assert_eq!(labeling.query_unsigned(cu, cv), t, "unsigned ({},{})", u, v);
                pairs.push((u, v));
                truth.push(t);
            }
        }
        let (answers, tally) = oracle.reaches_batch_tallied(&pairs, 3);
        prop_assert_eq!(answers, truth, "tallied batch");
        prop_assert_eq!(tally.total(), pairs.len() as u64);
    }

    /// The flagship invariant: both of the paper's oracles agree with
    /// ground truth on every pair of every random DAG.
    #[test]
    fn dl_and_hl_match_ground_truth(dag in arb_dag(36, 120)) {
        let tc = TransitiveClosure::build(&dag);
        let dl = DistributionLabeling::build(&dag, &DlConfig::default());
        let hl = HierarchicalLabeling::build(&dag, &HlConfig {
            core_size_limit: 6,
            ..HlConfig::default()
        });
        let n = dag.num_vertices() as u32;
        for u in 0..n {
            for v in 0..n {
                prop_assert_eq!(dl.query(u, v), tc.reaches(u, v), "DL ({},{})", u, v);
                prop_assert_eq!(hl.query(u, v), tc.reaches(u, v), "HL ({},{})", u, v);
            }
        }
    }

    /// DL with *any* processing order stays complete (Theorem 3 does
    /// not depend on the rank function).
    #[test]
    fn dl_complete_under_random_orders(dag in arb_dag(30, 90), seed in 0u64..1000) {
        let tc = TransitiveClosure::build(&dag);
        let dl = DistributionLabeling::build(&dag, &DlConfig {
            order: OrderKind::Random(seed),
            ..DlConfig::default()
        });
        let n = dag.num_vertices() as u32;
        for u in 0..n {
            for v in 0..n {
                prop_assert_eq!(dl.query(u, v), tc.reaches(u, v));
            }
        }
    }

    /// Theorem 4 (non-redundancy) as a property: no single DL hop can
    /// be dropped without breaking label-level completeness.
    #[test]
    fn dl_non_redundant(dag in arb_dag(14, 34)) {
        let dl = DistributionLabeling::build(&dag, &DlConfig::default());
        let n = dag.num_vertices();
        let out: Vec<Vec<u32>> =
            (0..n as u32).map(|v| dl.labeling().out_label(v).to_vec()).collect();
        let in_: Vec<Vec<u32>> =
            (0..n as u32).map(|v| dl.labeling().in_label(v).to_vec()).collect();
        let complete = |out: &[Vec<u32>], in_: &[Vec<u32>]| {
            (0..n as u32).all(|u| (0..n as u32).all(|v| {
                sorted_intersect(&out[u as usize], &in_[v as usize])
                    == (u == v || traversal::reaches(dag.graph(), u, v))
            }))
        };
        prop_assert!(complete(&out, &in_));
        for v in 0..n {
            for k in 0..out[v].len() {
                let mut t = out.clone();
                t[v].remove(k);
                prop_assert!(!complete(&t, &in_), "redundant out-hop at vertex {}", v);
            }
            for k in 0..in_[v].len() {
                let mut t = in_.clone();
                t[v].remove(k);
                prop_assert!(!complete(&out, &t), "redundant in-hop at vertex {}", v);
            }
        }
    }

    /// Baseline indexes agree with ground truth on random DAGs.
    #[test]
    fn baselines_match_ground_truth(dag in arb_dag(30, 90), seed in 0u64..100) {
        let tc = TransitiveClosure::build(&dag);
        let indexes: Vec<Box<dyn ReachIndex>> = vec![
            Box::new(Grail::build(&dag, 3, seed)),
            Box::new(IntervalIndex::build(&dag, u64::MAX).unwrap()),
            Box::new(PathTree::build(&dag, u64::MAX).unwrap()),
            Box::new(Pwah8::build(&dag, u64::MAX).unwrap()),
            Box::new(KReach::build(&dag, u64::MAX).unwrap()),
            Box::new(TfLabel::build(&dag, 6)),
            Box::new(DualLabeling::build(&dag, u64::MAX).unwrap()),
            Box::new(ChainIndex::build(&dag, u64::MAX).unwrap()),
            Box::new(ChainIndex::build_min_cover(&dag, u64::MAX).unwrap()),
        ];
        let n = dag.num_vertices() as u32;
        for idx in &indexes {
            for u in 0..n {
                for v in 0..n {
                    prop_assert_eq!(
                        idx.query(u, v), tc.reaches(u, v),
                        "{} at ({},{})", idx.name(), u, v
                    );
                }
            }
        }
    }

    /// SCC condensation preserves reachability for arbitrary digraphs:
    /// u reaches v in G iff comp(u) reaches comp(v) in the DAG.
    #[test]
    fn condensation_preserves_reachability(g in arb_digraph(24, 80)) {
        let cond = scc::condense(&g);
        let n = g.num_vertices() as u32;
        for u in 0..n {
            for v in 0..n {
                let orig = traversal::reaches(&g, u, v);
                let (cu, cv) = (cond.comp_of[u as usize], cond.comp_of[v as usize]);
                let via_dag = cu == cv || traversal::reaches(cond.dag.graph(), cu, cv);
                prop_assert_eq!(orig, via_dag, "({},{})", u, v);
            }
        }
    }

    /// Condensation component ids are topological.
    #[test]
    fn condensation_ids_topological(g in arb_digraph(24, 80)) {
        let cond = scc::condense(&g);
        for (a, b) in cond.dag.graph().edges() {
            prop_assert!(a < b);
        }
        // Sizes add up to n.
        let total: u32 = cond.comp_sizes.iter().sum();
        prop_assert_eq!(total as usize, g.num_vertices());
    }

    /// Label lists produced by DL are strictly increasing (sorted,
    /// duplicate-free) — the invariant the query merge relies on.
    #[test]
    fn dl_labels_sorted(dag in arb_dag(32, 100)) {
        let dl = DistributionLabeling::build(&dag, &DlConfig::default());
        for v in 0..dag.num_vertices() as u32 {
            let l = dl.labeling();
            prop_assert!(l.out_label(v).windows(2).all(|w| w[0] < w[1]));
            prop_assert!(l.in_label(v).windows(2).all(|w| w[0] < w[1]));
        }
    }

    /// `sorted_intersect` agrees with a set-based intersection oracle.
    #[test]
    fn sorted_intersect_matches_sets(
        mut a in proptest::collection::vec(0u32..64, 0..24),
        mut b in proptest::collection::vec(0u32..64, 0..24),
    ) {
        a.sort_unstable(); a.dedup();
        b.sort_unstable(); b.dedup();
        let sa: std::collections::HashSet<u32> = a.iter().copied().collect();
        let truth = b.iter().any(|x| sa.contains(x));
        prop_assert_eq!(sorted_intersect(&a, &b), truth);
        prop_assert_eq!(
            hoplite::core::label::sorted_intersect_adaptive(&a, &b),
            truth
        );
    }

    /// Graph parsers never panic on arbitrary input — they either
    /// produce a graph or a structured error (failure injection for
    /// the io layer).
    #[test]
    fn io_parsers_never_panic(junk in proptest::collection::vec(any::<u8>(), 0..512)) {
        use std::io::Cursor;
        let _ = hoplite::graph::io::read_edge_list(Cursor::new(&junk));
        let _ = hoplite::graph::io::read_gra(Cursor::new(&junk));
    }

    /// Printable-text fuzz of the edge-list parser: parse errors are
    /// reported with a line number, success round-trips through the
    /// writer.
    #[test]
    fn edge_list_text_fuzz(lines in proptest::collection::vec("[ 0-9a-z#]{0,16}", 0..24)) {
        use std::io::Cursor;
        let text = lines.join("\n");
        if let Ok(g) = hoplite::graph::io::read_edge_list(Cursor::new(text.as_bytes())) {
            let mut buf = Vec::new();
            hoplite::graph::io::write_edge_list(&g, &mut buf).expect("write ok");
            let g2 = hoplite::graph::io::read_edge_list(Cursor::new(&buf)).expect("reparse ok");
            prop_assert_eq!(g, g2);
        }
    }

    /// PWAH-8 compressed OR over an arbitrary fold of bitmaps matches
    /// plain set union.
    #[test]
    fn pwah_fold_matches_union(
        sets in proptest::collection::vec(
            proptest::collection::btree_set(0u32..400, 0..32), 1..6
        ),
    ) {
        use hoplite::baselines::pwah::PwahVec;
        let mut acc = PwahVec::empty();
        let mut truth = std::collections::BTreeSet::new();
        for s in &sets {
            let positions: Vec<u32> = s.iter().copied().collect();
            acc = PwahVec::or(&acc, &PwahVec::from_sorted_positions(&positions));
            truth.extend(s.iter().copied());
        }
        for p in 0..=400u32 {
            prop_assert_eq!(acc.contains(p), truth.contains(&p), "bit {}", p);
        }
        prop_assert_eq!(acc.count_ones(), truth.len() as u64);
    }

    /// Persisted oracles reload to identical query behaviour.
    #[test]
    fn persistence_roundtrip(dag in arb_dag(24, 70)) {
        use std::io::Cursor;
        let dl = DistributionLabeling::build(&dag, &DlConfig::default());
        let mut buf = Vec::new();
        dl.save(&mut buf).expect("serialize");
        let dl2 = hoplite::core::DistributionLabeling::load(Cursor::new(&buf)).expect("load");
        let n = dag.num_vertices() as u32;
        for u in 0..n {
            for v in 0..n {
                prop_assert_eq!(dl.query(u, v), dl2.query(u, v));
            }
        }
    }

    /// Generators are pure functions of `(parameters, seed)` and keep
    /// their structural contracts for arbitrary parameters.
    #[test]
    fn generators_deterministic_and_structured(
        n in 2usize..120,
        m in 0usize..400,
        seed in 0u64..500,
    ) {
        use hoplite::graph::gen;
        let (a, a2) = (gen::random_dag(n, m, seed), gen::random_dag(n, m, seed));
        prop_assert_eq!(a.graph(), a2.graph());
        prop_assert_eq!(a.num_vertices(), n);
        prop_assert!(a.num_edges() <= m);

        let (f, f2) = (gen::forest_dag(n, m, seed), gen::forest_dag(n, m, seed));
        prop_assert_eq!(f.graph(), f2.graph());
        for v in 0..n as u32 {
            prop_assert!(f.in_degree(v) <= 1, "forest vertex {} has 2 parents", v);
        }

        let extra = m.min(60);
        let (t, t2) = (
            gen::tree_plus_dag(n, extra, seed),
            gen::tree_plus_dag(n, extra, seed),
        );
        prop_assert_eq!(t.graph(), t2.graph());
        prop_assert!(t.num_edges() >= n - 1, "spanning tree edges present");

        let (p, p2) = (gen::power_law_dag(n, m, seed), gen::power_law_dag(n, m, seed));
        prop_assert_eq!(p.graph(), p2.graph());
    }

    /// Parallel batch evaluation is exactly the sequential answer at
    /// any thread count (order preserved, no lost or duplicated work).
    #[test]
    fn parallel_batch_matches_sequential(
        dag in arb_dag(30, 90),
        threads in 1usize..9,
        seed in 0u64..100,
    ) {
        use hoplite::core::parallel::{par_count_reachable, par_query_batch};
        use hoplite::graph::gen::Rng;
        let dl = DistributionLabeling::build(&dag, &DlConfig::default());
        let n = dag.num_vertices();
        let mut rng = Rng::new(seed);
        let pairs: Vec<(u32, u32)> = (0..64)
            .map(|_| (rng.gen_index(n) as u32, rng.gen_index(n) as u32))
            .collect();
        let expected: Vec<bool> = pairs.iter().map(|&(u, v)| dl.query(u, v)).collect();
        prop_assert_eq!(
            par_query_batch(dl.labeling(), &pairs, threads),
            expected.clone()
        );
        prop_assert_eq!(
            par_count_reachable(dl.labeling(), &pairs, threads),
            expected.iter().filter(|&&b| b).count() as u64
        );
    }

    /// Latency-histogram round-trip: recording arbitrary values and
    /// asking for any quantile returns exactly the upper bound of the
    /// bucket holding the rank-th smallest sample (clamped to the
    /// observed max) — i.e. the log-linear bucketing loses rank
    /// information never, and magnitude only within one bucket.
    #[test]
    fn histogram_quantiles_round_trip_through_buckets(
        raw in proptest::collection::vec((0u64..3, 0u64..(1 << 50)), 1..200),
        q_milli in 0u64..1001,
    ) {
        use hoplite::core::metrics::{bucket_high, bucket_index};
        use hoplite::core::{Histogram, HistogramSnapshot};
        // Mixed magnitudes: exact linear buckets, mid-range, and the
        // high log-bucket tail.
        let values: Vec<u64> = raw
            .into_iter()
            .map(|(sel, v)| match sel {
                0 => v % 64,
                1 => v % 100_000,
                _ => v,
            })
            .collect();
        let q = q_milli as f64 / 1000.0;
        let shared = Histogram::new();
        let mut owned = HistogramSnapshot::empty();
        for &v in &values {
            shared.record(v);
            owned.record(v);
        }
        let snap = shared.snapshot();
        prop_assert_eq!(&snap, &owned, "atomic and owned recording agree");
        let mut sorted = values.clone();
        sorted.sort_unstable();
        prop_assert_eq!(snap.count(), sorted.len() as u64);
        prop_assert_eq!(snap.max(), *sorted.last().unwrap());
        prop_assert_eq!(snap.sum(), sorted.iter().sum::<u64>());
        let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
        let sample = sorted[rank - 1];
        let expect = bucket_high(bucket_index(sample)).min(snap.max());
        prop_assert_eq!(snap.quantile(q), expect, "q={} rank={} sample={}", q, rank, sample);
        // Reported quantiles never undershoot the true sample and
        // never exceed the observed max.
        prop_assert!(snap.quantile(q) >= sample && snap.quantile(q) <= snap.max());
    }

    /// Snapshot merge is associative and commutative, and merging
    /// per-chunk snapshots equals recording the concatenation — the
    /// property per-worker aggregation (loadgen, METRICS) relies on.
    #[test]
    fn histogram_merge_is_associative_and_chunk_invariant(
        a in proptest::collection::vec(0u64..1_000_000, 0..64),
        b in proptest::collection::vec(0u64..1_000_000, 0..64),
        c in proptest::collection::vec(0u64..1_000_000, 0..64),
    ) {
        use hoplite::core::HistogramSnapshot;
        let snap = |values: &[u64]| {
            let mut s = HistogramSnapshot::empty();
            for &v in values {
                s.record(v);
            }
            s
        };
        let (sa, sb, sc) = (snap(&a), snap(&b), snap(&c));
        // (a ⊕ b) ⊕ c
        let mut left = sa.clone();
        left.merge(&sb);
        left.merge(&sc);
        // a ⊕ (b ⊕ c)
        let mut right_tail = sb.clone();
        right_tail.merge(&sc);
        let mut right = sa.clone();
        right.merge(&right_tail);
        prop_assert_eq!(&left, &right, "associativity");
        // c ⊕ b ⊕ a
        let mut rev = sc;
        rev.merge(&sb);
        rev.merge(&sa);
        prop_assert_eq!(&left, &rev, "commutativity");
        // One snapshot over the concatenation.
        let mut all = a.clone();
        all.extend(&b);
        all.extend(&c);
        prop_assert_eq!(&left, &snap(&all), "merge equals concatenation");
    }

    /// Dynamic overlay queries equal a from-scratch rebuild after any
    /// sequence of acyclic insertions.
    #[test]
    fn dynamic_overlay_matches_rebuild(
        dag in arb_dag(20, 40),
        extra in proptest::collection::vec((0u32..20, 0u32..20), 0..12),
    ) {
        use hoplite::core::dynamic::DynamicOracle;
        let n = dag.num_vertices();
        let mut edges: Vec<(u32, u32)> = dag.graph().edges().collect();
        let mut oracle = DynamicOracle::with_config(
            dag.clone(), DlConfig::default(), usize::MAX >> 1,
        );
        for &(u, v) in &extra {
            let (u, v) = (u % n as u32, v % n as u32);
            if oracle.insert_edge(u, v).is_ok() {
                edges.push((u, v));
            }
        }
        let rebuilt = DiGraph::from_edges(n, &edges).expect("valid");
        for u in 0..n as u32 {
            for v in 0..n as u32 {
                prop_assert_eq!(
                    oracle.query(u, v),
                    traversal::reaches(&rebuilt, u, v),
                    "({},{})", u, v
                );
            }
        }
    }
}
