//! The paper's running examples as executable fixtures.
//!
//! Figure 2's cover-structure walkthrough (Cov(13) → Cov({13,7}) →
//! Cov({13,7,25})) is fully recoverable from the text and asserted
//! exactly; Figure 1's 40-vertex drawing is not (only fragments of it
//! are described), so its fixture asserts the *invariants* the example
//! demonstrates on a structurally matching DAG.

use hoplite::core::hierarchy::{Hierarchy, HierarchyConfig};
use hoplite::core::{DistributionLabeling, HierarchicalLabeling, HlConfig};
use hoplite::graph::{gen, traversal, Dag};
use hoplite::ReachIndex;

/// The Figure 2 graph: every constraint the paper states holds.
/// `7 → 13`; `TC⁻¹(13) = TC⁻¹(7) ∪ {11}`; `TC(13) ⊂ TC(7)`; both 13
/// and 7 reach 25 (X = {13,7}); 25 reaches no processed hop (Y = ∅).
fn figure2_graph() -> (Dag, Vec<u32>) {
    let edges = [
        (1u32, 7u32),
        (2, 7),
        (7, 13),
        (7, 31),
        (11, 13),
        (13, 30),
        (13, 25),
    ];
    let dag = Dag::from_edges(32, &edges).unwrap();
    let mut order = vec![13u32, 7, 25];
    order.extend((0..32u32).filter(|v| ![13, 7, 25].contains(v)));
    (dag, order)
}

#[test]
fn figure2_constraints_hold_in_the_fixture() {
    let (dag, _) = figure2_graph();
    let g = dag.graph();
    // 7 -> 13.
    assert!(g.has_edge(7, 13));
    // TC^-1(13) = TC^-1(7) ∪ {11}.
    let anc = |v: u32| -> Vec<u32> {
        (0..32u32)
            .filter(|&u| u != v && traversal::reaches(g, u, v))
            .collect()
    };
    let mut anc7_plus_7_and_11 = anc(7);
    anc7_plus_7_and_11.extend([7, 11]);
    anc7_plus_7_and_11.sort_unstable();
    assert_eq!(anc(13), anc7_plus_7_and_11);
    // TC(13) ⊂ TC(7).
    let desc = |v: u32| -> Vec<u32> {
        (0..32u32)
            .filter(|&w| w != v && traversal::reaches(g, v, w))
            .collect()
    };
    let (d13, d7) = (desc(13), desc(7));
    assert!(d13.iter().all(|x| d7.contains(x)) && d13.len() < d7.len());
    // X = {13, 7} for hop 25; Y = ∅.
    assert!(traversal::reaches(g, 13, 25) && traversal::reaches(g, 7, 25));
    assert!(!traversal::reaches(g, 25, 13) && !traversal::reaches(g, 25, 7));
}

#[test]
fn figure2_distribution_steps_match_the_paper() {
    let (dag, order) = figure2_graph();
    let dl = DistributionLabeling::build_with_order(&dag, order.clone());
    let l = dl.labeling();
    let names = |hops: &[u32]| -> Vec<u32> { hops.iter().map(|&r| order[r as usize]).collect() };
    let walkthrough = |hops: &[u32]| -> Vec<u32> {
        let mut v: Vec<u32> = names(hops)
            .into_iter()
            .filter(|h| [13, 7, 25].contains(h))
            .collect();
        v.sort_unstable();
        v
    };

    // Figure 2(b): "for all u ∈ TC^-1(7), Lout(u) = {7, 13}".
    for u in [1u32, 2, 7] {
        assert_eq!(walkthrough(l.out_label(u)), vec![7, 13], "ancestor {u}");
    }
    // "...and for all w ∈ TC(7) \ TC(13), Lin(w) = {7}".
    assert_eq!(walkthrough(l.in_label(31)), vec![7]);
    assert_eq!(walkthrough(l.in_label(7)), vec![7]);
    // Descendants of 13 carry hop 13, not 7 (Lemma 2's split).
    assert_eq!(walkthrough(l.in_label(30)), vec![13]);
    assert_eq!(walkthrough(l.in_label(13)), vec![13]);
    // Figure 2(c): 25 is added to Lin(w) for w ∈ TC(25) and to
    // Lout(u) only for u ∈ TC^-1(25) \ (TC^-1(13) ∪ TC^-1(7)) = {25}.
    assert_eq!(walkthrough(l.in_label(25)), vec![13, 25]);
    assert_eq!(walkthrough(l.out_label(25)), vec![25]);
    for u in [1u32, 2, 7, 11, 13] {
        assert!(
            !walkthrough(l.out_label(u)).contains(&25),
            "hop 25 must be pruned from Lout({u}) (X covers it)"
        );
    }
    // 11 reaches 13 but not 7.
    let l11 = walkthrough(l.out_label(11));
    assert!(l11.contains(&13) && !l11.contains(&7));

    // And the whole labeling answers correctly.
    for u in 0..32u32 {
        for v in 0..32u32 {
            assert_eq!(dl.query(u, v), traversal::reaches(dag.graph(), u, v));
        }
    }
}

#[test]
fn figure1_hierarchy_and_labeling_invariants() {
    // A 40-vertex DAG standing in for the paper's drawing.
    let dag = gen::random_dag(40, 90, 1);
    let cfg = HierarchyConfig {
        eps: 2,
        core_size_limit: 4,
        max_levels: 4,
    };
    let hier = Hierarchy::build(&dag, &cfg);
    // The drawing has three levels (G0, G1, G2); ours must decompose
    // at least twice as well.
    assert!(hier.num_levels() >= 3, "sizes: {:?}", hier.level_sizes());
    let sizes = hier.level_sizes();
    for w in sizes.windows(2) {
        assert!(w[1] < w[0]);
    }
    // Lemma 1 on the fixture: level-1 reachability equals G0's.
    let l1 = &hier.levels[1];
    for a in 0..l1.dag.num_vertices() as u32 {
        for b in 0..l1.dag.num_vertices() as u32 {
            assert_eq!(
                traversal::reaches(l1.dag.graph(), a, b),
                traversal::reaches(dag.graph(), l1.to_orig[a as usize], l1.to_orig[b as usize])
            );
        }
    }
    // The level-wise labeling is complete (Theorem 1).
    let hl = HierarchicalLabeling::build(
        &dag,
        &HlConfig {
            eps: 2,
            core_size_limit: 4,
            max_levels: 4,
            ..HlConfig::default()
        },
    );
    for u in 0..40u32 {
        for v in 0..40u32 {
            assert_eq!(hl.query(u, v), traversal::reaches(dag.graph(), u, v));
        }
    }
    // "each vertex by default records itself in both Lin and Lout".
    for v in 0..40u32 {
        assert!(hl.labeling().out_label(v).contains(&v));
        assert!(hl.labeling().in_label(v).contains(&v));
    }
}
