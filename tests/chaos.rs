//! Wire-level chaos harness for the overload-resilience machinery
//! (PR 9 tentpole).
//!
//! A fault-injecting TCP proxy sits between the load generator and the
//! server, cutting, truncating, and delaying traffic at configurable
//! byte offsets, while the suite drives load well past the configured
//! shed thresholds. The contracts under test, in both serve modes:
//!
//! - no reply ever corrupts framing (a fault costs a connection, never
//!   a parse error on a surviving one);
//! - the shed rate under overload is nonzero but bounded, and the
//!   accepted-query p99 stays under a gate;
//! - acknowledged mutations survive a restart even when the wire that
//!   carried them was chaotic;
//! - server-side counters reconcile with client-observed replies;
//! - idle, slow-loris, and never-reading connections are reaped;
//! - `/readyz` flips 503 → 200 exactly at end-of-replay, with data
//!   reads refused as typed `NOT_READY` until then.

use std::fs;
use std::io::{self, Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use hoplite::core::WalConfig;
use hoplite::graph::gen::Rng;
use hoplite::server::loadgen::{run_load, LoadSpec};
use hoplite::server::{
    Client, ClientError, ErrorCode, Registry, Request, ServeMode, Server, ServerConfig,
    ServerHandle,
};
use hoplite::{Dag, DiGraph, Oracle, VertexId};

// ---------------------------------------------------------------------
// Fault-injecting proxy.
// ---------------------------------------------------------------------

/// One wire-level fault, applied to one proxied connection.
#[derive(Clone, Copy, Debug)]
enum Fault {
    /// Forward faithfully.
    None,
    /// Forward the first `after` server→client bytes, then cut both
    /// directions: a reply truncated mid-frame, as a dying middlebox
    /// would leave it.
    TruncateReplies { after: usize },
    /// Forward the first `after` client→server bytes, then cut both
    /// directions: a request stream dropped mid-frame.
    CutRequests { after: usize },
    /// Forward everything, pausing before each chunk — a congested
    /// path that stretches pipelines across many reactor ticks.
    Delay { per_chunk: Duration },
}

/// A TCP proxy that applies a cycling per-connection fault plan.
/// Dropping it stops the accept loop; pump threads die with their
/// sockets.
struct ChaosProxy {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    thread: Option<std::thread::JoinHandle<()>>,
}

impl ChaosProxy {
    fn start(upstream: SocketAddr, plan: Vec<Fault>) -> ChaosProxy {
        assert!(!plan.is_empty());
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind proxy port");
        listener.set_nonblocking(true).expect("nonblocking accept");
        let addr = listener.local_addr().unwrap();
        let stop = Arc::new(AtomicBool::new(false));
        let stop_flag = Arc::clone(&stop);
        let thread = std::thread::spawn(move || {
            let mut accepted = 0usize;
            while !stop_flag.load(Ordering::SeqCst) {
                match listener.accept() {
                    Ok((client, _)) => {
                        let fault = plan[accepted % plan.len()];
                        accepted += 1;
                        if let Ok(server) = TcpStream::connect(upstream) {
                            splice(client, server, fault);
                        }
                    }
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                        std::thread::sleep(Duration::from_millis(2));
                    }
                    Err(_) => break,
                }
            }
        });
        ChaosProxy {
            addr,
            stop,
            thread: Some(thread),
        }
    }
}

impl Drop for ChaosProxy {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }
}

/// Wires the two pump directions for one proxied connection.
fn splice(client: TcpStream, server: TcpStream, fault: Fault) {
    let client2 = client.try_clone().expect("clone client socket");
    let server2 = server.try_clone().expect("clone server socket");
    let (c2s_budget, s2c_budget, delay) = match fault {
        Fault::None => (None, None, None),
        Fault::TruncateReplies { after } => (None, Some(after), None),
        Fault::CutRequests { after } => (Some(after), None, None),
        Fault::Delay { per_chunk } => (None, None, Some(per_chunk)),
    };
    std::thread::spawn(move || pump(client, server2, c2s_budget, delay));
    std::thread::spawn(move || pump(server, client2, s2c_budget, delay));
}

/// Copies `from` → `to` until EOF or error. With a byte `budget`, the
/// fault fires at that offset: the connection is cut in **both**
/// directions, so the victim sees a prompt EOF rather than a silent
/// stall (the stall case gets its own dedicated test below).
fn pump(mut from: TcpStream, mut to: TcpStream, budget: Option<usize>, delay: Option<Duration>) {
    let mut remaining = budget;
    let mut buf = [0u8; 4096];
    loop {
        let got = match from.read(&mut buf) {
            Ok(0) | Err(_) => break,
            Ok(k) => k,
        };
        if let Some(pause) = delay {
            std::thread::sleep(pause);
        }
        let take = remaining.map_or(got, |r| r.min(got));
        if take > 0 && to.write_all(&buf[..take]).is_err() {
            break;
        }
        if let Some(r) = &mut remaining {
            *r -= take;
            if *r == 0 {
                break; // fault fires: cut both ways below
            }
        }
    }
    let _ = from.shutdown(Shutdown::Both);
    let _ = to.shutdown(Shutdown::Both);
}

// ---------------------------------------------------------------------
// Helpers.
// ---------------------------------------------------------------------

/// A fresh scratch directory per call (pid + counter keep parallel
/// test binaries and repeated runs apart).
fn temp_dir(tag: &str) -> PathBuf {
    static CALL: AtomicU64 = AtomicU64::new(0);
    let dir = std::env::temp_dir().join(format!(
        "hoplite-chaos-{tag}-{}-{}",
        std::process::id(),
        CALL.fetch_add(1, Ordering::Relaxed)
    ));
    if dir.exists() {
        fs::remove_dir_all(&dir).expect("clear stale scratch dir");
    }
    dir
}

fn random_cyclic_digraph(n: usize, m: usize, seed: u64) -> DiGraph {
    let mut rng = Rng::new(seed);
    let edges: Vec<(VertexId, VertexId)> = (0..m)
        .filter_map(|_| {
            let u = rng.gen_index(n) as VertexId;
            let v = rng.gen_index(n) as VertexId;
            (u != v).then_some((u, v))
        })
        .collect();
    DiGraph::from_edges(n, &edges).expect("edges are in range")
}

/// Both serving loops where the platform has both.
fn both_modes() -> Vec<ServeMode> {
    if cfg!(unix) {
        vec![ServeMode::ThreadPool, ServeMode::Reactor]
    } else {
        vec![ServeMode::ThreadPool]
    }
}

/// A server admitting roughly `1/factor` of the load the spec offers —
/// the drill every overload test runs at 3–4x the shed threshold.
/// The high-water mark is per reactor *tick* in reactor mode but per
/// *connection* in thread-pool mode, so the budgets differ.
fn overloaded_server(
    registry: Registry,
    mode: ServeMode,
    conns: usize,
    pipeline: usize,
    factor: usize,
    deadline: Duration,
) -> ServerHandle {
    let inflight = conns * pipeline;
    let config = ServerConfig {
        mode,
        workers: conns + 8,
        shed_inflight_hwm: Some(match mode {
            ServeMode::Reactor => (inflight / factor).max(1),
            ServeMode::ThreadPool => (pipeline / factor).max(1),
        }),
        shed_coalesced_pairs: Some((inflight / factor).max(1)),
        request_deadline: Some(deadline),
        ..ServerConfig::default()
    };
    Server::bind("127.0.0.1:0", Arc::new(registry), config).expect("bind ephemeral loopback port")
}

fn frozen_registry(vertices: usize, edges: usize, seed: u64) -> Registry {
    let g = random_cyclic_digraph(vertices, edges, seed);
    let registry = Registry::new();
    registry.insert_frozen("web", Oracle::new(&g)).unwrap();
    registry
}

fn http_get(addr: SocketAddr, path: &str) -> String {
    let mut stream = TcpStream::connect(addr).expect("connect metrics listener");
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    write!(stream, "GET {path} HTTP/1.0\r\n\r\n").unwrap();
    let mut out = String::new();
    stream.read_to_string(&mut out).expect("read HTTP reply");
    out
}

/// Spin until `probe` holds or `wait` elapses; panics with `what` on
/// timeout. Keeps timing-sensitive assertions robust under TSan-style
/// slowdowns without hard sleeps.
fn wait_until(wait: Duration, what: &str, mut probe: impl FnMut() -> bool) {
    let deadline = Instant::now() + wait;
    while !probe() {
        assert!(Instant::now() < deadline, "timed out waiting for {what}");
        std::thread::sleep(Duration::from_millis(25));
    }
}

// ---------------------------------------------------------------------
// Overload on a clean wire: typed sheds, bounded rate, exact books.
// ---------------------------------------------------------------------

#[test]
fn overload_sheds_bounded_stays_typed_and_reconciles_exactly() {
    for mode in both_modes() {
        let (conns, pipeline) = (16, 8);
        let mut handle = overloaded_server(
            frozen_registry(1500, 5000, 0x0C0A),
            mode,
            conns,
            pipeline,
            3,
            Duration::from_millis(500),
        );
        let metrics = handle
            .serve_metrics("127.0.0.1:0")
            .expect("bind metrics listener");
        let spec = LoadSpec {
            addr: handle.local_addr(),
            ns: "web".to_owned(),
            vertices: 1500,
            connections: conns,
            threads: 4,
            pipeline_depth: pipeline,
            batch: 1,
            queries: 30_000,
            seed: 0xC0FFEE,
        };
        let report = run_load(&spec).expect("overload must never corrupt framing");

        // The shed rate is nonzero (the drill runs at 3x the budget)
        // but bounded: the server keeps doing useful work.
        assert_eq!(
            report.errors, 0,
            "no untyped errors on a clean wire ({mode:?})"
        );
        assert!(
            report.shed > 0,
            "no sheds at 3x the admission budget ({mode:?})"
        );
        assert!(
            report.shed_fraction() < 0.95,
            "shedding must stay bounded, got {:.1}% ({mode:?})",
            report.shed_fraction() * 100.0
        );
        assert!(
            report.queries > 0,
            "some queries must be admitted ({mode:?})"
        );

        // Accepted queries stayed fast: their p99 is bounded by the
        // request deadline plus processing, far under the 3s gate.
        let p99 = Duration::from_nanos(report.latency.p99());
        assert!(
            p99 < Duration::from_secs(3),
            "accepted-query p99 {p99:?} over the overload gate ({mode:?})"
        );

        // Books reconcile exactly: every offered frame was answered
        // once, and the server's counters match what the client saw.
        assert_eq!(handle.frames_shed(), report.shed, "shed books ({mode:?})");
        assert_eq!(
            handle.deadlines_exceeded(),
            report.deadline_exceeded,
            "deadline books ({mode:?})"
        );
        assert_eq!(
            handle.frames_served(),
            report.queries + report.shed + report.deadline_exceeded,
            "every frame accounted exactly once ({mode:?})"
        );

        // The same numbers flow out of the metrics exposition.
        let text = http_get(metrics, "/metrics");
        assert!(
            text.contains(&format!(
                "server_frames_shed_total {}",
                handle.frames_shed()
            )),
            "exposition must carry the shed counter ({mode:?})"
        );
        handle.shutdown();
    }
}

// ---------------------------------------------------------------------
// Overload on a chaotic wire: faults cost connections, never framing.
// ---------------------------------------------------------------------

#[test]
fn wire_faults_never_corrupt_framing_and_books_stay_sane() {
    for mode in both_modes() {
        let (conns, pipeline) = (12, 8);
        let handle = overloaded_server(
            frozen_registry(1200, 4000, 0xFA07),
            mode,
            conns,
            pipeline,
            4,
            Duration::from_secs(1),
        );
        // Offsets are deliberately unaligned with any frame boundary,
        // so cuts land mid-length-prefix and mid-body.
        let proxy = ChaosProxy::start(
            handle.local_addr(),
            vec![
                Fault::None,
                Fault::TruncateReplies { after: 1777 },
                Fault::None,
                Fault::CutRequests { after: 2913 },
                Fault::Delay {
                    per_chunk: Duration::from_micros(200),
                },
                Fault::None,
            ],
        );
        let spec = LoadSpec {
            addr: proxy.addr,
            ns: "web".to_owned(),
            vertices: 1200,
            connections: conns,
            threads: 4,
            pipeline_depth: pipeline,
            batch: 1,
            queries: 16_000,
            seed: 0x0BAD,
        };
        // `run_load` is fatal on any frame that parses wrong — cuts
        // surface as clean EOFs (reconnect + forfeit), never as a
        // corrupt reply on a surviving connection.
        let report = run_load(&spec).expect("a faulty wire must never yield an unparseable reply");

        assert!(
            report.queries > 0,
            "queries must flow through the chaos ({mode:?})"
        );
        assert!(
            handle.frames_shed() > 0,
            "3x+ load must shed server-side ({mode:?})"
        );
        // Faults eat replies in flight, so client tallies are a lower
        // bound on the server's books — but never higher.
        assert!(
            handle.frames_shed() >= report.shed,
            "client saw more sheds than the server issued ({mode:?})"
        );
        assert!(
            handle.deadlines_exceeded() >= report.deadline_exceeded,
            "client saw more deadline refusals than issued ({mode:?})"
        );
        assert!(
            handle.frames_served() >= report.queries + report.shed + report.deadline_exceeded,
            "server served fewer frames than the client observed ({mode:?})"
        );
        drop(proxy);
        handle.shutdown();
    }
}

// ---------------------------------------------------------------------
// Connection hygiene: idle and slow-loris peers are reaped.
// ---------------------------------------------------------------------

#[test]
fn idle_and_slow_loris_connections_are_reaped() {
    for mode in both_modes() {
        let config = ServerConfig {
            mode,
            workers: 8,
            idle_timeout: Some(Duration::from_millis(300)),
            half_frame_deadline: Some(Duration::from_millis(300)),
            ..ServerConfig::default()
        };
        let registry = frozen_registry(50, 150, 0x1D1E);
        let handle =
            Server::bind("127.0.0.1:0", Arc::new(registry), config).expect("bind loopback");
        let addr = handle.local_addr();

        // One peer that connects and never speaks; one slow loris that
        // promises a 100-byte frame and delivers a single byte.
        let mut idle = TcpStream::connect(addr).unwrap();
        let mut loris = TcpStream::connect(addr).unwrap();
        loris.write_all(&100u32.to_le_bytes()).unwrap();
        loris.write_all(&[7]).unwrap();

        wait_until(
            Duration::from_secs(15),
            "both stale connections to be reaped",
            || handle.connections_reaped() >= 2,
        );

        // Both sockets observe the server-side close (EOF or reset).
        for (name, sock) in [("idle", &mut idle), ("loris", &mut loris)] {
            sock.set_read_timeout(Some(Duration::from_secs(10)))
                .unwrap();
            let gone = match sock.read(&mut [0u8; 8]) {
                Ok(0) | Err(_) => true,
                Ok(_) => false,
            };
            assert!(gone, "{name} socket must be closed ({mode:?})");
        }

        // Hygiene never touches a live client.
        let mut fresh = Client::connect(addr).unwrap();
        fresh.ping().unwrap();
        fresh.reach("web", 0, 1).unwrap();
        handle.shutdown();
    }
}

// ---------------------------------------------------------------------
// Deadlines: a zero budget refuses every query but never the probe.
// ---------------------------------------------------------------------

#[test]
fn zero_deadline_expires_queries_but_spares_ping() {
    for mode in both_modes() {
        let config = ServerConfig {
            mode,
            workers: 4,
            request_deadline: Some(Duration::ZERO),
            ..ServerConfig::default()
        };
        let registry = frozen_registry(50, 150, 0xDEAD);
        let handle =
            Server::bind("127.0.0.1:0", Arc::new(registry), config).expect("bind loopback");
        let mut client = Client::connect(handle.local_addr()).unwrap();

        // Liveness probes are exempt: they must answer on a drowning
        // server, or the orchestrator kills a healthy process.
        client.ping().unwrap();

        match client.reach("web", 0, 1) {
            Err(
                refusal @ ClientError::Refused {
                    code: ErrorCode::DeadlineExceeded,
                    ..
                },
            ) => {
                assert!(
                    !refusal.is_retryable(),
                    "a blown deadline is terminal — the caller's own budget is gone ({mode:?})"
                );
            }
            other => panic!("expected DEADLINE_EXCEEDED, got {other:?} ({mode:?})"),
        }
        assert!(
            handle.deadlines_exceeded() >= 1,
            "counter must move ({mode:?})"
        );
        handle.shutdown();
    }
}

// ---------------------------------------------------------------------
// Hard backlog cap: a never-reading pipeliner is evicted, not buffered.
// ---------------------------------------------------------------------

#[cfg(unix)]
#[test]
fn reactor_evicts_nonreading_pipeliner_at_hard_backlog_cap() {
    let config = ServerConfig {
        mode: ServeMode::Reactor,
        max_conn_backlog: 4096,
        ..ServerConfig::default()
    };
    let registry = frozen_registry(50, 150, 0xB10C);
    let handle = Server::bind("127.0.0.1:0", Arc::new(registry), config).expect("bind loopback");
    let addr = handle.local_addr();

    // A black-hole client: pipelines requests forever, reads nothing.
    // Replies pile up — first in the kernel socket buffers, then in
    // the reactor's per-connection backlog — until the hard cap evicts
    // it instead of buffering unboundedly.
    let mut hog = TcpStream::connect(addr).unwrap();
    hog.set_write_timeout(Some(Duration::from_millis(500)))
        .unwrap();
    let payload = Request::Reach {
        ns: "web".to_owned(),
        u: 0,
        v: 1,
    }
    .encode()
    .unwrap();
    let mut frame = (payload.len() as u32).to_le_bytes().to_vec();
    frame.extend_from_slice(&payload);
    let burst: Vec<u8> = frame
        .iter()
        .copied()
        .cycle()
        .take(frame.len() * 256)
        .collect();

    let deadline = Instant::now() + Duration::from_secs(30);
    while handle.connections_reaped() == 0 {
        assert!(
            Instant::now() < deadline,
            "non-reading pipeliner was never evicted (reaped = {})",
            handle.connections_reaped()
        );
        // Once evicted, writes fail (EPIPE/reset) or stall out — both
        // just mean "stop offering".
        if hog.write_all(&burst).is_err() {
            break;
        }
    }
    wait_until(
        Duration::from_secs(10),
        "the eviction to be counted",
        || handle.connections_reaped() >= 1,
    );

    // The eviction is surgical: a well-behaved client on the same
    // reactor keeps getting answers.
    let mut healthy = Client::connect(addr).unwrap();
    healthy.ping().unwrap();
    healthy.reach("web", 0, 1).unwrap();
    handle.shutdown();
}

// ---------------------------------------------------------------------
// Durability through chaos: every acked mutation survives a restart.
// ---------------------------------------------------------------------

#[test]
fn acked_mutations_survive_chaotic_wire_and_restart() {
    for mode in both_modes() {
        let ops = 150u32;
        let vertices = 2 * ops;
        let root = temp_dir("acked");
        let seed_dag = || Dag::from_edges(vertices as usize, &[]).unwrap();
        {
            let registry = Registry::new();
            registry
                .open_durable(
                    "live",
                    seed_dag(),
                    root.join("live"),
                    WalConfig::sync_every_record(),
                    None,
                )
                .unwrap();
            let config = ServerConfig {
                mode,
                workers: 8,
                ..ServerConfig::default()
            };
            let handle =
                Server::bind("127.0.0.1:0", Arc::new(registry), config).expect("bind loopback");
            // Cut replies mid-ack and requests mid-frame every few
            // connections — acks will be lost in flight, connections
            // will die, and none of it may cost a *acknowledged* edge.
            let proxy = ChaosProxy::start(
                handle.local_addr(),
                vec![
                    Fault::None,
                    Fault::TruncateReplies { after: 601 },
                    Fault::CutRequests { after: 443 },
                ],
            );
            let reconnect = |addr: SocketAddr| -> Client {
                let deadline = Instant::now() + Duration::from_secs(10);
                loop {
                    match Client::connect(addr) {
                        Ok(c) => return c,
                        Err(e) => {
                            assert!(Instant::now() < deadline, "re-dial proxy: {e}");
                            std::thread::sleep(Duration::from_millis(10));
                        }
                    }
                }
            };
            let mut client = reconnect(proxy.addr);
            let mut acked: Vec<(u32, u32)> = Vec::new();
            for i in 0..ops {
                // Disjoint edges: replaying any subset is still a DAG,
                // and each ack is independently checkable.
                let (u, v) = (2 * i, 2 * i + 1);
                match client.add_edge("live", u, v) {
                    Ok(()) => acked.push((u, v)),
                    // The wire died around this op: the edge may or
                    // may not have landed — either is legal, because
                    // no ack reached us. Re-dial and move on.
                    Err(_) => client = reconnect(proxy.addr),
                }
            }
            assert!(
                acked.len() as u32 > ops / 2,
                "chaos plan too aggressive: only {}/{ops} acks",
                acked.len()
            );
            drop(proxy);
            handle.shutdown();

            // Restart: recover purely from the WAL the acks fsynced.
            let recovered = Registry::new();
            recovered
                .open_durable(
                    "live",
                    seed_dag(),
                    root.join("live"),
                    WalConfig::sync_every_record(),
                    None,
                )
                .unwrap();
            let ns = recovered.get("live").unwrap();
            for (u, v) in &acked {
                assert!(
                    ns.reach(*u, *v).unwrap(),
                    "acked edge ({u}, {v}) lost across restart ({mode:?})"
                );
            }
        }
        fs::remove_dir_all(&root).ok();
    }
}

// ---------------------------------------------------------------------
// Readiness: /readyz flips 503 → 200 exactly at end-of-replay.
// ---------------------------------------------------------------------

#[test]
fn readyz_flips_exactly_at_end_of_replay() {
    let root = temp_dir("readyz");
    let seed_dag = || Dag::from_edges(4, &[]).unwrap();

    // A previous life acked two edges durably.
    {
        let prior = Registry::new();
        prior
            .open_durable(
                "live",
                seed_dag(),
                root.join("live"),
                WalConfig::sync_every_record(),
                None,
            )
            .unwrap();
        let ns = prior.get("live").unwrap();
        ns.add_edge("live", 0, 1).unwrap();
        ns.add_edge("live", 1, 2).unwrap();
    }

    // Restart, in the order `hoplited serve` uses: bind the listeners
    // first (so probes can reach us), then load — the window between
    // is exactly what readiness gates.
    let registry = Arc::new(Registry::new());
    registry.set_ready(false);
    let mut handle = Server::bind(
        "127.0.0.1:0",
        Arc::clone(&registry),
        ServerConfig::default(),
    )
    .expect("bind loopback");
    let metrics = handle
        .serve_metrics("127.0.0.1:0")
        .expect("bind metrics listener");

    // Alive but not ready: liveness 200, readiness 503.
    assert!(http_get(metrics, "/healthz").starts_with("HTTP/1.0 200"));
    let before = http_get(metrics, "/readyz");
    assert!(before.starts_with("HTTP/1.0 503"), "got: {before}");

    // On the wire: probes answer, data reads are refused typed — and
    // the refusal is retryable, because readiness is transient.
    let mut client = Client::connect(handle.local_addr()).unwrap();
    client.ping().unwrap();
    match client.reach("live", 0, 2) {
        Err(
            refusal @ ClientError::Refused {
                code: ErrorCode::NotReady,
                ..
            },
        ) => assert!(refusal.is_retryable(), "NOT_READY must invite a retry"),
        other => panic!("expected NOT_READY before replay, got {other:?}"),
    }

    // End of replay: load the durable namespace (replaying its WAL)
    // and flip. The very same connection now gets real answers — and
    // they include the replayed mutations.
    registry
        .open_durable(
            "live",
            seed_dag(),
            root.join("live"),
            WalConfig::sync_every_record(),
            None,
        )
        .unwrap();
    registry.set_ready(true);

    assert!(http_get(metrics, "/readyz").starts_with("HTTP/1.0 200"));
    assert!(
        client.reach("live", 0, 2).unwrap(),
        "replayed mutations must be visible the instant readiness flips"
    );
    handle.shutdown();
    fs::remove_dir_all(&root).ok();
}

// ---------------------------------------------------------------------
// Readiness in reactor mode: coalesced reads are gated too.
// ---------------------------------------------------------------------

#[cfg(unix)]
#[test]
fn reactor_coalesced_reads_refuse_typed_not_ready_during_startup() {
    let registry = Arc::new(frozen_registry(50, 150, 0x4EAD));
    registry.set_ready(false);
    let config = ServerConfig {
        mode: ServeMode::Reactor,
        ..ServerConfig::default()
    };
    let handle = Server::bind("127.0.0.1:0", Arc::clone(&registry), config).expect("bind loopback");
    let mut client = Client::connect(handle.local_addr()).unwrap();
    client.ping().unwrap();
    match client.reach("web", 0, 1) {
        Err(ClientError::Refused {
            code: ErrorCode::NotReady,
            ..
        }) => {}
        other => panic!("expected NOT_READY on the coalesced path, got {other:?}"),
    }
    registry.set_ready(true);
    client.reach("web", 0, 1).unwrap();
    handle.shutdown();
}

// ---------------------------------------------------------------------
// Sanity: the proxy itself is transparent when told to be.
// ---------------------------------------------------------------------

#[test]
fn proxy_with_no_faults_is_transparent() {
    let registry = frozen_registry(60, 200, 0xFEED);
    let g = random_cyclic_digraph(60, 200, 0xFEED);
    let handle = Server::bind("127.0.0.1:0", Arc::new(registry), ServerConfig::default())
        .expect("bind loopback");
    let proxy = ChaosProxy::start(handle.local_addr(), vec![Fault::None]);
    let mut client = Client::connect(proxy.addr).unwrap();
    for (u, v) in [(0u32, 1u32), (5, 40), (59, 0), (12, 12)] {
        assert_eq!(
            client.reach("web", u, v).unwrap(),
            hoplite::graph::traversal::reaches(&g, u, v),
            "({u}, {v}) through the transparent proxy"
        );
    }
    handle.shutdown();
}
