//! Stress and adversarial-shape tests: structures that historically
//! break reachability indexes (deep paths, wide fans, dense bipartite
//! cores) at sizes where all-pairs verification is still feasible, and
//! larger sizes with sampled verification.

use hoplite::baselines::{Grail, IntervalIndex, PathTree, Pwah8};
use hoplite::core::{DistributionLabeling, DlConfig, HierarchicalLabeling, HlConfig, ReachIndex};
use hoplite::graph::gen::Rng;
use hoplite::graph::{traversal, Dag, DiGraph};
use hoplite::Oracle;

/// One root fanning to `w` middles joining into one sink. The middle
/// layer is a worst case for naive hop selection; the hub-aware orders
/// must keep labels linear.
fn fan_graph(w: u32) -> Dag {
    let mut edges = Vec::with_capacity(2 * w as usize);
    for m in 1..=w {
        edges.push((0u32, m));
        edges.push((m, w + 1));
    }
    Dag::from_edges(w as usize + 2, &edges).unwrap()
}

#[test]
fn wide_fan_labels_stay_linear() {
    let w = 5_000;
    let dag = fan_graph(w);
    let dl = DistributionLabeling::build(&dag, &DlConfig::default());
    // Root and sink have the top degree products; every middle vertex
    // should need O(1) hops, keeping totals linear in n.
    let total = dl.labeling().total_entries();
    assert!(
        total < 8 * (w as u64 + 2),
        "fan labels should be linear, got {total} entries for {w} middles"
    );
    assert!(dl.query(0, w + 1));
    assert!(dl.query(0, 17));
    assert!(dl.query(17, w + 1));
    assert!(!dl.query(17, 18), "middles are incomparable");
}

#[test]
fn dense_bipartite_core() {
    // Complete bipartite 40x40 plus chains on both sides: the classic
    // case where one hub hop covers 1600 pairs.
    let (a, b) = (40u32, 40u32);
    let n = (a + b) as usize;
    let mut edges = Vec::new();
    for i in 0..a {
        for j in 0..b {
            edges.push((i, a + j));
        }
    }
    let dag = Dag::from_edges(n, &edges).unwrap();
    let dl = DistributionLabeling::build(&dag, &DlConfig::default());
    let hl = HierarchicalLabeling::build(&dag, &HlConfig::default());
    for u in 0..n as u32 {
        for v in 0..n as u32 {
            let truth = traversal::reaches(dag.graph(), u, v);
            assert_eq!(dl.query(u, v), truth, "DL ({u},{v})");
            assert_eq!(hl.query(u, v), truth, "HL ({u},{v})");
        }
    }
    // A direct biclique has no middle vertex, so *any* 2-hop labeling
    // needs Θ(a·b) entries (each of the 1600 pairs needs a witness
    // that is one of its own endpoints). Check we are within a small
    // constant of that information-theoretic floor, not above n².
    let stats = dl.labeling().stats();
    let total = stats.total_out + stats.total_in;
    assert!(
        (1_600..=4 * 1_600).contains(&total),
        "biclique labels should be Θ(a·b) = ~1600, got {total}"
    );
}

#[test]
fn deep_path_sampled_verification() {
    // 50k-vertex path: exercises deep hierarchies and iterative
    // traversals; verification by sampling. DL uses a *random* order
    // here — see `dl_degree_order_degenerates_on_paths` below for why.
    let n = 50_000u32;
    let edges: Vec<_> = (0..n - 1).map(|i| (i, i + 1)).collect();
    let dag = Dag::from_edges(n as usize, &edges).unwrap();
    let dl = DistributionLabeling::build(
        &dag,
        &DlConfig {
            order: hoplite::OrderKind::Random(17),
            ..DlConfig::default()
        },
    );
    // Random order behaves like randomized divide-and-conquer on a
    // path: expected Θ(n log n) label entries.
    assert!(
        dl.labeling().total_entries() < 40 * n as u64,
        "random-order DL on a path should be ~n log n, got {}",
        dl.labeling().total_entries()
    );
    let hl = HierarchicalLabeling::build(
        &dag,
        &HlConfig {
            core_size_limit: 64,
            ..HlConfig::default()
        },
    );
    let mut rng = Rng::new(5);
    for _ in 0..2_000 {
        let u = rng.gen_index(n as usize) as u32;
        let v = rng.gen_index(n as usize) as u32;
        let truth = u <= v;
        assert_eq!(dl.query(u, v), truth, "DL ({u},{v})");
        assert_eq!(hl.query(u, v), truth, "HL ({u},{v})");
    }
}

/// A documented limitation of the paper's degree-product rank: on a
/// pure path every vertex ties, ties break by id, and processing
/// vertices front-to-back degenerates DL to Θ(n²) label entries —
/// the same failure mode as first-element-pivot quicksort on sorted
/// input. A random order restores Θ(n log n). (Real graphs have degree
/// skew, which is exactly what the rank function exploits; the
/// hierarchical decomposition of HL handles paths gracefully instead.)
#[test]
fn dl_degree_order_degenerates_on_paths() {
    let n = 1_000u32;
    let edges: Vec<_> = (0..n - 1).map(|i| (i, i + 1)).collect();
    let dag = Dag::from_edges(n as usize, &edges).unwrap();
    let degree_order = DistributionLabeling::build(&dag, &DlConfig::default());
    let random_order = DistributionLabeling::build(
        &dag,
        &DlConfig {
            order: hoplite::OrderKind::Random(3),
            ..DlConfig::default()
        },
    );
    let (dq, rq) = (
        degree_order.labeling().total_entries(),
        random_order.labeling().total_entries(),
    );
    assert!(
        dq > (n as u64) * (n as u64) / 4,
        "expected quadratic blowup with the id-tied degree order, got {dq}"
    );
    assert!(
        rq < 40 * n as u64,
        "random order should stay near n log n, got {rq}"
    );
    // Both remain complete regardless of size.
    for &(u, v) in &[(0u32, 999u32), (500, 499), (3, 3)] {
        assert_eq!(degree_order.query(u, v), u <= v);
        assert_eq!(random_order.query(u, v), u <= v);
    }
}

#[test]
fn baselines_on_the_fan() {
    let dag = fan_graph(300);
    let n = dag.num_vertices() as u32;
    let indexes: Vec<Box<dyn ReachIndex>> = vec![
        Box::new(Grail::build(&dag, 5, 1)),
        Box::new(IntervalIndex::build(&dag, u64::MAX).unwrap()),
        Box::new(PathTree::build(&dag, u64::MAX).unwrap()),
        Box::new(Pwah8::build(&dag, u64::MAX).unwrap()),
    ];
    for idx in &indexes {
        for u in (0..n).step_by(13) {
            for v in (0..n).step_by(7) {
                assert_eq!(
                    idx.query(u, v),
                    traversal::reaches(dag.graph(), u, v),
                    "{} at ({u},{v})",
                    idx.name()
                );
            }
        }
    }
}

#[test]
fn oracle_on_giant_cycle() {
    // The whole graph is one SCC: everything reaches everything.
    let n = 10_000u32;
    let mut edges: Vec<_> = (0..n - 1).map(|i| (i, i + 1)).collect();
    edges.push((n - 1, 0));
    let g = DiGraph::from_edges(n as usize, &edges).unwrap();
    let oracle = Oracle::new(&g);
    assert_eq!(oracle.num_components(), 1);
    let mut rng = Rng::new(11);
    for _ in 0..500 {
        let u = rng.gen_index(n as usize) as u32;
        let v = rng.gen_index(n as usize) as u32;
        assert!(oracle.reaches(u, v));
    }
}

#[test]
fn builder_swallows_heavy_duplication() {
    // 50k copies of the same few edges must collapse cleanly.
    let mut edges = Vec::with_capacity(50_000);
    for _ in 0..10_000 {
        edges.extend_from_slice(&[(0u32, 1u32), (1, 2), (2, 3), (0, 3), (3, 3)]);
    }
    let g = DiGraph::from_edges(4, &edges).unwrap();
    assert_eq!(g.num_edges(), 4, "dedup + self-loop removal");
    let dag = Dag::new(g).unwrap();
    let dl = DistributionLabeling::build(&dag, &DlConfig::default());
    assert!(dl.query(0, 3));
}

#[test]
fn two_disconnected_cliquelike_blocks() {
    // Index must never leak reachability across components.
    let mut edges = Vec::new();
    for u in 0..50u32 {
        for v in (u + 1)..50 {
            if (u + v) % 3 == 0 {
                edges.push((u, v));
            }
        }
    }
    // Second block shifted by 50.
    let shifted: Vec<_> = edges.iter().map(|&(u, v)| (u + 50, v + 50)).collect();
    edges.extend(shifted);
    let dag = Dag::from_edges(100, &edges).unwrap();
    let dl = DistributionLabeling::build(&dag, &DlConfig::default());
    for u in 0..50u32 {
        for v in 50..100u32 {
            assert!(!dl.query(u, v), "leak {u}->{v}");
            assert!(!dl.query(v, u), "leak {v}->{u}");
        }
    }
}
