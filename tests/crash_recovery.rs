//! Fault-injection harness for the durability layer (PR 8 tentpole).
//!
//! The contract under test: *recovery always yields a prefix of the
//! acknowledged operations, and the recovered oracle answers exactly
//! like a BFS over the graph that prefix describes.* We attack it the
//! way power cuts do — kill the WAL mid-write at every byte offset,
//! truncate on-disk tails at every byte, flip bits, strand rotation
//! artifacts, replay twice — and also the way production does: a live
//! server taking wire-level mutations while background rebuilds rotate
//! checkpoints, then a restart.

use std::collections::BTreeSet;
use std::fs;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

use proptest::prelude::*;

use hoplite::core::wal::{decode_records, RECORD_LEN};
use hoplite::core::{
    Durability, DynamicOracle, EdgeOp, FailpointWriter, Oracle, Wal, WalConfig, WalDir,
};
use hoplite::graph::{traversal, Dag, DiGraph};
use hoplite::server::{Client, Registry, Server, ServerConfig};

// ---------------------------------------------------------------------
// Helpers.
// ---------------------------------------------------------------------

/// A fresh scratch directory per call (pid + counter keep parallel
/// test binaries and repeated runs apart).
fn temp_dir(tag: &str) -> PathBuf {
    static CALL: AtomicU64 = AtomicU64::new(0);
    let dir = std::env::temp_dir().join(format!(
        "hoplite-crash-{tag}-{}-{}",
        std::process::id(),
        CALL.fetch_add(1, Ordering::Relaxed)
    ));
    if dir.exists() {
        fs::remove_dir_all(&dir).expect("clear stale scratch dir");
    }
    dir
}

/// Applies a prefix of edge ops to a seed edge set — the ground truth
/// a recovered oracle must reproduce. Set semantics match the oracle's
/// (duplicate insert and absent remove are no-ops).
fn apply_ops(seed: &[(u32, u32)], ops: &[EdgeOp]) -> BTreeSet<(u32, u32)> {
    let mut edges: BTreeSet<(u32, u32)> = seed.iter().copied().collect();
    for &op in ops {
        match op {
            EdgeOp::Insert(u, v) => {
                edges.insert((u, v));
            }
            EdgeOp::Remove(u, v) => {
                edges.remove(&(u, v));
            }
        }
    }
    edges
}

/// All-pairs check: `answer(u, v)` must equal BFS over `edges`.
fn assert_matches_bfs(
    n: usize,
    edges: &BTreeSet<(u32, u32)>,
    ctx: &str,
    mut answer: impl FnMut(u32, u32) -> bool,
) {
    let edge_vec: Vec<(u32, u32)> = edges.iter().copied().collect();
    let g = DiGraph::from_edges(n, &edge_vec).expect("ground-truth graph");
    for u in 0..n as u32 {
        for v in 0..n as u32 {
            let want = traversal::reaches(&g, u, v);
            assert_eq!(answer(u, v), want, "{ctx}: reach({u}, {v})");
        }
    }
}

/// The fixed op script most dirs in this suite log: inserts and
/// removes over a 7-vertex seed, including removal of a seed edge.
const SEED_N: usize = 7;
const SEED_EDGES: &[(u32, u32)] = &[(0, 1), (1, 2), (4, 5)];
const SCRIPT: &[EdgeOp] = &[
    EdgeOp::Insert(2, 3),
    EdgeOp::Insert(3, 4),
    EdgeOp::Remove(1, 2),
    EdgeOp::Insert(5, 6),
    EdgeOp::Insert(0, 6),
    EdgeOp::Remove(4, 5),
];

/// A WAL dir holding `checkpoint.0` for the seed DAG and `wal.0` with
/// the full script, every record individually fsynced. Returns the
/// dir handle and the raw bytes of the log.
fn seeded_wal_dir(tag: &str) -> (WalDir, PathBuf, Vec<u8>) {
    let root = temp_dir(tag);
    let wal = WalDir::open(&root).expect("open wal dir");
    let seed = Dag::from_edges(SEED_N, SEED_EDGES).expect("seed dag");
    wal.initialize(&seed).expect("initialize generation 0");
    let mut dur = wal
        .durability(0, 0, 0, WalConfig::sync_every_record())
        .expect("open appender");
    for &op in SCRIPT {
        dur.log(op).expect("log");
    }
    dur.sync().expect("sync");
    let wal_path = root.join("wal.0");
    let bytes = fs::read(&wal_path).expect("read log");
    assert_eq!(bytes.len(), SCRIPT.len() * RECORD_LEN);
    (wal, root, bytes)
}

// ---------------------------------------------------------------------
// Kill the writer at every byte offset.
// ---------------------------------------------------------------------

/// Crash the sink at every possible byte offset: whatever the log
/// holds afterwards must decode to exactly the acknowledged prefix —
/// never garbage, never a reordering, never an op that errored.
#[test]
fn killing_the_wal_at_every_byte_offset_keeps_the_acknowledged_prefix() {
    let total = SCRIPT.len() * RECORD_LEN;
    for fail_at in 0..=total {
        let mut wal = Wal::from_writer(
            FailpointWriter::failing_at(fail_at),
            0,
            WalConfig::sync_every_record(),
        );
        let mut acknowledged = 0usize;
        for &op in SCRIPT {
            match wal.append(op) {
                Ok(()) => acknowledged += 1,
                // First failure is the crash: a real writer stops
                // acknowledging here (WalDurability poisons itself).
                Err(_) => break,
            }
        }
        let (ops, valid) = decode_records(wal.inner().bytes());
        assert_eq!(ops, &SCRIPT[..ops.len()], "fail_at {fail_at}: not a prefix");
        assert_eq!(
            ops.len(),
            acknowledged,
            "fail_at {fail_at}: recovered ops != acknowledged ops"
        );
        assert_eq!(valid, acknowledged * RECORD_LEN, "fail_at {fail_at}");
    }
}

// ---------------------------------------------------------------------
// Torn on-disk tails at every byte, recovered and replayed.
// ---------------------------------------------------------------------

/// Truncate the on-disk log at every byte offset; each recovery must
/// yield the whole-record prefix, and replaying it must answer
/// identically to BFS over seed+prefix.
#[test]
fn torn_tail_at_every_byte_recovers_the_prefix_and_matches_bfs() {
    let (wal, root, full) = seeded_wal_dir("torn");
    let wal_path = root.join("wal.0");
    for cut in 0..=full.len() {
        fs::write(&wal_path, &full[..cut]).expect("truncate log");
        let rec = wal
            .recover()
            .expect("recover")
            .expect("generation 0 present");
        let whole = cut / RECORD_LEN;
        assert_eq!(rec.generation, 0, "cut {cut}");
        assert_eq!(
            rec.ops,
            &SCRIPT[..whole],
            "cut {cut}: not the whole-record prefix"
        );
        assert_eq!(rec.wal_bytes, (whole * RECORD_LEN) as u64, "cut {cut}");

        let mut oracle = DynamicOracle::new(rec.base);
        oracle.replay(&rec.ops).expect("replay");
        let truth = apply_ops(SEED_EDGES, &rec.ops);
        assert_matches_bfs(SEED_N, &truth, &format!("cut {cut}"), |u, v| {
            oracle.query(u, v)
        });
    }
    fs::remove_dir_all(&root).ok();
}

/// Flip one bit in every byte of the log: recovery must stop exactly
/// at the damaged record (CRC catches body and header damage alike)
/// and still replay the clean prefix correctly.
#[test]
fn bit_flips_anywhere_in_the_log_truncate_at_the_damaged_record() {
    let (wal, root, full) = seeded_wal_dir("flip");
    let wal_path = root.join("wal.0");
    for byte in 0..full.len() {
        for bit in [0u8, 7u8] {
            let mut damaged = full.clone();
            damaged[byte] ^= 1 << bit;
            fs::write(&wal_path, &damaged).expect("write damaged log");
            let rec = wal.recover().expect("recover").expect("gen 0");
            let clean = byte / RECORD_LEN;
            assert_eq!(
                rec.ops,
                &SCRIPT[..clean],
                "flip byte {byte} bit {bit}: must truncate at record {clean}"
            );
            let mut oracle = DynamicOracle::new(rec.base);
            oracle.replay(&rec.ops).expect("replay");
            let truth = apply_ops(SEED_EDGES, &rec.ops);
            assert_matches_bfs(SEED_N, &truth, &format!("flip {byte}.{bit}"), |u, v| {
                oracle.query(u, v)
            });
        }
    }
    fs::remove_dir_all(&root).ok();
}

// ---------------------------------------------------------------------
// Rotation crash artifacts and corrupt checkpoints.
// ---------------------------------------------------------------------

/// A crash mid-rotation leaves a stale `checkpoint.tmp` and possibly
/// a corrupt newer generation; recovery must fall back to the newest
/// *valid* generation and never error on the artifacts.
#[test]
fn rotation_crash_artifacts_fall_back_to_the_valid_generation() {
    let (wal, root, _full) = seeded_wal_dir("artifacts");
    // Stale staged checkpoint (crash before the rename commit point).
    fs::write(root.join("checkpoint.tmp"), b"half-written garbage").unwrap();
    // A later generation whose checkpoint is corrupt (crash during an
    // unsynced rename on a dying disk) plus a garbage log beside it.
    fs::write(root.join("checkpoint.7"), b"\0\0not a hopl arena").unwrap();
    fs::write(root.join("wal.7"), b"\x11\x22\x33").unwrap();

    let rec = wal.recover().expect("artifacts tolerated").expect("gen 0");
    assert_eq!(rec.generation, 0, "must fall back past corrupt gen 7");
    assert_eq!(rec.ops, SCRIPT);

    let mut oracle = DynamicOracle::new(rec.base);
    oracle.replay(&rec.ops).expect("replay");
    let truth = apply_ops(SEED_EDGES, SCRIPT);
    assert_matches_bfs(SEED_N, &truth, "artifacts", |u, v| oracle.query(u, v));
    fs::remove_dir_all(&root).ok();
}

/// A remove of a new-base edge plus its *reverse* insert landing
/// mid-rebuild: the insert was acknowledged only because the remove's
/// tombstone was already live, so the rotated log must replay the
/// remove first. (Seeding `wal.N+1` inserts-first made recovery die on
/// a spurious cycle error — acknowledged, durably-logged data became
/// unrecoverable.)
#[test]
fn remove_then_reverse_insert_mid_rebuild_survives_rotation_and_restart() {
    let root = temp_dir("reverse");
    let wal = WalDir::open(&root).expect("open wal dir");
    let seed = Dag::from_edges(3, &[(0, 1)]).expect("seed dag");
    wal.initialize(&seed).expect("initialize generation 0");
    let mut oracle = DynamicOracle::new(seed);
    oracle.set_durability(Box::new(
        wal.durability(0, 0, 0, WalConfig::sync_every_record())
            .expect("open appender"),
    ));
    oracle.set_auto_rebuild(false);
    oracle.insert_edge(1, 2).expect("insert 1→2");

    // Exactly what the background worker does: snapshot the plan,
    // build off-lock, and while that build is "running" land the
    // remove + reverse insert. (0, 1) is part of the rebuilt base, so
    // the overlay after publish is Remove(0,1) + Insert(1,0) — and
    // Insert(1,0) is valid only once (0, 1) is tombstoned.
    let plan = oracle.rebuild_plan();
    let rebuilt = plan.execute();
    oracle.remove_edge(0, 1).expect("remove 0→1 mid-rebuild");
    oracle
        .insert_edge(1, 0)
        .expect("reverse insert 1→0 mid-rebuild");

    let arena = hoplite::core::wal::checkpoint_bytes(rebuilt.dag()).expect("checkpoint bytes");
    wal.prepare_checkpoint(&arena).expect("stage checkpoint");
    let overlay = oracle.publish(rebuilt);
    assert_eq!(
        overlay,
        [EdgeOp::Remove(0, 1), EdgeOp::Insert(1, 0)],
        "rotation must seed removes before inserts"
    );
    oracle
        .durability_mut()
        .expect("hook installed")
        .rotate(&overlay)
        .expect("rotate");
    drop(oracle); // the "kill"

    // Restart twice: replaying the rotated generation must accept the
    // reverse insert (the tombstone replays first) both times.
    for restart in 1..=2 {
        let rec = wal
            .recover()
            .expect("recover")
            .expect("rotated generation present");
        assert_eq!(rec.generation, 1, "restart {restart}");
        let mut recovered = DynamicOracle::new(rec.base);
        recovered
            .replay(&rec.ops)
            .expect("replaying a rotated log with a reverse insert must not fail");
        let truth = apply_ops(&[(1, 2), (1, 0)], &[]);
        assert_matches_bfs(3, &truth, &format!("restart {restart}"), |u, v| {
            recovered.query(u, v)
        });
    }
    fs::remove_dir_all(&root).ok();
}

/// When the only checkpoint is corrupt there is no state to serve —
/// that must surface as an explicit error, not silent data loss.
#[test]
fn a_sole_corrupt_checkpoint_is_an_error_not_an_empty_namespace() {
    let (wal, root, _full) = seeded_wal_dir("corrupt");
    let path = root.join("checkpoint.0");
    let mut bytes = fs::read(&path).unwrap();
    bytes[0] ^= 0xFF; // magic — validated on every open
    fs::write(&path, &bytes).unwrap();
    assert!(wal.recover().is_err(), "corrupt sole checkpoint must error");
    fs::remove_dir_all(&root).ok();
}

// ---------------------------------------------------------------------
// Replay idempotence.
// ---------------------------------------------------------------------

/// `recover()` is read-only and replay is idempotent: recovering
/// twice yields identical state, and replaying the same ops twice
/// (a crash *during* replay, then a second recovery) changes nothing.
#[test]
fn double_recovery_and_double_replay_are_idempotent() {
    let (wal, root, _full) = seeded_wal_dir("double");
    let first = wal.recover().unwrap().unwrap();
    let second = wal.recover().unwrap().unwrap();
    assert_eq!(first.generation, second.generation);
    assert_eq!(first.ops, second.ops);
    assert_eq!(first.wal_bytes, second.wal_bytes);

    let mut oracle = DynamicOracle::new(first.base);
    oracle.replay(&first.ops).expect("first replay");
    oracle.replay(&first.ops).expect("second replay is a no-op");
    let truth = apply_ops(SEED_EDGES, SCRIPT);
    assert_matches_bfs(SEED_N, &truth, "double replay", |u, v| oracle.query(u, v));
    fs::remove_dir_all(&root).ok();
}

// ---------------------------------------------------------------------
// End-to-end: registry restart with background rebuilds in between.
// ---------------------------------------------------------------------

/// Drive a durable namespace through enough mutations to trigger
/// several background rebuilds (checkpoint rotations), "kill" the
/// process by dropping the registry, and re-open twice: both restarts
/// must answer exactly like BFS over the acknowledged edge set, and
/// the seed passed at re-open must lose to the on-disk state.
#[test]
fn registry_restart_after_background_rebuilds_matches_bfs() {
    let root = temp_dir("registry");
    let n = 16usize;
    let seed = Dag::from_edges(n, &[(0, 1), (1, 2)]).unwrap();
    let mut truth = apply_ops(&[(0, 1), (1, 2)], &[]);

    {
        let registry = Registry::new();
        registry
            .open_durable("live", seed, &root, WalConfig::sync_every_record(), Some(2))
            .expect("open durable");
        let handle = registry.get("live").unwrap();

        // A deterministic workload: forward-oriented pairs keep the
        // graph acyclic so every insert is acknowledged.
        let mut state = 0x0123_4567_89AB_CDEF_u64;
        let mut next = || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for i in 0..40 {
            let a = (next() % n as u64) as u32;
            let b = (next() % n as u64) as u32;
            if a == b {
                continue;
            }
            let (u, v) = if a < b { (a, b) } else { (b, a) };
            if i % 5 == 4 {
                handle.remove_edge("live", u, v).expect("remove");
                truth.remove(&(u, v));
            } else {
                handle.add_edge("live", u, v).expect("insert");
                truth.insert((u, v));
            }
        }
        handle.quiesce("live");
        assert!(
            handle.rebuilds_completed() >= 1,
            "threshold 2 over 30+ mutations must have rebuilt"
        );
        assert_matches_bfs(n, &truth, "before restart", |u, v| {
            handle.reach(u, v).expect("reach")
        });
        // Registry dropped here — the "kill". Acknowledged ops are on
        // disk (sync-every-record), nothing else survives.
    }

    for restart in 1..=2 {
        let registry = Registry::new();
        // A *different* seed proves on-disk state wins over the seed.
        let decoy = Dag::from_edges(n, &[(9, 10)]).unwrap();
        registry
            .open_durable("live", decoy, &root, WalConfig::sync_every_record(), None)
            .expect("reopen durable");
        let handle = registry.get("live").unwrap();
        assert_matches_bfs(n, &truth, &format!("restart {restart}"), |u, v| {
            handle.reach(u, v).expect("reach")
        });
    }
    fs::remove_dir_all(&root).ok();
}

// ---------------------------------------------------------------------
// Mixed workload under concurrency (satellite c): wire-level reads,
// mutations, background rebuilds, and a restart, vs BFS ground truth.
// ---------------------------------------------------------------------

/// `(n, seed edges, script of (is_insert, a, b))` — a random base DAG
/// plus a random mutation script, both with edges oriented low→high so
/// the graph stays acyclic and every insert is acknowledged.
type Workload = (u32, Vec<(u32, u32)>, Vec<(bool, u32, u32)>);

fn arb_workload() -> impl Strategy<Value = Workload> {
    (4..=20u32).prop_flat_map(|n| {
        (
            proptest::collection::vec((0..n, 0..n), 0..24),
            proptest::collection::vec((any::<bool>(), 0..n, 0..n), 0..48),
        )
            .prop_map(move |(seed, script)| (n, seed, script))
    })
}

fn orient(a: u32, b: u32) -> Option<(u32, u32)> {
    match a.cmp(&b) {
        std::cmp::Ordering::Less => Some((a, b)),
        std::cmp::Ordering::Equal => None,
        std::cmp::Ordering::Greater => Some((b, a)),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Wire-level mutations race concurrent wire-level reads and
    /// threshold-2 background rebuilds; once the script drains, the
    /// served answers — and, after a full restart replaying
    /// checkpoint+WAL, the recovered answers — equal BFS over the
    /// acknowledged edge set.
    #[test]
    fn concurrent_wire_workload_then_restart_matches_bfs(
        (n, seed_pairs, script) in arb_workload()
    ) {
        let root = temp_dir("prop");
        let seed_edges: BTreeSet<(u32, u32)> =
            seed_pairs.iter().filter_map(|&(a, b)| orient(a, b)).collect();
        let seed_vec: Vec<(u32, u32)> = seed_edges.iter().copied().collect();
        let seed = Dag::from_edges(n as usize, &seed_vec).unwrap();
        let mut truth = seed_edges.clone();

        let registry = Arc::new(Registry::new());
        registry
            .open_durable("live", seed, &root, WalConfig::default(), Some(2))
            .expect("open durable");
        let server = Server::bind(
            "127.0.0.1:0",
            Arc::clone(&registry),
            ServerConfig { workers: 8, ..ServerConfig::default() },
        )
        .expect("bind");
        let addr = server.local_addr();

        // Concurrent readers: hammer random pairs the whole time the
        // writer runs. Answers vary while mutations land; the
        // invariant here is liveness + clean frames (no errors, no
        // hangs), with correctness asserted after the writer drains.
        let stop = Arc::new(AtomicBool::new(false));
        let readers: Vec<_> = (0..2)
            .map(|t| {
                let stop = Arc::clone(&stop);
                std::thread::spawn(move || {
                    let mut client = Client::connect(addr).expect("reader connect");
                    let mut state = 0xACE1u64 + t;
                    let mut queries = 0u64;
                    while !stop.load(Ordering::Relaxed) {
                        state ^= state << 13;
                        state ^= state >> 7;
                        state ^= state << 17;
                        let u = (state % n as u64) as u32;
                        let v = ((state >> 32) % n as u64) as u32;
                        client.reach("live", u, v).expect("concurrent read");
                        queries += 1;
                    }
                    queries
                })
            })
            .collect();

        let mut writer = Client::connect(addr).expect("writer connect");
        for &(insert, a, b) in &script {
            let Some((u, v)) = orient(a, b) else { continue };
            if insert {
                writer.add_edge("live", u, v).expect("wire insert");
                truth.insert((u, v));
            } else {
                writer.remove_edge("live", u, v).expect("wire remove");
                truth.remove(&(u, v));
            }
        }

        let handle = registry.get("live").unwrap();
        handle.quiesce("live");
        assert_matches_bfs(n as usize, &truth, "served", |u, v| {
            writer.reach("live", u, v).expect("reach")
        });

        stop.store(true, Ordering::Relaxed);
        for r in readers {
            let queries = r.join().expect("reader thread");
            prop_assert!(queries > 0, "reader never got a query through");
        }
        // Acknowledged mutations must be on disk before the "kill":
        // the default config group-commits, so force the tail out the
        // way a clean shutdown does.
        handle.sync_durability().expect("final sync");
        server.shutdown();
        drop(handle);
        drop(registry);

        // Restart: recover checkpoint + WAL into a fresh registry and
        // compare against the same ground truth.
        let registry = Registry::new();
        let decoy = Dag::from_edges(n as usize, &[]).unwrap();
        registry
            .open_durable("live", decoy, &root, WalConfig::default(), None)
            .expect("reopen");
        let handle = registry.get("live").unwrap();
        assert_matches_bfs(n as usize, &truth, "restarted", |u, v| {
            handle.reach(u, v).expect("recovered reach")
        });
        fs::remove_dir_all(&root).ok();
    }
}

// Keep the unused-import lint honest: Oracle is exercised indirectly
// (checkpoints are HOPL arenas opened by recovery), and opening one
// directly documents the on-disk format contract.
#[test]
fn checkpoints_are_plain_hopl_arenas() {
    let (_wal, root, _full) = seeded_wal_dir("arena");
    let oracle = Oracle::open(root.join("checkpoint.0")).expect("checkpoint opens as HOPL");
    assert_eq!(oracle.comp_of().len(), SEED_N);
    fs::remove_dir_all(&root).ok();
}
