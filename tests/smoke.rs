//! Workspace smoke test: the batteries-included [`hoplite::Oracle`]
//! facade, end to end, on random *cyclic* digraphs.
//!
//! This is the one test a fresh checkout should be able to point at to
//! know the whole stack works: SCC condensation (`hoplite-graph`),
//! Distribution-Labeling construction and queries (`hoplite-core`), the
//! parallel batch path (`hoplite-core::parallel`), all driven through
//! the root facade exactly the way the README quickstart does. Ground
//! truth is plain BFS over the original graph
//! ([`hoplite::graph::traversal::reaches`]).

use hoplite::graph::gen::Rng;
use hoplite::graph::traversal;
use hoplite::{DiGraph, Oracle, ReachIndex, VertexId};

/// A random digraph with `n` vertices and up to `m` edges, cycles and
/// duplicate edges very much included.
fn random_cyclic_digraph(n: usize, m: usize, seed: u64) -> DiGraph {
    let mut rng = Rng::new(seed);
    let edges: Vec<(VertexId, VertexId)> = (0..m)
        .filter_map(|_| {
            let u = rng.gen_index(n) as VertexId;
            let v = rng.gen_index(n) as VertexId;
            (u != v).then_some((u, v))
        })
        .collect();
    DiGraph::from_edges(n, &edges).expect("edges are in range")
}

#[test]
fn oracle_matches_bfs_on_random_cyclic_digraphs() {
    for (seed, n, m) in [
        (1u64, 24usize, 40usize),
        (2, 32, 96),
        (3, 48, 160),
        (4, 16, 64),
    ] {
        let g = random_cyclic_digraph(n, m, seed);
        let oracle = Oracle::new(&g);
        assert!(oracle.num_components() <= n);
        for u in 0..n as VertexId {
            for v in 0..n as VertexId {
                assert_eq!(
                    oracle.reaches(u, v),
                    traversal::reaches(&g, u, v),
                    "seed {seed}: ({u},{v})"
                );
            }
        }
    }
}

#[test]
fn batch_path_matches_singles_and_bfs() {
    let g = random_cyclic_digraph(40, 130, 7);
    let oracle = Oracle::new(&g);
    let mut rng = Rng::new(99);
    let pairs: Vec<(VertexId, VertexId)> = (0..2000)
        .map(|_| (rng.gen_index(40) as VertexId, rng.gen_index(40) as VertexId))
        .collect();
    for threads in [1, 2, 8] {
        let batch = oracle.reaches_batch(&pairs, threads);
        assert_eq!(batch.len(), pairs.len());
        for (&(u, v), &got) in pairs.iter().zip(&batch) {
            assert_eq!(
                got,
                traversal::reaches(&g, u, v),
                "({u},{v}) at {threads} threads"
            );
        }
    }
}

#[test]
fn oracle_reports_nonempty_index_stats() {
    let g = random_cyclic_digraph(30, 70, 11);
    let oracle = Oracle::new(&g);
    assert!(oracle.label_entries() > 0, "labels were built");
    // Three independent views of the component structure must agree:
    // the size-table length, the DAG, and the labeled vertex count.
    let c = oracle.num_components();
    assert!(c > 0 && c <= oracle.num_vertices());
    assert_eq!(oracle.dag().num_vertices(), c);
    assert_eq!(oracle.inner().labeling().num_vertices(), c);
    assert_eq!(
        oracle
            .comp_sizes()
            .iter()
            .map(|&s| s as usize)
            .sum::<usize>(),
        oracle.num_vertices(),
        "components partition the vertices"
    );
    // The inner DL oracle answers condensation-level queries reflexively.
    assert!(oracle.inner().query(0, 0));
}
