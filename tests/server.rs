//! Integration suite for the `hoplite-server` serving tier: concurrent
//! clients over a real loopback socket cross-checked against BFS
//! ground truth, dynamic edge-mutation visibility, and a fuzz-style
//! pass feeding truncated / corrupt / oversized frames (the wire-level
//! sibling of `tests/persist_fuzz.rs`).

use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::Arc;

use hoplite::core::DynamicOracle;
use hoplite::graph::gen::Rng;
use hoplite::graph::traversal;
use hoplite::server::{
    Client, ClientError, ErrorCode, NamespaceKind, Registry, Response, Server, ServerConfig,
    MAX_FRAME_LEN, PROTOCOL_VERSION,
};
use hoplite::{Dag, DiGraph, Oracle, VertexId};

fn random_cyclic_digraph(n: usize, m: usize, seed: u64) -> DiGraph {
    let mut rng = Rng::new(seed);
    let edges: Vec<(VertexId, VertexId)> = (0..m)
        .filter_map(|_| {
            let u = rng.gen_index(n) as VertexId;
            let v = rng.gen_index(n) as VertexId;
            (u != v).then_some((u, v))
        })
        .collect();
    DiGraph::from_edges(n, &edges).expect("edges are in range")
}

fn serve(registry: Registry) -> hoplite::server::ServerHandle {
    // Each live connection pins a worker; give the suites generous
    // headroom over their client counts regardless of host core count.
    let config = ServerConfig {
        workers: 16,
        ..ServerConfig::default()
    };
    Server::bind("127.0.0.1:0", Arc::new(registry), config).expect("bind ephemeral loopback port")
}

#[test]
fn concurrent_clients_agree_with_bfs_ground_truth() {
    let n = 60;
    let g = random_cyclic_digraph(n, 200, 0xFEED);
    let registry = Registry::new();
    registry.insert_frozen("web", Oracle::new(&g)).unwrap();
    let handle = serve(registry);
    let addr = handle.local_addr();

    // 6 concurrent clients; each takes a slice of the full n×n query
    // matrix, alternating single REACH and BATCH frames.
    let clients = 6u32;
    std::thread::scope(|scope| {
        for c in 0..clients {
            let g = &g;
            scope.spawn(move || {
                let mut client = Client::connect(addr).expect("connect");
                let mine: Vec<(u32, u32)> = (0..n as u32)
                    .flat_map(|u| (0..n as u32).map(move |v| (u, v)))
                    .filter(|&(u, v)| (u * n as u32 + v) % clients == c)
                    .collect();
                for chunk in mine.chunks(64) {
                    if chunk.len() % 2 == 1 {
                        // Odd chunks go one by one.
                        for &(u, v) in chunk {
                            assert_eq!(
                                client.reach("web", u, v).expect("REACH"),
                                traversal::reaches(g, u, v),
                                "client {c}: ({u},{v})"
                            );
                        }
                    } else {
                        let answers = client.reach_batch("web", chunk).expect("BATCH");
                        for (&(u, v), &got) in chunk.iter().zip(&answers) {
                            assert_eq!(got, traversal::reaches(g, u, v), "client {c}: ({u},{v})");
                        }
                    }
                }
            });
        }
    });

    let mut probe = Client::connect(addr).unwrap();
    let stats = probe.stats("web").unwrap();
    assert_eq!(stats.kind, NamespaceKind::Frozen);
    assert_eq!(stats.vertices, n as u64);
    assert_eq!(stats.queries, (n * n) as u64, "every pair queried once");
    assert!(handle.connections_accepted() >= clients as u64);
    handle.shutdown();
}

#[test]
fn dynamic_mutations_become_visible_to_subsequent_queries() {
    let dag = Dag::from_edges(8, &[(0, 1), (1, 2), (3, 4), (4, 5), (6, 7)]).unwrap();
    let registry = Registry::new();
    registry
        .insert_dynamic("live", DynamicOracle::new(dag))
        .unwrap();
    let handle = serve(registry);
    let addr = handle.local_addr();

    let mut writer = Client::connect(addr).unwrap();
    let mut reader = Client::connect(addr).unwrap();

    assert!(!reader.reach("live", 0, 5).unwrap());
    writer.add_edge("live", 2, 3).unwrap();
    assert!(
        reader.reach("live", 0, 5).unwrap(),
        "insert visible across connections"
    );

    writer.add_edge("live", 5, 6).unwrap();
    assert!(reader.reach("live", 0, 7).unwrap(), "chained delta edges");

    // Cycle-closing inserts are rejected with an error reply, and the
    // graph is unchanged.
    match writer.add_edge("live", 5, 0) {
        Err(ClientError::Server(message)) => {
            assert!(message.contains("cycle"), "got: {message}")
        }
        other => panic!("cycle insert returned {other:?}"),
    }
    assert!(reader.reach("live", 0, 5).unwrap());

    assert!(writer.remove_edge("live", 2, 3).unwrap());
    assert!(
        !reader.reach("live", 0, 5).unwrap(),
        "removal visible across connections"
    );
    assert!(!writer.remove_edge("live", 2, 3).unwrap(), "already gone");

    let stats = reader.stats("live").unwrap();
    assert_eq!(stats.kind, NamespaceKind::Dynamic);
    assert_eq!(stats.vertices, 8);
    handle.shutdown();
}

#[test]
fn batch_and_single_queries_agree_through_the_wire() {
    let g = random_cyclic_digraph(40, 130, 7);
    let registry = Registry::new();
    registry.insert_frozen("g", Oracle::new(&g)).unwrap();
    let handle = serve(registry);

    let mut client = Client::connect(handle.local_addr()).unwrap();
    let mut rng = Rng::new(99);
    let pairs: Vec<(u32, u32)> = (0..500)
        .map(|_| (rng.gen_index(40) as u32, rng.gen_index(40) as u32))
        .collect();
    let batch = client.reach_batch("g", &pairs).unwrap();
    for (&(u, v), &got) in pairs.iter().zip(&batch) {
        assert_eq!(got, client.reach("g", u, v).unwrap(), "({u},{v})");
    }
    assert!(client.reach_batch("g", &[]).unwrap().is_empty());
    handle.shutdown();
}

#[test]
fn semantic_errors_are_replies_not_disconnects() {
    let g = DiGraph::from_edges(3, &[(0, 1), (1, 2)]).unwrap();
    let registry = Registry::new();
    registry.insert_frozen("g", Oracle::new(&g)).unwrap();
    let handle = serve(registry);
    let mut client = Client::connect(handle.local_addr()).unwrap();

    for (err, needle) in [
        (
            client.reach("absent", 0, 1).unwrap_err(),
            "unknown namespace",
        ),
        (client.reach("g", 0, 99).unwrap_err(), "out of range"),
        (client.add_edge("g", 0, 2).unwrap_err(), "frozen"),
        (client.stats("absent").unwrap_err(), "unknown namespace"),
    ] {
        match err {
            ClientError::Server(message) => {
                assert!(message.contains(needle), "{message:?} lacks {needle:?}")
            }
            other => panic!("expected a server error reply, got {other:?}"),
        }
        // The connection survives every semantic error.
        client.ping().expect("connection still serviceable");
    }
    handle.shutdown();
}

/// Sends raw bytes as one frame and returns the decoded reply (if the
/// server replied at all before closing).
fn send_raw(addr: std::net::SocketAddr, payload: &[u8]) -> Option<Response> {
    let mut stream = TcpStream::connect(addr).unwrap();
    stream
        .set_read_timeout(Some(std::time::Duration::from_secs(5)))
        .unwrap();
    stream
        .write_all(&(payload.len() as u32).to_le_bytes())
        .unwrap();
    stream.write_all(payload).unwrap();
    let mut len = [0u8; 4];
    stream.read_exact(&mut len).ok()?;
    let mut reply = vec![0u8; u32::from_le_bytes(len) as usize];
    stream.read_exact(&mut reply).ok()?;
    Some(Response::decode(&reply).expect("server replies are well-formed"))
}

#[test]
fn malformed_frames_get_clean_error_replies_never_panics_or_wrong_answers() {
    let g = random_cyclic_digraph(20, 60, 3);
    let registry = Registry::new();
    registry.insert_frozen("g", Oracle::new(&g)).unwrap();
    let handle = serve(registry);
    let addr = handle.local_addr();

    let cases: Vec<(&str, Vec<u8>)> = vec![
        ("empty payload", vec![]),
        ("version only", vec![PROTOCOL_VERSION]),
        ("bad version", vec![99, 0x01]),
        ("unknown opcode", vec![PROTOCOL_VERSION, 0x42]),
        ("reach with no body", vec![PROTOCOL_VERSION, 0x02]),
        (
            "reach with truncated vertex",
            vec![PROTOCOL_VERSION, 0x02, 1, b'g', 1, 0, 0],
        ),
        (
            "name length past end",
            vec![PROTOCOL_VERSION, 0x06, 200, b'g'],
        ),
        ("non-utf8 name", vec![PROTOCOL_VERSION, 0x06, 2, 0xFF, 0xFE]),
        ("trailing bytes", {
            let mut b = vec![PROTOCOL_VERSION, 0x01];
            b.push(0);
            b
        }),
        ("batch count mismatch", {
            let mut b = vec![PROTOCOL_VERSION, 0x03, 1, b'g'];
            b.extend_from_slice(&1000u32.to_le_bytes());
            b.extend_from_slice(&[1, 2, 3]);
            b
        }),
        ("batch count over limit", {
            let mut b = vec![PROTOCOL_VERSION, 0x03, 1, b'g'];
            b.extend_from_slice(&u32::MAX.to_le_bytes());
            b
        }),
    ];
    for (what, payload) in &cases {
        match send_raw(addr, payload) {
            Some(Response::Error(message)) => {
                assert!(
                    message.starts_with("bad request:"),
                    "{what}: unexpected message {message:?}"
                );
            }
            Some(other) => panic!("{what}: got non-error reply {other:?}"),
            None => panic!("{what}: connection closed without a reply"),
        }
    }

    // Oversized length prefix: error reply, then the connection closes
    // (framing can no longer be trusted).
    {
        let mut stream = TcpStream::connect(addr).unwrap();
        stream
            .set_read_timeout(Some(std::time::Duration::from_secs(5)))
            .unwrap();
        stream
            .write_all(&(MAX_FRAME_LEN + 1).to_le_bytes())
            .unwrap();
        let mut len = [0u8; 4];
        stream.read_exact(&mut len).unwrap();
        let mut reply = vec![0u8; u32::from_le_bytes(len) as usize];
        stream.read_exact(&mut reply).unwrap();
        match Response::decode(&reply).unwrap() {
            Response::Error(message) => assert!(message.contains("exceeds"), "{message}"),
            other => panic!("oversized frame got {other:?}"),
        }
        let mut probe = [0u8; 1];
        assert_eq!(stream.read(&mut probe).unwrap(), 0, "connection closed");
    }

    // Seeded garbage fuzz: random payloads must produce error replies
    // (or at worst a clean close), and the server must keep serving
    // correct answers afterwards.
    let mut rng = Rng::new(0xBAD5EED);
    for round in 0..64 {
        let len = rng.gen_index(48);
        let payload: Vec<u8> = (0..len).map(|_| rng.gen_range(256) as u8).collect();
        // Skip the rare case where garbage forms a valid request; any
        // reply (or clean close) is acceptable then.
        if let Some(Response::Error(message)) = send_raw(addr, &payload) {
            assert!(!message.is_empty(), "round {round}");
        }
    }

    let mut client = Client::connect(addr).unwrap();
    client.ping().expect("server alive after the fuzz barrage");
    for (u, v) in [(0u32, 5u32), (3, 3), (7, 19)] {
        assert_eq!(
            client.reach("g", u, v).unwrap(),
            traversal::reaches(&g, u, v),
            "post-fuzz answers stay correct"
        );
    }
    assert!(handle.errors_replied() >= cases.len() as u64);
    handle.shutdown();
}

#[test]
fn frozen_namespace_from_saved_index_serves_identically() {
    // The "build once, ship to replicas" path: save an Oracle, load it
    // as a replica would, serve the loaded copy, and cross-check.
    let g = random_cyclic_digraph(32, 100, 21);
    let original = Oracle::new(&g);
    let mut blob = Vec::new();
    original.save(&mut blob).unwrap();
    let replica = Oracle::load(std::io::Cursor::new(&blob)).unwrap();

    let registry = Registry::new();
    registry.insert_frozen("replica", replica).unwrap();
    let handle = serve(registry);
    let mut client = Client::connect(handle.local_addr()).unwrap();
    for u in 0..32u32 {
        for v in 0..32u32 {
            assert_eq!(
                client.reach("replica", u, v).unwrap(),
                traversal::reaches(&g, u, v),
                "({u},{v})"
            );
        }
    }
    handle.shutdown();
}

#[test]
fn mapped_arena_index_serves_and_reports_its_backend() {
    // The zero-copy replica path: save a HOPL v3 arena, open it
    // mapped, register ONE Arc'd snapshot under several namespaces
    // (replica fan-out without cloning the index), serve over the
    // wire, and cross-check against BFS ground truth. STATS must
    // report the mapped backend and a mapped-byte footprint.
    let g = random_cyclic_digraph(40, 130, 23);
    let original = Oracle::new(&g);
    let path =
        std::env::temp_dir().join(format!("hoplite-server-arena-{}.hopl3", std::process::id()));
    let mut blob = Vec::new();
    original.save_arena(&mut blob).unwrap();
    std::fs::write(&path, &blob).unwrap();
    let snapshot = Arc::new(Oracle::open(&path).expect("mapped open"));
    std::fs::remove_file(&path).ok();

    let registry = Registry::new();
    registry
        .insert_frozen("web", Arc::clone(&snapshot))
        .unwrap();
    registry.insert_frozen("web-replica", snapshot).unwrap();
    let handle = serve(registry);
    let mut client = Client::connect(handle.local_addr()).unwrap();
    for ns in ["web", "web-replica"] {
        let pairs: Vec<(u32, u32)> = (0..40u32)
            .flat_map(|u| (0..40u32).map(move |v| (u, v)))
            .collect();
        let answers = client.reach_batch(ns, &pairs).unwrap();
        for (&(u, v), &got) in pairs.iter().zip(&answers) {
            assert_eq!(got, traversal::reaches(&g, u, v), "{ns} ({u},{v})");
        }
        let stats = client.stats(ns).unwrap();
        // Only a real mmap may report "mapped" (the split is an RSS
        // report); off unix, map_file falls back to a heap read and
        // honestly reports heap.
        #[cfg(unix)]
        {
            assert_eq!(stats.backend, hoplite::server::IndexBackend::Mapped);
            assert!(stats.mapped_bytes > 0, "{stats:?}");
            assert!(
                stats.mapped_bytes > stats.heap_bytes,
                "a mapped index keeps its bulk in the arena: {stats:?}"
            );
        }
        assert_eq!(
            stats.filter_hits + stats.signature_hits + stats.merge_runs,
            pairs.len() as u64,
            "every query dies in exactly one stage: {stats:?}"
        );
    }
    // A built-in-process namespace reports heap, for contrast.
    let registry = Registry::new();
    registry.insert_frozen("heap", Oracle::new(&g)).unwrap();
    let handle2 = serve(registry);
    let mut client2 = Client::connect(handle2.local_addr()).unwrap();
    let stats = client2.stats("heap").unwrap();
    assert_eq!(stats.backend, hoplite::server::IndexBackend::Heap);
    assert_eq!(stats.mapped_bytes, 0, "{stats:?}");
    assert!(stats.heap_bytes > 0, "{stats:?}");
    handle.shutdown();
    handle2.shutdown();
}

#[test]
fn pr3_era_index_without_signature_section_serves_over_the_wire() {
    // Backward compat: an index written before the rank-band signature
    // layer existed (byte-wise: today's format minus the trailing SIGS
    // section) must load, rebuild its signatures on the fly, and serve
    // correct answers — with the STATS stage counters accounting every
    // query.
    let g = random_cyclic_digraph(32, 100, 22);
    let original = Oracle::new(&g);
    let mut blob = Vec::new();
    original.save(&mut blob).unwrap();
    // The SIGS section covers the condensation components (one u64 per
    // side per component) plus magic, shift, and count.
    let sig_section = 4 + 4 + 8 + 16 * original.num_components();
    blob.truncate(blob.len() - sig_section);
    let replica = Oracle::load(std::io::Cursor::new(&blob)).expect("legacy index loads");

    let registry = Registry::new();
    registry.insert_frozen("legacy", replica).unwrap();
    let handle = serve(registry);
    let mut client = Client::connect(handle.local_addr()).unwrap();
    let pairs: Vec<(u32, u32)> = (0..32u32)
        .flat_map(|u| (0..32u32).map(move |v| (u, v)))
        .collect();
    let answers = client.reach_batch("legacy", &pairs).unwrap();
    for (&(u, v), &got) in pairs.iter().zip(&answers) {
        assert_eq!(got, traversal::reaches(&g, u, v), "({u},{v})");
    }
    let stats = client.stats("legacy").unwrap();
    assert_eq!(stats.queries, pairs.len() as u64);
    assert_eq!(
        stats.filter_hits + stats.signature_hits + stats.merge_runs,
        pairs.len() as u64,
        "every query dies in exactly one stage: {stats:?}"
    );
    assert!(
        stats.signature_bytes > 0,
        "rebuilt signatures must be reported: {stats:?}"
    );
    handle.shutdown();
}

#[test]
fn over_capacity_connections_get_an_explicit_refusal_not_a_hang() {
    let g = DiGraph::from_edges(3, &[(0, 1), (1, 2)]).unwrap();
    let registry = Registry::new();
    registry.insert_frozen("g", Oracle::new(&g)).unwrap();
    let config = ServerConfig {
        workers: 2,
        ..ServerConfig::default()
    };
    let handle = Server::bind("127.0.0.1:0", Arc::new(registry), config).unwrap();
    let addr = handle.local_addr();

    // Two persistent clients occupy both workers…
    let mut c1 = Client::connect(addr).unwrap();
    let mut c2 = Client::connect(addr).unwrap();
    c1.ping().unwrap();
    c2.ping().unwrap();

    // …so a third gets an immediate, *typed* refusal — OVERLOADED with
    // a retry-after hint — instead of hanging behind them.
    let mut c3 = Client::connect(addr).unwrap();
    match c3.ping() {
        Err(
            refusal @ ClientError::Refused {
                code: ErrorCode::Overloaded,
                ..
            },
        ) => {
            assert!(format!("{refusal}").contains("capacity"), "{refusal}");
            assert!(refusal.is_retryable());
            assert!(
                refusal.retry_after().unwrap() > std::time::Duration::ZERO,
                "refusal must carry a retry-after hint"
            );
        }
        other => panic!("over-capacity connection got {other:?}"),
    }
    assert_eq!(handle.connections_rejected(), 1);

    // Freeing a slot lets new connections in again (the worker notices
    // the disconnect within its poll interval).
    drop(c1);
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(5);
    loop {
        let mut c4 = Client::connect(addr).unwrap();
        match c4.reach("g", 0, 2) {
            Ok(answer) => {
                assert!(answer);
                break;
            }
            Err(ClientError::Refused {
                code: ErrorCode::Overloaded,
                ..
            }) => {
                assert!(
                    std::time::Instant::now() < deadline,
                    "slot never freed after client disconnect"
                );
                std::thread::sleep(std::time::Duration::from_millis(20));
            }
            Err(other) => panic!("unexpected error {other:?}"),
        }
    }
    handle.shutdown();
}

/// Edge cases specific to the epoll/kqueue reactor serving mode:
/// partial frames, idle sockets, write backpressure, a 1k-connection
/// sweep against ground truth, and shutdown with a frame in flight.
#[cfg(unix)]
mod reactor {
    use super::*;
    use hoplite::server::{FrameAccumulator, Request, ServeMode, ServerHandle};
    use std::time::{Duration, Instant};

    fn serve_reactor(registry: Registry, config: ServerConfig) -> ServerHandle {
        let config = ServerConfig {
            mode: ServeMode::Reactor,
            ..config
        };
        Server::bind("127.0.0.1:0", Arc::new(registry), config).expect("bind reactor server")
    }

    /// One length-prefixed wire frame for `req`.
    fn frame(req: &Request) -> Vec<u8> {
        let payload = req.encode().expect("encode request");
        let mut bytes = (payload.len() as u32).to_le_bytes().to_vec();
        bytes.extend_from_slice(&payload);
        bytes
    }

    fn reach(u: u32, v: u32) -> Request {
        Request::Reach {
            ns: "g".into(),
            u,
            v,
        }
    }

    /// A single-fd raw connection (no `try_clone`, so a thousand of
    /// these cost a thousand fds, not two thousand).
    struct RawConn {
        stream: TcpStream,
        acc: FrameAccumulator,
    }

    impl RawConn {
        fn connect(addr: std::net::SocketAddr) -> RawConn {
            let stream = TcpStream::connect(addr).expect("connect");
            stream
                .set_read_timeout(Some(Duration::from_secs(10)))
                .unwrap();
            stream.set_nodelay(true).unwrap();
            RawConn {
                stream,
                acc: FrameAccumulator::new(MAX_FRAME_LEN),
            }
        }

        fn recv(&mut self) -> Response {
            let mut buf = [0u8; 4096];
            loop {
                if let Some(frame) = self.acc.next_frame().expect("well-formed reply") {
                    return Response::decode(&frame).expect("decodable reply");
                }
                let k = self.stream.read(&mut buf).expect("reply bytes");
                assert!(k > 0, "connection closed while a reply was pending");
                self.acc.extend(&buf[..k]);
            }
        }
    }

    #[test]
    fn byte_at_a_time_half_frames_are_reassembled() {
        let g = random_cyclic_digraph(30, 90, 0xD1CE);
        let registry = Registry::new();
        registry.insert_frozen("g", Oracle::new(&g)).unwrap();
        let handle = serve_reactor(registry, ServerConfig::default());

        let mut conn = RawConn::connect(handle.local_addr());
        for &(u, v) in &[(0u32, 17u32), (5, 5), (29, 3), (12, 28)] {
            // Dribble the frame one byte per write; the reactor must
            // accumulate across however many readiness events that
            // takes and answer exactly once.
            for &byte in &frame(&reach(u, v)) {
                conn.stream.write_all(&[byte]).unwrap();
            }
            match conn.recv() {
                Response::Bool(got) => {
                    assert_eq!(got, traversal::reaches(&g, u, v), "({u},{v})")
                }
                other => panic!("({u},{v}) got {other:?}"),
            }
        }
        handle.shutdown();
    }

    #[test]
    fn slow_loris_idle_sockets_do_not_starve_active_clients() {
        let g = random_cyclic_digraph(30, 90, 0x510);
        let registry = Registry::new();
        registry.insert_frozen("g", Oracle::new(&g)).unwrap();
        let handle = serve_reactor(registry, ServerConfig::default());
        let addr = handle.local_addr();

        // 64 connections that never complete a request: half send
        // nothing at all, half park a half-written frame and stall.
        let mut idle = Vec::new();
        for i in 0..64 {
            let mut conn = RawConn::connect(addr);
            if i % 2 == 1 {
                let bytes = frame(&reach(1, 2));
                conn.stream.write_all(&bytes[..bytes.len() / 2]).unwrap();
            }
            idle.push(conn);
        }

        // An active client arriving *after* the loris flood must still
        // get every answer — idle sockets cost the reactor nothing but
        // their fds.
        let mut client = Client::connect(addr).unwrap();
        for u in 0..30u32 {
            for v in 0..30u32 {
                assert_eq!(
                    client.reach("g", u, v).unwrap(),
                    traversal::reaches(&g, u, v),
                    "({u},{v})"
                );
            }
        }

        // The parked half-frames are still half a frame, not garbage:
        // completing one now gets its answer.
        let loris = &mut idle[1];
        let bytes = frame(&reach(1, 2));
        loris.stream.write_all(&bytes[bytes.len() / 2..]).unwrap();
        match loris.recv() {
            Response::Bool(got) => assert_eq!(got, traversal::reaches(&g, 1, 2)),
            other => panic!("completed loris frame got {other:?}"),
        }

        assert!(
            handle.connections_active() >= 65,
            "held {} active connections, expected the loris flood + client",
            handle.connections_active()
        );
        handle.shutdown();
    }

    #[test]
    fn write_backpressure_on_oversized_batch_replies_stalls_and_recovers() {
        let n = 50u32;
        let g = random_cyclic_digraph(n as usize, 170, 0xBACC);
        let registry = Registry::new();
        registry.insert_frozen("g", Oracle::new(&g)).unwrap();
        // A deliberately tiny write budget: a couple of BATCH replies
        // overflow it, so the reactor must stop reading this
        // connection mid-pipeline and resume once the client drains.
        let handle = serve_reactor(
            registry,
            ServerConfig {
                write_backpressure: 2 * 1024,
                ..ServerConfig::default()
            },
        );

        let frames = 32usize;
        let per_batch = 4096usize;
        let mut rng = Rng::new(0x5EED);
        let batches: Vec<Vec<(u32, u32)>> = (0..frames)
            .map(|_| {
                (0..per_batch)
                    .map(|_| {
                        (
                            rng.gen_index(n as usize) as u32,
                            rng.gen_index(n as usize) as u32,
                        )
                    })
                    .collect()
            })
            .collect();

        let mut writer = TcpStream::connect(handle.local_addr()).unwrap();
        writer.set_nodelay(true).unwrap();
        let reader_stream = writer.try_clone().unwrap();
        reader_stream
            .set_read_timeout(Some(Duration::from_secs(30)))
            .unwrap();
        let replies: Vec<Vec<bool>> = std::thread::scope(|scope| {
            // Reader on its own thread: with the server stalled on
            // backpressure, writer and reader must overlap or the test
            // itself would deadlock against the kernel buffers.
            let reader = scope.spawn(move || {
                let mut conn = RawConn {
                    stream: reader_stream,
                    acc: FrameAccumulator::new(MAX_FRAME_LEN),
                };
                (0..frames)
                    .map(|i| match conn.recv() {
                        Response::Bools(bs) => bs,
                        other => panic!("batch {i} got {other:?}"),
                    })
                    .collect::<Vec<_>>()
            });
            for pairs in &batches {
                writer
                    .write_all(&frame(&Request::Batch {
                        ns: "g".into(),
                        pairs: pairs.clone(),
                    }))
                    .unwrap();
            }
            reader.join().expect("reader thread")
        });

        for (i, (pairs, bools)) in batches.iter().zip(&replies).enumerate() {
            assert_eq!(bools.len(), pairs.len(), "batch {i}");
            for (&(u, v), &got) in pairs.iter().zip(bools) {
                assert_eq!(got, traversal::reaches(&g, u, v), "batch {i}: ({u},{v})");
            }
        }
        handle.shutdown();
    }

    #[test]
    fn a_thousand_concurrent_connections_agree_with_bfs_ground_truth() {
        let n = 40u32;
        let g = random_cyclic_digraph(n as usize, 130, 0x1000);
        let registry = Registry::new();
        registry.insert_frozen("g", Oracle::new(&g)).unwrap();
        let handle = serve_reactor(registry, ServerConfig::default());
        let addr = handle.local_addr();

        // 1000 single-fd connections, all open at once (2000 fds with
        // the server's ends — CI raises `ulimit -n` for this). Each
        // pipelines 2 REACH frames from a disjoint slice of the n×n
        // matrix before anything is read back, so the reactor sees
        // cross-connection bursts it can coalesce.
        let conns_total = 1000usize;
        let per_conn = 2usize;
        let pairs: Vec<(u32, u32)> = (0..conns_total * per_conn)
            .map(|i| {
                let i = i as u32;
                (i / per_conn as u32 % n, i % n)
            })
            .collect();
        let mut conns: Vec<RawConn> = (0..conns_total).map(|_| RawConn::connect(addr)).collect();
        for (c, conn) in conns.iter_mut().enumerate() {
            let mut burst = Vec::new();
            for k in 0..per_conn {
                let (u, v) = pairs[c * per_conn + k];
                burst.extend_from_slice(&frame(&reach(u, v)));
            }
            conn.stream.write_all(&burst).unwrap();
        }
        for (c, conn) in conns.iter_mut().enumerate() {
            for k in 0..per_conn {
                let (u, v) = pairs[c * per_conn + k];
                match conn.recv() {
                    Response::Bool(got) => {
                        assert_eq!(got, traversal::reaches(&g, u, v), "conn {c}: ({u},{v})")
                    }
                    other => panic!("conn {c}: ({u},{v}) got {other:?}"),
                }
            }
        }

        assert_eq!(
            handle.connections_active(),
            conns_total,
            "all connections stay registered until dropped"
        );
        assert!(
            handle.connections_accepted() >= conns_total as u64,
            "accepted {}",
            handle.connections_accepted()
        );
        drop(conns);
        handle.shutdown();
    }

    #[test]
    fn shutdown_with_a_half_frame_in_flight_is_prompt_and_clean() {
        let g = DiGraph::from_edges(3, &[(0, 1), (1, 2)]).unwrap();
        let registry = Registry::new();
        registry.insert_frozen("g", Oracle::new(&g)).unwrap();
        let handle = serve_reactor(registry, ServerConfig::default());

        // A healthy connection first, so the half-frame below is
        // parked on a connection the reactor has fully registered.
        let mut conn = RawConn::connect(handle.local_addr());
        conn.stream.write_all(&frame(&Request::Ping)).unwrap();
        assert!(matches!(conn.recv(), Response::Pong));
        let bytes = frame(&reach(0, 2));
        conn.stream.write_all(&bytes[..bytes.len() - 3]).unwrap();
        // Give the reactor a tick to pull the partial bytes in.
        std::thread::sleep(Duration::from_millis(60));

        let started = Instant::now();
        handle.shutdown();
        assert!(
            started.elapsed() < Duration::from_secs(5),
            "shutdown must not wait on the unfinished frame"
        );
        // The parked connection observes the close instead of hanging.
        let mut probe = [0u8; 16];
        match conn.stream.read(&mut probe) {
            Ok(0) => {}
            Ok(k) => panic!("server invented {k} bytes of reply to half a frame"),
            Err(e) => assert!(
                matches!(
                    e.kind(),
                    std::io::ErrorKind::ConnectionReset | std::io::ErrorKind::BrokenPipe
                ),
                "unexpected error {e:?}"
            ),
        }
    }
}

#[test]
fn metrics_op_reports_query_outcomes_and_latency_summaries() {
    let n = 30u32;
    let g = random_cyclic_digraph(n as usize, 90, 0x0B5);
    let registry = Registry::new();
    registry.insert_frozen("g", Oracle::new(&g)).unwrap();
    registry
        .insert_dynamic(
            "live",
            DynamicOracle::new(Dag::from_edges(2, &[(0, 1)]).unwrap()),
        )
        .unwrap();
    let handle = serve(registry);
    let mut client = Client::connect(handle.local_addr()).unwrap();

    let pairs: Vec<(u32, u32)> = (0..n).flat_map(|u| (0..n).map(move |v| (u, v))).collect();
    client.reach_batch("g", &pairs).unwrap();
    for (u, v) in [(0, 1), (5, 7), (9, 9)] {
        client.reach("g", u, v).unwrap();
    }
    client.reach("live", 0, 1).unwrap();

    let report = client.metrics("").unwrap();
    let total = (pairs.len() + 3) as u64;
    assert_eq!(
        report.counter("ns_queries_total{ns=\"g\"}"),
        Some(total),
        "{report:?}"
    );
    assert_eq!(report.counter("ns_queries_total{ns=\"live\"}"), Some(1));
    // Every query dies in exactly one stage, and the outcome split
    // must account for all of them — batch and single alike.
    let outcomes: u64 = ["filter", "signature", "merge"]
        .iter()
        .map(|o| {
            report
                .counter(&format!("ns_query_outcome_total{{ns=\"g\",outcome={o:?}}}"))
                .unwrap_or(0)
        })
        .sum();
    assert_eq!(outcomes, total);
    // The three single REACHes were timed into per-outcome latency
    // histograms; the batch frame into the batch histogram.
    let timed: u64 = ["filter", "signature", "merge"]
        .iter()
        .filter_map(|o| report.histogram(&format!("ns_query_latency_ns{{ns=\"g\",outcome={o:?}}}")))
        .map(|s| s.count)
        .sum();
    assert_eq!(timed, 3);
    let batch_hist = report
        .histogram("ns_batch_latency_ns{ns=\"g\"}")
        .expect("batch latency summary present");
    assert_eq!(batch_hist.count, 1);
    assert!(batch_hist.max >= batch_hist.p50);
    // Server-wide series ride along.
    assert!(report.counter("server_frames_total").unwrap_or(0) >= total / pairs.len() as u64);
    assert!(report.histogram("server_reply_latency_ns").is_some());

    // A namespace filter restricts the per-namespace section.
    let filtered = client.metrics("live").unwrap();
    assert!(filtered.counter("ns_queries_total{ns=\"live\"}").is_some());
    assert!(filtered.counter("ns_queries_total{ns=\"g\"}").is_none());

    // An unknown namespace is a clean error reply.
    match client.metrics("absent") {
        Err(ClientError::Server(message)) => {
            assert!(message.contains("unknown namespace"), "{message}")
        }
        other => panic!("METRICS on absent namespace got {other:?}"),
    }
    handle.shutdown();
}

/// Sends raw bytes as one frame and returns the raw reply payload, so
/// version-echo bytes can be asserted before any decode.
fn send_raw_payload(addr: std::net::SocketAddr, payload: &[u8]) -> Vec<u8> {
    let mut stream = TcpStream::connect(addr).unwrap();
    stream
        .set_read_timeout(Some(std::time::Duration::from_secs(5)))
        .unwrap();
    stream
        .write_all(&(payload.len() as u32).to_le_bytes())
        .unwrap();
    stream.write_all(payload).unwrap();
    let mut len = [0u8; 4];
    stream.read_exact(&mut len).unwrap();
    let mut reply = vec![0u8; u32::from_le_bytes(len) as usize];
    stream.read_exact(&mut reply).unwrap();
    reply
}

#[test]
fn v3_clients_are_served_in_their_own_dialect() {
    let g = DiGraph::from_edges(3, &[(0, 1), (1, 2)]).unwrap();
    let registry = Registry::new();
    registry.insert_frozen("g", Oracle::new(&g)).unwrap();
    let handle = serve(registry);
    let addr = handle.local_addr();

    // A strict v3 client: every reply must carry version byte 3, or
    // its decoder would refuse the frame.
    let v3 = |request: &hoplite::server::Request| {
        let mut payload = request.encode().unwrap();
        assert_eq!(payload[0], PROTOCOL_VERSION);
        payload[0] = 3;
        payload
    };
    let reply = send_raw_payload(addr, &v3(&hoplite::server::Request::Ping));
    assert_eq!(reply[0], 3, "PONG must echo the v3 dialect");
    assert_eq!(Response::decode(&reply).unwrap(), Response::Pong);

    let reply = send_raw_payload(
        addr,
        &v3(&hoplite::server::Request::Reach {
            ns: "g".into(),
            u: 0,
            v: 2,
        }),
    );
    assert_eq!(reply[0], 3);
    assert_eq!(Response::decode(&reply).unwrap(), Response::Bool(true));

    // The METRICS opcode postdates v3: a v3 frame carrying it gets the
    // same answer a v3-era server would give — unknown opcode — as an
    // error reply in the v3 dialect, not a disconnect.
    let reply = send_raw_payload(
        addr,
        &v3(&hoplite::server::Request::Metrics { ns: String::new() }),
    );
    assert_eq!(reply[0], 3);
    match Response::decode(&reply).unwrap() {
        Response::Error(message) => assert!(message.contains("opcode"), "{message}"),
        other => panic!("v3 METRICS frame got {other:?}"),
    }

    // Error replies to undecodable v3 frames stay in the v3 dialect
    // too (the version byte is salvaged from the broken frame).
    let reply = send_raw_payload(addr, &[3, 0x02]);
    assert_eq!(reply[0], 3, "error reply must stay decodable to v3");
    assert!(matches!(
        Response::decode(&reply).unwrap(),
        Response::Error(_)
    ));

    // And the current dialect still works on the same server.
    let mut modern = Client::connect(addr).unwrap();
    assert!(modern.reach("g", 0, 2).unwrap());
    assert!(modern.metrics("").is_ok());
    handle.shutdown();
}

#[test]
fn list_reflects_registry_contents() {
    let registry = Registry::new();
    let g = DiGraph::from_edges(2, &[(0, 1)]).unwrap();
    registry.insert_frozen("beta", Oracle::new(&g)).unwrap();
    registry
        .insert_dynamic(
            "alpha",
            DynamicOracle::new(Dag::from_edges(2, &[]).unwrap()),
        )
        .unwrap();
    let handle = serve(registry);
    let mut client = Client::connect(handle.local_addr()).unwrap();
    let infos = client.list().unwrap();
    assert_eq!(infos.len(), 2);
    assert_eq!(infos[0].name, "alpha");
    assert_eq!(infos[0].kind, NamespaceKind::Dynamic);
    assert_eq!(infos[1].name, "beta");
    assert_eq!(infos[1].kind, NamespaceKind::Frozen);
    handle.shutdown();
}
