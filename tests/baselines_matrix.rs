//! Scale-level validation matrix: every index on ~1–2 k-vertex graphs
//! of each generator family, validated against sampled ground-truth
//! workloads (all-pairs checks live in `correctness.rs` at smaller n).
//! Also asserts the cross-method *relationships* the paper's evaluation
//! hinges on (label compactness, backbone shrinkage, compression
//! ordering) at a scale where they are meaningful.

use hoplite::baselines::twohop::TwoHopConfig;
use hoplite::baselines::{
    ChainIndex, DualLabeling, FullTc, Grail, IntervalIndex, KReach, PathTree, PrunedLandmark,
    Pwah8, Scarab, TfLabel, TwoHop,
};
use hoplite::core::{DistributionLabeling, DlConfig, HierarchicalLabeling, HlConfig, ReachIndex};
use hoplite::graph::{gen, Dag};
use hoplite_bench::workload::{equal_workload, random_workload};

/// Validates `idx` against both workload kinds.
fn validate(idx: &dyn ReachIndex, dag: &Dag, queries: usize, seed: u64) {
    for w in [
        equal_workload(dag, queries, seed),
        random_workload(dag, queries, seed ^ 0xA5A5),
    ] {
        for (&(u, v), &truth) in w.pairs.iter().zip(&w.expected) {
            assert_eq!(idx.query(u, v), truth, "{} wrong at ({u},{v})", idx.name());
        }
    }
}

fn families(n: usize, seed: u64) -> Vec<(&'static str, Dag)> {
    vec![
        ("random", gen::random_dag(n, n * 3, seed)),
        ("power_law", gen::power_law_dag(n, n * 3, seed + 1)),
        ("tree_plus", gen::tree_plus_dag(n, n / 3, seed + 2)),
        ("layered", gen::layered_dag(n, 12, n * 3, seed + 3)),
    ]
}

#[test]
fn oracles_validate_at_scale() {
    for (family, dag) in families(2000, 40) {
        let dl = DistributionLabeling::build(&dag, &DlConfig::default());
        validate(&dl, &dag, 1500, 7);
        let hl = HierarchicalLabeling::build(&dag, &HlConfig::default());
        validate(&hl, &dag, 1500, 7);
        // The paper's compactness shape: HL labels are in DL's
        // ballpark, never an order of magnitude smaller (DL is the
        // non-redundant one).
        assert!(
            dl.labeling().total_entries() <= 2 * hl.labeling().total_entries(),
            "{family}: DL {} vs HL {}",
            dl.labeling().total_entries(),
            hl.labeling().total_entries()
        );
    }
}

#[test]
fn tc_compression_family_validates_at_scale() {
    for (_family, dag) in families(1500, 50) {
        validate(&IntervalIndex::build(&dag, u64::MAX).unwrap(), &dag, 800, 9);
        validate(&PathTree::build(&dag, u64::MAX).unwrap(), &dag, 800, 9);
        validate(&Pwah8::build(&dag, u64::MAX).unwrap(), &dag, 800, 9);
        validate(&ChainIndex::build(&dag, u64::MAX).unwrap(), &dag, 800, 9);
        validate(&DualLabeling::build(&dag, u64::MAX).unwrap(), &dag, 800, 9);
    }
}

#[test]
fn search_and_cover_family_validates_at_scale() {
    for (_family, dag) in families(1500, 60) {
        validate(&Grail::build(&dag, 5, 3), &dag, 800, 11);
        validate(&PrunedLandmark::build(&dag), &dag, 800, 11);
        validate(&TfLabel::build(&dag, 64), &dag, 800, 11);
        validate(&KReach::build(&dag, u64::MAX).unwrap(), &dag, 800, 11);
    }
}

#[test]
fn twohop_validates_at_moderate_scale() {
    // The set-cover construction is the expensive one (the paper's
    // whole point) — validate it at the largest n it can finish
    // quickly.
    let dag = gen::tree_plus_dag(800, 260, 70);
    let idx = TwoHop::build(&dag, &TwoHopConfig::default()).unwrap();
    validate(&idx, &dag, 800, 13);

    // Headline compactness claim (§6.2, Figure 3): DL labels are no
    // larger than the set-cover 2HOP labels.
    let dl = DistributionLabeling::build(&dag, &DlConfig::default());
    assert!(
        dl.labeling().total_entries() <= idx.size_in_integers(),
        "DL {} entries vs 2HOP {} integers",
        dl.labeling().total_entries(),
        idx.size_in_integers()
    );
}

#[test]
fn compression_wins_on_structured_graphs() {
    // TC compression is a bet on structure. On the tree-like and
    // layered families (the paper's metabolic/XML datasets) PWAH-8 and
    // INT must beat the raw bitset TC; on an unstructured random DAG
    // of the same size INT's interval lists can exceed it — exactly
    // the regime where the paper's Tables 5–7 show the compression
    // family collapsing.
    // PWAH's run-length words compress both sparse closures (runs of
    // zeros) and dense layered closures (runs of ones); INT's interval
    // lists only pay off when the closure is contiguous in post-order,
    // i.e. on the tree-like family.
    let structured = [
        ("tree_plus", gen::tree_plus_dag(1200, 400, 81), true),
        ("layered", gen::layered_dag(1200, 12, 3600, 82), false),
    ];
    for (family, dag, int_compresses) in structured {
        let raw = FullTc::build(&dag, u64::MAX).unwrap();
        let pwah = Pwah8::build(&dag, u64::MAX).unwrap();
        let int = IntervalIndex::build(&dag, u64::MAX).unwrap();
        assert!(
            pwah.size_in_integers() < raw.size_in_integers(),
            "{family}: PWAH {} !< raw {}",
            pwah.size_in_integers(),
            raw.size_in_integers()
        );
        assert_eq!(
            int.size_in_integers() < raw.size_in_integers(),
            int_compresses,
            "{family}: INT {} vs raw {}",
            int.size_in_integers(),
            raw.size_in_integers()
        );
    }

    // Structure drives compressibility: the same-sized random DAG
    // needs far more intervals than the tree-like one.
    let tree = IntervalIndex::build(&gen::tree_plus_dag(1200, 400, 83), u64::MAX).unwrap();
    let rand = IntervalIndex::build(&gen::random_dag(1200, 3600, 83), u64::MAX).unwrap();
    assert!(
        tree.size_in_integers() * 2 < rand.size_in_integers(),
        "tree {} vs random {}",
        tree.size_in_integers(),
        rand.size_in_integers()
    );
}

#[test]
fn recursive_scarab_is_correct_and_shrinks_twice() {
    // §2.3: "theoretically, the reachability backbone could be applied
    // recursively; this may further slow down query performance. In
    // [23], this option is not studied." — we study it: a depth-2
    // SCARAB (backbone of the backbone) must stay exact, and each
    // level must shrink the vertex set.
    for seed in [0u64, 1, 2] {
        let dag = gen::random_dag(900, 2700, seed);
        let depth1 = Scarab::build(&dag, 2, "GL*", |bb| Ok(Grail::build(bb, 5, seed))).unwrap();
        let depth2 = Scarab::build(&dag, 2, "GL**", |bb| {
            Scarab::build(bb, 2, "GL*", |bb2| Ok(Grail::build(bb2, 5, seed)))
        })
        .unwrap();
        let level1 = depth1.backbone_size();
        let level2 = depth2.inner().backbone_size();
        assert!(level1 < dag.num_vertices(), "seed {seed}");
        assert!(level2 < level1, "seed {seed}: {level2} !< {level1}");
        validate(&depth2, &dag, 700, seed);
    }
}

#[test]
fn recursive_scarab_with_dl_inner() {
    // The oracle itself as the innermost index of a depth-2 SCARAB —
    // the full composition a downstream user might reach for on a
    // graph too large to label directly.
    let dag = gen::power_law_dag(1000, 3000, 17);
    let idx = Scarab::build(&dag, 2, "DL**", |bb| {
        Scarab::build(bb, 2, "DL*", |bb2| {
            Ok(DistributionLabeling::build(bb2, &DlConfig::default()))
        })
    })
    .unwrap();
    validate(&idx, &dag, 800, 19);
}

#[test]
fn equal_workload_is_balanced_at_scale() {
    // The harness premise: the equal load really is ~half positive
    // wherever the graph has enough reachable pairs.
    for (family, dag) in families(1500, 90) {
        let w = equal_workload(&dag, 4000, 21);
        let ratio = w.positive_ratio();
        assert!(
            (0.4..=0.6).contains(&ratio),
            "{family}: positive ratio {ratio}"
        );
    }
}

#[test]
fn dual_stays_small_on_tree_like_graphs_only() {
    // Dual labeling's regime: index ~2n on a near-tree, explodes in
    // link count on an equally sized random DAG.
    let near_tree = gen::tree_plus_dag(1500, 30, 33);
    let dense = gen::random_dag(1500, 4500, 33);
    let small = DualLabeling::build(&near_tree, u64::MAX).unwrap();
    let big = DualLabeling::build(&dense, u64::MAX).unwrap();
    assert!(small.num_links() <= 30);
    assert!(
        big.num_links() > 10 * small.num_links(),
        "links: dense {} vs near-tree {}",
        big.num_links(),
        small.num_links()
    );
    assert!(small.size_in_integers() < big.size_in_integers() / 4);
}
