//! Cross-validation of the paper's second future-work item (§7,
//! "more general reachability computation, such as k-reach"):
//! two independent exact implementations — Pruned Landmark distance
//! labels and the K-Reach cover distance matrix — must agree on every
//! distance and every `within_k` answer, on every generator family.

use proptest::prelude::*;

use hoplite::baselines::{KReachBounded, PrunedLandmark};
use hoplite::graph::{gen, Dag};

fn assert_agree(dag: &Dag) {
    let pl = PrunedLandmark::build(dag);
    let kr = KReachBounded::build(dag, u64::MAX).unwrap();
    let n = dag.num_vertices() as u32;
    for u in 0..n {
        for v in 0..n {
            let (dp, dk) = (pl.distance(u, v), kr.distance(u, v));
            assert_eq!(dp, dk, "distance disagreement at ({u},{v})");
            for k in [0u32, 1, 2, 3, 5, 100] {
                assert_eq!(
                    pl.within_k(u, v, k),
                    kr.within_k(u, v, k),
                    "within_{k} disagreement at ({u},{v})"
                );
            }
        }
    }
}

#[test]
fn pl_and_kreach_agree_on_every_family() {
    for seed in 0..3 {
        assert_agree(&gen::random_dag(60, 170, seed));
        assert_agree(&gen::power_law_dag(60, 170, seed));
        assert_agree(&gen::tree_plus_dag(60, 20, seed));
        assert_agree(&gen::layered_dag(60, 6, 150, seed));
    }
    assert_agree(&gen::grid_dag(6, 8));
}

#[test]
fn k_zero_is_identity() {
    let dag = gen::random_dag(40, 120, 9);
    let pl = PrunedLandmark::build(&dag);
    let kr = KReachBounded::build(&dag, u64::MAX).unwrap();
    for u in 0..40u32 {
        for v in 0..40u32 {
            assert_eq!(pl.within_k(u, v, 0), u == v);
            assert_eq!(kr.within_k(u, v, 0), u == v);
        }
    }
}

#[test]
fn k_one_is_edge_or_identity() {
    let dag = gen::power_law_dag(40, 120, 11);
    let kr = KReachBounded::build(&dag, u64::MAX).unwrap();
    for u in 0..40u32 {
        for v in 0..40u32 {
            assert_eq!(
                kr.within_k(u, v, 1),
                u == v || dag.graph().has_edge(u, v),
                "({u},{v})"
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Arbitrary forward-oriented DAGs: the two k-reach oracles agree
    /// with each other on arbitrary (u, v, k).
    #[test]
    fn kreach_oracles_agree(
        n in 2u32..32,
        edges in proptest::collection::vec((0u32..32, 0u32..32), 0..100),
        k in 0u32..12,
    ) {
        let edges: Vec<(u32, u32)> = edges
            .into_iter()
            .map(|(a, b)| (a % n, b % n))
            .filter(|&(a, b)| a != b)
            .map(|(a, b)| if a < b { (a, b) } else { (b, a) })
            .collect();
        let dag = Dag::from_edges(n as usize, &edges).expect("forward edges are acyclic");
        let pl = PrunedLandmark::build(&dag);
        let kr = KReachBounded::build(&dag, u64::MAX).unwrap();
        for u in 0..n {
            for v in 0..n {
                prop_assert_eq!(pl.distance(u, v), kr.distance(u, v), "({},{})", u, v);
                prop_assert_eq!(pl.within_k(u, v, k), kr.within_k(u, v, k));
            }
        }
    }
}
