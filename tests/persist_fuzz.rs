//! Failure injection for the persistence layer: a loader fed hostile
//! bytes must return a structured [`PersistError`] — never panic, never
//! produce an oracle that violates label invariants. Covers both the
//! HOPL v1 streaming format and the HOPL v3 zero-copy arena.

use std::io::Cursor;

use proptest::prelude::*;

use hoplite::core::store::checksum;
use hoplite::core::{DistributionLabeling, DlConfig, HierarchicalLabeling, HlConfig, ReachIndex};
use hoplite::graph::{gen, traversal, Dag, DiGraph, VertexId};
use hoplite::Oracle;

/// A serialized DL oracle over a small fixed DAG.
fn serialized_fixture() -> (Dag, Vec<u8>) {
    let dag = gen::random_dag(40, 110, 5);
    let dl = DistributionLabeling::build(&dag, &DlConfig::default());
    let mut buf = Vec::new();
    dl.save(&mut buf).expect("in-memory write");
    (dag, buf)
}

#[test]
fn truncation_at_every_prefix_is_rejected() {
    let (_, buf) = serialized_fixture();
    // The trailing signature section is optional by design (legacy
    // PR 3-era files end right before it), so exactly one strict
    // prefix is a complete valid file: the one that removes the whole
    // section. Every other prefix must fail cleanly.
    let sig_section = 4 + 4 + 8 + 16 * 40; // magic + shift + count + 2×40 u64
    let legacy_cut = buf.len() - sig_section;
    for cut in 0..buf.len() {
        let r = DistributionLabeling::load(Cursor::new(&buf[..cut]));
        if cut == legacy_cut {
            assert!(r.is_ok(), "the legacy (pre-signature) prefix must load");
        } else {
            assert!(r.is_err(), "prefix of {cut} bytes unexpectedly loaded");
        }
    }
}

#[test]
fn trailing_garbage_is_rejected() {
    let (_, mut buf) = serialized_fixture();
    buf.extend_from_slice(b"EXTRA");
    assert!(
        DistributionLabeling::load(Cursor::new(&buf)).is_err(),
        "file with trailing bytes must not load"
    );
}

#[test]
fn wrong_magic_and_version_are_rejected() {
    let (_, buf) = serialized_fixture();
    let mut bad_magic = buf.clone();
    bad_magic[0] ^= 0xFF;
    assert!(DistributionLabeling::load(Cursor::new(&bad_magic)).is_err());

    // The version byte lives in the header; flipping any of the first
    // 16 bytes must fail (magic, version, or section sizes).
    for i in 0..16.min(buf.len()) {
        let mut bad = buf.clone();
        bad[i] = bad[i].wrapping_add(1);
        assert!(
            DistributionLabeling::load(Cursor::new(&bad)).is_err()
                || DistributionLabeling::load(Cursor::new(&bad)).is_ok(),
            "loader must not panic on header byte {i}"
        );
    }
}

#[test]
fn hl_loader_rejects_dl_files_or_validates() {
    // Cross-loading a DL file through the HL loader must not panic;
    // it either fails (format tag) or yields a structurally valid
    // labeling.
    let (_, buf) = serialized_fixture();
    let _ = HierarchicalLabeling::load(Cursor::new(&buf));
}

#[test]
fn hl_roundtrip_preserves_queries() {
    let dag = gen::tree_plus_dag(60, 25, 8);
    let hl = HierarchicalLabeling::build(
        &dag,
        &HlConfig {
            core_size_limit: 12,
            ..HlConfig::default()
        },
    );
    let mut buf = Vec::new();
    hl.save(&mut buf).expect("write");
    let hl2 = HierarchicalLabeling::load(Cursor::new(&buf)).expect("reload");
    for u in 0..60u32 {
        for v in 0..60u32 {
            assert_eq!(hl.query(u, v), hl2.query(u, v), "({u},{v})");
        }
    }
}

// ---------------------------------------------------------------------
// HOPL v3 arena failure injection
// ---------------------------------------------------------------------

fn random_cyclic_digraph(n: usize, m: usize, seed: u64) -> DiGraph {
    let mut rng = gen::Rng::new(seed);
    let edges: Vec<(VertexId, VertexId)> = (0..m)
        .filter_map(|_| {
            let u = rng.gen_index(n) as VertexId;
            let v = rng.gen_index(n) as VertexId;
            (u != v).then_some((u, v))
        })
        .collect();
    DiGraph::from_edges(n, &edges).expect("edges are in range")
}

/// A serialized v3 arena over a small cyclic digraph.
fn arena_fixture() -> (DiGraph, Vec<u8>) {
    let g = random_cyclic_digraph(36, 120, 15);
    let oracle = Oracle::new(&g);
    let mut buf = Vec::new();
    oracle.save_arena(&mut buf).expect("in-memory write");
    (g, buf)
}

/// After editing header or table bytes, re-seal the two covering
/// checksums so the *semantic* validation under them is what trips.
/// A table cut off by truncation is left unsealed — the reader must
/// reject it before ever checking its sum.
fn reseal_arena(buf: &mut [u8]) {
    let count = u32::from_le_bytes(buf[12..16].try_into().unwrap()) as usize;
    let table_end = 64 + count * 32;
    if table_end <= buf.len() {
        let table_sum = checksum(&buf[64..table_end]);
        buf[48..56].copy_from_slice(&table_sum.to_le_bytes());
    }
    let header_sum = checksum(&buf[..56]);
    buf[56..64].copy_from_slice(&header_sum.to_le_bytes());
}

#[test]
fn arena_truncated_section_table_rejected() {
    let (_, buf) = arena_fixture();
    // Cut inside the table, with the header's file_len re-pinned to
    // the truncated size so the table-truncation check (not the
    // length check) is what fires.
    for cut in [65, 64 + 31, 64 + 5 * 32 + 7] {
        let mut bad = buf[..cut].to_vec();
        bad[40..48].copy_from_slice(&(cut as u64).to_le_bytes());
        reseal_arena(&mut bad);
        let err = Oracle::open_arena_bytes(&bad).unwrap_err();
        assert!(err.to_string().contains("table"), "cut={cut}: {err}");
    }
    // And raw truncation anywhere must fail too (length pin).
    for cut in [0, 7, 63, buf.len() / 2, buf.len() - 1] {
        assert!(Oracle::open_arena_bytes(&buf[..cut]).is_err(), "cut={cut}");
    }
}

#[test]
fn arena_misaligned_section_offset_rejected() {
    let (_, mut buf) = arena_fixture();
    // Entry 0's offset field sits at table start + 8. Nudge it off
    // the 64-byte grid and re-seal the checksums.
    let at = 64 + 8;
    let offset = u64::from_le_bytes(buf[at..at + 8].try_into().unwrap());
    buf[at..at + 8].copy_from_slice(&(offset + 4).to_le_bytes());
    reseal_arena(&mut buf);
    let err = Oracle::open_arena_bytes(&buf).unwrap_err();
    assert!(err.to_string().contains("aligned"), "{err}");
}

#[test]
fn arena_overlapping_sections_rejected() {
    let (_, mut buf) = arena_fixture();
    // Point entry 1 at entry 0's bytes: same offset, still in bounds.
    let e0_off = u64::from_le_bytes(buf[64 + 8..64 + 16].try_into().unwrap());
    let at = 64 + 32 + 8;
    buf[at..at + 8].copy_from_slice(&e0_off.to_le_bytes());
    reseal_arena(&mut buf);
    let err = Oracle::open_arena_bytes(&buf).unwrap_err();
    assert!(err.to_string().contains("overlap"), "{err}");
}

#[test]
fn arena_checksum_corruption_rejected() {
    let (_, buf) = arena_fixture();
    // A flipped bit anywhere — header, table, or section payload —
    // must be caught by one of the three checksum layers.
    for at in [10, 20, 50, 70, 64 + 3 * 32 + 25, 520, 600, buf.len() - 5] {
        for bit in [0, 3, 7] {
            let mut bad = buf.clone();
            bad[at] ^= 1 << bit;
            assert!(
                Oracle::open_arena_bytes(&bad).is_err(),
                "byte {at} bit {bit} accepted"
            );
        }
    }
}

#[test]
fn v1_and_v2_files_upgrade_to_v3_and_answer_identically() {
    // The upgrade path: a legacy index (v2 = v1 + SIGS section, and
    // the older SIGS-less v1) loads through the owned reader, writes
    // a v3 arena, and the reopened arena answers like the original.
    let g = random_cyclic_digraph(30, 90, 16);
    let oracle = Oracle::new(&g);
    let mut v2 = Vec::new();
    oracle.save(&mut v2).unwrap();
    let mut v1 = v2.clone();
    v1.truncate(v2.len() - (4 + 4 + 8 + 16 * oracle.num_components()));
    for (what, legacy) in [("v2", v2), ("v1", v1)] {
        let loaded = Oracle::load(Cursor::new(&legacy)).expect("legacy file loads");
        let mut arena = Vec::new();
        loaded.save_arena(&mut arena).expect("upgrade to v3");
        let upgraded = Oracle::open_arena_bytes(&arena).expect("upgraded arena opens");
        for u in 0..30u32 {
            for v in 0..30u32 {
                assert_eq!(
                    upgraded.reaches(u, v),
                    traversal::reaches(&g, u, v),
                    "{what} ({u},{v})"
                );
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Arbitrary byte soup never panics either loader.
    #[test]
    fn loaders_never_panic_on_junk(junk in proptest::collection::vec(any::<u8>(), 0..256)) {
        let _ = DistributionLabeling::load(Cursor::new(&junk));
        let _ = HierarchicalLabeling::load(Cursor::new(&junk));
        let _ = hoplite::core::persist::read_labeling(Cursor::new(&junk));
    }

    /// Byte soup dressed as a v3 arena (valid magic + version) never
    /// panics the arena reader either.
    #[test]
    fn arena_reader_never_panics_on_junk(junk in proptest::collection::vec(any::<u8>(), 0..512)) {
        let _ = Oracle::open_arena_bytes(&junk);
        let mut dressed = b"HOPL\x03\x00\x00\x00".to_vec();
        dressed.extend_from_slice(&junk);
        let _ = Oracle::open_arena_bytes(&dressed);
        let _ = Oracle::load(Cursor::new(&dressed));
    }

    /// On any random cyclic digraph, the mapped (mmap), owned-read,
    /// and builder oracles agree with BFS ground truth pairwise — the
    /// mmap ≡ owned ≡ BFS equivalence invariant.
    #[test]
    fn mapped_equals_owned_equals_bfs(seed in 0u64..500, n in 8usize..40, m in 10usize..120) {
        let g = random_cyclic_digraph(n, m, seed);
        let built = Oracle::new(&g);
        let mut arena = Vec::new();
        built.save_arena(&mut arena).expect("write arena");
        let path = std::env::temp_dir().join(
            format!("hoplite-fuzz-arena-{}-{seed}-{n}-{m}.hopl3", std::process::id()),
        );
        std::fs::write(&path, &arena).expect("write temp arena");
        let mapped = Oracle::open(&path).expect("mapped open");
        let owned = Oracle::open_with(
            &path,
            &hoplite::core::OpenOptions { mmap: false, ..Default::default() },
        )
        .expect("owned open");
        std::fs::remove_file(&path).ok();
        for u in 0..n as u32 {
            for v in 0..n as u32 {
                let truth = traversal::reaches(&g, u, v);
                prop_assert_eq!(built.reaches(u, v), truth, "built ({},{})", u, v);
                prop_assert_eq!(mapped.reaches(u, v), truth, "mapped ({},{})", u, v);
                prop_assert_eq!(owned.reaches(u, v), truth, "owned ({},{})", u, v);
            }
        }
    }

    /// Single-byte corruption anywhere in a valid file either fails
    /// cleanly or still satisfies every labeling invariant the query
    /// path relies on (sorted, in-bounds hop lists).
    #[test]
    fn bit_flips_fail_closed(pos in 0usize..4096, bit in 0u8..8) {
        let (_, buf) = serialized_fixture();
        let pos = pos % buf.len();
        let mut bad = buf.clone();
        bad[pos] ^= 1 << bit;
        if let Ok(dl) = DistributionLabeling::load(Cursor::new(&bad)) {
            // A surviving load must still be internally consistent:
            // sorted labels (the merge-intersection precondition).
            let l = dl.labeling();
            for v in 0..l.num_vertices() as u32 {
                prop_assert!(l.out_label(v).windows(2).all(|w| w[0] < w[1]));
                prop_assert!(l.in_label(v).windows(2).all(|w| w[0] < w[1]));
            }
        }
    }
}
