//! Failure injection for the persistence layer: a loader fed hostile
//! bytes must return a structured [`PersistError`] — never panic, never
//! produce an oracle that violates label invariants.

use std::io::Cursor;

use proptest::prelude::*;

use hoplite::core::{DistributionLabeling, DlConfig, HierarchicalLabeling, HlConfig, ReachIndex};
use hoplite::graph::{gen, Dag};

/// A serialized DL oracle over a small fixed DAG.
fn serialized_fixture() -> (Dag, Vec<u8>) {
    let dag = gen::random_dag(40, 110, 5);
    let dl = DistributionLabeling::build(&dag, &DlConfig::default());
    let mut buf = Vec::new();
    dl.save(&mut buf).expect("in-memory write");
    (dag, buf)
}

#[test]
fn truncation_at_every_prefix_is_rejected() {
    let (_, buf) = serialized_fixture();
    // The trailing signature section is optional by design (legacy
    // PR 3-era files end right before it), so exactly one strict
    // prefix is a complete valid file: the one that removes the whole
    // section. Every other prefix must fail cleanly.
    let sig_section = 4 + 4 + 8 + 16 * 40; // magic + shift + count + 2×40 u64
    let legacy_cut = buf.len() - sig_section;
    for cut in 0..buf.len() {
        let r = DistributionLabeling::load(Cursor::new(&buf[..cut]));
        if cut == legacy_cut {
            assert!(r.is_ok(), "the legacy (pre-signature) prefix must load");
        } else {
            assert!(r.is_err(), "prefix of {cut} bytes unexpectedly loaded");
        }
    }
}

#[test]
fn trailing_garbage_is_rejected() {
    let (_, mut buf) = serialized_fixture();
    buf.extend_from_slice(b"EXTRA");
    assert!(
        DistributionLabeling::load(Cursor::new(&buf)).is_err(),
        "file with trailing bytes must not load"
    );
}

#[test]
fn wrong_magic_and_version_are_rejected() {
    let (_, buf) = serialized_fixture();
    let mut bad_magic = buf.clone();
    bad_magic[0] ^= 0xFF;
    assert!(DistributionLabeling::load(Cursor::new(&bad_magic)).is_err());

    // The version byte lives in the header; flipping any of the first
    // 16 bytes must fail (magic, version, or section sizes).
    for i in 0..16.min(buf.len()) {
        let mut bad = buf.clone();
        bad[i] = bad[i].wrapping_add(1);
        assert!(
            DistributionLabeling::load(Cursor::new(&bad)).is_err()
                || DistributionLabeling::load(Cursor::new(&bad)).is_ok(),
            "loader must not panic on header byte {i}"
        );
    }
}

#[test]
fn hl_loader_rejects_dl_files_or_validates() {
    // Cross-loading a DL file through the HL loader must not panic;
    // it either fails (format tag) or yields a structurally valid
    // labeling.
    let (_, buf) = serialized_fixture();
    let _ = HierarchicalLabeling::load(Cursor::new(&buf));
}

#[test]
fn hl_roundtrip_preserves_queries() {
    let dag = gen::tree_plus_dag(60, 25, 8);
    let hl = HierarchicalLabeling::build(
        &dag,
        &HlConfig {
            core_size_limit: 12,
            ..HlConfig::default()
        },
    );
    let mut buf = Vec::new();
    hl.save(&mut buf).expect("write");
    let hl2 = HierarchicalLabeling::load(Cursor::new(&buf)).expect("reload");
    for u in 0..60u32 {
        for v in 0..60u32 {
            assert_eq!(hl.query(u, v), hl2.query(u, v), "({u},{v})");
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Arbitrary byte soup never panics either loader.
    #[test]
    fn loaders_never_panic_on_junk(junk in proptest::collection::vec(any::<u8>(), 0..256)) {
        let _ = DistributionLabeling::load(Cursor::new(&junk));
        let _ = HierarchicalLabeling::load(Cursor::new(&junk));
        let _ = hoplite::core::persist::read_labeling(Cursor::new(&junk));
    }

    /// Single-byte corruption anywhere in a valid file either fails
    /// cleanly or still satisfies every labeling invariant the query
    /// path relies on (sorted, in-bounds hop lists).
    #[test]
    fn bit_flips_fail_closed(pos in 0usize..4096, bit in 0u8..8) {
        let (_, buf) = serialized_fixture();
        let pos = pos % buf.len();
        let mut bad = buf.clone();
        bad[pos] ^= 1 << bit;
        if let Ok(dl) = DistributionLabeling::load(Cursor::new(&bad)) {
            // A surviving load must still be internally consistent:
            // sorted labels (the merge-intersection precondition).
            let l = dl.labeling();
            for v in 0..l.num_vertices() as u32 {
                prop_assert!(l.out_label(v).windows(2).all(|w| w[0] < w[1]));
                prop_assert!(l.in_label(v).windows(2).all(|w| w[0] < w[1]));
            }
        }
    }
}
