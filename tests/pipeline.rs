//! End-to-end pipeline tests: the path a downstream user walks —
//! arbitrary digraph → condensation → oracle → queries — plus the
//! benchmark harness wiring.

use std::io::Cursor;

use hoplite::graph::{gen, io, scc, traversal};
use hoplite::{DiGraph, Oracle};
use hoplite_bench::runner::{build_method, validate, MethodId, RunConfig};
use hoplite_bench::workload::{equal_workload, random_workload};
use hoplite_bench::{large_datasets, small_datasets};

/// A digraph with cycles whose reachability we can still ground-truth
/// with BFS on the original graph.
fn cyclic_graph(seed: u64) -> DiGraph {
    // Random DAG + back edges inside random vertex pairs to create SCCs.
    let dag = gen::random_dag(60, 150, seed);
    let mut edges: Vec<(u32, u32)> = dag.graph().edges().collect();
    // Close one in every few edges into a 2-cycle.
    let back: Vec<(u32, u32)> = edges
        .iter()
        .enumerate()
        .filter(|(i, _)| i % 5 == 0)
        .map(|(_, &(u, v))| (v, u))
        .collect();
    edges.extend(back);
    DiGraph::from_edges(60, &edges).unwrap()
}

#[test]
fn oracle_matches_bfs_on_cyclic_graphs() {
    for seed in 0..5 {
        let g = cyclic_graph(seed);
        let oracle = Oracle::new(&g);
        for u in 0..60u32 {
            for v in 0..60u32 {
                assert_eq!(
                    oracle.reaches(u, v),
                    traversal::reaches(&g, u, v),
                    "seed {seed} pair ({u},{v})"
                );
            }
        }
    }
}

#[test]
fn file_roundtrip_to_oracle() {
    // Write a graph, read it back, condense, query — the dataset_tool
    // code path.
    let g = cyclic_graph(7);
    let mut buf = Vec::new();
    io::write_edge_list(&g, &mut buf).unwrap();
    let g2 = io::read_edge_list(Cursor::new(&buf)).unwrap();
    assert_eq!(g, g2);

    let cond = scc::condense(&g2);
    assert!(cond.num_components() < 60, "back edges must form SCCs");
    let oracle = Oracle::new(&g2);
    for u in (0..60u32).step_by(7) {
        for v in (0..60u32).step_by(5) {
            assert_eq!(oracle.reaches(u, v), traversal::reaches(&g, u, v));
        }
    }
}

#[test]
fn harness_runs_every_method_on_one_small_analogue() {
    let spec = small_datasets()
        .into_iter()
        .find(|s| s.name == "hpycyc")
        .unwrap();
    let dag = spec.generate(0.15);
    let cfg = RunConfig {
        budget_bytes: 1 << 28,
        ..RunConfig::default()
    };
    let equal = equal_workload(&dag, 400, 3);
    let random = random_workload(&dag, 400, 4);
    for mid in MethodId::paper_columns() {
        let outcome = build_method(mid, &dag, &cfg);
        let idx = outcome
            .index
            .unwrap_or_else(|| panic!("{} failed: {:?}", mid.name(), outcome.error));
        assert!(validate(idx.as_ref(), &equal), "{} equal load", mid.name());
        assert!(
            validate(idx.as_ref(), &random),
            "{} random load",
            mid.name()
        );
        assert!(!idx.name().is_empty());
    }
}

#[test]
fn harness_reproduces_paper_feasibility_boundary() {
    // On a large analogue with a small budget, the heavyweight
    // baselines must fail while the oracles and online-ish methods
    // survive — the paper's core scaling claim in miniature.
    let spec = large_datasets()
        .into_iter()
        .find(|s| s.name == "cit-Patents")
        .unwrap();
    let dag = spec.generate(0.002); // ~7.5k vertices, dense closure
    let cfg = RunConfig {
        budget_bytes: 4 << 20, // 4 MiB per index
        ..RunConfig::default()
    };
    let must_survive = [
        MethodId::Grail,
        MethodId::Hl,
        MethodId::Dl,
        MethodId::TfLabel,
    ];
    for mid in must_survive {
        let o = build_method(mid, &dag, &cfg);
        assert!(
            o.index.is_some(),
            "{} should scale, failed: {:?}",
            mid.name(),
            o.error
        );
    }
    let must_fail = [MethodId::KReach, MethodId::TwoHop];
    for mid in must_fail {
        let o = build_method(mid, &dag, &cfg);
        assert!(
            o.index.is_none(),
            "{} unexpectedly fit in a 4 MiB budget",
            mid.name()
        );
    }
}

#[test]
fn oracle_label_metrics_exposed() {
    let g = cyclic_graph(11);
    let oracle = Oracle::new(&g);
    assert!(oracle.label_entries() > 0);
    assert!(oracle.num_components() > 1);
    assert_eq!(oracle.comp_of().len(), g.num_vertices());
    // The inner DL oracle is reachable for power users.
    assert!(oracle.inner().labeling().total_entries() == oracle.label_entries());
}
