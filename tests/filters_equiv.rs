//! Randomized equivalence suite for the query pre-filter stack: the
//! filtered `Oracle` hot path, the unfiltered label-intersection path,
//! and BFS ground truth must agree on random cyclic digraphs — on the
//! freshly built oracle, after a `save`/`load` round-trip, and through
//! the `hoplite-server` wire path.

use std::io::Cursor;
use std::sync::Arc;

use hoplite::core::{FilterVerdict, Parallelism, Pruning};
use hoplite::graph::gen::Rng;
use hoplite::graph::traversal;
use hoplite::server::{Client, Registry, Server, ServerConfig};
use hoplite::{DiGraph, DlConfig, Oracle, VertexId};

fn random_cyclic_digraph(n: usize, m: usize, seed: u64) -> DiGraph {
    let mut rng = Rng::new(seed);
    let edges: Vec<(VertexId, VertexId)> = (0..m)
        .filter_map(|_| {
            let u = rng.gen_index(n) as VertexId;
            let v = rng.gen_index(n) as VertexId;
            (u != v).then_some((u, v))
        })
        .collect();
    DiGraph::from_edges(n, &edges).expect("edges are in range")
}

/// Asserts the oracle agrees with BFS on all n² pairs, via every query
/// entry point: filtered single, unfiltered single, filtered batch,
/// unfiltered batch.
fn assert_oracle_matches_bfs(g: &DiGraph, oracle: &Oracle, ctx: &str) {
    let n = g.num_vertices() as VertexId;
    let mut scratch = hoplite::graph::traversal::TraversalScratch::new(g.num_vertices());
    let pairs: Vec<(VertexId, VertexId)> =
        (0..n).flat_map(|u| (0..n).map(move |v| (u, v))).collect();
    let truth: Vec<bool> = pairs
        .iter()
        .map(|&(u, v)| traversal::reaches_with(g, u, v, &mut scratch))
        .collect();
    for (&(u, v), &expect) in pairs.iter().zip(&truth) {
        assert_eq!(oracle.reaches(u, v), expect, "{ctx}: filtered ({u},{v})");
        assert_eq!(
            oracle.reaches_unfiltered(u, v),
            expect,
            "{ctx}: unfiltered ({u},{v})"
        );
    }
    for threads in [1, 3] {
        assert_eq!(
            oracle.reaches_batch(&pairs, threads),
            truth,
            "{ctx}: filtered batch, {threads} threads"
        );
        assert_eq!(
            oracle.reaches_batch_unfiltered(&pairs, threads),
            truth,
            "{ctx}: unfiltered batch, {threads} threads"
        );
    }
}

#[test]
fn filtered_unfiltered_and_bfs_agree_on_random_cyclic_digraphs() {
    for seed in 0..8u64 {
        // Sweep density: sparse graphs exercise the negative cuts,
        // dense ones the SCC condensation and positive cuts.
        let n = 48 + (seed as usize % 3) * 16;
        let m = n * (2 + seed as usize % 4);
        let g = random_cyclic_digraph(n, m, 0xC0FFEE ^ seed);
        let oracle = Oracle::new(&g);
        assert_oracle_matches_bfs(&g, &oracle, &format!("seed {seed}"));
    }
}

#[test]
fn every_build_engine_feeds_an_equivalent_oracle() {
    let g = random_cyclic_digraph(70, 250, 99);
    for (pruning, parallelism) in [
        (Pruning::SortedMerge, Parallelism::Sequential),
        (Pruning::RankBitmap, Parallelism::Sequential),
        (Pruning::RankBitmap, Parallelism::Threads(2)),
        (Pruning::RankBitmap, Parallelism::Threads(8)),
    ] {
        let oracle = Oracle::with_config(
            &g,
            &DlConfig {
                pruning,
                parallelism,
                ..DlConfig::default()
            },
        );
        assert_oracle_matches_bfs(&g, &oracle, &format!("{pruning:?}/{parallelism:?}"));
    }
}

#[test]
fn equivalence_survives_save_load_roundtrip() {
    for seed in 0..4u64 {
        let g = random_cyclic_digraph(56, 180, 0xBEEF ^ seed);
        let oracle = Oracle::new(&g);
        let mut buf = Vec::new();
        oracle.save(&mut buf).expect("save");
        let restored = Oracle::load(Cursor::new(&buf)).expect("load");
        // The filters are rebuilt from the persisted condensation, so
        // the restored oracle must pass the same full-matrix check.
        assert_oracle_matches_bfs(&g, &restored, &format!("roundtrip seed {seed}"));
        // And the two oracles' filter verdicts are identical (same
        // deterministic build over the same DAG, same projection into
        // original-vertex space).
        let n = g.num_vertices() as VertexId;
        for u in 0..n {
            for v in 0..n {
                assert_eq!(
                    oracle.filters().classify(u, v),
                    restored.filters().classify(u, v),
                    "verdict diverged at ({u},{v})"
                );
            }
        }
    }
}

#[test]
fn equivalence_through_the_server_wire_path() {
    let n = 50usize;
    let g = random_cyclic_digraph(n, 170, 0xFADE);
    let registry = Registry::new();
    registry.insert_frozen("equiv", Oracle::new(&g)).unwrap();
    let handle = Server::bind(
        "127.0.0.1:0",
        Arc::new(registry),
        ServerConfig {
            workers: 4,
            ..ServerConfig::default()
        },
    )
    .expect("bind ephemeral loopback port");

    let mut client = Client::connect(handle.local_addr()).expect("connect");
    let mut scratch = hoplite::graph::traversal::TraversalScratch::new(n);
    let pairs: Vec<(u32, u32)> = (0..n as u32)
        .flat_map(|u| (0..n as u32).map(move |v| (u, v)))
        .collect();
    // Singles for a sample, BATCH for the full matrix: both handlers
    // run the filtered hot path.
    for &(u, v) in pairs.iter().step_by(17) {
        assert_eq!(
            client.reach("equiv", u, v).expect("REACH"),
            traversal::reaches_with(&g, u, v, &mut scratch),
            "wire REACH ({u},{v})"
        );
    }
    for chunk in pairs.chunks(500) {
        let answers = client.reach_batch("equiv", chunk).expect("BATCH");
        for (&(u, v), &got) in chunk.iter().zip(&answers) {
            assert_eq!(
                got,
                traversal::reaches_with(&g, u, v, &mut scratch),
                "wire BATCH ({u},{v})"
            );
        }
    }
    handle.shutdown();
}

/// The filter layer must actually fire on a realistic workload — an
/// always-fallthrough stack would silently degrade the hot path back
/// to label intersections.
#[test]
fn filters_decide_queries_on_the_oracle_workload() {
    let g = random_cyclic_digraph(300, 900, 0xABCD);
    let oracle = Oracle::new(&g);
    let mut rng = Rng::new(1);
    let mut decided = 0usize;
    let total = 5_000usize;
    for _ in 0..total {
        let u = rng.gen_index(300) as u32;
        let v = rng.gen_index(300) as u32;
        // Oracle filters are projected: classify in original-id space.
        if oracle.filters().classify(u, v) != FilterVerdict::Fallthrough {
            decided += 1;
        }
    }
    assert!(
        decided * 2 > total,
        "filters decided only {decided}/{total} queries"
    );
}
