//! `dataset_tool` — load a graph file, condense it, build a chosen
//! index, and answer reachability queries. The downstream-user CLI.
//!
//! ```sh
//! # edge-list or .gra input; queries as "u v" lines on stdin
//! cargo run --release --example dataset_tool -- graph.txt dl < queries.txt
//!
//! # or benchmark a synthetic graph when no file is at hand:
//! cargo run --release --example dataset_tool -- @synthetic dl
//! ```
//!
//! Supported index names: `dl`, `hl`, `grail`, `int`, `pt`, `pw8`,
//! `bfs`.

use std::io::{BufRead, BufReader};

use hoplite::baselines::{BfsOnline, Grail, IntervalIndex, PathTree, Pwah8};
use hoplite::core::{DistributionLabeling, DlConfig, HierarchicalLabeling, HlConfig};
use hoplite::graph::{gen, io, scc, Dag, DiGraph};
use hoplite::ReachIndex;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.len() < 2 {
        eprintln!("usage: dataset_tool <graph-file|@synthetic> <dl|hl|grail|int|pt|pw8|bfs>");
        std::process::exit(2);
    }

    // --- Load. ---------------------------------------------------------
    let g: DiGraph = if args[0] == "@synthetic" {
        gen::power_law_dag(100_000, 400_000, 7).into_graph()
    } else {
        let f = std::fs::File::open(&args[0]).unwrap_or_else(|e| {
            eprintln!("cannot open {}: {e}", args[0]);
            std::process::exit(1);
        });
        let reader = BufReader::new(f);
        let loaded = if args[0].ends_with(".gra") {
            io::read_gra(reader)
        } else {
            io::read_edge_list(reader)
        };
        loaded.unwrap_or_else(|e| {
            eprintln!("cannot parse {}: {e}", args[0]);
            std::process::exit(1);
        })
    };
    println!(
        "loaded: {} vertices, {} edges",
        g.num_vertices(),
        g.num_edges()
    );

    // --- Condense. -------------------------------------------------------
    let cond = scc::condense(&g);
    let dag: &Dag = &cond.dag;
    println!(
        "condensed: {} components, {} edges",
        dag.num_vertices(),
        dag.num_edges()
    );

    // --- Build. ----------------------------------------------------------
    let budget = 4u64 << 30;
    let t = std::time::Instant::now();
    let idx: Box<dyn ReachIndex> = match args[1].as_str() {
        "dl" => Box::new(DistributionLabeling::build(dag, &DlConfig::default())),
        "hl" => Box::new(HierarchicalLabeling::build(dag, &HlConfig::default())),
        "grail" => Box::new(Grail::build(dag, 5, 1)),
        "int" => Box::new(IntervalIndex::build(dag, budget).unwrap_or_else(die)),
        "pt" => Box::new(PathTree::build(dag, budget).unwrap_or_else(die)),
        "pw8" => Box::new(Pwah8::build(dag, budget).unwrap_or_else(die)),
        "bfs" => Box::new(BfsOnline::build(dag)),
        other => {
            eprintln!("unknown index {other}");
            std::process::exit(2);
        }
    };
    println!(
        "built {} in {:.1} ms ({} integers)",
        idx.name(),
        t.elapsed().as_secs_f64() * 1e3,
        idx.size_in_integers()
    );

    // --- Queries from stdin (original vertex ids). -----------------------
    println!("reading queries (u v per line) from stdin ...");
    let stdin = std::io::stdin();
    let mut answered = 0usize;
    for line in stdin.lock().lines() {
        let line = line.expect("stdin readable");
        let mut it = line.split_whitespace();
        let (Some(u), Some(v)) = (it.next(), it.next()) else {
            continue;
        };
        let (Ok(u), Ok(v)) = (u.parse::<u32>(), v.parse::<u32>()) else {
            eprintln!("skipping malformed line: {line}");
            continue;
        };
        if (u as usize) >= g.num_vertices() || (v as usize) >= g.num_vertices() {
            eprintln!("skipping out-of-range pair ({u},{v})");
            continue;
        }
        let (cu, cv) = (cond.comp_of[u as usize], cond.comp_of[v as usize]);
        let ans = cu == cv || idx.query(cu, cv);
        println!("{u} -> {v}: {ans}");
        answered += 1;
    }
    println!("answered {answered} queries");
}

fn die<T>(e: hoplite::GraphError) -> T {
    eprintln!("index construction failed: {e}");
    std::process::exit(1);
}
