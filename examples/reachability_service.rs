//! A reachability query *service*, end to end over the real wire
//! protocol.
//!
//! `parallel_service` shows the in-process story: a frozen oracle
//! shared across threads. This example is the networked sibling —
//! build an index, register it in a namespace registry next to a
//! mutable namespace, serve both on an ephemeral loopback port with
//! `hoplite-server`, replay a concurrent client workload through TCP,
//! and print the wire-level QPS.
//!
//! ```text
//! cargo run --release --example reachability_service
//! ```

use std::sync::Arc;
use std::time::Instant;

use hoplite::core::DynamicOracle;
use hoplite::graph::gen::{self, Rng};
use hoplite::server::{Client, Registry, Server, ServerConfig};
use hoplite::Oracle;

fn main() {
    // A skewed, web-like graph: 30 k vertices, 90 k edges.
    let dag = gen::power_law_dag(30_000, 90_000, 42);
    let n = dag.num_vertices();
    let g = dag.into_graph();

    let t = Instant::now();
    let oracle = Oracle::new(&g);
    println!(
        "index: {} vertices, {} components, {} label entries ({:.0} ms build)",
        n,
        oracle.num_components(),
        oracle.label_entries(),
        t.elapsed().as_secs_f64() * 1e3
    );

    // Two namespaces: the frozen web snapshot, and a small mutable
    // ontology accepting live edits. The snapshot goes in behind an
    // `Arc` so the reload below can serialize the exact bytes being
    // served.
    let registry = Arc::new(Registry::new());
    let web = Arc::new(oracle);
    registry.insert_frozen("web", Arc::clone(&web)).unwrap();
    let onto = gen::random_dag(2_000, 5_000, 7);
    registry
        .insert_dynamic("ontology", DynamicOracle::new(onto))
        .unwrap();

    // Workers cap concurrent connections; cover the 4 workload clients
    // plus the follow-up mutation/stats client regardless of core count.
    let config = ServerConfig {
        workers: 8,
        ..ServerConfig::default()
    };
    let server = Server::bind("127.0.0.1:0", Arc::clone(&registry), config)
        .expect("bind ephemeral loopback port");
    let addr = server.local_addr();
    println!("serving on {addr}\n");

    // 4 concurrent clients × 50 k queries in 512-pair BATCH frames —
    // uniform-random pairs, the oracle's worst case (§6.2 obs. 3).
    let clients = 4;
    let per_client = 50_000usize;
    let batch = 512usize;
    let start = Instant::now();
    let positive: u64 = std::thread::scope(|scope| {
        (0..clients)
            .map(|c| {
                scope.spawn(move || {
                    let mut client = Client::connect(addr).expect("connect");
                    let mut rng = Rng::new(0xC0FFEE + c as u64);
                    let mut positive = 0u64;
                    let mut sent = 0usize;
                    while sent < per_client {
                        let k = batch.min(per_client - sent);
                        let pairs: Vec<(u32, u32)> = (0..k)
                            .map(|_| (rng.gen_index(n) as u32, rng.gen_index(n) as u32))
                            .collect();
                        let answers = client.reach_batch("web", &pairs).expect("BATCH");
                        positive += answers.iter().filter(|&&b| b).count() as u64;
                        sent += k;
                    }
                    positive
                })
            })
            .collect::<Vec<_>>()
            .into_iter()
            .map(|h| h.join().expect("client thread"))
            .sum()
    });
    let elapsed = start.elapsed();
    let total = (clients * per_client) as f64;
    println!(
        "wire throughput: {total:.0} queries over {clients} clients in {:.1} ms → {:.2} Mqueries/s ({positive} positive)",
        elapsed.as_secs_f64() * 1e3,
        total / elapsed.as_secs_f64() / 1e6,
    );

    // Live mutation on the dynamic namespace, visible immediately.
    let mut client = Client::connect(addr).expect("connect");
    let before = client.reach("ontology", 0, 1999).unwrap();
    println!("\nontology: 0 → 1999 before edit: {before}");
    if !before {
        client.add_edge("ontology", 0, 1999).unwrap();
        println!(
            "ontology: 0 → 1999 after ADD_EDGE: {}",
            client.reach("ontology", 0, 1999).unwrap()
        );
    }

    for info in client.list().unwrap() {
        let stats = client.stats(&info.name).unwrap();
        println!(
            "namespace {:>8} [{}]: {} vertices, {} label entries, {} queries served",
            info.name, info.kind, stats.vertices, stats.label_entries, stats.queries
        );
    }

    // Zero-copy reload: persist the snapshot as a HOPL v3 arena, open
    // it mapped (O(header) — no deserialization, no filter/signature
    // recompute), and atomically swap it in. One `Arc<Oracle>` backs
    // both the fresh "web" and a fan-out replica namespace, so the
    // reload shares a single file mapping instead of cloning a
    // multi-MB index per namespace.
    let arena_path = std::env::temp_dir().join(format!(
        "hoplite-reachability-service-{}.hopl3",
        std::process::id()
    ));
    let file = std::fs::File::create(&arena_path).expect("create arena file");
    web.save_arena(std::io::BufWriter::new(file))
        .expect("write arena");
    let t = Instant::now();
    let reloaded = std::sync::Arc::new(Oracle::open(&arena_path).expect("mapped open"));
    let open_ms = t.elapsed().as_secs_f64() * 1e3;
    registry
        .insert_frozen("web", std::sync::Arc::clone(&reloaded))
        .unwrap();
    registry.insert_frozen("web-replica", reloaded).unwrap();
    std::fs::remove_file(&arena_path).ok();

    let stats = client.stats("web").unwrap();
    println!(
        "\nzero-copy reload: opened {} vertices in {open_ms:.2} ms, backend {}, \
         {} heap B + {} mapped B (shared with web-replica)",
        stats.vertices, stats.backend, stats.heap_bytes, stats.mapped_bytes
    );
    assert!(
        client.reach("web", 0, 1).is_ok(),
        "reloaded snapshot serves"
    );

    server.shutdown();
    println!("\nserver drained and shut down cleanly");
}
