//! Multi-core query serving with a frozen Distribution-Labeling
//! oracle.
//!
//! The intro's motivating workloads (social-network analysis, ontology
//! reasoning, web-graph services) are read-heavy: build once, answer
//! millions of reachability probes. A built oracle is immutable, so a
//! serving tier just shares it across threads — this example builds a
//! web-style DAG, replays a 400 k-query batch at increasing thread
//! counts, and prints the scaling curve.
//!
//! ```text
//! cargo run --release --example parallel_service
//! ```

use hoplite::core::parallel::{measure_scaling, par_query_batch};
use hoplite::core::{DistributionLabeling, DlConfig};
use hoplite::graph::gen::{self, Rng};

fn main() {
    // A skewed, web-like DAG: 60 k vertices, 180 k edges.
    let dag = gen::power_law_dag(60_000, 180_000, 42);
    println!(
        "graph: {} vertices, {} edges",
        dag.num_vertices(),
        dag.num_edges()
    );

    let t = std::time::Instant::now();
    let dl = DistributionLabeling::build(&dag, &DlConfig::default());
    println!(
        "DL build: {:.0} ms, {} label entries ({:.2} per vertex)",
        t.elapsed().as_secs_f64() * 1e3,
        dl.labeling().total_entries(),
        dl.labeling().total_entries() as f64 / dag.num_vertices() as f64
    );

    // A 400 k uniform-random batch — the worst case for the oracle
    // (mostly negative queries scan both labels fully, §6.2 obs. 3).
    let mut rng = Rng::new(7);
    let n = dag.num_vertices();
    let pairs: Vec<(u32, u32)> = (0..400_000)
        .map(|_| (rng.gen_index(n) as u32, rng.gen_index(n) as u32))
        .collect();

    println!(
        "\n{:>8} {:>12} {:>12} {:>9}",
        "threads", "elapsed ms", "Mqueries/s", "speedup"
    );
    let reports = measure_scaling(dl.labeling(), &pairs, &[1, 2, 4, 8]);
    let base = reports[0].qps();
    for r in &reports {
        println!(
            "{:>8} {:>12.1} {:>12.2} {:>8.2}x",
            r.threads,
            r.elapsed.as_secs_f64() * 1e3,
            r.qps() / 1e6,
            r.qps() / base
        );
    }

    // The batch API preserves order, so positional post-processing is
    // safe — e.g. joining answers back to request ids.
    let answers = par_query_batch(dl.labeling(), &pairs[..8], 4);
    println!("\nfirst 8 answers: {answers:?}");
}
