//! Citation-network scenario — the motivating workload of the paper's
//! introduction: "does paper A (transitively) cite paper B?".
//!
//! Generates a synthetic preferential-attachment citation DAG, builds
//! the paper's Distribution-Labeling oracle alongside
//! Hierarchical-Labeling, GRAIL, and index-free bidirectional BFS, and
//! compares construction time, index size, and ancestry-query latency.
//!
//! ```sh
//! cargo run --release --example citation_network
//! ```

use std::time::Instant;

use hoplite::baselines::{BidirOnline, Grail};
use hoplite::core::{DistributionLabeling, DlConfig, HierarchicalLabeling, HlConfig};
use hoplite::graph::gen;
use hoplite::ReachIndex;
use hoplite_bench::workload::equal_workload;

fn main() {
    let n = 50_000;
    let m = 200_000;
    println!("generating citation DAG: {n} papers, ~{m} citations ...");
    let dag = gen::power_law_dag(n, m, 2013);
    println!(
        "generated {} vertices, {} edges\n",
        dag.num_vertices(),
        dag.num_edges()
    );

    // 20k "does A cite B transitively?" queries, half positive.
    let load = equal_workload(&dag, 20_000, 7);

    let mut report: Vec<(String, f64, u64, f64)> = Vec::new();
    let mut run = |name: &str, idx: Box<dyn ReachIndex>, build_ms: f64| {
        let t = Instant::now();
        let mut cited = 0usize;
        for &(u, v) in &load.pairs {
            cited += idx.query(u, v) as usize;
        }
        let query_ms = t.elapsed().as_secs_f64() * 1e3;
        assert_eq!(
            cited,
            load.expected.iter().filter(|&&e| e).count(),
            "{name} disagreed with ground truth"
        );
        report.push((name.to_string(), build_ms, idx.size_in_integers(), query_ms));
    };

    let t = Instant::now();
    let dl = DistributionLabeling::build(&dag, &DlConfig::default());
    run(
        "DL (this paper)",
        Box::new(dl),
        t.elapsed().as_secs_f64() * 1e3,
    );

    let t = Instant::now();
    let hl = HierarchicalLabeling::build(&dag, &HlConfig::default());
    run(
        "HL (this paper)",
        Box::new(hl),
        t.elapsed().as_secs_f64() * 1e3,
    );

    let t = Instant::now();
    let gl = Grail::build(&dag, 5, 99);
    run("GRAIL", Box::new(gl), t.elapsed().as_secs_f64() * 1e3);

    let t = Instant::now();
    let bfs = BidirOnline::build(&dag);
    run(
        "BiBFS (no index)",
        Box::new(bfs),
        t.elapsed().as_secs_f64() * 1e3,
    );

    println!(
        "{:<18} {:>12} {:>14} {:>16}",
        "method", "build (ms)", "index (ints)", "20k queries (ms)"
    );
    for (name, build, size, query) in &report {
        println!("{name:<18} {build:>12.1} {size:>14} {query:>16.1}");
    }
    println!(
        "\npositive queries: {} / {}",
        load.expected.iter().filter(|&&e| e).count(),
        load.len()
    );
}
