//! Dynamic-graph scenario — the paper's future-work direction (§7),
//! implemented with the delta-overlay design of
//! `hoplite_core::dynamic`.
//!
//! Simulates a living dependency graph: packages gain dependencies
//! over time, some dependencies are dropped (O(1) lazy deletions,
//! confirmed on the query path), reachability queries interleave with
//! the updates, and the oracle transparently rebuilds when either
//! overlay gets large. Also demonstrates saving the final index to
//! disk and loading it back.
//!
//! ```sh
//! cargo run --release --example dynamic_updates
//! ```

use std::time::Instant;

use hoplite::core::dynamic::{DynamicOracle, MutationError};
use hoplite::core::{DistributionLabeling, DlConfig};
use hoplite::graph::gen::{self, Rng};
use hoplite::graph::GraphError;

fn main() {
    // Start with a 20k-vertex dependency DAG.
    let base = gen::tree_plus_dag(20_000, 5_000, 7);
    println!(
        "initial graph: {} packages, {} dependencies",
        base.num_vertices(),
        base.num_edges()
    );
    let n = base.num_vertices();
    let mut oracle = DynamicOracle::with_config(base, DlConfig::default(), 128);

    let mut rng = Rng::new(2024);
    let mut inserted = 0usize;
    let mut rejected = 0usize;
    let mut queries = 0usize;
    let t = Instant::now();
    while inserted < 1_000 {
        // One insertion ...
        let u = rng.gen_index(n) as u32;
        let v = rng.gen_index(n) as u32;
        match oracle.insert_edge(u, v) {
            Ok(()) => inserted += 1,
            Err(MutationError::Graph(GraphError::Cycle { .. })) => rejected += 1,
            Err(e) => panic!("unexpected error: {e}"),
        }
        // ... interleaved with a burst of queries.
        for _ in 0..50 {
            let a = rng.gen_index(n) as u32;
            let b = rng.gen_index(n) as u32;
            std::hint::black_box(oracle.query(a, b));
            queries += 1;
        }
    }
    let elapsed = t.elapsed().as_secs_f64();
    println!(
        "\nprocessed {inserted} insertions (+{rejected} cycle-rejected) and {queries} queries \
         in {elapsed:.2} s"
    );
    println!(
        "automatic rebuilds: {}, overlay now holds {} pending edges",
        oracle.rebuilds(),
        oracle.pending_edges()
    );

    // Dependencies get dropped too: deletions are applied lazily (the
    // stale labels stay a sound over-approximation), and queries keep
    // answering exactly.
    let t = Instant::now();
    let mut removed = 0usize;
    let snapshot_edges: Vec<(u32, u32)> = oracle.snapshot().graph().edges().collect();
    for i in (0..snapshot_edges.len()).step_by(snapshot_edges.len() / 60) {
        let (a, b) = snapshot_edges[i];
        if oracle.remove_edge(a, b).expect("no WAL attached") {
            removed += 1;
            let reachable_now = oracle.query(a, b);
            if removed <= 3 {
                println!(
                    "dropped dependency {a} -> {b}; still reachable via another path: \
                     {reachable_now}"
                );
            }
        }
    }
    println!(
        "removed {removed} dependencies in {:.1} ms \
         ({} deletions pending, {} rebuilds total)",
        t.elapsed().as_secs_f64() * 1e3,
        oracle.pending_deletions(),
        oracle.rebuilds()
    );

    // Fold the overlay and ship the final index to a file.
    oracle.rebuild();
    let final_dl = DistributionLabeling::build(oracle.snapshot(), &DlConfig::default());
    let path = std::env::temp_dir().join("hoplite-dynamic-example.idx");
    let mut file = std::fs::File::create(&path).expect("temp file writable");
    final_dl.save(&mut file).expect("index serializes");
    let bytes = std::fs::metadata(&path).expect("file exists").len();
    println!("\nsaved final index to {} ({bytes} bytes)", path.display());

    let loaded = DistributionLabeling::load(std::fs::File::open(&path).expect("file readable"))
        .expect("index deserializes");
    println!(
        "reloaded: {} label entries — queries match: {}",
        loaded.labeling().total_entries(),
        {
            use hoplite::ReachIndex;
            let mut ok = true;
            for _ in 0..1_000 {
                let a = rng.gen_index(n) as u32;
                let b = rng.gen_index(n) as u32;
                ok &= loaded.query(a, b) == oracle.query(a, b);
            }
            ok
        }
    );
    let _ = std::fs::remove_file(&path);
}
