//! Replays the paper's two running examples.
//!
//! * **Figure 1** (Hierarchical-Labeling): a DAG is decomposed into a
//!   backbone hierarchy `G0 ⊃ G1 ⊃ G2`; labels flow from the core
//!   down. The paper's exact 40-vertex drawing is not recoverable from
//!   the text, so a structurally matching DAG is used and the same
//!   statistics are narrated (per-level vertex sets, labels of a
//!   sample vertex).
//! * **Figure 2** (Distribution-Labeling): the exact cover structure
//!   of the paper's walkthrough *is* recoverable — hops 13, 7, 25 with
//!   `7 → 13`, `TC⁻¹(13) = TC⁻¹(7) ∪ {11}`, `X = {13, 7}`, `Y = ∅` —
//!   and is rebuilt and verified step by step (Lemma 2 / Theorem 2).
//!
//! ```sh
//! cargo run --example paper_figures
//! ```

use hoplite::core::hierarchy::{Hierarchy, HierarchyConfig};
use hoplite::core::{DistributionLabeling, HierarchicalLabeling, HlConfig};
use hoplite::graph::{gen, Dag};
use hoplite::ReachIndex;

fn main() {
    figure1();
    figure2();
}

/// Figure 1: hierarchical decomposition and level-wise labeling.
fn figure1() {
    println!("=== Figure 1: Hierarchical-Labeling running example ===\n");
    // A 40-vertex DAG in the spirit of the paper's drawing.
    let dag = gen::random_dag(40, 90, 1);
    let hier = Hierarchy::build(
        &dag,
        &HierarchyConfig {
            eps: 2,
            core_size_limit: 4,
            max_levels: 4,
        },
    );
    for (i, level) in hier.levels.iter().enumerate() {
        let mut members: Vec<u32> = level.to_orig.clone();
        members.sort_unstable();
        let shown: Vec<String> = members.iter().take(12).map(u32::to_string).collect();
        let suffix = if members.len() > 12 { ", ..." } else { "" };
        println!(
            "V{i} ({} vertices): {{{}{suffix}}}",
            members.len(),
            shown.join(", ")
        );
    }

    let hl = HierarchicalLabeling::build(
        &dag,
        &HlConfig {
            eps: 2,
            core_size_limit: 4,
            max_levels: 4,
            ..HlConfig::default()
        },
    );
    // Narrate the labels of a level-0 vertex, like the paper does for
    // vertex 14 of its drawing.
    let v = (0..40u32)
        .find(|&v| hier.level_of[v as usize] == 0 && dag.out_degree(v) > 0)
        .expect("some vertex is labeled at level 0");
    println!(
        "\nsample level-0 vertex {v}: Lout = {:?}, Lin = {:?}",
        hl.labeling().out_label(v),
        hl.labeling().in_label(v)
    );
    println!("(labels verified complete against BFS in tests/paper_figures.rs)\n");
}

/// Figure 2: the Cov(13) → Cov({13,7}) → Cov({13,7,25}) walkthrough.
fn figure2() {
    println!("=== Figure 2: Distribution-Labeling running example ===\n");
    let (dag, order) = figure2_graph();
    let names = |l: &[u32]| -> Vec<u32> { l.iter().map(|&r| order[r as usize]).collect() };

    let dl = DistributionLabeling::build_with_order(&dag, order.clone());
    println!("processing order (by rank): {order:?}\n");
    for v in [13u32, 7, 25, 11, 1, 2] {
        println!(
            "vertex {v:>2}: Lout = {:?}  Lin = {:?}",
            names(dl.labeling().out_label(v)),
            names(dl.labeling().in_label(v)),
        );
    }

    // The paper's claims, verified live. The walkthrough stops after
    // hops 13, 7, 25; later iterations add each vertex's own self-hop,
    // so restrict to the walkthrough hops:
    // "For all u in TC^-1(7), Lout(u) = {7, 13}"
    for u in [1u32, 2, 7] {
        let mut l: Vec<u32> = names(dl.labeling().out_label(u))
            .into_iter()
            .filter(|h| [13, 7, 25].contains(h))
            .collect();
        l.sort_unstable();
        assert_eq!(l, vec![7, 13], "Lemma 2 labeling for ancestor {u}");
    }
    // Vertex 11 reaches 13 but not 7: Lout(11) = {13, 11?...} — it
    // gets hop 13 (rank 0) and later itself.
    let l11 = names(dl.labeling().out_label(11));
    assert!(l11.contains(&13) && !l11.contains(&7));
    println!("\nLemma 2 / Theorem 2 structure verified. ✔");
    let _ = dl.query(1, 25);
}

/// A graph consistent with every constraint the paper states about its
/// Figure 2: `7 → 13`, `TC⁻¹(13) = TC⁻¹(7) ∪ {11}`, `TC(13) ⊂ TC(7)`,
/// both 13 and 7 reach 25 (`X = {13, 7}`), and 25 reaches nothing
/// previously processed (`Y = ∅`).
fn figure2_graph() -> (Dag, Vec<u32>) {
    // Vertices: 1, 2 (ancestors of 7), 7, 11, 13, 25, 30 (descendant
    // of 13), 31 (descendant of 7 only). Ids up to 31 for familiarity.
    let edges = [
        (1u32, 7u32),
        (2, 7),
        (7, 13),
        (7, 31),
        (11, 13),
        (13, 30),
        (13, 25),
    ];
    let dag = Dag::from_edges(32, &edges).expect("acyclic");
    // Rank order: 13 first, then 7, then 25, then everything else.
    let mut order = vec![13u32, 7, 25];
    order.extend((0..32u32).filter(|v| ![13, 7, 25].contains(v)));
    (dag, order)
}
