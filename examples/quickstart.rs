//! Quickstart: build a reachability oracle over an arbitrary directed
//! graph (cycles included) and answer queries.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use hoplite::{DiGraph, Oracle};

fn main() {
    // A small service-dependency graph. Services 0,1,2 form a retry
    // cycle (an SCC); 5 is an independent entry point.
    //
    //        ┌──────────┐
    //        ▼          │
    //   0 -> 1 -> 2 ────┘
    //             │
    //             ▼
    //   5 ──────> 3 -> 4
    let g = DiGraph::from_edges(6, &[(0, 1), (1, 2), (2, 0), (2, 3), (3, 4), (5, 3)])
        .expect("edges in range");

    // One call: SCC condensation + Distribution-Labeling (VLDB 2013).
    let oracle = Oracle::new(&g);

    println!(
        "graph: {} vertices, {} edges, {} strongly connected components",
        g.num_vertices(),
        g.num_edges(),
        oracle.num_components()
    );
    println!("index: {} hop-label entries\n", oracle.label_entries());

    for (u, v) in [(0, 4), (1, 0), (5, 4), (4, 0), (3, 5)] {
        println!("reaches({u}, {v}) = {}", oracle.reaches(u, v));
    }
}
