//! Ontology scenario: "is-a" reachability over a GO-style term DAG
//! (a deep subsumption tree with cross-links), the shape of the
//! paper's go_uniprot / uniprotenc datasets.
//!
//! Demonstrates Hierarchical-Labeling end to end: the recursive
//! backbone decomposition (Definition 2), per-level shrinkage, and
//! subsumption queries through the resulting oracle.
//!
//! ```sh
//! cargo run --release --example ontology
//! ```

use hoplite::core::{HierarchicalLabeling, HlConfig};
use hoplite::graph::gen;
use hoplite::ReachIndex;

fn main() {
    // An ontology: 30k terms, a subsumption tree plus 3k cross-links
    // ("part-of" style secondary parents).
    let terms = 30_000;
    let cross_links = 3_000;
    let dag = gen::tree_plus_dag(terms, cross_links, 42);
    println!(
        "ontology: {} terms, {} subsumption edges",
        dag.num_vertices(),
        dag.num_edges()
    );

    let cfg = HlConfig {
        eps: 2,
        core_size_limit: 500,
        max_levels: 10,
        ..HlConfig::default()
    };
    let hl = HierarchicalLabeling::build(&dag, &cfg);

    println!("\nhierarchical decomposition (Definition 2):");
    for (i, size) in hl.level_sizes().iter().enumerate() {
        let pct = 100.0 * *size as f64 / terms as f64;
        println!("  level {i}: {size:>6} vertices ({pct:>5.1} % of the ontology)");
    }
    let stats = hl.labeling().stats();
    println!(
        "\nlabels: {} entries total, {:.2} per term, longest list {}",
        stats.total_out + stats.total_in,
        stats.avg_per_vertex,
        stats.max_label
    );

    // Subsumption queries: is term `a` an ancestor of term `b`?
    // The generated root is whichever term ended up with in-degree 0.
    let root = dag.graph().roots().next().expect("tree has a root");
    let leaf = dag.graph().leaves().next().expect("tree has a leaf");
    println!("\nsample queries:");
    println!(
        "  subsumes(root={root}, leaf={leaf})  = {}",
        hl.query(root, leaf)
    );
    println!(
        "  subsumes(leaf={leaf}, root={root})  = {}",
        hl.query(leaf, root)
    );

    // Ancestor counting through the oracle: how many of a sample of
    // terms does the root subsume? (All of them — it is the root.)
    let sample = 1_000.min(terms) as u32;
    let subsumed = (0..sample).filter(|&t| hl.query(root, t)).count();
    println!("  root subsumes {subsumed} of the first {sample} terms");
    assert_eq!(subsumed as u32, sample);
}
