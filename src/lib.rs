//! # hoplite
//!
//! A fast, compact, scalable **reachability oracle** for directed
//! graphs — a production-oriented implementation of *“Simple, Fast,
//! and Scalable Reachability Oracle”* (Ruoming Jin & Guan Wang,
//! PVLDB 2013), together with every baseline index its evaluation
//! compares against.
//!
//! ## The 30-second version
//!
//! ```
//! use hoplite::{DiGraph, Oracle};
//!
//! // Any directed graph — cycles welcome (they are condensed away).
//! let g = DiGraph::from_edges(6, &[
//!     (0, 1), (1, 2), (2, 0),  // a strongly connected component
//!     (2, 3), (3, 4), (5, 3),
//! ]).unwrap();
//!
//! let oracle = Oracle::new(&g);
//! assert!(oracle.reaches(0, 4));   // through the SCC and onwards
//! assert!(oracle.reaches(1, 0));   // inside the SCC
//! assert!(!oracle.reaches(4, 5));
//! ```
//!
//! ## Crate map
//!
//! * [`hoplite_graph`] (re-exported as [`graph`]) — CSR digraphs, SCC
//!   condensation, DAG utilities, traversals, transitive closure,
//!   synthetic generators, graph I/O.
//! * [`hoplite_core`] (re-exported as [`core`]) — the paper's
//!   contribution: [`DistributionLabeling`] (Algorithm 2) and
//!   [`HierarchicalLabeling`] (Algorithm 1) plus reachability
//!   backbones and hierarchical DAG decomposition.
//! * [`hoplite_baselines`] (re-exported as [`baselines`]) — GRAIL,
//!   Path-Tree, Interval, PWAH-8, K-Reach, set-cover 2-HOP, TF-label,
//!   Pruned Landmark, SCARAB, online search, full TC.
//! * [`hoplite_bench`] (re-exported as [`bench`](crate::bench)) — dataset analogues,
//!   query workloads, and the harness regenerating the paper's
//!   Tables 1–7 and Figures 3–4 (`cargo run -p hoplite-bench --bin
//!   paper -- all`).
//!
//! The examples under `examples/` walk through realistic scenarios:
//! `quickstart`, `citation_network`, `ontology`, `paper_figures`, and
//! the `dataset_tool` CLI.

pub use hoplite_baselines as baselines;
pub use hoplite_bench as bench;
pub use hoplite_core as core;
pub use hoplite_graph as graph;

pub use hoplite_core::{
    DistributionLabeling, DlConfig, HierarchicalLabeling, HlConfig, Labeling, OrderKind, ReachIndex,
};
pub use hoplite_graph::{Dag, DiGraph, GraphBuilder, GraphError, VertexId};

use hoplite_graph::scc::Condensation;

/// The batteries-included reachability oracle.
///
/// Wraps the full pipeline a downstream user wants: SCC condensation
/// of an arbitrary digraph, Distribution-Labeling of the condensation
/// (the paper's recommended algorithm), and queries in terms of the
/// *original* vertex ids.
pub struct Oracle {
    cond: Condensation,
    dl: DistributionLabeling,
}

impl Oracle {
    /// Builds an oracle over any directed graph (cyclic or not) using
    /// Distribution-Labeling with the paper's default configuration.
    pub fn new(g: &DiGraph) -> Self {
        Self::with_config(g, &DlConfig::default())
    }

    /// Builds with a custom Distribution-Labeling configuration.
    pub fn with_config(g: &DiGraph, cfg: &DlConfig) -> Self {
        let cond = Dag::condense(g);
        let dl = DistributionLabeling::build(&cond.dag, cfg);
        Oracle { cond, dl }
    }

    /// Does `u` reach `v` in the original graph? Reflexive.
    pub fn reaches(&self, u: VertexId, v: VertexId) -> bool {
        let (cu, cv) = (self.cond.comp_of[u as usize], self.cond.comp_of[v as usize]);
        cu == cv || self.dl.query(cu, cv)
    }

    /// Answers a batch of `(u, v)` pairs (original vertex ids) using
    /// `threads` worker threads, preserving order. The labels are
    /// immutable, so this needs no synchronization; see
    /// [`hoplite_core::parallel`].
    pub fn reaches_batch(&self, pairs: &[(VertexId, VertexId)], threads: usize) -> Vec<bool> {
        let mapped: Vec<(VertexId, VertexId)> = pairs
            .iter()
            .map(|&(u, v)| (self.cond.comp_of[u as usize], self.cond.comp_of[v as usize]))
            .collect();
        // Same-component pairs map to (c, c), which the reflexive
        // labeling query answers `true`.
        hoplite_core::parallel::par_query_batch(self.dl.labeling(), &mapped, threads)
    }

    /// Number of strongly connected components of the input.
    pub fn num_components(&self) -> usize {
        self.cond.num_components()
    }

    /// Total hop-label entries of the underlying oracle (the paper's
    /// index-size metric).
    pub fn label_entries(&self) -> u64 {
        self.dl.labeling().total_entries()
    }

    /// The condensation, for callers that need component structure.
    pub fn condensation(&self) -> &Condensation {
        &self.cond
    }

    /// The underlying Distribution-Labeling oracle over the
    /// condensation DAG.
    pub fn inner(&self) -> &DistributionLabeling {
        &self.dl
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn oracle_handles_cycles() {
        let g = DiGraph::from_edges(6, &[(0, 1), (1, 2), (2, 0), (2, 3), (3, 4), (5, 3)]).unwrap();
        let o = Oracle::new(&g);
        assert_eq!(o.num_components(), 4);
        assert!(o.reaches(0, 4));
        assert!(o.reaches(1, 0), "within the SCC");
        assert!(o.reaches(5, 4));
        assert!(!o.reaches(4, 0));
        assert!(!o.reaches(3, 5));
        assert!(o.reaches(2, 2));
    }

    #[test]
    fn batch_matches_single_queries_through_sccs() {
        let g = DiGraph::from_edges(6, &[(0, 1), (1, 2), (2, 0), (2, 3), (3, 4), (5, 3)]).unwrap();
        let o = Oracle::new(&g);
        let pairs: Vec<(u32, u32)> = (0..6).flat_map(|u| (0..6).map(move |v| (u, v))).collect();
        for threads in [1, 4] {
            let batch = o.reaches_batch(&pairs, threads);
            for (&(u, v), &got) in pairs.iter().zip(&batch) {
                assert_eq!(got, o.reaches(u, v), "({u},{v}) at {threads} threads");
            }
        }
    }

    #[test]
    fn oracle_on_plain_dag_matches_bfs() {
        let g = DiGraph::from_edges(5, &[(0, 1), (0, 2), (1, 3), (2, 3), (3, 4)]).unwrap();
        let o = Oracle::new(&g);
        for u in 0..5u32 {
            for v in 0..5u32 {
                assert_eq!(o.reaches(u, v), hoplite_graph::traversal::reaches(&g, u, v));
            }
        }
        assert!(o.label_entries() > 0);
    }
}
