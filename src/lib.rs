//! # hoplite
//!
//! A fast, compact, scalable **reachability oracle** for directed
//! graphs — a production-oriented implementation of *“Simple, Fast,
//! and Scalable Reachability Oracle”* (Ruoming Jin & Guan Wang,
//! PVLDB 2013), together with every baseline index its evaluation
//! compares against.
//!
//! ## The 30-second version
//!
//! ```
//! use hoplite::{DiGraph, Oracle};
//!
//! // Any directed graph — cycles welcome (they are condensed away).
//! let g = DiGraph::from_edges(6, &[
//!     (0, 1), (1, 2), (2, 0),  // a strongly connected component
//!     (2, 3), (3, 4), (5, 3),
//! ]).unwrap();
//!
//! let oracle = Oracle::new(&g);
//! assert!(oracle.reaches(0, 4));   // through the SCC and onwards
//! assert!(oracle.reaches(1, 0));   // inside the SCC
//! assert!(!oracle.reaches(4, 5));
//! ```
//!
//! ## Crate map
//!
//! * [`hoplite_graph`] (re-exported as [`graph`]) — CSR digraphs, SCC
//!   condensation, DAG utilities, traversals, transitive closure,
//!   synthetic generators, graph I/O.
//! * [`hoplite_core`] (re-exported as [`core`]) — the paper's
//!   contribution: [`DistributionLabeling`] (Algorithm 2) and
//!   [`HierarchicalLabeling`] (Algorithm 1) plus reachability
//!   backbones and hierarchical DAG decomposition.
//! * [`hoplite_baselines`] (re-exported as [`baselines`]) — GRAIL,
//!   Path-Tree, Interval, PWAH-8, K-Reach, set-cover 2-HOP, TF-label,
//!   Pruned Landmark, SCARAB, online search, full TC.
//! * [`hoplite_bench`] (re-exported as [`bench`](crate::bench)) — dataset analogues,
//!   query workloads, and the harness regenerating the paper's
//!   Tables 1–7 and Figures 3–4 (`cargo run -p hoplite-bench --bin
//!   paper -- all`).
//! * [`hoplite_server`] (re-exported as [`server`]) — a
//!   dependency-free TCP query service: length-prefixed binary wire
//!   protocol, multi-namespace registry (frozen [`Oracle`] snapshots
//!   and mutable [`hoplite_core::DynamicOracle`]s), thread-pool
//!   connection handling, a blocking client, and the `hoplited`
//!   daemon.
//!
//! The examples under `examples/` walk through realistic scenarios:
//! `quickstart`, `citation_network`, `ontology`, `paper_figures`,
//! `reachability_service`, and the `dataset_tool` CLI.

pub use hoplite_baselines as baselines;
pub use hoplite_bench as bench;
pub use hoplite_core as core;
pub use hoplite_graph as graph;
pub use hoplite_server as server;

pub use hoplite_core::{
    DistributionLabeling, DlConfig, HierarchicalLabeling, HlConfig, Labeling, Oracle, OrderKind,
    ReachIndex,
};
pub use hoplite_graph::{Dag, DiGraph, GraphBuilder, GraphError, VertexId};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn oracle_handles_cycles() {
        let g = DiGraph::from_edges(6, &[(0, 1), (1, 2), (2, 0), (2, 3), (3, 4), (5, 3)]).unwrap();
        let o = Oracle::new(&g);
        assert_eq!(o.num_components(), 4);
        assert!(o.reaches(0, 4));
        assert!(o.reaches(1, 0), "within the SCC");
        assert!(o.reaches(5, 4));
        assert!(!o.reaches(4, 0));
        assert!(!o.reaches(3, 5));
        assert!(o.reaches(2, 2));
    }

    #[test]
    fn batch_matches_single_queries_through_sccs() {
        let g = DiGraph::from_edges(6, &[(0, 1), (1, 2), (2, 0), (2, 3), (3, 4), (5, 3)]).unwrap();
        let o = Oracle::new(&g);
        let pairs: Vec<(u32, u32)> = (0..6).flat_map(|u| (0..6).map(move |v| (u, v))).collect();
        for threads in [1, 4] {
            let batch = o.reaches_batch(&pairs, threads);
            for (&(u, v), &got) in pairs.iter().zip(&batch) {
                assert_eq!(got, o.reaches(u, v), "({u},{v}) at {threads} threads");
            }
        }
    }

    #[test]
    fn oracle_on_plain_dag_matches_bfs() {
        let g = DiGraph::from_edges(5, &[(0, 1), (0, 2), (1, 3), (2, 3), (3, 4)]).unwrap();
        let o = Oracle::new(&g);
        for u in 0..5u32 {
            for v in 0..5u32 {
                assert_eq!(o.reaches(u, v), hoplite_graph::traversal::reaches(&g, u, v));
            }
        }
        assert!(o.label_entries() > 0);
    }
}
