//! O(1) query pre-filters over a (condensation) DAG.
//!
//! O'Reach (Hanauer, Schulz & Trummer, *"O'Reach: Even Faster
//! Reachability in Large Graphs"*, SEA 2021 / JEA 2022) observes that
//! on real workloads the vast majority of reachability queries can be
//! answered by cheap constant-time *observations* before any index is
//! touched. This module is that layer for the hoplite pipeline: a
//! [`QueryFilters`] stage sits in front of the Distribution-Labeling
//! intersection in [`crate::Oracle`], the batch paths of
//! [`crate::parallel`], and (through the `Oracle`) the `hoplite-server`
//! REACH/BATCH handlers.
//!
//! Four observations are precomputed in `O(n + m)` from the DAG and
//! packed into one 32-byte [`FilterRecord`] per vertex:
//!
//! * **Topological levels** (negative cut): `u → v` implies
//!   `level(u) < level(v)`, where `level` is the longest-path depth.
//!   Any pair with `level(u) ≥ level(v)` (and `u ≠ v`) is unreachable.
//! * **DFS spanning-forest intervals** (positive cut): a deterministic
//!   DFS assigns each vertex a preorder number and a contiguous
//!   `[pre, pre_end)` interval covering exactly its tree descendants —
//!   all of which it reaches. Containment proves reachability.
//! * **GRAIL-style min-post intervals** (negative cut, after Yildirim,
//!   Chaoji & Zaki, VLDB 2010): with `post` the DFS postorder and
//!   `mpost(v)` the minimum postorder reachable from `v`, `u → v`
//!   implies `[mpost(v), post(v)] ⊆ [mpost(u), post(u)]`;
//!   non-containment proves unreachability. **Two** independent
//!   intervals are kept (GRAIL's `k = 2`), from two DFS runs with
//!   opposite root and child visit orders — pairs that slip through
//!   one forest's intervals are usually caught by the other's, and
//!   both live in the record already loaded.
//! * **Degree-zero shortcuts** (negative cut): a sink source-side
//!   (`N_out(u) = ∅`) reaches nothing but itself; a source target-side
//!   (`N_in(v) = ∅`) is reached by nothing but itself.
//!
//! Every observation is *sound* in isolation, so [`QueryFilters::check`]
//! may apply them in any order; the order below is tuned cheap-first.
//! Queries no filter decides fall through to the hop-label
//! intersection — [`FilterVerdict`] tells the `paper perf` harness
//! which layer fired, feeding the hit-rate stats in `BENCH_*.json`.

use hoplite_graph::{Dag, VertexId};

use crate::store::{MemorySplit, Store, StoreBackend};

/// Which pre-filter layer decided a query, if any.
///
/// Used by the perf harness to report per-layer hit rates; the hot
/// path ([`QueryFilters::check`]) carries no counters.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub enum FilterVerdict {
    /// `u == v` in filter space (same condensation component).
    SameComponent,
    /// Topological-level negative cut fired.
    LevelCut,
    /// Spanning-forest interval positive cut fired.
    TreeHit,
    /// Degree-zero source/sink shortcut fired.
    DegreeCut,
    /// GRAIL min-post interval negative cut fired.
    IntervalCut,
    /// No filter decided; the caller must run the label intersection.
    Fallthrough,
}

impl FilterVerdict {
    /// The decided answer, or `None` for [`FilterVerdict::Fallthrough`].
    #[inline]
    pub fn decided(self) -> Option<bool> {
        match self {
            FilterVerdict::SameComponent | FilterVerdict::TreeHit => Some(true),
            FilterVerdict::LevelCut | FilterVerdict::DegreeCut | FilterVerdict::IntervalCut => {
                Some(false)
            }
            FilterVerdict::Fallthrough => None,
        }
    }

    /// Stable snake_case name (JSON keys of the perf report).
    pub fn name(self) -> &'static str {
        match self {
            FilterVerdict::SameComponent => "same_component",
            FilterVerdict::LevelCut => "level_cut",
            FilterVerdict::TreeHit => "tree_hit",
            FilterVerdict::DegreeCut => "degree_cut",
            FilterVerdict::IntervalCut => "interval_cut",
            FilterVerdict::Fallthrough => "fallthrough",
        }
    }

    /// All verdicts in [`QueryFilters::classify`] evaluation order.
    pub const ALL: [FilterVerdict; 6] = [
        FilterVerdict::SameComponent,
        FilterVerdict::LevelCut,
        FilterVerdict::TreeHit,
        FilterVerdict::DegreeCut,
        FilterVerdict::IntervalCut,
        FilterVerdict::Fallthrough,
    ];
}

/// [`FilterRecord::flags`] bit: `N_out(v) = ∅`.
const FLAG_SINK: u32 = 1;
/// [`FilterRecord::flags`] bit: `N_in(v) = ∅`.
const FLAG_SOURCE: u32 = 2;

/// Every per-vertex filter quantity packed into one 32-byte record
/// (exactly half a cache line), so a query touches one line per side
/// instead of up to seven scattered arrays — the same memory-layout
/// argument the paper makes for sorted label arrays, applied to the
/// filter stage.
#[derive(Clone, Copy, Debug)]
#[repr(C)]
pub(crate) struct FilterRecord {
    /// Longest-path level.
    level: u32,
    /// DFS preorder number (forest 1). Unique per vertex, so equal
    /// `pre` on a projected set proves same-component.
    pre: u32,
    /// Exclusive end of the DFS-tree subtree preorder interval.
    pre_end: u32,
    /// DFS postorder number (forest 1).
    post: u32,
    /// Minimum postorder reachable (over *all* edges, not just tree
    /// edges; forest 1).
    mpost: u32,
    /// DFS postorder number of the second, oppositely-ordered forest.
    post2: u32,
    /// Minimum reachable postorder in the second forest.
    mpost2: u32,
    /// [`FLAG_SINK`] | [`FLAG_SOURCE`].
    flags: u32,
}

/// Byte size of one [`FilterRecord`] — eight `u32` fields, no padding.
/// This is the unit the HOPL v3 `FILTREC` arena section is measured
/// in; the const assertion below keeps the wire contract honest.
pub(crate) const FILTER_RECORD_BYTES: usize = 32;
const _: () = assert!(std::mem::size_of::<FilterRecord>() == FILTER_RECORD_BYTES);
const _: () = assert!(std::mem::align_of::<FilterRecord>() == 4);

// SAFETY: `FilterRecord` is `repr(C)`, all fields are `u32` (no
// padding, no invalid bit patterns, no pointers).
unsafe impl crate::store::Pod for FilterRecord {}

/// One deterministic iterative DFS over the forest rooted at the
/// in-degree-zero vertices, returning `(pre, pre_end, post)`.
/// `mirrored` flips both the root order (descending ids) and the
/// child visit order (reverse adjacency), yielding a forest as
/// independent of the first as a deterministic scheme gets.
fn dfs_forest(dag: &Dag, mirrored: bool) -> (Vec<u32>, Vec<u32>, Vec<u32>) {
    let n = dag.num_vertices();
    let g = dag.graph();
    let mut pre = vec![0u32; n];
    let mut pre_end = vec![0u32; n];
    let mut post = vec![0u32; n];
    let mut visited = vec![false; n];
    let mut pre_counter = 0u32;
    let mut post_counter = 0u32;
    // (vertex, next-out-neighbor cursor) frames.
    let mut stack: Vec<(VertexId, u32)> = Vec::new();
    let mut roots: Vec<VertexId> = (0..n as VertexId)
        .filter(|&v| g.in_degree(v) == 0)
        .collect();
    if mirrored {
        roots.reverse();
    }
    for root in roots {
        debug_assert!(!visited[root as usize], "sources have no ancestors");
        visited[root as usize] = true;
        pre[root as usize] = pre_counter;
        pre_counter += 1;
        stack.push((root, 0));
        while let Some(&mut (v, ref mut cursor)) = stack.last_mut() {
            let succs = g.out_neighbors(v);
            if (*cursor as usize) < succs.len() {
                let w = if mirrored {
                    succs[succs.len() - 1 - *cursor as usize]
                } else {
                    succs[*cursor as usize]
                };
                *cursor += 1;
                if !visited[w as usize] {
                    visited[w as usize] = true;
                    pre[w as usize] = pre_counter;
                    pre_counter += 1;
                    stack.push((w, 0));
                }
            } else {
                // Finished: everything pre-numbered since v's own
                // number is exactly v's DFS subtree.
                pre_end[v as usize] = pre_counter;
                post[v as usize] = post_counter;
                post_counter += 1;
                stack.pop();
            }
        }
    }
    // Every DAG vertex has an in-degree-zero ancestor, so the forest
    // over the sources covers the whole graph.
    debug_assert!(visited.iter().all(|&b| b));
    (pre, pre_end, post)
}

/// `mpost(v) = min(post(v), min over successors)` in reverse
/// topological order — successors are final before `v` is visited.
fn min_reachable_post(dag: &Dag, post: &[u32]) -> Vec<u32> {
    let g = dag.graph();
    let mut mpost = post.to_vec();
    for &v in dag.topo_order().iter().rev() {
        let mut m = mpost[v as usize];
        for &w in g.out_neighbors(v) {
            m = m.min(mpost[w as usize]);
        }
        mpost[v as usize] = m;
    }
    mpost
}

/// Precomputed O(1) pre-filters for reachability queries on a DAG.
///
/// Built in `O(n + m)` by [`QueryFilters::build`]; all state is one
/// flat array of 32-byte per-vertex records, so a filter set is cheap
/// to clone, ship, and (in [`crate::persist`]) rebuild from a loaded
/// condensation — the on-disk HOPL format carries no filter payload.
///
/// ```
/// use hoplite_graph::Dag;
/// use hoplite_core::QueryFilters;
///
/// let dag = Dag::from_edges(4, &[(0, 1), (1, 2), (1, 3)])?;
/// let f = QueryFilters::build(&dag);
/// assert_eq!(f.check(0, 2), Some(true));   // spanning-tree descendant
/// assert_eq!(f.check(2, 0), Some(false));  // level cut
/// assert_eq!(f.check(2, 3), Some(false));  // 2 is a sink
/// # Ok::<(), hoplite_graph::GraphError>(())
/// ```
#[derive(Clone, Debug)]
pub struct QueryFilters {
    recs: Store<FilterRecord>,
}

impl QueryFilters {
    /// Precomputes all filter layers for `dag` in `O(n + m)`.
    ///
    /// Deterministic: the first DFS forest is rooted at the
    /// in-degree-zero vertices in ascending id order with children
    /// visited in adjacency order; the second uses descending roots
    /// and reversed child order. Two builds over the same DAG agree
    /// exactly.
    pub fn build(dag: &Dag) -> Self {
        let n = dag.num_vertices();
        let g = dag.graph();
        let level = dag.longest_path_levels();

        let (pre, pre_end, post) = dfs_forest(dag, false);
        let mpost = min_reachable_post(dag, &post);
        // The second, independently ordered forest (GRAIL k = 2): its
        // tree interval is discarded, only the min-post interval kept.
        let (_, _, post2) = dfs_forest(dag, true);
        let mpost2 = min_reachable_post(dag, &post2);

        let recs = (0..n)
            .map(|v| FilterRecord {
                level: level[v],
                pre: pre[v],
                pre_end: pre_end[v],
                post: post[v],
                mpost: mpost[v],
                post2: post2[v],
                mpost2: mpost2[v],
                flags: (g.out_degree(v as VertexId) == 0) as u32 * FLAG_SINK
                    + (g.in_degree(v as VertexId) == 0) as u32 * FLAG_SOURCE,
            })
            .collect::<Vec<_>>();

        QueryFilters { recs: recs.into() }
    }

    /// Wraps a store of records directly — the HOPL v3 arena path. The
    /// 32-byte filter records are persisted verbatim, so a mapped open
    /// performs **no** filter recomputation (the expensive-to-derive /
    /// cheap-to-store trade O'Reach points out).
    pub(crate) fn from_store(recs: Store<FilterRecord>) -> QueryFilters {
        QueryFilters { recs }
    }

    /// The records as raw little-endian bytes — the persistence
    /// layer's view (written verbatim as the v3 `FILTREC` section).
    pub(crate) fn record_bytes(&self) -> &[u8] {
        // SAFETY: `FilterRecord` is Pod (`repr(C)`, padding-free), so
        // viewing the slice as bytes is always defined.
        unsafe {
            std::slice::from_raw_parts(
                self.recs.as_ptr() as *const u8,
                self.recs.len() * FILTER_RECORD_BYTES,
            )
        }
    }

    /// True byte footprint of the filter stage, split by backing.
    pub fn memory(&self) -> MemorySplit {
        MemorySplit::of(&self.recs)
    }

    /// [`StoreBackend::Mapped`] iff the records live in a shared arena.
    pub fn backend(&self) -> StoreBackend {
        self.recs.backend()
    }

    /// Re-indexes the filter set from condensation-component space into
    /// *original-vertex* space: vertex `v`'s record becomes a copy of
    /// its component's record. Queries then skip the `comp_of`
    /// indirection entirely on the filter fast path — one cache-line
    /// load per side instead of two *dependent* loads — and same-SCC
    /// pairs are still answered correctly because two vertices share a
    /// preorder number iff they share a component (see
    /// [`QueryFilters::classify`]). [`crate::Oracle`] queries through a
    /// projected set; the component-space set remains the right tool
    /// for DAG-space callers.
    pub fn project(&self, comp_of: &[VertexId]) -> QueryFilters {
        QueryFilters {
            recs: comp_of
                .iter()
                .map(|&c| self.recs[c as usize])
                .collect::<Vec<_>>()
                .into(),
        }
    }

    /// Vertices covered.
    pub fn num_vertices(&self) -> usize {
        self.recs.len()
    }

    /// Footprint in 32-bit integers (the workspace's index-size unit):
    /// eight per vertex (seven quantities plus the packed flag word).
    pub fn size_in_integers(&self) -> u64 {
        8 * self.recs.len() as u64
    }

    /// Hints the CPU to pull `u`'s and `v`'s records toward L1 — the
    /// batch paths issue this a dozen queries ahead so the record
    /// loads in [`QueryFilters::check`] hit cache instead of stalling
    /// (the record array outgrows L2 on bench-scale graphs). Purely a
    /// hint: no-op off x86_64, never dereferences, and out-of-range
    /// ids are harmless (the address is computed without `add`'s
    /// in-bounds contract).
    #[inline]
    pub fn prefetch(&self, u: VertexId, v: VertexId) {
        #[cfg(target_arch = "x86_64")]
        unsafe {
            use std::arch::x86_64::{_mm_prefetch, _MM_HINT_T0};
            let base = self.recs.as_ptr();
            _mm_prefetch(base.wrapping_add(u as usize) as *const i8, _MM_HINT_T0);
            _mm_prefetch(base.wrapping_add(v as usize) as *const i8, _MM_HINT_T0);
        }
        #[cfg(not(target_arch = "x86_64"))]
        {
            let _ = (u, v);
        }
    }

    /// Negative cut: `true` ⇒ `u` does **not** reach `v` (`u ≠ v`).
    ///
    /// Sound on projected sets too: equal preorder numbers mean `u`
    /// and `v` share an SCC (reachable), so the cut must not fire.
    #[inline]
    pub fn level_cut(&self, u: VertexId, v: VertexId) -> bool {
        let (ru, rv) = (&self.recs[u as usize], &self.recs[v as usize]);
        ru.level >= rv.level && ru.pre != rv.pre
    }

    /// Positive cut: `true` ⇒ `v` is a DFS-tree descendant of `u`,
    /// hence reachable.
    #[inline]
    pub fn tree_hit(&self, u: VertexId, v: VertexId) -> bool {
        let (ru, rv) = (&self.recs[u as usize], &self.recs[v as usize]);
        ru.pre <= rv.pre && rv.pre < ru.pre_end
    }

    /// Negative cut: `true` ⇒ unreachable because `u` is a sink or `v`
    /// is a source (`u ≠ v`).
    ///
    /// Sound on projected sets too: same-SCC pairs (equal preorder
    /// numbers) are reachable, so the cut must not fire for them.
    #[inline]
    pub fn degree_cut(&self, u: VertexId, v: VertexId) -> bool {
        let (ru, rv) = (&self.recs[u as usize], &self.recs[v as usize]);
        ((ru.flags & FLAG_SINK) | (rv.flags & FLAG_SOURCE)) != 0 && ru.pre != rv.pre
    }

    /// Negative cut: `true` ⇒ in either DFS forest, the GRAIL interval
    /// of `v` is not contained in `u`'s, hence unreachable.
    #[inline]
    pub fn interval_cut(&self, u: VertexId, v: VertexId) -> bool {
        let (ru, rv) = (&self.recs[u as usize], &self.recs[v as usize]);
        rv.mpost < ru.mpost || rv.post > ru.post || rv.mpost2 < ru.mpost2 || rv.post2 > ru.post2
    }

    /// Runs the filter stack cheap-first and reports which layer
    /// decided. [`FilterVerdict::Fallthrough`] means the caller must
    /// run the label intersection.
    ///
    /// Both records are loaded once up front — every layer then works
    /// out of the two cache lines already in hand.
    #[inline]
    pub fn classify(&self, u: VertexId, v: VertexId) -> FilterVerdict {
        if u == v {
            return FilterVerdict::SameComponent;
        }
        let (ru, rv) = (self.recs[u as usize], self.recs[v as usize]);
        if ru.level >= rv.level {
            // Preorder numbers are unique per component, so equal `pre`
            // means `u` and `v` share an SCC (possible only on a
            // projected set — see [`QueryFilters::project`]): reachable.
            return if ru.pre == rv.pre {
                FilterVerdict::SameComponent
            } else {
                FilterVerdict::LevelCut
            };
        }
        if ru.pre <= rv.pre && rv.pre < ru.pre_end {
            return FilterVerdict::TreeHit;
        }
        if ((ru.flags & FLAG_SINK) | (rv.flags & FLAG_SOURCE)) != 0 {
            return FilterVerdict::DegreeCut;
        }
        if rv.mpost < ru.mpost || rv.post > ru.post || rv.mpost2 < ru.mpost2 || rv.post2 > ru.post2
        {
            return FilterVerdict::IntervalCut;
        }
        FilterVerdict::Fallthrough
    }

    /// The O(1) pre-filter stage: `Some(answer)` if any layer decides
    /// the query, `None` if it must fall through to the index.
    #[inline]
    pub fn check(&self, u: VertexId, v: VertexId) -> Option<bool> {
        self.classify(u, v).decided()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hoplite_graph::{gen, traversal};

    /// Soundness: on arbitrary DAGs every decided verdict must agree
    /// with BFS ground truth, for every layer individually.
    #[test]
    fn every_layer_is_sound_on_random_dags() {
        for seed in 0..6 {
            for dag in [
                gen::random_dag(60, 180, seed),
                gen::tree_plus_dag(60, 15, seed),
                gen::power_law_dag(60, 180, seed),
            ] {
                let f = QueryFilters::build(&dag);
                let n = dag.num_vertices() as VertexId;
                for u in 0..n {
                    for v in 0..n {
                        let truth = traversal::reaches(dag.graph(), u, v);
                        if u != v {
                            if f.tree_hit(u, v) {
                                assert!(truth, "tree_hit false positive ({u},{v}) seed {seed}");
                            }
                            if f.level_cut(u, v) || f.degree_cut(u, v) || f.interval_cut(u, v) {
                                assert!(!truth, "negative cut false ({u},{v}) seed {seed}");
                            }
                        }
                        if let Some(ans) = f.check(u, v) {
                            assert_eq!(ans, truth, "check() wrong at ({u},{v}) seed {seed}");
                        }
                        assert_eq!(f.classify(u, v).decided(), f.check(u, v));
                    }
                }
            }
        }
    }

    #[test]
    fn chains_are_fully_decided_by_the_tree_cut() {
        // On a path the DFS tree is the graph: every query is decided.
        let dag = Dag::from_edges(6, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 5)]).unwrap();
        let f = QueryFilters::build(&dag);
        for u in 0..6u32 {
            for v in 0..6u32 {
                assert_eq!(f.check(u, v), Some(u <= v), "({u},{v})");
            }
        }
    }

    #[test]
    fn degree_shortcuts_fire_on_sources_and_sinks() {
        // 0 → 1, 2 isolated: 2 is both source and sink.
        let dag = Dag::from_edges(3, &[(0, 1)]).unwrap();
        let f = QueryFilters::build(&dag);
        assert_eq!(f.check(1, 2), Some(false), "1 is a sink");
        assert_eq!(f.check(2, 0), Some(false), "0 is a source");
        assert_eq!(f.check(2, 2), Some(true), "reflexive");
        assert!(f.degree_cut(1, 0));
    }

    #[test]
    fn verdict_names_and_order_are_stable() {
        assert_eq!(FilterVerdict::ALL.len(), 6);
        let names: Vec<&str> = FilterVerdict::ALL.iter().map(|v| v.name()).collect();
        assert_eq!(
            names,
            [
                "same_component",
                "level_cut",
                "tree_hit",
                "degree_cut",
                "interval_cut",
                "fallthrough"
            ]
        );
        assert_eq!(FilterVerdict::Fallthrough.decided(), None);
    }

    /// Projection into original-vertex space must stay sound on cyclic
    /// graphs: same-SCC pairs (identical records) are recognized as
    /// reachable via preorder equality, everything else matches the
    /// component-space verdict.
    #[test]
    fn projected_filters_match_component_space_on_cyclic_graphs() {
        use hoplite_graph::DiGraph;
        let mut rng = gen::Rng::new(77);
        for seed in 0..4u64 {
            let n = 40usize;
            let edges: Vec<(VertexId, VertexId)> = (0..160)
                .filter_map(|_| {
                    let u = rng.gen_index(n) as VertexId;
                    let v = rng.gen_index(n) as VertexId;
                    (u != v).then_some((u, v))
                })
                .collect();
            let g = DiGraph::from_edges(n, &edges).unwrap();
            let cond = Dag::condense(&g);
            let comp = QueryFilters::build(&cond.dag);
            let proj = comp.project(&cond.comp_of);
            assert_eq!(proj.num_vertices(), n);
            for u in 0..n as VertexId {
                for v in 0..n as VertexId {
                    let (cu, cv) = (cond.comp_of[u as usize], cond.comp_of[v as usize]);
                    let expect = if cu == cv {
                        Some(true)
                    } else {
                        comp.check(cu, cv)
                    };
                    assert_eq!(proj.check(u, v), expect, "({u},{v}) seed {seed}");
                    if u != v && cu == cv {
                        assert_eq!(
                            proj.classify(u, v),
                            FilterVerdict::SameComponent,
                            "({u},{v}) seed {seed}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn empty_and_singleton_graphs() {
        let f = QueryFilters::build(&Dag::from_edges(0, &[]).unwrap());
        assert_eq!(f.num_vertices(), 0);
        let f = QueryFilters::build(&Dag::from_edges(1, &[]).unwrap());
        assert_eq!(f.check(0, 0), Some(true));
    }

    /// Filters must prune a meaningful share of a random negative-heavy
    /// workload — the whole point of the layer. (Loose bound; the perf
    /// harness reports the real rates.)
    #[test]
    fn filters_decide_most_random_queries() {
        let dag = gen::random_dag(400, 1200, 9);
        let f = QueryFilters::build(&dag);
        let mut rng = gen::Rng::new(7);
        let total = 4_000;
        let decided = (0..total)
            .filter(|_| {
                let u = rng.gen_range(400) as VertexId;
                let v = rng.gen_range(400) as VertexId;
                f.check(u, v).is_some()
            })
            .count();
        assert!(
            decided * 2 > total,
            "filters decided only {decided}/{total} random queries"
        );
    }
}
