//! Incremental reachability on growing DAGs — the paper's first
//! future-work item ("we will investigate the labeling on dynamic
//! graphs", §7).
//!
//! Rebuilding a Distribution-Labeling from scratch on every edge
//! insertion wastes its excellent construction speed. This module uses
//! the standard *delta overlay* design instead:
//!
//! * queries against the labeled snapshot stay O(|labels|);
//! * inserted edges accumulate in an overlay `Δ`;
//! * a query `u → v` holds in `G ∪ Δ` iff some path alternates static
//!   segments with Δ-edges:
//!   `u →G a₁ →Δ b₁ →G a₂ →Δ b₂ … →G v` — checked by a BFS over the
//!   Δ-edges, with each static segment answered by the oracle;
//! * once `Δ` outgrows a threshold, the oracle is rebuilt (DL's
//!   construction is fast enough that amortized cost stays low —
//!   that is precisely the paper's headline property).
//!
//! Edge *deletions* use the dual trick: removing edges can only shrink
//! reachability, so the stale oracle stays a sound *over*-approximation.
//! A query that the (oracle + Δ) machinery answers `false` is final;
//! a `true` with deletions pending is confirmed by one BFS on the
//! current logical graph. Deletions are therefore O(1) to apply, and
//! the confirmation cost is amortized away by the same
//! threshold-triggered rebuild.
//!
//! Two serving-tier concerns layer on top:
//!
//! * **Durability** — a [`Durability`] hook logs every mutation to a
//!   write-ahead log *before* it is applied (and before any caller
//!   acknowledges it), so `acknowledged ⇒ logged` holds and a crash
//!   recovers a prefix of acknowledged operations (see [`crate::wal`]).
//! * **Non-blocking rebuild** — instead of the inline [`Self::rebuild`]
//!   a server takes a cheap [`Self::rebuild_plan`] snapshot, runs the
//!   heavy [`RebuildPlan::execute`] off-lock on a worker thread while
//!   readers keep answering through the overlay, and finally
//!   [`Self::publish`]es the result: the overlay is re-derived by set
//!   algebra so mutations that landed *mid-rebuild* are preserved.

use std::cell::RefCell;
use std::fmt;
use std::io;

use hoplite_graph::digraph::GraphBuilder;
use hoplite_graph::{Dag, GraphError, VertexId};

use crate::distribution::{DistributionLabeling, DlConfig};
use crate::oracle::ReachIndex;
use crate::wal::{Durability, EdgeOp};

/// Why a mutation was refused. Either the edge itself is invalid for
/// the current graph, or the durability hook could not log it — in
/// both cases the oracle is unchanged and the mutation must not be
/// acknowledged.
#[derive(Debug)]
pub enum MutationError {
    /// Structurally invalid: the edge would close a cycle, or an
    /// endpoint is out of range.
    Graph(GraphError),
    /// The write-ahead log rejected the record; nothing was applied.
    Durability(io::Error),
}

impl fmt::Display for MutationError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MutationError::Graph(e) => write!(f, "{e}"),
            MutationError::Durability(e) => write!(f, "durability: {e}"),
        }
    }
}

impl std::error::Error for MutationError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            MutationError::Graph(e) => Some(e),
            MutationError::Durability(e) => Some(e),
        }
    }
}

impl From<GraphError> for MutationError {
    fn from(e: GraphError) -> Self {
        MutationError::Graph(e)
    }
}

/// How an insert changes the overlay, decided before anything is
/// logged or applied.
enum InsertAction {
    /// Already live — nothing to log, nothing to do.
    Noop,
    /// The edge is a tombstoned snapshot edge; clear the tombstone at
    /// this index.
    ClearTombstone(usize),
    /// A genuinely new edge for the Δ overlay.
    Append,
}

/// How a remove changes the overlay.
enum RemoveAction {
    /// Not present (neither snapshot nor overlay).
    Missing,
    /// Drop the overlay edge at this index.
    DropDelta(usize),
    /// Tombstone a live snapshot edge.
    Tombstone,
}

/// A reachability oracle over a DAG that accepts edge insertions.
///
/// ```
/// use hoplite_graph::Dag;
/// use hoplite_core::dynamic::DynamicOracle;
///
/// let dag = Dag::from_edges(4, &[(0, 1), (2, 3)])?;
/// let mut oracle = DynamicOracle::new(dag);
/// assert!(!oracle.query(0, 3));
/// oracle.insert_edge(1, 2)?;          // answered through the overlay
/// assert!(oracle.query(0, 3));
/// assert!(oracle.insert_edge(3, 0).is_err());  // would close a cycle
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub struct DynamicOracle {
    dag: Dag,
    dl: DistributionLabeling,
    cfg: DlConfig,
    /// Edges inserted since the last rebuild.
    delta: Vec<(VertexId, VertexId)>,
    /// Snapshot edges logically removed since the last rebuild.
    deleted: Vec<(VertexId, VertexId)>,
    /// Rebuild once `delta` or `deleted` reaches this size.
    rebuild_threshold: usize,
    /// Inline rebuild at the threshold (library default). A serving
    /// tier turns this off and drives [`Self::rebuild_plan`] /
    /// [`Self::publish`] from a background worker instead.
    auto_rebuild: bool,
    /// Logs every mutation before it is applied; `None` = volatile.
    durability: Option<Box<dyn Durability>>,
    /// Per-query visited marks over delta-edge indices.
    visited: RefCell<Vec<bool>>,
    /// Per-query visited marks over vertices (deletion-confirm BFS).
    vertex_visited: RefCell<Vec<bool>>,
    rebuilds: usize,
}

impl DynamicOracle {
    /// Default overlay size before an automatic rebuild.
    pub const DEFAULT_REBUILD_THRESHOLD: usize = 64;

    /// Builds the initial oracle over `dag`.
    pub fn new(dag: Dag) -> Self {
        Self::with_config(dag, DlConfig::default(), Self::DEFAULT_REBUILD_THRESHOLD)
    }

    /// Builds with a custom DL configuration and rebuild threshold.
    pub fn with_config(dag: Dag, cfg: DlConfig, rebuild_threshold: usize) -> Self {
        assert!(rebuild_threshold >= 1);
        let dl = DistributionLabeling::build(&dag, &cfg);
        DynamicOracle {
            dag,
            dl,
            cfg,
            delta: Vec::new(),
            deleted: Vec::new(),
            rebuild_threshold,
            auto_rebuild: true,
            durability: None,
            visited: RefCell::new(Vec::new()),
            vertex_visited: RefCell::new(Vec::new()),
            rebuilds: 0,
        }
    }

    /// Number of vertices.
    pub fn num_vertices(&self) -> usize {
        self.dag.num_vertices()
    }

    /// Edges waiting in the overlay.
    pub fn pending_edges(&self) -> usize {
        self.delta.len()
    }

    /// Snapshot edges logically deleted but not yet folded out.
    pub fn pending_deletions(&self) -> usize {
        self.deleted.len()
    }

    /// How many automatic/explicit rebuilds have happened.
    pub fn rebuilds(&self) -> usize {
        self.rebuilds
    }

    /// Hop-label entries of the labeled snapshot (overlay excluded) —
    /// the paper's index-size metric, surfaced for serving-side stats.
    pub fn label_entries(&self) -> u64 {
        self.dl.labeling().total_entries()
    }

    /// True byte footprint: the labeled snapshot (labels, signatures,
    /// rank order), the DAG, and the mutation overlay. All heap — a
    /// dynamic oracle owns every array it mutates.
    pub fn memory(&self) -> crate::store::MemorySplit {
        let mut m = self.dl.memory();
        m.add(crate::store::MemorySplit {
            heap_bytes: self.dag.graph().memory_bytes() as u64
                + ((self.delta.capacity() + self.deleted.capacity())
                    * std::mem::size_of::<(VertexId, VertexId)>()) as u64,
            mapped_bytes: 0,
        });
        m
    }

    // ------------------------------------------------------------------
    // Durability
    // ------------------------------------------------------------------

    /// Installs the durability hook. Every subsequent mutation is
    /// logged through it *before* being applied, so `Ok` from
    /// [`Self::insert_edge`]/[`Self::remove_edge`] implies the op is
    /// in the log.
    pub fn set_durability(&mut self, durability: Box<dyn Durability>) {
        self.durability = Some(durability);
    }

    /// The installed hook, if any (the serving tier rotates the log
    /// through this at publish time).
    pub fn durability_mut(&mut self) -> Option<&mut (dyn Durability + 'static)> {
        self.durability.as_deref_mut()
    }

    /// Forces every logged record to stable storage (graceful
    /// shutdown). No-op without a hook.
    pub fn sync_durability(&mut self) -> io::Result<()> {
        match self.durability.as_deref_mut() {
            Some(d) => d.sync(),
            None => Ok(()),
        }
    }

    /// Bytes in the current WAL generation (0 without a hook).
    pub fn wal_bytes(&self) -> u64 {
        self.durability.as_deref().map_or(0, |d| d.wal_bytes())
    }

    /// Records logged over the namespace's lifetime (0 without a hook).
    pub fn wal_records_total(&self) -> u64 {
        self.durability
            .as_deref()
            .map_or(0, |d| d.wal_records_total())
    }

    // ------------------------------------------------------------------
    // Mutations
    // ------------------------------------------------------------------

    /// Inserts the edge `u → v`.
    ///
    /// Returns [`GraphError::Cycle`] (wrapped, and leaves the oracle
    /// unchanged) if the edge would close a directed cycle,
    /// [`GraphError::VertexOutOfRange`] for bad endpoints, and
    /// [`MutationError::Durability`] if the WAL refused the record —
    /// in every error case nothing was applied. Triggers an automatic
    /// inline rebuild at the threshold unless
    /// [`Self::set_auto_rebuild`]`(false)`.
    pub fn insert_edge(&mut self, u: VertexId, v: VertexId) -> Result<(), MutationError> {
        let action = self.plan_insert(u, v)?;
        if matches!(action, InsertAction::Noop) {
            return Ok(());
        }
        if let Some(d) = self.durability.as_deref_mut() {
            d.log(EdgeOp::Insert(u, v))
                .map_err(MutationError::Durability)?;
        }
        match action {
            InsertAction::Noop => unreachable!(),
            InsertAction::ClearTombstone(i) => {
                self.deleted.swap_remove(i);
            }
            InsertAction::Append => self.delta.push((u, v)),
        }
        self.maybe_auto_rebuild();
        Ok(())
    }

    fn plan_insert(&self, u: VertexId, v: VertexId) -> Result<InsertAction, GraphError> {
        let n = self.dag.num_vertices();
        for x in [u, v] {
            if (x as usize) >= n {
                return Err(GraphError::VertexOutOfRange {
                    vertex: x as u64,
                    num_vertices: n,
                });
            }
        }
        if u == v || self.query(v, u) {
            return Err(GraphError::Cycle { vertex: u });
        }
        // Set semantics: re-inserting a live edge is a no-op, and
        // re-inserting a logically deleted snapshot edge just clears
        // the deletion mark.
        if let Some(i) = self.deleted.iter().position(|&e| e == (u, v)) {
            return Ok(InsertAction::ClearTombstone(i));
        }
        if self.delta.contains(&(u, v)) || self.dag.graph().has_edge(u, v) {
            return Ok(InsertAction::Noop);
        }
        Ok(InsertAction::Append)
    }

    /// Removes an edge lazily: overlay edges are dropped in place, and
    /// snapshot edges are marked deleted in O(1) — the stale labels
    /// stay sound because deletions only shrink reachability (see
    /// [`Self::query`]). A rebuild folds the marks out once they reach
    /// the threshold. `Ok(false)` means the edge did not exist
    /// (neither live in the snapshot nor in the overlay) — nothing is
    /// logged for a no-op.
    pub fn remove_edge(&mut self, u: VertexId, v: VertexId) -> Result<bool, MutationError> {
        let action = self.plan_remove(u, v);
        if matches!(action, RemoveAction::Missing) {
            return Ok(false);
        }
        if let Some(d) = self.durability.as_deref_mut() {
            d.log(EdgeOp::Remove(u, v))
                .map_err(MutationError::Durability)?;
        }
        match action {
            RemoveAction::Missing => unreachable!(),
            RemoveAction::DropDelta(i) => {
                self.delta.swap_remove(i);
            }
            RemoveAction::Tombstone => self.deleted.push((u, v)),
        }
        self.maybe_auto_rebuild();
        Ok(true)
    }

    fn plan_remove(&self, u: VertexId, v: VertexId) -> RemoveAction {
        if let Some(i) = self.delta.iter().position(|&e| e == (u, v)) {
            return RemoveAction::DropDelta(i);
        }
        if !self.dag.graph().has_edge(u, v) || self.deleted.contains(&(u, v)) {
            return RemoveAction::Missing;
        }
        RemoveAction::Tombstone
    }

    /// Re-applies recovered WAL operations without re-logging them
    /// (they are already in the log). Auto-rebuild is suppressed while
    /// replaying and a single rebuild folds the overlay afterwards if
    /// it crossed the threshold. Replaying a valid log prefix cannot
    /// fail — each op was validated against exactly the state its
    /// acknowledgment saw — but errors surface rather than panic in
    /// case the caller feeds a log that does not match the base.
    pub fn replay(&mut self, ops: &[EdgeOp]) -> Result<(), MutationError> {
        let durability = self.durability.take();
        let auto = self.auto_rebuild;
        self.auto_rebuild = false;
        let mut result = Ok(());
        for &op in ops {
            let applied = match op {
                EdgeOp::Insert(u, v) => self.insert_edge(u, v),
                EdgeOp::Remove(u, v) => self.remove_edge(u, v).map(|_| ()),
            };
            if let Err(e) = applied {
                result = Err(e);
                break;
            }
        }
        self.auto_rebuild = auto;
        self.durability = durability;
        if result.is_ok() && self.auto_rebuild && self.needs_rebuild() {
            self.rebuild();
        }
        result
    }

    // ------------------------------------------------------------------
    // Rebuilds — inline and backgroundable
    // ------------------------------------------------------------------

    /// Whether the inline threshold rebuild is armed (default `true`).
    /// A serving tier disables it and watches [`Self::needs_rebuild`]
    /// to drive the background plan/execute/publish cycle instead.
    pub fn set_auto_rebuild(&mut self, auto: bool) {
        self.auto_rebuild = auto;
    }

    /// Re-tunes the overlay size that arms a rebuild (panics on 0).
    pub fn set_rebuild_threshold(&mut self, threshold: usize) {
        assert!(threshold >= 1);
        self.rebuild_threshold = threshold;
    }

    /// Has the overlay reached the rebuild threshold?
    pub fn needs_rebuild(&self) -> bool {
        self.delta.len() >= self.rebuild_threshold || self.deleted.len() >= self.rebuild_threshold
    }

    fn maybe_auto_rebuild(&mut self) {
        if self.auto_rebuild && self.needs_rebuild() {
            self.rebuild();
        }
    }

    /// Folds the overlay (insertions *and* deletions) into the snapshot
    /// and relabels. Called automatically at the thresholds; callable
    /// eagerly (e.g. before a query burst).
    pub fn rebuild(&mut self) {
        if self.delta.is_empty() && self.deleted.is_empty() {
            return;
        }
        self.dag = fold_overlay(&self.dag, &self.delta, &self.deleted);
        self.dl = DistributionLabeling::build(&self.dag, &self.cfg);
        self.delta.clear();
        self.deleted.clear();
        self.rebuilds += 1;
    }

    /// Snapshots everything a background rebuild needs: the current
    /// base DAG plus the overlay as of now. Cheap relative to a label
    /// build (one CSR clone + two small Vec clones) — called under the
    /// serving lock; the heavy [`RebuildPlan::execute`] then runs with
    /// no lock held at all.
    pub fn rebuild_plan(&self) -> RebuildPlan {
        RebuildPlan {
            dag: self.dag.clone(),
            delta: self.delta.clone(),
            deleted: self.deleted.clone(),
            cfg: self.cfg.clone(),
        }
    }

    /// Atomically adopts a finished background rebuild. The overlay is
    /// re-derived so mutations that landed between
    /// [`Self::rebuild_plan`] and this call are preserved:
    ///
    /// with `D₀`/`R₀` the overlay the plan captured and
    /// `Δ`/`R` the overlay now,
    ///
    /// * `Δ' = (Δ \ D₀) ∪ (R₀ \ R)` — new inserts, plus base edges the
    ///   plan folded *out* that were re-inserted mid-rebuild;
    /// * `R' = (R \ R₀) ∪ (D₀ \ Δ)` — new tombstones, plus edges the
    ///   plan folded *in* that were removed mid-rebuild.
    ///
    /// Returns the new overlay as WAL ops — exactly what
    /// [`Durability::rotate`] must seed the next log generation with.
    /// Removes come **before** inserts: recovery replays the rotated
    /// log against the new checkpoint with [`Self::replay`], which
    /// re-validates every op against live state, and an overlay insert
    /// may be valid only because some new-base edge is tombstoned
    /// (remove `a→b`, then insert `b→a`, landing mid-rebuild).
    /// Tombstoning a base edge is always valid first; the inserts then
    /// see exactly the post-remove state their acknowledgment saw.
    /// Inserts are mutually order-insensitive (every intermediate
    /// state is a subgraph of the final, acyclic, graph).
    pub fn publish(&mut self, rebuilt: RebuiltIndex) -> Vec<EdgeOp> {
        let RebuiltIndex {
            dag,
            dl,
            base_delta,
            base_deleted,
        } = rebuilt;
        let delta: Vec<(VertexId, VertexId)> = self
            .delta
            .iter()
            .copied()
            .filter(|e| !base_delta.contains(e))
            .chain(
                base_deleted
                    .iter()
                    .copied()
                    .filter(|e| !self.deleted.contains(e)),
            )
            .collect();
        let deleted: Vec<(VertexId, VertexId)> = self
            .deleted
            .iter()
            .copied()
            .filter(|e| !base_deleted.contains(e))
            .chain(
                base_delta
                    .iter()
                    .copied()
                    .filter(|e| !self.delta.contains(e)),
            )
            .collect();
        self.dag = dag;
        self.dl = dl;
        self.delta = delta;
        self.deleted = deleted;
        self.rebuilds += 1;
        self.deleted
            .iter()
            .map(|&(u, v)| EdgeOp::Remove(u, v))
            .chain(self.delta.iter().map(|&(u, v)| EdgeOp::Insert(u, v)))
            .collect()
    }

    // ------------------------------------------------------------------
    // Queries
    // ------------------------------------------------------------------

    /// Does `u` reach `v` in the current graph
    /// (snapshot − deletions + overlay)?
    pub fn query(&self, u: VertexId, v: VertexId) -> bool {
        let optimistic = self.query_optimistic(u, v);
        // Deletions only shrink reachability, so the stale oracle is a
        // sound over-approximation: a `false` is final, a `true` needs
        // one BFS on the logical graph while deletions are pending.
        if !optimistic {
            return false;
        }
        if self.deleted.is_empty() {
            return true;
        }
        self.confirm_bfs(u, v)
    }

    /// `u → v` over the *optimistic* graph (snapshot + overlay,
    /// deletions ignored).
    fn query_optimistic(&self, u: VertexId, v: VertexId) -> bool {
        if self.dl.query(u, v) {
            return true;
        }
        if self.delta.is_empty() {
            return false;
        }
        // BFS over delta edges: edge i is *entered* when some already
        // reached point statically reaches its tail.
        let mut visited = self.visited.borrow_mut();
        visited.clear();
        visited.resize(self.delta.len(), false);
        let mut frontier: Vec<usize> = Vec::new();
        for (i, &(a, _)) in self.delta.iter().enumerate() {
            if self.dl.query(u, a) {
                visited[i] = true;
                frontier.push(i);
            }
        }
        while let Some(i) = frontier.pop() {
            let (_, b) = self.delta[i];
            if self.dl.query(b, v) {
                return true;
            }
            for (j, &(a2, _)) in self.delta.iter().enumerate() {
                if !visited[j] && self.dl.query(b, a2) {
                    visited[j] = true;
                    frontier.push(j);
                }
            }
        }
        false
    }

    /// One BFS over the logical graph (snapshot edges minus `deleted`,
    /// plus `delta`). Only runs while deletions are pending and the
    /// optimistic answer was positive.
    fn confirm_bfs(&self, u: VertexId, v: VertexId) -> bool {
        if u == v {
            return true;
        }
        let mut visited = self.vertex_visited.borrow_mut();
        visited.clear();
        visited.resize(self.dag.num_vertices(), false);
        let mut stack = vec![u];
        visited[u as usize] = true;
        while let Some(x) = stack.pop() {
            // Snapshot edges, skipping logically deleted ones (the
            // deleted list is bounded by the rebuild threshold, so the
            // scan is a handful of comparisons).
            for &w in self.dag.graph().out_neighbors(x) {
                if !visited[w as usize] && !self.deleted.contains(&(x, w)) {
                    if w == v {
                        return true;
                    }
                    visited[w as usize] = true;
                    stack.push(w);
                }
            }
            for &(a, b) in &self.delta {
                if a == x && !visited[b as usize] {
                    if b == v {
                        return true;
                    }
                    visited[b as usize] = true;
                    stack.push(b);
                }
            }
        }
        false
    }

    /// The current snapshot (overlay not included).
    pub fn snapshot(&self) -> &Dag {
        &self.dag
    }
}

/// Folds an overlay into a base DAG: snapshot edges minus `deleted`,
/// plus `delta`.
fn fold_overlay(
    dag: &Dag,
    delta: &[(VertexId, VertexId)],
    deleted: &[(VertexId, VertexId)],
) -> Dag {
    let n = dag.num_vertices();
    let mut b = GraphBuilder::with_capacity(n, dag.num_edges() + delta.len());
    for (a, c) in dag.graph().edges() {
        if !deleted.contains(&(a, c)) {
            b.add_edge_unchecked(a, c);
        }
    }
    for &(a, c) in delta {
        b.add_edge_unchecked(a, c);
    }
    Dag::new(b.build()).expect("cycle-checked insertions stay acyclic")
}

/// A consistent snapshot of everything a background rebuild needs,
/// detached from the live oracle. See [`DynamicOracle::rebuild_plan`].
pub struct RebuildPlan {
    dag: Dag,
    delta: Vec<(VertexId, VertexId)>,
    deleted: Vec<(VertexId, VertexId)>,
    cfg: DlConfig,
}

impl RebuildPlan {
    /// Overlay operations the plan captured (diagnostics).
    pub fn overlay_len(&self) -> usize {
        self.delta.len() + self.deleted.len()
    }

    /// The heavy part: folds the captured overlay into the base and
    /// builds the new labeling. Runs with no lock held; readers keep
    /// answering through the live oracle's overlay path meanwhile.
    pub fn execute(self) -> RebuiltIndex {
        let dag = fold_overlay(&self.dag, &self.delta, &self.deleted);
        let dl = DistributionLabeling::build(&dag, &self.cfg);
        RebuiltIndex {
            dag,
            dl,
            base_delta: self.delta,
            base_deleted: self.deleted,
        }
    }
}

/// A finished background rebuild, ready for
/// [`DynamicOracle::publish`].
pub struct RebuiltIndex {
    dag: Dag,
    dl: DistributionLabeling,
    /// The Δ the plan folded in — needed by publish's set algebra.
    base_delta: Vec<(VertexId, VertexId)>,
    /// The tombstones the plan folded out.
    base_deleted: Vec<(VertexId, VertexId)>,
}

impl RebuiltIndex {
    /// The new base DAG — what a checkpoint must capture.
    pub fn dag(&self) -> &Dag {
        &self.dag
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hoplite_graph::gen::Rng;
    use hoplite_graph::{gen, traversal};

    /// Reference: rebuild a plain graph with all inserted edges.
    fn ground_truth(n: usize, edges: &[(u32, u32)], u: u32, v: u32) -> bool {
        let g = hoplite_graph::DiGraph::from_edges(n, edges).unwrap();
        traversal::reaches(&g, u, v)
    }

    fn is_cycle(e: &MutationError) -> bool {
        matches!(e, MutationError::Graph(GraphError::Cycle { .. }))
    }

    #[test]
    fn insertions_answered_without_rebuild() {
        // Two chains joined live by a delta edge.
        let dag = Dag::from_edges(6, &[(0, 1), (1, 2), (3, 4), (4, 5)]).unwrap();
        let mut o = DynamicOracle::with_config(dag, DlConfig::default(), 1000);
        assert!(!o.query(0, 5));
        o.insert_edge(2, 3).unwrap();
        assert_eq!(o.pending_edges(), 1);
        assert_eq!(o.rebuilds(), 0);
        assert!(o.query(0, 5), "path through the overlay edge");
        assert!(o.query(2, 4));
        assert!(!o.query(5, 0));
    }

    #[test]
    fn chains_of_delta_edges() {
        // u ->G a ->Δ b ->G c ->Δ d ->G v with multiple hops.
        let dag = Dag::from_edges(8, &[(0, 1), (2, 3), (4, 5), (6, 7)]).unwrap();
        let mut o = DynamicOracle::with_config(dag, DlConfig::default(), 1000);
        o.insert_edge(1, 2).unwrap();
        o.insert_edge(3, 4).unwrap();
        o.insert_edge(5, 6).unwrap();
        assert!(o.query(0, 7), "three delta edges chained");
        assert!(!o.query(7, 0));
    }

    #[test]
    fn cycle_insertions_rejected() {
        let dag = Dag::from_edges(3, &[(0, 1), (1, 2)]).unwrap();
        let mut o = DynamicOracle::new(dag);
        assert!(o.insert_edge(2, 0).is_err_and(|e| is_cycle(&e)));
        assert!(o.insert_edge(1, 1).is_err_and(|e| is_cycle(&e)));
        // Overlay cycles are caught too.
        o.insert_edge(2, 0).err().unwrap();
        let dag = Dag::from_edges(4, &[(0, 1), (2, 3)]).unwrap();
        let mut o = DynamicOracle::with_config(dag, DlConfig::default(), 1000);
        o.insert_edge(1, 2).unwrap();
        assert!(o.insert_edge(3, 0).is_err_and(|e| is_cycle(&e)));
    }

    #[test]
    fn out_of_range_rejected() {
        let dag = Dag::from_edges(2, &[(0, 1)]).unwrap();
        let mut o = DynamicOracle::new(dag);
        assert!(matches!(
            o.insert_edge(0, 5),
            Err(MutationError::Graph(GraphError::VertexOutOfRange { .. }))
        ));
    }

    #[test]
    fn automatic_rebuild_at_threshold() {
        let dag = Dag::from_edges(10, &[]).unwrap();
        let mut o = DynamicOracle::with_config(dag, DlConfig::default(), 3);
        o.insert_edge(0, 1).unwrap();
        o.insert_edge(1, 2).unwrap();
        assert_eq!(o.rebuilds(), 0);
        o.insert_edge(2, 3).unwrap();
        assert_eq!(o.rebuilds(), 1);
        assert_eq!(o.pending_edges(), 0);
        assert!(o.query(0, 3));
        assert_eq!(o.snapshot().num_edges(), 3);
    }

    #[test]
    fn randomized_against_ground_truth() {
        let mut rng = Rng::new(99);
        for seed in 0..4 {
            let base = gen::random_dag(30, 50, seed);
            let n = base.num_vertices();
            let mut all_edges: Vec<(u32, u32)> = base.graph().edges().collect();
            let mut o = DynamicOracle::with_config(base, DlConfig::default(), 7);
            let mut inserted = 0;
            while inserted < 20 {
                let u = rng.gen_index(n) as u32;
                let v = rng.gen_index(n) as u32;
                match o.insert_edge(u, v) {
                    Ok(()) => {
                        all_edges.push((u, v));
                        inserted += 1;
                    }
                    Err(e) if is_cycle(&e) => {
                        // Ground truth must agree that v reaches u (or u == v).
                        assert!(u == v || ground_truth(n, &all_edges, v, u));
                    }
                    Err(e) => panic!("unexpected {e}"),
                }
                // Spot-check a handful of pairs after each operation.
                for _ in 0..10 {
                    let a = rng.gen_index(n) as u32;
                    let b = rng.gen_index(n) as u32;
                    assert_eq!(
                        o.query(a, b),
                        ground_truth(n, &all_edges, a, b),
                        "seed {seed} pair ({a},{b}) after {inserted} inserts"
                    );
                }
            }
        }
    }

    #[test]
    fn removal_is_lazy_and_answers() {
        let dag = Dag::from_edges(4, &[(0, 1), (1, 2), (2, 3)]).unwrap();
        let mut o = DynamicOracle::new(dag);
        assert!(o.query(0, 3));
        assert!(o.remove_edge(1, 2).unwrap());
        assert_eq!(o.rebuilds(), 0, "deletion is applied lazily");
        assert_eq!(o.pending_deletions(), 1);
        assert!(!o.query(0, 3), "cut by the pending deletion");
        assert!(o.query(0, 1));
        assert!(o.query(2, 3));
        assert!(!o.remove_edge(1, 2).unwrap(), "already gone");
        // Removing a pending overlay edge drops it in place.
        let before = o.rebuilds();
        o.insert_edge(1, 2).unwrap();
        assert!(o.query(0, 3), "re-inserted");
        assert!(o.remove_edge(1, 2).unwrap());
        assert_eq!(o.rebuilds(), before);
        assert!(!o.query(0, 3));
    }

    #[test]
    fn reinserting_deleted_edge_clears_the_mark() {
        let dag = Dag::from_edges(3, &[(0, 1), (1, 2)]).unwrap();
        let mut o = DynamicOracle::new(dag);
        assert!(o.remove_edge(0, 1).unwrap());
        assert!(!o.query(0, 2));
        o.insert_edge(0, 1).unwrap();
        assert_eq!(o.pending_deletions(), 0, "mark cleared, no delta entry");
        assert_eq!(o.pending_edges(), 0);
        assert!(o.query(0, 2));
    }

    #[test]
    fn inserting_live_edge_is_a_noop() {
        let dag = Dag::from_edges(3, &[(0, 1), (1, 2)]).unwrap();
        let mut o = DynamicOracle::new(dag);
        o.insert_edge(0, 1).unwrap();
        assert_eq!(o.pending_edges(), 0);
        // Removing it once must actually cut it.
        assert!(o.remove_edge(0, 1).unwrap());
        assert!(!o.query(0, 2));
    }

    #[test]
    fn deletion_threshold_triggers_rebuild() {
        let edges: Vec<(u32, u32)> = (0..6).map(|i| (i, i + 1)).collect();
        let dag = Dag::from_edges(7, &edges).unwrap();
        let mut o = DynamicOracle::with_config(dag, DlConfig::default(), 3);
        assert!(o.remove_edge(0, 1).unwrap());
        assert!(o.remove_edge(2, 3).unwrap());
        assert_eq!(o.rebuilds(), 0);
        assert!(o.remove_edge(4, 5).unwrap());
        assert_eq!(o.rebuilds(), 1, "third deletion folds the overlay");
        assert_eq!(o.pending_deletions(), 0);
        assert_eq!(o.snapshot().num_edges(), 3);
        assert!(!o.query(0, 2));
        assert!(o.query(1, 2));
    }

    #[test]
    fn reverse_edge_insertable_after_deletion() {
        // Deleting a->b makes b->a legal; the optimistic structure then
        // holds both, which must not confuse the exact query.
        let dag = Dag::from_edges(2, &[(0, 1)]).unwrap();
        let mut o = DynamicOracle::new(dag);
        assert!(o.insert_edge(1, 0).is_err_and(|e| is_cycle(&e)));
        assert!(o.remove_edge(0, 1).unwrap());
        o.insert_edge(1, 0).unwrap();
        assert!(o.query(1, 0));
        assert!(!o.query(0, 1), "original direction is gone");
        // Folding keeps the logical graph, not the optimistic one.
        o.rebuild();
        assert!(o.query(1, 0));
        assert!(!o.query(0, 1));
        assert_eq!(o.snapshot().num_edges(), 1);
    }

    #[test]
    fn randomized_insert_delete_against_ground_truth() {
        let mut rng = Rng::new(0xD00D);
        for seed in 0..3 {
            let base = gen::random_dag(24, 40, seed);
            let n = base.num_vertices();
            let mut edges: Vec<(u32, u32)> = base.graph().edges().collect();
            let mut o = DynamicOracle::with_config(base, DlConfig::default(), 5);
            for step in 0..60 {
                let u = rng.gen_index(n) as u32;
                let v = rng.gen_index(n) as u32;
                if rng.gen_bool(0.35) && !edges.is_empty() {
                    // Delete a random existing edge.
                    let i = rng.gen_index(edges.len());
                    let (a, b) = edges.swap_remove(i);
                    assert!(
                        o.remove_edge(a, b).unwrap(),
                        "step {step}: ({a},{b}) exists"
                    );
                } else {
                    match o.insert_edge(u, v) {
                        Ok(()) => {
                            if !edges.contains(&(u, v)) {
                                edges.push((u, v));
                            }
                        }
                        Err(e) if is_cycle(&e) => {
                            assert!(
                                u == v || ground_truth(n, &edges, v, u),
                                "step {step}: cycle rejection must match ground truth"
                            );
                        }
                        Err(e) => panic!("unexpected {e}"),
                    }
                }
                for _ in 0..8 {
                    let a = rng.gen_index(n) as u32;
                    let b = rng.gen_index(n) as u32;
                    assert_eq!(
                        o.query(a, b),
                        ground_truth(n, &edges, a, b),
                        "seed {seed} step {step} pair ({a},{b})"
                    );
                }
            }
        }
    }

    // ------------------------------------------------------------------
    // Durability hook
    // ------------------------------------------------------------------

    /// A test hook that records ops and can be told to refuse.
    struct MemLog {
        ops: std::sync::Arc<std::sync::Mutex<Vec<EdgeOp>>>,
        fail: std::sync::Arc<std::sync::atomic::AtomicBool>,
    }

    impl Durability for MemLog {
        fn log(&mut self, op: EdgeOp) -> io::Result<()> {
            if self.fail.load(std::sync::atomic::Ordering::Relaxed) {
                return Err(io::Error::other("refused"));
            }
            self.ops.lock().unwrap().push(op);
            Ok(())
        }

        fn sync(&mut self) -> io::Result<()> {
            Ok(())
        }

        fn rotate(&mut self, overlay: &[EdgeOp]) -> io::Result<()> {
            let mut ops = self.ops.lock().unwrap();
            ops.clear();
            ops.extend_from_slice(overlay);
            Ok(())
        }
    }

    #[test]
    fn mutations_log_before_apply_and_noops_log_nothing() {
        let ops = std::sync::Arc::new(std::sync::Mutex::new(Vec::new()));
        let fail = std::sync::Arc::new(std::sync::atomic::AtomicBool::new(false));
        let dag = Dag::from_edges(4, &[(0, 1)]).unwrap();
        let mut o = DynamicOracle::with_config(dag, DlConfig::default(), 1000);
        o.set_durability(Box::new(MemLog {
            ops: ops.clone(),
            fail: fail.clone(),
        }));
        o.insert_edge(1, 2).unwrap();
        o.insert_edge(1, 2).unwrap(); // no-op re-insert: not logged
        o.insert_edge(0, 1).unwrap(); // live snapshot edge: not logged
        assert!(!o.remove_edge(2, 3).unwrap()); // missing: not logged
        assert!(o.remove_edge(0, 1).unwrap());
        assert_eq!(
            *ops.lock().unwrap(),
            [EdgeOp::Insert(1, 2), EdgeOp::Remove(0, 1)]
        );
        // A refused log leaves the oracle untouched.
        fail.store(true, std::sync::atomic::Ordering::Relaxed);
        assert!(matches!(
            o.insert_edge(2, 3),
            Err(MutationError::Durability(_))
        ));
        assert!(!o.query(2, 3));
        assert!(matches!(
            o.remove_edge(1, 2),
            Err(MutationError::Durability(_))
        ));
        assert!(o.query(1, 2), "refused removal left the edge live");
        // Validation errors surface as Graph, not Durability, and are
        // not logged either.
        fail.store(false, std::sync::atomic::Ordering::Relaxed);
        assert!(o.insert_edge(2, 1).is_err_and(|e| is_cycle(&e)));
        assert_eq!(ops.lock().unwrap().len(), 2);
    }

    #[test]
    fn replay_does_not_relog_and_matches_direct_application() {
        let ops = std::sync::Arc::new(std::sync::Mutex::new(Vec::new()));
        let fail = std::sync::Arc::new(std::sync::atomic::AtomicBool::new(false));
        let dag = Dag::from_edges(6, &[(0, 1), (1, 2)]).unwrap();
        let mut o = DynamicOracle::with_config(dag.clone(), DlConfig::default(), 3);
        o.set_durability(Box::new(MemLog {
            ops: ops.clone(),
            fail,
        }));
        let log = [
            EdgeOp::Insert(2, 3),
            EdgeOp::Remove(0, 1),
            EdgeOp::Insert(3, 4),
            EdgeOp::Insert(0, 1), // re-insert clears the tombstone
            EdgeOp::Insert(4, 5),
        ];
        o.replay(&log).unwrap();
        assert!(ops.lock().unwrap().is_empty(), "replay must not re-log");
        assert!(o.query(0, 5));
        assert_eq!(o.rebuilds(), 1, "threshold folded once after replay");
        // Replaying the recovered state from scratch (double replay à
        // la a second recovery) lands in the same logical graph.
        let mut o2 = DynamicOracle::with_config(dag, DlConfig::default(), 3);
        o2.replay(&log).unwrap();
        for a in 0..6u32 {
            for b in 0..6u32 {
                assert_eq!(o.query(a, b), o2.query(a, b), "({a},{b})");
            }
        }
    }

    // ------------------------------------------------------------------
    // Background rebuild: plan / execute / publish
    // ------------------------------------------------------------------

    #[test]
    fn background_rebuild_preserves_mid_rebuild_mutations() {
        let dag = Dag::from_edges(8, &[(0, 1), (1, 2), (4, 5), (6, 7)]).unwrap();
        let mut o = DynamicOracle::with_config(dag, DlConfig::default(), 1000);
        o.set_auto_rebuild(false);
        o.insert_edge(2, 3).unwrap(); // D0
        o.remove_edge(4, 5).unwrap(); // R0
        let plan = o.rebuild_plan();

        // Mutations landing "mid-rebuild", touching every re-apply case:
        o.insert_edge(3, 4).unwrap(); // plain new insert
        o.insert_edge(4, 5).unwrap(); // re-insert of an R0 edge
        o.remove_edge(6, 7).unwrap(); // plain new tombstone
        o.remove_edge(2, 3).unwrap(); // removal of a D0 edge

        let rebuilt = plan.execute();
        assert_eq!(rebuilt.dag().num_edges(), 4, "base − R0 + D0");
        let overlay = o.publish(rebuilt);
        assert_eq!(o.rebuilds(), 1);

        // Overlay re-derivation: Δ' = {(3,4), (4,5)}, R' = {(6,7), (2,3)}.
        let overlay: std::collections::BTreeSet<_> = overlay.into_iter().collect();
        let want: std::collections::BTreeSet<_> = [
            EdgeOp::Insert(3, 4),
            EdgeOp::Insert(4, 5),
            EdgeOp::Remove(6, 7),
            EdgeOp::Remove(2, 3),
        ]
        .into_iter()
        .collect();
        assert_eq!(overlay, want);

        // And the logical graph is exactly base + all six mutations.
        let edges = [(0, 1), (1, 2), (3, 4), (4, 5)];
        for a in 0..8u32 {
            for b in 0..8u32 {
                assert_eq!(
                    o.query(a, b),
                    ground_truth(8, &edges, a, b),
                    "({a},{b}) after publish"
                );
            }
        }
        // Folding the published overlay inline agrees too.
        o.rebuild();
        for a in 0..8u32 {
            for b in 0..8u32 {
                assert_eq!(o.query(a, b), ground_truth(8, &edges, a, b));
            }
        }
    }

    #[test]
    fn background_rebuild_randomized_with_concurrent_mutations() {
        let mut rng = Rng::new(0xBEEF);
        for seed in 0..3 {
            let base = gen::random_dag(20, 30, seed);
            let n = base.num_vertices();
            let mut edges: Vec<(u32, u32)> = base.graph().edges().collect();
            let mut o = DynamicOracle::with_config(base, DlConfig::default(), 1_000);
            o.set_auto_rebuild(false);
            let mut mutate = |o: &mut DynamicOracle, edges: &mut Vec<(u32, u32)>| {
                for _ in 0..10 {
                    let u = rng.gen_index(n) as u32;
                    let v = rng.gen_index(n) as u32;
                    if rng.gen_bool(0.4) && !edges.is_empty() {
                        let i = rng.gen_index(edges.len());
                        let (a, b) = edges.swap_remove(i);
                        assert!(o.remove_edge(a, b).unwrap());
                    } else if o.insert_edge(u, v).is_ok() && !edges.contains(&(u, v)) {
                        edges.push((u, v));
                    }
                }
            };
            for round in 0..4 {
                mutate(&mut o, &mut edges);
                let plan = o.rebuild_plan();
                mutate(&mut o, &mut edges); // lands mid-rebuild
                o.publish(plan.execute());
                mutate(&mut o, &mut edges); // lands after publish
                for a in 0..n as u32 {
                    for b in 0..n as u32 {
                        assert_eq!(
                            o.query(a, b),
                            ground_truth(n, &edges, a, b),
                            "seed {seed} round {round} ({a},{b})"
                        );
                    }
                }
            }
        }
    }
}
