//! Incremental reachability on growing DAGs — the paper's first
//! future-work item ("we will investigate the labeling on dynamic
//! graphs", §7).
//!
//! Rebuilding a Distribution-Labeling from scratch on every edge
//! insertion wastes its excellent construction speed. This module uses
//! the standard *delta overlay* design instead:
//!
//! * queries against the labeled snapshot stay O(|labels|);
//! * inserted edges accumulate in an overlay `Δ`;
//! * a query `u → v` holds in `G ∪ Δ` iff some path alternates static
//!   segments with Δ-edges:
//!   `u →G a₁ →Δ b₁ →G a₂ →Δ b₂ … →G v` — checked by a BFS over the
//!   Δ-edges, with each static segment answered by the oracle;
//! * once `Δ` outgrows a threshold, the oracle is rebuilt (DL's
//!   construction is fast enough that amortized cost stays low —
//!   that is precisely the paper's headline property).
//!
//! Edge *deletions* use the dual trick: removing edges can only shrink
//! reachability, so the stale oracle stays a sound *over*-approximation.
//! A query that the (oracle + Δ) machinery answers `false` is final;
//! a `true` with deletions pending is confirmed by one BFS on the
//! current logical graph. Deletions are therefore O(1) to apply, and
//! the confirmation cost is amortized away by the same
//! threshold-triggered rebuild.

use std::cell::RefCell;

use hoplite_graph::digraph::GraphBuilder;
use hoplite_graph::{Dag, GraphError, VertexId};

use crate::distribution::{DistributionLabeling, DlConfig};
use crate::oracle::ReachIndex;

/// A reachability oracle over a DAG that accepts edge insertions.
///
/// ```
/// use hoplite_graph::Dag;
/// use hoplite_core::dynamic::DynamicOracle;
///
/// let dag = Dag::from_edges(4, &[(0, 1), (2, 3)])?;
/// let mut oracle = DynamicOracle::new(dag);
/// assert!(!oracle.query(0, 3));
/// oracle.insert_edge(1, 2)?;          // answered through the overlay
/// assert!(oracle.query(0, 3));
/// assert!(oracle.insert_edge(3, 0).is_err());  // would close a cycle
/// # Ok::<(), hoplite_graph::GraphError>(())
/// ```
pub struct DynamicOracle {
    dag: Dag,
    dl: DistributionLabeling,
    cfg: DlConfig,
    /// Edges inserted since the last rebuild.
    delta: Vec<(VertexId, VertexId)>,
    /// Snapshot edges logically removed since the last rebuild.
    deleted: Vec<(VertexId, VertexId)>,
    /// Rebuild once `delta` or `deleted` reaches this size.
    rebuild_threshold: usize,
    /// Per-query visited marks over delta-edge indices.
    visited: RefCell<Vec<bool>>,
    /// Per-query visited marks over vertices (deletion-confirm BFS).
    vertex_visited: RefCell<Vec<bool>>,
    rebuilds: usize,
}

impl DynamicOracle {
    /// Default overlay size before an automatic rebuild.
    pub const DEFAULT_REBUILD_THRESHOLD: usize = 64;

    /// Builds the initial oracle over `dag`.
    pub fn new(dag: Dag) -> Self {
        Self::with_config(dag, DlConfig::default(), Self::DEFAULT_REBUILD_THRESHOLD)
    }

    /// Builds with a custom DL configuration and rebuild threshold.
    pub fn with_config(dag: Dag, cfg: DlConfig, rebuild_threshold: usize) -> Self {
        assert!(rebuild_threshold >= 1);
        let dl = DistributionLabeling::build(&dag, &cfg);
        DynamicOracle {
            dag,
            dl,
            cfg,
            delta: Vec::new(),
            deleted: Vec::new(),
            rebuild_threshold,
            visited: RefCell::new(Vec::new()),
            vertex_visited: RefCell::new(Vec::new()),
            rebuilds: 0,
        }
    }

    /// Number of vertices.
    pub fn num_vertices(&self) -> usize {
        self.dag.num_vertices()
    }

    /// Edges waiting in the overlay.
    pub fn pending_edges(&self) -> usize {
        self.delta.len()
    }

    /// Snapshot edges logically deleted but not yet folded out.
    pub fn pending_deletions(&self) -> usize {
        self.deleted.len()
    }

    /// How many automatic/explicit rebuilds have happened.
    pub fn rebuilds(&self) -> usize {
        self.rebuilds
    }

    /// Hop-label entries of the labeled snapshot (overlay excluded) —
    /// the paper's index-size metric, surfaced for serving-side stats.
    pub fn label_entries(&self) -> u64 {
        self.dl.labeling().total_entries()
    }

    /// True byte footprint: the labeled snapshot (labels, signatures,
    /// rank order), the DAG, and the mutation overlay. All heap — a
    /// dynamic oracle owns every array it mutates.
    pub fn memory(&self) -> crate::store::MemorySplit {
        let mut m = self.dl.memory();
        m.add(crate::store::MemorySplit {
            heap_bytes: self.dag.graph().memory_bytes() as u64
                + ((self.delta.capacity() + self.deleted.capacity())
                    * std::mem::size_of::<(VertexId, VertexId)>()) as u64,
            mapped_bytes: 0,
        });
        m
    }

    /// Inserts the edge `u → v`.
    ///
    /// Returns [`GraphError::Cycle`] (and leaves the oracle unchanged)
    /// if the edge would close a directed cycle, and
    /// [`GraphError::VertexOutOfRange`] for bad endpoints. Triggers an
    /// automatic rebuild when the overlay reaches the threshold.
    pub fn insert_edge(&mut self, u: VertexId, v: VertexId) -> Result<(), GraphError> {
        let n = self.dag.num_vertices();
        for x in [u, v] {
            if (x as usize) >= n {
                return Err(GraphError::VertexOutOfRange {
                    vertex: x as u64,
                    num_vertices: n,
                });
            }
        }
        if u == v || self.query(v, u) {
            return Err(GraphError::Cycle { vertex: u });
        }
        // Set semantics: re-inserting a live edge is a no-op, and
        // re-inserting a logically deleted snapshot edge just clears
        // the deletion mark.
        if let Some(i) = self.deleted.iter().position(|&e| e == (u, v)) {
            self.deleted.swap_remove(i);
            return Ok(());
        }
        if self.delta.contains(&(u, v)) || self.dag.graph().has_edge(u, v) {
            return Ok(());
        }
        self.delta.push((u, v));
        if self.delta.len() >= self.rebuild_threshold {
            self.rebuild();
        }
        Ok(())
    }

    /// Folds the overlay (insertions *and* deletions) into the snapshot
    /// and relabels. Called automatically at the thresholds; callable
    /// eagerly (e.g. before a query burst).
    pub fn rebuild(&mut self) {
        if self.delta.is_empty() && self.deleted.is_empty() {
            return;
        }
        let n = self.dag.num_vertices();
        let mut b = GraphBuilder::with_capacity(n, self.dag.num_edges() + self.delta.len());
        for (a, c) in self.dag.graph().edges() {
            if !self.deleted.contains(&(a, c)) {
                b.add_edge_unchecked(a, c);
            }
        }
        for &(a, c) in &self.delta {
            b.add_edge_unchecked(a, c);
        }
        self.dag = Dag::new(b.build()).expect("cycle-checked insertions stay acyclic");
        self.dl = DistributionLabeling::build(&self.dag, &self.cfg);
        self.delta.clear();
        self.deleted.clear();
        self.rebuilds += 1;
    }

    /// Does `u` reach `v` in the current graph
    /// (snapshot − deletions + overlay)?
    pub fn query(&self, u: VertexId, v: VertexId) -> bool {
        let optimistic = self.query_optimistic(u, v);
        // Deletions only shrink reachability, so the stale oracle is a
        // sound over-approximation: a `false` is final, a `true` needs
        // one BFS on the logical graph while deletions are pending.
        if !optimistic {
            return false;
        }
        if self.deleted.is_empty() {
            return true;
        }
        self.confirm_bfs(u, v)
    }

    /// `u → v` over the *optimistic* graph (snapshot + overlay,
    /// deletions ignored).
    fn query_optimistic(&self, u: VertexId, v: VertexId) -> bool {
        if self.dl.query(u, v) {
            return true;
        }
        if self.delta.is_empty() {
            return false;
        }
        // BFS over delta edges: edge i is *entered* when some already
        // reached point statically reaches its tail.
        let mut visited = self.visited.borrow_mut();
        visited.clear();
        visited.resize(self.delta.len(), false);
        let mut frontier: Vec<usize> = Vec::new();
        for (i, &(a, _)) in self.delta.iter().enumerate() {
            if self.dl.query(u, a) {
                visited[i] = true;
                frontier.push(i);
            }
        }
        while let Some(i) = frontier.pop() {
            let (_, b) = self.delta[i];
            if self.dl.query(b, v) {
                return true;
            }
            for (j, &(a2, _)) in self.delta.iter().enumerate() {
                if !visited[j] && self.dl.query(b, a2) {
                    visited[j] = true;
                    frontier.push(j);
                }
            }
        }
        false
    }

    /// One BFS over the logical graph (snapshot edges minus `deleted`,
    /// plus `delta`). Only runs while deletions are pending and the
    /// optimistic answer was positive.
    fn confirm_bfs(&self, u: VertexId, v: VertexId) -> bool {
        if u == v {
            return true;
        }
        let mut visited = self.vertex_visited.borrow_mut();
        visited.clear();
        visited.resize(self.dag.num_vertices(), false);
        let mut stack = vec![u];
        visited[u as usize] = true;
        while let Some(x) = stack.pop() {
            // Snapshot edges, skipping logically deleted ones (the
            // deleted list is bounded by the rebuild threshold, so the
            // scan is a handful of comparisons).
            for &w in self.dag.graph().out_neighbors(x) {
                if !visited[w as usize] && !self.deleted.contains(&(x, w)) {
                    if w == v {
                        return true;
                    }
                    visited[w as usize] = true;
                    stack.push(w);
                }
            }
            for &(a, b) in &self.delta {
                if a == x && !visited[b as usize] {
                    if b == v {
                        return true;
                    }
                    visited[b as usize] = true;
                    stack.push(b);
                }
            }
        }
        false
    }

    /// Removes an edge lazily: overlay edges are dropped in place, and
    /// snapshot edges are marked deleted in O(1) — the stale labels
    /// stay sound because deletions only shrink reachability (see
    /// [`Self::query`]). A rebuild folds the marks out once they reach
    /// the threshold. Returns `false` if the edge did not exist
    /// (neither live in the snapshot nor in the overlay).
    pub fn remove_edge(&mut self, u: VertexId, v: VertexId) -> bool {
        if let Some(i) = self.delta.iter().position(|&e| e == (u, v)) {
            self.delta.swap_remove(i);
            return true;
        }
        if !self.dag.graph().has_edge(u, v) || self.deleted.contains(&(u, v)) {
            return false;
        }
        self.deleted.push((u, v));
        if self.deleted.len() >= self.rebuild_threshold {
            self.rebuild();
        }
        true
    }

    /// The current snapshot (overlay not included).
    pub fn snapshot(&self) -> &Dag {
        &self.dag
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hoplite_graph::gen::Rng;
    use hoplite_graph::{gen, traversal};

    /// Reference: rebuild a plain graph with all inserted edges.
    fn ground_truth(n: usize, edges: &[(u32, u32)], u: u32, v: u32) -> bool {
        let g = hoplite_graph::DiGraph::from_edges(n, edges).unwrap();
        traversal::reaches(&g, u, v)
    }

    #[test]
    fn insertions_answered_without_rebuild() {
        // Two chains joined live by a delta edge.
        let dag = Dag::from_edges(6, &[(0, 1), (1, 2), (3, 4), (4, 5)]).unwrap();
        let mut o = DynamicOracle::with_config(dag, DlConfig::default(), 1000);
        assert!(!o.query(0, 5));
        o.insert_edge(2, 3).unwrap();
        assert_eq!(o.pending_edges(), 1);
        assert_eq!(o.rebuilds(), 0);
        assert!(o.query(0, 5), "path through the overlay edge");
        assert!(o.query(2, 4));
        assert!(!o.query(5, 0));
    }

    #[test]
    fn chains_of_delta_edges() {
        // u ->G a ->Δ b ->G c ->Δ d ->G v with multiple hops.
        let dag = Dag::from_edges(8, &[(0, 1), (2, 3), (4, 5), (6, 7)]).unwrap();
        let mut o = DynamicOracle::with_config(dag, DlConfig::default(), 1000);
        o.insert_edge(1, 2).unwrap();
        o.insert_edge(3, 4).unwrap();
        o.insert_edge(5, 6).unwrap();
        assert!(o.query(0, 7), "three delta edges chained");
        assert!(!o.query(7, 0));
    }

    #[test]
    fn cycle_insertions_rejected() {
        let dag = Dag::from_edges(3, &[(0, 1), (1, 2)]).unwrap();
        let mut o = DynamicOracle::new(dag);
        assert!(matches!(o.insert_edge(2, 0), Err(GraphError::Cycle { .. })));
        assert!(matches!(o.insert_edge(1, 1), Err(GraphError::Cycle { .. })));
        // Overlay cycles are caught too.
        o.insert_edge(2, 0).err().unwrap();
        let dag = Dag::from_edges(4, &[(0, 1), (2, 3)]).unwrap();
        let mut o = DynamicOracle::with_config(dag, DlConfig::default(), 1000);
        o.insert_edge(1, 2).unwrap();
        assert!(matches!(o.insert_edge(3, 0), Err(GraphError::Cycle { .. })));
    }

    #[test]
    fn out_of_range_rejected() {
        let dag = Dag::from_edges(2, &[(0, 1)]).unwrap();
        let mut o = DynamicOracle::new(dag);
        assert!(matches!(
            o.insert_edge(0, 5),
            Err(GraphError::VertexOutOfRange { .. })
        ));
    }

    #[test]
    fn automatic_rebuild_at_threshold() {
        let dag = Dag::from_edges(10, &[]).unwrap();
        let mut o = DynamicOracle::with_config(dag, DlConfig::default(), 3);
        o.insert_edge(0, 1).unwrap();
        o.insert_edge(1, 2).unwrap();
        assert_eq!(o.rebuilds(), 0);
        o.insert_edge(2, 3).unwrap();
        assert_eq!(o.rebuilds(), 1);
        assert_eq!(o.pending_edges(), 0);
        assert!(o.query(0, 3));
        assert_eq!(o.snapshot().num_edges(), 3);
    }

    #[test]
    fn randomized_against_ground_truth() {
        let mut rng = Rng::new(99);
        for seed in 0..4 {
            let base = gen::random_dag(30, 50, seed);
            let n = base.num_vertices();
            let mut all_edges: Vec<(u32, u32)> = base.graph().edges().collect();
            let mut o = DynamicOracle::with_config(base, DlConfig::default(), 7);
            let mut inserted = 0;
            while inserted < 20 {
                let u = rng.gen_index(n) as u32;
                let v = rng.gen_index(n) as u32;
                match o.insert_edge(u, v) {
                    Ok(()) => {
                        all_edges.push((u, v));
                        inserted += 1;
                    }
                    Err(GraphError::Cycle { .. }) => {
                        // Ground truth must agree that v reaches u (or u == v).
                        assert!(u == v || ground_truth(n, &all_edges, v, u));
                    }
                    Err(e) => panic!("unexpected {e}"),
                }
                // Spot-check a handful of pairs after each operation.
                for _ in 0..10 {
                    let a = rng.gen_index(n) as u32;
                    let b = rng.gen_index(n) as u32;
                    assert_eq!(
                        o.query(a, b),
                        ground_truth(n, &all_edges, a, b),
                        "seed {seed} pair ({a},{b}) after {inserted} inserts"
                    );
                }
            }
        }
    }

    #[test]
    fn removal_is_lazy_and_answers() {
        let dag = Dag::from_edges(4, &[(0, 1), (1, 2), (2, 3)]).unwrap();
        let mut o = DynamicOracle::new(dag);
        assert!(o.query(0, 3));
        assert!(o.remove_edge(1, 2));
        assert_eq!(o.rebuilds(), 0, "deletion is applied lazily");
        assert_eq!(o.pending_deletions(), 1);
        assert!(!o.query(0, 3), "cut by the pending deletion");
        assert!(o.query(0, 1));
        assert!(o.query(2, 3));
        assert!(!o.remove_edge(1, 2), "already gone");
        // Removing a pending overlay edge drops it in place.
        let before = o.rebuilds();
        o.insert_edge(1, 2).unwrap();
        assert!(o.query(0, 3), "re-inserted");
        assert!(o.remove_edge(1, 2));
        assert_eq!(o.rebuilds(), before);
        assert!(!o.query(0, 3));
    }

    #[test]
    fn reinserting_deleted_edge_clears_the_mark() {
        let dag = Dag::from_edges(3, &[(0, 1), (1, 2)]).unwrap();
        let mut o = DynamicOracle::new(dag);
        assert!(o.remove_edge(0, 1));
        assert!(!o.query(0, 2));
        o.insert_edge(0, 1).unwrap();
        assert_eq!(o.pending_deletions(), 0, "mark cleared, no delta entry");
        assert_eq!(o.pending_edges(), 0);
        assert!(o.query(0, 2));
    }

    #[test]
    fn inserting_live_edge_is_a_noop() {
        let dag = Dag::from_edges(3, &[(0, 1), (1, 2)]).unwrap();
        let mut o = DynamicOracle::new(dag);
        o.insert_edge(0, 1).unwrap();
        assert_eq!(o.pending_edges(), 0);
        // Removing it once must actually cut it.
        assert!(o.remove_edge(0, 1));
        assert!(!o.query(0, 2));
    }

    #[test]
    fn deletion_threshold_triggers_rebuild() {
        let edges: Vec<(u32, u32)> = (0..6).map(|i| (i, i + 1)).collect();
        let dag = Dag::from_edges(7, &edges).unwrap();
        let mut o = DynamicOracle::with_config(dag, DlConfig::default(), 3);
        assert!(o.remove_edge(0, 1));
        assert!(o.remove_edge(2, 3));
        assert_eq!(o.rebuilds(), 0);
        assert!(o.remove_edge(4, 5));
        assert_eq!(o.rebuilds(), 1, "third deletion folds the overlay");
        assert_eq!(o.pending_deletions(), 0);
        assert_eq!(o.snapshot().num_edges(), 3);
        assert!(!o.query(0, 2));
        assert!(o.query(1, 2));
    }

    #[test]
    fn reverse_edge_insertable_after_deletion() {
        // Deleting a->b makes b->a legal; the optimistic structure then
        // holds both, which must not confuse the exact query.
        let dag = Dag::from_edges(2, &[(0, 1)]).unwrap();
        let mut o = DynamicOracle::new(dag);
        assert!(matches!(o.insert_edge(1, 0), Err(GraphError::Cycle { .. })));
        assert!(o.remove_edge(0, 1));
        o.insert_edge(1, 0).unwrap();
        assert!(o.query(1, 0));
        assert!(!o.query(0, 1), "original direction is gone");
        // Folding keeps the logical graph, not the optimistic one.
        o.rebuild();
        assert!(o.query(1, 0));
        assert!(!o.query(0, 1));
        assert_eq!(o.snapshot().num_edges(), 1);
    }

    #[test]
    fn randomized_insert_delete_against_ground_truth() {
        let mut rng = Rng::new(0xD00D);
        for seed in 0..3 {
            let base = gen::random_dag(24, 40, seed);
            let n = base.num_vertices();
            let mut edges: Vec<(u32, u32)> = base.graph().edges().collect();
            let mut o = DynamicOracle::with_config(base, DlConfig::default(), 5);
            for step in 0..60 {
                let u = rng.gen_index(n) as u32;
                let v = rng.gen_index(n) as u32;
                if rng.gen_bool(0.35) && !edges.is_empty() {
                    // Delete a random existing edge.
                    let i = rng.gen_index(edges.len());
                    let (a, b) = edges.swap_remove(i);
                    assert!(o.remove_edge(a, b), "step {step}: ({a},{b}) exists");
                } else {
                    match o.insert_edge(u, v) {
                        Ok(()) => {
                            if !edges.contains(&(u, v)) {
                                edges.push((u, v));
                            }
                        }
                        Err(GraphError::Cycle { .. }) => {
                            assert!(
                                u == v || ground_truth(n, &edges, v, u),
                                "step {step}: cycle rejection must match ground truth"
                            );
                        }
                        Err(e) => panic!("unexpected {e}"),
                    }
                }
                for _ in 0..8 {
                    let a = rng.gen_index(n) as u32;
                    let b = rng.gen_index(n) as u32;
                    assert_eq!(
                        o.query(a, b),
                        ground_truth(n, &edges, a, b),
                        "seed {seed} step {step} pair ({a},{b})"
                    );
                }
            }
        }
    }
}
