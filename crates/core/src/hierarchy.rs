//! Hierarchical DAG decomposition (Definition 2).
//!
//! Recursively extracts reachability backbones:
//! `G_0 = G ⊃ G_1 ⊃ G_2 ⊃ … ⊃ G_h`, where each `G_{i+1}` is the
//! one-side reachability backbone of `G_i`. The final `G_h` is the
//! *core graph*. Each vertex is assigned the highest level containing
//! it; Hierarchical-Labeling then labels level by level, top down.
//!
//! Decomposition stops when any of the paper's practical rules fires
//! (§4.1): the level graph is at most `core_size_limit` vertices, the
//! level cap `max_levels` is reached, or the backbone stops shrinking.

use hoplite_graph::{Dag, VertexId, INVALID_VERTEX};

use crate::backbone::Backbone;

/// One level `G_i` of the decomposition.
#[derive(Clone, Debug)]
pub struct Level {
    /// The level graph over compact ids `0..|V_i|`.
    pub dag: Dag,
    /// `to_orig[c]` = the original (`G_0`) vertex of compact vertex `c`.
    pub to_orig: Vec<VertexId>,
}

/// Stop rules for [`Hierarchy::build`].
#[derive(Clone, Debug)]
pub struct HierarchyConfig {
    /// Locality threshold ε (paper default: 2).
    pub eps: u32,
    /// Stop when a level has at most this many vertices (paper: "stop
    /// the decomposition when `V_h` is small enough, typically < 10K").
    pub core_size_limit: usize,
    /// Hard cap on the number of levels (paper suggests ~10).
    pub max_levels: usize,
}

impl Default for HierarchyConfig {
    fn default() -> Self {
        HierarchyConfig {
            eps: 2,
            core_size_limit: 1_000,
            max_levels: 10,
        }
    }
}

/// A complete hierarchical decomposition of a DAG.
#[derive(Clone, Debug)]
pub struct Hierarchy {
    /// `levels[i]` is `G_i`; `levels[0]` is the input graph.
    pub levels: Vec<Level>,
    /// `level_of[v]` = highest level whose vertex set contains original
    /// vertex `v` (`level(v)` in the paper's notation).
    pub level_of: Vec<u32>,
    /// `orig_to_level[i][v]` = compact id of original vertex `v` in
    /// `G_i`, or [`INVALID_VERTEX`] if `v ∉ V_i`.
    orig_to_level: Vec<Vec<VertexId>>,
}

impl Hierarchy {
    /// Builds the decomposition of `dag`.
    pub fn build(dag: &Dag, cfg: &HierarchyConfig) -> Hierarchy {
        assert!(cfg.eps >= 1, "locality threshold must be at least 1");
        assert!(cfg.max_levels >= 1);
        let n = dag.num_vertices();
        let mut levels = vec![Level {
            dag: dag.clone(),
            to_orig: (0..n as VertexId).collect(),
        }];
        let mut orig_to_level = vec![(0..n as VertexId).collect::<Vec<_>>()];

        while levels.len() < cfg.max_levels {
            let cur = levels.last().expect("at least level 0");
            if cur.dag.num_vertices() <= cfg.core_size_limit {
                break;
            }
            let bb = Backbone::extract(&cur.dag, cfg.eps);
            let shrunk = bb.num_vertices() < cur.dag.num_vertices();
            if bb.num_vertices() == 0 || !shrunk {
                break;
            }
            // Compose mappings: backbone ids -> current-level ids -> orig.
            let to_orig: Vec<VertexId> = bb
                .to_parent
                .iter()
                .map(|&p| cur.to_orig[p as usize])
                .collect();
            let mut o2l = vec![INVALID_VERTEX; n];
            for (c, &orig) in to_orig.iter().enumerate() {
                o2l[orig as usize] = c as VertexId;
            }
            orig_to_level.push(o2l);
            levels.push(Level {
                dag: bb.dag,
                to_orig,
            });
        }

        let mut level_of = vec![0u32; n];
        for (i, lvl) in levels.iter().enumerate() {
            for &orig in &lvl.to_orig {
                level_of[orig as usize] = i as u32;
            }
        }
        Hierarchy {
            levels,
            level_of,
            orig_to_level,
        }
    }

    /// Number of levels `h + 1` (level 0 through the core).
    pub fn num_levels(&self) -> usize {
        self.levels.len()
    }

    /// The core graph `G_h`.
    pub fn core(&self) -> &Level {
        self.levels.last().expect("at least level 0")
    }

    /// Compact id of original vertex `v` in level `i`, if present.
    pub fn compact_id(&self, i: usize, v: VertexId) -> Option<VertexId> {
        let c = self.orig_to_level[i][v as usize];
        (c != INVALID_VERTEX).then_some(c)
    }

    /// Vertex counts per level, `|V_0| ≥ |V_1| ≥ …` (useful for the
    /// decomposition statistics the paper reports).
    pub fn level_sizes(&self) -> Vec<usize> {
        self.levels.iter().map(|l| l.dag.num_vertices()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hoplite_graph::{gen, traversal};

    #[test]
    fn levels_strictly_shrink() {
        let dag = gen::random_dag(500, 1500, 1);
        let h = Hierarchy::build(
            &dag,
            &HierarchyConfig {
                eps: 2,
                core_size_limit: 10,
                max_levels: 10,
            },
        );
        let sizes = h.level_sizes();
        assert!(sizes.len() >= 2, "expected at least one backbone level");
        for w in sizes.windows(2) {
            assert!(w[1] < w[0], "levels must strictly shrink: {sizes:?}");
        }
    }

    #[test]
    fn level_of_matches_membership() {
        let dag = gen::random_dag(200, 600, 2);
        let h = Hierarchy::build(&dag, &HierarchyConfig::default_small());
        for v in 0..200 as VertexId {
            let lv = h.level_of[v as usize] as usize;
            assert!(h.compact_id(lv, v).is_some());
            if lv + 1 < h.num_levels() {
                assert!(h.compact_id(lv + 1, v).is_none());
            }
            // Present in every level up to its own.
            for i in 0..=lv {
                assert!(h.compact_id(i, v).is_some());
            }
        }
    }

    #[test]
    fn reachability_preserved_per_level() {
        // Lemma 1: for u, v in V_i, reachability in G_i equals G_0.
        let dag = gen::random_dag(120, 360, 3);
        let h = Hierarchy::build(&dag, &HierarchyConfig::default_small());
        for i in 1..h.num_levels() {
            let lvl = &h.levels[i];
            let m = lvl.dag.num_vertices() as VertexId;
            for a in 0..m {
                for b in 0..m {
                    assert_eq!(
                        traversal::reaches(lvl.dag.graph(), a, b),
                        traversal::reaches(
                            dag.graph(),
                            lvl.to_orig[a as usize],
                            lvl.to_orig[b as usize]
                        ),
                        "level {i} mismatch"
                    );
                }
            }
        }
    }

    #[test]
    fn small_graph_is_its_own_core() {
        let dag = Dag::from_edges(4, &[(0, 1), (1, 2)]).unwrap();
        let h = Hierarchy::build(&dag, &HierarchyConfig::default());
        assert_eq!(h.num_levels(), 1, "under core_size_limit: no extraction");
        assert_eq!(h.core().dag.num_vertices(), 4);
    }

    #[test]
    fn max_levels_respected() {
        let dag = gen::random_dag(2000, 6000, 4);
        let h = Hierarchy::build(
            &dag,
            &HierarchyConfig {
                eps: 2,
                core_size_limit: 1,
                max_levels: 3,
            },
        );
        assert!(h.num_levels() <= 3);
    }

    impl HierarchyConfig {
        /// Test helper: small core so several levels appear.
        fn default_small() -> Self {
            HierarchyConfig {
                eps: 2,
                core_size_limit: 8,
                max_levels: 10,
            }
        }
    }
}
