//! # hoplite-core
//!
//! The primary contribution of *“Simple, Fast, and Scalable
//! Reachability Oracle”* (Jin & Wang, VLDB 2013): two construction
//! algorithms for 2-hop reachability oracles that avoid both transitive
//! closure materialization and the greedy set-cover framework.
//!
//! A **reachability oracle** assigns each vertex `v` two sorted hop
//! lists, `L_out(v)` and `L_in(v)`, such that
//!
//! > `u` reaches `v` **iff** `L_out(u) ∩ L_in(v) ≠ ∅`.
//!
//! * [`DistributionLabeling`] (§5 of the paper) — vertices are ranked by
//!   `(|N_out|+1)·(|N_in|+1)` and *distributed* in rank order into other
//!   vertices' labels via pruned forward/backward BFS. Produces
//!   **non-redundant** labels (Theorem 4) and is the recommended
//!   default.
//! * [`HierarchicalLabeling`] (§4) — recursive *one-side reachability
//!   backbone* decomposition (SCARAB); labels flow from the core graph
//!   down to level 0.
//!
//! Both implement [`ReachIndex`], the query interface shared with every
//! baseline in `hoplite-baselines`.
//!
//! ## Quickstart
//!
//! ```
//! use hoplite_graph::Dag;
//! use hoplite_core::{DistributionLabeling, DlConfig, ReachIndex};
//!
//! let dag = Dag::from_edges(5, &[(0, 1), (0, 2), (1, 3), (2, 3), (3, 4)]).unwrap();
//! let oracle = DistributionLabeling::build(&dag, &DlConfig::default());
//! assert!(oracle.query(0, 4));
//! assert!(!oracle.query(4, 0));
//! ```

pub mod backbone;
pub mod distribution;
pub mod dynamic;
pub mod filter;
pub mod hierarchical;
pub mod hierarchy;
pub mod label;
pub mod metrics;
pub mod oracle;
pub mod order;
pub mod parallel;
pub mod persist;
pub mod stats;
pub mod store;
pub mod wal;

pub use backbone::Backbone;
pub use distribution::{DistributionLabeling, DlConfig, Parallelism, Pruning};
pub use dynamic::{DynamicOracle, MutationError, RebuildPlan, RebuiltIndex};
pub use filter::{FilterVerdict, QueryFilters};
pub use hierarchical::{CoreLabeler, HierarchicalLabeling, HlConfig};
pub use hierarchy::Hierarchy;
pub use label::{
    sorted_intersect, sorted_intersect_adaptive, LabelPath, Labeling, LabelingBuilder,
};
pub use metrics::{BuildTrace, Counter, Histogram, HistogramSnapshot, TraceSpan};
pub use oracle::{Oracle, ReachIndex};
pub use order::OrderKind;
pub use parallel::{
    par_count_reachable, par_query_batch, par_query_batch_mapped, par_query_batch_mapped_tallied,
    QueryTally, ThroughputReport,
};
pub use persist::{OpenOptions, PersistError};
pub use stats::LabelStats;
pub use store::{ArenaBuf, MemorySplit, Store, StoreBackend};
pub use wal::{
    Durability, EdgeOp, FailpointWriter, Recovered, Wal, WalConfig, WalDir, WalDurability,
};
