//! The query interface shared by every reachability index in the
//! workspace, and the batteries-included [`Oracle`] over arbitrary
//! (cyclic) digraphs.

use hoplite_graph::scc::Condensation;
use hoplite_graph::{Dag, DiGraph, VertexId};

use crate::distribution::{DistributionLabeling, DlConfig};
use crate::filter::QueryFilters;

/// A built reachability index over a fixed DAG.
///
/// Implementations exist for the paper's two oracles
/// ([`crate::DistributionLabeling`], [`crate::HierarchicalLabeling`])
/// and for every baseline in `hoplite-baselines`. The trait is
/// deliberately tiny: the benchmark harness drives heterogeneous
/// indexes through `Box<dyn ReachIndex>`.
///
/// Queries use *reflexive* reachability semantics (`query(v, v)` is
/// always `true`), matching the paper's query workloads.
///
/// Implementations may keep interior-mutable scratch space (e.g. the
/// visited set of a pruned DFS), so they are required to be `Send` but
/// not `Sync`; parallel callers give each worker its own index.
pub trait ReachIndex: Send {
    /// Short display name matching the paper's table headers
    /// (e.g. `"DL"`, `"GRAIL"`).
    fn name(&self) -> &'static str;

    /// Does `u` reach `v`?
    fn query(&self, u: VertexId, v: VertexId) -> bool;

    /// Index size in the unit the paper's Figures 3–4 report: the
    /// number of 32-bit integers the index stores.
    fn size_in_integers(&self) -> u64;

    /// Approximate heap footprint in bytes. Defaults to
    /// `4 · size_in_integers()`.
    fn memory_bytes(&self) -> u64 {
        self.size_in_integers() * 4
    }
}

/// The batteries-included reachability oracle.
///
/// Wraps the full pipeline a downstream user wants: SCC condensation
/// of an arbitrary digraph, Distribution-Labeling of the condensation
/// (the paper's recommended algorithm), and queries in terms of the
/// *original* vertex ids.
///
/// ```
/// use hoplite_graph::DiGraph;
/// use hoplite_core::Oracle;
///
/// // Any directed graph — cycles welcome (they are condensed away).
/// let g = DiGraph::from_edges(6, &[
///     (0, 1), (1, 2), (2, 0),  // a strongly connected component
///     (2, 3), (3, 4), (5, 3),
/// ]).unwrap();
///
/// let oracle = Oracle::new(&g);
/// assert!(oracle.reaches(0, 4));   // through the SCC and onwards
/// assert!(oracle.reaches(1, 0));   // inside the SCC
/// assert!(!oracle.reaches(4, 5));
/// ```
///
/// A built oracle can be shipped to query-serving replicas with
/// [`Oracle::save`]/[`Oracle::load`] (see [`crate::persist`]) and
/// served over the network by `hoplite-server`.
#[derive(Clone, Debug)]
pub struct Oracle {
    cond: Condensation,
    dl: DistributionLabeling,
    /// O(1) pre-filters over the condensation DAG; derived state, never
    /// persisted (see [`crate::persist`]).
    filters: QueryFilters,
}

impl Oracle {
    /// Builds an oracle over any directed graph (cyclic or not) using
    /// Distribution-Labeling with the paper's default configuration.
    pub fn new(g: &DiGraph) -> Self {
        Self::with_config(g, &DlConfig::default())
    }

    /// Builds with a custom Distribution-Labeling configuration.
    pub fn with_config(g: &DiGraph, cfg: &DlConfig) -> Self {
        let cond = Dag::condense(g);
        let dl = DistributionLabeling::build(&cond.dag, cfg);
        Self::from_parts(cond, dl)
    }

    /// Reassembles an oracle from a deserialized condensation and
    /// labeling. The caller ([`crate::persist`]) has validated that the
    /// labeling covers exactly the condensation's components; the
    /// query pre-filters are derived from the condensation DAG here
    /// (and projected into original-vertex space, so the filter fast
    /// path skips the `comp_of` indirection), so they never need to be
    /// (and are not) persisted.
    pub(crate) fn from_parts(cond: Condensation, dl: DistributionLabeling) -> Self {
        debug_assert_eq!(cond.num_components(), dl.labeling().num_vertices());
        let filters = QueryFilters::build(&cond.dag).project(&cond.comp_of);
        Oracle { cond, dl, filters }
    }

    /// Does `u` reach `v` in the original graph? Reflexive.
    ///
    /// Runs the O(1) pre-filter stack ([`QueryFilters`], projected
    /// into original-vertex space — one cache-line load per side, no
    /// component mapping) first; most queries never reach the label
    /// intersection, and only the ones that do pay the `comp_of`
    /// lookup.
    pub fn reaches(&self, u: VertexId, v: VertexId) -> bool {
        match self.filters.check(u, v) {
            Some(answer) => answer,
            None => {
                let (cu, cv) = (self.cond.comp_of[u as usize], self.cond.comp_of[v as usize]);
                self.dl.query(cu, cv)
            }
        }
    }

    /// [`Self::reaches`] with the pre-filter stage disabled — always
    /// answers straight from the label intersection. Exists for the
    /// perf harness and equivalence tests; the answers are identical.
    pub fn reaches_unfiltered(&self, u: VertexId, v: VertexId) -> bool {
        let (cu, cv) = (self.cond.comp_of[u as usize], self.cond.comp_of[v as usize]);
        cu == cv || self.dl.query(cu, cv)
    }

    /// Answers a batch of `(u, v)` pairs (original vertex ids) using
    /// `threads` worker threads, preserving order. The labels and
    /// filters are immutable, so this needs no synchronization; each
    /// worker maps through the component table and the pre-filter
    /// stack itself (no intermediate mapped-pair allocation); see
    /// [`crate::parallel`].
    pub fn reaches_batch(&self, pairs: &[(VertexId, VertexId)], threads: usize) -> Vec<bool> {
        crate::parallel::par_query_batch_mapped(
            self.dl.labeling(),
            Some(&self.filters),
            &self.cond.comp_of,
            pairs,
            threads,
        )
    }

    /// [`Self::reaches`] that also bumps the stage counter the query
    /// died at in `tally` — the single-query twin of
    /// [`Self::reaches_batch_tallied`], used by the `hoplite-server`
    /// `REACH` handler to feed the `STATS` counters.
    pub fn reaches_tallied(
        &self,
        u: VertexId,
        v: VertexId,
        tally: &mut crate::parallel::QueryTally,
    ) -> bool {
        crate::parallel::answer_tallied(
            self.dl.labeling(),
            Some(&self.filters),
            &self.cond.comp_of,
            u,
            v,
            tally,
        )
    }

    /// [`Self::reaches_batch`] that also reports where the batch's
    /// queries died (filter / signature / merge). Identical answers.
    pub fn reaches_batch_tallied(
        &self,
        pairs: &[(VertexId, VertexId)],
        threads: usize,
    ) -> (Vec<bool>, crate::parallel::QueryTally) {
        crate::parallel::par_query_batch_mapped_tallied(
            self.dl.labeling(),
            Some(&self.filters),
            &self.cond.comp_of,
            pairs,
            threads,
        )
    }

    /// [`Self::reaches_batch`] with the pre-filter stage disabled (perf
    /// harness / equivalence-test hook; identical answers).
    pub fn reaches_batch_unfiltered(
        &self,
        pairs: &[(VertexId, VertexId)],
        threads: usize,
    ) -> Vec<bool> {
        crate::parallel::par_query_batch_mapped(
            self.dl.labeling(),
            None,
            &self.cond.comp_of,
            pairs,
            threads,
        )
    }

    /// Number of vertices of the original graph.
    pub fn num_vertices(&self) -> usize {
        self.cond.comp_of.len()
    }

    /// Number of strongly connected components of the input.
    pub fn num_components(&self) -> usize {
        self.cond.num_components()
    }

    /// Total hop-label entries of the underlying oracle (the paper's
    /// index-size metric).
    pub fn label_entries(&self) -> u64 {
        self.dl.labeling().total_entries()
    }

    /// The condensation, for callers that need component structure.
    pub fn condensation(&self) -> &Condensation {
        &self.cond
    }

    /// The O(1) query pre-filter stack, projected into
    /// *original-vertex* space ([`QueryFilters::project`]) — index it
    /// with original graph ids, not component ids.
    pub fn filters(&self) -> &QueryFilters {
        &self.filters
    }

    /// The underlying Distribution-Labeling oracle over the
    /// condensation DAG.
    pub fn inner(&self) -> &DistributionLabeling {
        &self.dl
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Trivial;
    impl ReachIndex for Trivial {
        fn name(&self) -> &'static str {
            "trivial"
        }
        fn query(&self, u: VertexId, v: VertexId) -> bool {
            u == v
        }
        fn size_in_integers(&self) -> u64 {
            3
        }
    }

    #[test]
    fn default_memory_is_four_bytes_per_integer() {
        let t = Trivial;
        assert_eq!(t.memory_bytes(), 12);
        assert!(t.query(1, 1));
        assert!(!t.query(1, 2));
    }

    #[test]
    fn trait_is_object_safe() {
        let b: Box<dyn ReachIndex> = Box::new(Trivial);
        assert_eq!(b.name(), "trivial");
    }
}
