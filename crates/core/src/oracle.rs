//! The query interface shared by every reachability index in the
//! workspace, and the batteries-included [`Oracle`] over arbitrary
//! (cyclic) digraphs.

use std::sync::OnceLock;

use hoplite_graph::scc::Condensation;
use hoplite_graph::{Dag, DiGraph, VertexId};

use crate::distribution::{DistributionLabeling, DlConfig};
use crate::filter::QueryFilters;
use crate::store::{MemorySplit, Store, StoreBackend};

/// A built reachability index over a fixed DAG.
///
/// Implementations exist for the paper's two oracles
/// ([`crate::DistributionLabeling`], [`crate::HierarchicalLabeling`])
/// and for every baseline in `hoplite-baselines`. The trait is
/// deliberately tiny: the benchmark harness drives heterogeneous
/// indexes through `Box<dyn ReachIndex>`.
///
/// Queries use *reflexive* reachability semantics (`query(v, v)` is
/// always `true`), matching the paper's query workloads.
///
/// Implementations may keep interior-mutable scratch space (e.g. the
/// visited set of a pruned DFS), so they are required to be `Send` but
/// not `Sync`; parallel callers give each worker its own index.
pub trait ReachIndex: Send {
    /// Short display name matching the paper's table headers
    /// (e.g. `"DL"`, `"GRAIL"`).
    fn name(&self) -> &'static str;

    /// Does `u` reach `v`?
    fn query(&self, u: VertexId, v: VertexId) -> bool;

    /// Index size in the unit the paper's Figures 3–4 report: the
    /// number of 32-bit integers the index stores.
    fn size_in_integers(&self) -> u64;

    /// Approximate heap footprint in bytes. Defaults to
    /// `4 · size_in_integers()`.
    fn memory_bytes(&self) -> u64 {
        self.size_in_integers() * 4
    }
}

/// The batteries-included reachability oracle.
///
/// Wraps the full pipeline a downstream user wants: SCC condensation
/// of an arbitrary digraph, Distribution-Labeling of the condensation
/// (the paper's recommended algorithm), and queries in terms of the
/// *original* vertex ids.
///
/// ```
/// use hoplite_graph::DiGraph;
/// use hoplite_core::Oracle;
///
/// // Any directed graph — cycles welcome (they are condensed away).
/// let g = DiGraph::from_edges(6, &[
///     (0, 1), (1, 2), (2, 0),  // a strongly connected component
///     (2, 3), (3, 4), (5, 3),
/// ]).unwrap();
///
/// let oracle = Oracle::new(&g);
/// assert!(oracle.reaches(0, 4));   // through the SCC and onwards
/// assert!(oracle.reaches(1, 0));   // inside the SCC
/// assert!(!oracle.reaches(4, 5));
/// ```
///
/// A built oracle can be shipped to query-serving replicas with
/// [`Oracle::save`]/[`Oracle::load`] (see [`crate::persist`]), opened
/// zero-copy from a HOPL v3 arena with [`Oracle::open`], and served
/// over the network by `hoplite-server`.
#[derive(Clone, Debug)]
pub struct Oracle {
    /// `comp_of[v]` = condensation component of original vertex `v`.
    /// A [`Store`] so a mapped open addresses the table in place.
    comp_of: Store<u32>,
    /// Original vertices per component.
    comp_sizes: Store<u32>,
    /// The condensation DAG (component ids are topological:
    /// `tail < head` on every edge). Queries never touch it — it
    /// serves `save`/introspection — so a mapped open leaves it
    /// unmaterialized and [`Oracle::dag`] builds it on first use from
    /// `dag_csr`.
    dag: OnceLock<Dag>,
    /// The persisted condensation CSR sections backing a lazy
    /// [`Oracle::dag`]; `None` when `dag` was built eagerly.
    dag_csr: Option<DagCsr>,
    dl: DistributionLabeling,
    /// O(1) pre-filters, projected into original-vertex space. Built
    /// from the DAG on construction and on HOPL v1 loads; addressed
    /// in place (no recomputation) on HOPL v3 opens.
    filters: QueryFilters,
}

/// The condensation DAG's four CSR sections as (usually mapped)
/// stores — the raw material [`Oracle::dag`] materializes lazily.
#[derive(Clone, Debug)]
pub(crate) struct DagCsr {
    pub(crate) out_offsets: Store<u32>,
    pub(crate) out_targets: Store<u32>,
    pub(crate) in_offsets: Store<u32>,
    pub(crate) in_targets: Store<u32>,
}

impl Oracle {
    /// Builds an oracle over any directed graph (cyclic or not) using
    /// Distribution-Labeling with the paper's default configuration.
    pub fn new(g: &DiGraph) -> Self {
        Self::with_config(g, &DlConfig::default())
    }

    /// Builds with a custom Distribution-Labeling configuration.
    pub fn with_config(g: &DiGraph, cfg: &DlConfig) -> Self {
        let cond = Dag::condense(g);
        let dl = DistributionLabeling::build(&cond.dag, cfg);
        Self::from_parts(cond, dl)
    }

    /// [`Self::with_config`] with construction-phase span tracing: the
    /// SCC condensation, the labeling's order/distribute/freeze phases
    /// (see [`DistributionLabeling::build_traced`]), and the final
    /// filter assembly each record a span into `trace`.
    pub fn with_config_traced(
        g: &DiGraph,
        cfg: &DlConfig,
        trace: &crate::metrics::BuildTrace,
    ) -> Self {
        let cond = trace.span("scc_condense", || Dag::condense(g));
        let dl = DistributionLabeling::build_traced(&cond.dag, cfg, Some(trace));
        trace.span("filters", || Self::from_parts(cond, dl))
    }

    /// Reassembles an oracle from a deserialized condensation and
    /// labeling. The caller ([`crate::persist`]) has validated that the
    /// labeling covers exactly the condensation's components; the
    /// query pre-filters are derived from the condensation DAG here
    /// (and projected into original-vertex space, so the filter fast
    /// path skips the `comp_of` indirection), so they never need to be
    /// (and are not) persisted.
    pub(crate) fn from_parts(cond: Condensation, dl: DistributionLabeling) -> Self {
        debug_assert_eq!(cond.num_components(), dl.labeling().num_vertices());
        let filters = QueryFilters::build(&cond.dag).project(&cond.comp_of);
        Oracle {
            comp_of: cond.comp_of.into(),
            comp_sizes: cond.comp_sizes.into(),
            dag: OnceLock::from(cond.dag),
            dag_csr: None,
            dl,
            filters,
        }
    }

    /// Reassembles an oracle from fully persisted state — the HOPL v3
    /// arena path: the filter records arrive ready-made (and possibly
    /// mapped), so nothing is derived here — not even the DAG, which
    /// materializes from its CSR sections on first [`Oracle::dag`]
    /// use. The caller has validated the cross-array invariants.
    pub(crate) fn from_open_parts(
        comp_of: Store<u32>,
        comp_sizes: Store<u32>,
        dag_csr: DagCsr,
        dl: DistributionLabeling,
        filters: QueryFilters,
    ) -> Self {
        debug_assert_eq!(comp_sizes.len(), dl.labeling().num_vertices());
        debug_assert_eq!(comp_of.len(), filters.num_vertices());
        Oracle {
            comp_of,
            comp_sizes,
            dag: OnceLock::new(),
            dag_csr: Some(dag_csr),
            dl,
            filters,
        }
    }

    /// Does `u` reach `v` in the original graph? Reflexive.
    ///
    /// Runs the O(1) pre-filter stack ([`QueryFilters`], projected
    /// into original-vertex space — one cache-line load per side, no
    /// component mapping) first; most queries never reach the label
    /// intersection, and only the ones that do pay the `comp_of`
    /// lookup.
    pub fn reaches(&self, u: VertexId, v: VertexId) -> bool {
        match self.filters.check(u, v) {
            Some(answer) => answer,
            None => {
                let (cu, cv) = (self.comp_of[u as usize], self.comp_of[v as usize]);
                self.dl.query(cu, cv)
            }
        }
    }

    /// [`Self::reaches`] with the pre-filter stage disabled — always
    /// answers straight from the label intersection. Exists for the
    /// perf harness and equivalence tests; the answers are identical.
    pub fn reaches_unfiltered(&self, u: VertexId, v: VertexId) -> bool {
        let (cu, cv) = (self.comp_of[u as usize], self.comp_of[v as usize]);
        cu == cv || self.dl.query(cu, cv)
    }

    /// Answers a batch of `(u, v)` pairs (original vertex ids) using
    /// `threads` worker threads, preserving order. The labels and
    /// filters are immutable, so this needs no synchronization; each
    /// worker maps through the component table and the pre-filter
    /// stack itself (no intermediate mapped-pair allocation); see
    /// [`crate::parallel`].
    pub fn reaches_batch(&self, pairs: &[(VertexId, VertexId)], threads: usize) -> Vec<bool> {
        crate::parallel::par_query_batch_mapped(
            self.dl.labeling(),
            Some(&self.filters),
            &self.comp_of,
            pairs,
            threads,
        )
    }

    /// [`Self::reaches`] that also bumps the stage counter the query
    /// died at in `tally` — the single-query twin of
    /// [`Self::reaches_batch_tallied`], used by the `hoplite-server`
    /// `REACH` handler to feed the `STATS` counters.
    pub fn reaches_tallied(
        &self,
        u: VertexId,
        v: VertexId,
        tally: &mut crate::parallel::QueryTally,
    ) -> bool {
        crate::parallel::answer_tallied(
            self.dl.labeling(),
            Some(&self.filters),
            &self.comp_of,
            u,
            v,
            tally,
        )
    }

    /// [`Self::reaches_batch`] that also reports where the batch's
    /// queries died (filter / signature / merge). Identical answers.
    pub fn reaches_batch_tallied(
        &self,
        pairs: &[(VertexId, VertexId)],
        threads: usize,
    ) -> (Vec<bool>, crate::parallel::QueryTally) {
        crate::parallel::par_query_batch_mapped_tallied(
            self.dl.labeling(),
            Some(&self.filters),
            &self.comp_of,
            pairs,
            threads,
        )
    }

    /// [`Self::reaches_batch`] with the pre-filter stage disabled (perf
    /// harness / equivalence-test hook; identical answers).
    pub fn reaches_batch_unfiltered(
        &self,
        pairs: &[(VertexId, VertexId)],
        threads: usize,
    ) -> Vec<bool> {
        crate::parallel::par_query_batch_mapped(
            self.dl.labeling(),
            None,
            &self.comp_of,
            pairs,
            threads,
        )
    }

    /// Number of vertices of the original graph.
    pub fn num_vertices(&self) -> usize {
        self.comp_of.len()
    }

    /// Number of strongly connected components of the input.
    pub fn num_components(&self) -> usize {
        self.comp_sizes.len()
    }

    /// Total hop-label entries of the underlying oracle (the paper's
    /// index-size metric).
    pub fn label_entries(&self) -> u64 {
        self.dl.labeling().total_entries()
    }

    /// `comp_of[v]` = condensation component of original vertex `v`.
    pub fn comp_of(&self) -> &[VertexId] {
        &self.comp_of
    }

    /// Original vertices per component.
    pub fn comp_sizes(&self) -> &[u32] {
        &self.comp_sizes
    }

    /// The condensation DAG (component ids topological: `tail < head`).
    ///
    /// On an [`Oracle::open`]ed index this materializes lazily from
    /// the persisted CSR sections — queries never pay for it, only
    /// `save`/introspection callers do, once.
    ///
    /// # Panics
    /// On a mapped oracle, panics if the persisted CSR turns out
    /// malformed — possible only for a file that passes its checksums
    /// yet was not produced by [`Oracle::save_arena`] (the arena
    /// reader's documented trust model; see [`crate::persist`]).
    pub fn dag(&self) -> &Dag {
        self.dag.get_or_init(|| {
            let csr = self
                .dag_csr
                .as_ref()
                .expect("an oracle holds its DAG or the CSR to build it");
            let g = DiGraph::from_csr(
                csr.out_offsets.to_vec(),
                csr.out_targets.to_vec(),
                csr.in_offsets.to_vec(),
                csr.in_targets.to_vec(),
            )
            .expect("arena condensation CSR is malformed despite valid checksums");
            for u in 0..g.num_vertices() as VertexId {
                assert!(
                    g.out_neighbors(u).first().is_none_or(|&t| t > u),
                    "arena condensation edge from {u} is not topological"
                );
            }
            Dag::new(g).expect("topological edges are acyclic")
        })
    }

    /// True byte footprint of everything the oracle serves from —
    /// labels, signatures, the rank order, filter records, the
    /// component tables, and the (always owned) condensation DAG —
    /// split into heap vs mapped-arena bytes. An index opened with
    /// [`Oracle::open`] reports almost everything under
    /// `mapped_bytes`, and those bytes are shared page cache across
    /// every replica of the same file.
    pub fn memory(&self) -> MemorySplit {
        let mut m = self.dl.memory();
        m.add(self.filters.memory());
        m.add(MemorySplit::of(&self.comp_of));
        m.add(MemorySplit::of(&self.comp_sizes));
        if let Some(dag) = self.dag.get() {
            m.add(MemorySplit {
                heap_bytes: dag.graph().memory_bytes() as u64,
                mapped_bytes: 0,
            });
        }
        if let Some(csr) = &self.dag_csr {
            m.add(MemorySplit::of(&csr.out_offsets));
            m.add(MemorySplit::of(&csr.out_targets));
            m.add(MemorySplit::of(&csr.in_offsets));
            m.add(MemorySplit::of(&csr.in_targets));
        }
        m
    }

    /// [`StoreBackend::Mapped`] iff the hot arrays live in a shared
    /// arena (the label store is the tell — every v3 section shares
    /// one buffer).
    pub fn backend(&self) -> StoreBackend {
        self.dl.labeling().backend()
    }

    /// The O(1) query pre-filter stack, projected into
    /// *original-vertex* space ([`QueryFilters::project`]) — index it
    /// with original graph ids, not component ids.
    pub fn filters(&self) -> &QueryFilters {
        &self.filters
    }

    /// The underlying Distribution-Labeling oracle over the
    /// condensation DAG.
    pub fn inner(&self) -> &DistributionLabeling {
        &self.dl
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Trivial;
    impl ReachIndex for Trivial {
        fn name(&self) -> &'static str {
            "trivial"
        }
        fn query(&self, u: VertexId, v: VertexId) -> bool {
            u == v
        }
        fn size_in_integers(&self) -> u64 {
            3
        }
    }

    #[test]
    fn default_memory_is_four_bytes_per_integer() {
        let t = Trivial;
        assert_eq!(t.memory_bytes(), 12);
        assert!(t.query(1, 1));
        assert!(!t.query(1, 2));
    }

    #[test]
    fn trait_is_object_safe() {
        let b: Box<dyn ReachIndex> = Box::new(Trivial);
        assert_eq!(b.name(), "trivial");
    }
}
