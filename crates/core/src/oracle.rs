//! The query interface shared by every reachability index in the
//! workspace.

use hoplite_graph::VertexId;

/// A built reachability index over a fixed DAG.
///
/// Implementations exist for the paper's two oracles
/// ([`crate::DistributionLabeling`], [`crate::HierarchicalLabeling`])
/// and for every baseline in `hoplite-baselines`. The trait is
/// deliberately tiny: the benchmark harness drives heterogeneous
/// indexes through `Box<dyn ReachIndex>`.
///
/// Queries use *reflexive* reachability semantics (`query(v, v)` is
/// always `true`), matching the paper's query workloads.
///
/// Implementations may keep interior-mutable scratch space (e.g. the
/// visited set of a pruned DFS), so they are required to be `Send` but
/// not `Sync`; parallel callers give each worker its own index.
pub trait ReachIndex: Send {
    /// Short display name matching the paper's table headers
    /// (e.g. `"DL"`, `"GRAIL"`).
    fn name(&self) -> &'static str;

    /// Does `u` reach `v`?
    fn query(&self, u: VertexId, v: VertexId) -> bool;

    /// Index size in the unit the paper's Figures 3–4 report: the
    /// number of 32-bit integers the index stores.
    fn size_in_integers(&self) -> u64;

    /// Approximate heap footprint in bytes. Defaults to
    /// `4 · size_in_integers()`.
    fn memory_bytes(&self) -> u64 {
        self.size_in_integers() * 4
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Trivial;
    impl ReachIndex for Trivial {
        fn name(&self) -> &'static str {
            "trivial"
        }
        fn query(&self, u: VertexId, v: VertexId) -> bool {
            u == v
        }
        fn size_in_integers(&self) -> u64 {
            3
        }
    }

    #[test]
    fn default_memory_is_four_bytes_per_integer() {
        let t = Trivial;
        assert_eq!(t.memory_bytes(), 12);
        assert!(t.query(1, 1));
        assert!(!t.query(1, 2));
    }

    #[test]
    fn trait_is_object_safe() {
        let b: Box<dyn ReachIndex> = Box::new(Trivial);
        assert_eq!(b.name(), "trivial");
    }
}
