//! Parallel batch-query evaluation over a frozen [`Labeling`].
//!
//! A built oracle is immutable, so concurrent readers need no
//! synchronization at all: [`Labeling`] is `Sync`, and the query is two
//! slice lookups plus a merge. This module fans a batch of queries out
//! over scoped OS threads (`std::thread::scope`, keeping the runtime
//! crates dependency-free per `DESIGN.md` §8) with static chunking —
//! every query costs `O(|L_out| + |L_in|)`, so chunks of equal count
//! balance well without work stealing.
//!
//! This serves the serving-side story the paper's introduction
//! motivates (reachability as a high-QPS primitive inside social
//! network / ontology / web services): once Distribution-Labeling has
//! built its small labels, query throughput scales with cores. The
//! `throughput` Criterion bench measures the scaling curve.
//!
//! ```
//! use hoplite_graph::{gen, Dag};
//! use hoplite_core::{DistributionLabeling, DlConfig};
//! use hoplite_core::parallel::par_query_batch;
//!
//! let dag = gen::random_dag(200, 600, 7);
//! let dl = DistributionLabeling::build(&dag, &DlConfig::default());
//! let pairs = vec![(0, 10), (5, 199), (42, 42)];
//! let answers = par_query_batch(dl.labeling(), &pairs, 2);
//! assert_eq!(answers.len(), pairs.len());
//! assert!(answers[2], "reflexive");
//! ```

use hoplite_graph::VertexId;

use crate::filter::QueryFilters;
use crate::label::{LabelPath, Labeling};

/// Where a workload's queries died, per stage: the O(1) pre-filter
/// stack, the O(1) signature rejection, or the intersection kernel.
/// Accumulated off the hot path (each batch worker counts locally and
/// totals are folded once per chunk), so operators can watch the stage
/// mix without taxing throughput.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct QueryTally {
    /// Decided by the pre-filter stack (including reflexive /
    /// same-component pairs).
    pub filter_decided: u64,
    /// Rejected by the rank-band signature `AND`.
    pub signature_cut: u64,
    /// Ran the adaptive label-intersection kernel.
    pub merged: u64,
}

impl QueryTally {
    /// Queries accounted for.
    pub fn total(&self) -> u64 {
        self.filter_decided + self.signature_cut + self.merged
    }

    /// Folds another tally in.
    pub fn add(&mut self, other: &QueryTally) {
        self.filter_decided += other.filter_decided;
        self.signature_cut += other.signature_cut;
        self.merged += other.merged;
    }
}

/// The instrumented single-query path shared by
/// [`par_query_batch_mapped_tallied`] and
/// [`crate::Oracle::reaches_tallied`]: identical answers to the
/// uninstrumented path, plus one stage counter bump. `filters` must be
/// indexed in `(u, v)`'s space (see [`par_query_batch_mapped`]);
/// `comp_of` is only consulted when the filters fall through.
#[inline]
pub(crate) fn answer_tallied(
    labeling: &Labeling,
    filters: Option<&QueryFilters>,
    comp_of: &[VertexId],
    u: VertexId,
    v: VertexId,
    tally: &mut QueryTally,
) -> bool {
    if let Some(f) = filters {
        if let Some(decided) = f.check(u, v) {
            tally.filter_decided += 1;
            return decided;
        }
    }
    let (cu, cv) = (comp_of[u as usize], comp_of[v as usize]);
    let (answer, path) = labeling.query_traced(cu, cv);
    match path {
        // Without a filter stack a reflexive pair is still an O(1)
        // pre-label decision; count it with the filter stage.
        LabelPath::Reflexive => tally.filter_decided += 1,
        LabelPath::SignatureCut => tally.signature_cut += 1,
        LabelPath::Merge => tally.merged += 1,
    }
    answer
}

/// Answers every `(u, v)` pair in `pairs` using `threads` worker
/// threads, preserving order.
///
/// `threads` is clamped to `1..=pairs.len()`; passing `0` or `1` runs
/// inline on the caller's thread (no spawn cost for small batches).
pub fn par_query_batch(
    labeling: &Labeling,
    pairs: &[(VertexId, VertexId)],
    threads: usize,
) -> Vec<bool> {
    run_chunked(pairs, threads, |u, v| labeling.query(u, v))
}

/// Batch evaluation in *original-graph* vertex space: when `filters`
/// is given it must be indexed in the same space as `pairs` (for an
/// oracle over a cyclic graph that means projected through
/// [`QueryFilters::project`]), so the O(1) pre-filter stack runs
/// *before* any component mapping — only queries that fall through to
/// the label intersection pay the `comp_of` lookups, which each worker
/// does inline (no serial prepass, no mapped copy of the batch). This
/// is [`crate::Oracle::reaches_batch`]'s engine.
///
/// `comp_of` may also be the identity when the pairs are already in
/// label space. Answers are order-preserving and identical with and
/// without `filters`.
///
/// # Panics
/// Panics if any vertex id in `pairs` is out of `comp_of`'s range.
pub fn par_query_batch_mapped(
    labeling: &Labeling,
    filters: Option<&QueryFilters>,
    comp_of: &[VertexId],
    pairs: &[(VertexId, VertexId)],
    threads: usize,
) -> Vec<bool> {
    run_chunked_lookahead(
        pairs,
        threads,
        move |u, v| {
            if let Some(f) = filters {
                // Same-component pairs are decided here (preorder
                // equality inside the level branch), so the fallthrough
                // below only ever maps genuinely undecided pairs.
                if let Some(decided) = f.check(u, v) {
                    return decided;
                }
            }
            let (cu, cv) = (comp_of[u as usize], comp_of[v as usize]);
            labeling.query(cu, cv)
        },
        move |pu, pv| match filters {
            Some(f) => f.prefetch(pu, pv),
            None => {
                prefetch_index(comp_of, pu as usize);
                prefetch_index(comp_of, pv as usize);
            }
        },
    )
}

/// Cache-prefetch hint for `slice[i]`'s line. Purely advisory: no-op
/// off x86_64, never dereferences, out-of-range indices are harmless
/// (address computed without `add`'s in-bounds contract).
#[inline]
fn prefetch_index<T>(slice: &[T], i: usize) {
    #[cfg(target_arch = "x86_64")]
    unsafe {
        use std::arch::x86_64::{_mm_prefetch, _MM_HINT_T0};
        _mm_prefetch(slice.as_ptr().wrapping_add(i) as *const i8, _MM_HINT_T0);
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        let _ = (slice, i);
    }
}

/// How many queries ahead the batch loops issue filter-record
/// prefetches: far enough to cover an L3 miss, close enough that the
/// lines are still resident when their query runs.
const PREFETCH_DISTANCE: usize = 12;

/// [`par_query_batch_mapped`] that also reports *where queries died*
/// (pre-filter, signature, merge) as a [`QueryTally`]. Answers are
/// identical; the tally costs each worker three register increments
/// per query plus one fold per chunk. This is the engine behind
/// [`crate::Oracle::reaches_batch_tallied`] and the `hoplite-server`
/// `STATS` counters.
///
/// # Panics
/// Panics if any vertex id in `pairs` is out of `comp_of`'s range.
pub fn par_query_batch_mapped_tallied(
    labeling: &Labeling,
    filters: Option<&QueryFilters>,
    comp_of: &[VertexId],
    pairs: &[(VertexId, VertexId)],
    threads: usize,
) -> (Vec<bool>, QueryTally) {
    let scan = move |part: &[(VertexId, VertexId)], out: &mut [bool]| -> QueryTally {
        let mut local = QueryTally::default();
        for (i, (slot, &(u, v))) in out.iter_mut().zip(part).enumerate() {
            if let Some(&(pu, pv)) = part.get(i + PREFETCH_DISTANCE) {
                match filters {
                    Some(f) => f.prefetch(pu, pv),
                    None => {
                        prefetch_index(comp_of, pu as usize);
                        prefetch_index(comp_of, pv as usize);
                    }
                }
            }
            *slot = answer_tallied(labeling, filters, comp_of, u, v, &mut local);
        }
        local
    };
    let mut answers = vec![false; pairs.len()];
    let threads = effective_threads(threads, pairs.len());
    if threads <= 1 {
        let tally = scan(pairs, &mut answers);
        return (answers, tally);
    }
    let chunk = pairs.len().div_ceil(threads);
    let mut tally = QueryTally::default();
    std::thread::scope(|s| {
        let handles: Vec<_> = pairs
            .chunks(chunk)
            .zip(answers.chunks_mut(chunk))
            .map(|(part, out)| s.spawn(move || scan(part, out)))
            .collect();
        for h in handles {
            tally.add(&h.join().expect("query worker panicked"));
        }
    });
    (answers, tally)
}

/// [`par_query_batch`] that only counts positive answers — the
/// aggregate most workload drivers want, without materializing the
/// answer vector.
pub fn par_count_reachable(
    labeling: &Labeling,
    pairs: &[(VertexId, VertexId)],
    threads: usize,
) -> u64 {
    let threads = effective_threads(threads, pairs.len());
    if threads <= 1 {
        return pairs.iter().filter(|&&(u, v)| labeling.query(u, v)).count() as u64;
    }
    let chunk = pairs.len().div_ceil(threads);
    std::thread::scope(|s| {
        let handles: Vec<_> = pairs
            .chunks(chunk)
            .map(|part| {
                s.spawn(move || part.iter().filter(|&&(u, v)| labeling.query(u, v)).count() as u64)
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("query worker panicked"))
            .sum()
    })
}

/// Wall-clock throughput measurement of a query batch at a given
/// thread count.
#[derive(Clone, Copy, Debug)]
pub struct ThroughputReport {
    /// Worker threads actually used.
    pub threads: usize,
    /// Queries answered.
    pub queries: usize,
    /// Positive (reachable) answers.
    pub positive: u64,
    /// Total wall-clock time for the batch.
    pub elapsed: std::time::Duration,
}

impl ThroughputReport {
    /// Queries per second.
    pub fn qps(&self) -> f64 {
        self.queries as f64 / self.elapsed.as_secs_f64().max(f64::MIN_POSITIVE)
    }
}

/// Runs the batch at each requested thread count and reports the
/// scaling curve. The `examples/` and the `throughput` bench print
/// these directly.
pub fn measure_scaling(
    labeling: &Labeling,
    pairs: &[(VertexId, VertexId)],
    thread_counts: &[usize],
) -> Vec<ThroughputReport> {
    thread_counts
        .iter()
        .map(|&t| {
            let start = std::time::Instant::now();
            let positive = par_count_reachable(labeling, pairs, t);
            ThroughputReport {
                threads: effective_threads(t, pairs.len()),
                queries: pairs.len(),
                positive,
                elapsed: start.elapsed(),
            }
        })
        .collect()
}

fn effective_threads(requested: usize, work_items: usize) -> usize {
    requested.max(1).min(work_items.max(1))
}

/// The shared fan-out skeleton: evaluates `answer` over every pair on
/// `threads` statically chunked workers, preserving order. `answer`
/// must be `Copy` (capture only shared references) so each scoped
/// worker takes its own copy.
fn run_chunked(
    pairs: &[(VertexId, VertexId)],
    threads: usize,
    answer: impl Fn(VertexId, VertexId) -> bool + Copy + Send,
) -> Vec<bool> {
    run_chunked_lookahead(pairs, threads, answer, |_, _| {})
}

/// [`run_chunked`] with a software-pipelining hook: `lookahead` is
/// called with the pair `PREFETCH_DISTANCE` queries ahead of the one
/// being answered, so its cache lines (filter records, component ids)
/// are already on their way up the hierarchy when their turn comes —
/// the random-access loads are the batch hot path's dominant stall.
fn run_chunked_lookahead(
    pairs: &[(VertexId, VertexId)],
    threads: usize,
    answer: impl Fn(VertexId, VertexId) -> bool + Copy + Send,
    lookahead: impl Fn(VertexId, VertexId) + Copy + Send,
) -> Vec<bool> {
    let mut answers = vec![false; pairs.len()];
    let threads = effective_threads(threads, pairs.len());
    if threads <= 1 {
        scan_pairs(pairs, &mut answers, answer, lookahead);
        return answers;
    }
    let chunk = pairs.len().div_ceil(threads);
    std::thread::scope(|s| {
        for (part, out) in pairs.chunks(chunk).zip(answers.chunks_mut(chunk)) {
            s.spawn(move || scan_pairs(part, out, answer, lookahead));
        }
    });
    answers
}

/// One worker's batch loop; see [`run_chunked_lookahead`].
fn scan_pairs(
    part: &[(VertexId, VertexId)],
    out: &mut [bool],
    answer: impl Fn(VertexId, VertexId) -> bool,
    lookahead: impl Fn(VertexId, VertexId),
) {
    for (i, (slot, &(u, v))) in out.iter_mut().zip(part).enumerate() {
        if let Some(&(pu, pv)) = part.get(i + PREFETCH_DISTANCE) {
            lookahead(pu, pv);
        }
        *slot = answer(u, v);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{DistributionLabeling, DlConfig};
    use hoplite_graph::gen;

    fn fixture() -> (Labeling, Vec<(VertexId, VertexId)>) {
        let dag = gen::power_law_dag(300, 900, 21);
        let dl = DistributionLabeling::build(&dag, &DlConfig::default());
        let mut rng = gen::Rng::new(99);
        let pairs: Vec<_> = (0..1000)
            .map(|_| (rng.gen_range(300) as u32, rng.gen_range(300) as u32))
            .collect();
        (dl.labeling().clone(), pairs)
    }

    #[test]
    fn parallel_matches_sequential_at_every_width() {
        let (labeling, pairs) = fixture();
        let seq = par_query_batch(&labeling, &pairs, 1);
        for threads in [2, 3, 4, 7, 16, 1000] {
            assert_eq!(
                par_query_batch(&labeling, &pairs, threads),
                seq,
                "threads={threads}"
            );
        }
    }

    #[test]
    fn count_matches_batch_sum() {
        let (labeling, pairs) = fixture();
        let batch = par_query_batch(&labeling, &pairs, 4);
        let expected = batch.iter().filter(|&&b| b).count() as u64;
        for threads in [1, 2, 5, 8] {
            assert_eq!(par_count_reachable(&labeling, &pairs, threads), expected);
        }
    }

    #[test]
    fn zero_threads_and_empty_batches_are_safe() {
        let (labeling, pairs) = fixture();
        assert_eq!(
            par_query_batch(&labeling, &pairs, 0),
            par_query_batch(&labeling, &pairs, 1)
        );
        assert!(par_query_batch(&labeling, &[], 8).is_empty());
        assert_eq!(par_count_reachable(&labeling, &[], 8), 0);
    }

    #[test]
    fn scaling_report_is_consistent() {
        let (labeling, pairs) = fixture();
        let reports = measure_scaling(&labeling, &pairs, &[1, 2, 4]);
        assert_eq!(reports.len(), 3);
        let positives: Vec<u64> = reports.iter().map(|r| r.positive).collect();
        assert!(
            positives.windows(2).all(|w| w[0] == w[1]),
            "same answers at every width"
        );
        for r in &reports {
            assert_eq!(r.queries, pairs.len());
            assert!(r.qps() > 0.0);
        }
        assert_eq!(reports[0].threads, 1);
        assert_eq!(reports[2].threads, 4);
    }

    #[test]
    fn mapped_batch_matches_plain_batch_with_and_without_filters() {
        let dag = gen::power_law_dag(300, 900, 21);
        let dl = DistributionLabeling::build(&dag, &DlConfig::default());
        let filters = QueryFilters::build(&dag);
        let identity: Vec<VertexId> = (0..300).collect();
        let mut rng = gen::Rng::new(99);
        let pairs: Vec<_> = (0..1000)
            .map(|_| (rng.gen_range(300) as u32, rng.gen_range(300) as u32))
            .collect();
        let expected = par_query_batch(dl.labeling(), &pairs, 1);
        for threads in [1, 2, 7, 64] {
            assert_eq!(
                par_query_batch_mapped(dl.labeling(), None, &identity, &pairs, threads),
                expected,
                "unfiltered, threads={threads}"
            );
            assert_eq!(
                par_query_batch_mapped(dl.labeling(), Some(&filters), &identity, &pairs, threads),
                expected,
                "filtered, threads={threads}"
            );
        }
        assert!(
            par_query_batch_mapped(dl.labeling(), Some(&filters), &identity, &[], 4).is_empty()
        );
    }

    #[test]
    fn tallied_batch_matches_answers_and_accounts_every_query() {
        let dag = gen::power_law_dag(300, 900, 21);
        let dl = DistributionLabeling::build(&dag, &DlConfig::default());
        let filters = QueryFilters::build(&dag);
        let identity: Vec<VertexId> = (0..300).collect();
        let mut rng = gen::Rng::new(5);
        let pairs: Vec<_> = (0..2000)
            .map(|_| (rng.gen_range(300) as u32, rng.gen_range(300) as u32))
            .collect();
        let expected = par_query_batch(dl.labeling(), &pairs, 1);
        let mut reference: Option<QueryTally> = None;
        for threads in [1, 2, 7] {
            for filters in [None, Some(&filters)] {
                let (answers, tally) = par_query_batch_mapped_tallied(
                    dl.labeling(),
                    filters,
                    &identity,
                    &pairs,
                    threads,
                );
                assert_eq!(answers, expected, "threads={threads}");
                assert_eq!(tally.total(), pairs.len() as u64, "threads={threads}");
                if filters.is_some() {
                    // The tally is deterministic: same workload, same
                    // stage mix at every width.
                    match &reference {
                        None => reference = Some(tally),
                        Some(want) => assert_eq!(&tally, want, "threads={threads}"),
                    }
                }
            }
        }
        let with_filters = reference.expect("filtered runs happened");
        assert!(
            with_filters.filter_decided > 0,
            "filters decided nothing: {with_filters:?}"
        );
    }

    #[test]
    fn more_threads_than_queries_clamps() {
        let (labeling, _) = fixture();
        let pairs = [(0u32, 1u32), (1, 0)];
        let r = measure_scaling(&labeling, &pairs, &[64]);
        assert_eq!(r[0].threads, 2, "clamped to batch size");
    }
}
