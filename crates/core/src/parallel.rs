//! Parallel batch-query evaluation over a frozen [`Labeling`].
//!
//! A built oracle is immutable, so concurrent readers need no
//! synchronization at all: [`Labeling`] is `Sync`, and the query is two
//! slice lookups plus a merge. This module fans a batch of queries out
//! over scoped OS threads (`std::thread::scope`, keeping the runtime
//! crates dependency-free per `DESIGN.md` §8) with static chunking —
//! every query costs `O(|L_out| + |L_in|)`, so chunks of equal count
//! balance well without work stealing.
//!
//! This serves the serving-side story the paper's introduction
//! motivates (reachability as a high-QPS primitive inside social
//! network / ontology / web services): once Distribution-Labeling has
//! built its small labels, query throughput scales with cores. The
//! `throughput` Criterion bench measures the scaling curve.
//!
//! ```
//! use hoplite_graph::{gen, Dag};
//! use hoplite_core::{DistributionLabeling, DlConfig};
//! use hoplite_core::parallel::par_query_batch;
//!
//! let dag = gen::random_dag(200, 600, 7);
//! let dl = DistributionLabeling::build(&dag, &DlConfig::default());
//! let pairs = vec![(0, 10), (5, 199), (42, 42)];
//! let answers = par_query_batch(dl.labeling(), &pairs, 2);
//! assert_eq!(answers.len(), pairs.len());
//! assert!(answers[2], "reflexive");
//! ```

use hoplite_graph::VertexId;

use crate::filter::QueryFilters;
use crate::label::Labeling;

/// Answers every `(u, v)` pair in `pairs` using `threads` worker
/// threads, preserving order.
///
/// `threads` is clamped to `1..=pairs.len()`; passing `0` or `1` runs
/// inline on the caller's thread (no spawn cost for small batches).
pub fn par_query_batch(
    labeling: &Labeling,
    pairs: &[(VertexId, VertexId)],
    threads: usize,
) -> Vec<bool> {
    run_chunked(pairs, threads, |u, v| labeling.query(u, v))
}

/// Batch evaluation in *original-graph* vertex space: every worker maps
/// its pairs through `comp_of` itself (no serial prepass, no mapped
/// copy of the batch) and, when `filters` is given, runs the O(1)
/// pre-filter stack before falling through to the label intersection.
/// This is [`crate::Oracle::reaches_batch`]'s engine.
///
/// `comp_of` may also be the identity when the pairs are already in
/// label space. Answers are order-preserving and identical with and
/// without `filters`.
///
/// # Panics
/// Panics if any vertex id in `pairs` is out of `comp_of`'s range.
pub fn par_query_batch_mapped(
    labeling: &Labeling,
    filters: Option<&QueryFilters>,
    comp_of: &[VertexId],
    pairs: &[(VertexId, VertexId)],
    threads: usize,
) -> Vec<bool> {
    run_chunked(pairs, threads, move |u, v| {
        let (cu, cv) = (comp_of[u as usize], comp_of[v as usize]);
        match filters {
            // Same-component pairs map to (c, c), which both the filter
            // stack and the reflexive labeling query answer `true`.
            Some(f) => match f.check(cu, cv) {
                Some(decided) => decided,
                None => labeling.query(cu, cv),
            },
            None => labeling.query(cu, cv),
        }
    })
}

/// [`par_query_batch`] that only counts positive answers — the
/// aggregate most workload drivers want, without materializing the
/// answer vector.
pub fn par_count_reachable(
    labeling: &Labeling,
    pairs: &[(VertexId, VertexId)],
    threads: usize,
) -> u64 {
    let threads = effective_threads(threads, pairs.len());
    if threads <= 1 {
        return pairs.iter().filter(|&&(u, v)| labeling.query(u, v)).count() as u64;
    }
    let chunk = pairs.len().div_ceil(threads);
    std::thread::scope(|s| {
        let handles: Vec<_> = pairs
            .chunks(chunk)
            .map(|part| {
                s.spawn(move || part.iter().filter(|&&(u, v)| labeling.query(u, v)).count() as u64)
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("query worker panicked"))
            .sum()
    })
}

/// Wall-clock throughput measurement of a query batch at a given
/// thread count.
#[derive(Clone, Copy, Debug)]
pub struct ThroughputReport {
    /// Worker threads actually used.
    pub threads: usize,
    /// Queries answered.
    pub queries: usize,
    /// Positive (reachable) answers.
    pub positive: u64,
    /// Total wall-clock time for the batch.
    pub elapsed: std::time::Duration,
}

impl ThroughputReport {
    /// Queries per second.
    pub fn qps(&self) -> f64 {
        self.queries as f64 / self.elapsed.as_secs_f64().max(f64::MIN_POSITIVE)
    }
}

/// Runs the batch at each requested thread count and reports the
/// scaling curve. The `examples/` and the `throughput` bench print
/// these directly.
pub fn measure_scaling(
    labeling: &Labeling,
    pairs: &[(VertexId, VertexId)],
    thread_counts: &[usize],
) -> Vec<ThroughputReport> {
    thread_counts
        .iter()
        .map(|&t| {
            let start = std::time::Instant::now();
            let positive = par_count_reachable(labeling, pairs, t);
            ThroughputReport {
                threads: effective_threads(t, pairs.len()),
                queries: pairs.len(),
                positive,
                elapsed: start.elapsed(),
            }
        })
        .collect()
}

fn effective_threads(requested: usize, work_items: usize) -> usize {
    requested.max(1).min(work_items.max(1))
}

/// The shared fan-out skeleton: evaluates `answer` over every pair on
/// `threads` statically chunked workers, preserving order. `answer`
/// must be `Copy` (capture only shared references) so each scoped
/// worker takes its own copy.
fn run_chunked(
    pairs: &[(VertexId, VertexId)],
    threads: usize,
    answer: impl Fn(VertexId, VertexId) -> bool + Copy + Send,
) -> Vec<bool> {
    let mut answers = vec![false; pairs.len()];
    let threads = effective_threads(threads, pairs.len());
    if threads <= 1 {
        for (slot, &(u, v)) in answers.iter_mut().zip(pairs) {
            *slot = answer(u, v);
        }
        return answers;
    }
    let chunk = pairs.len().div_ceil(threads);
    std::thread::scope(|s| {
        for (part, out) in pairs.chunks(chunk).zip(answers.chunks_mut(chunk)) {
            s.spawn(move || {
                for (slot, &(u, v)) in out.iter_mut().zip(part) {
                    *slot = answer(u, v);
                }
            });
        }
    });
    answers
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{DistributionLabeling, DlConfig};
    use hoplite_graph::gen;

    fn fixture() -> (Labeling, Vec<(VertexId, VertexId)>) {
        let dag = gen::power_law_dag(300, 900, 21);
        let dl = DistributionLabeling::build(&dag, &DlConfig::default());
        let mut rng = gen::Rng::new(99);
        let pairs: Vec<_> = (0..1000)
            .map(|_| (rng.gen_range(300) as u32, rng.gen_range(300) as u32))
            .collect();
        (dl.labeling().clone(), pairs)
    }

    #[test]
    fn parallel_matches_sequential_at_every_width() {
        let (labeling, pairs) = fixture();
        let seq = par_query_batch(&labeling, &pairs, 1);
        for threads in [2, 3, 4, 7, 16, 1000] {
            assert_eq!(
                par_query_batch(&labeling, &pairs, threads),
                seq,
                "threads={threads}"
            );
        }
    }

    #[test]
    fn count_matches_batch_sum() {
        let (labeling, pairs) = fixture();
        let batch = par_query_batch(&labeling, &pairs, 4);
        let expected = batch.iter().filter(|&&b| b).count() as u64;
        for threads in [1, 2, 5, 8] {
            assert_eq!(par_count_reachable(&labeling, &pairs, threads), expected);
        }
    }

    #[test]
    fn zero_threads_and_empty_batches_are_safe() {
        let (labeling, pairs) = fixture();
        assert_eq!(
            par_query_batch(&labeling, &pairs, 0),
            par_query_batch(&labeling, &pairs, 1)
        );
        assert!(par_query_batch(&labeling, &[], 8).is_empty());
        assert_eq!(par_count_reachable(&labeling, &[], 8), 0);
    }

    #[test]
    fn scaling_report_is_consistent() {
        let (labeling, pairs) = fixture();
        let reports = measure_scaling(&labeling, &pairs, &[1, 2, 4]);
        assert_eq!(reports.len(), 3);
        let positives: Vec<u64> = reports.iter().map(|r| r.positive).collect();
        assert!(
            positives.windows(2).all(|w| w[0] == w[1]),
            "same answers at every width"
        );
        for r in &reports {
            assert_eq!(r.queries, pairs.len());
            assert!(r.qps() > 0.0);
        }
        assert_eq!(reports[0].threads, 1);
        assert_eq!(reports[2].threads, 4);
    }

    #[test]
    fn mapped_batch_matches_plain_batch_with_and_without_filters() {
        let dag = gen::power_law_dag(300, 900, 21);
        let dl = DistributionLabeling::build(&dag, &DlConfig::default());
        let filters = QueryFilters::build(&dag);
        let identity: Vec<VertexId> = (0..300).collect();
        let mut rng = gen::Rng::new(99);
        let pairs: Vec<_> = (0..1000)
            .map(|_| (rng.gen_range(300) as u32, rng.gen_range(300) as u32))
            .collect();
        let expected = par_query_batch(dl.labeling(), &pairs, 1);
        for threads in [1, 2, 7, 64] {
            assert_eq!(
                par_query_batch_mapped(dl.labeling(), None, &identity, &pairs, threads),
                expected,
                "unfiltered, threads={threads}"
            );
            assert_eq!(
                par_query_batch_mapped(dl.labeling(), Some(&filters), &identity, &pairs, threads),
                expected,
                "filtered, threads={threads}"
            );
        }
        assert!(
            par_query_batch_mapped(dl.labeling(), Some(&filters), &identity, &[], 4).is_empty()
        );
    }

    #[test]
    fn more_threads_than_queries_clamps() {
        let (labeling, _) = fixture();
        let pairs = [(0u32, 1u32), (1, 0)];
        let r = measure_scaling(&labeling, &pairs, &[64]);
        assert_eq!(r[0].threads, 2, "clamped to batch size");
    }
}
