//! Hierarchical-Labeling (HL) — Algorithm 1 of the paper.
//!
//! Labels flow *down* a hierarchical DAG decomposition
//! ([`crate::hierarchy`]):
//!
//! 1. the **core graph** `G_h` is labeled with a complete oracle — the
//!    paper uses either Formula 3 (when the core diameter ≤ ε) or an
//!    existing 2-hop labeling; we use [`DistributionLabeling`], which is
//!    complete on any DAG and matches the paper's "stop at a small core
//!    and label it directly" practice;
//! 2. every lower level `i = h−1 … 0` labels its vertices
//!    `v ∈ V_i \ V_{i+1}` by Formulas 4–5:
//!    `L_out(v) = N^⌈ε/2⌉_out(v|G_i) ∪ ⋃_{u ∈ B^ε_out(v)} L_out(u)`
//!    (and symmetrically for `L_in`), where `B^ε` are the first-reached
//!    backbone vertex sets of Formulas 1–2.
//!
//! Hop ids in the resulting labels are **original vertex ids** (unlike
//! DL, which stores ranks); lists are sorted and deduplicated as they
//! are merged.
//!
//! Unlike DL, HL cannot detect that an inherited hop is redundant
//! (§5's motivation for DL) — the `hl_labels_can_be_redundant` test
//! below exhibits exactly that.

use hoplite_graph::traversal::{self, Direction, TraversalScratch};
use hoplite_graph::{Dag, VertexId};

use crate::backbone::backbone_vertex_set;
use crate::distribution::{DistributionLabeling, DlConfig};
use crate::hierarchy::{Hierarchy, HierarchyConfig};
use crate::label::{Labeling, LabelingBuilder};
use crate::oracle::ReachIndex;
use crate::order::OrderKind;

/// How Algorithm 1 labels the core graph `G_h` (its Line 2).
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub enum CoreLabeler {
    /// Label the core with [`DistributionLabeling`] — complete on any
    /// DAG, matching the paper's "employ the existing 2-hop labeling"
    /// practical rule. The default.
    #[default]
    Distribution,
    /// Formula 3: `L_out(v) = N^⌈ε/2⌉_out(v|G_h)` (and symmetrically
    /// for `L_in`). Complete **only when the core diameter is ≤ ε**;
    /// the builder verifies that (all-pairs BFS over the small core)
    /// and falls back to [`CoreLabeler::Distribution`] otherwise —
    /// check [`HierarchicalLabeling::core_formula3_used`].
    EpsilonNeighborhood,
}

/// Configuration for [`HierarchicalLabeling::build`].
#[derive(Clone, Debug)]
pub struct HlConfig {
    /// Locality threshold ε (paper default 2; TF-label ≈ ε = 1).
    pub eps: u32,
    /// Decomposition stops at this core size (§4.1 suggests ≤ 10 K for
    /// the paper's graph sizes; scaled down with our datasets).
    pub core_size_limit: usize,
    /// Hard cap on hierarchy depth.
    pub max_levels: usize,
    /// Vertex order for the core graph's DL labeling.
    pub core_order: OrderKind,
    /// Core labeling strategy (Algorithm 1, Line 2).
    pub core_labeler: CoreLabeler,
}

impl Default for HlConfig {
    fn default() -> Self {
        HlConfig {
            eps: 2,
            core_size_limit: 1_000,
            max_levels: 10,
            core_order: OrderKind::DegProduct,
            core_labeler: CoreLabeler::Distribution,
        }
    }
}

/// A complete reachability oracle built by Hierarchical-Labeling.
#[derive(Clone, Debug)]
pub struct HierarchicalLabeling {
    labeling: Labeling,
    level_sizes: Vec<usize>,
    core_formula3_used: bool,
}

impl HierarchicalLabeling {
    /// Runs Algorithm 1 on `dag`.
    pub fn build(dag: &Dag, cfg: &HlConfig) -> Self {
        let hier = Hierarchy::build(
            dag,
            &HierarchyConfig {
                eps: cfg.eps,
                core_size_limit: cfg.core_size_limit,
                max_levels: cfg.max_levels,
            },
        );
        Self::build_with_hierarchy(dag, cfg, &hier)
    }

    /// Runs the labeling phase against a pre-built hierarchy (exposed
    /// for the ε/core-size ablation benches, which reuse hierarchies).
    pub fn build_with_hierarchy(dag: &Dag, cfg: &HlConfig, hier: &Hierarchy) -> Self {
        let n = dag.num_vertices();
        let mut b = LabelingBuilder::new(n);
        let h = hier.num_levels() - 1;

        // --- Core graph labeling (Algorithm 1, Line 2). ---------------
        let core = hier.core();
        let use_formula3 = cfg.core_labeler == CoreLabeler::EpsilonNeighborhood
            && core_diameter_at_most(&core.dag, cfg.eps);
        if use_formula3 {
            // Formula 3: ⌈ε/2⌉-neighborhoods are complete because every
            // reachable core pair is within ε and thus shares a middle
            // vertex.
            let half = cfg.eps.div_ceil(2);
            let g = core.dag.graph();
            let mut scratch = TraversalScratch::new(core.dag.num_vertices());
            let mut nbhd: Vec<(VertexId, u32)> = Vec::new();
            for c in 0..core.dag.num_vertices() as VertexId {
                let orig = core.to_orig[c as usize] as usize;
                for dir in [Direction::Forward, Direction::Reverse] {
                    nbhd.clear();
                    traversal::bounded_neighborhood(g, c, half, dir, &mut scratch, &mut nbhd);
                    let mut hops: Vec<u32> = nbhd
                        .iter()
                        .map(|&(x, _)| core.to_orig[x as usize])
                        .collect();
                    hops.sort_unstable();
                    match dir {
                        Direction::Forward => b.out[orig] = hops,
                        Direction::Reverse => b.in_[orig] = hops,
                    }
                }
            }
        } else {
            // DL on the core, ranks translated to original ids.
            let dl = DistributionLabeling::build(
                &core.dag,
                &DlConfig {
                    order: cfg.core_order,
                    ..DlConfig::default()
                },
            );
            for c in 0..core.dag.num_vertices() as VertexId {
                let orig = core.to_orig[c as usize] as usize;
                let translate = |ranks: &[u32]| -> Vec<u32> {
                    let mut hops: Vec<u32> = ranks
                        .iter()
                        .map(|&r| core.to_orig[dl.vertex_at_rank(r) as usize])
                        .collect();
                    hops.sort_unstable();
                    hops
                };
                b.out[orig] = translate(dl.labeling().out_label(c));
                b.in_[orig] = translate(dl.labeling().in_label(c));
            }
        }

        // --- Levels h-1 .. 0: Formulas 4 and 5. -----------------------
        let half = cfg.eps.div_ceil(2);
        for i in (0..h).rev() {
            let level = &hier.levels[i];
            let g = level.dag.graph();
            let mut scratch = TraversalScratch::new(level.dag.num_vertices());
            let mut nbhd: Vec<(VertexId, u32)> = Vec::new();
            let mut bset: Vec<VertexId> = Vec::new();
            let in_next = |c: VertexId| -> bool {
                hier.compact_id(i + 1, level.to_orig[c as usize]).is_some()
            };

            for c in 0..level.dag.num_vertices() as VertexId {
                let orig = level.to_orig[c as usize];
                if hier.level_of[orig as usize] != i as u32 {
                    continue; // labeled at a higher level already
                }
                for dir in [Direction::Forward, Direction::Reverse] {
                    let mut hops: Vec<u32> = Vec::new();
                    // N^{⌈ε/2⌉}(v | G_i), translated to original ids.
                    nbhd.clear();
                    traversal::bounded_neighborhood(g, c, half, dir, &mut scratch, &mut nbhd);
                    hops.extend(nbhd.iter().map(|&(x, _)| level.to_orig[x as usize]));
                    // ⋃ labels of the backbone vertex set B^ε(v | G_i).
                    bset.clear();
                    backbone_vertex_set(g, c, cfg.eps, dir, in_next, &mut scratch, &mut bset);
                    for &u in &bset {
                        let u_orig = level.to_orig[u as usize] as usize;
                        match dir {
                            Direction::Forward => hops.extend_from_slice(&b.out[u_orig]),
                            Direction::Reverse => hops.extend_from_slice(&b.in_[u_orig]),
                        }
                    }
                    hops.sort_unstable();
                    hops.dedup();
                    match dir {
                        Direction::Forward => b.out[orig as usize] = hops,
                        Direction::Reverse => b.in_[orig as usize] = hops,
                    }
                }
            }
        }

        HierarchicalLabeling {
            labeling: b.finish(),
            level_sizes: hier.level_sizes(),
            core_formula3_used: use_formula3,
        }
    }

    /// Did the core use Formula 3? `false` when
    /// [`CoreLabeler::Distribution`] was configured *or* the diameter
    /// check forced the fallback.
    pub fn core_formula3_used(&self) -> bool {
        self.core_formula3_used
    }

    /// The underlying label store (hop ids are original vertex ids).
    pub fn labeling(&self) -> &Labeling {
        &self.labeling
    }

    /// Reassembles an oracle from persisted parts (see
    /// [`crate::persist`]; the Formula-3 flag is construction metadata
    /// and is not persisted).
    pub(crate) fn from_parts(labeling: Labeling, level_sizes: Vec<usize>) -> Self {
        HierarchicalLabeling {
            labeling,
            level_sizes,
            core_formula3_used: false,
        }
    }

    /// `|V_0| ≥ |V_1| ≥ … ≥ |V_h|` of the decomposition used.
    pub fn level_sizes(&self) -> &[usize] {
        &self.level_sizes
    }
}

/// `true` iff every *reachable* pair of `dag` is within `eps` steps —
/// the applicability condition of Formula 3. All-pairs bounded BFS;
/// the core graph is small by construction.
fn core_diameter_at_most(dag: &Dag, eps: u32) -> bool {
    let g = dag.graph();
    let n = dag.num_vertices();
    let mut scratch = TraversalScratch::new(n);
    let mut within: Vec<(VertexId, u32)> = Vec::new();
    let mut all: Vec<VertexId> = Vec::new();
    for v in 0..n as VertexId {
        within.clear();
        traversal::bounded_neighborhood(g, v, eps, Direction::Forward, &mut scratch, &mut within);
        all.clear();
        traversal::collect_reachable(g, v, Direction::Forward, &mut scratch, &mut all);
        if within.len() != all.len() {
            return false; // some descendant lies beyond eps steps
        }
    }
    true
}

impl ReachIndex for HierarchicalLabeling {
    fn name(&self) -> &'static str {
        "HL"
    }

    fn query(&self, u: VertexId, v: VertexId) -> bool {
        self.labeling.query(u, v)
    }

    fn size_in_integers(&self) -> u64 {
        self.labeling.size_in_integers()
    }

    fn memory_bytes(&self) -> u64 {
        // Include the 16 B/vertex signature arrays the default
        // 4·size_in_integers() knows nothing about.
        self.labeling.memory().total()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hoplite_graph::gen;

    fn small_cfg() -> HlConfig {
        // Force several levels even on tiny test graphs.
        HlConfig {
            eps: 2,
            core_size_limit: 8,
            max_levels: 10,
            ..HlConfig::default()
        }
    }

    fn assert_matches_bfs(dag: &Dag, hl: &HierarchicalLabeling) {
        let n = dag.num_vertices() as VertexId;
        for u in 0..n {
            for v in 0..n {
                assert_eq!(
                    hl.query(u, v),
                    traversal::reaches(dag.graph(), u, v),
                    "mismatch at ({u},{v})"
                );
            }
        }
    }

    #[test]
    fn diamond_complete() {
        let dag = Dag::from_edges(5, &[(0, 1), (0, 2), (1, 3), (2, 3), (3, 4)]).unwrap();
        let hl = HierarchicalLabeling::build(&dag, &small_cfg());
        assert_matches_bfs(&dag, &hl);
    }

    #[test]
    fn random_dags_complete() {
        for seed in 0..8 {
            let dag = gen::random_dag(60, 180, seed);
            let hl = HierarchicalLabeling::build(&dag, &small_cfg());
            assert_matches_bfs(&dag, &hl);
        }
    }

    #[test]
    fn complete_across_eps_values() {
        for eps in 1..=3 {
            for seed in 0..4 {
                let dag = gen::random_dag(50, 140, seed);
                let cfg = HlConfig { eps, ..small_cfg() };
                let hl = HierarchicalLabeling::build(&dag, &cfg);
                assert_matches_bfs(&dag, &hl);
            }
        }
    }

    #[test]
    fn tree_and_powerlaw_and_layered_complete() {
        for seed in 0..4 {
            let d = gen::tree_plus_dag(70, 20, seed);
            assert_matches_bfs(&d, &HierarchicalLabeling::build(&d, &small_cfg()));
            let d = gen::power_law_dag(70, 210, seed);
            assert_matches_bfs(&d, &HierarchicalLabeling::build(&d, &small_cfg()));
            let d = gen::layered_dag(70, 5, 160, seed);
            assert_matches_bfs(&d, &HierarchicalLabeling::build(&d, &small_cfg()));
        }
    }

    #[test]
    fn multi_level_hierarchy_actually_used() {
        let dag = gen::random_dag(400, 1200, 9);
        let hl = HierarchicalLabeling::build(&dag, &small_cfg());
        assert!(
            hl.level_sizes().len() >= 2,
            "expected a real hierarchy, got {:?}",
            hl.level_sizes()
        );
        assert_matches_bfs(&dag, &hl);
    }

    #[test]
    fn degenerate_inputs() {
        let dag = Dag::from_edges(0, &[]).unwrap();
        let hl = HierarchicalLabeling::build(&dag, &HlConfig::default());
        assert_eq!(hl.labeling().total_entries(), 0);

        let dag = Dag::from_edges(1, &[]).unwrap();
        let hl = HierarchicalLabeling::build(&dag, &HlConfig::default());
        assert!(hl.query(0, 0));

        let dag = Dag::from_edges(6, &[]).unwrap();
        let hl = HierarchicalLabeling::build(&dag, &HlConfig::default());
        for u in 0..6u32 {
            for v in 0..6u32 {
                assert_eq!(hl.query(u, v), u == v);
            }
        }
    }

    #[test]
    fn formula3_core_on_shallow_graph() {
        // A 2-level diamond mesh: every reachable pair within 2 steps,
        // so with a large core limit the whole graph is the core and
        // Formula 3 applies directly.
        let dag = Dag::from_edges(6, &[(0, 2), (0, 3), (1, 2), (1, 3), (2, 4), (3, 5)]).unwrap();
        let cfg = HlConfig {
            core_labeler: CoreLabeler::EpsilonNeighborhood,
            core_size_limit: 100,
            ..HlConfig::default()
        };
        let hl = HierarchicalLabeling::build(&dag, &cfg);
        assert!(
            hl.core_formula3_used(),
            "diameter 2 core must use Formula 3"
        );
        assert_matches_bfs(&dag, &hl);
    }

    #[test]
    fn formula3_falls_back_on_deep_core() {
        // A path of length 6: core diameter > 2, fallback to DL.
        let edges: Vec<_> = (0..6u32).map(|i| (i, i + 1)).collect();
        let dag = Dag::from_edges(7, &edges).unwrap();
        let cfg = HlConfig {
            core_labeler: CoreLabeler::EpsilonNeighborhood,
            core_size_limit: 100, // whole graph stays the core
            ..HlConfig::default()
        };
        let hl = HierarchicalLabeling::build(&dag, &cfg);
        assert!(!hl.core_formula3_used());
        assert_matches_bfs(&dag, &hl);
    }

    #[test]
    fn formula3_complete_on_random_dags_with_hierarchy() {
        // With a forced deep hierarchy the core may or may not satisfy
        // the diameter bound; either path must stay complete.
        for seed in 0..6 {
            let dag = gen::random_dag(60, 170, seed);
            let cfg = HlConfig {
                core_labeler: CoreLabeler::EpsilonNeighborhood,
                ..small_cfg()
            };
            let hl = HierarchicalLabeling::build(&dag, &cfg);
            assert_matches_bfs(&dag, &hl);
        }
    }

    #[test]
    fn diameter_check_is_exact() {
        // Diamond: all reachable pairs within 2.
        let dag = Dag::from_edges(4, &[(0, 1), (0, 2), (1, 3), (2, 3)]).unwrap();
        assert!(core_diameter_at_most(&dag, 2));
        assert!(!core_diameter_at_most(&dag, 1));
        // Edgeless: trivially within 0.
        let dag = Dag::from_edges(3, &[]).unwrap();
        assert!(core_diameter_at_most(&dag, 0));
    }

    /// §5's motivation for DL: HL can emit redundant hops. On a path
    /// graph with a forced deep hierarchy, some label entry can be
    /// removed without losing completeness.
    #[test]
    fn hl_labels_can_be_redundant() {
        use crate::label::sorted_intersect;
        let n = 40;
        let edges: Vec<_> = (0..n as u32 - 1).map(|i| (i, i + 1)).collect();
        let dag = Dag::from_edges(n, &edges).unwrap();
        let cfg = HlConfig {
            core_size_limit: 4,
            ..small_cfg()
        };
        let hl = HierarchicalLabeling::build(&dag, &cfg);
        let out: Vec<Vec<u32>> = (0..n as u32)
            .map(|v| hl.labeling().out_label(v).to_vec())
            .collect();
        let in_: Vec<Vec<u32>> = (0..n as u32)
            .map(|v| hl.labeling().in_label(v).to_vec())
            .collect();
        let complete = |out: &[Vec<u32>], in_: &[Vec<u32>]| {
            (0..n as u32).all(|u| {
                (0..n as u32).all(|v| {
                    (u == v || sorted_intersect(&out[u as usize], &in_[v as usize])) == (u <= v)
                })
            })
        };
        assert!(complete(&out, &in_));
        let mut found_redundant = false;
        'outer: for v in 0..n {
            for k in 0..out[v].len() {
                let mut trimmed = out.clone();
                trimmed[v].remove(k);
                if complete(&trimmed, &in_) {
                    found_redundant = true;
                    break 'outer;
                }
            }
        }
        assert!(
            found_redundant,
            "expected at least one redundant HL hop on a path graph"
        );
    }
}
