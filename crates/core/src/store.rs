//! Pluggable label storage: owned heap arrays or one shared mapped
//! arena.
//!
//! Every hot array in the index stack — label CSRs, rank-band
//! signatures, filter records, the component mapping — is held in a
//! [`Store<T>`]. A store is *born* one of two ways:
//!
//! * **Owned** — today's `Vec<T>`, produced by construction and by the
//!   HOPL v1 streaming loader. Nothing about the build pipeline
//!   changes.
//! * **Mapped** — a typed window into one page-aligned, reference-
//!   counted [`ArenaBuf`] (an `mmap` of a HOPL v3 file on unix, a
//!   page-aligned heap read elsewhere). Opening an index then costs
//!   O(header): the arrays are *addressed*, never copied, and any
//!   number of [`Store`]s — across namespaces, replicas, and reloads —
//!   share the single buffer through its `Arc`.
//!
//! The query path cannot tell the difference: a [`Store`] caches its
//! `(ptr, len)` pair inline and derefs to `&[T]` without branching on
//! the backing, so indexing compiles to exactly the loads a `Vec`
//! costs. That is the "zero query-path regression" contract the rest
//! of `hoplite-core` relies on.
//!
//! ## Safety model
//!
//! [`Pod`] marks the element types a mapped store may carry: `Copy`
//! types with no padding, no invalid bit patterns, and no pointers
//! (`u32`, `u64`, and the 32-byte `FilterRecord`). Reinterpreting
//! checksummed file bytes as `&[T]` is then defined behavior for any
//! byte content; *semantic* validation (monotone offsets, in-range
//! ids) is the arena reader's job (see [`crate::persist`]).

use std::fmt;
use std::fs::File;
use std::io::Read;
use std::path::Path;
use std::sync::Arc;

/// Alignment of every [`ArenaBuf`] and every section inside a HOPL v3
/// arena: one cache line on the serving hosts we target, and a common
/// divisor of every element alignment a store carries. (`mmap` returns
/// page-aligned memory, which is stricter still.)
pub const ARENA_ALIGN: usize = 64;

/// Which backing a store (or a whole index) lives in.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum StoreBackend {
    /// Process-private heap allocations (`Vec<T>`).
    Heap,
    /// A shared [`ArenaBuf`] window (mmap or page-aligned read).
    Mapped,
}

impl fmt::Display for StoreBackend {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreBackend::Heap => write!(f, "heap"),
            StoreBackend::Mapped => write!(f, "mapped"),
        }
    }
}

/// Marker for element types a mapped store may carry.
///
/// # Safety
/// Implementors must be `Copy`, have no padding bytes, no invalid bit
/// patterns, and no pointers or lifetimes — every byte string of
/// `size_of::<T>()` bytes at `align_of::<T>()` alignment must be a
/// valid `T`.
pub unsafe trait Pod: Copy + Send + Sync + 'static {}

unsafe impl Pod for u8 {}
unsafe impl Pod for u32 {}
unsafe impl Pod for u64 {}

// ---------------------------------------------------------------------
// ArenaBuf: one page-aligned immutable byte buffer
// ---------------------------------------------------------------------

/// The raw bytes behind a mapped index: an immutable, [`ARENA_ALIGN`]ed
/// (in practice page-aligned) buffer, shared via `Arc`.
///
/// On unix the file-backed constructor uses `mmap(2)` through a small
/// std-only `extern "C"` shim, so opening a multi-GB index costs no
/// read I/O up front and replicas of the same file share page-cache
/// memory. Elsewhere (or when the map is declined) the file is read
/// into one aligned heap allocation instead — same layout, same code
/// paths, just private memory.
pub struct ArenaBuf {
    ptr: *const u8,
    len: usize,
    kind: BufKind,
}

enum BufKind {
    /// Allocated with [`ARENA_ALIGN`] via `std::alloc`; freed on drop.
    Heap,
    /// `mmap`ed; `munmap`ed on drop. Unix only.
    #[cfg_attr(not(unix), allow(dead_code))]
    Mmap,
    /// Zero-length buffer: nothing to free.
    Empty,
}

// SAFETY: the buffer is immutable for its whole lifetime (PROT_READ /
// never handed out mutably), so shared references are fine across
// threads.
unsafe impl Send for ArenaBuf {}
unsafe impl Sync for ArenaBuf {}

impl ArenaBuf {
    fn layout(len: usize) -> std::alloc::Layout {
        std::alloc::Layout::from_size_align(len, ARENA_ALIGN).expect("arena layout")
    }

    /// Copies `bytes` into a fresh aligned heap buffer (tests, and
    /// network-shipped indexes that never touch a file).
    pub fn from_bytes(bytes: &[u8]) -> ArenaBuf {
        if bytes.is_empty() {
            return ArenaBuf {
                ptr: std::ptr::NonNull::<u8>::dangling().as_ptr(),
                len: 0,
                kind: BufKind::Empty,
            };
        }
        // SAFETY: len > 0; the allocation is fully initialized below.
        let ptr = unsafe { std::alloc::alloc(Self::layout(bytes.len())) };
        assert!(!ptr.is_null(), "arena allocation failed");
        unsafe { std::ptr::copy_nonoverlapping(bytes.as_ptr(), ptr, bytes.len()) };
        ArenaBuf {
            ptr,
            len: bytes.len(),
            kind: BufKind::Heap,
        }
    }

    /// Reads `path` into an aligned heap buffer — the portable
    /// fallback backend.
    pub fn read_file(path: &Path) -> std::io::Result<ArenaBuf> {
        let mut file = File::open(path)?;
        let len = file.metadata()?.len();
        if len > usize::MAX as u64 {
            return Err(std::io::Error::other("file exceeds the address space"));
        }
        Self::from_prefix_and_reader(&[], len as usize, &mut file)
    }

    /// Fills an aligned buffer of exactly `total_len` bytes from
    /// `prefix` followed by `r`. Errors (without leaking) if `r` ends
    /// early or an allocation fails.
    ///
    /// The claimed length is *not* trusted up front: the buffer grows
    /// geometrically (starting at 4 MiB) and only ever exceeds the
    /// bytes actually received by a constant factor, so a hostile
    /// stream whose header claims terabytes fails at the EOF it
    /// implies instead of forcing a terabyte allocation — the same
    /// fail-at-EOF discipline the HOPL v1 reader applies to its
    /// length fields.
    pub fn from_prefix_and_reader(
        prefix: &[u8],
        total_len: usize,
        r: &mut impl Read,
    ) -> std::io::Result<ArenaBuf> {
        const INITIAL_CAP: usize = 4 << 20;
        assert!(prefix.len() <= total_len, "prefix exceeds the total");
        if total_len == 0 {
            return Ok(ArenaBuf::from_bytes(&[]));
        }
        let alloc_aligned = |cap: usize| -> std::io::Result<*mut u8> {
            // SAFETY: cap > 0; callers fill before exposing the bytes.
            let ptr = unsafe { std::alloc::alloc(Self::layout(cap)) };
            if ptr.is_null() {
                return Err(std::io::Error::other(format!(
                    "arena allocation of {cap} bytes failed"
                )));
            }
            Ok(ptr)
        };
        let mut cap = total_len.min(INITIAL_CAP.max(prefix.len()));
        let mut ptr = alloc_aligned(cap)?;
        // Wrap immediately so every early return frees the buffer;
        // `len` tracks the capacity until the final resize.
        let mut buf = ArenaBuf {
            ptr,
            len: cap,
            kind: BufKind::Heap,
        };
        // SAFETY: ptr is valid for cap writes; the slice is re-derived
        // after every growth.
        let head = unsafe { std::slice::from_raw_parts_mut(ptr, cap) };
        head[..prefix.len()].copy_from_slice(prefix);
        let mut filled = prefix.len();
        while filled < total_len {
            if filled == cap {
                let new_cap = (cap * 2).min(total_len);
                let new_ptr = alloc_aligned(new_cap)?;
                // SAFETY: disjoint allocations; `filled` bytes are
                // initialized in the old buffer.
                unsafe { std::ptr::copy_nonoverlapping(ptr, new_ptr, filled) };
                let old = std::mem::replace(
                    &mut buf,
                    ArenaBuf {
                        ptr: new_ptr,
                        len: new_cap,
                        kind: BufKind::Heap,
                    },
                );
                drop(old);
                ptr = new_ptr;
                cap = new_cap;
            }
            // SAFETY: filled < cap; the tail is about to be written.
            let dst = unsafe { std::slice::from_raw_parts_mut(ptr.add(filled), cap - filled) };
            match r.read(dst)? {
                0 => {
                    return Err(std::io::Error::new(
                        std::io::ErrorKind::UnexpectedEof,
                        format!("stream ended after {filled} of {total_len} claimed bytes"),
                    ))
                }
                k => filled += k,
            }
        }
        debug_assert_eq!(cap, total_len);
        Ok(buf)
    }

    /// Maps `path` read-only. Unix: `mmap(2)`; elsewhere this falls
    /// back to [`ArenaBuf::read_file`] (the caller still gets one
    /// aligned shared buffer, just not a demand-paged one). The
    /// returned buffer reports [`StoreBackend::Mapped`] only when a
    /// real map was established.
    pub fn map_file(path: &Path) -> std::io::Result<ArenaBuf> {
        Self::map_file_impl(path, false)
    }

    /// [`ArenaBuf::map_file`], but asks the kernel to wire the whole
    /// file into the page table up front (Linux `MAP_POPULATE`; a
    /// plain map elsewhere). The right call when the open is about to
    /// touch every page anyway — checksum verification, `--prefault` —
    /// since batched population is much cheaper than faulting page by
    /// page.
    pub fn map_file_populated(path: &Path) -> std::io::Result<ArenaBuf> {
        Self::map_file_impl(path, true)
    }

    #[cfg_attr(not(unix), allow(unused_variables))]
    fn map_file_impl(path: &Path, populate: bool) -> std::io::Result<ArenaBuf> {
        #[cfg(unix)]
        {
            let file = File::open(path)?;
            let len = file.metadata()?.len();
            if len == 0 {
                return Ok(ArenaBuf::from_bytes(&[]));
            }
            if len > usize::MAX as u64 {
                return Err(std::io::Error::other("file exceeds the address space"));
            }
            let ptr = unsafe { sys::mmap_readonly(&file, len as usize, populate) }?;
            Ok(ArenaBuf {
                ptr,
                len: len as usize,
                kind: BufKind::Mmap,
            })
        }
        #[cfg(not(unix))]
        {
            Self::read_file(path)
        }
    }

    /// The whole buffer.
    #[inline]
    pub fn bytes(&self) -> &[u8] {
        // SAFETY: ptr/len describe one live, immutable allocation.
        unsafe { std::slice::from_raw_parts(self.ptr, self.len) }
    }

    /// Buffer length in bytes.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Is the buffer empty?
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// [`StoreBackend::Mapped`] iff a real `mmap` backs the bytes.
    pub fn backend(&self) -> StoreBackend {
        match self.kind {
            BufKind::Mmap => StoreBackend::Mapped,
            BufKind::Heap | BufKind::Empty => StoreBackend::Heap,
        }
    }

    /// Touches one byte per page so a freshly mapped index is resident
    /// before the first query lands (the `--prefault` serving flag).
    /// Returns the number of pages walked.
    pub fn prefault(&self) -> usize {
        const PAGE: usize = 4096;
        let mut pages = 0usize;
        let mut off = 0usize;
        while off < self.len {
            // Volatile so the walk is not optimized away.
            // SAFETY: off < len, inside the live buffer.
            unsafe { std::ptr::read_volatile(self.ptr.add(off)) };
            pages += 1;
            off += PAGE;
        }
        pages
    }
}

impl fmt::Debug for ArenaBuf {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ArenaBuf")
            .field("len", &self.len)
            .field("backend", &self.backend())
            .finish()
    }
}

impl Drop for ArenaBuf {
    fn drop(&mut self) {
        match self.kind {
            BufKind::Empty => {}
            BufKind::Heap => {
                // SAFETY: allocated with the same layout in this module.
                unsafe { std::alloc::dealloc(self.ptr as *mut u8, Self::layout(self.len)) };
            }
            BufKind::Mmap => {
                #[cfg(unix)]
                // SAFETY: exactly the region mmap returned.
                unsafe {
                    sys::munmap_region(self.ptr, self.len)
                };
            }
        }
    }
}

/// The std-only `mmap(2)` shim. Declaring the two libc entry points
/// directly keeps the workspace dependency-free; the constants are the
/// POSIX values shared by Linux and the BSDs/macOS.
#[cfg(unix)]
mod sys {
    use std::fs::File;
    use std::os::unix::io::AsRawFd;

    const PROT_READ: i32 = 0x1;
    const MAP_PRIVATE: i32 = 0x2;
    /// Linux-only batched page-table population; other unixes get a
    /// plain lazy map (the flag would be rejected there).
    #[cfg(target_os = "linux")]
    const MAP_POPULATE: i32 = 0x8000;
    #[cfg(not(target_os = "linux"))]
    const MAP_POPULATE: i32 = 0;

    extern "C" {
        fn mmap(
            addr: *mut std::ffi::c_void,
            len: usize,
            prot: i32,
            flags: i32,
            fd: i32,
            offset: i64,
        ) -> *mut std::ffi::c_void;
        fn munmap(addr: *mut std::ffi::c_void, len: usize) -> i32;
    }

    /// Maps `len` bytes of `file` read-only from offset 0.
    ///
    /// # Safety
    /// `len` must not exceed the file length (reads past EOF fault).
    pub(super) unsafe fn mmap_readonly(
        file: &File,
        len: usize,
        populate: bool,
    ) -> std::io::Result<*const u8> {
        let ptr = mmap(
            std::ptr::null_mut(),
            len,
            PROT_READ,
            MAP_PRIVATE | if populate { MAP_POPULATE } else { 0 },
            file.as_raw_fd(),
            0,
        );
        if ptr as isize == -1 {
            return Err(std::io::Error::last_os_error());
        }
        Ok(ptr as *const u8)
    }

    /// Unmaps a region previously returned by [`mmap_readonly`].
    ///
    /// # Safety
    /// `(ptr, len)` must be exactly one live mapping.
    pub(super) unsafe fn munmap_region(ptr: *const u8, len: usize) {
        let rc = munmap(ptr as *mut std::ffi::c_void, len);
        debug_assert_eq!(rc, 0, "munmap failed");
    }
}

// ---------------------------------------------------------------------
// Store<T>
// ---------------------------------------------------------------------

enum Backing<T: Pod> {
    Owned(Vec<T>),
    Mapped(Arc<ArenaBuf>),
}

/// One immutable typed array, owned (`Vec<T>`) or mapped (a window
/// into a shared [`ArenaBuf`]).
///
/// Derefs to `&[T]` through an inline `(ptr, len)` pair — no branch on
/// the backing, so the query path pays exactly what a `Vec` costs.
/// Cloning an owned store clones the vector; cloning a mapped store
/// bumps the arena's `Arc` (this is what makes snapshot fan-out free).
pub struct Store<T: Pod> {
    ptr: *const T,
    len: usize,
    backing: Backing<T>,
}

// SAFETY: the pointed-to memory is immutable (owned Vecs are never
// touched again; arenas are read-only) and `T: Pod` is Send + Sync.
unsafe impl<T: Pod> Send for Store<T> {}
unsafe impl<T: Pod> Sync for Store<T> {}

impl<T: Pod> Store<T> {
    /// Wraps a vector; the backing stays on the heap.
    pub fn from_vec(v: Vec<T>) -> Store<T> {
        let (ptr, len) = (v.as_ptr(), v.len());
        Store {
            ptr,
            len,
            backing: Backing::Owned(v),
        }
    }

    /// A typed window of `len` elements at `byte_offset` into `buf`.
    ///
    /// Fails (with a static description) if the window is out of
    /// bounds, misaligned for `T`, or its byte length would overflow —
    /// the arena reader turns these into format errors.
    pub fn mapped(
        buf: &Arc<ArenaBuf>,
        byte_offset: usize,
        len: usize,
    ) -> Result<Store<T>, &'static str> {
        let size = std::mem::size_of::<T>();
        let byte_len = len.checked_mul(size).ok_or("section length overflows")?;
        let end = byte_offset
            .checked_add(byte_len)
            .ok_or("section end overflows")?;
        if end > buf.len() {
            return Err("section exceeds the buffer");
        }
        // The buffer base is ARENA_ALIGN-aligned, so offset alignment
        // relative to the base equals absolute alignment.
        if byte_offset % std::mem::align_of::<T>() != 0 {
            return Err("section offset misaligned for its element type");
        }
        let ptr = if len == 0 {
            std::ptr::NonNull::<T>::dangling().as_ptr() as *const T
        } else {
            // SAFETY: in bounds of the live buffer (checked above).
            unsafe { buf.bytes().as_ptr().add(byte_offset) as *const T }
        };
        Ok(Store {
            ptr,
            len,
            backing: Backing::Mapped(Arc::clone(buf)),
        })
    }

    /// Which backing holds the elements. An arena window delegates to
    /// its buffer: a real `mmap` reports [`StoreBackend::Mapped`],
    /// while the heap-read fallback honestly reports
    /// [`StoreBackend::Heap`] — operators size RSS from this split,
    /// so "mapped" must mean page cache, not private memory.
    pub fn backend(&self) -> StoreBackend {
        match &self.backing {
            Backing::Owned(_) => StoreBackend::Heap,
            Backing::Mapped(buf) => buf.backend(),
        }
    }

    /// Bytes of process-private heap behind this store (owned vectors,
    /// or its window of a heap-read arena buffer).
    pub fn heap_bytes(&self) -> u64 {
        match self.backend() {
            StoreBackend::Heap => match &self.backing {
                Backing::Owned(v) => (v.capacity() * std::mem::size_of::<T>()) as u64,
                Backing::Mapped(_) => (self.len * std::mem::size_of::<T>()) as u64,
            },
            StoreBackend::Mapped => 0,
        }
    }

    /// Bytes addressed inside a real file mapping (0 for owned stores
    /// and for windows of heap-read arena buffers).
    pub fn mapped_bytes(&self) -> u64 {
        match self.backend() {
            StoreBackend::Mapped => (self.len * std::mem::size_of::<T>()) as u64,
            StoreBackend::Heap => 0,
        }
    }
}

impl<T: Pod> std::ops::Deref for Store<T> {
    type Target = [T];

    #[inline]
    fn deref(&self) -> &[T] {
        // SAFETY: ptr/len describe immutable, live, aligned memory for
        // both backings; `T: Pod` makes any byte content a valid `T`.
        unsafe { std::slice::from_raw_parts(self.ptr, self.len) }
    }
}

impl<T: Pod> Clone for Store<T> {
    fn clone(&self) -> Store<T> {
        match &self.backing {
            Backing::Owned(v) => Store::from_vec(v.clone()),
            Backing::Mapped(buf) => {
                // Same window, one more Arc holder.
                Store {
                    ptr: self.ptr,
                    len: self.len,
                    backing: Backing::Mapped(Arc::clone(buf)),
                }
            }
        }
    }
}

impl<T: Pod + fmt::Debug> fmt::Debug for Store<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Store")
            .field("backend", &self.backend())
            .field("len", &self.len)
            .finish()
    }
}

impl<T: Pod> From<Vec<T>> for Store<T> {
    fn from(v: Vec<T>) -> Store<T> {
        Store::from_vec(v)
    }
}

/// Heap-vs-mapped byte split of an index component — the unit the
/// memory-accounting satellite APIs ([`crate::Oracle::memory`],
/// [`crate::LabelStats`], the server `STATS` reply) report in.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct MemorySplit {
    /// Process-private heap bytes.
    pub heap_bytes: u64,
    /// Bytes addressed inside shared mapped arenas.
    pub mapped_bytes: u64,
}

impl MemorySplit {
    /// Total footprint, both backings.
    pub fn total(&self) -> u64 {
        self.heap_bytes + self.mapped_bytes
    }

    /// Folds another component in.
    pub fn add(&mut self, other: MemorySplit) {
        self.heap_bytes += other.heap_bytes;
        self.mapped_bytes += other.mapped_bytes;
    }

    /// The split of one store.
    pub fn of<T: Pod>(store: &Store<T>) -> MemorySplit {
        MemorySplit {
            heap_bytes: store.heap_bytes(),
            mapped_bytes: store.mapped_bytes(),
        }
    }

    /// [`StoreBackend::Mapped`] iff any component is mapped.
    pub fn backend(&self) -> StoreBackend {
        if self.mapped_bytes > 0 {
            StoreBackend::Mapped
        } else {
            StoreBackend::Heap
        }
    }
}

const CHECKSUM_SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

#[inline]
fn checksum_mix(acc: u64, word: u64) -> u64 {
    (acc.rotate_left(5) ^ word).wrapping_mul(CHECKSUM_SEED)
}

/// Incremental form of [`checksum`]: feed bytes in arbitrary splits
/// via [`ChecksumStream::update`]; `finish` yields exactly the value
/// `checksum` computes over the concatenation. Lets the arena writer
/// checksum sections it streams to disk without materializing them.
pub struct ChecksumStream {
    lanes: [u64; 4],
    /// Carry for a partial 32-byte block between updates.
    pending: [u8; 32],
    pending_len: usize,
    total: u64,
}

impl ChecksumStream {
    /// Fresh state.
    #[allow(clippy::new_without_default)]
    pub fn new() -> ChecksumStream {
        ChecksumStream {
            // Distinct lane seeds so a 32-byte block permutation
            // cannot cancel.
            lanes: [
                0x243F_6A88_85A3_08D3u64,
                0x1319_8A2E_0370_7344,
                0xA409_3822_299F_31D0,
                0x082E_FA98_EC4E_6C89,
            ],
            pending: [0u8; 32],
            pending_len: 0,
            total: 0,
        }
    }

    #[inline]
    fn absorb(lanes: &mut [u64; 4], block: &[u8]) {
        for (i, lane) in lanes.iter_mut().enumerate() {
            let word = u64::from_le_bytes(block[i * 8..i * 8 + 8].try_into().expect("8 bytes"));
            *lane = checksum_mix(*lane, word);
        }
    }

    /// Feeds more bytes.
    pub fn update(&mut self, mut bytes: &[u8]) {
        self.total += bytes.len() as u64;
        if self.pending_len > 0 {
            let take = (32 - self.pending_len).min(bytes.len());
            self.pending[self.pending_len..self.pending_len + take].copy_from_slice(&bytes[..take]);
            self.pending_len += take;
            bytes = &bytes[take..];
            if self.pending_len < 32 {
                return;
            }
            let block = self.pending;
            Self::absorb(&mut self.lanes, &block);
            self.pending_len = 0;
        }
        let mut chunks = bytes.chunks_exact(32);
        for block in &mut chunks {
            Self::absorb(&mut self.lanes, block);
        }
        let rem = chunks.remainder();
        self.pending[..rem.len()].copy_from_slice(rem);
        self.pending_len = rem.len();
    }

    /// The checksum over everything fed so far.
    pub fn finish(mut self) -> u64 {
        // Tail: zero-pad the final partial block into lane rotation.
        for (i, c) in self.pending[..self.pending_len].chunks(8).enumerate() {
            let mut buf = [0u8; 8];
            buf[..c.len()].copy_from_slice(c);
            self.lanes[i] = checksum_mix(self.lanes[i], u64::from_le_bytes(buf));
        }
        // Fold the lanes and the length, so "same bytes, different
        // split" and zero-extension corruptions cannot collide
        // trivially.
        let mut h = self.lanes[0];
        for &lane in &self.lanes[1..] {
            h = checksum_mix(h, lane);
        }
        checksum_mix(h, self.total)
    }
}

/// The arena checksum: a 4-lane Fx-style multiply-rotate hash. Not
/// cryptographic — it authenticates *accidental* corruption
/// (truncation, bit rot, torn writes), which is the failure mode a
/// serving replica meets. The four independent accumulators break the
/// multiply dependency chain, so verification runs at memory
/// bandwidth and stays off the cold-start critical path even on
/// multi-GB arenas.
pub fn checksum(bytes: &[u8]) -> u64 {
    let mut s = ChecksumStream::new();
    s.update(bytes);
    s.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn owned_store_derefs_like_a_vec() {
        let s = Store::from_vec(vec![3u32, 1, 4, 1, 5]);
        assert_eq!(&s[..], &[3, 1, 4, 1, 5]);
        assert_eq!(s.backend(), StoreBackend::Heap);
        assert!(s.heap_bytes() >= 20);
        assert_eq!(s.mapped_bytes(), 0);
        let c = s.clone();
        assert_eq!(&c[..], &s[..]);
    }

    #[test]
    fn mapped_store_reads_arena_bytes() {
        let mut bytes = vec![0u8; 64 + 16];
        bytes[64..68].copy_from_slice(&7u32.to_le_bytes());
        bytes[68..72].copy_from_slice(&9u32.to_le_bytes());
        let buf = Arc::new(ArenaBuf::from_bytes(&bytes));
        assert_eq!(buf.backend(), StoreBackend::Heap);
        let s: Store<u32> = Store::mapped(&buf, 64, 2).unwrap();
        assert_eq!(&s[..], &[7, 9]);
        // A window of a heap-read buffer reports heap: the split is an
        // RSS report, and these bytes are private memory.
        assert_eq!(s.backend(), StoreBackend::Heap);
        assert_eq!(s.mapped_bytes(), 0);
        assert_eq!(s.heap_bytes(), 8);
        // Clones share the same arena.
        let c = s.clone();
        drop(s);
        assert_eq!(&c[..], &[7, 9]);
    }

    #[test]
    fn mapped_store_rejects_bad_windows() {
        let buf = Arc::new(ArenaBuf::from_bytes(&[0u8; 64]));
        assert!(Store::<u32>::mapped(&buf, 0, 17).is_err(), "out of bounds");
        assert!(Store::<u64>::mapped(&buf, 4, 2).is_err(), "misaligned");
        assert!(
            Store::<u64>::mapped(&buf, 0, usize::MAX / 4).is_err(),
            "overflow"
        );
        assert!(Store::<u32>::mapped(&buf, 64, 0).is_ok(), "empty at end");
    }

    #[test]
    fn arena_alignment_covers_every_pod_type() {
        let buf = ArenaBuf::from_bytes(&[1u8; 640]);
        assert_eq!(buf.bytes().as_ptr() as usize % ARENA_ALIGN, 0);
        assert_eq!(buf.prefault(), 1, "one page touched");
    }

    #[test]
    fn empty_arena_is_safe() {
        let buf = ArenaBuf::from_bytes(&[]);
        assert!(buf.is_empty());
        assert_eq!(buf.prefault(), 0);
        let s: Store<u64> = Store::mapped(&Arc::new(buf), 0, 0).unwrap();
        assert!(s.is_empty());
    }

    #[test]
    fn map_file_roundtrips_real_bytes() {
        let path = std::env::temp_dir().join(format!("hoplite-store-test-{}", std::process::id()));
        std::fs::write(&path, [0xABu8; 8192]).unwrap();
        let mapped = ArenaBuf::map_file(&path).unwrap();
        let read = ArenaBuf::read_file(&path).unwrap();
        assert_eq!(mapped.bytes(), read.bytes());
        assert_eq!(mapped.len(), 8192);
        #[cfg(unix)]
        assert_eq!(mapped.backend(), StoreBackend::Mapped);
        assert_eq!(read.backend(), StoreBackend::Heap);
        assert_eq!(mapped.prefault(), 2);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn checksum_stream_matches_one_shot_across_splits() {
        let data: Vec<u8> = (0..977u32).map(|i| (i * 37 % 251) as u8).collect();
        let want = checksum(&data);
        for splits in [
            vec![977usize],
            vec![1; 977],
            vec![32, 64, 881],
            vec![7, 13, 100, 857],
            vec![31, 1, 945],
        ] {
            let mut s = ChecksumStream::new();
            let mut at = 0;
            for len in splits {
                s.update(&data[at..at + len]);
                at += len;
            }
            assert_eq!(at, data.len());
            assert_eq!(s.finish(), want);
        }
    }

    #[test]
    fn from_prefix_and_reader_concatenates() {
        let tail = [5u8; 100];
        let buf =
            ArenaBuf::from_prefix_and_reader(&[1, 2, 3], 103, &mut std::io::Cursor::new(&tail))
                .unwrap();
        assert_eq!(&buf.bytes()[..3], &[1, 2, 3]);
        assert_eq!(&buf.bytes()[3..], &tail[..]);
        // Short reader errors instead of returning a half-filled buffer.
        assert!(
            ArenaBuf::from_prefix_and_reader(&[], 10, &mut std::io::Cursor::new(&[0u8; 4]))
                .is_err()
        );
    }

    #[test]
    fn checksum_sees_every_byte_and_the_length() {
        let a = checksum(b"hoplite arena");
        let mut corrupted = b"hoplite arena".to_vec();
        corrupted[5] ^= 1;
        assert_ne!(a, checksum(&corrupted));
        assert_ne!(checksum(b""), checksum(&[0u8]));
        assert_ne!(checksum(&[0u8]), checksum(&[0u8, 0]));
        assert_eq!(a, checksum(b"hoplite arena"), "deterministic");
    }

    #[test]
    fn memory_split_folds() {
        let mut m = MemorySplit::default();
        assert_eq!(m.backend(), StoreBackend::Heap);
        m.add(MemorySplit {
            heap_bytes: 10,
            mapped_bytes: 0,
        });
        m.add(MemorySplit {
            heap_bytes: 0,
            mapped_bytes: 32,
        });
        assert_eq!(m.total(), 42);
        assert_eq!(m.backend(), StoreBackend::Mapped);
    }
}
