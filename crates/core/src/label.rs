//! Hop-label storage and the sorted-list intersection query.
//!
//! The paper observes (§1) that earlier hop-labeling implementations
//! lost up to an order of magnitude of query performance by storing
//! `L_out`/`L_in` as hash sets; *sorted arrays with a merge
//! intersection* close the gap. [`Labeling`] therefore keeps all labels
//! in two flat CSR arrays of sorted `u32` hop ids — one cache-friendly
//! slice lookup per side, then a linear merge.
//!
//! Hop ids are opaque: Distribution-Labeling stores *ranks* (its hops
//! arrive in rank order, so lists are born sorted), while
//! Hierarchical-Labeling stores original vertex ids. Queries only need
//! the two sides to share a namespace.

use hoplite_graph::VertexId;

use crate::stats::LabelStats;

/// `true` iff two ascending-sorted slices share an element.
///
/// This is the entire query path of a reachability oracle:
/// `O(|L_out(u)| + |L_in(v)|)`.
///
/// ```
/// use hoplite_core::sorted_intersect;
/// assert!(sorted_intersect(&[1, 4, 9], &[2, 4]));
/// assert!(!sorted_intersect(&[1, 4, 9], &[2, 5]));
/// ```
#[inline]
pub fn sorted_intersect(a: &[u32], b: &[u32]) -> bool {
    // O(1) disjointness pre-check: if the ranges don't overlap (one
    // list ends before the other starts) the merge cannot hit. Hop
    // labels are rank-banded, so this fires often in practice.
    let (Some(&a_last), Some(&b_last)) = (a.last(), b.last()) else {
        return false;
    };
    if a_last < b[0] || b_last < a[0] {
        return false;
    }
    let (mut i, mut j) = (0usize, 0usize);
    while i < a.len() && j < b.len() {
        let (x, y) = (a[i], b[j]);
        if x == y {
            return true;
        }
        // Branch-light advance: exactly one cursor moves per step.
        i += (x < y) as usize;
        j += (y < x) as usize;
    }
    false
}

/// Size-adaptive intersection: when one list is much shorter, gallop
/// (exponential + binary search) through the longer one instead of
/// merging — `O(s·log(L/s))` versus `O(s + L)`. The plain merge wins
/// on the near-equal lengths hop labels usually have (see the
/// `label_repr` bench), so [`Labeling::query`] keeps the merge; this
/// exists for workloads with pathologically skewed lists.
pub fn sorted_intersect_adaptive(a: &[u32], b: &[u32]) -> bool {
    let (small, large) = if a.len() <= b.len() { (a, b) } else { (b, a) };
    if small.is_empty() {
        return false;
    }
    // Heuristic crossover: gallop only on a ~16x size imbalance.
    if large.len() / small.len().max(1) < 16 {
        return sorted_intersect(a, b);
    }
    let mut lo = 0usize;
    for &x in small {
        // Gallop from the last position until large[hi] >= x (or end).
        let mut step = 1usize;
        let mut hi = lo;
        while hi < large.len() && large[hi] < x {
            hi = (hi + step).min(large.len());
            step *= 2;
        }
        // The stop position itself may hold x: include it in the window.
        let end = (hi + 1).min(large.len());
        match large[lo..end].binary_search(&x) {
            Ok(_) => return true,
            Err(pos) => lo += pos,
        }
        if lo >= large.len() {
            return false;
        }
    }
    false
}

/// Mutable per-vertex label lists used during construction.
///
/// Finish with [`LabelingBuilder::finish`] (lists must already be
/// sorted, e.g. hops appended in rank order) or
/// [`LabelingBuilder::finish_sorting`] (sorts and dedups first).
#[derive(Clone, Debug)]
pub struct LabelingBuilder {
    /// `out[v]` = hops reached from `v`.
    pub out: Vec<Vec<u32>>,
    /// `in_[v]` = hops reaching `v`.
    pub in_: Vec<Vec<u32>>,
}

impl LabelingBuilder {
    /// Empty labels for `n` vertices.
    pub fn new(n: usize) -> Self {
        LabelingBuilder {
            out: vec![Vec::new(); n],
            in_: vec![Vec::new(); n],
        }
    }

    /// Number of vertices.
    pub fn num_vertices(&self) -> usize {
        self.out.len()
    }

    /// Freezes into a [`Labeling`], asserting (in debug builds) that
    /// every list is strictly ascending.
    pub fn finish(self) -> Labeling {
        debug_assert!(self
            .out
            .iter()
            .chain(self.in_.iter())
            .all(|l| l.windows(2).all(|w| w[0] < w[1])));
        Labeling::from_lists(&self.out, &self.in_)
    }

    /// Sorts and dedups every list, then freezes.
    pub fn finish_sorting(mut self) -> Labeling {
        for l in self.out.iter_mut().chain(self.in_.iter_mut()) {
            l.sort_unstable();
            l.dedup();
        }
        Labeling::from_lists(&self.out, &self.in_)
    }
}

/// Immutable hop labels in CSR form: the complete reachability oracle.
#[derive(Clone, Debug)]
pub struct Labeling {
    out_offsets: Vec<u32>,
    out_hops: Vec<u32>,
    in_offsets: Vec<u32>,
    in_hops: Vec<u32>,
}

impl Labeling {
    fn from_lists(out: &[Vec<u32>], in_: &[Vec<u32>]) -> Self {
        fn pack(lists: &[Vec<u32>]) -> (Vec<u32>, Vec<u32>) {
            let total: usize = lists.iter().map(Vec::len).sum();
            assert!(
                (total as u64) < u32::MAX as u64,
                "label entries exceed u32 offset space"
            );
            let mut offsets = Vec::with_capacity(lists.len() + 1);
            let mut hops = Vec::with_capacity(total);
            offsets.push(0u32);
            for l in lists {
                hops.extend_from_slice(l);
                offsets.push(hops.len() as u32);
            }
            (offsets, hops)
        }
        let (out_offsets, out_hops) = pack(out);
        let (in_offsets, in_hops) = pack(in_);
        Labeling {
            out_offsets,
            out_hops,
            in_offsets,
            in_hops,
        }
    }

    /// Number of vertices labeled.
    pub fn num_vertices(&self) -> usize {
        self.out_offsets.len() - 1
    }

    /// `L_out(v)`: sorted hop ids `v` reaches.
    #[inline]
    pub fn out_label(&self, v: VertexId) -> &[u32] {
        let lo = self.out_offsets[v as usize] as usize;
        let hi = self.out_offsets[v as usize + 1] as usize;
        &self.out_hops[lo..hi]
    }

    /// `L_in(v)`: sorted hop ids reaching `v`.
    #[inline]
    pub fn in_label(&self, v: VertexId) -> &[u32] {
        let lo = self.in_offsets[v as usize] as usize;
        let hi = self.in_offsets[v as usize + 1] as usize;
        &self.in_hops[lo..hi]
    }

    /// The oracle query: `u` reaches `v` iff the labels intersect.
    /// Reflexive: `query(v, v)` is `true`.
    #[inline]
    pub fn query(&self, u: VertexId, v: VertexId) -> bool {
        u == v || sorted_intersect(self.out_label(u), self.in_label(v))
    }

    /// Total label entries `Σ (|L_out(v)| + |L_in(v)|)` — the
    /// paper's index-size metric (Figures 3–4 count integers).
    pub fn total_entries(&self) -> u64 {
        (self.out_hops.len() + self.in_hops.len()) as u64
    }

    /// Size in stored integers, including the CSR offset arrays.
    pub fn size_in_integers(&self) -> u64 {
        self.total_entries() + (self.out_offsets.len() + self.in_offsets.len()) as u64
    }

    /// Distribution statistics over label lengths.
    pub fn stats(&self) -> LabelStats {
        LabelStats::from_labeling(self)
    }

    /// Raw CSR parts `(out_offsets, out_hops, in_offsets, in_hops)` —
    /// the persistence layer's view.
    pub(crate) fn csr_parts(&self) -> (&[u32], &[u32], &[u32], &[u32]) {
        (
            &self.out_offsets,
            &self.out_hops,
            &self.in_offsets,
            &self.in_hops,
        )
    }

    /// Rebuilds from raw CSR parts. The caller (the persistence layer)
    /// must have validated monotone offsets and sorted hop lists.
    pub(crate) fn from_csr_unchecked(
        out_offsets: Vec<u32>,
        out_hops: Vec<u32>,
        in_offsets: Vec<u32>,
        in_hops: Vec<u32>,
    ) -> Self {
        debug_assert_eq!(out_offsets.len(), in_offsets.len());
        debug_assert_eq!(*out_offsets.last().unwrap_or(&0) as usize, out_hops.len());
        debug_assert_eq!(*in_offsets.last().unwrap_or(&0) as usize, in_hops.len());
        Labeling {
            out_offsets,
            out_hops,
            in_offsets,
            in_hops,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sorted_intersect_cases() {
        assert!(sorted_intersect(&[1, 3, 5], &[2, 3]));
        assert!(!sorted_intersect(&[1, 3, 5], &[2, 4, 6]));
        assert!(!sorted_intersect(&[], &[1]));
        assert!(!sorted_intersect(&[1], &[]));
        assert!(sorted_intersect(&[7], &[7]));
        assert!(sorted_intersect(&[1, 2, 3, 4, 5], &[5]));
        assert!(sorted_intersect(&[5], &[1, 2, 3, 4, 5]));
    }

    #[test]
    fn disjoint_ranges_short_circuit() {
        // Entirely below / entirely above: the O(1) pre-check path.
        assert!(!sorted_intersect(&[1, 2, 3], &[4, 5, 6]));
        assert!(!sorted_intersect(&[4, 5, 6], &[1, 2, 3]));
        // Touching boundaries still intersect.
        assert!(sorted_intersect(&[1, 2, 4], &[4, 9]));
        assert!(sorted_intersect(&[4, 9], &[1, 2, 4]));
    }

    #[test]
    fn adaptive_matches_merge_on_many_shapes() {
        use hoplite_graph::gen::Rng;
        let mut rng = Rng::new(31337);
        for _ in 0..500 {
            let la = rng.gen_index(40);
            let lb = if rng.gen_bool(0.5) {
                rng.gen_index(40)
            } else {
                rng.gen_index(2000) // force the galloping path
            };
            let mut a: Vec<u32> = (0..la).map(|_| rng.gen_range(5000) as u32).collect();
            let mut b: Vec<u32> = (0..lb).map(|_| rng.gen_range(5000) as u32).collect();
            a.sort_unstable();
            a.dedup();
            b.sort_unstable();
            b.dedup();
            assert_eq!(
                sorted_intersect(&a, &b),
                sorted_intersect_adaptive(&a, &b),
                "a={a:?} b={b:?}"
            );
        }
    }

    #[test]
    fn adaptive_gallops_past_long_prefixes() {
        let small = [9_000u32, 9_500];
        let large: Vec<u32> = (0..10_000).collect();
        assert!(sorted_intersect_adaptive(&small, &large));
        let small = [20_000u32];
        assert!(!sorted_intersect_adaptive(&small, &large));
        assert!(!sorted_intersect_adaptive(&[], &large));
    }

    #[test]
    fn builder_roundtrip() {
        let mut b = LabelingBuilder::new(3);
        b.out[0] = vec![0, 2];
        b.in_[2] = vec![0, 1];
        b.out[1] = vec![1];
        b.in_[1] = vec![1];
        let l = b.finish();
        assert_eq!(l.out_label(0), &[0, 2]);
        assert_eq!(l.in_label(2), &[0, 1]);
        assert_eq!(l.out_label(2), &[] as &[u32]);
        assert!(l.query(0, 2), "hop 0 is shared");
        assert!(!l.query(1, 0));
        assert!(l.query(1, 1), "reflexive");
        assert_eq!(l.total_entries(), 6);
    }

    #[test]
    fn finish_sorting_sorts_and_dedups() {
        let mut b = LabelingBuilder::new(2);
        b.out[0] = vec![5, 1, 5, 3];
        b.in_[1] = vec![3, 3];
        let l = b.finish_sorting();
        assert_eq!(l.out_label(0), &[1, 3, 5]);
        assert_eq!(l.in_label(1), &[3]);
        assert!(l.query(0, 1));
    }

    #[test]
    fn size_metrics() {
        let mut b = LabelingBuilder::new(2);
        b.out[0] = vec![1];
        b.in_[1] = vec![1];
        let l = b.finish();
        assert_eq!(l.total_entries(), 2);
        // 2 entries + two offset arrays of len 3 each.
        assert_eq!(l.size_in_integers(), 2 + 6);
    }

    #[test]
    fn empty_labeling() {
        let l = LabelingBuilder::new(0).finish();
        assert_eq!(l.num_vertices(), 0);
        assert_eq!(l.total_entries(), 0);
    }
}
