//! Hop-label storage and the sorted-list intersection query.
//!
//! The paper observes (§1) that earlier hop-labeling implementations
//! lost up to an order of magnitude of query performance by storing
//! `L_out`/`L_in` as hash sets; *sorted arrays with a merge
//! intersection* close the gap. [`Labeling`] therefore keeps all labels
//! in two flat CSR arrays of sorted `u32` hop ids — one cache-friendly
//! slice lookup per side, then a linear merge.
//!
//! Hop ids are opaque: Distribution-Labeling stores *ranks* (its hops
//! arrive in rank order, so lists are born sorted), while
//! Hierarchical-Labeling stores original vertex ids. Queries only need
//! the two sides to share a namespace.
//!
//! ### Rank-band signatures
//!
//! On top of the CSR, [`Labeling`] keeps one 64-bit *rank-band
//! signature* per vertex per side: the hop-id space is cut into 64
//! equal bands, and bit `i` of `sig(v)` is set iff the list contains a
//! hop whose id falls in band `i`. Two lists can only intersect if
//! their signatures share a bit, so [`Labeling::query`] rejects most
//! negative queries with a single `AND` before touching either list —
//! the same memory-layout argument the paper makes for sorted arrays,
//! taken one level further (a 16-byte summary per vertex instead of a
//! ~100-byte list). Pairs that survive the signature test run a
//! size-adaptive kernel: an 8-lane unrolled merge on near-equal list
//! lengths, galloping ([`sorted_intersect_adaptive`]) on skewed ones.

use hoplite_graph::VertexId;

use crate::stats::LabelStats;
use crate::store::{MemorySplit, Store, StoreBackend};

/// Lists whose length ratio is at least this gallop instead of merging
/// (`O(s·log(L/s))` beats `O(s + L)` only on real skew).
const GALLOP_RATIO: usize = 16;

/// `true` iff two ascending-sorted slices share an element.
///
/// This is the entire query path of a reachability oracle:
/// `O(|L_out(u)| + |L_in(v)|)`.
///
/// ```
/// use hoplite_core::sorted_intersect;
/// assert!(sorted_intersect(&[1, 4, 9], &[2, 4]));
/// assert!(!sorted_intersect(&[1, 4, 9], &[2, 5]));
/// ```
#[inline]
pub fn sorted_intersect(a: &[u32], b: &[u32]) -> bool {
    // O(1) disjointness pre-check: if the ranges don't overlap (one
    // list ends before the other starts) the merge cannot hit. Hop
    // labels are rank-banded, so this fires often in practice.
    let (Some(&a_last), Some(&b_last)) = (a.last(), b.last()) else {
        return false;
    };
    if a_last < b[0] || b_last < a[0] {
        return false;
    }
    merge_intersect(a, b)
}

/// The branch-light merge core: exactly one cursor moves per step, so
/// an 8-step unrolled body stays in bounds while both cursors are ≥ 8
/// from their ends — the main loop runs without per-step bound checks
/// or early exits, and the hit flag is folded once per chunk.
#[inline]
fn merge_intersect(a: &[u32], b: &[u32]) -> bool {
    let (mut i, mut j) = (0usize, 0usize);
    while i + 8 <= a.len() && j + 8 <= b.len() {
        let mut hit = false;
        // 8 unrolled lanes. On a hit neither cursor advances, so the
        // remaining lanes re-compare the same pair — harmless, and the
        // chunk exits with `hit` set.
        for _ in 0..8 {
            let (x, y) = (a[i], b[j]);
            hit |= x == y;
            i += (x < y) as usize;
            j += (y < x) as usize;
        }
        if hit {
            return true;
        }
    }
    while i < a.len() && j < b.len() {
        let (x, y) = (a[i], b[j]);
        if x == y {
            return true;
        }
        i += (x < y) as usize;
        j += (y < x) as usize;
    }
    false
}

/// Size-adaptive intersection — the query kernel behind
/// [`Labeling::query`]: when one list is at least [`GALLOP_RATIO`]×
/// longer, gallop (exponential + binary search) through it instead of
/// merging — `O(s·log(L/s))` versus `O(s + L)`; on the near-equal
/// lengths hop labels usually have it falls back to the 8-lane
/// unrolled merge of [`sorted_intersect`] (see the `label_kernel`
/// bench for the ablation).
#[inline]
pub fn sorted_intersect_adaptive(a: &[u32], b: &[u32]) -> bool {
    let (small, large) = if a.len() <= b.len() { (a, b) } else { (b, a) };
    if small.is_empty() {
        return false;
    }
    if large.len() / small.len() < GALLOP_RATIO {
        return sorted_intersect(a, b);
    }
    // Range pre-check, same as the merge path: gallop only runs over
    // the overlapping window anyway, but an empty window is free.
    if *large.last().expect("nonempty") < small[0] || *small.last().expect("nonempty") < large[0] {
        return false;
    }
    let mut lo = 0usize;
    for &x in small {
        // Gallop from the last position until large[hi] >= x (or end).
        let mut step = 1usize;
        let mut hi = lo;
        while hi < large.len() && large[hi] < x {
            hi = (hi + step).min(large.len());
            step *= 2;
        }
        // The stop position itself may hold x: include it in the window.
        let end = (hi + 1).min(large.len());
        match large[lo..end].binary_search(&x) {
            Ok(_) => return true,
            Err(pos) => lo += pos,
        }
        if lo >= large.len() {
            return false;
        }
    }
    false
}

/// Mutable per-vertex label lists used during construction.
///
/// Finish with [`LabelingBuilder::finish`] (lists must already be
/// sorted, e.g. hops appended in rank order) or
/// [`LabelingBuilder::finish_sorting`] (sorts and dedups first).
#[derive(Clone, Debug)]
pub struct LabelingBuilder {
    /// `out[v]` = hops reached from `v`.
    pub out: Vec<Vec<u32>>,
    /// `in_[v]` = hops reaching `v`.
    pub in_: Vec<Vec<u32>>,
}

impl LabelingBuilder {
    /// Empty labels for `n` vertices.
    pub fn new(n: usize) -> Self {
        LabelingBuilder {
            out: vec![Vec::new(); n],
            in_: vec![Vec::new(); n],
        }
    }

    /// Number of vertices.
    pub fn num_vertices(&self) -> usize {
        self.out.len()
    }

    /// Freezes into a [`Labeling`], asserting (in debug builds) that
    /// every list is strictly ascending.
    pub fn finish(self) -> Labeling {
        debug_assert!(self
            .out
            .iter()
            .chain(self.in_.iter())
            .all(|l| l.windows(2).all(|w| w[0] < w[1])));
        Labeling::from_lists(&self.out, &self.in_)
    }

    /// Sorts and dedups every list, then freezes.
    pub fn finish_sorting(mut self) -> Labeling {
        for l in self.out.iter_mut().chain(self.in_.iter_mut()) {
            l.sort_unstable();
            l.dedup();
        }
        Labeling::from_lists(&self.out, &self.in_)
    }
}

/// Which stage of the label store answered a query — the query-side
/// analogue of [`crate::FilterVerdict`], feeding the signature/merge
/// hit counters the `STATS` wire reply and `paper perf` report.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum LabelPath {
    /// `u == v`; no label was touched.
    Reflexive,
    /// The O(1) signature `AND` proved the lists disjoint (answer:
    /// unreachable).
    SignatureCut,
    /// The adaptive intersection kernel ran over the two lists.
    Merge,
}

/// Immutable hop labels in CSR form: the complete reachability oracle.
///
/// Alongside the two CSR sides it stores one 64-bit rank-band
/// signature per vertex per side (see the module docs); signatures are
/// derived from the lists on construction and re-derived when a
/// persisted index predates the signature section.
/// Every array lives in a [`Store`]: owned `Vec`s when built in
/// process or loaded through the HOPL v1 streaming reader, typed
/// windows into one shared arena when opened from a HOPL v3 file (see
/// [`crate::store`]). The accessors below cannot tell the difference.
#[derive(Clone, Debug)]
pub struct Labeling {
    out_offsets: Store<u32>,
    out_hops: Store<u32>,
    in_offsets: Store<u32>,
    in_hops: Store<u32>,
    /// `out_sigs[v]` summarizes `L_out(v)`: bit `i` ⇔ some hop id in
    /// band `i` (band = `id >> sig_shift`).
    out_sigs: Store<u64>,
    in_sigs: Store<u64>,
    /// Right-shift mapping a hop id to its band `0..64`; chosen so the
    /// largest hop id lands in band ≤ 63.
    sig_shift: u32,
}

/// Shift such that `max_hop >> shift <= 63` (bands cover the id space
/// in 64 equal slices).
fn signature_shift(max_hop: u32) -> u32 {
    let mut shift = 0u32;
    while (max_hop >> shift) > 63 {
        shift += 1;
    }
    shift
}

/// Folds one sorted hop list into its 64-bit band signature.
#[inline]
fn signature_of(list: &[u32], shift: u32) -> u64 {
    let mut sig = 0u64;
    for &h in list {
        debug_assert!((h >> shift) < 64);
        sig |= 1u64 << (h >> shift);
    }
    sig
}

impl Labeling {
    fn from_lists(out: &[Vec<u32>], in_: &[Vec<u32>]) -> Self {
        fn pack(lists: &[Vec<u32>]) -> (Vec<u32>, Vec<u32>) {
            let total: usize = lists.iter().map(Vec::len).sum();
            assert!(
                (total as u64) < u32::MAX as u64,
                "label entries exceed u32 offset space"
            );
            let mut offsets = Vec::with_capacity(lists.len() + 1);
            let mut hops = Vec::with_capacity(total);
            offsets.push(0u32);
            for l in lists {
                hops.extend_from_slice(l);
                offsets.push(hops.len() as u32);
            }
            (offsets, hops)
        }
        let (out_offsets, out_hops) = pack(out);
        let (in_offsets, in_hops) = pack(in_);
        Self::from_csr_unchecked(out_offsets, out_hops, in_offsets, in_hops)
    }

    /// Number of vertices labeled.
    pub fn num_vertices(&self) -> usize {
        self.out_offsets.len() - 1
    }

    /// `L_out(v)`: sorted hop ids `v` reaches.
    #[inline]
    pub fn out_label(&self, v: VertexId) -> &[u32] {
        let lo = self.out_offsets[v as usize] as usize;
        let hi = self.out_offsets[v as usize + 1] as usize;
        &self.out_hops[lo..hi]
    }

    /// `L_in(v)`: sorted hop ids reaching `v`.
    #[inline]
    pub fn in_label(&self, v: VertexId) -> &[u32] {
        let lo = self.in_offsets[v as usize] as usize;
        let hi = self.in_offsets[v as usize + 1] as usize;
        &self.in_hops[lo..hi]
    }

    /// `L_out(v)`'s rank-band signature.
    #[inline]
    pub fn out_signature(&self, v: VertexId) -> u64 {
        self.out_sigs[v as usize]
    }

    /// `L_in(v)`'s rank-band signature.
    #[inline]
    pub fn in_signature(&self, v: VertexId) -> u64 {
        self.in_sigs[v as usize]
    }

    /// The hop-id → band shift the signatures were built with.
    pub fn signature_shift(&self) -> u32 {
        self.sig_shift
    }

    /// Footprint of the signature arrays in bytes (16 per vertex),
    /// whichever backing they live in.
    pub fn signature_bytes(&self) -> u64 {
        ((self.out_sigs.len() + self.in_sigs.len()) * std::mem::size_of::<u64>()) as u64
    }

    /// True byte footprint of the label store — CSR offsets, hop
    /// arrays, *and* the signature arrays — split by backing.
    pub fn memory(&self) -> MemorySplit {
        let mut m = MemorySplit::default();
        m.add(MemorySplit::of(&self.out_offsets));
        m.add(MemorySplit::of(&self.out_hops));
        m.add(MemorySplit::of(&self.in_offsets));
        m.add(MemorySplit::of(&self.in_hops));
        m.add(MemorySplit::of(&self.out_sigs));
        m.add(MemorySplit::of(&self.in_sigs));
        m
    }

    /// [`StoreBackend::Mapped`] iff the arrays live in a shared arena.
    pub fn backend(&self) -> StoreBackend {
        self.out_hops.backend()
    }

    /// The oracle query: `u` reaches `v` iff the labels intersect.
    /// Reflexive: `query(v, v)` is `true`.
    ///
    /// Runs the O(1) signature rejection first; survivors fall through
    /// to the size-adaptive intersection kernel.
    #[inline]
    pub fn query(&self, u: VertexId, v: VertexId) -> bool {
        u == v
            || (self.out_sigs[u as usize] & self.in_sigs[v as usize] != 0
                && sorted_intersect_adaptive(self.out_label(u), self.in_label(v)))
    }

    /// [`Self::query`] that also reports which stage decided — the
    /// instrumented twin behind the signature/merge counters of
    /// `hoplite-server`'s `STATS` reply and `paper perf`.
    #[inline]
    pub fn query_traced(&self, u: VertexId, v: VertexId) -> (bool, LabelPath) {
        if u == v {
            return (true, LabelPath::Reflexive);
        }
        if self.out_sigs[u as usize] & self.in_sigs[v as usize] == 0 {
            return (false, LabelPath::SignatureCut);
        }
        (
            sorted_intersect_adaptive(self.out_label(u), self.in_label(v)),
            LabelPath::Merge,
        )
    }

    /// [`Self::query`] with the signature rejection disabled — always
    /// runs the intersection kernel. Exists for the perf harness and
    /// equivalence tests; the answers are identical.
    #[inline]
    pub fn query_unsigned(&self, u: VertexId, v: VertexId) -> bool {
        u == v || sorted_intersect(self.out_label(u), self.in_label(v))
    }

    /// Total label entries `Σ (|L_out(v)| + |L_in(v)|)` — the
    /// paper's index-size metric (Figures 3–4 count integers).
    pub fn total_entries(&self) -> u64 {
        (self.out_hops.len() + self.in_hops.len()) as u64
    }

    /// Size in stored integers, including the CSR offset arrays.
    pub fn size_in_integers(&self) -> u64 {
        self.total_entries() + (self.out_offsets.len() + self.in_offsets.len()) as u64
    }

    /// Distribution statistics over label lengths.
    pub fn stats(&self) -> LabelStats {
        LabelStats::from_labeling(self)
    }

    /// Raw CSR parts `(out_offsets, out_hops, in_offsets, in_hops)` —
    /// the persistence layer's view.
    pub(crate) fn csr_parts(&self) -> (&[u32], &[u32], &[u32], &[u32]) {
        (
            &self.out_offsets,
            &self.out_hops,
            &self.in_offsets,
            &self.in_hops,
        )
    }

    /// Rebuilds from raw CSR parts, deriving the signature arrays.
    /// The caller (the persistence layer) must have validated monotone
    /// offsets and sorted hop lists.
    pub(crate) fn from_csr_unchecked(
        out_offsets: Vec<u32>,
        out_hops: Vec<u32>,
        in_offsets: Vec<u32>,
        in_hops: Vec<u32>,
    ) -> Self {
        debug_assert_eq!(out_offsets.len(), in_offsets.len());
        debug_assert_eq!(*out_offsets.last().unwrap_or(&0) as usize, out_hops.len());
        debug_assert_eq!(*in_offsets.last().unwrap_or(&0) as usize, in_hops.len());
        let max_hop = out_hops
            .iter()
            .chain(in_hops.iter())
            .copied()
            .max()
            .unwrap_or(0);
        let sig_shift = signature_shift(max_hop);
        let fold = |offsets: &[u32], hops: &[u32]| -> Vec<u64> {
            offsets
                .windows(2)
                .map(|w| signature_of(&hops[w[0] as usize..w[1] as usize], sig_shift))
                .collect()
        };
        let out_sigs = fold(&out_offsets, &out_hops);
        let in_sigs = fold(&in_offsets, &in_hops);
        Labeling {
            out_offsets: out_offsets.into(),
            out_hops: out_hops.into(),
            in_offsets: in_offsets.into(),
            in_hops: in_hops.into(),
            out_sigs: out_sigs.into(),
            in_sigs: in_sigs.into(),
            sig_shift,
        }
    }

    /// Assembles a labeling directly from stores — the HOPL v3 arena
    /// path: nothing is copied and nothing is re-derived. The caller
    /// (the arena reader) must have validated that offsets are
    /// monotone and that the signatures/shift match the hop lists;
    /// with a checksummed arena that is the writer's guarantee.
    pub(crate) fn from_stores_unchecked(
        out_offsets: Store<u32>,
        out_hops: Store<u32>,
        in_offsets: Store<u32>,
        in_hops: Store<u32>,
        out_sigs: Store<u64>,
        in_sigs: Store<u64>,
        sig_shift: u32,
    ) -> Self {
        debug_assert_eq!(out_offsets.len(), in_offsets.len());
        debug_assert_eq!(out_offsets.len(), out_sigs.len() + 1);
        Labeling {
            out_offsets,
            out_hops,
            in_offsets,
            in_hops,
            out_sigs,
            in_sigs,
            sig_shift,
        }
    }

    /// The signature arrays and their shift,
    /// `(out_sigs, in_sigs, sig_shift)` — the persistence layer's view
    /// (persisted as the optional `SIGS` section and cross-checked on
    /// load).
    pub(crate) fn signature_parts(&self) -> (&[u64], &[u64], u32) {
        (&self.out_sigs, &self.in_sigs, self.sig_shift)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sorted_intersect_cases() {
        assert!(sorted_intersect(&[1, 3, 5], &[2, 3]));
        assert!(!sorted_intersect(&[1, 3, 5], &[2, 4, 6]));
        assert!(!sorted_intersect(&[], &[1]));
        assert!(!sorted_intersect(&[1], &[]));
        assert!(sorted_intersect(&[7], &[7]));
        assert!(sorted_intersect(&[1, 2, 3, 4, 5], &[5]));
        assert!(sorted_intersect(&[5], &[1, 2, 3, 4, 5]));
    }

    #[test]
    fn disjoint_ranges_short_circuit() {
        // Entirely below / entirely above: the O(1) pre-check path.
        assert!(!sorted_intersect(&[1, 2, 3], &[4, 5, 6]));
        assert!(!sorted_intersect(&[4, 5, 6], &[1, 2, 3]));
        // Touching boundaries still intersect.
        assert!(sorted_intersect(&[1, 2, 4], &[4, 9]));
        assert!(sorted_intersect(&[4, 9], &[1, 2, 4]));
    }

    #[test]
    fn adaptive_matches_merge_on_many_shapes() {
        use hoplite_graph::gen::Rng;
        let mut rng = Rng::new(31337);
        for _ in 0..500 {
            let la = rng.gen_index(40);
            let lb = if rng.gen_bool(0.5) {
                rng.gen_index(40)
            } else {
                rng.gen_index(2000) // force the galloping path
            };
            let mut a: Vec<u32> = (0..la).map(|_| rng.gen_range(5000) as u32).collect();
            let mut b: Vec<u32> = (0..lb).map(|_| rng.gen_range(5000) as u32).collect();
            a.sort_unstable();
            a.dedup();
            b.sort_unstable();
            b.dedup();
            assert_eq!(
                sorted_intersect(&a, &b),
                sorted_intersect_adaptive(&a, &b),
                "a={a:?} b={b:?}"
            );
        }
    }

    #[test]
    fn adaptive_gallops_past_long_prefixes() {
        let small = [9_000u32, 9_500];
        let large: Vec<u32> = (0..10_000).collect();
        assert!(sorted_intersect_adaptive(&small, &large));
        let small = [20_000u32];
        assert!(!sorted_intersect_adaptive(&small, &large));
        assert!(!sorted_intersect_adaptive(&[], &large));
    }

    #[test]
    fn unrolled_merge_matches_reference_on_many_shapes() {
        use hoplite_graph::gen::Rng;
        // Long lists exercise the 8-lane main loop; short ones the
        // scalar tail; mixed lengths the crossover between them.
        let mut rng = Rng::new(0xA11CE);
        for _ in 0..800 {
            let la = rng.gen_index(64);
            let lb = rng.gen_index(64);
            let mut a: Vec<u32> = (0..la).map(|_| rng.gen_range(200) as u32).collect();
            let mut b: Vec<u32> = (0..lb).map(|_| rng.gen_range(200) as u32).collect();
            a.sort_unstable();
            a.dedup();
            b.sort_unstable();
            b.dedup();
            let expect = a.iter().any(|x| b.contains(x));
            assert_eq!(sorted_intersect(&a, &b), expect, "a={a:?} b={b:?}");
            assert_eq!(sorted_intersect_adaptive(&a, &b), expect, "a={a:?} b={b:?}");
        }
    }

    #[test]
    fn unrolled_merge_hits_at_chunk_boundaries() {
        // Shared element landing at lane 0, mid-chunk, the chunk seam,
        // and the scalar tail.
        let a: Vec<u32> = (0..32).map(|i| i * 2).collect();
        for shared in [0u32, 14, 16, 62] {
            let mut b = vec![1u32, 3, 5, 7, 9, 11, 13, 63, 65, 67, 69, 71, 73, 75, 77];
            b.push(shared);
            b.sort_unstable();
            b.dedup();
            assert!(sorted_intersect(&a, &b), "shared={shared}");
        }
        // Fully disjoint interleave: merge must walk both to the end.
        let evens: Vec<u32> = (0..40).map(|i| i * 2).collect();
        let odds: Vec<u32> = (0..40).map(|i| i * 2 + 1).collect();
        assert!(!sorted_intersect(&evens, &odds));
    }

    #[test]
    fn signatures_summarize_lists() {
        let mut b = LabelingBuilder::new(3);
        b.out[0] = vec![0, 63];
        b.in_[1] = vec![1];
        b.in_[2] = vec![63];
        let l = b.finish();
        // Max hop 63 → shift 0: band == hop id.
        assert_eq!(l.signature_shift(), 0);
        assert_eq!(l.out_signature(0), 1 | 1 << 63);
        assert_eq!(l.in_signature(1), 1 << 1);
        assert_eq!(l.in_signature(2), 1 << 63);
        assert_eq!(l.out_signature(1), 0, "empty list has empty signature");
        assert_eq!(l.signature_bytes(), 6 * 8);
    }

    #[test]
    fn signature_shift_covers_the_id_space() {
        let mut b = LabelingBuilder::new(2);
        b.out[0] = vec![0, 100, 1000];
        b.in_[1] = vec![1000];
        let l = b.finish();
        // 1000 >> shift must be ≤ 63 → shift 4 (1000 >> 4 = 62).
        assert_eq!(l.signature_shift(), 4);
        assert!(l.out_signature(0) & l.in_signature(1) != 0);
        assert!(l.query(0, 1));
    }

    #[test]
    fn query_traced_reports_the_deciding_stage() {
        let mut b = LabelingBuilder::new(3);
        b.out[0] = vec![0];
        b.in_[1] = vec![63];
        b.out[2] = vec![0, 63];
        let l = b.finish();
        assert_eq!(l.query_traced(0, 0), (true, LabelPath::Reflexive));
        // Disjoint bands: killed by the signature AND.
        assert_eq!(l.query_traced(0, 1), (false, LabelPath::SignatureCut));
        // Shared band: the kernel must run (and find hop 63).
        assert_eq!(l.query_traced(2, 1), (true, LabelPath::Merge));
        for u in 0..3u32 {
            for v in 0..3u32 {
                assert_eq!(l.query_traced(u, v).0, l.query(u, v));
                assert_eq!(l.query(u, v), l.query_unsigned(u, v));
            }
        }
    }

    #[test]
    fn builder_roundtrip() {
        let mut b = LabelingBuilder::new(3);
        b.out[0] = vec![0, 2];
        b.in_[2] = vec![0, 1];
        b.out[1] = vec![1];
        b.in_[1] = vec![1];
        let l = b.finish();
        assert_eq!(l.out_label(0), &[0, 2]);
        assert_eq!(l.in_label(2), &[0, 1]);
        assert_eq!(l.out_label(2), &[] as &[u32]);
        assert!(l.query(0, 2), "hop 0 is shared");
        assert!(!l.query(1, 0));
        assert!(l.query(1, 1), "reflexive");
        assert_eq!(l.total_entries(), 6);
    }

    #[test]
    fn finish_sorting_sorts_and_dedups() {
        let mut b = LabelingBuilder::new(2);
        b.out[0] = vec![5, 1, 5, 3];
        b.in_[1] = vec![3, 3];
        let l = b.finish_sorting();
        assert_eq!(l.out_label(0), &[1, 3, 5]);
        assert_eq!(l.in_label(1), &[3]);
        assert!(l.query(0, 1));
    }

    #[test]
    fn size_metrics() {
        let mut b = LabelingBuilder::new(2);
        b.out[0] = vec![1];
        b.in_[1] = vec![1];
        let l = b.finish();
        assert_eq!(l.total_entries(), 2);
        // 2 entries + two offset arrays of len 3 each.
        assert_eq!(l.size_in_integers(), 2 + 6);
    }

    #[test]
    fn empty_labeling() {
        let l = LabelingBuilder::new(0).finish();
        assert_eq!(l.num_vertices(), 0);
        assert_eq!(l.total_entries(), 0);
    }
}
