//! Flight-recorder primitives: atomic counters, log-linear latency
//! histograms, and construction-phase span traces.
//!
//! Everything here follows the workspace's no-crates.io discipline —
//! `std` only, same as the mmap and epoll shims. The design goals, in
//! order:
//!
//! 1. **O(1), lock-free `record`.** A histogram write is one relaxed
//!    `fetch_add` on a bucket plus three bookkeeping atomics; any
//!    number of threads can record concurrently with no coordination.
//! 2. **Zero cost in the hot kernel.** Nothing in this module is
//!    called from the per-pair label-intersection kernel. All timing
//!    happens at frame/batch boundaries in the serving layer, and the
//!    `paper perf` metrics-overhead stage *measures* that the
//!    instrumented query path stays within 3% of the bare one.
//! 3. **Mergeable snapshots.** [`HistogramSnapshot`]s from different
//!    histograms (per-worker, per-namespace, per-process) add
//!    losslessly, so percentiles can be reported at any aggregation
//!    level without re-recording.
//!
//! # Bucket layout
//!
//! The histogram is log-linear in the HDR style: values below
//! `2^GROUP_BITS` map one-to-one onto linear buckets (exact), and each
//! octave above that is split into `2^GROUP_BITS` equal sub-buckets,
//! for a bounded relative error of `2^-GROUP_BITS` (≈ 3% at the
//! default of 32 sub-buckets per octave) across the whole `u64`
//! range. With `GROUP_BITS = 5` that is 1 920 buckets — 15 KiB per
//! histogram — covering 1 ns to ~584 years at ≤ 3.2% error.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Instant;

/// Sub-bucket resolution: each octave splits into `2^GROUP_BITS`
/// buckets, bounding relative quantile error at `2^-GROUP_BITS`.
const GROUP_BITS: u32 = 5;
/// Sub-buckets per octave (`32`).
const SUB_BUCKETS: usize = 1 << GROUP_BITS;
/// Total bucket count covering all of `u64`: one linear group plus
/// `64 - GROUP_BITS` log groups of [`SUB_BUCKETS`] each.
pub const NUM_BUCKETS: usize = SUB_BUCKETS * (64 - GROUP_BITS as usize + 1);

/// Bucket index for a recorded value. Exact below [`SUB_BUCKETS`];
/// log-linear above.
#[inline]
pub fn bucket_index(value: u64) -> usize {
    if value < SUB_BUCKETS as u64 {
        return value as usize;
    }
    let msb = 63 - value.leading_zeros();
    let group = (msb - GROUP_BITS + 1) as usize;
    let sub = (value >> (msb - GROUP_BITS)) as usize; // in SUB_BUCKETS..2*SUB_BUCKETS
    group * SUB_BUCKETS + sub - SUB_BUCKETS
}

/// Smallest value mapping to `index` (inclusive).
#[inline]
pub fn bucket_low(index: usize) -> u64 {
    if index < SUB_BUCKETS {
        return index as u64;
    }
    let group = index / SUB_BUCKETS;
    let sub = (index % SUB_BUCKETS + SUB_BUCKETS) as u64;
    sub << (group - 1)
}

/// Largest value mapping to `index` (inclusive). Quantiles report this
/// bound, so they over- rather than under-estimate — a conservative
/// ≤ `2^-GROUP_BITS` relative error.
#[inline]
pub fn bucket_high(index: usize) -> u64 {
    if index < SUB_BUCKETS {
        return index as u64;
    }
    let group = index / SUB_BUCKETS;
    bucket_low(index) + ((1u64 << (group - 1)) - 1)
}

/// A monotone event counter. A thin named wrapper over a relaxed
/// `AtomicU64` so call sites read as instrumentation, not plumbing.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// A zeroed counter.
    pub const fn new() -> Self {
        Counter(AtomicU64::new(0))
    }

    /// Add one.
    #[inline]
    pub fn inc(&self) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }

    /// Add `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    #[inline]
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A lock-free log-linear histogram of `u64` samples (typically
/// nanoseconds). `record` is O(1) and wait-free; `snapshot` is a
/// consistent-enough relaxed read of every bucket.
pub struct Histogram {
    buckets: Box<[AtomicU64]>,
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl std::fmt::Debug for Histogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Histogram")
            .field("count", &self.count.load(Ordering::Relaxed))
            .field("sum", &self.sum.load(Ordering::Relaxed))
            .field("max", &self.max.load(Ordering::Relaxed))
            .finish_non_exhaustive()
    }
}

impl Histogram {
    /// An empty histogram (allocates its 1 920 buckets eagerly).
    pub fn new() -> Self {
        let buckets = (0..NUM_BUCKETS).map(|_| AtomicU64::new(0)).collect();
        Histogram {
            buckets,
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }

    /// Record one sample. Wait-free: four relaxed atomic RMWs.
    #[inline]
    pub fn record(&self, value: u64) {
        self.buckets[bucket_index(value)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
        self.max.fetch_max(value, Ordering::Relaxed);
    }

    /// Record the elapsed time of `started` in nanoseconds.
    #[inline]
    pub fn record_since(&self, started: Instant) {
        self.record(started.elapsed().as_nanos() as u64);
    }

    /// Samples recorded so far.
    #[inline]
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// A point-in-time copy. Concurrent recorders may land between the
    /// bucket reads — each sample is still counted exactly once in
    /// some later snapshot; totals are re-derived from the buckets so
    /// the snapshot is internally consistent.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let buckets: Vec<u64> = self
            .buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect();
        let count = buckets.iter().sum();
        HistogramSnapshot {
            buckets,
            count,
            sum: self.sum.load(Ordering::Relaxed),
            max: self.max.load(Ordering::Relaxed),
        }
    }
}

/// An owned, mergeable copy of a [`Histogram`]'s state, the unit of
/// reporting: quantiles, merges across workers, and wire summaries all
/// operate on snapshots.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct HistogramSnapshot {
    buckets: Vec<u64>,
    count: u64,
    sum: u64,
    max: u64,
}

impl HistogramSnapshot {
    /// An empty snapshot (merge identity).
    pub fn empty() -> Self {
        HistogramSnapshot {
            buckets: vec![0; NUM_BUCKETS],
            count: 0,
            sum: 0,
            max: 0,
        }
    }

    /// Record into an owned snapshot — the single-threaded path for
    /// code that already owns its histogram (e.g. loadgen workers).
    #[inline]
    pub fn record(&mut self, value: u64) {
        if self.buckets.is_empty() {
            self.buckets = vec![0; NUM_BUCKETS];
        }
        self.buckets[bucket_index(value)] += 1;
        self.count += 1;
        self.sum += value;
        self.max = self.max.max(value);
    }

    /// Samples in the snapshot.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all samples.
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Largest recorded sample (exact, not bucketed).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Mean sample, or 0 with no samples.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        self.sum as f64 / self.count as f64
    }

    /// Fold another snapshot in. Bucketwise addition — associative and
    /// commutative, so per-worker snapshots aggregate in any order.
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        if other.buckets.is_empty() {
            return;
        }
        if self.buckets.is_empty() {
            self.buckets = vec![0; NUM_BUCKETS];
        }
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += b;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.max = self.max.max(other.max);
    }

    /// The value at quantile `q` in `[0, 1]`: the upper bound of the
    /// bucket holding the `ceil(q·count)`-th smallest sample, clamped
    /// to the exact observed max. 0 when empty.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return bucket_high(i).min(self.max);
            }
        }
        self.max
    }

    /// Median.
    pub fn p50(&self) -> u64 {
        self.quantile(0.50)
    }

    /// 90th percentile.
    pub fn p90(&self) -> u64 {
        self.quantile(0.90)
    }

    /// 99th percentile.
    pub fn p99(&self) -> u64 {
        self.quantile(0.99)
    }

    /// 99.9th percentile.
    pub fn p999(&self) -> u64 {
        self.quantile(0.999)
    }
}

/// One timed construction phase inside a [`BuildTrace`].
#[derive(Clone, Debug)]
pub struct TraceSpan {
    /// Phase name (`scc`, `order`, `distribute`, …).
    pub name: String,
    /// Offset from trace creation to phase start, nanoseconds.
    pub start_ns: u64,
    /// Phase duration, nanoseconds.
    pub duration_ns: u64,
}

/// A construction-phase span collector: named wall-clock spans plus a
/// per-hop duration histogram, recorded during index builds and
/// emitted as structured JSON (the `hoplited serve --trace-out` file).
///
/// Interior-mutable so a single `&BuildTrace` can thread through the
/// build call graph; span recording takes a `Mutex` (builds record a
/// handful of spans, never on a hot path) while hop timings go to the
/// lock-free [`Histogram`].
#[derive(Debug)]
pub struct BuildTrace {
    origin: Instant,
    spans: Mutex<Vec<TraceSpan>>,
    hops: Histogram,
}

impl Default for BuildTrace {
    fn default() -> Self {
        Self::new()
    }
}

impl BuildTrace {
    /// A fresh trace; the clock starts now.
    pub fn new() -> Self {
        BuildTrace {
            origin: Instant::now(),
            spans: Mutex::new(Vec::new()),
            hops: Histogram::new(),
        }
    }

    /// Run `f` as a named span, recording its start offset + duration.
    pub fn span<T>(&self, name: &str, f: impl FnOnce() -> T) -> T {
        let start_ns = self.origin.elapsed().as_nanos() as u64;
        let started = Instant::now();
        let value = f();
        let duration_ns = started.elapsed().as_nanos() as u64;
        self.spans.lock().unwrap().push(TraceSpan {
            name: name.to_string(),
            start_ns,
            duration_ns,
        });
        value
    }

    /// Record one per-hop labeling duration (sequential engine).
    #[inline]
    pub fn record_hop(&self, ns: u64) {
        self.hops.record(ns);
    }

    /// Spans recorded so far, in completion order.
    pub fn spans(&self) -> Vec<TraceSpan> {
        self.spans.lock().unwrap().clone()
    }

    /// The per-hop duration distribution.
    pub fn hop_snapshot(&self) -> HistogramSnapshot {
        self.hops.snapshot()
    }

    /// One structured-JSON object for this trace, tagged with `label`
    /// (typically the namespace being built). Spans appear in
    /// completion order; `hops` summarizes the per-vertex labeling
    /// distribution when the traced engine recorded one.
    pub fn to_json(&self, label: &str) -> String {
        let spans = self
            .spans
            .lock()
            .unwrap()
            .iter()
            .map(|s| {
                format!(
                    "{{\"name\":\"{}\",\"start_ns\":{},\"duration_ns\":{}}}",
                    s.name, s.start_ns, s.duration_ns
                )
            })
            .collect::<Vec<_>>()
            .join(",");
        let hops = self.hops.snapshot();
        let hop_json = if hops.count() == 0 {
            "null".to_string()
        } else {
            format!(
                "{{\"count\":{},\"p50_ns\":{},\"p99_ns\":{},\"p999_ns\":{},\"max_ns\":{}}}",
                hops.count(),
                hops.p50(),
                hops.p99(),
                hops.p999(),
                hops.max()
            )
        };
        format!("{{\"trace\":\"{label}\",\"spans\":[{spans}],\"hops\":{hop_json}}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linear_buckets_are_exact() {
        for v in 0..SUB_BUCKETS as u64 {
            let i = bucket_index(v);
            assert_eq!(i, v as usize);
            assert_eq!(bucket_low(i), v);
            assert_eq!(bucket_high(i), v);
        }
    }

    #[test]
    fn bucket_bounds_tile_u64_without_gaps() {
        // Consecutive buckets must abut exactly: high(i) + 1 == low(i+1).
        for i in 0..NUM_BUCKETS - 1 {
            assert_eq!(
                bucket_high(i) + 1,
                bucket_low(i + 1),
                "gap or overlap between buckets {i} and {}",
                i + 1
            );
        }
        assert_eq!(bucket_low(0), 0);
        assert_eq!(bucket_high(NUM_BUCKETS - 1), u64::MAX);
    }

    #[test]
    fn value_maps_into_its_own_bucket_bounds() {
        // Octave boundaries and their neighbors are the fencepost
        // cases; check every power of two ± 1 plus assorted values.
        let mut values = vec![0u64, 1, 31, 32, 33, 63, 64, 65, 1000, u64::MAX];
        for shift in 1..64 {
            let p = 1u64 << shift;
            values.extend([p - 1, p, p + 1]);
        }
        for v in values {
            let i = bucket_index(v);
            assert!(
                bucket_low(i) <= v && v <= bucket_high(i),
                "value {v} outside bucket {i} = [{}, {}]",
                bucket_low(i),
                bucket_high(i)
            );
        }
    }

    #[test]
    fn relative_error_is_bounded() {
        // The reported quantile for a single value v is bucket_high of
        // v's bucket: overestimates by < 2^-GROUP_BITS relative.
        for shift in GROUP_BITS..63 {
            let v = (1u64 << shift) + (1u64 << (shift - 1)) + 7;
            let high = bucket_high(bucket_index(v));
            assert!(high >= v);
            let err = (high - v) as f64 / v as f64;
            assert!(err < 1.0 / SUB_BUCKETS as f64, "err {err} at {v}");
        }
    }

    #[test]
    fn quantiles_of_known_distribution() {
        let h = Histogram::new();
        for v in 1..=1000u64 {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count(), 1000);
        assert_eq!(s.sum(), 500_500);
        assert_eq!(s.max(), 1000);
        // p50 of 1..=1000 is 500; the bucket bound may overestimate by
        // up to 1/32.
        let p50 = s.p50();
        assert!((500..=516).contains(&p50), "p50 = {p50}");
        let p99 = s.p99();
        assert!((990..=1000).contains(&p99), "p99 = {p99}");
        assert_eq!(s.quantile(1.0), 1000);
        // Values below SUB_BUCKETS are exact.
        let small = Histogram::new();
        for v in 0..32u64 {
            small.record(v);
        }
        let ss = small.snapshot();
        assert_eq!(ss.p50(), 15);
        assert_eq!(ss.quantile(1.0), 31);
    }

    #[test]
    fn empty_snapshot_is_all_zeros() {
        let s = Histogram::new().snapshot();
        assert_eq!(s.count(), 0);
        assert_eq!(s.p50(), 0);
        assert_eq!(s.p999(), 0);
        assert_eq!(s.max(), 0);
        assert_eq!(s.mean(), 0.0);
    }

    #[test]
    fn concurrent_recording_matches_sequential_ground_truth() {
        let shared = std::sync::Arc::new(Histogram::new());
        let per_thread = 10_000u64;
        let threads = 4;
        std::thread::scope(|scope| {
            for t in 0..threads {
                let shared = std::sync::Arc::clone(&shared);
                scope.spawn(move || {
                    for i in 0..per_thread {
                        // Deterministic mixed-magnitude stream.
                        shared.record((i.wrapping_mul(2_654_435_761) >> (t * 7)) % 1_000_000);
                    }
                });
            }
        });
        let mut ground = HistogramSnapshot::empty();
        for t in 0..threads {
            for i in 0..per_thread {
                ground.record((i.wrapping_mul(2_654_435_761) >> (t * 7)) % 1_000_000);
            }
        }
        assert_eq!(shared.snapshot(), ground);
    }

    #[test]
    fn merge_is_associative_and_commutative() {
        let mk = |seed: u64, n: u64| {
            let mut s = HistogramSnapshot::empty();
            for i in 0..n {
                s.record(seed.wrapping_mul(i).wrapping_add(i * i) % 100_000);
            }
            s
        };
        let (a, b, c) = (mk(3, 500), mk(17, 700), mk(91, 300));
        let mut left = a.clone();
        left.merge(&b);
        left.merge(&c);
        let mut bc = b.clone();
        bc.merge(&c);
        let mut right = a.clone();
        right.merge(&bc);
        assert_eq!(left, right, "merge is not associative");
        let mut ba = b.clone();
        ba.merge(&a);
        let mut ab = a.clone();
        ab.merge(&b);
        assert_eq!(ab, ba, "merge is not commutative");
        // Identity.
        let mut id = a.clone();
        id.merge(&HistogramSnapshot::empty());
        assert_eq!(id, a);
        // Default (bucketless) snapshot also merges.
        let mut d = HistogramSnapshot::default();
        d.merge(&a);
        assert_eq!(d.count(), a.count());
        assert_eq!(d.p99(), a.p99());
    }

    #[test]
    fn counter_is_a_counter() {
        let c = Counter::new();
        c.inc();
        c.add(41);
        assert_eq!(c.get(), 42);
    }

    #[test]
    fn build_trace_records_spans_and_hops() {
        let trace = BuildTrace::new();
        let out = trace.span("scc", || 7);
        assert_eq!(out, 7);
        trace.span("order", || {});
        trace.record_hop(1_000);
        trace.record_hop(2_000);
        let spans = trace.spans();
        assert_eq!(spans.len(), 2);
        assert_eq!(spans[0].name, "scc");
        assert_eq!(spans[1].name, "order");
        assert!(spans[1].start_ns >= spans[0].start_ns);
        assert_eq!(trace.hop_snapshot().count(), 2);
        let json = trace.to_json("bench");
        assert!(json.starts_with("{\"trace\":\"bench\""), "{json}");
        assert!(json.contains("\"name\":\"scc\""), "{json}");
        assert!(json.contains("\"hops\":{\"count\":2"), "{json}");
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        // No hops → null.
        let empty = BuildTrace::new();
        assert!(empty.to_json("x").ends_with("\"hops\":null}"));
    }
}
