//! Binary persistence for built oracles.
//!
//! The paper's headline is cheap construction, but a production user
//! still wants to build once and ship the index to query-serving
//! replicas — the `hoplite-server` crate is that replica: `hoplited
//! serve --index NAME=FILE` loads an [`Oracle::save`] payload and
//! answers it over the wire. The format is a small, versioned
//! little-endian layout:
//!
//! ```text
//! magic   4 bytes  "HOPL"
//! version u32      1
//! kind    u8       1 = bare Labeling, 2 = DistributionLabeling,
//!                  3 = HierarchicalLabeling,
//!                  4 = Oracle (condensation + DistributionLabeling)
//! n       u64      vertex count
//! ...              kind-specific payload (CSR arrays, order table,
//!                  level sizes)
//! [SIGS]           optional trailing section: "SIGS", sig_shift:u32,
//!                  n:u64, n×out_sig:u64, n×in_sig:u64
//! ```
//!
//! Readers validate structure (monotone offsets, strictly sorted hop
//! lists) so a corrupted file fails loudly instead of answering
//! queries wrong.
//!
//! The `SIGS` section carries the per-vertex rank-band signatures the
//! query path rejects on (see [`crate::label`]). It is *optional on
//! read*: files written before the signature layer existed simply end
//! after the main payload, and the loader rebuilds the signatures from
//! the hop lists on the fly. When the section is present the reader
//! cross-checks every persisted signature against the one derived from
//! its list — a flipped signature bit would otherwise silently turn
//! reachable pairs unreachable.
//!
//! The [`crate::QueryFilters`] pre-filter stage is **derived state**:
//! [`Oracle::load`] rebuilds it in `O(n + m)` from the persisted
//! condensation DAG, so the HOPL format is unchanged by the filter
//! layer and indexes written before it exist keep loading (and gain
//! the filters for free).
//!
//! ```
//! use hoplite_graph::Dag;
//! use hoplite_core::{DistributionLabeling, DlConfig, ReachIndex};
//!
//! let dag = Dag::from_edges(3, &[(0, 1), (1, 2)])?;
//! let dl = DistributionLabeling::build(&dag, &DlConfig::default());
//!
//! let mut bytes = Vec::new();
//! dl.save(&mut bytes)?;
//! let restored = DistributionLabeling::load(std::io::Cursor::new(&bytes)).unwrap();
//! assert!(restored.query(0, 2));
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

use std::fmt;
use std::io::{Read, Write};

use hoplite_graph::digraph::GraphBuilder;
use hoplite_graph::scc::Condensation;
use hoplite_graph::{Dag, VertexId};

use crate::distribution::DistributionLabeling;
use crate::hierarchical::HierarchicalLabeling;
use crate::label::Labeling;
use crate::oracle::Oracle;

const MAGIC: &[u8; 4] = b"HOPL";
const SIG_MAGIC: &[u8; 4] = b"SIGS";
const VERSION: u32 = 1;
const KIND_LABELING: u8 = 1;
const KIND_DL: u8 = 2;
const KIND_HL: u8 = 3;
const KIND_ORACLE: u8 = 4;

/// Errors returned by the readers.
#[derive(Debug)]
pub enum PersistError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// Structural problem in the payload.
    Format(String),
}

impl fmt::Display for PersistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PersistError::Io(e) => write!(f, "persist i/o error: {e}"),
            PersistError::Format(m) => write!(f, "persist format error: {m}"),
        }
    }
}

impl std::error::Error for PersistError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            PersistError::Io(e) => Some(e),
            PersistError::Format(_) => None,
        }
    }
}

impl From<std::io::Error> for PersistError {
    fn from(e: std::io::Error) -> Self {
        PersistError::Io(e)
    }
}

// ---------------------------------------------------------------------
// Primitive writers/readers
// ---------------------------------------------------------------------

fn write_u32<W: Write>(w: &mut W, x: u32) -> std::io::Result<()> {
    w.write_all(&x.to_le_bytes())
}

fn write_u64<W: Write>(w: &mut W, x: u64) -> std::io::Result<()> {
    w.write_all(&x.to_le_bytes())
}

fn write_u32_slice<W: Write>(w: &mut W, xs: &[u32]) -> std::io::Result<()> {
    write_u64(w, xs.len() as u64)?;
    for &x in xs {
        write_u32(w, x)?;
    }
    Ok(())
}

fn read_u8<R: Read>(r: &mut R) -> Result<u8, PersistError> {
    let mut b = [0u8; 1];
    r.read_exact(&mut b)?;
    Ok(b[0])
}

fn read_u32<R: Read>(r: &mut R) -> Result<u32, PersistError> {
    let mut b = [0u8; 4];
    r.read_exact(&mut b)?;
    Ok(u32::from_le_bytes(b))
}

fn read_u64<R: Read>(r: &mut R) -> Result<u64, PersistError> {
    let mut b = [0u8; 8];
    r.read_exact(&mut b)?;
    Ok(u64::from_le_bytes(b))
}

fn read_u32_vec<R: Read>(r: &mut R, cap_hint: u64) -> Result<Vec<u32>, PersistError> {
    let len = read_u64(r)?;
    if len > cap_hint {
        return Err(PersistError::Format(format!(
            "array of {len} entries exceeds plausible bound {cap_hint}"
        )));
    }
    // Pre-size from the claimed length, but never by more than 4 MiB:
    // a corrupt length field must fail at the EOF it implies, not
    // allocate gigabytes up front.
    let mut out = Vec::with_capacity(len.min(1 << 20) as usize);
    let mut buf = [0u8; 4];
    for _ in 0..len {
        r.read_exact(&mut buf)?;
        out.push(u32::from_le_bytes(buf));
    }
    Ok(out)
}

/// Rejects files with bytes past the expected payload — trailing
/// garbage means the file was not produced by this writer (or the
/// caller mixed up formats), and silently ignoring it would mask
/// corruption.
fn expect_eof<R: Read>(r: &mut R) -> Result<(), PersistError> {
    let mut probe = [0u8; 1];
    match r.read(&mut probe)? {
        0 => Ok(()),
        _ => Err(PersistError::Format("trailing bytes after payload".into())),
    }
}

/// Writes the optional trailing signature section (see module docs).
fn write_signature_section<W: Write>(l: &Labeling, w: &mut W) -> std::io::Result<()> {
    let (out_sigs, in_sigs, shift) = l.signature_parts();
    w.write_all(SIG_MAGIC)?;
    write_u32(w, shift)?;
    write_u64(w, out_sigs.len() as u64)?;
    for &s in out_sigs.iter().chain(in_sigs.iter()) {
        write_u64(w, s)?;
    }
    Ok(())
}

/// Consumes the optional trailing signature section. A clean EOF in
/// place of the section magic is a legacy (pre-signature) file — fine,
/// `l` already derived its signatures from the hop lists. A present
/// section must agree with the derived signatures exactly; any
/// divergence is corruption (a wrong signature silently flips query
/// answers, so it must fail loudly here instead).
fn read_signature_section<R: Read>(r: &mut R, l: &Labeling) -> Result<(), PersistError> {
    let mut magic = [0u8; 4];
    let mut filled = 0usize;
    while filled < magic.len() {
        match r.read(&mut magic[filled..])? {
            0 if filled == 0 => return Ok(()), // legacy file: no section
            0 => {
                return Err(PersistError::Format(
                    "truncated trailing-section magic".into(),
                ))
            }
            k => filled += k,
        }
    }
    if &magic != SIG_MAGIC {
        return Err(PersistError::Format(format!(
            "unknown trailing section {magic:?}"
        )));
    }
    let (out_sigs, in_sigs, want_shift) = l.signature_parts();
    let shift = read_u32(r)?;
    if shift != want_shift {
        return Err(PersistError::Format(format!(
            "signature shift {shift} disagrees with the labels (expected {want_shift})"
        )));
    }
    let n = read_u64(r)?;
    if n as usize != out_sigs.len() {
        return Err(PersistError::Format(format!(
            "signature count {n} != vertex count {}",
            out_sigs.len()
        )));
    }
    for (what, want) in [("out", out_sigs), ("in", in_sigs)] {
        for (v, &expect) in want.iter().enumerate() {
            let got = read_u64(r)?;
            if got != expect {
                return Err(PersistError::Format(format!(
                    "{what} signature of vertex {v} disagrees with its hop list"
                )));
            }
        }
    }
    Ok(())
}

fn write_header<W: Write>(w: &mut W, kind: u8, n: u64) -> std::io::Result<()> {
    w.write_all(MAGIC)?;
    write_u32(w, VERSION)?;
    w.write_all(&[kind])?;
    write_u64(w, n)
}

fn read_header<R: Read>(r: &mut R, want_kind: u8) -> Result<u64, PersistError> {
    let mut magic = [0u8; 4];
    r.read_exact(&mut magic)?;
    if &magic != MAGIC {
        return Err(PersistError::Format(
            "bad magic (not a hoplite index)".into(),
        ));
    }
    let version = read_u32(r)?;
    if version != VERSION {
        return Err(PersistError::Format(format!(
            "unsupported version {version} (reader supports {VERSION})"
        )));
    }
    let kind = read_u8(r)?;
    if kind != want_kind {
        return Err(PersistError::Format(format!(
            "wrong payload kind {kind} (expected {want_kind})"
        )));
    }
    let n = read_u64(r)?;
    // Vertex ids are u32 throughout the workspace, so a larger count
    // can only come from corruption; rejecting it here also keeps the
    // downstream `n + 1` arithmetic overflow-free.
    if n > u32::MAX as u64 {
        return Err(PersistError::Format(format!(
            "vertex count {n} exceeds the u32 id space"
        )));
    }
    Ok(n)
}

// ---------------------------------------------------------------------
// Labeling
// ---------------------------------------------------------------------

fn write_labeling_body<W: Write>(l: &Labeling, w: &mut W) -> std::io::Result<()> {
    let (oo, oh, io_, ih) = l.csr_parts();
    write_u32_slice(w, oo)?;
    write_u32_slice(w, oh)?;
    write_u32_slice(w, io_)?;
    write_u32_slice(w, ih)
}

fn read_labeling_body<R: Read>(r: &mut R, n: u64) -> Result<Labeling, PersistError> {
    let (oo, oh) = read_csr_side(r, n, "out")?;
    validate_sorted_lists(&oo, &oh, "out")?;
    let (io_, ih) = read_csr_side(r, n, "in")?;
    validate_sorted_lists(&io_, &ih, "in")?;
    Ok(Labeling::from_csr_unchecked(oo, oh, io_, ih))
}

/// Hop lists must be strictly sorted (the query is a sorted-merge
/// intersection). The condensation CSR skips this check — its
/// adjacency is re-canonicalized through [`GraphBuilder`] on load.
fn validate_sorted_lists(offsets: &[u32], hops: &[u32], what: &str) -> Result<(), PersistError> {
    for w in offsets.windows(2) {
        let list = &hops[w[0] as usize..w[1] as usize];
        if list.windows(2).any(|p| p[0] >= p[1]) {
            return Err(PersistError::Format(format!(
                "{what}: hop list not strictly sorted"
            )));
        }
    }
    Ok(())
}

/// Reads one `offsets` + `entries` CSR pair, validating the offsets
/// *before* reading the entry array so its read is bounded by the
/// final offset rather than by a corruptible length field.
fn read_csr_side<R: Read>(
    r: &mut R,
    n: u64,
    what: &str,
) -> Result<(Vec<u32>, Vec<u32>), PersistError> {
    let offsets = read_u32_vec(r, n + 1)?;
    validate_offsets(&offsets, n, what)?;
    let bound = *offsets.last().expect("nonempty") as u64;
    let entries = read_u32_vec(r, bound)?;
    if entries.len() as u64 != bound {
        return Err(PersistError::Format(format!(
            "{what}: final offset {bound} != entry count {}",
            entries.len()
        )));
    }
    Ok((offsets, entries))
}

fn validate_offsets(offsets: &[u32], n: u64, what: &str) -> Result<(), PersistError> {
    if offsets.len() as u64 != n + 1 {
        return Err(PersistError::Format(format!(
            "{what}: offsets length {} != n+1 = {}",
            offsets.len(),
            n + 1
        )));
    }
    if offsets.first() != Some(&0) {
        return Err(PersistError::Format(format!("{what}: offsets[0] != 0")));
    }
    if offsets.windows(2).any(|w| w[0] > w[1]) {
        return Err(PersistError::Format(format!(
            "{what}: offsets not monotone"
        )));
    }
    Ok(())
}

/// Writes a bare [`Labeling`] (plus the trailing signature section).
pub fn write_labeling<W: Write>(l: &Labeling, mut w: W) -> std::io::Result<()> {
    write_header(&mut w, KIND_LABELING, l.num_vertices() as u64)?;
    write_labeling_body(l, &mut w)?;
    write_signature_section(l, &mut w)
}

/// Reads a bare [`Labeling`], validating structure.
pub fn read_labeling<R: Read>(mut r: R) -> Result<Labeling, PersistError> {
    let n = read_header(&mut r, KIND_LABELING)?;
    let l = read_labeling_body(&mut r, n)?;
    read_signature_section(&mut r, &l)?;
    expect_eof(&mut r)?;
    Ok(l)
}

// ---------------------------------------------------------------------
// DistributionLabeling / HierarchicalLabeling
// ---------------------------------------------------------------------

fn write_dl_body<W: Write>(dl: &DistributionLabeling, w: &mut W) -> std::io::Result<()> {
    write_labeling_body(dl.labeling(), w)?;
    write_u32_slice(w, dl.order())
}

fn read_dl_body<R: Read>(r: &mut R, n: u64) -> Result<DistributionLabeling, PersistError> {
    let labeling = read_labeling_body(r, n)?;
    let order: Vec<VertexId> = read_u32_vec(r, n)?;
    if order.len() as u64 != n {
        return Err(PersistError::Format(format!(
            "order table length {} != n = {n}",
            order.len()
        )));
    }
    let mut seen = vec![false; n as usize];
    for &v in &order {
        if (v as u64) >= n || std::mem::replace(&mut seen[v as usize], true) {
            return Err(PersistError::Format(
                "order table is not a permutation".into(),
            ));
        }
    }
    Ok(DistributionLabeling::from_parts(labeling, order))
}

impl DistributionLabeling {
    /// Serializes the oracle (labels + rank order + signature section).
    pub fn save<W: Write>(&self, mut w: W) -> std::io::Result<()> {
        write_header(&mut w, KIND_DL, self.labeling().num_vertices() as u64)?;
        write_dl_body(self, &mut w)?;
        write_signature_section(self.labeling(), &mut w)
    }

    /// Deserializes an oracle written by [`Self::save`] — or by a
    /// pre-signature writer (the trailing `SIGS` section is optional;
    /// signatures are derived from the hop lists either way).
    pub fn load<R: Read>(mut r: R) -> Result<Self, PersistError> {
        let n = read_header(&mut r, KIND_DL)?;
        let dl = read_dl_body(&mut r, n)?;
        read_signature_section(&mut r, dl.labeling())?;
        expect_eof(&mut r)?;
        Ok(dl)
    }
}

// ---------------------------------------------------------------------
// Oracle (condensation + DistributionLabeling)
// ---------------------------------------------------------------------

impl Oracle {
    /// Serializes the full oracle: the SCC condensation (component
    /// mapping, component sizes, condensation-DAG edges) followed by
    /// the Distribution-Labeling over the components. This is the
    /// payload a query-serving replica (`hoplited --index NAME=FILE`)
    /// loads so it can answer original-vertex-id queries on an
    /// arbitrary cyclic digraph without rebuilding at startup.
    pub fn save<W: Write>(&self, mut w: W) -> std::io::Result<()> {
        let cond = self.condensation();
        write_header(&mut w, KIND_ORACLE, cond.comp_of.len() as u64)?;
        write_u32_slice(&mut w, &cond.comp_of)?;
        write_u32_slice(&mut w, &cond.comp_sizes)?;
        // Condensation DAG as CSR: offsets then concatenated targets.
        let g = cond.dag.graph();
        let c = g.num_vertices();
        let mut offsets: Vec<u32> = Vec::with_capacity(c + 1);
        let mut targets: Vec<u32> = Vec::with_capacity(g.num_edges());
        offsets.push(0);
        for v in 0..c as VertexId {
            targets.extend_from_slice(g.out_neighbors(v));
            offsets.push(targets.len() as u32);
        }
        write_u32_slice(&mut w, &offsets)?;
        write_u32_slice(&mut w, &targets)?;
        write_dl_body(self.inner(), &mut w)?;
        write_signature_section(self.inner().labeling(), &mut w)
    }

    /// Deserializes an oracle written by [`Self::save`], validating
    /// every structural invariant (component mapping in range and
    /// consistent with the size table, condensation edges strictly
    /// topological `c1 < c2` — which also proves acyclicity — and the
    /// labeling checks shared with [`DistributionLabeling::load`]).
    pub fn load<R: Read>(mut r: R) -> Result<Self, PersistError> {
        let n = read_header(&mut r, KIND_ORACLE)?;
        let comp_of = read_u32_vec(&mut r, n)?;
        if comp_of.len() as u64 != n {
            return Err(PersistError::Format(format!(
                "comp_of length {} != n = {n}",
                comp_of.len()
            )));
        }
        let comp_sizes = read_u32_vec(&mut r, n)?;
        let c = comp_sizes.len();
        let mut counts = vec![0u32; c];
        for &comp in &comp_of {
            if comp as usize >= c {
                return Err(PersistError::Format(format!(
                    "comp_of entry {comp} out of range (components: {c})"
                )));
            }
            counts[comp as usize] += 1;
        }
        if counts != comp_sizes {
            return Err(PersistError::Format(
                "comp_sizes disagrees with comp_of histogram".into(),
            ));
        }
        let (offsets, targets) = read_csr_side(&mut r, c as u64, "condensation")?;
        let mut b = GraphBuilder::with_capacity(c, targets.len());
        for v in 0..c {
            let (lo, hi) = (offsets[v] as usize, offsets[v + 1] as usize);
            for &t in &targets[lo..hi] {
                // Topological component ids (`tail < head`) double as
                // the acyclicity proof, so `Dag::new` cannot fail.
                if t as usize >= c || t <= v as u32 {
                    return Err(PersistError::Format(format!(
                        "condensation edge ({v}, {t}) is not topological"
                    )));
                }
                b.add_edge_unchecked(v as u32, t);
            }
        }
        let dag = Dag::new(b.build()).expect("topological edges are acyclic");
        let dl = read_dl_body(&mut r, c as u64)?;
        read_signature_section(&mut r, dl.labeling())?;
        expect_eof(&mut r)?;
        Ok(Oracle::from_parts(
            Condensation {
                dag,
                comp_of,
                comp_sizes,
            },
            dl,
        ))
    }
}

impl HierarchicalLabeling {
    /// Serializes the oracle (labels + decomposition level sizes).
    pub fn save<W: Write>(&self, mut w: W) -> std::io::Result<()> {
        write_header(&mut w, KIND_HL, self.labeling().num_vertices() as u64)?;
        write_labeling_body(self.labeling(), &mut w)?;
        let sizes: Vec<u32> = self.level_sizes().iter().map(|&s| s as u32).collect();
        write_u32_slice(&mut w, &sizes)
    }

    /// Deserializes an oracle written by [`Self::save`].
    pub fn load<R: Read>(mut r: R) -> Result<Self, PersistError> {
        let n = read_header(&mut r, KIND_HL)?;
        let labeling = read_labeling_body(&mut r, n)?;
        let sizes = read_u32_vec(&mut r, 1 << 20)?;
        expect_eof(&mut r)?;
        Ok(HierarchicalLabeling::from_parts(
            labeling,
            sizes.into_iter().map(|s| s as usize).collect(),
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::distribution::DlConfig;
    use crate::hierarchical::HlConfig;
    use crate::oracle::ReachIndex;
    use hoplite_graph::gen;
    use std::io::Cursor;

    #[test]
    fn labeling_roundtrip() {
        let dag = gen::random_dag(50, 140, 1);
        let dl = DistributionLabeling::build(&dag, &DlConfig::default());
        let mut buf = Vec::new();
        write_labeling(dl.labeling(), &mut buf).unwrap();
        let l2 = read_labeling(Cursor::new(&buf)).unwrap();
        for v in 0..50u32 {
            assert_eq!(dl.labeling().out_label(v), l2.out_label(v));
            assert_eq!(dl.labeling().in_label(v), l2.in_label(v));
        }
    }

    #[test]
    fn dl_roundtrip_preserves_queries() {
        let dag = gen::power_law_dag(60, 180, 2);
        let dl = DistributionLabeling::build(&dag, &DlConfig::default());
        let mut buf = Vec::new();
        dl.save(&mut buf).unwrap();
        let dl2 = DistributionLabeling::load(Cursor::new(&buf)).unwrap();
        for u in 0..60u32 {
            for v in 0..60u32 {
                assert_eq!(dl.query(u, v), dl2.query(u, v));
            }
        }
        assert_eq!(dl.order(), dl2.order());
    }

    #[test]
    fn hl_roundtrip_preserves_queries() {
        let dag = gen::random_dag(60, 180, 3);
        let hl = HierarchicalLabeling::build(
            &dag,
            &HlConfig {
                core_size_limit: 8,
                ..HlConfig::default()
            },
        );
        let mut buf = Vec::new();
        hl.save(&mut buf).unwrap();
        let hl2 = HierarchicalLabeling::load(Cursor::new(&buf)).unwrap();
        for u in 0..60u32 {
            for v in 0..60u32 {
                assert_eq!(hl.query(u, v), hl2.query(u, v));
            }
        }
        assert_eq!(hl.level_sizes(), hl2.level_sizes());
    }

    #[test]
    fn bad_magic_rejected() {
        let err = read_labeling(Cursor::new(b"NOPE\x01\x00\x00\x00")).unwrap_err();
        assert!(err.to_string().contains("magic"));
    }

    #[test]
    fn wrong_kind_rejected() {
        let dag = gen::random_dag(10, 20, 4);
        let dl = DistributionLabeling::build(&dag, &DlConfig::default());
        let mut buf = Vec::new();
        dl.save(&mut buf).unwrap(); // kind = DL
        let err = read_labeling(Cursor::new(&buf)).unwrap_err();
        assert!(err.to_string().contains("kind"), "{err}");
    }

    #[test]
    fn truncated_file_rejected() {
        let dag = gen::random_dag(20, 50, 5);
        let dl = DistributionLabeling::build(&dag, &DlConfig::default());
        let mut buf = Vec::new();
        dl.save(&mut buf).unwrap();
        buf.truncate(buf.len() / 2);
        assert!(DistributionLabeling::load(Cursor::new(&buf)).is_err());
    }

    #[test]
    fn corrupted_offsets_rejected() {
        let dag = gen::random_dag(20, 50, 6);
        let dl = DistributionLabeling::build(&dag, &DlConfig::default());
        let mut buf = Vec::new();
        write_labeling(dl.labeling(), &mut buf).unwrap();
        // Corrupt a byte inside the first offsets array (after the
        // 17-byte header and the 8-byte array length).
        buf[17 + 8 + 6] ^= 0xFF;
        assert!(read_labeling(Cursor::new(&buf)).is_err());
    }

    /// Byte size of the trailing signature section for `n` vertices:
    /// magic + shift + count + two u64 arrays.
    fn sig_section_len(n: usize) -> usize {
        4 + 4 + 8 + 16 * n
    }

    #[test]
    fn corrupted_order_rejected() {
        let dag = gen::random_dag(20, 50, 7);
        let dl = DistributionLabeling::build(&dag, &DlConfig::default());
        let mut buf = Vec::new();
        dl.save(&mut buf).unwrap();
        // Duplicate the first order entry over the second (the 20*4
        // order-table bytes sit just before the signature section).
        let tail = buf.len() - sig_section_len(20) - 20 * 4;
        let (a, b) = (buf[tail], buf[tail + 1]);
        buf[tail + 4] = a;
        buf[tail + 5] = b;
        buf[tail + 6] = buf[tail + 2];
        buf[tail + 7] = buf[tail + 3];
        let err = DistributionLabeling::load(Cursor::new(&buf)).unwrap_err();
        assert!(err.to_string().contains("permutation"), "{err}");
    }

    /// A PR 3-era file — the exact same bytes minus the trailing
    /// signature section — must still load, with signatures rebuilt
    /// from the hop lists (answers identical to the modern file).
    #[test]
    fn legacy_files_without_signature_section_load() {
        let dag = gen::power_law_dag(40, 120, 13);
        let dl = DistributionLabeling::build(&dag, &DlConfig::default());
        let mut buf = Vec::new();
        dl.save(&mut buf).unwrap();
        let mut legacy = buf.clone();
        legacy.truncate(buf.len() - sig_section_len(40));
        let restored = DistributionLabeling::load(Cursor::new(&legacy)).unwrap();
        for u in 0..40u32 {
            for v in 0..40u32 {
                assert_eq!(restored.query(u, v), dl.query(u, v), "({u},{v})");
            }
            assert_eq!(
                restored.labeling().out_signature(u),
                dl.labeling().out_signature(u),
                "rebuilt out signature diverged at {u}"
            );
            assert_eq!(
                restored.labeling().in_signature(u),
                dl.labeling().in_signature(u),
                "rebuilt in signature diverged at {u}"
            );
        }
    }

    #[test]
    fn corrupted_signature_section_rejected() {
        let dag = gen::random_dag(25, 70, 14);
        let dl = DistributionLabeling::build(&dag, &DlConfig::default());
        let mut buf = Vec::new();
        dl.save(&mut buf).unwrap();
        let section = buf.len() - sig_section_len(25);
        // Flip a bit inside the first out-signature word.
        let mut bad = buf.clone();
        bad[section + 4 + 4 + 8] ^= 0x01;
        let err = DistributionLabeling::load(Cursor::new(&bad)).unwrap_err();
        assert!(err.to_string().contains("signature"), "{err}");
        // A mangled section magic is an unknown trailing section.
        let mut bad = buf.clone();
        bad[section] = b'X';
        let err = DistributionLabeling::load(Cursor::new(&bad)).unwrap_err();
        assert!(err.to_string().contains("trailing section"), "{err}");
        // A section cut mid-array is a truncation error.
        let mut bad = buf;
        bad.truncate(section + 20);
        assert!(DistributionLabeling::load(Cursor::new(&bad)).is_err());
    }

    #[test]
    fn trailing_bytes_rejected() {
        let dag = gen::random_dag(15, 30, 8);
        let dl = DistributionLabeling::build(&dag, &DlConfig::default());
        let mut buf = Vec::new();
        dl.save(&mut buf).unwrap();
        buf.push(0);
        let err = DistributionLabeling::load(Cursor::new(&buf)).unwrap_err();
        assert!(err.to_string().contains("trailing"), "{err}");
    }

    fn random_cyclic_digraph(n: usize, m: usize, seed: u64) -> hoplite_graph::DiGraph {
        let mut rng = gen::Rng::new(seed);
        let edges: Vec<(u32, u32)> = (0..m)
            .filter_map(|_| {
                let u = rng.gen_index(n) as u32;
                let v = rng.gen_index(n) as u32;
                (u != v).then_some((u, v))
            })
            .collect();
        hoplite_graph::DiGraph::from_edges(n, &edges).unwrap()
    }

    #[test]
    fn oracle_roundtrip_preserves_queries_on_cyclic_digraph() {
        let g = random_cyclic_digraph(48, 150, 41);
        let o = Oracle::new(&g);
        let mut buf = Vec::new();
        o.save(&mut buf).unwrap();
        let o2 = Oracle::load(Cursor::new(&buf)).unwrap();
        assert_eq!(o.num_vertices(), o2.num_vertices());
        assert_eq!(o.num_components(), o2.num_components());
        assert_eq!(o.label_entries(), o2.label_entries());
        for u in 0..48u32 {
            for v in 0..48u32 {
                assert_eq!(o.reaches(u, v), o2.reaches(u, v), "({u},{v})");
            }
        }
    }

    #[test]
    fn oracle_roundtrip_batch_path_survives() {
        let g = random_cyclic_digraph(30, 90, 42);
        let o = Oracle::new(&g);
        let mut buf = Vec::new();
        o.save(&mut buf).unwrap();
        let o2 = Oracle::load(Cursor::new(&buf)).unwrap();
        let pairs: Vec<(u32, u32)> = (0..30).flat_map(|u| (0..30).map(move |v| (u, v))).collect();
        assert_eq!(o.reaches_batch(&pairs, 4), o2.reaches_batch(&pairs, 4));
    }

    #[test]
    fn oracle_wrong_kind_rejected() {
        let dag = gen::random_dag(10, 20, 4);
        let dl = DistributionLabeling::build(&dag, &DlConfig::default());
        let mut buf = Vec::new();
        dl.save(&mut buf).unwrap(); // kind = DL, not Oracle
        let err = Oracle::load(Cursor::new(&buf)).unwrap_err();
        assert!(err.to_string().contains("kind"), "{err}");
    }

    #[test]
    fn oracle_truncated_rejected() {
        let g = random_cyclic_digraph(20, 60, 43);
        let o = Oracle::new(&g);
        let mut buf = Vec::new();
        o.save(&mut buf).unwrap();
        for keep in [10, buf.len() / 3, buf.len() / 2, buf.len() - 1] {
            let mut cut = buf.clone();
            cut.truncate(keep);
            assert!(Oracle::load(Cursor::new(&cut)).is_err(), "keep={keep}");
        }
    }

    #[test]
    fn oracle_corrupt_comp_of_rejected() {
        let g = random_cyclic_digraph(20, 60, 44);
        let o = Oracle::new(&g);
        let mut buf = Vec::new();
        o.save(&mut buf).unwrap();
        // comp_of starts right after the 17-byte header and the 8-byte
        // array length; blow the first entry out of range.
        buf[17 + 8] = 0xFF;
        buf[17 + 8 + 1] = 0xFF;
        let err = Oracle::load(Cursor::new(&buf)).unwrap_err();
        assert!(
            err.to_string().contains("out of range") || err.to_string().contains("histogram"),
            "{err}"
        );
    }

    #[test]
    fn oracle_trailing_bytes_rejected() {
        let g = random_cyclic_digraph(12, 30, 45);
        let o = Oracle::new(&g);
        let mut buf = Vec::new();
        o.save(&mut buf).unwrap();
        buf.push(7);
        let err = Oracle::load(Cursor::new(&buf)).unwrap_err();
        assert!(err.to_string().contains("trailing"), "{err}");
    }

    #[test]
    fn huge_claimed_lengths_fail_without_huge_allocation() {
        // A header claiming u32::MAX vertices followed by an array
        // whose length field matches: the reader must hit EOF (after a
        // bounded prefix allocation), not allocate ~16 GiB up front.
        let mut buf = Vec::new();
        buf.extend_from_slice(b"HOPL");
        buf.extend_from_slice(&1u32.to_le_bytes());
        buf.push(4); // kind = Oracle
        buf.extend_from_slice(&(u32::MAX as u64).to_le_bytes()); // n
        buf.extend_from_slice(&(u32::MAX as u64).to_le_bytes()); // comp_of len
        assert!(matches!(
            Oracle::load(Cursor::new(&buf)),
            Err(PersistError::Io(_))
        ));
        // And a vertex count past the u32 id space is rejected outright.
        let mut buf = Vec::new();
        buf.extend_from_slice(b"HOPL");
        buf.extend_from_slice(&1u32.to_le_bytes());
        buf.push(4);
        buf.extend_from_slice(&u64::MAX.to_le_bytes());
        let err = Oracle::load(Cursor::new(&buf)).unwrap_err();
        assert!(err.to_string().contains("u32 id space"), "{err}");
    }

    #[test]
    fn hop_array_bounded_by_final_offset() {
        // Offsets say 2 hops, the hop array's length field claims 3:
        // the claimed length must be rejected against the offset bound.
        let dag = gen::random_dag(10, 25, 9);
        let dl = DistributionLabeling::build(&dag, &DlConfig::default());
        let mut buf = Vec::new();
        write_labeling(dl.labeling(), &mut buf).unwrap();
        // The out-hops length field sits right after the header (17)
        // and the offsets array (8 + 11*4).
        let pos = 17 + 8 + 11 * 4;
        let claimed = u64::from_le_bytes(buf[pos..pos + 8].try_into().unwrap());
        buf[pos..pos + 8].copy_from_slice(&(claimed + 1).to_le_bytes());
        let err = read_labeling(Cursor::new(&buf)).unwrap_err();
        assert!(err.to_string().contains("plausible bound"), "{err}");
    }

    #[test]
    fn empty_oracle_roundtrips() {
        let g = hoplite_graph::DiGraph::empty(0);
        let o = Oracle::new(&g);
        let mut buf = Vec::new();
        o.save(&mut buf).unwrap();
        let o2 = Oracle::load(Cursor::new(&buf)).unwrap();
        assert_eq!(o2.num_vertices(), 0);
        assert_eq!(o2.num_components(), 0);
    }

    #[test]
    fn empty_labeling_roundtrips() {
        let dag = hoplite_graph::Dag::from_edges(0, &[]).unwrap();
        let dl = DistributionLabeling::build(&dag, &DlConfig::default());
        let mut buf = Vec::new();
        dl.save(&mut buf).unwrap();
        let dl2 = DistributionLabeling::load(Cursor::new(&buf)).unwrap();
        assert_eq!(dl2.labeling().num_vertices(), 0);
    }
}
