//! Binary persistence for built oracles.
//!
//! The paper's headline is cheap construction, but a production user
//! still wants to build once and ship the index to query-serving
//! replicas. The format is a small, versioned little-endian layout:
//!
//! ```text
//! magic   4 bytes  "HOPL"
//! version u32      1
//! kind    u8       1 = bare Labeling, 2 = DistributionLabeling,
//!                  3 = HierarchicalLabeling
//! n       u64      vertex count
//! ...              kind-specific payload (CSR arrays, order table,
//!                  level sizes)
//! ```
//!
//! Readers validate structure (monotone offsets, strictly sorted hop
//! lists) so a corrupted file fails loudly instead of answering
//! queries wrong.
//!
//! ```
//! use hoplite_graph::Dag;
//! use hoplite_core::{DistributionLabeling, DlConfig, ReachIndex};
//!
//! let dag = Dag::from_edges(3, &[(0, 1), (1, 2)])?;
//! let dl = DistributionLabeling::build(&dag, &DlConfig::default());
//!
//! let mut bytes = Vec::new();
//! dl.save(&mut bytes)?;
//! let restored = DistributionLabeling::load(std::io::Cursor::new(&bytes)).unwrap();
//! assert!(restored.query(0, 2));
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

use std::fmt;
use std::io::{Read, Write};

use hoplite_graph::VertexId;

use crate::distribution::DistributionLabeling;
use crate::hierarchical::HierarchicalLabeling;
use crate::label::Labeling;

const MAGIC: &[u8; 4] = b"HOPL";
const VERSION: u32 = 1;
const KIND_LABELING: u8 = 1;
const KIND_DL: u8 = 2;
const KIND_HL: u8 = 3;

/// Errors returned by the readers.
#[derive(Debug)]
pub enum PersistError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// Structural problem in the payload.
    Format(String),
}

impl fmt::Display for PersistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PersistError::Io(e) => write!(f, "persist i/o error: {e}"),
            PersistError::Format(m) => write!(f, "persist format error: {m}"),
        }
    }
}

impl std::error::Error for PersistError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            PersistError::Io(e) => Some(e),
            PersistError::Format(_) => None,
        }
    }
}

impl From<std::io::Error> for PersistError {
    fn from(e: std::io::Error) -> Self {
        PersistError::Io(e)
    }
}

// ---------------------------------------------------------------------
// Primitive writers/readers
// ---------------------------------------------------------------------

fn write_u32<W: Write>(w: &mut W, x: u32) -> std::io::Result<()> {
    w.write_all(&x.to_le_bytes())
}

fn write_u64<W: Write>(w: &mut W, x: u64) -> std::io::Result<()> {
    w.write_all(&x.to_le_bytes())
}

fn write_u32_slice<W: Write>(w: &mut W, xs: &[u32]) -> std::io::Result<()> {
    write_u64(w, xs.len() as u64)?;
    for &x in xs {
        write_u32(w, x)?;
    }
    Ok(())
}

fn read_u8<R: Read>(r: &mut R) -> Result<u8, PersistError> {
    let mut b = [0u8; 1];
    r.read_exact(&mut b)?;
    Ok(b[0])
}

fn read_u32<R: Read>(r: &mut R) -> Result<u32, PersistError> {
    let mut b = [0u8; 4];
    r.read_exact(&mut b)?;
    Ok(u32::from_le_bytes(b))
}

fn read_u64<R: Read>(r: &mut R) -> Result<u64, PersistError> {
    let mut b = [0u8; 8];
    r.read_exact(&mut b)?;
    Ok(u64::from_le_bytes(b))
}

fn read_u32_vec<R: Read>(r: &mut R, cap_hint: u64) -> Result<Vec<u32>, PersistError> {
    let len = read_u64(r)?;
    if len > cap_hint {
        return Err(PersistError::Format(format!(
            "array of {len} entries exceeds plausible bound {cap_hint}"
        )));
    }
    let mut out = Vec::with_capacity(len as usize);
    let mut buf = [0u8; 4];
    for _ in 0..len {
        r.read_exact(&mut buf)?;
        out.push(u32::from_le_bytes(buf));
    }
    Ok(out)
}

/// Rejects files with bytes past the expected payload — trailing
/// garbage means the file was not produced by this writer (or the
/// caller mixed up formats), and silently ignoring it would mask
/// corruption.
fn expect_eof<R: Read>(r: &mut R) -> Result<(), PersistError> {
    let mut probe = [0u8; 1];
    match r.read(&mut probe)? {
        0 => Ok(()),
        _ => Err(PersistError::Format("trailing bytes after payload".into())),
    }
}

fn write_header<W: Write>(w: &mut W, kind: u8, n: u64) -> std::io::Result<()> {
    w.write_all(MAGIC)?;
    write_u32(w, VERSION)?;
    w.write_all(&[kind])?;
    write_u64(w, n)
}

fn read_header<R: Read>(r: &mut R, want_kind: u8) -> Result<u64, PersistError> {
    let mut magic = [0u8; 4];
    r.read_exact(&mut magic)?;
    if &magic != MAGIC {
        return Err(PersistError::Format(
            "bad magic (not a hoplite index)".into(),
        ));
    }
    let version = read_u32(r)?;
    if version != VERSION {
        return Err(PersistError::Format(format!(
            "unsupported version {version} (reader supports {VERSION})"
        )));
    }
    let kind = read_u8(r)?;
    if kind != want_kind {
        return Err(PersistError::Format(format!(
            "wrong payload kind {kind} (expected {want_kind})"
        )));
    }
    read_u64(r)
}

// ---------------------------------------------------------------------
// Labeling
// ---------------------------------------------------------------------

fn write_labeling_body<W: Write>(l: &Labeling, w: &mut W) -> std::io::Result<()> {
    let (oo, oh, io_, ih) = l.csr_parts();
    write_u32_slice(w, oo)?;
    write_u32_slice(w, oh)?;
    write_u32_slice(w, io_)?;
    write_u32_slice(w, ih)
}

fn read_labeling_body<R: Read>(r: &mut R, n: u64) -> Result<Labeling, PersistError> {
    let offsets_bound = n + 1;
    let hops_bound = u32::MAX as u64;
    let oo = read_u32_vec(r, offsets_bound)?;
    let oh = read_u32_vec(r, hops_bound)?;
    let io_ = read_u32_vec(r, offsets_bound)?;
    let ih = read_u32_vec(r, hops_bound)?;
    validate_csr(&oo, &oh, n, "out")?;
    validate_csr(&io_, &ih, n, "in")?;
    Ok(Labeling::from_csr_unchecked(oo, oh, io_, ih))
}

fn validate_csr(offsets: &[u32], hops: &[u32], n: u64, side: &str) -> Result<(), PersistError> {
    if offsets.len() as u64 != n + 1 {
        return Err(PersistError::Format(format!(
            "{side}: offsets length {} != n+1 = {}",
            offsets.len(),
            n + 1
        )));
    }
    if offsets.first() != Some(&0) {
        return Err(PersistError::Format(format!("{side}: offsets[0] != 0")));
    }
    if offsets.windows(2).any(|w| w[0] > w[1]) {
        return Err(PersistError::Format(format!(
            "{side}: offsets not monotone"
        )));
    }
    if *offsets.last().expect("nonempty") as usize != hops.len() {
        return Err(PersistError::Format(format!(
            "{side}: final offset {} != hop count {}",
            offsets.last().expect("nonempty"),
            hops.len()
        )));
    }
    for w in offsets.windows(2) {
        let list = &hops[w[0] as usize..w[1] as usize];
        if list.windows(2).any(|p| p[0] >= p[1]) {
            return Err(PersistError::Format(format!(
                "{side}: hop list not strictly sorted"
            )));
        }
    }
    Ok(())
}

/// Writes a bare [`Labeling`].
pub fn write_labeling<W: Write>(l: &Labeling, mut w: W) -> std::io::Result<()> {
    write_header(&mut w, KIND_LABELING, l.num_vertices() as u64)?;
    write_labeling_body(l, &mut w)
}

/// Reads a bare [`Labeling`], validating structure.
pub fn read_labeling<R: Read>(mut r: R) -> Result<Labeling, PersistError> {
    let n = read_header(&mut r, KIND_LABELING)?;
    let l = read_labeling_body(&mut r, n)?;
    expect_eof(&mut r)?;
    Ok(l)
}

// ---------------------------------------------------------------------
// DistributionLabeling / HierarchicalLabeling
// ---------------------------------------------------------------------

impl DistributionLabeling {
    /// Serializes the oracle (labels + rank order).
    pub fn save<W: Write>(&self, mut w: W) -> std::io::Result<()> {
        write_header(&mut w, KIND_DL, self.labeling().num_vertices() as u64)?;
        write_labeling_body(self.labeling(), &mut w)?;
        write_u32_slice(&mut w, self.order())
    }

    /// Deserializes an oracle written by [`Self::save`].
    pub fn load<R: Read>(mut r: R) -> Result<Self, PersistError> {
        let n = read_header(&mut r, KIND_DL)?;
        let labeling = read_labeling_body(&mut r, n)?;
        let order: Vec<VertexId> = read_u32_vec(&mut r, n)?;
        if order.len() as u64 != n {
            return Err(PersistError::Format(format!(
                "order table length {} != n = {n}",
                order.len()
            )));
        }
        let mut seen = vec![false; n as usize];
        for &v in &order {
            if (v as u64) >= n || std::mem::replace(&mut seen[v as usize], true) {
                return Err(PersistError::Format(
                    "order table is not a permutation".into(),
                ));
            }
        }
        expect_eof(&mut r)?;
        Ok(DistributionLabeling::from_parts(labeling, order))
    }
}

impl HierarchicalLabeling {
    /// Serializes the oracle (labels + decomposition level sizes).
    pub fn save<W: Write>(&self, mut w: W) -> std::io::Result<()> {
        write_header(&mut w, KIND_HL, self.labeling().num_vertices() as u64)?;
        write_labeling_body(self.labeling(), &mut w)?;
        let sizes: Vec<u32> = self.level_sizes().iter().map(|&s| s as u32).collect();
        write_u32_slice(&mut w, &sizes)
    }

    /// Deserializes an oracle written by [`Self::save`].
    pub fn load<R: Read>(mut r: R) -> Result<Self, PersistError> {
        let n = read_header(&mut r, KIND_HL)?;
        let labeling = read_labeling_body(&mut r, n)?;
        let sizes = read_u32_vec(&mut r, 1 << 20)?;
        expect_eof(&mut r)?;
        Ok(HierarchicalLabeling::from_parts(
            labeling,
            sizes.into_iter().map(|s| s as usize).collect(),
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::distribution::DlConfig;
    use crate::hierarchical::HlConfig;
    use crate::oracle::ReachIndex;
    use hoplite_graph::gen;
    use std::io::Cursor;

    #[test]
    fn labeling_roundtrip() {
        let dag = gen::random_dag(50, 140, 1);
        let dl = DistributionLabeling::build(&dag, &DlConfig::default());
        let mut buf = Vec::new();
        write_labeling(dl.labeling(), &mut buf).unwrap();
        let l2 = read_labeling(Cursor::new(&buf)).unwrap();
        for v in 0..50u32 {
            assert_eq!(dl.labeling().out_label(v), l2.out_label(v));
            assert_eq!(dl.labeling().in_label(v), l2.in_label(v));
        }
    }

    #[test]
    fn dl_roundtrip_preserves_queries() {
        let dag = gen::power_law_dag(60, 180, 2);
        let dl = DistributionLabeling::build(&dag, &DlConfig::default());
        let mut buf = Vec::new();
        dl.save(&mut buf).unwrap();
        let dl2 = DistributionLabeling::load(Cursor::new(&buf)).unwrap();
        for u in 0..60u32 {
            for v in 0..60u32 {
                assert_eq!(dl.query(u, v), dl2.query(u, v));
            }
        }
        assert_eq!(dl.order(), dl2.order());
    }

    #[test]
    fn hl_roundtrip_preserves_queries() {
        let dag = gen::random_dag(60, 180, 3);
        let hl = HierarchicalLabeling::build(
            &dag,
            &HlConfig {
                core_size_limit: 8,
                ..HlConfig::default()
            },
        );
        let mut buf = Vec::new();
        hl.save(&mut buf).unwrap();
        let hl2 = HierarchicalLabeling::load(Cursor::new(&buf)).unwrap();
        for u in 0..60u32 {
            for v in 0..60u32 {
                assert_eq!(hl.query(u, v), hl2.query(u, v));
            }
        }
        assert_eq!(hl.level_sizes(), hl2.level_sizes());
    }

    #[test]
    fn bad_magic_rejected() {
        let err = read_labeling(Cursor::new(b"NOPE\x01\x00\x00\x00")).unwrap_err();
        assert!(err.to_string().contains("magic"));
    }

    #[test]
    fn wrong_kind_rejected() {
        let dag = gen::random_dag(10, 20, 4);
        let dl = DistributionLabeling::build(&dag, &DlConfig::default());
        let mut buf = Vec::new();
        dl.save(&mut buf).unwrap(); // kind = DL
        let err = read_labeling(Cursor::new(&buf)).unwrap_err();
        assert!(err.to_string().contains("kind"), "{err}");
    }

    #[test]
    fn truncated_file_rejected() {
        let dag = gen::random_dag(20, 50, 5);
        let dl = DistributionLabeling::build(&dag, &DlConfig::default());
        let mut buf = Vec::new();
        dl.save(&mut buf).unwrap();
        buf.truncate(buf.len() / 2);
        assert!(DistributionLabeling::load(Cursor::new(&buf)).is_err());
    }

    #[test]
    fn corrupted_offsets_rejected() {
        let dag = gen::random_dag(20, 50, 6);
        let dl = DistributionLabeling::build(&dag, &DlConfig::default());
        let mut buf = Vec::new();
        write_labeling(dl.labeling(), &mut buf).unwrap();
        // Corrupt a byte inside the first offsets array (after the
        // 17-byte header and the 8-byte array length).
        buf[17 + 8 + 6] ^= 0xFF;
        assert!(read_labeling(Cursor::new(&buf)).is_err());
    }

    #[test]
    fn corrupted_order_rejected() {
        let dag = gen::random_dag(20, 50, 7);
        let dl = DistributionLabeling::build(&dag, &DlConfig::default());
        let mut buf = Vec::new();
        dl.save(&mut buf).unwrap();
        // Duplicate the first order entry over the second (last 20*4
        // bytes are the order table).
        let tail = buf.len() - 20 * 4;
        let (a, b) = (buf[tail], buf[tail + 1]);
        buf[tail + 4] = a;
        buf[tail + 5] = b;
        buf[tail + 6] = buf[tail + 2];
        buf[tail + 7] = buf[tail + 3];
        let err = DistributionLabeling::load(Cursor::new(&buf)).unwrap_err();
        assert!(err.to_string().contains("permutation"), "{err}");
    }

    #[test]
    fn trailing_bytes_rejected() {
        let dag = gen::random_dag(15, 30, 8);
        let dl = DistributionLabeling::build(&dag, &DlConfig::default());
        let mut buf = Vec::new();
        dl.save(&mut buf).unwrap();
        buf.push(0);
        let err = DistributionLabeling::load(Cursor::new(&buf)).unwrap_err();
        assert!(err.to_string().contains("trailing"), "{err}");
    }

    #[test]
    fn empty_labeling_roundtrips() {
        let dag = hoplite_graph::Dag::from_edges(0, &[]).unwrap();
        let dl = DistributionLabeling::build(&dag, &DlConfig::default());
        let mut buf = Vec::new();
        dl.save(&mut buf).unwrap();
        let dl2 = DistributionLabeling::load(Cursor::new(&buf)).unwrap();
        assert_eq!(dl2.labeling().num_vertices(), 0);
    }
}
