//! Binary persistence for built oracles: the HOPL v1 streaming format
//! and the HOPL v3 zero-copy arena.
//!
//! The paper's headline is cheap construction, but a production user
//! still wants to build once and ship the index to query-serving
//! replicas — the `hoplite-server` crate is that replica: `hoplited
//! serve --index NAME=FILE` loads an [`Oracle::save`] payload and
//! answers it over the wire.
//!
//! ## HOPL v1 — the streaming format
//!
//! The original format is a small, versioned little-endian layout:
//!
//! ```text
//! magic   4 bytes  "HOPL"
//! version u32      1
//! kind    u8       1 = bare Labeling, 2 = DistributionLabeling,
//!                  3 = HierarchicalLabeling,
//!                  4 = Oracle (condensation + DistributionLabeling)
//! n       u64      vertex count
//! ...              kind-specific payload (CSR arrays, order table,
//!                  level sizes)
//! [SIGS]           optional trailing section: "SIGS", sig_shift:u32,
//!                  n:u64, n×out_sig:u64, n×in_sig:u64
//! ```
//!
//! Readers validate structure (monotone offsets, strictly sorted hop
//! lists) so a corrupted file fails loudly instead of answering
//! queries wrong.
//!
//! The `SIGS` section carries the per-vertex rank-band signatures the
//! query path rejects on (see [`crate::label`]). It is *optional on
//! read*: files written before the signature layer existed simply end
//! after the main payload, and the loader rebuilds the signatures from
//! the hop lists on the fly. When the section is present the reader
//! cross-checks every persisted signature against the one derived from
//! its list — a flipped signature bit would otherwise silently turn
//! reachable pairs unreachable.
//!
//! Under v1 the [`crate::QueryFilters`] pre-filter stage is **derived
//! state**: [`Oracle::load`] rebuilds it in `O(n + m)` from the
//! persisted condensation DAG, so the v1 format is unchanged by the
//! filter layer and indexes written before it exist keep loading (and
//! gain the filters for free).
//!
//! ## HOPL v3 — the zero-copy arena
//!
//! v1 deserializes every array into fresh heap `Vec`s and then
//! *recomputes* signatures (pre-`SIGS` files) and filter records on
//! each load: a replica of a multi-GB index pays seconds of cold
//! start and 2× transient memory before its first query. HOPL v3
//! ([`Oracle::save_arena`] / [`Oracle::open`]) turns the file itself
//! into the index: a 64-byte header, a checksummed section table, and
//! raw little-endian arrays at 64-byte-aligned offsets — including
//! the rank-band signatures **and the 32-byte filter records**, the
//! state O'Reach observes is cheap to store and expensive to derive.
//! [`Oracle::open`] maps the file ([`crate::store::ArenaBuf`]),
//! validates the table, and serves straight out of the mapping: no
//! array is copied (the condensation DAG, needed only for
//! re-`save`/introspection, is the one owned exception) and nothing
//! is recomputed. See [`Oracle::open_with`] for the knobs
//! ([`OpenOptions`]: mmap vs read, prefault, checksum verification)
//! and the README for the full section table.
//!
//! Version dispatch is automatic everywhere: [`Oracle::open`] and
//! [`Oracle::load`] both sniff the header version, so v1 files (with
//! or without the `SIGS` section) keep loading through the owned
//! path while v3 files take the arena path.
//!
//! ```
//! use hoplite_graph::Dag;
//! use hoplite_core::{DistributionLabeling, DlConfig, ReachIndex};
//!
//! let dag = Dag::from_edges(3, &[(0, 1), (1, 2)])?;
//! let dl = DistributionLabeling::build(&dag, &DlConfig::default());
//!
//! let mut bytes = Vec::new();
//! dl.save(&mut bytes)?;
//! let restored = DistributionLabeling::load(std::io::Cursor::new(&bytes)).unwrap();
//! assert!(restored.query(0, 2));
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

use std::fmt;
use std::io::{Read, Write};
use std::path::Path;
use std::sync::Arc;

use hoplite_graph::digraph::GraphBuilder;
use hoplite_graph::scc::Condensation;
use hoplite_graph::{Dag, VertexId};

use crate::distribution::DistributionLabeling;
use crate::filter::{QueryFilters, FILTER_RECORD_BYTES};
use crate::hierarchical::HierarchicalLabeling;
use crate::label::Labeling;
use crate::oracle::Oracle;
use crate::store::{checksum, ArenaBuf, Store};

const MAGIC: &[u8; 4] = b"HOPL";
const SIG_MAGIC: &[u8; 4] = b"SIGS";
const VERSION: u32 = 1;
const KIND_LABELING: u8 = 1;
const KIND_DL: u8 = 2;
const KIND_HL: u8 = 3;
const KIND_ORACLE: u8 = 4;

/// Errors returned by the readers.
#[derive(Debug)]
pub enum PersistError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// Structural problem in the payload.
    Format(String),
}

impl fmt::Display for PersistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PersistError::Io(e) => write!(f, "persist i/o error: {e}"),
            PersistError::Format(m) => write!(f, "persist format error: {m}"),
        }
    }
}

impl std::error::Error for PersistError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            PersistError::Io(e) => Some(e),
            PersistError::Format(_) => None,
        }
    }
}

impl From<std::io::Error> for PersistError {
    fn from(e: std::io::Error) -> Self {
        PersistError::Io(e)
    }
}

// ---------------------------------------------------------------------
// Primitive writers/readers
// ---------------------------------------------------------------------

fn write_u32<W: Write>(w: &mut W, x: u32) -> std::io::Result<()> {
    w.write_all(&x.to_le_bytes())
}

fn write_u64<W: Write>(w: &mut W, x: u64) -> std::io::Result<()> {
    w.write_all(&x.to_le_bytes())
}

fn write_u32_slice<W: Write>(w: &mut W, xs: &[u32]) -> std::io::Result<()> {
    write_u64(w, xs.len() as u64)?;
    for &x in xs {
        write_u32(w, x)?;
    }
    Ok(())
}

fn read_u8<R: Read>(r: &mut R) -> Result<u8, PersistError> {
    let mut b = [0u8; 1];
    r.read_exact(&mut b)?;
    Ok(b[0])
}

fn read_u32<R: Read>(r: &mut R) -> Result<u32, PersistError> {
    let mut b = [0u8; 4];
    r.read_exact(&mut b)?;
    Ok(u32::from_le_bytes(b))
}

fn read_u64<R: Read>(r: &mut R) -> Result<u64, PersistError> {
    let mut b = [0u8; 8];
    r.read_exact(&mut b)?;
    Ok(u64::from_le_bytes(b))
}

fn read_u32_vec<R: Read>(r: &mut R, cap_hint: u64) -> Result<Vec<u32>, PersistError> {
    let len = read_u64(r)?;
    if len > cap_hint {
        return Err(PersistError::Format(format!(
            "array of {len} entries exceeds plausible bound {cap_hint}"
        )));
    }
    // Pre-size from the claimed length, but never by more than 4 MiB:
    // a corrupt length field must fail at the EOF it implies, not
    // allocate gigabytes up front.
    let mut out = Vec::with_capacity(len.min(1 << 20) as usize);
    let mut buf = [0u8; 4];
    for _ in 0..len {
        r.read_exact(&mut buf)?;
        out.push(u32::from_le_bytes(buf));
    }
    Ok(out)
}

/// Rejects files with bytes past the expected payload — trailing
/// garbage means the file was not produced by this writer (or the
/// caller mixed up formats), and silently ignoring it would mask
/// corruption.
fn expect_eof<R: Read>(r: &mut R) -> Result<(), PersistError> {
    let mut probe = [0u8; 1];
    match r.read(&mut probe)? {
        0 => Ok(()),
        _ => Err(PersistError::Format("trailing bytes after payload".into())),
    }
}

/// Writes the optional trailing signature section (see module docs).
fn write_signature_section<W: Write>(l: &Labeling, w: &mut W) -> std::io::Result<()> {
    let (out_sigs, in_sigs, shift) = l.signature_parts();
    w.write_all(SIG_MAGIC)?;
    write_u32(w, shift)?;
    write_u64(w, out_sigs.len() as u64)?;
    for &s in out_sigs.iter().chain(in_sigs.iter()) {
        write_u64(w, s)?;
    }
    Ok(())
}

/// Consumes the optional trailing signature section. A clean EOF in
/// place of the section magic is a legacy (pre-signature) file — fine,
/// `l` already derived its signatures from the hop lists. A present
/// section must agree with the derived signatures exactly; any
/// divergence is corruption (a wrong signature silently flips query
/// answers, so it must fail loudly here instead).
fn read_signature_section<R: Read>(r: &mut R, l: &Labeling) -> Result<(), PersistError> {
    let mut magic = [0u8; 4];
    let mut filled = 0usize;
    while filled < magic.len() {
        match r.read(&mut magic[filled..])? {
            0 if filled == 0 => return Ok(()), // legacy file: no section
            0 => {
                return Err(PersistError::Format(
                    "truncated trailing-section magic".into(),
                ))
            }
            k => filled += k,
        }
    }
    if &magic != SIG_MAGIC {
        return Err(PersistError::Format(format!(
            "unknown trailing section {magic:?}"
        )));
    }
    let (out_sigs, in_sigs, want_shift) = l.signature_parts();
    let shift = read_u32(r)?;
    if shift != want_shift {
        return Err(PersistError::Format(format!(
            "signature shift {shift} disagrees with the labels (expected {want_shift})"
        )));
    }
    let n = read_u64(r)?;
    if n as usize != out_sigs.len() {
        return Err(PersistError::Format(format!(
            "signature count {n} != vertex count {}",
            out_sigs.len()
        )));
    }
    for (what, want) in [("out", out_sigs), ("in", in_sigs)] {
        for (v, &expect) in want.iter().enumerate() {
            let got = read_u64(r)?;
            if got != expect {
                return Err(PersistError::Format(format!(
                    "{what} signature of vertex {v} disagrees with its hop list"
                )));
            }
        }
    }
    Ok(())
}

fn write_header<W: Write>(w: &mut W, kind: u8, n: u64) -> std::io::Result<()> {
    w.write_all(MAGIC)?;
    write_u32(w, VERSION)?;
    w.write_all(&[kind])?;
    write_u64(w, n)
}

fn read_header<R: Read>(r: &mut R, want_kind: u8) -> Result<u64, PersistError> {
    let mut magic = [0u8; 4];
    r.read_exact(&mut magic)?;
    if &magic != MAGIC {
        return Err(PersistError::Format(
            "bad magic (not a hoplite index)".into(),
        ));
    }
    let version = read_u32(r)?;
    if version != VERSION {
        return Err(PersistError::Format(format!(
            "unsupported version {version} (reader supports {VERSION})"
        )));
    }
    let kind = read_u8(r)?;
    if kind != want_kind {
        return Err(PersistError::Format(format!(
            "wrong payload kind {kind} (expected {want_kind})"
        )));
    }
    let n = read_u64(r)?;
    // Vertex ids are u32 throughout the workspace, so a larger count
    // can only come from corruption; rejecting it here also keeps the
    // downstream `n + 1` arithmetic overflow-free.
    if n > u32::MAX as u64 {
        return Err(PersistError::Format(format!(
            "vertex count {n} exceeds the u32 id space"
        )));
    }
    Ok(n)
}

// ---------------------------------------------------------------------
// Labeling
// ---------------------------------------------------------------------

fn write_labeling_body<W: Write>(l: &Labeling, w: &mut W) -> std::io::Result<()> {
    let (oo, oh, io_, ih) = l.csr_parts();
    write_u32_slice(w, oo)?;
    write_u32_slice(w, oh)?;
    write_u32_slice(w, io_)?;
    write_u32_slice(w, ih)
}

fn read_labeling_body<R: Read>(r: &mut R, n: u64) -> Result<Labeling, PersistError> {
    let (oo, oh) = read_csr_side(r, n, "out")?;
    validate_sorted_lists(&oo, &oh, "out")?;
    let (io_, ih) = read_csr_side(r, n, "in")?;
    validate_sorted_lists(&io_, &ih, "in")?;
    Ok(Labeling::from_csr_unchecked(oo, oh, io_, ih))
}

/// Hop lists must be strictly sorted (the query is a sorted-merge
/// intersection). The condensation CSR skips this check — its
/// adjacency is re-canonicalized through [`GraphBuilder`] on load.
fn validate_sorted_lists(offsets: &[u32], hops: &[u32], what: &str) -> Result<(), PersistError> {
    for w in offsets.windows(2) {
        let list = &hops[w[0] as usize..w[1] as usize];
        if list.windows(2).any(|p| p[0] >= p[1]) {
            return Err(PersistError::Format(format!(
                "{what}: hop list not strictly sorted"
            )));
        }
    }
    Ok(())
}

/// Reads one `offsets` + `entries` CSR pair, validating the offsets
/// *before* reading the entry array so its read is bounded by the
/// final offset rather than by a corruptible length field.
fn read_csr_side<R: Read>(
    r: &mut R,
    n: u64,
    what: &str,
) -> Result<(Vec<u32>, Vec<u32>), PersistError> {
    let offsets = read_u32_vec(r, n + 1)?;
    validate_offsets(&offsets, n, what)?;
    let bound = *offsets.last().expect("nonempty") as u64;
    let entries = read_u32_vec(r, bound)?;
    if entries.len() as u64 != bound {
        return Err(PersistError::Format(format!(
            "{what}: final offset {bound} != entry count {}",
            entries.len()
        )));
    }
    Ok((offsets, entries))
}

fn validate_offsets(offsets: &[u32], n: u64, what: &str) -> Result<(), PersistError> {
    if offsets.len() as u64 != n + 1 {
        return Err(PersistError::Format(format!(
            "{what}: offsets length {} != n+1 = {}",
            offsets.len(),
            n + 1
        )));
    }
    if offsets.first() != Some(&0) {
        return Err(PersistError::Format(format!("{what}: offsets[0] != 0")));
    }
    if offsets.windows(2).any(|w| w[0] > w[1]) {
        return Err(PersistError::Format(format!(
            "{what}: offsets not monotone"
        )));
    }
    Ok(())
}

/// Writes a bare [`Labeling`] (plus the trailing signature section).
pub fn write_labeling<W: Write>(l: &Labeling, mut w: W) -> std::io::Result<()> {
    write_header(&mut w, KIND_LABELING, l.num_vertices() as u64)?;
    write_labeling_body(l, &mut w)?;
    write_signature_section(l, &mut w)
}

/// Reads a bare [`Labeling`], validating structure.
pub fn read_labeling<R: Read>(mut r: R) -> Result<Labeling, PersistError> {
    let n = read_header(&mut r, KIND_LABELING)?;
    let l = read_labeling_body(&mut r, n)?;
    read_signature_section(&mut r, &l)?;
    expect_eof(&mut r)?;
    Ok(l)
}

// ---------------------------------------------------------------------
// DistributionLabeling / HierarchicalLabeling
// ---------------------------------------------------------------------

fn write_dl_body<W: Write>(dl: &DistributionLabeling, w: &mut W) -> std::io::Result<()> {
    write_labeling_body(dl.labeling(), w)?;
    write_u32_slice(w, dl.order())
}

fn read_dl_body<R: Read>(r: &mut R, n: u64) -> Result<DistributionLabeling, PersistError> {
    let labeling = read_labeling_body(r, n)?;
    let order: Vec<VertexId> = read_u32_vec(r, n)?;
    if order.len() as u64 != n {
        return Err(PersistError::Format(format!(
            "order table length {} != n = {n}",
            order.len()
        )));
    }
    let mut seen = vec![false; n as usize];
    for &v in &order {
        if (v as u64) >= n || std::mem::replace(&mut seen[v as usize], true) {
            return Err(PersistError::Format(
                "order table is not a permutation".into(),
            ));
        }
    }
    Ok(DistributionLabeling::from_parts(labeling, order))
}

impl DistributionLabeling {
    /// Serializes the oracle (labels + rank order + signature section).
    pub fn save<W: Write>(&self, mut w: W) -> std::io::Result<()> {
        write_header(&mut w, KIND_DL, self.labeling().num_vertices() as u64)?;
        write_dl_body(self, &mut w)?;
        write_signature_section(self.labeling(), &mut w)
    }

    /// Deserializes an oracle written by [`Self::save`] — or by a
    /// pre-signature writer (the trailing `SIGS` section is optional;
    /// signatures are derived from the hop lists either way).
    pub fn load<R: Read>(mut r: R) -> Result<Self, PersistError> {
        let n = read_header(&mut r, KIND_DL)?;
        let dl = read_dl_body(&mut r, n)?;
        read_signature_section(&mut r, dl.labeling())?;
        expect_eof(&mut r)?;
        Ok(dl)
    }
}

// ---------------------------------------------------------------------
// Oracle (condensation + DistributionLabeling)
// ---------------------------------------------------------------------

impl Oracle {
    /// Serializes the full oracle: the SCC condensation (component
    /// mapping, component sizes, condensation-DAG edges) followed by
    /// the Distribution-Labeling over the components. This is the
    /// payload a query-serving replica (`hoplited --index NAME=FILE`)
    /// loads so it can answer original-vertex-id queries on an
    /// arbitrary cyclic digraph without rebuilding at startup.
    pub fn save<W: Write>(&self, mut w: W) -> std::io::Result<()> {
        write_header(&mut w, KIND_ORACLE, self.comp_of().len() as u64)?;
        write_u32_slice(&mut w, self.comp_of())?;
        write_u32_slice(&mut w, self.comp_sizes())?;
        // Condensation DAG as CSR: offsets then concatenated targets.
        let g = self.dag().graph();
        let c = g.num_vertices();
        let mut offsets: Vec<u32> = Vec::with_capacity(c + 1);
        let mut targets: Vec<u32> = Vec::with_capacity(g.num_edges());
        offsets.push(0);
        for v in 0..c as VertexId {
            targets.extend_from_slice(g.out_neighbors(v));
            offsets.push(targets.len() as u32);
        }
        write_u32_slice(&mut w, &offsets)?;
        write_u32_slice(&mut w, &targets)?;
        write_dl_body(self.inner(), &mut w)?;
        write_signature_section(self.inner().labeling(), &mut w)
    }

    /// Deserializes an oracle from any HOPL version: v1 payloads
    /// stream through the owned path below, v3 arenas are read fully
    /// into an aligned heap buffer and opened in place (an
    /// [`Oracle::open`] without the mmap — callers holding a file
    /// should prefer `open`, which maps instead of reading).
    pub fn load<R: Read>(mut r: R) -> Result<Self, PersistError> {
        // Sniff magic + version, then hand the bytes back to the
        // matching reader.
        let mut head = [0u8; 8];
        r.read_exact(&mut head)?;
        if &head[..4] == MAGIC
            && u32::from_le_bytes(head[4..8].try_into().expect("4 bytes")) == ARENA_VERSION
        {
            // The header pins (and its checksum authenticates) the
            // file length, so the whole arena lands in one aligned
            // allocation — no intermediate Vec, no second copy.
            let mut header = [0u8; ARENA_HEADER_LEN];
            header[..8].copy_from_slice(&head);
            r.read_exact(&mut header[8..])?;
            let file_len = arena_header_file_len(&header)?;
            let buf = ArenaBuf::from_prefix_and_reader(&header, file_len, &mut r)?;
            let mut probe = [0u8; 1];
            if r.read(&mut probe)? != 0 {
                return Err(arena_err("trailing bytes after the arena"));
            }
            return open_arena(Arc::new(buf), true);
        }
        Self::load_v1(std::io::Cursor::new(head).chain(r))
    }

    /// The HOPL v1 streaming reader behind [`Oracle::load`],
    /// validating every structural invariant (component mapping in
    /// range and consistent with the size table, condensation edges
    /// strictly topological `c1 < c2` — which also proves acyclicity —
    /// and the labeling checks shared with
    /// [`DistributionLabeling::load`]).
    fn load_v1<R: Read>(mut r: R) -> Result<Self, PersistError> {
        let n = read_header(&mut r, KIND_ORACLE)?;
        let comp_of = read_u32_vec(&mut r, n)?;
        if comp_of.len() as u64 != n {
            return Err(PersistError::Format(format!(
                "comp_of length {} != n = {n}",
                comp_of.len()
            )));
        }
        let comp_sizes = read_u32_vec(&mut r, n)?;
        let c = comp_sizes.len();
        let mut counts = vec![0u32; c];
        for &comp in &comp_of {
            if comp as usize >= c {
                return Err(PersistError::Format(format!(
                    "comp_of entry {comp} out of range (components: {c})"
                )));
            }
            counts[comp as usize] += 1;
        }
        if counts != comp_sizes {
            return Err(PersistError::Format(
                "comp_sizes disagrees with comp_of histogram".into(),
            ));
        }
        let (offsets, targets) = read_csr_side(&mut r, c as u64, "condensation")?;
        let mut b = GraphBuilder::with_capacity(c, targets.len());
        for v in 0..c {
            let (lo, hi) = (offsets[v] as usize, offsets[v + 1] as usize);
            for &t in &targets[lo..hi] {
                // Topological component ids (`tail < head`) double as
                // the acyclicity proof, so `Dag::new` cannot fail.
                if t as usize >= c || t <= v as u32 {
                    return Err(PersistError::Format(format!(
                        "condensation edge ({v}, {t}) is not topological"
                    )));
                }
                b.add_edge_unchecked(v as u32, t);
            }
        }
        let dag = Dag::new(b.build()).expect("topological edges are acyclic");
        let dl = read_dl_body(&mut r, c as u64)?;
        read_signature_section(&mut r, dl.labeling())?;
        expect_eof(&mut r)?;
        Ok(Oracle::from_parts(
            Condensation {
                dag,
                comp_of,
                comp_sizes,
            },
            dl,
        ))
    }
}

// ---------------------------------------------------------------------
// HOPL v3: the zero-copy arena
// ---------------------------------------------------------------------

/// HOPL version of the arena format.
pub const ARENA_VERSION: u32 = 3;
/// Fixed arena header length; the section table starts right after.
const ARENA_HEADER_LEN: usize = 64;
/// One section-table entry: 8-byte tag + offset + length + checksum.
const SECTION_ENTRY_LEN: usize = 32;
/// Alignment of every section offset (and the whole file length).
const SECTION_ALIGN: usize = crate::store::ARENA_ALIGN;
/// Ceiling on the section count a reader accepts (14 today; slack for
/// forward-compatible additions, tight enough that a corrupt count
/// cannot drive a large allocation).
const MAX_SECTIONS: u32 = 64;

/// Section tags, in file order. 8 ASCII bytes, NUL-padded.
const SEC_COMP_OF: &[u8; 8] = b"COMP_OF\0";
const SEC_COMP_SZ: &[u8; 8] = b"COMP_SZ\0";
const SEC_DAG_OOF: &[u8; 8] = b"DAG_OOF\0";
const SEC_DAG_OTG: &[u8; 8] = b"DAG_OTG\0";
const SEC_DAG_IOF: &[u8; 8] = b"DAG_IOF\0";
const SEC_DAG_ITG: &[u8; 8] = b"DAG_ITG\0";
const SEC_ORDER: &[u8; 8] = b"ORDER\0\0\0";
const SEC_OUT_OFF: &[u8; 8] = b"OUT_OFF\0";
const SEC_OUT_HOP: &[u8; 8] = b"OUT_HOP\0";
const SEC_IN_OFF: &[u8; 8] = b"IN_OFF\0\0";
const SEC_IN_HOP: &[u8; 8] = b"IN_HOP\0\0";
const SEC_OUT_SIG: &[u8; 8] = b"OUT_SIG\0";
const SEC_IN_SIG: &[u8; 8] = b"IN_SIG\0\0";
const SEC_FILTREC: &[u8; 8] = b"FILTREC\0";

fn align_up(x: usize, align: usize) -> usize {
    x.div_ceil(align) * align
}

/// One section's payload, borrowed from the live index — sections are
/// streamed to the writer (and into [`ChecksumStream`]) rather than
/// materialized, so saving a multi-GB index costs O(1) extra memory.
enum SectionData<'a> {
    U32(&'a [u32]),
    U64(&'a [u64]),
    Raw(&'a [u8]),
}

impl SectionData<'_> {
    fn byte_len(&self) -> usize {
        match self {
            SectionData::U32(xs) => xs.len() * 4,
            SectionData::U64(xs) => xs.len() * 8,
            SectionData::Raw(b) => b.len(),
        }
    }

    /// The section's file bytes, borrowed in place. HOPL v3 is a
    /// little-endian-only format served by reinterpreting mapped
    /// bytes, so on LE targets (the only ones [`arena_endianness_ok`]
    /// admits) the live arrays *are* the encoding — one borrow, zero
    /// copies. The `Raw` records are byte-identical by the same
    /// contract.
    fn le_bytes(&self) -> &[u8] {
        match self {
            // SAFETY: Pod element types have no padding and the
            // slice is live; on LE the byte view is the encoding.
            SectionData::U32(xs) => unsafe {
                std::slice::from_raw_parts(xs.as_ptr() as *const u8, xs.len() * 4)
            },
            SectionData::U64(xs) => unsafe {
                std::slice::from_raw_parts(xs.as_ptr() as *const u8, xs.len() * 8)
            },
            SectionData::Raw(b) => b,
        }
    }

    fn checksum(&self) -> u64 {
        checksum(self.le_bytes())
    }
}

/// HOPL v3 serves typed slices straight out of the file bytes, so the
/// format is little-endian-only end to end — a big-endian host must
/// use the (byte-at-a-time decoded) v1 format instead of silently
/// writing or reading byte-swapped arrays.
fn arena_endianness_ok() -> Result<(), PersistError> {
    if cfg!(target_endian = "little") {
        Ok(())
    } else {
        Err(arena_err(
            "HOPL v3 arenas are little-endian-only; use the v1 format on this host",
        ))
    }
}

/// How to open an on-disk index; see [`Oracle::open_with`].
#[derive(Clone, Copy, Debug)]
pub struct OpenOptions {
    /// `mmap` the file (unix) instead of reading it into an aligned
    /// heap buffer. Mapped opens are O(header) in I/O and share page
    /// cache across processes; the read fallback still shares one
    /// buffer across in-process replicas. Default `true`.
    pub mmap: bool,
    /// Touch every page of the buffer at open so first queries do not
    /// page-fault (cold-start latency moved from query time to open
    /// time). Default `false`.
    pub prefault: bool,
    /// Verify the per-section checksums and the cheap structural
    /// invariants (monotone offsets, in-range component ids) before
    /// serving. One sequential pass over the file; disable only for
    /// trusted files where a strictly O(header) open matters.
    /// Default `true`.
    pub verify: bool,
}

impl Default for OpenOptions {
    fn default() -> Self {
        OpenOptions {
            mmap: true,
            prefault: false,
            verify: true,
        }
    }
}

impl Oracle {
    /// Serializes the oracle as a HOPL v3 arena: header, checksummed
    /// section table, then every array — component tables,
    /// condensation-DAG CSR (both directions), rank order, label CSRs,
    /// rank-band signatures, and the 32-byte filter records — as raw
    /// little-endian bytes at 64-byte-aligned offsets. A file written
    /// here opens in O(header) via [`Oracle::open`]: nothing needs to
    /// be re-derived, re-validated element-by-element, or copied.
    pub fn save_arena<W: Write>(&self, mut w: W) -> std::io::Result<()> {
        arena_endianness_ok().map_err(std::io::Error::other)?;
        let labeling = self.inner().labeling();
        let (oo, oh, io_, ih) = labeling.csr_parts();
        let (osig, isig, sig_shift) = labeling.signature_parts();
        let (doo, dot, dio, dit) = self.dag().graph().csr_parts();
        let sections: Vec<(&[u8; 8], SectionData)> = vec![
            (SEC_COMP_OF, SectionData::U32(self.comp_of())),
            (SEC_COMP_SZ, SectionData::U32(self.comp_sizes())),
            (SEC_DAG_OOF, SectionData::U32(doo)),
            (SEC_DAG_OTG, SectionData::U32(dot)),
            (SEC_DAG_IOF, SectionData::U32(dio)),
            (SEC_DAG_ITG, SectionData::U32(dit)),
            (SEC_ORDER, SectionData::U32(self.inner().order())),
            (SEC_OUT_OFF, SectionData::U32(oo)),
            (SEC_OUT_HOP, SectionData::U32(oh)),
            (SEC_IN_OFF, SectionData::U32(io_)),
            (SEC_IN_HOP, SectionData::U32(ih)),
            (SEC_OUT_SIG, SectionData::U64(osig)),
            (SEC_IN_SIG, SectionData::U64(isig)),
            (SEC_FILTREC, SectionData::Raw(self.filters().record_bytes())),
        ];

        // Layout: table right after the header, first section at the
        // next 64-byte boundary, every later section likewise. The
        // table pass borrows and checksums each section in place;
        // nothing is materialized.
        let table_len = sections.len() * SECTION_ENTRY_LEN;
        let mut table = Vec::with_capacity(table_len);
        let mut offset = align_up(ARENA_HEADER_LEN + table_len, SECTION_ALIGN);
        let mut placed = Vec::with_capacity(sections.len());
        for (tag, data) in &sections {
            table.extend_from_slice(*tag);
            table.extend_from_slice(&(offset as u64).to_le_bytes());
            table.extend_from_slice(&(data.byte_len() as u64).to_le_bytes());
            table.extend_from_slice(&data.checksum().to_le_bytes());
            placed.push(offset);
            offset = align_up(offset + data.byte_len(), SECTION_ALIGN);
        }
        let file_len = offset;

        let mut header = Vec::with_capacity(ARENA_HEADER_LEN);
        header.extend_from_slice(MAGIC);
        header.extend_from_slice(&ARENA_VERSION.to_le_bytes());
        header.push(KIND_ORACLE);
        header.extend_from_slice(&[0u8; 3]);
        header.extend_from_slice(&(sections.len() as u32).to_le_bytes());
        header.extend_from_slice(&(self.num_vertices() as u64).to_le_bytes());
        header.extend_from_slice(&(self.num_components() as u64).to_le_bytes());
        header.extend_from_slice(&sig_shift.to_le_bytes());
        header.extend_from_slice(&[0u8; 4]);
        header.extend_from_slice(&(file_len as u64).to_le_bytes());
        header.extend_from_slice(&checksum(&table).to_le_bytes());
        debug_assert_eq!(header.len(), 56);
        let header_sum = checksum(&header);
        header.extend_from_slice(&header_sum.to_le_bytes());

        w.write_all(&header)?;
        w.write_all(&table)?;
        let mut cursor = ARENA_HEADER_LEN + table_len;
        const ZEROS: [u8; SECTION_ALIGN] = [0u8; SECTION_ALIGN];
        for ((_, data), at) in sections.iter().zip(&placed) {
            w.write_all(&ZEROS[..at - cursor])?;
            w.write_all(data.le_bytes())?;
            cursor = at + data.byte_len();
        }
        w.write_all(&ZEROS[..file_len - cursor])?;
        // The writer is consumed, so a buffered caller could only
        // flush in Drop, where errors vanish — surface them here.
        w.flush()
    }

    /// Opens an on-disk index with the default [`OpenOptions`]: HOPL
    /// v3 arenas are mapped (unix `mmap`, aligned read elsewhere) and
    /// served zero-copy; v1 files fall back to the owned streaming
    /// path of [`Oracle::load`]. Checksums are verified either way.
    pub fn open(path: impl AsRef<Path>) -> Result<Oracle, PersistError> {
        Self::open_with(path, &OpenOptions::default())
    }

    /// [`Oracle::open`] with explicit backend/prefault/verification
    /// knobs. The options only affect v3 arenas; v1 files always load
    /// owned (they have nothing to map).
    pub fn open_with(path: impl AsRef<Path>, opts: &OpenOptions) -> Result<Oracle, PersistError> {
        let path = path.as_ref();
        let mut head = [0u8; 8];
        {
            let mut f = std::fs::File::open(path)?;
            f.read_exact(&mut head)?;
        }
        if &head[..4] == MAGIC
            && u32::from_le_bytes(head[4..8].try_into().expect("4 bytes")) == ARENA_VERSION
        {
            let buf = if !opts.mmap {
                ArenaBuf::read_file(path)?
            } else if opts.verify || opts.prefault {
                // About to touch every page anyway — batched
                // page-table population beats faulting one by one.
                ArenaBuf::map_file_populated(path)?
            } else {
                ArenaBuf::map_file(path)?
            };
            if opts.prefault {
                buf.prefault();
            }
            open_arena(Arc::new(buf), opts.verify)
        } else {
            Self::load_v1(std::io::BufReader::new(std::fs::File::open(path)?))
        }
    }

    /// Opens a HOPL v3 arena already in memory (network-shipped
    /// indexes, tests). The bytes are copied once into an aligned
    /// buffer; everything else is identical to [`Oracle::open`].
    pub fn open_arena_bytes(bytes: &[u8]) -> Result<Oracle, PersistError> {
        open_arena(Arc::new(ArenaBuf::from_bytes(bytes)), true)
    }
}

/// One parsed section-table entry.
struct Section {
    tag: [u8; 8],
    offset: usize,
    len: usize,
    sum: u64,
}

fn arena_err(msg: impl Into<String>) -> PersistError {
    PersistError::Format(msg.into())
}

/// Authenticates a standalone 64-byte arena header (checksum) and
/// returns the file length it pins — what a streaming loader needs to
/// size its one allocation before the table is even in memory. The
/// full [`parse_arena_table`] re-validates everything afterwards.
fn arena_header_file_len(header: &[u8; ARENA_HEADER_LEN]) -> Result<usize, PersistError> {
    let want = u64::from_le_bytes(header[56..64].try_into().expect("8 bytes"));
    if checksum(&header[..56]) != want {
        return Err(arena_err("header checksum mismatch"));
    }
    let file_len = u64::from_le_bytes(header[40..48].try_into().expect("8 bytes"));
    if file_len < ARENA_HEADER_LEN as u64 {
        return Err(arena_err("arena shorter than its 64-byte header"));
    }
    usize::try_from(file_len).map_err(|_| arena_err("arena exceeds the address space"))
}

/// Parses and validates the arena header + section table — the
/// O(header) part every open pays: bounds, alignment, ordering,
/// overlap, and the two table/header checksums.
fn parse_arena_table(bytes: &[u8]) -> Result<(Vec<Section>, u64, u64, u32), PersistError> {
    if bytes.len() < ARENA_HEADER_LEN {
        return Err(arena_err("arena shorter than its 64-byte header"));
    }
    let u32_at = |at: usize| u32::from_le_bytes(bytes[at..at + 4].try_into().expect("4 bytes"));
    let u64_at = |at: usize| u64::from_le_bytes(bytes[at..at + 8].try_into().expect("8 bytes"));
    if &bytes[..4] != MAGIC {
        return Err(arena_err("bad magic (not a hoplite index)"));
    }
    if u32_at(4) != ARENA_VERSION {
        return Err(arena_err(format!(
            "not a v{ARENA_VERSION} arena (version {})",
            u32_at(4)
        )));
    }
    if bytes[8] != KIND_ORACLE {
        return Err(arena_err(format!(
            "arena kind {} unsupported (only {KIND_ORACLE} = Oracle)",
            bytes[8]
        )));
    }
    let header_sum = u64_at(56);
    if checksum(&bytes[..56]) != header_sum {
        return Err(arena_err("header checksum mismatch"));
    }
    let n = u64_at(16);
    let c = u64_at(24);
    if n > u32::MAX as u64 || c > n.max(1) {
        return Err(arena_err(format!(
            "implausible vertex/component counts ({n}/{c})"
        )));
    }
    let sig_shift = u32_at(32);
    let file_len = u64_at(40);
    if file_len != bytes.len() as u64 {
        return Err(arena_err(format!(
            "file length {} disagrees with the header's {file_len} (truncated or padded)",
            bytes.len()
        )));
    }
    let count = u32_at(12);
    if count == 0 || count > MAX_SECTIONS {
        return Err(arena_err(format!("section count {count} out of range")));
    }
    let table_end = ARENA_HEADER_LEN + count as usize * SECTION_ENTRY_LEN;
    if table_end > bytes.len() {
        return Err(arena_err("section table truncated"));
    }
    let table = &bytes[ARENA_HEADER_LEN..table_end];
    if checksum(table) != u64_at(48) {
        return Err(arena_err("section table checksum mismatch"));
    }
    let mut sections = Vec::with_capacity(count as usize);
    let mut prev_end = table_end;
    for entry in table.chunks_exact(SECTION_ENTRY_LEN) {
        let tag: [u8; 8] = entry[..8].try_into().expect("8 bytes");
        let offset = u64::from_le_bytes(entry[8..16].try_into().expect("8 bytes"));
        let len = u64::from_le_bytes(entry[16..24].try_into().expect("8 bytes"));
        let sum = u64::from_le_bytes(entry[24..32].try_into().expect("8 bytes"));
        if offset % SECTION_ALIGN as u64 != 0 {
            return Err(arena_err(format!(
                "section {} offset {offset} not {SECTION_ALIGN}-byte aligned",
                String::from_utf8_lossy(&tag)
            )));
        }
        let (Ok(offset), Ok(len)) = (usize::try_from(offset), usize::try_from(len)) else {
            return Err(arena_err("section beyond the address space"));
        };
        let end = offset
            .checked_add(len)
            .filter(|&e| e <= bytes.len())
            .ok_or_else(|| {
                arena_err(format!(
                    "section {} [{offset}; {len}) exceeds the {}-byte file",
                    String::from_utf8_lossy(&tag),
                    bytes.len()
                ))
            })?;
        // Table order is file order; equal starts (two empty sections)
        // are fine, overlap is not.
        if offset < prev_end {
            return Err(arena_err(format!(
                "section {} overlaps its predecessor",
                String::from_utf8_lossy(&tag)
            )));
        }
        prev_end = end;
        sections.push(Section {
            tag,
            offset,
            len,
            sum,
        });
    }
    Ok((sections, n, c, sig_shift))
}

/// Assembles a serving [`Oracle`] from a validated arena buffer.
///
/// With `verify` (the default) this makes one sequential pass over the
/// section bytes to check their checksums plus the cheap structural
/// invariants the query path indexes by (monotone offsets, in-range
/// component ids); content invariants below that — sorted hop lists,
/// signature/list agreement — are the writer's checksummed guarantee
/// and are *not* re-derived (that recomputation is exactly what v1
/// loads pay and v3 exists to avoid).
fn open_arena(buf: Arc<ArenaBuf>, verify: bool) -> Result<Oracle, PersistError> {
    arena_endianness_ok()?;
    let bytes = buf.bytes();
    let (sections, n, c, sig_shift) = parse_arena_table(bytes)?;
    let (n, c) = (n as usize, c as usize);

    let find = |tag: &[u8; 8]| -> Result<&Section, PersistError> {
        let mut hits = sections.iter().filter(|s| &s.tag == tag);
        let first = hits.next().ok_or_else(|| {
            arena_err(format!(
                "missing section {}",
                String::from_utf8_lossy(tag).trim_end_matches('\0')
            ))
        })?;
        if hits.next().is_some() {
            return Err(arena_err(format!(
                "duplicate section {}",
                String::from_utf8_lossy(tag).trim_end_matches('\0')
            )));
        }
        Ok(first)
    };

    if verify {
        for s in &sections {
            if checksum(&bytes[s.offset..s.offset + s.len]) != s.sum {
                return Err(arena_err(format!(
                    "section {} checksum mismatch",
                    String::from_utf8_lossy(&s.tag).trim_end_matches('\0')
                )));
            }
        }
    }

    /// Typed window with an exact element-count requirement.
    fn typed<T: crate::store::Pod>(
        buf: &Arc<ArenaBuf>,
        s: &Section,
        want: usize,
    ) -> Result<Store<T>, PersistError> {
        let size = std::mem::size_of::<T>();
        if s.len != want * size {
            return Err(arena_err(format!(
                "section {} is {} bytes, expected {} ({want} × {size})",
                String::from_utf8_lossy(&s.tag).trim_end_matches('\0'),
                s.len,
                want * size,
            )));
        }
        Store::mapped(buf, s.offset, want).map_err(arena_err)
    }

    let comp_of: Store<u32> = typed(&buf, find(SEC_COMP_OF)?, n)?;
    let comp_sizes: Store<u32> = typed(&buf, find(SEC_COMP_SZ)?, c)?;
    let order: Store<u32> = typed(&buf, find(SEC_ORDER)?, c)?;
    let out_offsets: Store<u32> = typed(&buf, find(SEC_OUT_OFF)?, c + 1)?;
    let in_offsets: Store<u32> = typed(&buf, find(SEC_IN_OFF)?, c + 1)?;
    let out_sigs: Store<u64> = typed(&buf, find(SEC_OUT_SIG)?, c)?;
    let in_sigs: Store<u64> = typed(&buf, find(SEC_IN_SIG)?, c)?;
    let filtrec = typed::<crate::filter::FilterRecord>(&buf, find(SEC_FILTREC)?, n)?;

    // Entry arrays are sized by their offset arrays' final values —
    // O(1) reads, no length field to disbelieve.
    let hop_count = |offsets: &Store<u32>, what: &str| -> Result<usize, PersistError> {
        if offsets.first() != Some(&0) {
            return Err(arena_err(format!("{what}: offsets[0] != 0")));
        }
        Ok(*offsets.last().expect("nonempty") as usize)
    };
    let out_hops: Store<u32> = typed(&buf, find(SEC_OUT_HOP)?, hop_count(&out_offsets, "out")?)?;
    let in_hops: Store<u32> = typed(&buf, find(SEC_IN_HOP)?, hop_count(&in_offsets, "in")?)?;

    // The condensation DAG stays as its four (mapped) CSR sections:
    // queries never touch it, so [`Oracle::dag`] materializes — and
    // fully validates, including the transpose relation — on first
    // `save`/introspection use instead of on the open critical path.
    // Only the O(1) cross-section size relations are pinned here.
    let dag_oof: Store<u32> = typed(&buf, find(SEC_DAG_OOF)?, c + 1)?;
    let dag_iof: Store<u32> = typed(&buf, find(SEC_DAG_IOF)?, c + 1)?;
    let edge_count = hop_count(&dag_oof, "dag out")?;
    if hop_count(&dag_iof, "dag in")? != edge_count {
        return Err(arena_err("dag CSR sides disagree on the edge count"));
    }
    let dag_otg: Store<u32> = typed(&buf, find(SEC_DAG_OTG)?, edge_count)?;
    let dag_itg: Store<u32> = typed(&buf, find(SEC_DAG_ITG)?, edge_count)?;
    let dag_csr = crate::oracle::DagCsr {
        out_offsets: dag_oof,
        out_targets: dag_otg,
        in_offsets: dag_iof,
        in_targets: dag_itg,
    };

    if verify {
        // The structural invariants the query path indexes by; cheap
        // relative to the checksum pass that already read these pages.
        for (what, offsets) in [("out", &out_offsets), ("in", &in_offsets)] {
            if offsets.windows(2).any(|w| w[0] > w[1]) {
                return Err(arena_err(format!("{what}: offsets not monotone")));
            }
        }
        if comp_of.iter().any(|&comp| comp as usize >= c) {
            return Err(arena_err("comp_of entry out of component range"));
        }
    }

    let labeling = Labeling::from_stores_unchecked(
        out_offsets,
        out_hops,
        in_offsets,
        in_hops,
        out_sigs,
        in_sigs,
        sig_shift,
    );
    let dl = DistributionLabeling::from_parts(labeling, order);
    let filters = QueryFilters::from_store(filtrec);
    debug_assert_eq!(FILTER_RECORD_BYTES, 32);
    Ok(Oracle::from_open_parts(
        comp_of, comp_sizes, dag_csr, dl, filters,
    ))
}

impl HierarchicalLabeling {
    /// Serializes the oracle (labels + decomposition level sizes).
    pub fn save<W: Write>(&self, mut w: W) -> std::io::Result<()> {
        write_header(&mut w, KIND_HL, self.labeling().num_vertices() as u64)?;
        write_labeling_body(self.labeling(), &mut w)?;
        let sizes: Vec<u32> = self.level_sizes().iter().map(|&s| s as u32).collect();
        write_u32_slice(&mut w, &sizes)
    }

    /// Deserializes an oracle written by [`Self::save`].
    pub fn load<R: Read>(mut r: R) -> Result<Self, PersistError> {
        let n = read_header(&mut r, KIND_HL)?;
        let labeling = read_labeling_body(&mut r, n)?;
        let sizes = read_u32_vec(&mut r, 1 << 20)?;
        expect_eof(&mut r)?;
        Ok(HierarchicalLabeling::from_parts(
            labeling,
            sizes.into_iter().map(|s| s as usize).collect(),
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::distribution::DlConfig;
    use crate::hierarchical::HlConfig;
    use crate::oracle::ReachIndex;
    use hoplite_graph::gen;
    use std::io::Cursor;

    #[test]
    fn labeling_roundtrip() {
        let dag = gen::random_dag(50, 140, 1);
        let dl = DistributionLabeling::build(&dag, &DlConfig::default());
        let mut buf = Vec::new();
        write_labeling(dl.labeling(), &mut buf).unwrap();
        let l2 = read_labeling(Cursor::new(&buf)).unwrap();
        for v in 0..50u32 {
            assert_eq!(dl.labeling().out_label(v), l2.out_label(v));
            assert_eq!(dl.labeling().in_label(v), l2.in_label(v));
        }
    }

    #[test]
    fn dl_roundtrip_preserves_queries() {
        let dag = gen::power_law_dag(60, 180, 2);
        let dl = DistributionLabeling::build(&dag, &DlConfig::default());
        let mut buf = Vec::new();
        dl.save(&mut buf).unwrap();
        let dl2 = DistributionLabeling::load(Cursor::new(&buf)).unwrap();
        for u in 0..60u32 {
            for v in 0..60u32 {
                assert_eq!(dl.query(u, v), dl2.query(u, v));
            }
        }
        assert_eq!(dl.order(), dl2.order());
    }

    #[test]
    fn hl_roundtrip_preserves_queries() {
        let dag = gen::random_dag(60, 180, 3);
        let hl = HierarchicalLabeling::build(
            &dag,
            &HlConfig {
                core_size_limit: 8,
                ..HlConfig::default()
            },
        );
        let mut buf = Vec::new();
        hl.save(&mut buf).unwrap();
        let hl2 = HierarchicalLabeling::load(Cursor::new(&buf)).unwrap();
        for u in 0..60u32 {
            for v in 0..60u32 {
                assert_eq!(hl.query(u, v), hl2.query(u, v));
            }
        }
        assert_eq!(hl.level_sizes(), hl2.level_sizes());
    }

    #[test]
    fn bad_magic_rejected() {
        let err = read_labeling(Cursor::new(b"NOPE\x01\x00\x00\x00")).unwrap_err();
        assert!(err.to_string().contains("magic"));
    }

    #[test]
    fn wrong_kind_rejected() {
        let dag = gen::random_dag(10, 20, 4);
        let dl = DistributionLabeling::build(&dag, &DlConfig::default());
        let mut buf = Vec::new();
        dl.save(&mut buf).unwrap(); // kind = DL
        let err = read_labeling(Cursor::new(&buf)).unwrap_err();
        assert!(err.to_string().contains("kind"), "{err}");
    }

    #[test]
    fn truncated_file_rejected() {
        let dag = gen::random_dag(20, 50, 5);
        let dl = DistributionLabeling::build(&dag, &DlConfig::default());
        let mut buf = Vec::new();
        dl.save(&mut buf).unwrap();
        buf.truncate(buf.len() / 2);
        assert!(DistributionLabeling::load(Cursor::new(&buf)).is_err());
    }

    #[test]
    fn corrupted_offsets_rejected() {
        let dag = gen::random_dag(20, 50, 6);
        let dl = DistributionLabeling::build(&dag, &DlConfig::default());
        let mut buf = Vec::new();
        write_labeling(dl.labeling(), &mut buf).unwrap();
        // Corrupt a byte inside the first offsets array (after the
        // 17-byte header and the 8-byte array length).
        buf[17 + 8 + 6] ^= 0xFF;
        assert!(read_labeling(Cursor::new(&buf)).is_err());
    }

    /// Byte size of the trailing signature section for `n` vertices:
    /// magic + shift + count + two u64 arrays.
    fn sig_section_len(n: usize) -> usize {
        4 + 4 + 8 + 16 * n
    }

    #[test]
    fn corrupted_order_rejected() {
        let dag = gen::random_dag(20, 50, 7);
        let dl = DistributionLabeling::build(&dag, &DlConfig::default());
        let mut buf = Vec::new();
        dl.save(&mut buf).unwrap();
        // Duplicate the first order entry over the second (the 20*4
        // order-table bytes sit just before the signature section).
        let tail = buf.len() - sig_section_len(20) - 20 * 4;
        let (a, b) = (buf[tail], buf[tail + 1]);
        buf[tail + 4] = a;
        buf[tail + 5] = b;
        buf[tail + 6] = buf[tail + 2];
        buf[tail + 7] = buf[tail + 3];
        let err = DistributionLabeling::load(Cursor::new(&buf)).unwrap_err();
        assert!(err.to_string().contains("permutation"), "{err}");
    }

    /// A PR 3-era file — the exact same bytes minus the trailing
    /// signature section — must still load, with signatures rebuilt
    /// from the hop lists (answers identical to the modern file).
    #[test]
    fn legacy_files_without_signature_section_load() {
        let dag = gen::power_law_dag(40, 120, 13);
        let dl = DistributionLabeling::build(&dag, &DlConfig::default());
        let mut buf = Vec::new();
        dl.save(&mut buf).unwrap();
        let mut legacy = buf.clone();
        legacy.truncate(buf.len() - sig_section_len(40));
        let restored = DistributionLabeling::load(Cursor::new(&legacy)).unwrap();
        for u in 0..40u32 {
            for v in 0..40u32 {
                assert_eq!(restored.query(u, v), dl.query(u, v), "({u},{v})");
            }
            assert_eq!(
                restored.labeling().out_signature(u),
                dl.labeling().out_signature(u),
                "rebuilt out signature diverged at {u}"
            );
            assert_eq!(
                restored.labeling().in_signature(u),
                dl.labeling().in_signature(u),
                "rebuilt in signature diverged at {u}"
            );
        }
    }

    #[test]
    fn corrupted_signature_section_rejected() {
        let dag = gen::random_dag(25, 70, 14);
        let dl = DistributionLabeling::build(&dag, &DlConfig::default());
        let mut buf = Vec::new();
        dl.save(&mut buf).unwrap();
        let section = buf.len() - sig_section_len(25);
        // Flip a bit inside the first out-signature word.
        let mut bad = buf.clone();
        bad[section + 4 + 4 + 8] ^= 0x01;
        let err = DistributionLabeling::load(Cursor::new(&bad)).unwrap_err();
        assert!(err.to_string().contains("signature"), "{err}");
        // A mangled section magic is an unknown trailing section.
        let mut bad = buf.clone();
        bad[section] = b'X';
        let err = DistributionLabeling::load(Cursor::new(&bad)).unwrap_err();
        assert!(err.to_string().contains("trailing section"), "{err}");
        // A section cut mid-array is a truncation error.
        let mut bad = buf;
        bad.truncate(section + 20);
        assert!(DistributionLabeling::load(Cursor::new(&bad)).is_err());
    }

    #[test]
    fn trailing_bytes_rejected() {
        let dag = gen::random_dag(15, 30, 8);
        let dl = DistributionLabeling::build(&dag, &DlConfig::default());
        let mut buf = Vec::new();
        dl.save(&mut buf).unwrap();
        buf.push(0);
        let err = DistributionLabeling::load(Cursor::new(&buf)).unwrap_err();
        assert!(err.to_string().contains("trailing"), "{err}");
    }

    fn random_cyclic_digraph(n: usize, m: usize, seed: u64) -> hoplite_graph::DiGraph {
        let mut rng = gen::Rng::new(seed);
        let edges: Vec<(u32, u32)> = (0..m)
            .filter_map(|_| {
                let u = rng.gen_index(n) as u32;
                let v = rng.gen_index(n) as u32;
                (u != v).then_some((u, v))
            })
            .collect();
        hoplite_graph::DiGraph::from_edges(n, &edges).unwrap()
    }

    #[test]
    fn oracle_roundtrip_preserves_queries_on_cyclic_digraph() {
        let g = random_cyclic_digraph(48, 150, 41);
        let o = Oracle::new(&g);
        let mut buf = Vec::new();
        o.save(&mut buf).unwrap();
        let o2 = Oracle::load(Cursor::new(&buf)).unwrap();
        assert_eq!(o.num_vertices(), o2.num_vertices());
        assert_eq!(o.num_components(), o2.num_components());
        assert_eq!(o.label_entries(), o2.label_entries());
        for u in 0..48u32 {
            for v in 0..48u32 {
                assert_eq!(o.reaches(u, v), o2.reaches(u, v), "({u},{v})");
            }
        }
    }

    #[test]
    fn oracle_roundtrip_batch_path_survives() {
        let g = random_cyclic_digraph(30, 90, 42);
        let o = Oracle::new(&g);
        let mut buf = Vec::new();
        o.save(&mut buf).unwrap();
        let o2 = Oracle::load(Cursor::new(&buf)).unwrap();
        let pairs: Vec<(u32, u32)> = (0..30).flat_map(|u| (0..30).map(move |v| (u, v))).collect();
        assert_eq!(o.reaches_batch(&pairs, 4), o2.reaches_batch(&pairs, 4));
    }

    #[test]
    fn oracle_wrong_kind_rejected() {
        let dag = gen::random_dag(10, 20, 4);
        let dl = DistributionLabeling::build(&dag, &DlConfig::default());
        let mut buf = Vec::new();
        dl.save(&mut buf).unwrap(); // kind = DL, not Oracle
        let err = Oracle::load(Cursor::new(&buf)).unwrap_err();
        assert!(err.to_string().contains("kind"), "{err}");
    }

    #[test]
    fn oracle_truncated_rejected() {
        let g = random_cyclic_digraph(20, 60, 43);
        let o = Oracle::new(&g);
        let mut buf = Vec::new();
        o.save(&mut buf).unwrap();
        for keep in [10, buf.len() / 3, buf.len() / 2, buf.len() - 1] {
            let mut cut = buf.clone();
            cut.truncate(keep);
            assert!(Oracle::load(Cursor::new(&cut)).is_err(), "keep={keep}");
        }
    }

    #[test]
    fn oracle_corrupt_comp_of_rejected() {
        let g = random_cyclic_digraph(20, 60, 44);
        let o = Oracle::new(&g);
        let mut buf = Vec::new();
        o.save(&mut buf).unwrap();
        // comp_of starts right after the 17-byte header and the 8-byte
        // array length; blow the first entry out of range.
        buf[17 + 8] = 0xFF;
        buf[17 + 8 + 1] = 0xFF;
        let err = Oracle::load(Cursor::new(&buf)).unwrap_err();
        assert!(
            err.to_string().contains("out of range") || err.to_string().contains("histogram"),
            "{err}"
        );
    }

    #[test]
    fn oracle_trailing_bytes_rejected() {
        let g = random_cyclic_digraph(12, 30, 45);
        let o = Oracle::new(&g);
        let mut buf = Vec::new();
        o.save(&mut buf).unwrap();
        buf.push(7);
        let err = Oracle::load(Cursor::new(&buf)).unwrap_err();
        assert!(err.to_string().contains("trailing"), "{err}");
    }

    #[test]
    fn huge_claimed_lengths_fail_without_huge_allocation() {
        // A header claiming u32::MAX vertices followed by an array
        // whose length field matches: the reader must hit EOF (after a
        // bounded prefix allocation), not allocate ~16 GiB up front.
        let mut buf = Vec::new();
        buf.extend_from_slice(b"HOPL");
        buf.extend_from_slice(&1u32.to_le_bytes());
        buf.push(4); // kind = Oracle
        buf.extend_from_slice(&(u32::MAX as u64).to_le_bytes()); // n
        buf.extend_from_slice(&(u32::MAX as u64).to_le_bytes()); // comp_of len
        assert!(matches!(
            Oracle::load(Cursor::new(&buf)),
            Err(PersistError::Io(_))
        ));
        // And a vertex count past the u32 id space is rejected outright.
        let mut buf = Vec::new();
        buf.extend_from_slice(b"HOPL");
        buf.extend_from_slice(&1u32.to_le_bytes());
        buf.push(4);
        buf.extend_from_slice(&u64::MAX.to_le_bytes());
        let err = Oracle::load(Cursor::new(&buf)).unwrap_err();
        assert!(err.to_string().contains("u32 id space"), "{err}");
    }

    #[test]
    fn hop_array_bounded_by_final_offset() {
        // Offsets say 2 hops, the hop array's length field claims 3:
        // the claimed length must be rejected against the offset bound.
        let dag = gen::random_dag(10, 25, 9);
        let dl = DistributionLabeling::build(&dag, &DlConfig::default());
        let mut buf = Vec::new();
        write_labeling(dl.labeling(), &mut buf).unwrap();
        // The out-hops length field sits right after the header (17)
        // and the offsets array (8 + 11*4).
        let pos = 17 + 8 + 11 * 4;
        let claimed = u64::from_le_bytes(buf[pos..pos + 8].try_into().unwrap());
        buf[pos..pos + 8].copy_from_slice(&(claimed + 1).to_le_bytes());
        let err = read_labeling(Cursor::new(&buf)).unwrap_err();
        assert!(err.to_string().contains("plausible bound"), "{err}");
    }

    #[test]
    fn arena_roundtrip_preserves_queries_and_structure() {
        let g = random_cyclic_digraph(60, 200, 91);
        let o = Oracle::new(&g);
        let mut buf = Vec::new();
        o.save_arena(&mut buf).unwrap();
        assert_eq!(buf.len() % 64, 0, "arena files are 64-byte padded");
        let o2 = Oracle::open_arena_bytes(&buf).unwrap();
        // In-memory arenas are heap-backed; the backend split reports
        // RSS, so only a real file mapping may claim "mapped" (see
        // `arena_open_from_disk_mapped_and_owned` for that side).
        assert_eq!(o2.backend(), crate::store::StoreBackend::Heap);
        assert_eq!(o.num_vertices(), o2.num_vertices());
        assert_eq!(o.num_components(), o2.num_components());
        assert_eq!(o.label_entries(), o2.label_entries());
        assert_eq!(o.comp_of(), o2.comp_of());
        for u in 0..60u32 {
            for v in 0..60u32 {
                assert_eq!(o.reaches(u, v), o2.reaches(u, v), "({u},{v})");
            }
        }
        let pairs: Vec<(u32, u32)> = (0..60).flat_map(|u| (0..60).map(move |v| (u, v))).collect();
        assert_eq!(o.reaches_batch(&pairs, 3), o2.reaches_batch(&pairs, 3));
        // Every array is arena-addressed (nothing was deserialized),
        // and a heap-backed arena accounts them all as heap RSS.
        let m = o2.memory();
        assert_eq!(m.mapped_bytes, 0, "{m:?}");
        assert!(m.heap_bytes > 0, "{m:?}");
        // A mapped oracle can be re-saved in either format.
        let mut v1 = Vec::new();
        o2.save(&mut v1).unwrap();
        let o3 = Oracle::load(Cursor::new(&v1)).unwrap();
        let mut v3 = Vec::new();
        o2.save_arena(&mut v3).unwrap();
        assert_eq!(v3, buf, "arena re-serialization is byte-identical");
        assert_eq!(o3.reaches(0, 59), o.reaches(0, 59));
    }

    #[test]
    fn oracle_load_dispatches_on_version() {
        let g = random_cyclic_digraph(25, 80, 92);
        let o = Oracle::new(&g);
        let mut v3 = Vec::new();
        o.save_arena(&mut v3).unwrap();
        // The generic Read-based loader accepts an arena too.
        let o2 = Oracle::load(Cursor::new(&v3)).unwrap();
        for u in 0..25u32 {
            for v in 0..25u32 {
                assert_eq!(o.reaches(u, v), o2.reaches(u, v), "({u},{v})");
            }
        }
    }

    #[test]
    fn arena_corruption_is_rejected() {
        let g = random_cyclic_digraph(30, 90, 93);
        let o = Oracle::new(&g);
        let mut buf = Vec::new();
        o.save_arena(&mut buf).unwrap();

        // Truncation anywhere (header, table, sections).
        for keep in [0, 8, 63, 64, 200, buf.len() / 2, buf.len() - 1] {
            assert!(
                Oracle::open_arena_bytes(&buf[..keep]).is_err(),
                "keep={keep}"
            );
        }
        // Flipping any single byte must be caught by one of the
        // checksums (header, table, or section).
        for at in [0, 5, 9, 20, 70, 100, 600, buf.len() - 70] {
            let mut bad = buf.clone();
            bad[at] ^= 0x10;
            assert!(Oracle::open_arena_bytes(&bad).is_err(), "byte {at}");
        }
        // Misaligned section offset (entry 0's offset at header + 8).
        let mut bad = buf.clone();
        bad[64 + 8] = bad[64 + 8].wrapping_add(1);
        let err = Oracle::open_arena_bytes(&bad).unwrap_err();
        // Either the table checksum or the alignment check trips —
        // both are format errors.
        assert!(matches!(err, PersistError::Format(_)), "{err}");
        // Trailing garbage changes the file length the header pinned.
        let mut bad = buf.clone();
        bad.extend_from_slice(&[0u8; 64]);
        let err = Oracle::open_arena_bytes(&bad).unwrap_err();
        assert!(err.to_string().contains("length"), "{err}");
    }

    #[test]
    fn arena_open_from_disk_mapped_and_owned() {
        let g = random_cyclic_digraph(40, 130, 94);
        let o = Oracle::new(&g);
        let path = std::env::temp_dir().join(format!(
            "hoplite-arena-test-{}-{:p}.hopl",
            std::process::id(),
            &o
        ));
        let mut bytes = Vec::new();
        o.save_arena(&mut bytes).unwrap();
        std::fs::write(&path, &bytes).unwrap();

        let mapped = Oracle::open(&path).unwrap();
        #[cfg(unix)]
        {
            assert_eq!(mapped.backend(), crate::store::StoreBackend::Mapped);
            let m = mapped.memory();
            assert!(m.mapped_bytes > m.heap_bytes, "{m:?}");
        }
        let owned = Oracle::open_with(
            &path,
            &OpenOptions {
                mmap: false,
                prefault: true,
                verify: true,
            },
        )
        .unwrap();
        assert_eq!(owned.backend(), crate::store::StoreBackend::Heap);
        for u in 0..40u32 {
            for v in 0..40u32 {
                assert_eq!(o.reaches(u, v), mapped.reaches(u, v), "mapped ({u},{v})");
                assert_eq!(o.reaches(u, v), owned.reaches(u, v), "owned ({u},{v})");
            }
        }
        // A v1 file through the same `open` entry point.
        let mut v1 = Vec::new();
        o.save(&mut v1).unwrap();
        std::fs::write(&path, &v1).unwrap();
        let legacy = Oracle::open(&path).unwrap();
        assert_eq!(legacy.backend(), crate::store::StoreBackend::Heap);
        assert_eq!(legacy.reaches(1, 30), o.reaches(1, 30));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn empty_oracle_arena_roundtrips() {
        let g = hoplite_graph::DiGraph::empty(0);
        let o = Oracle::new(&g);
        let mut buf = Vec::new();
        o.save_arena(&mut buf).unwrap();
        let o2 = Oracle::open_arena_bytes(&buf).unwrap();
        assert_eq!(o2.num_vertices(), 0);
        assert_eq!(o2.num_components(), 0);
    }

    #[test]
    fn empty_oracle_roundtrips() {
        let g = hoplite_graph::DiGraph::empty(0);
        let o = Oracle::new(&g);
        let mut buf = Vec::new();
        o.save(&mut buf).unwrap();
        let o2 = Oracle::load(Cursor::new(&buf)).unwrap();
        assert_eq!(o2.num_vertices(), 0);
        assert_eq!(o2.num_components(), 0);
    }

    #[test]
    fn empty_labeling_roundtrips() {
        let dag = hoplite_graph::Dag::from_edges(0, &[]).unwrap();
        let dl = DistributionLabeling::build(&dag, &DlConfig::default());
        let mut buf = Vec::new();
        dl.save(&mut buf).unwrap();
        let dl2 = DistributionLabeling::load(Cursor::new(&buf)).unwrap();
        assert_eq!(dl2.labeling().num_vertices(), 0);
    }
}
