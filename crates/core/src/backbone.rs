//! One-side reachability backbone extraction (Definition 1, via the
//! SCARAB *FastCover* approach).
//!
//! A backbone `G* = (V*, E*)` of `G` with locality `ε` guarantees that
//! every reachable pair `(u, v)` with `d(u, v) > ε` has backbone
//! *entry/exit witnesses*: `u* , v* ∈ V*` with `d(u, u*) ≤ ε`,
//! `d(v*, v) ≤ ε`, and `u* → v*` within `G*`.
//!
//! ## Vertex selection
//!
//! `V*` is chosen as a *hitting set of every ε-edge path*. Vertices are
//! scanned in descending degree-product order (the paper's importance
//! rank); when the scan finds a vertex `x` with an ε-path through it
//! that still avoids `V*` (maximal backward + forward depths in
//! `G \ V*` sum to `≥ ε`), it adds the **midpoint** of that forward
//! chain (the vertex `⌈ε/2⌉` ahead) rather than `x` itself — the
//! midpoint covers the window on both sides, which is what makes a
//! pure path shrink by ~2× per level instead of keeping almost every
//! vertex. Because an addition can land off the specific uncovered
//! path, the scan repeats until a pass adds nothing (a fixpoint: no
//! ε-path avoids `V*`); paths reach the fixpoint in two passes, and a
//! bounded fallback pass (add `x` itself, which always hits) caps the
//! iteration at `ε + 2` passes on adversarial inputs. For `ε = 1` this
//! behaves like the greedy vertex cover of the paper's Example 4.1;
//! the per-vertex work is an ε-bounded BFS, matching FastCover's
//! `O(Σ |Nε(v)| log |Nε(v)| + |Eε(v)|)` complexity envelope per pass.
//!
//! ## Edge construction
//!
//! For each `u* ∈ V*`, a forward BFS of depth `≤ ε+1` that does **not
//! expand through backbone vertices** adds an edge `u* → x` for every
//! backbone vertex `x` it first reaches. Not expanding through backbone
//! vertices is exactly the paper's local transitive-reduction rule:
//! a pair `(u*, v*)` connected only through an intermediate backbone
//! vertex `x` (`d(u*,x) ≤ ε`, `d(x,v*) ≤ ε`) is represented by the two
//! edges `u* → x → v*` instead.

use std::collections::VecDeque;

use hoplite_graph::digraph::{DiGraph, GraphBuilder};
use hoplite_graph::traversal::{Direction, TraversalScratch, VisitedSet};
use hoplite_graph::{Dag, VertexId, INVALID_VERTEX};

use crate::order::OrderKind;

/// A reachability backbone of a parent DAG, over compact vertex ids.
#[derive(Clone, Debug)]
pub struct Backbone {
    /// The backbone graph `G* = (V*, E*)`, re-indexed to `0..|V*|`.
    pub dag: Dag,
    /// `to_parent[c]` = parent-graph vertex of backbone vertex `c`.
    pub to_parent: Vec<VertexId>,
    /// `parent_to_backbone[v]` = compact id of `v` in the backbone, or
    /// [`INVALID_VERTEX`] if `v` was not selected.
    pub parent_to_backbone: Vec<VertexId>,
}

impl Backbone {
    /// Number of backbone vertices.
    pub fn num_vertices(&self) -> usize {
        self.to_parent.len()
    }

    /// Is parent vertex `v` in the backbone?
    #[inline]
    pub fn contains(&self, v: VertexId) -> bool {
        self.parent_to_backbone[v as usize] != INVALID_VERTEX
    }

    /// Extracts the one-side reachability backbone of `parent` with
    /// locality threshold `eps` (the paper uses `eps = 2`).
    ///
    /// ```
    /// use hoplite_graph::Dag;
    /// use hoplite_core::Backbone;
    ///
    /// // A path of 7 vertices: the eps=2 backbone can skip most of it.
    /// let edges: Vec<_> = (0..6u32).map(|i| (i, i + 1)).collect();
    /// let dag = Dag::from_edges(7, &edges)?;
    /// let bb = Backbone::extract(&dag, 2);
    /// assert!(bb.num_vertices() < 7);
    /// # Ok::<(), hoplite_graph::GraphError>(())
    /// ```
    pub fn extract(parent: &Dag, eps: u32) -> Backbone {
        let g = parent.graph();
        let n = parent.num_vertices();
        let mut in_backbone = vec![false; n];

        // --- Vertex selection: hit every ε-path. -------------------
        let order = OrderKind::DegProduct.compute(parent);
        let mut scratch = TraversalScratch::new(n);
        // Midpoint-hitting passes to a fixpoint (see module docs). The
        // last permitted pass falls back to adding `x` itself, which
        // always hits the witnessed path, so the loop is bounded.
        for pass in 0..=eps + 1 {
            let midpoint_pass = pass <= eps; // final pass: add x itself
            let mut added = false;
            for &x in &order {
                if in_backbone[x as usize] {
                    continue;
                }
                let (f, mid) = depth_and_midpoint(
                    g,
                    x,
                    eps,
                    Direction::Forward,
                    &in_backbone,
                    &mut scratch,
                    eps.div_ceil(2),
                );
                let hit = if f >= eps {
                    true
                } else {
                    let (b, _) = depth_and_midpoint(
                        g,
                        x,
                        eps - f,
                        Direction::Reverse,
                        &in_backbone,
                        &mut scratch,
                        0,
                    );
                    f + b >= eps
                };
                if hit {
                    let w = if midpoint_pass { mid.unwrap_or(x) } else { x };
                    in_backbone[w as usize] = true;
                    added = true;
                }
            }
            if !added {
                break;
            }
        }

        // --- Compact ids. -------------------------------------------
        let mut to_parent = Vec::new();
        let mut parent_to_backbone = vec![INVALID_VERTEX; n];
        for v in 0..n as VertexId {
            if in_backbone[v as usize] {
                parent_to_backbone[v as usize] = to_parent.len() as VertexId;
                to_parent.push(v);
            }
        }

        // --- Edge construction. --------------------------------------
        let nb = to_parent.len();
        let mut builder = GraphBuilder::new(nb);
        let mut visited = VisitedSet::new(n);
        let mut queue: VecDeque<VertexId> = VecDeque::new();
        for (cu, &u) in to_parent.iter().enumerate() {
            // Forward BFS ≤ eps+1 steps, not expanding through backbone
            // vertices; every first-reached backbone vertex gets an edge.
            visited.clear();
            queue.clear();
            visited.insert(u);
            queue.push_back(u);
            let mut depth = 0;
            while depth < eps + 1 && !queue.is_empty() {
                depth += 1;
                for _ in 0..queue.len() {
                    let x = queue.pop_front().expect("nonempty frontier");
                    for &w in g.out_neighbors(x) {
                        if !visited.insert(w) {
                            continue;
                        }
                        if in_backbone[w as usize] {
                            builder
                                .add_edge_unchecked(cu as VertexId, parent_to_backbone[w as usize]);
                            // do not expand past a backbone vertex
                        } else {
                            queue.push_back(w);
                        }
                    }
                }
            }
        }

        let dag = Dag::new(builder.build())
            .expect("backbone of a DAG is acyclic: edges follow parent reachability");
        Backbone {
            dag,
            to_parent,
            parent_to_backbone,
        }
    }
}

/// Maximal depth (capped at `cap`) reachable from `x` in direction
/// `dir` using only non-backbone vertices, plus a representative
/// vertex at layer `pick_depth` of that sweep (`None` when the sweep
/// is shallower or `pick_depth` is 0). `x` itself must not be in the
/// backbone (callers scan unselected vertices).
fn depth_and_midpoint(
    g: &DiGraph,
    x: VertexId,
    cap: u32,
    dir: Direction,
    in_backbone: &[bool],
    scratch: &mut TraversalScratch,
    pick_depth: u32,
) -> (u32, Option<VertexId>) {
    if cap == 0 {
        return (0, None);
    }
    scratch.reset();
    scratch.visited.insert(x);
    scratch.queue.push_back(x);
    let mut depth = 0;
    let mut pick = None;
    while depth < cap && !scratch.queue.is_empty() {
        let mut advanced = false;
        for _ in 0..scratch.queue.len() {
            let y = scratch.queue.pop_front().expect("nonempty frontier");
            for &w in dir.neighbors(g, y) {
                if !in_backbone[w as usize] && scratch.visited.insert(w) {
                    scratch.queue.push_back(w);
                    advanced = true;
                }
            }
        }
        if advanced {
            depth += 1;
            if depth == pick_depth {
                pick = scratch.queue.front().copied();
            }
        } else {
            break;
        }
    }
    (depth, pick)
}

/// Collects `B^ε_out(v)` / `B^ε_in(v)` (Formulas 1–2): the backbone
/// vertices first reached from `v` within `eps` steps, where the BFS
/// does not expand through backbone vertices (the formulas' local
/// redundancy rule). `v` itself is excluded; results are parent-graph
/// vertex ids appended to `out`.
pub fn backbone_vertex_set(
    g: &DiGraph,
    v: VertexId,
    eps: u32,
    dir: Direction,
    is_backbone: impl Fn(VertexId) -> bool,
    scratch: &mut TraversalScratch,
    out: &mut Vec<VertexId>,
) {
    scratch.reset();
    scratch.visited.insert(v);
    scratch.queue.push_back(v);
    let mut depth = 0;
    while depth < eps && !scratch.queue.is_empty() {
        depth += 1;
        for _ in 0..scratch.queue.len() {
            let x = scratch.queue.pop_front().expect("nonempty frontier");
            for &w in dir.neighbors(g, x) {
                if !scratch.visited.insert(w) {
                    continue;
                }
                if is_backbone(w) {
                    out.push(w);
                } else {
                    scratch.queue.push_back(w);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hoplite_graph::{gen, traversal};

    /// Definition 1's guarantee: every reachable pair at distance > eps
    /// has backbone witnesses u*, v* with d(u,u*) <= eps, d(v*,v) <= eps
    /// and u* -> v* in the backbone.
    fn check_backbone_property(dag: &Dag, eps: u32) {
        let bb = Backbone::extract(dag, eps);
        let g = dag.graph();
        let n = dag.num_vertices() as VertexId;
        let mut scratch = TraversalScratch::new(dag.num_vertices());
        let mut nbhd = Vec::new();
        for u in 0..n {
            for v in 0..n {
                if u == v || !traversal::reaches(g, u, v) {
                    continue;
                }
                // Distance check: is v within eps of u?
                nbhd.clear();
                traversal::bounded_neighborhood(
                    g,
                    u,
                    eps,
                    Direction::Forward,
                    &mut scratch,
                    &mut nbhd,
                );
                if nbhd.iter().any(|&(x, _)| x == v) {
                    continue; // local pair: backbone not required
                }
                // Entry candidates: backbone vertices within eps of u.
                let entries: Vec<VertexId> = nbhd
                    .iter()
                    .map(|&(x, _)| x)
                    .filter(|&x| bb.contains(x))
                    .collect();
                nbhd.clear();
                traversal::bounded_neighborhood(
                    g,
                    v,
                    eps,
                    Direction::Reverse,
                    &mut scratch,
                    &mut nbhd,
                );
                let exits: Vec<VertexId> = nbhd
                    .iter()
                    .map(|&(x, _)| x)
                    .filter(|&x| bb.contains(x))
                    .collect();
                assert!(
                    !entries.is_empty() && !exits.is_empty(),
                    "non-local pair ({u},{v}) lacks entry/exit witnesses"
                );
                let witnessed = entries.iter().any(|&a| {
                    exits.iter().any(|&b| {
                        traversal::reaches(
                            bb.dag.graph(),
                            bb.parent_to_backbone[a as usize],
                            bb.parent_to_backbone[b as usize],
                        )
                    })
                });
                assert!(witnessed, "pair ({u},{v}) has no connected witness pair");
            }
        }
    }

    #[test]
    fn backbone_property_random_dags() {
        for seed in 0..6 {
            let dag = gen::random_dag(30, 70, seed);
            check_backbone_property(&dag, 2);
        }
    }

    #[test]
    fn backbone_property_eps1_and_eps3() {
        for seed in 0..4 {
            let dag = gen::random_dag(25, 55, seed);
            check_backbone_property(&dag, 1);
            check_backbone_property(&dag, 3);
        }
    }

    #[test]
    fn backbone_property_tree_like() {
        for seed in 0..4 {
            let dag = gen::tree_plus_dag(40, 10, seed);
            check_backbone_property(&dag, 2);
        }
    }

    #[test]
    fn backbone_shrinks_path_graph() {
        // A long path: V* must hit every eps-window but can skip most
        // vertices.
        let n = 200;
        let edges: Vec<_> = (0..n as u32 - 1).map(|i| (i, i + 1)).collect();
        let dag = Dag::from_edges(n, &edges).unwrap();
        let bb = Backbone::extract(&dag, 2);
        assert!(bb.num_vertices() < n, "backbone should shrink a path");
        assert!(
            bb.num_vertices() >= n / 3 - 2,
            "eps=2 can skip at most 2 of every 3 path vertices"
        );
    }

    #[test]
    fn backbone_reachability_is_preserved_among_backbone_vertices() {
        // Lemma 1 first claim: u,v in V* reach in G iff in G*.
        for seed in 0..5 {
            let dag = gen::random_dag(35, 90, seed);
            let bb = Backbone::extract(&dag, 2);
            for ca in 0..bb.num_vertices() as VertexId {
                for cb in 0..bb.num_vertices() as VertexId {
                    let (a, b) = (bb.to_parent[ca as usize], bb.to_parent[cb as usize]);
                    assert_eq!(
                        traversal::reaches(dag.graph(), a, b),
                        traversal::reaches(bb.dag.graph(), ca, cb),
                        "backbone reachability mismatch for parent pair ({a},{b})"
                    );
                }
            }
        }
    }

    #[test]
    fn eps1_is_a_vertex_cover() {
        // Example 4.1: with eps = 1 the backbone vertices must cover
        // every edge.
        for seed in 0..5 {
            let dag = gen::random_dag(30, 80, seed);
            let bb = Backbone::extract(&dag, 1);
            for (u, v) in dag.graph().edges() {
                assert!(
                    bb.contains(u) || bb.contains(v),
                    "edge ({u},{v}) uncovered by eps=1 backbone"
                );
            }
        }
    }

    #[test]
    fn empty_and_edgeless_graphs() {
        let dag = Dag::from_edges(0, &[]).unwrap();
        let bb = Backbone::extract(&dag, 2);
        assert_eq!(bb.num_vertices(), 0);

        let dag = Dag::from_edges(5, &[]).unwrap();
        let bb = Backbone::extract(&dag, 2);
        assert_eq!(bb.num_vertices(), 0, "no eps-paths, nothing to cover");
    }

    #[test]
    fn backbone_vertex_sets_stop_at_first_backbone() {
        // Path 0 -> 1 -> 2 -> 3 with backbone {1, 2}: B^2_out(0) should
        // contain 1 but not 2 (2 is only reachable through 1).
        let dag = Dag::from_edges(4, &[(0, 1), (1, 2), (2, 3)]).unwrap();
        let is_bb = |v: VertexId| v == 1 || v == 2;
        let mut scratch = TraversalScratch::new(4);
        let mut out = Vec::new();
        backbone_vertex_set(
            dag.graph(),
            0,
            2,
            Direction::Forward,
            is_bb,
            &mut scratch,
            &mut out,
        );
        assert_eq!(out, vec![1]);
        out.clear();
        backbone_vertex_set(
            dag.graph(),
            3,
            2,
            Direction::Reverse,
            is_bb,
            &mut scratch,
            &mut out,
        );
        assert_eq!(out, vec![2]);
    }
}
