//! Durable write-ahead logging for dynamic namespaces.
//!
//! A [`DynamicOracle`](crate::DynamicOracle) keeps its mutations in
//! memory; this module makes them survive a crash. The design is the
//! classic checkpoint + log pair, one directory per namespace:
//!
//! ```text
//! <wal-dir>/<ns>/
//!     checkpoint.<N>   HOPL v3 arena of the generation-N base DAG
//!     wal.<N>          edge ops acknowledged since checkpoint N
//! ```
//!
//! * **Records** are length-prefixed and CRC-checked:
//!   `len:u32 | crc32(body):u32 | body`, body = `tag:u8 | u:u32 | v:u32`
//!   (all little-endian). A torn or bit-flipped tail fails the CRC and
//!   [`decode_records`] truncates there — recovery always yields a
//!   *prefix* of the acknowledged operations, never an error.
//! * **Group commit**: [`Wal::append`] buffers in the OS page cache and
//!   fsyncs once per [`WalConfig::flush_every`] records or
//!   [`WalConfig::flush_interval`], whichever comes first. Acknowledged
//!   but unsynced records can be lost to a power cut; because the log
//!   is strictly sequential, what survives is still a prefix. The
//!   policy only fires inside appends, so an idle namespace's tail
//!   stays unsynced until the next append or an explicit [`Wal::sync`]
//!   (the server issues one per durable namespace at graceful
//!   shutdown) — see [`WalConfig`].
//! * **Checkpoint rotation** is crash-atomic through generation-paired
//!   files: the next checkpoint is fully written and fsynced to
//!   `checkpoint.tmp` *off* the namespace lock
//!   ([`WalDir::prepare_checkpoint`]), then [`Durability::rotate`]
//!   (under the lock, cheap) writes `wal.N+1` containing exactly the
//!   still-pending overlay ops, fsyncs it, and renames the tmp into
//!   `checkpoint.N+1`. The rename is the commit point; a crash on
//!   either side leaves at least one complete generation on disk, and
//!   [`WalDir::recover`] picks the newest valid one.
//!
//! The checkpoint itself is the existing HOPL v3 arena
//! ([`Oracle::save_arena`]) of an oracle built over the base DAG. A
//! dynamic namespace is always a DAG, so every condensation component
//! is a singleton and the original vertex numbering is recovered by
//! inverting `comp_of` — see [`checkpoint_bytes`] / [`recover_dag`].

use std::fmt;
use std::fs::{self, File, OpenOptions};
use std::io::{self, Read, Seek, Write};
use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};

use hoplite_graph::Dag;

use crate::oracle::Oracle;

/// One logged mutation of a dynamic namespace.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum EdgeOp {
    /// `u → v` was inserted.
    Insert(u32, u32),
    /// `u → v` was removed.
    Remove(u32, u32),
}

impl EdgeOp {
    fn tag(self) -> u8 {
        match self {
            EdgeOp::Insert(..) => TAG_INSERT,
            EdgeOp::Remove(..) => TAG_REMOVE,
        }
    }

    fn endpoints(self) -> (u32, u32) {
        match self {
            EdgeOp::Insert(u, v) | EdgeOp::Remove(u, v) => (u, v),
        }
    }
}

impl fmt::Display for EdgeOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EdgeOp::Insert(u, v) => write!(f, "+({u},{v})"),
            EdgeOp::Remove(u, v) => write!(f, "-({u},{v})"),
        }
    }
}

const TAG_INSERT: u8 = 1;
const TAG_REMOVE: u8 = 2;
/// Body bytes of the one record kind this version writes.
const BODY_LEN: usize = 9;
/// `len` prefix + `crc` + body.
pub const RECORD_LEN: usize = 8 + BODY_LEN;
/// Decode rejects a length prefix above this as corruption rather than
/// attempting a gigabyte allocation from a bit-flipped header.
const MAX_BODY_LEN: usize = 64;

// ---------------------------------------------------------------------
// CRC-32 (IEEE 802.3), table-driven — per-record integrity check.
// ---------------------------------------------------------------------

const fn crc32_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

static CRC32_TABLE: [u32; 256] = crc32_table();

/// CRC-32 (IEEE) of `bytes`.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut c = !0u32;
    for &b in bytes {
        c = CRC32_TABLE[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    !c
}

// ---------------------------------------------------------------------
// Record encode / decode.
// ---------------------------------------------------------------------

/// Serializes one op as a WAL record.
pub fn encode_record(op: EdgeOp) -> [u8; RECORD_LEN] {
    let (u, v) = op.endpoints();
    let mut body = [0u8; BODY_LEN];
    body[0] = op.tag();
    body[1..5].copy_from_slice(&u.to_le_bytes());
    body[5..9].copy_from_slice(&v.to_le_bytes());
    let mut rec = [0u8; RECORD_LEN];
    rec[0..4].copy_from_slice(&(BODY_LEN as u32).to_le_bytes());
    rec[4..8].copy_from_slice(&crc32(&body).to_le_bytes());
    rec[8..].copy_from_slice(&body);
    rec
}

/// Decodes every valid record of `bytes` and returns the ops together
/// with the byte length of the valid prefix.
///
/// Decoding stops — without error — at the first torn, truncated, or
/// corrupt record: a partial length prefix, an implausible length, a
/// CRC mismatch, or an unknown tag. Everything before the stop point
/// is a faithful prefix of what was appended; a crash artifact can
/// never make recovery fail.
pub fn decode_records(bytes: &[u8]) -> (Vec<EdgeOp>, usize) {
    let mut ops = Vec::new();
    let mut at = 0usize;
    while let Some(header) = bytes.get(at..at + 8) {
        let len = u32::from_le_bytes(header[0..4].try_into().unwrap()) as usize;
        if len == 0 || len > MAX_BODY_LEN {
            break;
        }
        let want_crc = u32::from_le_bytes(header[4..8].try_into().unwrap());
        let Some(body) = bytes.get(at + 8..at + 8 + len) else {
            break;
        };
        if crc32(body) != want_crc {
            break;
        }
        // A CRC-valid record whose body this version cannot interpret
        // (future op kind) still terminates replay: applying a prefix
        // that skips ops would not be a prefix at all.
        if len != BODY_LEN {
            break;
        }
        let u = u32::from_le_bytes(body[1..5].try_into().unwrap());
        let v = u32::from_le_bytes(body[5..9].try_into().unwrap());
        let op = match body[0] {
            TAG_INSERT => EdgeOp::Insert(u, v),
            TAG_REMOVE => EdgeOp::Remove(u, v),
            _ => break,
        };
        ops.push(op);
        at += 8 + len;
    }
    (ops, at)
}

// ---------------------------------------------------------------------
// Group-commit policy and the append-only log.
// ---------------------------------------------------------------------

/// Group-commit policy: how many acknowledged records may sit in the
/// OS page cache before an fsync.
///
/// Both halves of the policy are evaluated **inside [`Wal::append`]
/// only** — an idle log never syncs on its own. The tail of a write
/// burst therefore stays unsynced until the *next* append arrives:
/// the loss window after the final write is unbounded, not
/// `flush_interval`. Anything that must survive without a follow-up
/// write has to call [`Wal::sync`] (or
/// `DynamicOracle::sync_durability`) explicitly; the serving tier
/// does this for every durable namespace on graceful shutdown.
#[derive(Clone, Copy, Debug)]
pub struct WalConfig {
    /// Fsync after this many unsynced appends. `1` syncs every record
    /// (strongest durability, one fsync per mutation).
    pub flush_every: usize,
    /// Fsync on the first append after this much time has passed since
    /// the last sync, even if `flush_every` has not been reached.
    /// Checked only when an append arrives — see the struct docs for
    /// the idle-tail caveat.
    pub flush_interval: Duration,
}

impl Default for WalConfig {
    fn default() -> Self {
        WalConfig {
            flush_every: 32,
            flush_interval: Duration::from_millis(5),
        }
    }
}

impl WalConfig {
    /// Sync every record — what the fault-injection suite runs under.
    pub fn sync_every_record() -> Self {
        WalConfig {
            flush_every: 1,
            flush_interval: Duration::ZERO,
        }
    }
}

/// The sink a [`Wal`] appends to: sequential writes plus a durability
/// barrier. Implemented by [`File`] (via `sync_data`) and by the
/// [`FailpointWriter`] test shim.
pub trait WalFile: Write + Send {
    /// Force every written byte to stable storage.
    fn sync(&mut self) -> io::Result<()>;
}

impl WalFile for File {
    fn sync(&mut self) -> io::Result<()> {
        self.sync_data()
    }
}

/// An append-only, CRC-per-record log with group commit.
pub struct Wal<F: WalFile = File> {
    file: F,
    cfg: WalConfig,
    bytes: u64,
    records: u64,
    unsynced: usize,
    last_sync: Instant,
}

impl<F: WalFile> Wal<F> {
    /// Wraps a sink positioned at `bytes` valid bytes (`0` for a fresh
    /// log).
    pub fn from_writer(file: F, bytes: u64, cfg: WalConfig) -> Self {
        Wal {
            file,
            cfg,
            bytes,
            records: 0,
            unsynced: 0,
            last_sync: Instant::now(),
        }
    }

    /// Appends one record and applies the group-commit policy. On
    /// `Ok`, the record is in the log (though possibly not yet synced
    /// — see [`WalConfig`]); on `Err`, the log may hold a torn tail
    /// that the next recovery will truncate, and the caller must not
    /// acknowledge the mutation.
    pub fn append(&mut self, op: EdgeOp) -> io::Result<()> {
        let rec = encode_record(op);
        self.file.write_all(&rec)?;
        self.bytes += rec.len() as u64;
        self.records += 1;
        self.unsynced += 1;
        if self.unsynced >= self.cfg.flush_every
            || self.last_sync.elapsed() >= self.cfg.flush_interval
        {
            self.sync()?;
        }
        Ok(())
    }

    /// Forces everything appended so far to stable storage.
    pub fn sync(&mut self) -> io::Result<()> {
        self.file.flush()?;
        self.file.sync()?;
        self.unsynced = 0;
        self.last_sync = Instant::now();
        Ok(())
    }

    /// Valid bytes appended (excluding any torn tail from a failed
    /// append).
    pub fn bytes(&self) -> u64 {
        self.bytes
    }

    /// Records appended through this handle.
    pub fn records(&self) -> u64 {
        self.records
    }

    /// The underlying sink (the fault harness inspects the torn tail).
    pub fn inner(&self) -> &F {
        &self.file
    }
}

// ---------------------------------------------------------------------
// Failpoint shim for the fault-injection harness.
// ---------------------------------------------------------------------

/// A [`WalFile`] that simulates a crash: it accepts bytes until a
/// configured offset, then fails every write — leaving exactly the
/// torn prefix a real power cut would. Test-only by intent, shipped in
/// the library so integration suites and fuzzers can drive it.
#[derive(Debug, Default)]
pub struct FailpointWriter {
    data: Vec<u8>,
    fail_at: Option<usize>,
    syncs: usize,
}

impl FailpointWriter {
    /// A writer that never fails.
    pub fn new() -> Self {
        FailpointWriter::default()
    }

    /// A writer that dies once `fail_at` total bytes have been
    /// accepted: the write crossing the boundary keeps the bytes up to
    /// it and returns an error, and every later write fails outright.
    pub fn failing_at(fail_at: usize) -> Self {
        FailpointWriter {
            data: Vec::new(),
            fail_at: Some(fail_at),
            syncs: 0,
        }
    }

    /// Everything successfully written — what a recovery would read.
    pub fn bytes(&self) -> &[u8] {
        &self.data
    }

    /// How many durability barriers were requested.
    pub fn syncs(&self) -> usize {
        self.syncs
    }
}

impl Write for FailpointWriter {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        if let Some(limit) = self.fail_at {
            if self.data.len() + buf.len() > limit {
                let keep = limit.saturating_sub(self.data.len());
                self.data.extend_from_slice(&buf[..keep]);
                return Err(io::Error::other(format!(
                    "failpoint: crashed at byte {limit}"
                )));
            }
        }
        self.data.extend_from_slice(buf);
        Ok(buf.len())
    }

    fn flush(&mut self) -> io::Result<()> {
        Ok(())
    }
}

impl WalFile for FailpointWriter {
    fn sync(&mut self) -> io::Result<()> {
        self.syncs += 1;
        Ok(())
    }
}

// ---------------------------------------------------------------------
// Durability hook.
// ---------------------------------------------------------------------

/// What a [`DynamicOracle`](crate::DynamicOracle) calls to make a
/// mutation durable *before* it is applied (and before any reply is
/// acknowledged). The production implementation is [`WalDurability`];
/// tests plug in shims.
pub trait Durability: Send {
    /// Logs one validated mutation. `Err` means the mutation must not
    /// be applied or acknowledged.
    fn log(&mut self, op: EdgeOp) -> io::Result<()>;

    /// Forces every logged record to stable storage.
    fn sync(&mut self) -> io::Result<()>;

    /// Supersedes the current log after a rebuild checkpointed its
    /// base: atomically switch to a fresh log containing exactly
    /// `overlay` (the ops still pending on top of the new checkpoint).
    /// The checkpoint bytes must already be staged (see
    /// [`WalDir::prepare_checkpoint`]).
    fn rotate(&mut self, overlay: &[EdgeOp]) -> io::Result<()>;

    /// Bytes in the current log generation.
    fn wal_bytes(&self) -> u64 {
        0
    }

    /// Records logged over this handle's lifetime (monotonic across
    /// rotations).
    fn wal_records_total(&self) -> u64 {
        0
    }
}

// ---------------------------------------------------------------------
// Generation-paired checkpoint + log directory.
// ---------------------------------------------------------------------

/// What [`WalDir::recover`] found on disk.
pub struct Recovered {
    /// The generation whose checkpoint was newest and valid.
    pub generation: u64,
    /// The base DAG the checkpoint captured.
    pub base: Dag,
    /// The valid prefix of `wal.<generation>` — a prefix of the
    /// operations acknowledged since that checkpoint.
    pub ops: Vec<EdgeOp>,
    /// Byte length of that valid prefix (the file is truncated here
    /// when an appender reopens it).
    pub wal_bytes: u64,
}

/// One namespace's durability directory.
#[derive(Clone, Debug)]
pub struct WalDir {
    dir: PathBuf,
}

impl WalDir {
    /// Opens (creating if needed) the directory.
    pub fn open(dir: impl Into<PathBuf>) -> io::Result<WalDir> {
        let dir = dir.into();
        fs::create_dir_all(&dir)?;
        Ok(WalDir { dir })
    }

    /// The directory path.
    pub fn path(&self) -> &Path {
        &self.dir
    }

    fn checkpoint_path(&self, generation: u64) -> PathBuf {
        self.dir.join(format!("checkpoint.{generation}"))
    }

    fn wal_path(&self, generation: u64) -> PathBuf {
        self.dir.join(format!("wal.{generation}"))
    }

    fn tmp_path(&self) -> PathBuf {
        self.dir.join("checkpoint.tmp")
    }

    fn generations(&self) -> io::Result<Vec<u64>> {
        let mut gens = Vec::new();
        for entry in fs::read_dir(&self.dir)? {
            let name = entry?.file_name();
            let Some(name) = name.to_str() else { continue };
            if let Some(gen) = name.strip_prefix("checkpoint.") {
                if let Ok(gen) = gen.parse::<u64>() {
                    gens.push(gen);
                }
            }
        }
        gens.sort_unstable();
        Ok(gens)
    }

    /// Recovers the newest valid generation: `Ok(None)` if the
    /// directory holds no checkpoint (fresh namespace), the base DAG
    /// plus the valid WAL prefix otherwise. Crash artifacts — a stale
    /// `checkpoint.tmp`, a torn WAL tail, leftovers of a superseded
    /// generation — are tolerated, never an error. Read-only: calling
    /// it twice yields the same answer (the fault suite leans on
    /// this).
    pub fn recover(&self) -> io::Result<Option<Recovered>> {
        let mut gens = self.generations()?;
        gens.reverse();
        if gens.is_empty() {
            return Ok(None);
        }
        let mut last_err: Option<String> = None;
        for gen in gens {
            let base = match Oracle::open(self.checkpoint_path(gen)) {
                Ok(oracle) => recover_dag(&oracle)?,
                Err(e) => {
                    // A checkpoint is only ever published by an atomic
                    // rename, so an invalid one means real corruption;
                    // fall back to the previous generation if any.
                    last_err = Some(format!("checkpoint.{gen}: {e}"));
                    continue;
                }
            };
            let wal_raw = match fs::read(self.wal_path(gen)) {
                Ok(bytes) => bytes,
                Err(e) if e.kind() == io::ErrorKind::NotFound => Vec::new(),
                Err(e) => return Err(e),
            };
            let (ops, valid) = decode_records(&wal_raw);
            return Ok(Some(Recovered {
                generation: gen,
                base,
                ops,
                wal_bytes: valid as u64,
            }));
        }
        Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!(
                "wal dir {}: no valid checkpoint ({})",
                self.dir.display(),
                last_err.unwrap_or_default()
            ),
        ))
    }

    /// Initializes generation 0 for a fresh namespace: stages and
    /// publishes `checkpoint.0` for `base` and creates an empty
    /// `wal.0`. Must only be called when [`WalDir::recover`] returned
    /// `None`.
    pub fn initialize(&self, base: &Dag) -> io::Result<()> {
        let arena = checkpoint_bytes(base)?;
        self.prepare_checkpoint(&arena)?;
        let wal = File::create(self.wal_path(0))?;
        wal.sync_data()?;
        fs::rename(self.tmp_path(), self.checkpoint_path(0))?;
        sync_dir(&self.dir)?;
        Ok(())
    }

    /// Stages the next checkpoint's bytes in `checkpoint.tmp`, fully
    /// written and fsynced. Runs *off* the namespace lock (the bytes
    /// capture a fixed base, so nothing here races the live overlay);
    /// the later [`Durability::rotate`] renames the staged file into
    /// place as its commit point.
    pub fn prepare_checkpoint(&self, arena: &[u8]) -> io::Result<()> {
        let tmp = self.tmp_path();
        let mut f = File::create(&tmp)?;
        f.write_all(arena)?;
        f.sync_data()?;
        Ok(())
    }

    /// Opens the appender for `generation`, truncating the log to its
    /// `wal_bytes` valid prefix first (drops any torn tail for good).
    pub fn durability(
        &self,
        generation: u64,
        wal_bytes: u64,
        records_so_far: u64,
        cfg: WalConfig,
    ) -> io::Result<WalDurability> {
        let path = self.wal_path(generation);
        let mut file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(path)?;
        file.set_len(wal_bytes)?;
        file.seek(io::SeekFrom::End(0))?;
        let mut wal = Wal::from_writer(file, wal_bytes, cfg);
        wal.records = records_so_far;
        Ok(WalDurability {
            dir: self.clone(),
            generation,
            wal,
            cfg,
            poisoned: false,
        })
    }
}

/// Serializes the checkpoint arena for `base`: a full [`Oracle`] built
/// over the DAG, saved through the HOPL v3 `save_arena` path (checksum
/// sections and all). Runs a label construction — acceptable because
/// checkpoints happen on the background rebuild worker, never on the
/// query or mutation path.
pub fn checkpoint_bytes(base: &Dag) -> io::Result<Vec<u8>> {
    let oracle = Oracle::new(base.graph());
    let mut bytes = Vec::new();
    oracle
        .save_arena(&mut bytes)
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
    Ok(bytes)
}

/// Reconstructs the original DAG a checkpoint captured. The captured
/// graph was a DAG, so every condensation component is a singleton and
/// `comp_of` is a bijection original-vertex → component; inverting it
/// maps the condensation's edges back into the original numbering.
pub fn recover_dag(oracle: &Oracle) -> io::Result<Dag> {
    let comp_of = oracle.comp_of();
    if oracle.num_components() != comp_of.len() {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "checkpoint captured a cyclic graph (non-singleton component)",
        ));
    }
    let mut inv = vec![0u32; comp_of.len()];
    for (v, &c) in comp_of.iter().enumerate() {
        inv[c as usize] = v as u32;
    }
    let edges: Vec<(u32, u32)> = oracle
        .dag()
        .graph()
        .edges()
        .map(|(a, b)| (inv[a as usize], inv[b as usize]))
        .collect();
    Dag::from_edges(comp_of.len(), &edges)
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))
}

/// Fsyncs a directory so renames and creations inside it are durable.
fn sync_dir(dir: &Path) -> io::Result<()> {
    // Windows cannot open a directory as a File; the rename itself is
    // still atomic there, only its durability timing differs.
    match File::open(dir) {
        Ok(d) => d.sync_all(),
        Err(_) => Ok(()),
    }
}

/// The production [`Durability`]: an open [`Wal`] appender plus the
/// generation bookkeeping for checkpoint rotation.
pub struct WalDurability {
    dir: WalDir,
    generation: u64,
    wal: Wal<File>,
    cfg: WalConfig,
    /// Set on the first append error (the on-disk tail is torn;
    /// appending past it would corrupt the log beyond the prefix
    /// guarantee) or on a rotation whose directory fsync failed (the
    /// live generation is ambiguous until recovery re-resolves it).
    /// Every later mutation is refused until the namespace is
    /// re-opened.
    poisoned: bool,
}

impl WalDurability {
    /// The current generation number.
    pub fn generation(&self) -> u64 {
        self.generation
    }
}

impl Durability for WalDurability {
    fn log(&mut self, op: EdgeOp) -> io::Result<()> {
        if self.poisoned {
            return Err(io::Error::other(
                "wal poisoned by an earlier append or rotation failure; reopen the namespace",
            ));
        }
        self.wal.append(op).inspect_err(|_| self.poisoned = true)
    }

    fn sync(&mut self) -> io::Result<()> {
        self.wal.sync()
    }

    fn rotate(&mut self, overlay: &[EdgeOp]) -> io::Result<()> {
        let next = self.generation + 1;
        let records_total = self.wal.records();
        // 1. The next generation's log, holding exactly the overlay.
        let mut file = File::create(self.dir.wal_path(next))?;
        for &op in overlay {
            file.write_all(&encode_record(op))?;
        }
        file.sync_data()?;
        // 2. Commit point: publish the staged checkpoint. Once the
        //    rename lands, checkpoint.N+1 exists and wins recovery, so
        //    the appender must adopt generation N+1 no matter what
        //    happens below — returning early on a later error would
        //    keep acknowledging mutations into the orphaned wal.N,
        //    silently losing them on restart.
        fs::rename(self.dir.tmp_path(), self.dir.checkpoint_path(next))?;
        let old = self.generation;
        let mut wal = Wal::from_writer(file, (overlay.len() * RECORD_LEN) as u64, self.cfg);
        wal.records = records_total;
        self.wal = wal;
        self.generation = next;
        self.poisoned = false;
        // 3. Make the rename durable. If this fails the rename may not
        //    survive a crash: recovery could come back up on generation
        //    N while new acknowledgments land only in wal.N+1. Both
        //    generations reconstruct every op acknowledged *so far*, so
        //    refusing further mutations (poison) until a reopen
        //    re-resolves the live generation keeps the prefix
        //    guarantee. The old generation is also kept as a fallback.
        if let Err(e) = sync_dir(&self.dir.dir) {
            self.poisoned = true;
            return Err(e);
        }
        // 4. The old generation is now garbage.
        let _ = fs::remove_file(self.dir.checkpoint_path(old));
        let _ = fs::remove_file(self.dir.wal_path(old));
        Ok(())
    }

    fn wal_bytes(&self) -> u64 {
        self.wal.bytes()
    }

    fn wal_records_total(&self) -> u64 {
        self.wal.records()
    }
}

/// Reads a WAL file's valid prefix directly (diagnostics / tests).
pub fn read_wal_file(path: &Path) -> io::Result<(Vec<EdgeOp>, u64)> {
    let mut bytes = Vec::new();
    match File::open(path) {
        Ok(mut f) => {
            f.read_to_end(&mut bytes)?;
        }
        Err(e) if e.kind() == io::ErrorKind::NotFound => {}
        Err(e) => return Err(e),
    }
    let (ops, valid) = decode_records(&bytes);
    Ok((ops, valid as u64))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_dir(tag: &str) -> PathBuf {
        static CALL: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
        let call = CALL.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        let dir =
            std::env::temp_dir().join(format!("hoplite-wal-{tag}-{}-{call}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn record_roundtrip() {
        let ops = [
            EdgeOp::Insert(0, 1),
            EdgeOp::Remove(7, 3),
            EdgeOp::Insert(u32::MAX, 0),
        ];
        let mut bytes = Vec::new();
        for &op in &ops {
            bytes.extend_from_slice(&encode_record(op));
        }
        let (decoded, valid) = decode_records(&bytes);
        assert_eq!(decoded, ops);
        assert_eq!(valid, bytes.len());
    }

    #[test]
    fn torn_tail_truncates_to_a_prefix() {
        let ops = [
            EdgeOp::Insert(1, 2),
            EdgeOp::Insert(2, 3),
            EdgeOp::Remove(1, 2),
        ];
        let mut bytes = Vec::new();
        for &op in &ops {
            bytes.extend_from_slice(&encode_record(op));
        }
        // Every truncation point yields the record-aligned prefix.
        for cut in 0..bytes.len() {
            let (decoded, valid) = decode_records(&bytes[..cut]);
            let whole = cut / RECORD_LEN;
            assert_eq!(decoded.len(), whole, "cut at {cut}");
            assert_eq!(valid, whole * RECORD_LEN, "cut at {cut}");
            assert_eq!(decoded, ops[..whole]);
        }
    }

    #[test]
    fn bit_flips_truncate_at_the_flip() {
        let ops: Vec<EdgeOp> = (0..8).map(|i| EdgeOp::Insert(i, i + 1)).collect();
        let mut clean = Vec::new();
        for &op in &ops {
            clean.extend_from_slice(&encode_record(op));
        }
        for byte in 0..clean.len() {
            for bit in [0, 3, 7] {
                let mut bytes = clean.clone();
                bytes[byte] ^= 1 << bit;
                let (decoded, valid) = decode_records(&bytes);
                let unaffected = byte / RECORD_LEN; // records before the flip
                assert!(
                    decoded.len() >= unaffected,
                    "flip at {byte}.{bit} destroyed an earlier record"
                );
                assert_eq!(
                    decoded[..unaffected],
                    ops[..unaffected],
                    "flip at {byte}.{bit} altered an earlier record"
                );
                assert_eq!(valid % RECORD_LEN, 0);
                // The flipped record itself must never decode to a
                // *different* op.
                if decoded.len() > unaffected {
                    assert_eq!(
                        decoded[unaffected], ops[unaffected],
                        "flip at {byte}.{bit} forged a record"
                    );
                }
            }
        }
    }

    #[test]
    fn group_commit_policy_counts_and_syncs() {
        let cfg = WalConfig {
            flush_every: 3,
            flush_interval: Duration::from_secs(3600),
        };
        let mut wal = Wal::from_writer(FailpointWriter::new(), 0, cfg);
        for i in 0..7u32 {
            wal.append(EdgeOp::Insert(i, i + 1)).unwrap();
        }
        // 7 appends at flush_every=3 → syncs after records 3 and 6.
        assert_eq!(wal.inner().syncs(), 2);
        assert_eq!(wal.records(), 7);
        assert_eq!(wal.bytes(), 7 * RECORD_LEN as u64);
        wal.sync().unwrap();
        assert_eq!(wal.inner().syncs(), 3);
        let (ops, valid) = decode_records(wal.inner().bytes());
        assert_eq!(ops.len(), 7);
        assert_eq!(valid as u64, wal.bytes());
    }

    #[test]
    fn failpoint_append_keeps_a_clean_prefix() {
        for fail_at in 0..(4 * RECORD_LEN) {
            let mut wal = Wal::from_writer(
                FailpointWriter::failing_at(fail_at),
                0,
                WalConfig::sync_every_record(),
            );
            let mut acked = Vec::new();
            for i in 0..6u32 {
                match wal.append(EdgeOp::Insert(i, i + 1)) {
                    Ok(()) => acked.push(EdgeOp::Insert(i, i + 1)),
                    Err(_) => break,
                }
            }
            let (recovered, _) = decode_records(wal.inner().bytes());
            // Recovery yields exactly the acknowledged ops (sync-every-
            // record mode): nothing acked is lost, nothing unacked
            // appears.
            assert_eq!(recovered, acked, "fail_at {fail_at}");
        }
    }

    #[test]
    fn waldir_initialize_then_recover_roundtrips() {
        let dir = temp_dir("init");
        let base = Dag::from_edges(5, &[(0, 1), (1, 2), (3, 4)]).unwrap();
        let wd = WalDir::open(&dir).unwrap();
        assert!(wd.recover().unwrap().is_none());
        wd.initialize(&base).unwrap();
        let rec = wd.recover().unwrap().expect("generation 0");
        assert_eq!(rec.generation, 0);
        assert_eq!(rec.ops, []);
        assert_eq!(rec.base.num_vertices(), 5);
        let want: std::collections::BTreeSet<_> = base.graph().edges().collect();
        let got: std::collections::BTreeSet<_> = rec.base.graph().edges().collect();
        assert_eq!(got, want, "checkpoint round-trips the DAG");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn append_recover_and_double_recover_are_stable() {
        let dir = temp_dir("append");
        let base = Dag::from_edges(4, &[(0, 1)]).unwrap();
        let wd = WalDir::open(&dir).unwrap();
        wd.initialize(&base).unwrap();
        let mut d = wd
            .durability(0, 0, 0, WalConfig::sync_every_record())
            .unwrap();
        d.log(EdgeOp::Insert(1, 2)).unwrap();
        d.log(EdgeOp::Remove(0, 1)).unwrap();
        assert_eq!(d.wal_records_total(), 2);
        assert_eq!(d.wal_bytes(), 2 * RECORD_LEN as u64);
        drop(d);
        let rec = wd.recover().unwrap().unwrap();
        assert_eq!(rec.ops, [EdgeOp::Insert(1, 2), EdgeOp::Remove(0, 1)]);
        // Recovery is read-only: a second pass sees the same state.
        let rec2 = wd.recover().unwrap().unwrap();
        assert_eq!(rec2.ops, rec.ops);
        assert_eq!(rec2.wal_bytes, rec.wal_bytes);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn rotation_is_crash_atomic() {
        let dir = temp_dir("rotate");
        let base = Dag::from_edges(4, &[(0, 1)]).unwrap();
        let wd = WalDir::open(&dir).unwrap();
        wd.initialize(&base).unwrap();
        let mut d = wd
            .durability(0, 0, 0, WalConfig::sync_every_record())
            .unwrap();
        d.log(EdgeOp::Insert(1, 2)).unwrap();
        d.log(EdgeOp::Insert(2, 3)).unwrap();

        // Stage the next checkpoint (base + both inserts folded in) but
        // "crash" before rotate: recovery must still see generation 0.
        let folded = Dag::from_edges(4, &[(0, 1), (1, 2), (2, 3)]).unwrap();
        let arena = checkpoint_bytes(&folded).unwrap();
        wd.prepare_checkpoint(&arena).unwrap();
        let rec = wd.recover().unwrap().unwrap();
        assert_eq!(rec.generation, 0);
        assert_eq!(rec.ops.len(), 2);

        // Now rotate with one op still pending on top of the new base.
        d.log(EdgeOp::Insert(0, 3)).unwrap();
        d.rotate(&[EdgeOp::Insert(0, 3)]).unwrap();
        assert_eq!(d.generation(), 1);
        assert_eq!(d.wal_bytes(), RECORD_LEN as u64);
        assert_eq!(d.wal_records_total(), 3, "monotonic across rotation");
        drop(d);
        let rec = wd.recover().unwrap().unwrap();
        assert_eq!(rec.generation, 1);
        assert_eq!(rec.ops, [EdgeOp::Insert(0, 3)]);
        assert_eq!(rec.base.num_edges(), 3);
        // Old generation files are gone.
        assert!(!wd.checkpoint_path(0).exists());
        assert!(!wd.wal_path(0).exists());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn torn_wal_file_recovers_prefix_and_truncates_on_reopen() {
        let dir = temp_dir("torn");
        let base = Dag::from_edges(8, &[]).unwrap();
        let wd = WalDir::open(&dir).unwrap();
        wd.initialize(&base).unwrap();
        let mut d = wd
            .durability(0, 0, 0, WalConfig::sync_every_record())
            .unwrap();
        for i in 0..5u32 {
            d.log(EdgeOp::Insert(i, i + 1)).unwrap();
        }
        drop(d);
        // Tear the tail mid-record.
        let wal_path = wd.wal_path(0);
        let full = fs::read(&wal_path).unwrap();
        fs::write(&wal_path, &full[..full.len() - 7]).unwrap();
        let rec = wd.recover().unwrap().unwrap();
        assert_eq!(rec.ops.len(), 4, "torn record dropped");
        // Reopening the appender truncates the torn tail, and new
        // appends extend the clean prefix.
        let mut d = wd
            .durability(
                0,
                rec.wal_bytes,
                rec.ops.len() as u64,
                WalConfig::sync_every_record(),
            )
            .unwrap();
        d.log(EdgeOp::Insert(6, 7)).unwrap();
        drop(d);
        let rec = wd.recover().unwrap().unwrap();
        let mut want: Vec<EdgeOp> = (0..4).map(|i| EdgeOp::Insert(i, i + 1)).collect();
        want.push(EdgeOp::Insert(6, 7));
        assert_eq!(rec.ops, want);
        fs::remove_dir_all(&dir).unwrap();
    }
}
