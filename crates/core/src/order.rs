//! Vertex-order (rank) functions.
//!
//! Distribution-Labeling replaces the recursive hierarchy with "the
//! simplest hierarchy — a total order" (§5). The paper's chosen rank is
//! the degree product `(|N_out(v)|+1)·(|N_in(v)|+1)`, which counts the
//! vertex pairs within distance 2 that `v` can cover. The alternatives
//! here exist for the ordering ablation bench (`benches/ordering.rs`).

use hoplite_graph::gen::Rng;
use hoplite_graph::{Dag, TransitiveClosure, VertexId};

/// Rank function selecting the processing order of hops.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub enum OrderKind {
    /// `(|N_out|+1)·(|N_in|+1)`, descending — the paper's choice.
    #[default]
    DegProduct,
    /// `|N_out| + |N_in|`, descending.
    DegSum,
    /// Uniformly random order with the given seed (ablation control).
    Random(u64),
    /// Topological order, sources first (ablation: a *bad* order for
    /// DAGs with long paths — early hops cover few pairs).
    Topological,
    /// Exact covering power `|Cov(v)| = |TC⁻¹(v)|·|TC(v)|`, descending
    /// — the order §5.2 names as principled "but this still needs to
    /// compute transitive closure". Provided for the ordering ablation
    /// on graphs small enough to materialize TC; `compute` panics if
    /// the closure would exceed ~256 MiB.
    CoverSize,
}

impl OrderKind {
    /// Short name for table output.
    pub fn name(&self) -> &'static str {
        match self {
            OrderKind::DegProduct => "deg-product",
            OrderKind::DegSum => "deg-sum",
            OrderKind::Random(_) => "random",
            OrderKind::Topological => "topological",
            OrderKind::CoverSize => "cov-size",
        }
    }

    /// Vertices of `dag` in processing order (highest importance
    /// first). Ties break by vertex id for determinism.
    pub fn compute(&self, dag: &Dag) -> Vec<VertexId> {
        let n = dag.num_vertices();
        match self {
            OrderKind::DegProduct => {
                let mut v: Vec<VertexId> = (0..n as VertexId).collect();
                let key =
                    |x: &VertexId| (dag.out_degree(*x) as u64 + 1) * (dag.in_degree(*x) as u64 + 1);
                v.sort_by(|a, b| key(b).cmp(&key(a)).then(a.cmp(b)));
                v
            }
            OrderKind::DegSum => {
                let mut v: Vec<VertexId> = (0..n as VertexId).collect();
                let key = |x: &VertexId| (dag.out_degree(*x) + dag.in_degree(*x)) as u64;
                v.sort_by(|a, b| key(b).cmp(&key(a)).then(a.cmp(b)));
                v
            }
            OrderKind::Random(seed) => {
                let mut v: Vec<VertexId> = (0..n as VertexId).collect();
                Rng::new(*seed).shuffle(&mut v);
                v
            }
            OrderKind::Topological => dag.topo_order().to_vec(),
            OrderKind::CoverSize => {
                let tc = TransitiveClosure::build_with_budget(dag, 256 << 20)
                    .expect("CoverSize order needs the TC to fit in 256 MiB");
                // |TC(v)| per vertex (including v itself), and its
                // reverse by transposing counts over rows.
                let mut fwd = vec![0u64; n];
                let mut rev = vec![0u64; n];
                for (u, fwd_u) in fwd.iter_mut().enumerate() {
                    for v in tc.row(u as VertexId).ones() {
                        *fwd_u += 1;
                        rev[v] += 1;
                    }
                }
                let mut v: Vec<VertexId> = (0..n as VertexId).collect();
                // +1 on both sides counts v as its own ancestor and
                // descendant, matching Cov's closed form.
                let key = |x: &VertexId| (fwd[*x as usize] + 1) * (rev[*x as usize] + 1);
                v.sort_by(|a, b| key(b).cmp(&key(a)).then(a.cmp(b)));
                v
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn star() -> Dag {
        // 0 -> {1..4}; 5 -> 0. Vertex 0 has the largest degree product.
        Dag::from_edges(6, &[(0, 1), (0, 2), (0, 3), (0, 4), (5, 0)]).unwrap()
    }

    #[test]
    fn deg_product_puts_hub_first() {
        let order = OrderKind::DegProduct.compute(&star());
        assert_eq!(order[0], 0, "hub has (4+1)*(1+1)=10, others <= 2");
        assert_eq!(order.len(), 6);
    }

    #[test]
    fn deg_sum_puts_hub_first() {
        let order = OrderKind::DegSum.compute(&star());
        assert_eq!(order[0], 0);
    }

    #[test]
    fn random_is_seeded_permutation() {
        let d = star();
        let a = OrderKind::Random(1).compute(&d);
        let b = OrderKind::Random(1).compute(&d);
        assert_eq!(a, b);
        let mut sorted = a.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..6).collect::<Vec<_>>());
    }

    #[test]
    fn topological_respects_edges() {
        let d = star();
        let order = OrderKind::Topological.compute(&d);
        let pos = |v: VertexId| order.iter().position(|&x| x == v).unwrap();
        for (u, v) in d.graph().edges() {
            assert!(pos(u) < pos(v));
        }
    }

    #[test]
    fn ties_break_by_id() {
        // All vertices identical degree: order must be 0..n.
        let d = Dag::from_edges(4, &[(0, 1), (2, 3)]).unwrap();
        let order = OrderKind::DegProduct.compute(&d);
        assert_eq!(order, vec![0, 1, 2, 3]);
    }

    #[test]
    fn names() {
        assert_eq!(OrderKind::default().name(), "deg-product");
        assert_eq!(OrderKind::Random(3).name(), "random");
        assert_eq!(OrderKind::CoverSize.name(), "cov-size");
    }

    #[test]
    fn cover_size_ranks_path_center_first() {
        // On a path every vertex ties under DegProduct, but CoverSize
        // sees the middle vertex covering the most pairs:
        // Cov(v) = (ancestors+1)·(descendants+1), maximal at the center.
        let edges: Vec<(u32, u32)> = (0..4).map(|i| (i, i + 1)).collect();
        let dag = Dag::from_edges(5, &edges).unwrap();
        let order = OrderKind::CoverSize.compute(&dag);
        assert_eq!(order[0], 2, "center covers 3*3=9 pairs");
        assert_eq!(order.len(), 5);
    }

    #[test]
    fn cover_size_beats_degree_on_decoy_hub() {
        // Vertex 7 fans out to six leaves: degree product (6+1)·(0+1)=7
        // beats every internal path vertex's (1+1)·(1+1)=4, but it
        // covers only the 7 pairs it touches. The 7-vertex path's
        // center covers (3+1)·(3+1)=16.
        let mut edges: Vec<(u32, u32)> = (0..6).map(|i| (i, i + 1)).collect();
        for leaf in 8..14 {
            edges.push((7, leaf));
        }
        let dag = Dag::from_edges(14, &edges).unwrap();
        let deg = OrderKind::DegProduct.compute(&dag);
        let cov = OrderKind::CoverSize.compute(&dag);
        assert_eq!(deg[0], 7, "degree product falls for the fan");
        assert_eq!(cov[0], 3, "covering power sees the path center");
    }
}
