//! Distribution-Labeling (DL) — Algorithm 2 of the paper.
//!
//! The "simplest hierarchy": a total order of vertices. Hops are
//! processed from the highest rank down; hop `v_i` is *distributed*
//! into the labels of exactly the vertices whose coverage it extends
//! (Theorem 2):
//!
//! * a **reverse** BFS from `v_i` adds `v_i` to `L_out(u)` for every
//!   `u ∈ TC⁻¹(v_i) \ TC⁻¹(X)`, pruning (and not expanding) any `u`
//!   with `L_out(u) ∩ L_in(v_i) ≠ ∅` — such a `u` already reaches `v_i`
//!   through a higher-ranked hop;
//! * a **forward** BFS symmetrically adds `v_i` to `L_in(w)`.
//!
//! The resulting labeling is complete (Theorem 3) and **non-redundant**
//! (Theorem 4): removing any single hop entry breaks completeness. Both
//! properties are enforced by this crate's tests.
//!
//! ### Hop ids are ranks
//!
//! Labels store the *rank* of a hop, not its vertex id. Ranks are
//! assigned in processing order, so every label list is born sorted —
//! no per-list sort is ever needed, and the merge-intersection query
//! works directly on ranks. [`DistributionLabeling::vertex_at_rank`]
//! recovers the underlying vertex.
//!
//! Worst-case construction cost is `O(n·(n+m)·L)` like the paper's
//! Algorithm 2, but the pruning makes it far faster in practice — that
//! is the paper's central claim, reproduced in `EXPERIMENTS.md`.
//!
//! ### The hot-path build engine
//!
//! The textbook transcription of Algorithm 2 pays a full sorted-merge
//! `L_out(u) ∩ L_in(v_i)` on **every** BFS pop. Two observations make
//! the build much faster without changing a single emitted label:
//!
//! 1. **Rank-bitmap pruning** ([`Pruning::RankBitmap`], the default).
//!    Within one hop's BFS the right-hand side of every pruning test is
//!    the *same* list (`L_in(v_i)` for the reverse side, `L_out(v_i)`
//!    for the forward side). Snapshotting it once per hop into an
//!    epoch-stamped, rank-indexed membership array turns each test into
//!    `O(|L_out(u)|)` probes with O(1) lookups — and the epoch stamp
//!    makes the per-hop reset O(1) instead of O(n).
//! 2. **N-thread chunked hop distribution** ([`Parallelism`]). Each
//!    hop's BFSs run *level-synchronously*: a frontier is scanned, the
//!    survivors get rank `r` appended, and their unvisited neighbors
//!    form the next frontier. Within one level every frontier entry is
//!    independent (the prune test reads only that vertex's own list
//!    plus the per-hop snapshot), so large frontiers are split into
//!    vertex-range chunks pulled from a shared atomic cursor by a
//!    `std::thread`-scoped worker pool; the per-hop snapshot exchange
//!    of the old two-thread engine is generalized to a barrier at each
//!    level plus a shared epoch-stamped snapshot both sides read. The
//!    set of vertices a hop labels is order-independent (each vertex is
//!    claimed and tested exactly once, against state fixed at hop
//!    start), so every thread count emits labels *byte-identical* to
//!    the sequential engine — enforced by tests across
//!    {1, 2, 3, 4, 8} threads.
//!
//! [`Pruning::SortedMerge`] keeps the original per-pop merge as a
//! measurable reference — `paper perf` reports the speedup of the
//! bitmap/chunked engine against it.

use std::cell::UnsafeCell;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU32, AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex};

use hoplite_graph::traversal::VisitedSet;
use hoplite_graph::{Dag, DiGraph, VertexId};

use crate::label::{sorted_intersect, Labeling, LabelingBuilder};
use crate::metrics::BuildTrace;
use crate::oracle::ReachIndex;
use crate::order::OrderKind;
use crate::store::Store;

/// Below this vertex count [`Parallelism::Auto`] stays sequential: the
/// per-hop coordination costs more than tiny BFSs save.
const PARALLEL_MIN_VERTICES: usize = 2_048;

/// Frontier entries per chunk claimed from the shared cursor.
const CHUNK: usize = 256;

/// Frontiers smaller than this are scanned inline by the coordinating
/// thread — waking the pool costs more than the scan itself. Pruned
/// BFS frontiers are tiny for most hops; the pool engages exactly on
/// the early high-rank hops whose frontiers span much of the graph.
const PAR_FRONTIER_MIN: usize = 2 * CHUNK;

/// Cap on [`Parallelism::Auto`]'s pool size: chunk scanning saturates
/// memory bandwidth well before this on every graph we measure.
const MAX_AUTO_THREADS: usize = 8;

/// How many OS threads [`DistributionLabeling::build`] may use.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub enum Parallelism {
    /// One thread per available core (capped at [`MAX_AUTO_THREADS`])
    /// when the DAG has at least [`PARALLEL_MIN_VERTICES`] vertices and
    /// the host has ≥ 2 cores; sequential otherwise.
    #[default]
    Auto,
    /// Always build on the calling thread.
    Sequential,
    /// Run the chunked engine with exactly this many threads (clamped
    /// to ≥ 1; `Threads(1)` exercises the chunked code path with no
    /// workers, even on graphs smaller than one chunk).
    Threads(usize),
}

impl Parallelism {
    /// The thread count this policy resolves to for an `n`-vertex DAG
    /// on the current host — the number the build engines actually
    /// use, exposed so reports (`paper perf`) state it without
    /// re-deriving the policy.
    pub fn resolve(self, n: usize) -> usize {
        match self {
            Parallelism::Sequential => 1,
            Parallelism::Threads(t) => t.max(1),
            Parallelism::Auto => {
                if n >= PARALLEL_MIN_VERTICES {
                    std::thread::available_parallelism()
                        .map_or(1, |p| p.get().min(MAX_AUTO_THREADS))
                } else {
                    1
                }
            }
        }
    }
}

/// Pruning-test implementation used by the build loop.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub enum Pruning {
    /// Per-hop snapshot of the fixed intersection side into an
    /// epoch-stamped rank-membership array; each pop then tests in
    /// `O(|L_out(u)|)` with O(1) lookups. The default.
    #[default]
    RankBitmap,
    /// The paper-literal per-pop sorted merge,
    /// `O(|L_out(u)| + |L_in(v_i)|)` per pop. Kept as the measurable
    /// reference baseline; always sequential ([`Parallelism`] is
    /// ignored).
    SortedMerge,
}

/// Configuration for [`DistributionLabeling::build`].
#[derive(Clone, Debug, Default)]
pub struct DlConfig {
    /// Vertex processing order (default: the paper's degree product).
    pub order: OrderKind,
    /// Thread policy for the hop-distribution loop.
    pub parallelism: Parallelism,
    /// Pruning-test engine (default: rank-bitmap).
    pub pruning: Pruning,
}

/// Epoch-stamped membership set over hop ranks `0..n`.
///
/// `load` snapshots one sorted rank list in `O(len)`; `intersects`
/// then answers "does this other list share an element?" in
/// `O(len(other))` with O(1) probes. Bumping the epoch invalidates the
/// whole set in O(1), so per-hop reuse never pays a clear.
#[derive(Clone, Debug)]
struct RankSet {
    stamp: Vec<u32>,
    epoch: u32,
}

impl RankSet {
    fn new(n: usize) -> Self {
        RankSet {
            stamp: vec![0; n],
            epoch: 0,
        }
    }

    /// Starts a fresh epoch containing exactly `ranks`.
    fn load(&mut self, ranks: &[u32]) {
        if self.epoch == u32::MAX {
            self.stamp.fill(0);
            self.epoch = 0;
        }
        self.epoch += 1;
        for &r in ranks {
            self.stamp[r as usize] = self.epoch;
        }
    }

    /// `true` iff any rank in `ranks` is in the current epoch's set.
    #[inline]
    fn intersects(&self, ranks: &[u32]) -> bool {
        ranks.iter().any(|&r| self.stamp[r as usize] == self.epoch)
    }
}

/// A complete, non-redundant reachability oracle built by
/// Distribution-Labeling.
#[derive(Clone, Debug)]
pub struct DistributionLabeling {
    labeling: Labeling,
    /// `order[r]` = vertex processed at rank `r`. A [`Store`] so a
    /// HOPL v3 open addresses the persisted table in place.
    order: Store<u32>,
}

impl DistributionLabeling {
    /// Runs Algorithm 2 on `dag`.
    ///
    /// ```
    /// use hoplite_graph::Dag;
    /// use hoplite_core::{DistributionLabeling, DlConfig, ReachIndex};
    ///
    /// let dag = Dag::from_edges(4, &[(0, 1), (1, 2), (1, 3)])?;
    /// let dl = DistributionLabeling::build(&dag, &DlConfig::default());
    /// assert!(dl.query(0, 3));
    /// assert!(!dl.query(2, 3));
    /// # Ok::<(), hoplite_graph::GraphError>(())
    /// ```
    pub fn build(dag: &Dag, cfg: &DlConfig) -> Self {
        Self::build_ordered(dag, cfg.order.compute(dag), cfg)
    }

    /// [`Self::build`] with construction-phase span tracing: the order
    /// computation, the hop-distribution loop, and the label freeze
    /// each record a span into `trace`, and the sequential rank-bitmap
    /// engine additionally records a per-hop duration histogram. With
    /// `trace = None` this is exactly [`Self::build`] — the engines
    /// take one dead branch per hop and record nothing.
    pub fn build_traced(dag: &Dag, cfg: &DlConfig, trace: Option<&BuildTrace>) -> Self {
        let order = match trace {
            Some(t) => t.span("order", || cfg.order.compute(dag)),
            None => cfg.order.compute(dag),
        };
        Self::build_ordered_traced(dag, order, cfg, trace)
    }

    /// Runs Algorithm 2 with an explicit processing order (`order[0]`
    /// is the highest-ranked hop). The order must be a permutation of
    /// the vertices; domain-specific orders can beat the degree
    /// heuristics when the caller knows the graph's hub structure.
    ///
    /// # Panics
    /// Panics if `order` is not a permutation of `0..n`.
    pub fn build_with_order(dag: &Dag, order: Vec<VertexId>) -> Self {
        Self::build_ordered(dag, order, &DlConfig::default())
    }

    /// [`Self::build_with_order`] with explicit engine knobs
    /// (`cfg.order` is ignored in favor of `order`).
    ///
    /// Every engine combination emits **identical** labels; the knobs
    /// trade construction time only.
    ///
    /// # Panics
    /// Panics if `order` is not a permutation of `0..n`.
    pub fn build_ordered(dag: &Dag, order: Vec<VertexId>, cfg: &DlConfig) -> Self {
        Self::build_ordered_traced(dag, order, cfg, None)
    }

    /// [`Self::build_ordered`] with optional span tracing (see
    /// [`Self::build_traced`]).
    ///
    /// # Panics
    /// Panics if `order` is not a permutation of `0..n`.
    pub fn build_ordered_traced(
        dag: &Dag,
        order: Vec<VertexId>,
        cfg: &DlConfig,
        trace: Option<&BuildTrace>,
    ) -> Self {
        let n = dag.num_vertices();
        assert_eq!(order.len(), n, "order must cover every vertex");
        debug_assert!({
            let mut seen = vec![false; n];
            order.iter().all(|&v| {
                let s = &mut seen[v as usize];
                !std::mem::replace(s, true)
            })
        });
        let threads = cfg.parallelism.resolve(n);
        // `Threads(t)` always takes the chunked engine (so the chunked
        // code path is reachable at every width, including t = 1);
        // `Auto`/`Sequential` resolving to one thread use the leaner
        // sequential loop.
        let engine = || match (cfg.pruning, cfg.parallelism) {
            (Pruning::SortedMerge, _) => build_merge(dag, &order),
            (Pruning::RankBitmap, Parallelism::Threads(_)) => build_chunked(dag, &order, threads),
            (Pruning::RankBitmap, _) if threads == 1 => build_bitmap_sequential(dag, &order, trace),
            (Pruning::RankBitmap, _) => build_chunked(dag, &order, threads),
        };
        let b = match trace {
            Some(t) => t.span("distribute", engine),
            None => engine(),
        };
        let labeling = match trace {
            Some(t) => t.span("freeze", || b.finish()),
            None => b.finish(),
        };
        DistributionLabeling {
            labeling,
            order: order.into(),
        }
    }

    /// The underlying label store.
    pub fn labeling(&self) -> &Labeling {
        &self.labeling
    }

    /// Reassembles an oracle from persisted parts (see
    /// [`crate::persist`]). The order table may be owned (v1 streaming
    /// load) or a mapped arena window (v3 open).
    pub(crate) fn from_parts(labeling: Labeling, order: impl Into<Store<u32>>) -> Self {
        DistributionLabeling {
            labeling,
            order: order.into(),
        }
    }

    /// True byte footprint (labels + signatures + the order table),
    /// split by backing.
    pub fn memory(&self) -> crate::store::MemorySplit {
        let mut m = self.labeling.memory();
        m.add(crate::store::MemorySplit::of(&self.order));
        m
    }

    /// The vertex that was assigned rank `r` (hop id `r` in the labels).
    pub fn vertex_at_rank(&self, r: u32) -> VertexId {
        self.order[r as usize]
    }

    /// The full rank → vertex order.
    pub fn order(&self) -> &[VertexId] {
        &self.order
    }
}

/// One side of one hop's distribution: a pruned BFS from `vi` that
/// appends rank `r` to `side[u]` for every non-pruned visited vertex,
/// expanding along `neighbors`. The prune test sees the visited
/// vertex's current label list — a hit means that vertex already
/// covers `v_i` through a higher-ranked hop, so neither it nor
/// anything beyond it needs this hop. The three engines differ only in
/// the closures they pass (merge vs bitmap probe; in- vs
/// out-neighbors); the closures monomorphize, so the shared skeleton
/// costs nothing on the hot path.
fn distribute<'g>(
    side: &mut [Vec<u32>],
    vi: VertexId,
    r: u32,
    neighbors: impl Fn(VertexId) -> &'g [VertexId],
    prune: impl Fn(&[u32]) -> bool,
    visited: &mut VisitedSet,
    queue: &mut VecDeque<VertexId>,
) {
    visited.clear();
    queue.clear();
    visited.insert(vi);
    queue.push_back(vi);
    while let Some(u) = queue.pop_front() {
        if prune(&side[u as usize]) {
            continue;
        }
        side[u as usize].push(r);
        for &w in neighbors(u) {
            if visited.insert(w) {
                queue.push_back(w);
            }
        }
    }
}

/// The paper-literal engine: per-pop sorted-merge pruning, one thread.
fn build_merge(dag: &Dag, order: &[VertexId]) -> LabelingBuilder {
    let g = dag.graph();
    let n = dag.num_vertices();
    let mut b = LabelingBuilder::new(n);
    let mut visited = VisitedSet::new(n);
    let mut queue: VecDeque<VertexId> = VecDeque::new();

    for (rank, &vi) in order.iter().enumerate() {
        let r = rank as u32;
        // Reverse BFS: distribute r into L_out of vi's ancestors.
        distribute(
            &mut b.out,
            vi,
            r,
            |u| g.in_neighbors(u),
            |l_out_u| sorted_intersect(l_out_u, &b.in_[vi as usize]),
            &mut visited,
            &mut queue,
        );
        // Forward BFS: distribute r into L_in of vi's descendants.
        distribute(
            &mut b.in_,
            vi,
            r,
            |w| g.out_neighbors(w),
            |l_in_w| sorted_intersect(l_in_w, &b.out[vi as usize]),
            &mut visited,
            &mut queue,
        );
    }
    b
}

/// Rank-bitmap engine, single thread: one `RankSet` reused across hops
/// and sides. Emits labels identical to [`build_merge`] — within a
/// hop the membership snapshot equals the list the merge would scan
/// (the reverse BFS never mutates `L_in(v_i)`, and the forward test
/// can never observe its own rank `r` in any `L_in(w)`, so snapshot
/// timing is irrelevant). With a trace, each hop's full distribution
/// (both BFS sides) lands in the trace's per-hop histogram.
fn build_bitmap_sequential(
    dag: &Dag,
    order: &[VertexId],
    trace: Option<&BuildTrace>,
) -> LabelingBuilder {
    let g = dag.graph();
    let n = dag.num_vertices();
    let mut b = LabelingBuilder::new(n);
    let mut visited = VisitedSet::new(n);
    let mut queue: VecDeque<VertexId> = VecDeque::new();
    let mut members = RankSet::new(n);

    for (rank, &vi) in order.iter().enumerate() {
        let hop_started = trace.map(|_| std::time::Instant::now());
        let r = rank as u32;
        members.load(&b.in_[vi as usize]);
        distribute(
            &mut b.out,
            vi,
            r,
            |u| g.in_neighbors(u),
            |l_out_u| members.intersects(l_out_u),
            &mut visited,
            &mut queue,
        );
        members.load(&b.out[vi as usize]);
        distribute(
            &mut b.in_,
            vi,
            r,
            |w| g.out_neighbors(w),
            |l_in_w| members.intersects(l_in_w),
            &mut visited,
            &mut queue,
        );
        if let (Some(t), Some(started)) = (trace, hop_started) {
            t.record_hop(started.elapsed().as_nanos() as u64);
        }
    }
    b
}

// ---------------------------------------------------------------------
// The N-thread chunked engine
// ---------------------------------------------------------------------
//
// Why chunking a pruned BFS is sound *and* byte-identical: within one
// hop, a visited vertex `u` is popped exactly once (the visited set
// claims it), its prune test reads only `u`'s own label list — which no
// other vertex's processing in this hop can touch — and the fixed
// per-hop snapshot. So the set of vertices that survive (and therefore
// receive rank `r`) is a function of the hop-start state alone, not of
// the processing order. Chunks may interleave arbitrarily across
// threads and levels may gather next-frontiers in any order; the
// emitted labels cannot differ.
//
// Snapshot timing matches the retired two-thread engine: both
// snapshots are taken at hop start, *before* the reverse BFS runs. The
// sequential engine loads `L_out(v_i)` after its reverse BFS (which
// may have appended `r` to it), but the forward prune test compares
// the snapshot against `L_in(w)` lists that cannot contain `r` before
// their own append — so the timing difference is unobservable.

/// Which side of a hop a level job belongs to.
#[derive(Copy, Clone)]
enum Side {
    /// BFS over in-neighbors, appending to `L_out`.
    Reverse,
    /// BFS over out-neighbors, appending to `L_in`.
    Forward,
}

/// Epoch-stamped visited set with thread-safe claiming. The epoch is
/// bumped by the coordinator between levels/sides (never concurrently
/// with claims), so `Relaxed` loads of it are safe; claiming swaps the
/// stamp so exactly one thread wins each vertex per epoch.
struct AtomicVisited {
    stamp: Vec<AtomicU32>,
    epoch: AtomicU32,
}

impl AtomicVisited {
    fn new(n: usize) -> Self {
        AtomicVisited {
            stamp: (0..n).map(|_| AtomicU32::new(0)).collect(),
            epoch: AtomicU32::new(0),
        }
    }

    /// Starts a fresh epoch. Coordinator only, with the pool idle.
    fn next_epoch(&self) {
        let e = self.epoch.load(Ordering::Relaxed);
        if e == u32::MAX {
            for s in &self.stamp {
                s.store(0, Ordering::Relaxed);
            }
            self.epoch.store(1, Ordering::Relaxed);
        } else {
            self.epoch.store(e + 1, Ordering::Relaxed);
        }
    }

    /// `true` iff this call (among all concurrent ones) claimed `v` for
    /// the current epoch.
    #[inline]
    fn claim(&self, v: VertexId) -> bool {
        let e = self.epoch.load(Ordering::Relaxed);
        self.stamp[v as usize].swap(e, Ordering::Relaxed) != e
    }
}

/// A label side (`&mut [Vec<u32>]`) shared across chunk workers.
///
/// Safety contract: a level's frontier contains each vertex at most
/// once ([`AtomicVisited::claim`]) and chunks partition the frontier,
/// so no two threads ever hold the same cell; the coordinator touches
/// cells only while the pool is parked (established by the job/done
/// mutex handoffs).
struct SharedLists {
    ptr: *mut Vec<u32>,
    len: usize,
}

unsafe impl Send for SharedLists {}
unsafe impl Sync for SharedLists {}

impl SharedLists {
    fn new(lists: &mut [Vec<u32>]) -> Self {
        SharedLists {
            ptr: lists.as_mut_ptr(),
            len: lists.len(),
        }
    }

    /// # Safety
    /// No other live reference to cell `v` may exist (see the struct
    /// docs for how the engine guarantees that).
    #[inline]
    #[allow(clippy::mut_from_ref)]
    unsafe fn cell(&self, v: VertexId) -> &mut Vec<u32> {
        debug_assert!((v as usize) < self.len);
        &mut *self.ptr.add(v as usize)
    }
}

/// [`RankSet`] behind an `UnsafeCell` so the coordinator can reload it
/// between hops while workers hold shared references during levels.
struct SyncRankSet(UnsafeCell<RankSet>);

unsafe impl Sync for SyncRankSet {}

/// One level's worth of parallel work: scan `frontier`, append rank
/// `r` to survivors on `side`. The frontier buffer lives on the
/// coordinator's stack and is stable for the job's lifetime.
#[derive(Copy, Clone)]
struct LevelJob {
    side: Side,
    r: u32,
    frontier: *const VertexId,
    frontier_len: usize,
}

unsafe impl Send for LevelJob {}

/// Latest published job plus the lifecycle flags workers watch.
struct JobSlot {
    /// Bumped on every publication; workers compare-and-sleep on it.
    seq: u64,
    /// Terminates the pool.
    stop: bool,
    job: Option<LevelJob>,
}

/// Everything the pool shares: job dispatch, the chunk cursor, the
/// gathered next frontier, and completion tracking.
struct Coordinator {
    job: Mutex<JobSlot>,
    job_cv: Condvar,
    done: Mutex<usize>,
    done_cv: Condvar,
    cursor: AtomicUsize,
    next: Mutex<Vec<VertexId>>,
}

impl Coordinator {
    fn new() -> Self {
        Coordinator {
            job: Mutex::new(JobSlot {
                seq: 0,
                stop: false,
                job: None,
            }),
            job_cv: Condvar::new(),
            done: Mutex::new(0),
            done_cv: Condvar::new(),
            cursor: AtomicUsize::new(0),
            next: Mutex::new(Vec::new()),
        }
    }
}

/// Scans one slice of a frontier: prune-test each vertex, append `r`
/// to survivors, claim-and-collect their unvisited neighbors.
#[inline]
fn scan_frontier<'g>(
    chunk: &[VertexId],
    r: u32,
    side: &SharedLists,
    members: &RankSet,
    visited: &AtomicVisited,
    neighbors: impl Fn(VertexId) -> &'g [VertexId],
    discovered: &mut Vec<VertexId>,
) {
    for &u in chunk {
        // Safety: `u` appears exactly once in this level's frontier.
        let list = unsafe { side.cell(u) };
        if members.intersects(list) {
            continue;
        }
        list.push(r);
        for &w in neighbors(u) {
            if visited.claim(w) {
                discovered.push(w);
            }
        }
    }
}

/// Claims chunks from the shared cursor until the frontier is
/// exhausted, collecting discovered vertices into `local`.
#[allow(clippy::too_many_arguments)]
fn drain_chunks(
    job: &LevelJob,
    g: &DiGraph,
    out: &SharedLists,
    in_: &SharedLists,
    members_rev: &SyncRankSet,
    members_fwd: &SyncRankSet,
    visited: &AtomicVisited,
    cursor: &AtomicUsize,
    local: &mut Vec<VertexId>,
) {
    // Safety: the coordinator keeps the frontier buffer alive and
    // untouched until every participant reported done.
    let frontier = unsafe { std::slice::from_raw_parts(job.frontier, job.frontier_len) };
    loop {
        let start = cursor.fetch_add(CHUNK, Ordering::Relaxed);
        if start >= frontier.len() {
            return;
        }
        let chunk = &frontier[start..(start + CHUNK).min(frontier.len())];
        // Safety (members): reloaded only while the pool is parked.
        match job.side {
            Side::Reverse => scan_frontier(
                chunk,
                job.r,
                out,
                unsafe { &*members_rev.0.get() },
                visited,
                |u| g.in_neighbors(u),
                local,
            ),
            Side::Forward => scan_frontier(
                chunk,
                job.r,
                in_,
                unsafe { &*members_fwd.0.get() },
                visited,
                |w| g.out_neighbors(w),
                local,
            ),
        }
    }
}

/// A pool worker: sleep until a new job (or stop) is published, drain
/// chunks, hand discovered vertices to the shared next frontier,
/// report done.
#[allow(clippy::too_many_arguments)]
fn worker_loop(
    co: &Coordinator,
    g: &DiGraph,
    out: &SharedLists,
    in_: &SharedLists,
    members_rev: &SyncRankSet,
    members_fwd: &SyncRankSet,
    visited: &AtomicVisited,
) {
    let mut last_seen = 0u64;
    let mut local: Vec<VertexId> = Vec::new();
    loop {
        let job = {
            let mut slot = co.job.lock().expect("job lock");
            loop {
                if slot.stop {
                    return;
                }
                if slot.seq != last_seen {
                    break;
                }
                slot = co.job_cv.wait(slot).expect("job wait");
            }
            last_seen = slot.seq;
            slot.job.expect("seq bumped with a job published")
        };
        drain_chunks(
            &job,
            g,
            out,
            in_,
            members_rev,
            members_fwd,
            visited,
            &co.cursor,
            &mut local,
        );
        if !local.is_empty() {
            co.next.lock().expect("next lock").append(&mut local);
        }
        {
            let mut done = co.done.lock().expect("done lock");
            *done += 1;
        }
        // Only the coordinator waits on this; notify_one suffices.
        co.done_cv.notify_one();
    }
}

/// Rank-bitmap engine, N-thread chunked: level-synchronous BFS where
/// large frontiers are split into [`CHUNK`]-sized ranges pulled from a
/// shared atomic cursor by `threads − 1` long-lived scoped workers
/// (plus the coordinator itself). Small frontiers — the common case on
/// pruned hops — are scanned inline without waking the pool. Emits
/// labels byte-identical to [`build_bitmap_sequential`] at every
/// thread count (see the module docs for the argument; enforced by
/// tests).
fn build_chunked(dag: &Dag, order: &[VertexId], threads: usize) -> LabelingBuilder {
    let g = dag.graph();
    let n = dag.num_vertices();
    let mut out: Vec<Vec<u32>> = vec![Vec::new(); n];
    let mut in_: Vec<Vec<u32>> = vec![Vec::new(); n];
    let workers = threads.saturating_sub(1);
    {
        let out_shared = SharedLists::new(&mut out);
        let in_shared = SharedLists::new(&mut in_);
        let members_rev = SyncRankSet(UnsafeCell::new(RankSet::new(n)));
        let members_fwd = SyncRankSet(UnsafeCell::new(RankSet::new(n)));
        let visited = AtomicVisited::new(n);
        let co = Coordinator::new();

        std::thread::scope(|s| {
            for _ in 0..workers {
                s.spawn(|| {
                    worker_loop(
                        &co,
                        g,
                        &out_shared,
                        &in_shared,
                        &members_rev,
                        &members_fwd,
                        &visited,
                    )
                });
            }
            run_hops(
                order,
                g,
                &out_shared,
                &in_shared,
                &members_rev,
                &members_fwd,
                &visited,
                &co,
                workers,
            );
            let mut slot = co.job.lock().expect("job lock");
            slot.stop = true;
            drop(slot);
            co.job_cv.notify_all();
        });
    }
    LabelingBuilder { out, in_ }
}

/// The coordinator body of [`build_chunked`]: the per-hop loop.
#[allow(clippy::too_many_arguments)]
fn run_hops(
    order: &[VertexId],
    g: &DiGraph,
    out_shared: &SharedLists,
    in_shared: &SharedLists,
    members_rev: &SyncRankSet,
    members_fwd: &SyncRankSet,
    visited: &AtomicVisited,
    co: &Coordinator,
    workers: usize,
) {
    let mut frontier: Vec<VertexId> = Vec::new();
    let mut next: Vec<VertexId> = Vec::new();
    for (rank, &vi) in order.iter().enumerate() {
        let r = rank as u32;
        // Hop-start snapshots for both sides (the shared epoch
        // snapshot; see the timing note above). Safety: pool parked.
        unsafe {
            (*members_rev.0.get()).load(in_shared.cell(vi));
            (*members_fwd.0.get()).load(out_shared.cell(vi));
        }
        for side in [Side::Reverse, Side::Forward] {
            visited.next_epoch();
            let claimed = visited.claim(vi);
            debug_assert!(claimed, "fresh epoch cannot have claimed vi");
            frontier.clear();
            frontier.push(vi);
            while !frontier.is_empty() {
                next.clear();
                let job = LevelJob {
                    side,
                    r,
                    frontier: frontier.as_ptr(),
                    frontier_len: frontier.len(),
                };
                if workers == 0 || frontier.len() < PAR_FRONTIER_MIN {
                    // Inline scan; never wakes the pool.
                    co.cursor.store(0, Ordering::Relaxed);
                    drain_chunks(
                        &job,
                        g,
                        out_shared,
                        in_shared,
                        members_rev,
                        members_fwd,
                        visited,
                        &co.cursor,
                        &mut next,
                    );
                } else {
                    run_level_parallel(
                        &job,
                        g,
                        out_shared,
                        in_shared,
                        members_rev,
                        members_fwd,
                        visited,
                        co,
                        workers,
                        &mut next,
                    );
                }
                std::mem::swap(&mut frontier, &mut next);
            }
        }
    }
}

/// Fans one big level out over the pool: publish the job, participate
/// in the chunk scan, wait for every worker (the level barrier),
/// gather the next frontier.
#[allow(clippy::too_many_arguments)]
fn run_level_parallel(
    job: &LevelJob,
    g: &DiGraph,
    out_shared: &SharedLists,
    in_shared: &SharedLists,
    members_rev: &SyncRankSet,
    members_fwd: &SyncRankSet,
    visited: &AtomicVisited,
    co: &Coordinator,
    workers: usize,
    next: &mut Vec<VertexId>,
) {
    co.cursor.store(0, Ordering::Relaxed);
    *co.done.lock().expect("done lock") = 0;
    {
        let mut slot = co.job.lock().expect("job lock");
        slot.seq += 1;
        slot.job = Some(*job);
    }
    co.job_cv.notify_all();
    drain_chunks(
        job,
        g,
        out_shared,
        in_shared,
        members_rev,
        members_fwd,
        visited,
        &co.cursor,
        next,
    );
    let mut done = co.done.lock().expect("done lock");
    while *done < workers {
        done = co.done_cv.wait(done).expect("done wait");
    }
    drop(done);
    next.append(&mut co.next.lock().expect("next lock"));
}

impl ReachIndex for DistributionLabeling {
    fn name(&self) -> &'static str {
        "DL"
    }

    fn query(&self, u: VertexId, v: VertexId) -> bool {
        self.labeling.query(u, v)
    }

    fn size_in_integers(&self) -> u64 {
        // Labels + offsets + the rank→vertex table.
        self.labeling.size_in_integers() + self.order.len() as u64
    }

    fn memory_bytes(&self) -> u64 {
        // The default 4·size_in_integers() misses the 16 B/vertex
        // signature arrays; report the real footprint.
        self.memory().total()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hoplite_graph::{gen, traversal};

    fn assert_matches_bfs(dag: &Dag, dl: &DistributionLabeling) {
        let n = dag.num_vertices() as VertexId;
        for u in 0..n {
            for v in 0..n {
                assert_eq!(
                    dl.query(u, v),
                    traversal::reaches(dag.graph(), u, v),
                    "mismatch at ({u},{v})"
                );
            }
        }
    }

    #[test]
    fn diamond_complete() {
        let dag = Dag::from_edges(5, &[(0, 1), (0, 2), (1, 3), (2, 3), (3, 4)]).unwrap();
        let dl = DistributionLabeling::build(&dag, &DlConfig::default());
        assert_matches_bfs(&dag, &dl);
    }

    #[test]
    fn every_vertex_labels_itself() {
        let dag = Dag::from_edges(4, &[(0, 1), (1, 2), (2, 3)]).unwrap();
        let dl = DistributionLabeling::build(&dag, &DlConfig::default());
        for v in 0..4u32 {
            assert!(dl.query(v, v));
        }
    }

    #[test]
    fn random_dags_complete_all_orders() {
        for seed in 0..8 {
            let dag = gen::random_dag(40, 120, seed);
            for order in [
                OrderKind::DegProduct,
                OrderKind::DegSum,
                OrderKind::Random(seed),
                OrderKind::Topological,
                OrderKind::CoverSize,
            ] {
                let dl = DistributionLabeling::build(
                    &dag,
                    &DlConfig {
                        order,
                        ..DlConfig::default()
                    },
                );
                assert_matches_bfs(&dag, &dl);
            }
        }
    }

    #[test]
    fn tree_and_powerlaw_complete() {
        for seed in 0..4 {
            let d1 = gen::tree_plus_dag(60, 15, seed);
            assert_matches_bfs(&d1, &DistributionLabeling::build(&d1, &DlConfig::default()));
            let d2 = gen::power_law_dag(60, 180, seed);
            assert_matches_bfs(&d2, &DistributionLabeling::build(&d2, &DlConfig::default()));
        }
    }

    #[test]
    fn empty_and_singleton() {
        let dag = Dag::from_edges(0, &[]).unwrap();
        let dl = DistributionLabeling::build(&dag, &DlConfig::default());
        assert_eq!(dl.labeling().total_entries(), 0);

        let dag = Dag::from_edges(1, &[]).unwrap();
        let dl = DistributionLabeling::build(&dag, &DlConfig::default());
        assert!(dl.query(0, 0));
        // Singleton labels itself on both sides.
        assert_eq!(dl.labeling().total_entries(), 2);
    }

    #[test]
    fn label_lists_are_strictly_sorted_ranks() {
        let dag = gen::random_dag(50, 150, 3);
        let dl = DistributionLabeling::build(&dag, &DlConfig::default());
        for v in 0..50u32 {
            for l in [dl.labeling().out_label(v), dl.labeling().in_label(v)] {
                assert!(l.windows(2).all(|w| w[0] < w[1]), "unsorted label at {v}");
            }
        }
    }

    /// Theorem 4: the labeling is non-redundant — removing any single
    /// hop entry breaks completeness.
    #[test]
    fn non_redundancy_on_small_dags() {
        for seed in 0..5 {
            let dag = gen::random_dag(14, 28, seed);
            let dl = DistributionLabeling::build(&dag, &DlConfig::default());
            let n = dag.num_vertices();
            // Reconstruct mutable lists from the frozen labeling.
            let out: Vec<Vec<u32>> = (0..n as u32)
                .map(|v| dl.labeling().out_label(v).to_vec())
                .collect();
            let in_: Vec<Vec<u32>> = (0..n as u32)
                .map(|v| dl.labeling().in_label(v).to_vec())
                .collect();
            // Completeness in the paper's Cov(V) sense: labels must
            // cover reflexive pairs too (every vertex records itself),
            // so the intersection is checked without a u == v shortcut.
            let complete = |out: &[Vec<u32>], in_: &[Vec<u32>]| {
                (0..n as u32).all(|u| {
                    (0..n as u32).all(|v| {
                        sorted_intersect(&out[u as usize], &in_[v as usize])
                            == (u == v || traversal::reaches(dag.graph(), u, v))
                    })
                })
            };
            assert!(complete(&out, &in_), "labeling must start complete");
            for v in 0..n {
                for k in 0..out[v].len() {
                    let mut trimmed = out.clone();
                    trimmed[v].remove(k);
                    assert!(
                        !complete(&trimmed, &in_),
                        "removing hop {} from Lout({v}) kept completeness (seed {seed})",
                        out[v][k]
                    );
                }
                for k in 0..in_[v].len() {
                    let mut trimmed = in_.clone();
                    trimmed[v].remove(k);
                    assert!(
                        !complete(&out, &trimmed),
                        "removing hop {} from Lin({v}) kept completeness (seed {seed})",
                        in_[v][k]
                    );
                }
            }
        }
    }

    /// Every engine combination — seed merge, rank-bitmap sequential,
    /// rank-bitmap chunked at several widths — must emit byte-identical
    /// labels; the knobs trade construction time only.
    #[test]
    fn all_engines_emit_identical_labels() {
        let engines = [
            (Pruning::SortedMerge, Parallelism::Sequential),
            (Pruning::RankBitmap, Parallelism::Sequential),
            (Pruning::RankBitmap, Parallelism::Threads(2)),
            (Pruning::RankBitmap, Parallelism::Threads(4)),
        ];
        for seed in 0..4 {
            for dag in [
                gen::random_dag(80, 240, seed),
                gen::tree_plus_dag(80, 20, seed),
                gen::power_law_dag(80, 240, seed),
            ] {
                let built: Vec<DistributionLabeling> = engines
                    .iter()
                    .map(|&(pruning, parallelism)| {
                        DistributionLabeling::build(
                            &dag,
                            &DlConfig {
                                order: OrderKind::DegProduct,
                                parallelism,
                                pruning,
                            },
                        )
                    })
                    .collect();
                let reference = &built[0];
                assert_matches_bfs(&dag, reference);
                for (i, dl) in built.iter().enumerate().skip(1) {
                    assert_eq!(dl.order(), reference.order());
                    for v in 0..dag.num_vertices() as VertexId {
                        assert_eq!(
                            dl.labeling().out_label(v),
                            reference.labeling().out_label(v),
                            "engine {i}, L_out({v}), seed {seed}"
                        );
                        assert_eq!(
                            dl.labeling().in_label(v),
                            reference.labeling().in_label(v),
                            "engine {i}, L_in({v}), seed {seed}"
                        );
                    }
                }
            }
        }
    }

    /// The chunked engine must also hold on degenerate shapes where
    /// one side's BFS is empty or the whole graph is edge-free — all
    /// far smaller than one chunk.
    #[test]
    fn chunked_engine_handles_degenerate_graphs() {
        for threads in [1usize, 2, 8] {
            let force = DlConfig {
                parallelism: Parallelism::Threads(threads),
                ..DlConfig::default()
            };
            for dag in [
                Dag::from_edges(0, &[]).unwrap(),
                Dag::from_edges(1, &[]).unwrap(),
                Dag::from_edges(5, &[]).unwrap(),
                Dag::from_edges(4, &[(0, 1), (1, 2), (2, 3)]).unwrap(),
            ] {
                let par = DistributionLabeling::build(&dag, &force);
                let seq = DistributionLabeling::build(
                    &dag,
                    &DlConfig {
                        parallelism: Parallelism::Sequential,
                        ..DlConfig::default()
                    },
                );
                assert_eq!(
                    par.labeling().total_entries(),
                    seq.labeling().total_entries(),
                    "threads={threads}"
                );
                assert_matches_bfs(&dag, &par);
            }
        }
    }

    /// The satellite matrix: the chunked engine emits byte-identical
    /// labels at widths {1, 2, 3, 4, 8}, on graphs both larger and
    /// smaller than the chunk size (CHUNK = 256 frontier entries) and
    /// across graph families.
    #[test]
    fn chunked_engine_byte_identical_across_thread_matrix() {
        for (dag, what) in [
            (gen::random_dag(600, 2_400, 5), "random 600"),
            (gen::random_dag(40, 120, 6), "random 40 (sub-chunk)"),
            (gen::power_law_dag(300, 900, 7), "power-law 300"),
            (gen::tree_plus_dag(500, 60, 8), "tree 500"),
        ] {
            let reference = DistributionLabeling::build(
                &dag,
                &DlConfig {
                    parallelism: Parallelism::Sequential,
                    ..DlConfig::default()
                },
            );
            for threads in [1usize, 2, 3, 4, 8] {
                let chunked = DistributionLabeling::build(
                    &dag,
                    &DlConfig {
                        parallelism: Parallelism::Threads(threads),
                        ..DlConfig::default()
                    },
                );
                assert_eq!(chunked.order(), reference.order(), "{what}, t={threads}");
                for v in 0..dag.num_vertices() as VertexId {
                    assert_eq!(
                        chunked.labeling().out_label(v),
                        reference.labeling().out_label(v),
                        "{what}, t={threads}, L_out({v})"
                    );
                    assert_eq!(
                        chunked.labeling().in_label(v),
                        reference.labeling().in_label(v),
                        "{what}, t={threads}, L_in({v})"
                    );
                }
            }
        }
    }

    /// Tracing must be an observer: a traced build emits exactly the
    /// labels of the untraced one and records the expected spans and
    /// per-hop samples.
    #[test]
    fn traced_build_is_label_identical_and_records_spans() {
        use crate::metrics::BuildTrace;
        let dag = gen::random_dag(120, 360, 9);
        let plain = DistributionLabeling::build(&dag, &DlConfig::default());
        let trace = BuildTrace::new();
        let cfg = DlConfig {
            parallelism: Parallelism::Sequential,
            ..DlConfig::default()
        };
        let traced = DistributionLabeling::build_traced(&dag, &cfg, Some(&trace));
        assert_eq!(traced.order(), plain.order());
        for v in 0..dag.num_vertices() as VertexId {
            assert_eq!(
                traced.labeling().out_label(v),
                plain.labeling().out_label(v)
            );
            assert_eq!(traced.labeling().in_label(v), plain.labeling().in_label(v));
        }
        let names: Vec<String> = trace.spans().iter().map(|s| s.name.clone()).collect();
        assert_eq!(names, ["order", "distribute", "freeze"]);
        // The sequential engine records one hop sample per vertex.
        assert_eq!(trace.hop_snapshot().count(), dag.num_vertices() as u64);
        // The chunked engine records spans but no per-hop histogram.
        let trace_par = BuildTrace::new();
        let cfg_par = DlConfig {
            parallelism: Parallelism::Threads(2),
            ..DlConfig::default()
        };
        let chunked = DistributionLabeling::build_traced(&dag, &cfg_par, Some(&trace_par));
        assert_eq!(
            chunked.labeling().total_entries(),
            plain.labeling().total_entries()
        );
        assert_eq!(trace_par.spans().len(), 3);
        assert_eq!(trace_par.hop_snapshot().count(), 0);
    }

    #[test]
    fn rank_mapping_roundtrips() {
        let dag = gen::random_dag(30, 60, 11);
        let dl = DistributionLabeling::build(&dag, &DlConfig::default());
        for (r, &v) in dl.order().iter().enumerate() {
            assert_eq!(dl.vertex_at_rank(r as u32), v);
        }
    }
}
