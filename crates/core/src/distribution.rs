//! Distribution-Labeling (DL) — Algorithm 2 of the paper.
//!
//! The "simplest hierarchy": a total order of vertices. Hops are
//! processed from the highest rank down; hop `v_i` is *distributed*
//! into the labels of exactly the vertices whose coverage it extends
//! (Theorem 2):
//!
//! * a **reverse** BFS from `v_i` adds `v_i` to `L_out(u)` for every
//!   `u ∈ TC⁻¹(v_i) \ TC⁻¹(X)`, pruning (and not expanding) any `u`
//!   with `L_out(u) ∩ L_in(v_i) ≠ ∅` — such a `u` already reaches `v_i`
//!   through a higher-ranked hop;
//! * a **forward** BFS symmetrically adds `v_i` to `L_in(w)`.
//!
//! The resulting labeling is complete (Theorem 3) and **non-redundant**
//! (Theorem 4): removing any single hop entry breaks completeness. Both
//! properties are enforced by this crate's tests.
//!
//! ### Hop ids are ranks
//!
//! Labels store the *rank* of a hop, not its vertex id. Ranks are
//! assigned in processing order, so every label list is born sorted —
//! no per-list sort is ever needed, and the merge-intersection query
//! works directly on ranks. [`DistributionLabeling::vertex_at_rank`]
//! recovers the underlying vertex.
//!
//! Worst-case construction cost is `O(n·(n+m)·L)` like the paper's
//! Algorithm 2, but the pruning makes it far faster in practice — that
//! is the paper's central claim, reproduced in `EXPERIMENTS.md`.
//!
//! ### The hot-path build engine
//!
//! The textbook transcription of Algorithm 2 pays a full sorted-merge
//! `L_out(u) ∩ L_in(v_i)` on **every** BFS pop. Two observations make
//! the build much faster without changing a single emitted label:
//!
//! 1. **Rank-bitmap pruning** ([`Pruning::RankBitmap`], the default).
//!    Within one hop's BFS the right-hand side of every pruning test is
//!    the *same* list (`L_in(v_i)` for the reverse side, `L_out(v_i)`
//!    for the forward side). Snapshotting it once per hop into an
//!    epoch-stamped, rank-indexed membership array turns each test into
//!    `O(|L_out(u)|)` probes with O(1) lookups — and the epoch stamp
//!    makes the per-hop reset O(1) instead of O(n).
//! 2. **Two-thread hop distribution** ([`Parallelism`]). Within a hop,
//!    the reverse BFS writes only `L_out` and reads only the `L_in(v_i)`
//!    snapshot, while the forward BFS writes only `L_in` and reads only
//!    the `L_out(v_i)` snapshot — the two sides are data-disjoint. Each
//!    side runs on its own long-lived worker; the per-hop snapshot
//!    exchange over a channel is the only synchronization, so the
//!    parallel build is deterministic and emits labels *identical* to
//!    the sequential one (enforced by tests).
//!
//! [`Pruning::SortedMerge`] keeps the original per-pop merge as a
//! measurable reference — `paper perf` reports the speedup of the
//! bitmap/parallel engine against it.

use std::collections::VecDeque;
use std::sync::mpsc;

use hoplite_graph::traversal::VisitedSet;
use hoplite_graph::{Dag, VertexId};

use crate::label::{sorted_intersect, Labeling, LabelingBuilder};
use crate::oracle::ReachIndex;
use crate::order::OrderKind;

/// Below this vertex count [`Parallelism::Auto`] stays sequential: the
/// per-hop snapshot exchange costs more than two tiny BFSs save.
const PARALLEL_MIN_VERTICES: usize = 2_048;

/// How many OS threads [`DistributionLabeling::build`] may use.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub enum Parallelism {
    /// Two workers when the host has ≥ 2 cores and the DAG has at
    /// least [`PARALLEL_MIN_VERTICES`] vertices; sequential otherwise.
    #[default]
    Auto,
    /// Always build on the calling thread.
    Sequential,
    /// Always split the reverse/forward sides onto two workers (even on
    /// a single-core host, where it only adds scheduling overhead).
    TwoThreads,
}

/// Pruning-test implementation used by the build loop.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub enum Pruning {
    /// Per-hop snapshot of the fixed intersection side into an
    /// epoch-stamped rank-membership array; each pop then tests in
    /// `O(|L_out(u)|)` with O(1) lookups. The default.
    #[default]
    RankBitmap,
    /// The paper-literal per-pop sorted merge,
    /// `O(|L_out(u)| + |L_in(v_i)|)` per pop. Kept as the measurable
    /// reference baseline; always sequential ([`Parallelism`] is
    /// ignored).
    SortedMerge,
}

/// Configuration for [`DistributionLabeling::build`].
#[derive(Clone, Debug, Default)]
pub struct DlConfig {
    /// Vertex processing order (default: the paper's degree product).
    pub order: OrderKind,
    /// Thread policy for the hop-distribution loop.
    pub parallelism: Parallelism,
    /// Pruning-test engine (default: rank-bitmap).
    pub pruning: Pruning,
}

/// Epoch-stamped membership set over hop ranks `0..n`.
///
/// `load` snapshots one sorted rank list in `O(len)`; `intersects`
/// then answers "does this other list share an element?" in
/// `O(len(other))` with O(1) probes. Bumping the epoch invalidates the
/// whole set in O(1), so per-hop reuse never pays a clear.
#[derive(Clone, Debug)]
struct RankSet {
    stamp: Vec<u32>,
    epoch: u32,
}

impl RankSet {
    fn new(n: usize) -> Self {
        RankSet {
            stamp: vec![0; n],
            epoch: 0,
        }
    }

    /// Starts a fresh epoch containing exactly `ranks`.
    fn load(&mut self, ranks: &[u32]) {
        if self.epoch == u32::MAX {
            self.stamp.fill(0);
            self.epoch = 0;
        }
        self.epoch += 1;
        for &r in ranks {
            self.stamp[r as usize] = self.epoch;
        }
    }

    /// `true` iff any rank in `ranks` is in the current epoch's set.
    #[inline]
    fn intersects(&self, ranks: &[u32]) -> bool {
        ranks.iter().any(|&r| self.stamp[r as usize] == self.epoch)
    }
}

/// A complete, non-redundant reachability oracle built by
/// Distribution-Labeling.
#[derive(Clone, Debug)]
pub struct DistributionLabeling {
    labeling: Labeling,
    /// `order[r]` = vertex processed at rank `r`.
    order: Vec<VertexId>,
}

impl DistributionLabeling {
    /// Runs Algorithm 2 on `dag`.
    ///
    /// ```
    /// use hoplite_graph::Dag;
    /// use hoplite_core::{DistributionLabeling, DlConfig, ReachIndex};
    ///
    /// let dag = Dag::from_edges(4, &[(0, 1), (1, 2), (1, 3)])?;
    /// let dl = DistributionLabeling::build(&dag, &DlConfig::default());
    /// assert!(dl.query(0, 3));
    /// assert!(!dl.query(2, 3));
    /// # Ok::<(), hoplite_graph::GraphError>(())
    /// ```
    pub fn build(dag: &Dag, cfg: &DlConfig) -> Self {
        Self::build_ordered(dag, cfg.order.compute(dag), cfg)
    }

    /// Runs Algorithm 2 with an explicit processing order (`order[0]`
    /// is the highest-ranked hop). The order must be a permutation of
    /// the vertices; domain-specific orders can beat the degree
    /// heuristics when the caller knows the graph's hub structure.
    ///
    /// # Panics
    /// Panics if `order` is not a permutation of `0..n`.
    pub fn build_with_order(dag: &Dag, order: Vec<VertexId>) -> Self {
        Self::build_ordered(dag, order, &DlConfig::default())
    }

    /// [`Self::build_with_order`] with explicit engine knobs
    /// (`cfg.order` is ignored in favor of `order`).
    ///
    /// Every engine combination emits **identical** labels; the knobs
    /// trade construction time only.
    ///
    /// # Panics
    /// Panics if `order` is not a permutation of `0..n`.
    pub fn build_ordered(dag: &Dag, order: Vec<VertexId>, cfg: &DlConfig) -> Self {
        let n = dag.num_vertices();
        assert_eq!(order.len(), n, "order must cover every vertex");
        debug_assert!({
            let mut seen = vec![false; n];
            order.iter().all(|&v| {
                let s = &mut seen[v as usize];
                !std::mem::replace(s, true)
            })
        });
        let two_threads = match cfg.parallelism {
            Parallelism::Sequential => false,
            Parallelism::TwoThreads => true,
            Parallelism::Auto => {
                n >= PARALLEL_MIN_VERTICES
                    && std::thread::available_parallelism().is_ok_and(|p| p.get() >= 2)
            }
        };
        let b = match (cfg.pruning, two_threads) {
            (Pruning::SortedMerge, _) => build_merge(dag, &order),
            (Pruning::RankBitmap, false) => build_bitmap_sequential(dag, &order),
            (Pruning::RankBitmap, true) => build_bitmap_parallel(dag, &order),
        };
        DistributionLabeling {
            labeling: b.finish(),
            order,
        }
    }

    /// The underlying label store.
    pub fn labeling(&self) -> &Labeling {
        &self.labeling
    }

    /// Reassembles an oracle from persisted parts (see
    /// [`crate::persist`]).
    pub(crate) fn from_parts(labeling: Labeling, order: Vec<VertexId>) -> Self {
        DistributionLabeling { labeling, order }
    }

    /// The vertex that was assigned rank `r` (hop id `r` in the labels).
    pub fn vertex_at_rank(&self, r: u32) -> VertexId {
        self.order[r as usize]
    }

    /// The full rank → vertex order.
    pub fn order(&self) -> &[VertexId] {
        &self.order
    }
}

/// One side of one hop's distribution: a pruned BFS from `vi` that
/// appends rank `r` to `side[u]` for every non-pruned visited vertex,
/// expanding along `neighbors`. The prune test sees the visited
/// vertex's current label list — a hit means that vertex already
/// covers `v_i` through a higher-ranked hop, so neither it nor
/// anything beyond it needs this hop. The three engines differ only in
/// the closures they pass (merge vs bitmap probe; in- vs
/// out-neighbors); the closures monomorphize, so the shared skeleton
/// costs nothing on the hot path.
fn distribute<'g>(
    side: &mut [Vec<u32>],
    vi: VertexId,
    r: u32,
    neighbors: impl Fn(VertexId) -> &'g [VertexId],
    prune: impl Fn(&[u32]) -> bool,
    visited: &mut VisitedSet,
    queue: &mut VecDeque<VertexId>,
) {
    visited.clear();
    queue.clear();
    visited.insert(vi);
    queue.push_back(vi);
    while let Some(u) = queue.pop_front() {
        if prune(&side[u as usize]) {
            continue;
        }
        side[u as usize].push(r);
        for &w in neighbors(u) {
            if visited.insert(w) {
                queue.push_back(w);
            }
        }
    }
}

/// The paper-literal engine: per-pop sorted-merge pruning, one thread.
fn build_merge(dag: &Dag, order: &[VertexId]) -> LabelingBuilder {
    let g = dag.graph();
    let n = dag.num_vertices();
    let mut b = LabelingBuilder::new(n);
    let mut visited = VisitedSet::new(n);
    let mut queue: VecDeque<VertexId> = VecDeque::new();

    for (rank, &vi) in order.iter().enumerate() {
        let r = rank as u32;
        // Reverse BFS: distribute r into L_out of vi's ancestors.
        distribute(
            &mut b.out,
            vi,
            r,
            |u| g.in_neighbors(u),
            |l_out_u| sorted_intersect(l_out_u, &b.in_[vi as usize]),
            &mut visited,
            &mut queue,
        );
        // Forward BFS: distribute r into L_in of vi's descendants.
        distribute(
            &mut b.in_,
            vi,
            r,
            |w| g.out_neighbors(w),
            |l_in_w| sorted_intersect(l_in_w, &b.out[vi as usize]),
            &mut visited,
            &mut queue,
        );
    }
    b
}

/// Rank-bitmap engine, single thread: one `RankSet` reused across hops
/// and sides. Emits labels identical to [`build_merge`] — within a
/// hop the membership snapshot equals the list the merge would scan
/// (the reverse BFS never mutates `L_in(v_i)`, and the forward test
/// can never observe its own rank `r` in any `L_in(w)`, so snapshot
/// timing is irrelevant).
fn build_bitmap_sequential(dag: &Dag, order: &[VertexId]) -> LabelingBuilder {
    let g = dag.graph();
    let n = dag.num_vertices();
    let mut b = LabelingBuilder::new(n);
    let mut visited = VisitedSet::new(n);
    let mut queue: VecDeque<VertexId> = VecDeque::new();
    let mut members = RankSet::new(n);

    for (rank, &vi) in order.iter().enumerate() {
        let r = rank as u32;
        members.load(&b.in_[vi as usize]);
        distribute(
            &mut b.out,
            vi,
            r,
            |u| g.in_neighbors(u),
            |l_out_u| members.intersects(l_out_u),
            &mut visited,
            &mut queue,
        );
        members.load(&b.out[vi as usize]);
        distribute(
            &mut b.in_,
            vi,
            r,
            |w| g.out_neighbors(w),
            |l_in_w| members.intersects(l_in_w),
            &mut visited,
            &mut queue,
        );
    }
    b
}

/// Rank-bitmap engine, two threads: the reverse side owns all of
/// `L_out`, the forward side owns all of `L_in`, so within a hop the
/// sides touch disjoint data. At the top of every hop each worker
/// sends the other a snapshot of its `v_i` list over a channel; the
/// blocking `recv` doubles as the inter-hop barrier (hop `r` cannot
/// start on either side before both sides finished hop `r − 1`).
/// Deterministic: emits labels identical to the sequential engines.
fn build_bitmap_parallel(dag: &Dag, order: &[VertexId]) -> LabelingBuilder {
    let g = dag.graph();
    let n = dag.num_vertices();
    // rev → fwd carries the L_out(v_i) snapshot, fwd → rev the L_in(v_i)
    // snapshot. Sends are non-blocking, so "send, then recv" on both
    // sides cannot deadlock.
    let (out_snap_tx, out_snap_rx) = mpsc::channel::<Vec<u32>>();
    let (in_snap_tx, in_snap_rx) = mpsc::channel::<Vec<u32>>();

    let (out, in_) = std::thread::scope(|s| {
        let rev = s.spawn(move || {
            let mut out: Vec<Vec<u32>> = vec![Vec::new(); n];
            let mut visited = VisitedSet::new(n);
            let mut queue: VecDeque<VertexId> = VecDeque::new();
            let mut members = RankSet::new(n);
            for (rank, &vi) in order.iter().enumerate() {
                let r = rank as u32;
                out_snap_tx
                    .send(out[vi as usize].clone())
                    .expect("forward build worker hung up");
                let in_vi = in_snap_rx.recv().expect("forward build worker hung up");
                members.load(&in_vi);
                distribute(
                    &mut out,
                    vi,
                    r,
                    |u| g.in_neighbors(u),
                    |l_out_u| members.intersects(l_out_u),
                    &mut visited,
                    &mut queue,
                );
            }
            out
        });
        let fwd = s.spawn(move || {
            let mut in_: Vec<Vec<u32>> = vec![Vec::new(); n];
            let mut visited = VisitedSet::new(n);
            let mut queue: VecDeque<VertexId> = VecDeque::new();
            let mut members = RankSet::new(n);
            for (rank, &vi) in order.iter().enumerate() {
                let r = rank as u32;
                in_snap_tx
                    .send(in_[vi as usize].clone())
                    .expect("reverse build worker hung up");
                let out_vi = out_snap_rx.recv().expect("reverse build worker hung up");
                members.load(&out_vi);
                distribute(
                    &mut in_,
                    vi,
                    r,
                    |w| g.out_neighbors(w),
                    |l_in_w| members.intersects(l_in_w),
                    &mut visited,
                    &mut queue,
                );
            }
            in_
        });
        (
            rev.join().expect("reverse build worker panicked"),
            fwd.join().expect("forward build worker panicked"),
        )
    });
    LabelingBuilder { out, in_ }
}

impl ReachIndex for DistributionLabeling {
    fn name(&self) -> &'static str {
        "DL"
    }

    fn query(&self, u: VertexId, v: VertexId) -> bool {
        self.labeling.query(u, v)
    }

    fn size_in_integers(&self) -> u64 {
        // Labels + offsets + the rank→vertex table.
        self.labeling.size_in_integers() + self.order.len() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hoplite_graph::{gen, traversal};

    fn assert_matches_bfs(dag: &Dag, dl: &DistributionLabeling) {
        let n = dag.num_vertices() as VertexId;
        for u in 0..n {
            for v in 0..n {
                assert_eq!(
                    dl.query(u, v),
                    traversal::reaches(dag.graph(), u, v),
                    "mismatch at ({u},{v})"
                );
            }
        }
    }

    #[test]
    fn diamond_complete() {
        let dag = Dag::from_edges(5, &[(0, 1), (0, 2), (1, 3), (2, 3), (3, 4)]).unwrap();
        let dl = DistributionLabeling::build(&dag, &DlConfig::default());
        assert_matches_bfs(&dag, &dl);
    }

    #[test]
    fn every_vertex_labels_itself() {
        let dag = Dag::from_edges(4, &[(0, 1), (1, 2), (2, 3)]).unwrap();
        let dl = DistributionLabeling::build(&dag, &DlConfig::default());
        for v in 0..4u32 {
            assert!(dl.query(v, v));
        }
    }

    #[test]
    fn random_dags_complete_all_orders() {
        for seed in 0..8 {
            let dag = gen::random_dag(40, 120, seed);
            for order in [
                OrderKind::DegProduct,
                OrderKind::DegSum,
                OrderKind::Random(seed),
                OrderKind::Topological,
                OrderKind::CoverSize,
            ] {
                let dl = DistributionLabeling::build(
                    &dag,
                    &DlConfig {
                        order,
                        ..DlConfig::default()
                    },
                );
                assert_matches_bfs(&dag, &dl);
            }
        }
    }

    #[test]
    fn tree_and_powerlaw_complete() {
        for seed in 0..4 {
            let d1 = gen::tree_plus_dag(60, 15, seed);
            assert_matches_bfs(&d1, &DistributionLabeling::build(&d1, &DlConfig::default()));
            let d2 = gen::power_law_dag(60, 180, seed);
            assert_matches_bfs(&d2, &DistributionLabeling::build(&d2, &DlConfig::default()));
        }
    }

    #[test]
    fn empty_and_singleton() {
        let dag = Dag::from_edges(0, &[]).unwrap();
        let dl = DistributionLabeling::build(&dag, &DlConfig::default());
        assert_eq!(dl.labeling().total_entries(), 0);

        let dag = Dag::from_edges(1, &[]).unwrap();
        let dl = DistributionLabeling::build(&dag, &DlConfig::default());
        assert!(dl.query(0, 0));
        // Singleton labels itself on both sides.
        assert_eq!(dl.labeling().total_entries(), 2);
    }

    #[test]
    fn label_lists_are_strictly_sorted_ranks() {
        let dag = gen::random_dag(50, 150, 3);
        let dl = DistributionLabeling::build(&dag, &DlConfig::default());
        for v in 0..50u32 {
            for l in [dl.labeling().out_label(v), dl.labeling().in_label(v)] {
                assert!(l.windows(2).all(|w| w[0] < w[1]), "unsorted label at {v}");
            }
        }
    }

    /// Theorem 4: the labeling is non-redundant — removing any single
    /// hop entry breaks completeness.
    #[test]
    fn non_redundancy_on_small_dags() {
        for seed in 0..5 {
            let dag = gen::random_dag(14, 28, seed);
            let dl = DistributionLabeling::build(&dag, &DlConfig::default());
            let n = dag.num_vertices();
            // Reconstruct mutable lists from the frozen labeling.
            let out: Vec<Vec<u32>> = (0..n as u32)
                .map(|v| dl.labeling().out_label(v).to_vec())
                .collect();
            let in_: Vec<Vec<u32>> = (0..n as u32)
                .map(|v| dl.labeling().in_label(v).to_vec())
                .collect();
            // Completeness in the paper's Cov(V) sense: labels must
            // cover reflexive pairs too (every vertex records itself),
            // so the intersection is checked without a u == v shortcut.
            let complete = |out: &[Vec<u32>], in_: &[Vec<u32>]| {
                (0..n as u32).all(|u| {
                    (0..n as u32).all(|v| {
                        sorted_intersect(&out[u as usize], &in_[v as usize])
                            == (u == v || traversal::reaches(dag.graph(), u, v))
                    })
                })
            };
            assert!(complete(&out, &in_), "labeling must start complete");
            for v in 0..n {
                for k in 0..out[v].len() {
                    let mut trimmed = out.clone();
                    trimmed[v].remove(k);
                    assert!(
                        !complete(&trimmed, &in_),
                        "removing hop {} from Lout({v}) kept completeness (seed {seed})",
                        out[v][k]
                    );
                }
                for k in 0..in_[v].len() {
                    let mut trimmed = in_.clone();
                    trimmed[v].remove(k);
                    assert!(
                        !complete(&out, &trimmed),
                        "removing hop {} from Lin({v}) kept completeness (seed {seed})",
                        in_[v][k]
                    );
                }
            }
        }
    }

    /// Every engine combination — seed merge, rank-bitmap sequential,
    /// rank-bitmap two-thread — must emit byte-identical labels; the
    /// knobs trade construction time only.
    #[test]
    fn all_engines_emit_identical_labels() {
        let engines = [
            (Pruning::SortedMerge, Parallelism::Sequential),
            (Pruning::RankBitmap, Parallelism::Sequential),
            (Pruning::RankBitmap, Parallelism::TwoThreads),
        ];
        for seed in 0..4 {
            for dag in [
                gen::random_dag(80, 240, seed),
                gen::tree_plus_dag(80, 20, seed),
                gen::power_law_dag(80, 240, seed),
            ] {
                let built: Vec<DistributionLabeling> = engines
                    .iter()
                    .map(|&(pruning, parallelism)| {
                        DistributionLabeling::build(
                            &dag,
                            &DlConfig {
                                order: OrderKind::DegProduct,
                                parallelism,
                                pruning,
                            },
                        )
                    })
                    .collect();
                let reference = &built[0];
                assert_matches_bfs(&dag, reference);
                for (i, dl) in built.iter().enumerate().skip(1) {
                    assert_eq!(dl.order(), reference.order());
                    for v in 0..dag.num_vertices() as VertexId {
                        assert_eq!(
                            dl.labeling().out_label(v),
                            reference.labeling().out_label(v),
                            "engine {i}, L_out({v}), seed {seed}"
                        );
                        assert_eq!(
                            dl.labeling().in_label(v),
                            reference.labeling().in_label(v),
                            "engine {i}, L_in({v}), seed {seed}"
                        );
                    }
                }
            }
        }
    }

    /// The two-thread engine must also hold on degenerate shapes where
    /// one side's BFS is empty or the whole graph is edge-free.
    #[test]
    fn parallel_engine_handles_degenerate_graphs() {
        let force = DlConfig {
            parallelism: Parallelism::TwoThreads,
            ..DlConfig::default()
        };
        for dag in [
            Dag::from_edges(0, &[]).unwrap(),
            Dag::from_edges(1, &[]).unwrap(),
            Dag::from_edges(5, &[]).unwrap(),
            Dag::from_edges(4, &[(0, 1), (1, 2), (2, 3)]).unwrap(),
        ] {
            let par = DistributionLabeling::build(&dag, &force);
            let seq = DistributionLabeling::build(
                &dag,
                &DlConfig {
                    parallelism: Parallelism::Sequential,
                    ..DlConfig::default()
                },
            );
            assert_eq!(
                par.labeling().total_entries(),
                seq.labeling().total_entries()
            );
            assert_matches_bfs(&dag, &par);
        }
    }

    #[test]
    fn rank_mapping_roundtrips() {
        let dag = gen::random_dag(30, 60, 11);
        let dl = DistributionLabeling::build(&dag, &DlConfig::default());
        for (r, &v) in dl.order().iter().enumerate() {
            assert_eq!(dl.vertex_at_rank(r as u32), v);
        }
    }
}
