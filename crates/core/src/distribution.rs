//! Distribution-Labeling (DL) — Algorithm 2 of the paper.
//!
//! The "simplest hierarchy": a total order of vertices. Hops are
//! processed from the highest rank down; hop `v_i` is *distributed*
//! into the labels of exactly the vertices whose coverage it extends
//! (Theorem 2):
//!
//! * a **reverse** BFS from `v_i` adds `v_i` to `L_out(u)` for every
//!   `u ∈ TC⁻¹(v_i) \ TC⁻¹(X)`, pruning (and not expanding) any `u`
//!   with `L_out(u) ∩ L_in(v_i) ≠ ∅` — such a `u` already reaches `v_i`
//!   through a higher-ranked hop;
//! * a **forward** BFS symmetrically adds `v_i` to `L_in(w)`.
//!
//! The resulting labeling is complete (Theorem 3) and **non-redundant**
//! (Theorem 4): removing any single hop entry breaks completeness. Both
//! properties are enforced by this crate's tests.
//!
//! ### Hop ids are ranks
//!
//! Labels store the *rank* of a hop, not its vertex id. Ranks are
//! assigned in processing order, so every label list is born sorted —
//! no per-list sort is ever needed, and the merge-intersection query
//! works directly on ranks. [`DistributionLabeling::vertex_at_rank`]
//! recovers the underlying vertex.
//!
//! Worst-case construction cost is `O(n·(n+m)·L)` like the paper's
//! Algorithm 2, but the pruning makes it far faster in practice — that
//! is the paper's central claim, reproduced in `EXPERIMENTS.md`.

use std::collections::VecDeque;

use hoplite_graph::traversal::VisitedSet;
use hoplite_graph::{Dag, VertexId};

use crate::label::{sorted_intersect, Labeling, LabelingBuilder};
use crate::oracle::ReachIndex;
use crate::order::OrderKind;

/// Configuration for [`DistributionLabeling::build`].
#[derive(Clone, Debug, Default)]
pub struct DlConfig {
    /// Vertex processing order (default: the paper's degree product).
    pub order: OrderKind,
}

/// A complete, non-redundant reachability oracle built by
/// Distribution-Labeling.
#[derive(Clone, Debug)]
pub struct DistributionLabeling {
    labeling: Labeling,
    /// `order[r]` = vertex processed at rank `r`.
    order: Vec<VertexId>,
}

impl DistributionLabeling {
    /// Runs Algorithm 2 on `dag`.
    ///
    /// ```
    /// use hoplite_graph::Dag;
    /// use hoplite_core::{DistributionLabeling, DlConfig, ReachIndex};
    ///
    /// let dag = Dag::from_edges(4, &[(0, 1), (1, 2), (1, 3)])?;
    /// let dl = DistributionLabeling::build(&dag, &DlConfig::default());
    /// assert!(dl.query(0, 3));
    /// assert!(!dl.query(2, 3));
    /// # Ok::<(), hoplite_graph::GraphError>(())
    /// ```
    pub fn build(dag: &Dag, cfg: &DlConfig) -> Self {
        Self::build_with_order(dag, cfg.order.compute(dag))
    }

    /// Runs Algorithm 2 with an explicit processing order (`order[0]`
    /// is the highest-ranked hop). The order must be a permutation of
    /// the vertices; domain-specific orders can beat the degree
    /// heuristics when the caller knows the graph's hub structure.
    ///
    /// # Panics
    /// Panics if `order` is not a permutation of `0..n`.
    pub fn build_with_order(dag: &Dag, order: Vec<VertexId>) -> Self {
        let n = dag.num_vertices();
        assert_eq!(order.len(), n, "order must cover every vertex");
        debug_assert!({
            let mut seen = vec![false; n];
            order.iter().all(|&v| {
                let s = &mut seen[v as usize];
                !std::mem::replace(s, true)
            })
        });
        let g = dag.graph();
        let mut b = LabelingBuilder::new(n);
        let mut visited = VisitedSet::new(n);
        let mut queue: VecDeque<VertexId> = VecDeque::new();

        for (rank, &vi) in order.iter().enumerate() {
            let r = rank as u32;

            // Reverse BFS: distribute r into L_out of vi's ancestors.
            visited.clear();
            queue.clear();
            visited.insert(vi);
            queue.push_back(vi);
            while let Some(u) = queue.pop_front() {
                // Prune: u already reaches vi via a higher-ranked hop;
                // everything above u is covered through that hop too.
                if sorted_intersect(&b.out[u as usize], &b.in_[vi as usize]) {
                    continue;
                }
                b.out[u as usize].push(r);
                for &w in g.in_neighbors(u) {
                    if visited.insert(w) {
                        queue.push_back(w);
                    }
                }
            }

            // Forward BFS: distribute r into L_in of vi's descendants.
            visited.clear();
            queue.clear();
            visited.insert(vi);
            queue.push_back(vi);
            while let Some(w) = queue.pop_front() {
                if sorted_intersect(&b.in_[w as usize], &b.out[vi as usize]) {
                    continue;
                }
                b.in_[w as usize].push(r);
                for &x in g.out_neighbors(w) {
                    if visited.insert(x) {
                        queue.push_back(x);
                    }
                }
            }
        }

        DistributionLabeling {
            labeling: b.finish(),
            order,
        }
    }

    /// The underlying label store.
    pub fn labeling(&self) -> &Labeling {
        &self.labeling
    }

    /// Reassembles an oracle from persisted parts (see
    /// [`crate::persist`]).
    pub(crate) fn from_parts(labeling: Labeling, order: Vec<VertexId>) -> Self {
        DistributionLabeling { labeling, order }
    }

    /// The vertex that was assigned rank `r` (hop id `r` in the labels).
    pub fn vertex_at_rank(&self, r: u32) -> VertexId {
        self.order[r as usize]
    }

    /// The full rank → vertex order.
    pub fn order(&self) -> &[VertexId] {
        &self.order
    }
}

impl ReachIndex for DistributionLabeling {
    fn name(&self) -> &'static str {
        "DL"
    }

    fn query(&self, u: VertexId, v: VertexId) -> bool {
        self.labeling.query(u, v)
    }

    fn size_in_integers(&self) -> u64 {
        // Labels + offsets + the rank→vertex table.
        self.labeling.size_in_integers() + self.order.len() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hoplite_graph::{gen, traversal};

    fn assert_matches_bfs(dag: &Dag, dl: &DistributionLabeling) {
        let n = dag.num_vertices() as VertexId;
        for u in 0..n {
            for v in 0..n {
                assert_eq!(
                    dl.query(u, v),
                    traversal::reaches(dag.graph(), u, v),
                    "mismatch at ({u},{v})"
                );
            }
        }
    }

    #[test]
    fn diamond_complete() {
        let dag = Dag::from_edges(5, &[(0, 1), (0, 2), (1, 3), (2, 3), (3, 4)]).unwrap();
        let dl = DistributionLabeling::build(&dag, &DlConfig::default());
        assert_matches_bfs(&dag, &dl);
    }

    #[test]
    fn every_vertex_labels_itself() {
        let dag = Dag::from_edges(4, &[(0, 1), (1, 2), (2, 3)]).unwrap();
        let dl = DistributionLabeling::build(&dag, &DlConfig::default());
        for v in 0..4u32 {
            assert!(dl.query(v, v));
        }
    }

    #[test]
    fn random_dags_complete_all_orders() {
        for seed in 0..8 {
            let dag = gen::random_dag(40, 120, seed);
            for order in [
                OrderKind::DegProduct,
                OrderKind::DegSum,
                OrderKind::Random(seed),
                OrderKind::Topological,
                OrderKind::CoverSize,
            ] {
                let dl = DistributionLabeling::build(&dag, &DlConfig { order });
                assert_matches_bfs(&dag, &dl);
            }
        }
    }

    #[test]
    fn tree_and_powerlaw_complete() {
        for seed in 0..4 {
            let d1 = gen::tree_plus_dag(60, 15, seed);
            assert_matches_bfs(&d1, &DistributionLabeling::build(&d1, &DlConfig::default()));
            let d2 = gen::power_law_dag(60, 180, seed);
            assert_matches_bfs(&d2, &DistributionLabeling::build(&d2, &DlConfig::default()));
        }
    }

    #[test]
    fn empty_and_singleton() {
        let dag = Dag::from_edges(0, &[]).unwrap();
        let dl = DistributionLabeling::build(&dag, &DlConfig::default());
        assert_eq!(dl.labeling().total_entries(), 0);

        let dag = Dag::from_edges(1, &[]).unwrap();
        let dl = DistributionLabeling::build(&dag, &DlConfig::default());
        assert!(dl.query(0, 0));
        // Singleton labels itself on both sides.
        assert_eq!(dl.labeling().total_entries(), 2);
    }

    #[test]
    fn label_lists_are_strictly_sorted_ranks() {
        let dag = gen::random_dag(50, 150, 3);
        let dl = DistributionLabeling::build(&dag, &DlConfig::default());
        for v in 0..50u32 {
            for l in [dl.labeling().out_label(v), dl.labeling().in_label(v)] {
                assert!(l.windows(2).all(|w| w[0] < w[1]), "unsorted label at {v}");
            }
        }
    }

    /// Theorem 4: the labeling is non-redundant — removing any single
    /// hop entry breaks completeness.
    #[test]
    fn non_redundancy_on_small_dags() {
        for seed in 0..5 {
            let dag = gen::random_dag(14, 28, seed);
            let dl = DistributionLabeling::build(&dag, &DlConfig::default());
            let n = dag.num_vertices();
            // Reconstruct mutable lists from the frozen labeling.
            let out: Vec<Vec<u32>> = (0..n as u32)
                .map(|v| dl.labeling().out_label(v).to_vec())
                .collect();
            let in_: Vec<Vec<u32>> = (0..n as u32)
                .map(|v| dl.labeling().in_label(v).to_vec())
                .collect();
            // Completeness in the paper's Cov(V) sense: labels must
            // cover reflexive pairs too (every vertex records itself),
            // so the intersection is checked without a u == v shortcut.
            let complete = |out: &[Vec<u32>], in_: &[Vec<u32>]| {
                (0..n as u32).all(|u| {
                    (0..n as u32).all(|v| {
                        sorted_intersect(&out[u as usize], &in_[v as usize])
                            == (u == v || traversal::reaches(dag.graph(), u, v))
                    })
                })
            };
            assert!(complete(&out, &in_), "labeling must start complete");
            for v in 0..n {
                for k in 0..out[v].len() {
                    let mut trimmed = out.clone();
                    trimmed[v].remove(k);
                    assert!(
                        !complete(&trimmed, &in_),
                        "removing hop {} from Lout({v}) kept completeness (seed {seed})",
                        out[v][k]
                    );
                }
                for k in 0..in_[v].len() {
                    let mut trimmed = in_.clone();
                    trimmed[v].remove(k);
                    assert!(
                        !complete(&out, &trimmed),
                        "removing hop {} from Lin({v}) kept completeness (seed {seed})",
                        in_[v][k]
                    );
                }
            }
        }
    }

    #[test]
    fn rank_mapping_roundtrips() {
        let dag = gen::random_dag(30, 60, 11);
        let dl = DistributionLabeling::build(&dag, &DlConfig::default());
        for (r, &v) in dl.order().iter().enumerate() {
            assert_eq!(dl.vertex_at_rank(r as u32), v);
        }
    }
}
