//! Label-size statistics used by the experiment reports.

use crate::label::Labeling;

/// Summary statistics of a [`Labeling`]'s list lengths.
#[derive(Clone, Debug, PartialEq)]
pub struct LabelStats {
    /// Number of labeled vertices.
    pub num_vertices: usize,
    /// Total entries across all `L_out` lists.
    pub total_out: u64,
    /// Total entries across all `L_in` lists.
    pub total_in: u64,
    /// Longest single label list.
    pub max_label: usize,
    /// Mean of `|L_out(v)| + |L_in(v)|` per vertex.
    pub avg_per_vertex: f64,
    /// Bytes spent on the per-vertex rank-band signatures (16 per
    /// vertex: one `u64` per side).
    pub signature_bytes: u64,
    /// Process-private heap bytes of the label store (CSR offsets,
    /// hop arrays, signatures).
    pub heap_bytes: u64,
    /// Bytes addressed inside a shared mapped arena (a HOPL v3
    /// [`crate::Oracle::open`]); 0 for owned labelings.
    pub mapped_bytes: u64,
}

impl LabelStats {
    /// Computes the statistics for `l`.
    pub fn from_labeling(l: &Labeling) -> Self {
        let n = l.num_vertices();
        let mut total_out = 0u64;
        let mut total_in = 0u64;
        let mut max_label = 0usize;
        for v in 0..n as u32 {
            let o = l.out_label(v).len();
            let i = l.in_label(v).len();
            total_out += o as u64;
            total_in += i as u64;
            max_label = max_label.max(o).max(i);
        }
        let avg_per_vertex = if n == 0 {
            0.0
        } else {
            (total_out + total_in) as f64 / n as f64
        };
        let memory = l.memory();
        LabelStats {
            num_vertices: n,
            total_out,
            total_in,
            max_label,
            avg_per_vertex,
            signature_bytes: l.signature_bytes(),
            heap_bytes: memory.heap_bytes,
            mapped_bytes: memory.mapped_bytes,
        }
    }
}

impl std::fmt::Display for LabelStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "n={} |Lout|={} |Lin|={} max={} avg/vertex={:.2} sig-bytes={} heap-bytes={} mapped-bytes={}",
            self.num_vertices,
            self.total_out,
            self.total_in,
            self.max_label,
            self.avg_per_vertex,
            self.signature_bytes,
            self.heap_bytes,
            self.mapped_bytes
        )
    }
}

#[cfg(test)]
mod tests {
    use crate::label::LabelingBuilder;

    #[test]
    fn stats_count_correctly() {
        let mut b = LabelingBuilder::new(3);
        b.out[0] = vec![0, 1, 2];
        b.in_[1] = vec![0];
        b.in_[2] = vec![0, 1];
        let s = b.finish().stats();
        assert_eq!(s.total_out, 3);
        assert_eq!(s.total_in, 3);
        assert_eq!(s.max_label, 3);
        assert!((s.avg_per_vertex - 2.0).abs() < 1e-9);
        assert!(s.to_string().contains("max=3"));
    }

    #[test]
    fn empty_stats() {
        let s = LabelingBuilder::new(0).finish().stats();
        assert_eq!(s.avg_per_vertex, 0.0);
        assert_eq!(s.num_vertices, 0);
    }
}
