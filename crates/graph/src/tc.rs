//! Full transitive-closure materialization.
//!
//! One bitset row per vertex, filled by dynamic programming over the
//! reverse topological order: `row(v) = {v's successors} ∪ ⋃ row(w)`.
//! This is the "one extreme" of §2.1 of the paper — O(n²/8) bytes, so
//! it only scales to small graphs, but it provides:
//!
//! * ground truth for every index's correctness tests,
//! * the substrate the compression baselines (PWAH-8, Interval) encode,
//! * `|TC|` statistics used when sampling positive query workloads.

use crate::bitset::FixedBitset;
use crate::dag::Dag;
use crate::error::{GraphError, Result};
use crate::VertexId;

/// Materialized transitive closure of a [`Dag`].
///
/// By convention rows *exclude* the vertex itself; [`Self::reaches`]
/// special-cases `u == v` to `true` (every vertex reaches itself via the
/// empty path, matching the paper's query semantics).
#[derive(Clone, Debug)]
pub struct TransitiveClosure {
    rows: Vec<FixedBitset>,
}

impl TransitiveClosure {
    /// Materializes the closure of `dag`.
    ///
    /// Memory is Θ(n²/8); use [`Self::build_with_budget`] when the input
    /// size is not known to be small.
    ///
    /// ```
    /// use hoplite_graph::{Dag, TransitiveClosure};
    ///
    /// let dag = Dag::from_edges(3, &[(0, 1), (1, 2)])?;
    /// let tc = TransitiveClosure::build(&dag);
    /// assert!(tc.reaches(0, 2));
    /// assert_eq!(tc.num_pairs(), 3); // (0,1) (0,2) (1,2)
    /// # Ok::<(), hoplite_graph::GraphError>(())
    /// ```
    pub fn build(dag: &Dag) -> Self {
        Self::build_with_budget(dag, u64::MAX).expect("unlimited budget cannot be exceeded")
    }

    /// Materializes the closure unless it would exceed `budget_bytes`.
    pub fn build_with_budget(dag: &Dag, budget_bytes: u64) -> Result<Self> {
        let n = dag.num_vertices();
        let required = (n as u64) * (n as u64).div_ceil(64) * 8;
        if required > budget_bytes {
            return Err(GraphError::BudgetExceeded {
                what: "transitive closure",
                required_bytes: required,
                budget_bytes,
            });
        }
        let mut rows: Vec<FixedBitset> = (0..n).map(|_| FixedBitset::new(n)).collect();
        // Reverse topological order: successors' rows are complete when
        // a vertex is processed.
        for &v in dag.topo_order().iter().rev() {
            // Split borrows: move v's row out, merge successors, put back.
            let mut row = std::mem::replace(&mut rows[v as usize], FixedBitset::new(0));
            for &w in dag.out_neighbors(v) {
                row.set(w as usize);
                row.union_with(&rows[w as usize]);
            }
            rows[v as usize] = row;
        }
        Ok(TransitiveClosure { rows })
    }

    /// Number of vertices.
    pub fn num_vertices(&self) -> usize {
        self.rows.len()
    }

    /// `true` iff `u` reaches `v` (reflexive).
    #[inline]
    pub fn reaches(&self, u: VertexId, v: VertexId) -> bool {
        u == v || self.rows[u as usize].contains(v as usize)
    }

    /// The closure row of `u`: all vertices it reaches, excluding itself.
    pub fn row(&self, u: VertexId) -> &FixedBitset {
        &self.rows[u as usize]
    }

    /// Total number of reachable pairs `(u, v)` with `u != v`.
    /// This is the `|TC|` the 2-hop literature measures.
    pub fn num_pairs(&self) -> u64 {
        self.rows.iter().map(|r| r.count_ones() as u64).sum()
    }

    /// Heap bytes used by the closure rows.
    pub fn memory_bytes(&self) -> usize {
        self.rows.iter().map(|r| r.memory_bytes()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traversal;

    fn check_against_bfs(dag: &Dag) {
        let tc = TransitiveClosure::build(dag);
        let n = dag.num_vertices() as VertexId;
        for u in 0..n {
            for v in 0..n {
                assert_eq!(
                    tc.reaches(u, v),
                    traversal::reaches(dag.graph(), u, v),
                    "mismatch at ({u},{v})"
                );
            }
        }
    }

    #[test]
    fn diamond_matches_bfs() {
        let dag = Dag::from_edges(5, &[(0, 1), (0, 2), (1, 3), (2, 3), (3, 4)]).unwrap();
        check_against_bfs(&dag);
    }

    #[test]
    fn disconnected_matches_bfs() {
        let dag = Dag::from_edges(6, &[(0, 1), (2, 3)]).unwrap();
        check_against_bfs(&dag);
        let tc = TransitiveClosure::build(&dag);
        assert_eq!(tc.num_pairs(), 2);
    }

    #[test]
    fn path_pair_count() {
        // Path of 4 vertices: pairs = 3 + 2 + 1 = 6.
        let dag = Dag::from_edges(4, &[(0, 1), (1, 2), (2, 3)]).unwrap();
        let tc = TransitiveClosure::build(&dag);
        assert_eq!(tc.num_pairs(), 6);
    }

    #[test]
    fn reflexive_reachability() {
        let dag = Dag::from_edges(2, &[]).unwrap();
        let tc = TransitiveClosure::build(&dag);
        assert!(tc.reaches(0, 0));
        assert!(tc.reaches(1, 1));
        assert!(!tc.reaches(0, 1));
    }

    #[test]
    fn budget_is_enforced() {
        let dag = Dag::from_edges(1000, &[(0, 1)]).unwrap();
        match TransitiveClosure::build_with_budget(&dag, 1024) {
            Err(GraphError::BudgetExceeded { required_bytes, .. }) => {
                assert!(required_bytes > 1024)
            }
            other => panic!("expected budget error, got {other:?}"),
        }
        assert!(TransitiveClosure::build_with_budget(&dag, u64::MAX).is_ok());
    }

    #[test]
    fn empty_graph() {
        let dag = Dag::from_edges(0, &[]).unwrap();
        let tc = TransitiveClosure::build(&dag);
        assert_eq!(tc.num_pairs(), 0);
        assert_eq!(tc.num_vertices(), 0);
    }
}
