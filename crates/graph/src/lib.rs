//! # hoplite-graph
//!
//! Directed-graph substrate for the `hoplite` reachability stack.
//!
//! The reachability-oracle literature (and the VLDB 2013 paper this
//! workspace reproduces) works on *DAGs obtained by coalescing the
//! strongly connected components* of an arbitrary directed graph. This
//! crate provides everything below the indexing layer:
//!
//! * [`DiGraph`] — a compact CSR (compressed sparse row) directed graph
//!   with both forward and reverse adjacency, built via [`GraphBuilder`].
//! * [`scc`] — iterative Tarjan SCC decomposition and condensation of a
//!   digraph into its component [`Dag`].
//! * [`Dag`] — a validated acyclic graph with a cached topological order.
//! * [`traversal`] — allocation-reusing BFS/DFS machinery, bounded
//!   neighborhoods, and online reachability checks (the "no index"
//!   baseline of the paper).
//! * [`bitset`] / [`tc`] — packed bitsets and full transitive-closure
//!   materialization (ground truth for tests; substrate for the
//!   transitive-closure-compression baselines).
//! * [`gen`] — seeded synthetic DAG generators standing in for the
//!   paper's real-world datasets (see `DESIGN.md` §4 for the
//!   substitution rationale).
//! * [`io`] — edge-list and `.gra` (GRAIL/SCARAB) format readers and
//!   writers.
//!
//! ## Example
//!
//! ```
//! use hoplite_graph::{Dag, traversal};
//!
//! // A diamond: 0 -> {1, 2} -> 3
//! let dag = Dag::from_edges(4, &[(0, 1), (0, 2), (1, 3), (2, 3)]).unwrap();
//! assert!(traversal::reaches(dag.graph(), 0, 3));
//! assert!(!traversal::reaches(dag.graph(), 1, 2));
//! ```

pub mod bitset;
pub mod dag;
pub mod digraph;
pub mod error;
pub mod gen;
pub mod hash;
pub mod io;
pub mod reduction;
pub mod scc;
pub mod stats;
pub mod tc;
pub mod traversal;

pub use bitset::FixedBitset;
pub use dag::Dag;
pub use digraph::{DiGraph, GraphBuilder};
pub use error::{GraphError, Result};
pub use scc::Condensation;
pub use tc::TransitiveClosure;

/// Vertex identifier. Graphs in this workspace are bounded to
/// `u32::MAX - 1` vertices, which comfortably covers the paper's largest
/// dataset (25 M vertices) at half the memory of `usize` ids.
pub type VertexId = u32;

/// Sentinel for "no vertex" in dense per-vertex arrays.
pub const INVALID_VERTEX: VertexId = VertexId::MAX;
