//! Error type shared by the graph substrate.

use std::fmt;

/// Convenience alias used across `hoplite-graph`.
pub type Result<T> = std::result::Result<T, GraphError>;

/// Errors produced by graph construction, validation, and I/O.
#[derive(Debug)]
pub enum GraphError {
    /// The input graph contains a directed cycle; `vertex` lies on one.
    ///
    /// Returned by [`crate::Dag::new`] when handed a cyclic graph.
    /// Callers holding a cyclic graph should condense it first with
    /// [`crate::scc::condense`].
    Cycle {
        /// A vertex known to participate in a cycle.
        vertex: crate::VertexId,
    },
    /// An edge endpoint is outside `0..n`.
    VertexOutOfRange {
        /// The offending endpoint.
        vertex: u64,
        /// The number of vertices the graph was declared with.
        num_vertices: usize,
    },
    /// Underlying I/O failure while reading or writing a graph file.
    Io(std::io::Error),
    /// A graph file line could not be parsed.
    Parse {
        /// 1-based line number.
        line: usize,
        /// Human-readable description of the problem.
        msg: String,
    },
    /// A requested materialization would exceed the configured memory
    /// budget (e.g. full transitive closure of a huge graph).
    BudgetExceeded {
        /// What was being built.
        what: &'static str,
        /// Estimated bytes required.
        required_bytes: u64,
        /// Allowed bytes.
        budget_bytes: u64,
    },
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::Cycle { vertex } => {
                write!(f, "graph is not acyclic: vertex {vertex} lies on a cycle")
            }
            GraphError::VertexOutOfRange {
                vertex,
                num_vertices,
            } => write!(
                f,
                "vertex {vertex} out of range for graph with {num_vertices} vertices"
            ),
            GraphError::Io(e) => write!(f, "graph i/o error: {e}"),
            GraphError::Parse { line, msg } => {
                write!(f, "parse error at line {line}: {msg}")
            }
            GraphError::BudgetExceeded {
                what,
                required_bytes,
                budget_bytes,
            } => write!(
                f,
                "{what} needs ~{required_bytes} bytes, over the {budget_bytes}-byte budget"
            ),
        }
    }
}

impl std::error::Error for GraphError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            GraphError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for GraphError {
    fn from(e: std::io::Error) -> Self {
        GraphError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let c = GraphError::Cycle { vertex: 7 };
        assert!(c.to_string().contains("vertex 7"));
        let r = GraphError::VertexOutOfRange {
            vertex: 10,
            num_vertices: 5,
        };
        assert!(r.to_string().contains("10"));
        assert!(r.to_string().contains('5'));
        let p = GraphError::Parse {
            line: 3,
            msg: "bad token".into(),
        };
        assert!(p.to_string().contains("line 3"));
        let b = GraphError::BudgetExceeded {
            what: "transitive closure",
            required_bytes: 1024,
            budget_bytes: 512,
        };
        assert!(b.to_string().contains("1024"));
    }

    #[test]
    fn io_error_preserves_source() {
        let e: GraphError = std::io::Error::new(std::io::ErrorKind::NotFound, "nope").into();
        assert!(std::error::Error::source(&e).is_some());
    }
}
