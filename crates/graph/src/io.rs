//! Graph file I/O.
//!
//! Two formats are supported:
//!
//! * **Edge list** — one `u v` pair per line; `#`-prefixed comment lines
//!   and blank lines are skipped. The vertex count is
//!   `max endpoint + 1` unless a `# vertices: N` header is present.
//! * **`.gra`** — the adjacency format used by the GRAIL / SCARAB
//!   dataset releases the paper evaluates on: a line with the vertex
//!   count, then one line per vertex `v: s1 s2 … #`.

use std::io::{BufRead, Write};

use crate::digraph::{DiGraph, GraphBuilder};
use crate::error::{GraphError, Result};

/// Reads an edge list from `r`.
pub fn read_edge_list<R: BufRead>(r: R) -> Result<DiGraph> {
    let mut edges: Vec<(u32, u32)> = Vec::new();
    let mut declared_n: Option<usize> = None;
    let mut max_v: u64 = 0;
    for (idx, line) in r.lines().enumerate() {
        let line = line?;
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix('#') {
            // Optional "# vertices: N" header.
            let rest = rest.trim();
            if let Some(num) = rest.strip_prefix("vertices:") {
                declared_n = Some(num.trim().parse::<usize>().map_err(|e| GraphError::Parse {
                    line: idx + 1,
                    msg: format!("bad vertex count: {e}"),
                })?);
            }
            continue;
        }
        let mut it = line.split_whitespace();
        let parse = |tok: Option<&str>, idx: usize| -> Result<u32> {
            tok.ok_or_else(|| GraphError::Parse {
                line: idx + 1,
                msg: "expected two endpoints".into(),
            })?
            .parse::<u32>()
            .map_err(|e| GraphError::Parse {
                line: idx + 1,
                msg: format!("bad vertex id: {e}"),
            })
        };
        let u = parse(it.next(), idx)?;
        let v = parse(it.next(), idx)?;
        if it.next().is_some() {
            return Err(GraphError::Parse {
                line: idx + 1,
                msg: "trailing tokens after edge".into(),
            });
        }
        max_v = max_v.max(u as u64).max(v as u64);
        edges.push((u, v));
    }
    let n = declared_n.unwrap_or(if edges.is_empty() {
        0
    } else {
        max_v as usize + 1
    });
    let mut b = GraphBuilder::with_capacity(n, edges.len());
    for (u, v) in edges {
        b.add_edge(u, v)?;
    }
    Ok(b.build())
}

/// Writes `g` as an edge list with a `# vertices:` header (so isolated
/// trailing vertices survive a round-trip).
pub fn write_edge_list<W: Write>(g: &DiGraph, mut w: W) -> Result<()> {
    writeln!(w, "# vertices: {}", g.num_vertices())?;
    for (u, v) in g.edges() {
        writeln!(w, "{u} {v}")?;
    }
    Ok(())
}

/// Reads the `.gra` adjacency format (`n`, then `v: s1 s2 … #` lines).
/// A leading `graph_for_greach` banner line is tolerated.
pub fn read_gra<R: BufRead>(r: R) -> Result<DiGraph> {
    let mut lines = r.lines().enumerate();
    let mut n: Option<usize> = None;
    // Find the vertex-count line, skipping banner/comments.
    for (idx, line) in lines.by_ref() {
        let line = line?;
        let t = line.trim();
        if t.is_empty() || t.starts_with('#') || t.starts_with("graph_for_greach") {
            continue;
        }
        n = Some(t.parse::<usize>().map_err(|e| GraphError::Parse {
            line: idx + 1,
            msg: format!("bad vertex count: {e}"),
        })?);
        break;
    }
    let n = n.ok_or(GraphError::Parse {
        line: 0,
        msg: "missing vertex count".into(),
    })?;
    let mut b = GraphBuilder::new(n);
    for (idx, line) in lines {
        let line = line?;
        let t = line.trim();
        if t.is_empty() {
            continue;
        }
        let (head, rest) = t.split_once(':').ok_or_else(|| GraphError::Parse {
            line: idx + 1,
            msg: "expected `v: successors #`".into(),
        })?;
        let v = head.trim().parse::<u32>().map_err(|e| GraphError::Parse {
            line: idx + 1,
            msg: format!("bad vertex id: {e}"),
        })?;
        for tok in rest.split_whitespace() {
            if tok == "#" {
                break;
            }
            let w = tok.parse::<u32>().map_err(|e| GraphError::Parse {
                line: idx + 1,
                msg: format!("bad successor id: {e}"),
            })?;
            b.add_edge(v, w)?;
        }
    }
    Ok(b.build())
}

/// Writes `g` in `.gra` format.
pub fn write_gra<W: Write>(g: &DiGraph, mut w: W) -> Result<()> {
    writeln!(w, "graph_for_greach")?;
    writeln!(w, "{}", g.num_vertices())?;
    for v in 0..g.num_vertices() as u32 {
        write!(w, "{v}:")?;
        for s in g.out_neighbors(v) {
            write!(w, " {s}")?;
        }
        writeln!(w, " #")?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    fn diamond() -> DiGraph {
        DiGraph::from_edges(4, &[(0, 1), (0, 2), (1, 3), (2, 3)]).unwrap()
    }

    #[test]
    fn edge_list_roundtrip() {
        let g = diamond();
        let mut buf = Vec::new();
        write_edge_list(&g, &mut buf).unwrap();
        let g2 = read_edge_list(Cursor::new(buf)).unwrap();
        assert_eq!(g, g2);
    }

    #[test]
    fn edge_list_with_comments_and_blanks() {
        let text = "# a comment\n\n0 1\n  1 2  \n# another\n2 3\n";
        let g = read_edge_list(Cursor::new(text)).unwrap();
        assert_eq!(g.num_vertices(), 4);
        assert_eq!(g.num_edges(), 3);
    }

    #[test]
    fn edge_list_vertices_header_preserves_isolated() {
        let text = "# vertices: 10\n0 1\n";
        let g = read_edge_list(Cursor::new(text)).unwrap();
        assert_eq!(g.num_vertices(), 10);
    }

    #[test]
    fn edge_list_parse_errors() {
        assert!(matches!(
            read_edge_list(Cursor::new("0\n")),
            Err(GraphError::Parse { line: 1, .. })
        ));
        assert!(matches!(
            read_edge_list(Cursor::new("0 x\n")),
            Err(GraphError::Parse { line: 1, .. })
        ));
        assert!(matches!(
            read_edge_list(Cursor::new("0 1 2\n")),
            Err(GraphError::Parse { line: 1, .. })
        ));
    }

    #[test]
    fn gra_roundtrip() {
        let g = diamond();
        let mut buf = Vec::new();
        write_gra(&g, &mut buf).unwrap();
        let g2 = read_gra(Cursor::new(buf)).unwrap();
        assert_eq!(g, g2);
    }

    #[test]
    fn gra_parses_reference_shape() {
        let text = "graph_for_greach\n3\n0: 1 2 #\n1: #\n2: 1 #\n";
        let g = read_gra(Cursor::new(text)).unwrap();
        assert_eq!(g.num_vertices(), 3);
        assert_eq!(g.out_neighbors(0), &[1, 2]);
        assert_eq!(g.out_neighbors(2), &[1]);
    }

    #[test]
    fn gra_missing_count_is_error() {
        assert!(read_gra(Cursor::new("graph_for_greach\n")).is_err());
    }

    #[test]
    fn empty_edge_list_gives_empty_graph() {
        let g = read_edge_list(Cursor::new("")).unwrap();
        assert_eq!(g.num_vertices(), 0);
    }
}
