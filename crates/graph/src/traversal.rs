//! BFS/DFS machinery with reusable scratch buffers.
//!
//! Traversals dominate both the online-search baselines (GRAIL's pruned
//! DFS, plain BFS/DFS) and index construction (Distribution-Labeling's
//! pruned BFS, FastCover's ε-BFS). All entry points here either take a
//! [`TraversalScratch`] so repeated traversals never reallocate, or hide
//! one internally for one-shot convenience.

use std::collections::VecDeque;

use crate::digraph::DiGraph;
use crate::VertexId;

/// Traversal direction over a [`DiGraph`].
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum Direction {
    /// Follow edges `u -> v` from `u` to `v`.
    Forward,
    /// Follow edges backwards, from `v` to `u`.
    Reverse,
}

impl Direction {
    /// The neighbor list of `v` in this direction.
    #[inline]
    pub fn neighbors(self, g: &DiGraph, v: VertexId) -> &[VertexId] {
        match self {
            Direction::Forward => g.out_neighbors(v),
            Direction::Reverse => g.in_neighbors(v),
        }
    }

    /// The opposite direction.
    #[inline]
    pub fn flip(self) -> Direction {
        match self {
            Direction::Forward => Direction::Reverse,
            Direction::Reverse => Direction::Forward,
        }
    }
}

/// An O(1)-clear visited set using epoch stamping.
///
/// `clear` bumps an epoch counter instead of zeroing the array, so a
/// 100k-query workload over a million-vertex graph pays the `memset`
/// only once.
#[derive(Clone, Debug)]
pub struct VisitedSet {
    stamp: Vec<u32>,
    epoch: u32,
}

impl VisitedSet {
    /// A visited set for vertices `0..n`.
    pub fn new(n: usize) -> Self {
        VisitedSet {
            stamp: vec![0; n],
            epoch: 1,
        }
    }

    /// Number of vertices this set covers.
    pub fn len(&self) -> usize {
        self.stamp.len()
    }

    /// `true` if the set covers zero vertices.
    pub fn is_empty(&self) -> bool {
        self.stamp.is_empty()
    }

    /// Marks `v` visited. Returns `true` if `v` was *not* previously
    /// visited in the current epoch.
    #[inline]
    pub fn insert(&mut self, v: VertexId) -> bool {
        let s = &mut self.stamp[v as usize];
        if *s == self.epoch {
            false
        } else {
            *s = self.epoch;
            true
        }
    }

    /// `true` iff `v` was visited in the current epoch.
    #[inline]
    pub fn contains(&self, v: VertexId) -> bool {
        self.stamp[v as usize] == self.epoch
    }

    /// Forgets all visited marks in O(1) (amortized).
    pub fn clear(&mut self) {
        if self.epoch == u32::MAX {
            self.stamp.fill(0);
            self.epoch = 1;
        } else {
            self.epoch += 1;
        }
    }
}

/// Reusable queue + visited set for BFS-style traversals.
#[derive(Clone, Debug)]
pub struct TraversalScratch {
    /// Visited marks, cleared in O(1) between traversals.
    pub visited: VisitedSet,
    /// BFS frontier queue.
    pub queue: VecDeque<VertexId>,
}

impl TraversalScratch {
    /// Scratch space for a graph with `n` vertices.
    pub fn new(n: usize) -> Self {
        TraversalScratch {
            visited: VisitedSet::new(n),
            queue: VecDeque::new(),
        }
    }

    /// Resets for a new traversal.
    pub fn reset(&mut self) {
        self.visited.clear();
        self.queue.clear();
    }
}

/// One-shot reachability check: does `u` reach `v`? Plain forward BFS
/// with early exit. This is the paper's index-free baseline.
pub fn reaches(g: &DiGraph, u: VertexId, v: VertexId) -> bool {
    let mut scratch = TraversalScratch::new(g.num_vertices());
    reaches_with(g, u, v, &mut scratch)
}

/// Reachability check reusing caller-provided scratch space.
pub fn reaches_with(g: &DiGraph, u: VertexId, v: VertexId, scratch: &mut TraversalScratch) -> bool {
    if u == v {
        return true;
    }
    scratch.reset();
    scratch.visited.insert(u);
    scratch.queue.push_back(u);
    while let Some(x) = scratch.queue.pop_front() {
        for &w in g.out_neighbors(x) {
            if w == v {
                return true;
            }
            if scratch.visited.insert(w) {
                scratch.queue.push_back(w);
            }
        }
    }
    false
}

/// Bidirectional reachability check: expands the smaller frontier first,
/// meeting in the middle. Usually far fewer vertex visits than one-sided
/// BFS on graphs with both fan-out and fan-in.
pub fn bidirectional_reaches(
    g: &DiGraph,
    u: VertexId,
    v: VertexId,
    fwd: &mut TraversalScratch,
    bwd: &mut TraversalScratch,
) -> bool {
    if u == v {
        return true;
    }
    fwd.reset();
    bwd.reset();
    fwd.visited.insert(u);
    fwd.queue.push_back(u);
    bwd.visited.insert(v);
    bwd.queue.push_back(v);

    while !fwd.queue.is_empty() && !bwd.queue.is_empty() {
        // Expand the smaller frontier one full level.
        if fwd.queue.len() <= bwd.queue.len() {
            for _ in 0..fwd.queue.len() {
                let x = fwd.queue.pop_front().expect("nonempty frontier");
                for &w in g.out_neighbors(x) {
                    if bwd.visited.contains(w) {
                        return true;
                    }
                    if fwd.visited.insert(w) {
                        fwd.queue.push_back(w);
                    }
                }
            }
        } else {
            for _ in 0..bwd.queue.len() {
                let x = bwd.queue.pop_front().expect("nonempty frontier");
                for &w in g.in_neighbors(x) {
                    if fwd.visited.contains(w) {
                        return true;
                    }
                    if bwd.visited.insert(w) {
                        bwd.queue.push_back(w);
                    }
                }
            }
        }
    }
    false
}

/// Collects every vertex reachable from `v` (inclusive) in `dir`,
/// appending to `out` in BFS order.
pub fn collect_reachable(
    g: &DiGraph,
    v: VertexId,
    dir: Direction,
    scratch: &mut TraversalScratch,
    out: &mut Vec<VertexId>,
) {
    scratch.reset();
    scratch.visited.insert(v);
    scratch.queue.push_back(v);
    out.push(v);
    while let Some(x) = scratch.queue.pop_front() {
        for &w in dir.neighbors(g, x) {
            if scratch.visited.insert(w) {
                scratch.queue.push_back(w);
                out.push(w);
            }
        }
    }
}

/// Collects every vertex within `eps` steps of `v` in `dir`, inclusive
/// of `v` (distance 0), appending `(vertex, distance)` pairs in BFS
/// order. This is the ε-neighborhood `N^ε(v)` of the paper (Def. 1).
pub fn bounded_neighborhood(
    g: &DiGraph,
    v: VertexId,
    eps: u32,
    dir: Direction,
    scratch: &mut TraversalScratch,
    out: &mut Vec<(VertexId, u32)>,
) {
    scratch.reset();
    scratch.visited.insert(v);
    scratch.queue.push_back(v);
    out.push((v, 0));
    let mut depth = 0;
    while depth < eps && !scratch.queue.is_empty() {
        depth += 1;
        for _ in 0..scratch.queue.len() {
            let x = scratch.queue.pop_front().expect("nonempty frontier");
            for &w in dir.neighbors(g, x) {
                if scratch.visited.insert(w) {
                    scratch.queue.push_back(w);
                    out.push((w, depth));
                }
            }
        }
    }
}

/// Vertices in DFS preorder from `v` following `dir`. Iterative; used by
/// GRAIL-style labeling and tests.
pub fn dfs_preorder(g: &DiGraph, v: VertexId, dir: Direction) -> Vec<VertexId> {
    let mut visited = VisitedSet::new(g.num_vertices());
    let mut order = Vec::new();
    let mut stack = vec![v];
    visited.insert(v);
    while let Some(x) = stack.pop() {
        order.push(x);
        // Push in reverse so the smallest-id neighbor is visited first.
        for &w in dir.neighbors(g, x).iter().rev() {
            if visited.insert(w) {
                stack.push(w);
            }
        }
    }
    order
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::digraph::DiGraph;

    fn diamond() -> DiGraph {
        DiGraph::from_edges(5, &[(0, 1), (0, 2), (1, 3), (2, 3), (3, 4)]).unwrap()
    }

    #[test]
    fn reaches_basic() {
        let g = diamond();
        assert!(reaches(&g, 0, 4));
        assert!(reaches(&g, 1, 4));
        assert!(!reaches(&g, 1, 2));
        assert!(!reaches(&g, 4, 0));
        assert!(reaches(&g, 2, 2), "self-reachability");
    }

    #[test]
    fn bidirectional_matches_plain() {
        let g = diamond();
        let mut f = TraversalScratch::new(g.num_vertices());
        let mut b = TraversalScratch::new(g.num_vertices());
        for u in 0..5u32 {
            for v in 0..5u32 {
                assert_eq!(
                    reaches(&g, u, v),
                    bidirectional_reaches(&g, u, v, &mut f, &mut b),
                    "mismatch at ({u},{v})"
                );
            }
        }
    }

    #[test]
    fn visited_set_epochs() {
        let mut s = VisitedSet::new(3);
        assert!(s.insert(1));
        assert!(!s.insert(1));
        assert!(s.contains(1));
        s.clear();
        assert!(!s.contains(1));
        assert!(s.insert(1));
    }

    #[test]
    fn visited_set_epoch_wraparound() {
        let mut s = VisitedSet::new(2);
        s.epoch = u32::MAX - 1;
        s.insert(0);
        s.clear(); // epoch == MAX
        assert!(!s.contains(0));
        s.insert(1);
        s.clear(); // wraps: full reset path
        assert!(!s.contains(1));
        assert!(s.insert(1));
    }

    #[test]
    fn collect_reachable_directions() {
        let g = diamond();
        let mut scratch = TraversalScratch::new(g.num_vertices());
        let mut out = Vec::new();
        collect_reachable(&g, 1, Direction::Forward, &mut scratch, &mut out);
        out.sort_unstable();
        assert_eq!(out, vec![1, 3, 4]);
        out.clear();
        collect_reachable(&g, 3, Direction::Reverse, &mut scratch, &mut out);
        out.sort_unstable();
        assert_eq!(out, vec![0, 1, 2, 3]);
    }

    #[test]
    fn bounded_neighborhood_respects_eps() {
        let g = diamond();
        let mut scratch = TraversalScratch::new(g.num_vertices());
        let mut out = Vec::new();
        bounded_neighborhood(&g, 0, 1, Direction::Forward, &mut scratch, &mut out);
        let verts: Vec<_> = out.iter().map(|&(v, _)| v).collect();
        assert_eq!(verts, vec![0, 1, 2]);
        out.clear();
        bounded_neighborhood(&g, 0, 2, Direction::Forward, &mut scratch, &mut out);
        assert!(out.contains(&(3, 2)));
        assert!(!out.iter().any(|&(v, _)| v == 4));
        out.clear();
        bounded_neighborhood(&g, 0, 0, Direction::Forward, &mut scratch, &mut out);
        assert_eq!(out, vec![(0, 0)]);
    }

    #[test]
    fn bounded_neighborhood_reverse() {
        let g = diamond();
        let mut scratch = TraversalScratch::new(g.num_vertices());
        let mut out = Vec::new();
        bounded_neighborhood(&g, 4, 2, Direction::Reverse, &mut scratch, &mut out);
        let verts: Vec<_> = out.iter().map(|&(v, _)| v).collect();
        assert_eq!(verts, vec![4, 3, 1, 2]);
    }

    #[test]
    fn dfs_preorder_visits_all_reachable() {
        let g = diamond();
        let order = dfs_preorder(&g, 0, Direction::Forward);
        assert_eq!(order.len(), 5);
        assert_eq!(order[0], 0);
        let from1 = dfs_preorder(&g, 1, Direction::Forward);
        let mut sorted = from1.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, vec![1, 3, 4]);
    }

    #[test]
    fn direction_flip() {
        assert_eq!(Direction::Forward.flip(), Direction::Reverse);
        assert_eq!(Direction::Reverse.flip(), Direction::Forward);
    }
}
