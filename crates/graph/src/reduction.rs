//! Transitive reduction of DAGs.
//!
//! Definition 1 of the paper notes that backbone edge sets "can be
//! simplified as a transitive reduction (the minimal edge set
//! preserving the reachability)" but that computing it exactly "is as
//! expensive as transitive closure", which is why the backbone uses a
//! local ε-rule instead. This module provides both:
//!
//! * [`transitive_reduction`] — the exact reduction via materialized
//!   closure (Θ(n²/8) memory; small graphs only), used by tests and
//!   offline tooling;
//! * [`is_redundant_edge`] — the point query the exact algorithm is
//!   built from, usable with any closure the caller already holds.
//!
//! For a DAG (no cycles), the transitive reduction is unique.

use crate::dag::Dag;
use crate::digraph::{DiGraph, GraphBuilder};
use crate::error::Result;
use crate::tc::TransitiveClosure;
use crate::VertexId;

/// `true` iff the edge `(u, v)` is redundant: some other successor of
/// `u` already reaches `v`, so removing the edge preserves
/// reachability.
pub fn is_redundant_edge(g: &DiGraph, tc: &TransitiveClosure, u: VertexId, v: VertexId) -> bool {
    g.out_neighbors(u)
        .iter()
        .any(|&w| w != v && tc.reaches(w, v))
}

/// Computes the (unique) transitive reduction of `dag`.
///
/// Materializes the transitive closure, so the memory bill is
/// Θ(n²/8) bytes — pass a budget if the input size is unknown.
pub fn transitive_reduction(dag: &Dag) -> Dag {
    transitive_reduction_with_budget(dag, u64::MAX).expect("unlimited budget")
}

/// Budgeted variant of [`transitive_reduction`].
pub fn transitive_reduction_with_budget(dag: &Dag, budget_bytes: u64) -> Result<Dag> {
    let tc = TransitiveClosure::build_with_budget(dag, budget_bytes)?;
    let g = dag.graph();
    let mut b = GraphBuilder::with_capacity(dag.num_vertices(), dag.num_edges());
    for (u, v) in g.edges() {
        if !is_redundant_edge(g, &tc, u, v) {
            b.add_edge_unchecked(u, v);
        }
    }
    Ok(Dag::new(b.build()).expect("subgraph of a DAG is acyclic"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen;
    use crate::traversal;

    #[test]
    fn diamond_with_shortcut_loses_the_shortcut() {
        // 0 -> 1 -> 2 plus shortcut 0 -> 2: the shortcut is redundant.
        let dag = Dag::from_edges(3, &[(0, 1), (1, 2), (0, 2)]).unwrap();
        let red = transitive_reduction(&dag);
        assert_eq!(red.num_edges(), 2);
        assert!(!red.graph().has_edge(0, 2));
        assert!(red.graph().has_edge(0, 1) && red.graph().has_edge(1, 2));
    }

    #[test]
    fn reduction_preserves_reachability() {
        for seed in 0..5 {
            let dag = gen::random_dag(40, 160, seed);
            let red = transitive_reduction(&dag);
            assert!(red.num_edges() <= dag.num_edges());
            for u in 0..40u32 {
                for v in 0..40u32 {
                    assert_eq!(
                        traversal::reaches(dag.graph(), u, v),
                        traversal::reaches(red.graph(), u, v),
                        "reachability changed at ({u},{v})"
                    );
                }
            }
        }
    }

    #[test]
    fn reduction_is_minimal() {
        // Removing any kept edge must change reachability.
        let dag = gen::random_dag(20, 60, 7);
        let red = transitive_reduction(&dag);
        let edges: Vec<_> = red.graph().edges().collect();
        for &(u, v) in &edges {
            let remaining: Vec<_> = edges.iter().copied().filter(|&e| e != (u, v)).collect();
            let sub = Dag::from_edges(20, &remaining).unwrap();
            assert!(
                !traversal::reaches(sub.graph(), u, v),
                "edge ({u},{v}) was removable: reduction not minimal"
            );
        }
    }

    #[test]
    fn tree_is_its_own_reduction() {
        let dag = gen::tree_plus_dag(60, 0, 3);
        let red = transitive_reduction(&dag);
        assert_eq!(red.graph(), dag.graph());
    }

    #[test]
    fn reduction_is_idempotent() {
        let dag = gen::random_dag(30, 120, 9);
        let once = transitive_reduction(&dag);
        let twice = transitive_reduction(&once);
        assert_eq!(once.graph(), twice.graph());
    }

    #[test]
    fn budget_propagates() {
        let dag = gen::random_dag(2000, 6000, 1);
        assert!(transitive_reduction_with_budget(&dag, 64).is_err());
    }
}
