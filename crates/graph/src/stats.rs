//! Descriptive statistics of a graph / DAG.
//!
//! Used by the benchmark harness (Table 1 reporting), the examples,
//! and anyone deciding which index fits a dataset: reachability-index
//! behaviour is driven by exactly these quantities (sparsity, degree
//! skew, depth, closure density).

use crate::dag::Dag;
use crate::digraph::DiGraph;
use crate::gen::Rng;
use crate::traversal::{Direction, TraversalScratch};
use crate::VertexId;

/// Summary statistics for a directed graph.
///
/// ```
/// use hoplite_graph::{stats::GraphStats, DiGraph};
///
/// let g = DiGraph::from_edges(4, &[(0, 1), (0, 2), (1, 3), (2, 3)])?;
/// let s = GraphStats::compute(&g);
/// assert_eq!(s.num_roots, 1);
/// assert_eq!(s.max_out_degree, 2);
/// # Ok::<(), hoplite_graph::GraphError>(())
/// ```
#[derive(Clone, Debug, PartialEq)]
pub struct GraphStats {
    /// Number of vertices.
    pub num_vertices: usize,
    /// Number of edges.
    pub num_edges: usize,
    /// Mean out-degree (= mean in-degree).
    pub avg_degree: f64,
    /// Largest out-degree.
    pub max_out_degree: usize,
    /// Largest in-degree.
    pub max_in_degree: usize,
    /// Vertices with in-degree 0.
    pub num_roots: usize,
    /// Vertices with out-degree 0.
    pub num_leaves: usize,
}

impl GraphStats {
    /// Computes the statistics in one pass.
    pub fn compute(g: &DiGraph) -> Self {
        let n = g.num_vertices();
        let mut max_out = 0usize;
        let mut max_in = 0usize;
        let mut roots = 0usize;
        let mut leaves = 0usize;
        for v in 0..n as VertexId {
            let (o, i) = (g.out_degree(v), g.in_degree(v));
            max_out = max_out.max(o);
            max_in = max_in.max(i);
            roots += (i == 0) as usize;
            leaves += (o == 0) as usize;
        }
        GraphStats {
            num_vertices: n,
            num_edges: g.num_edges(),
            avg_degree: if n == 0 {
                0.0
            } else {
                g.num_edges() as f64 / n as f64
            },
            max_out_degree: max_out,
            max_in_degree: max_in,
            num_roots: roots,
            num_leaves: leaves,
        }
    }
}

impl std::fmt::Display for GraphStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "n={} m={} avg-deg={:.2} max-out={} max-in={} roots={} leaves={}",
            self.num_vertices,
            self.num_edges,
            self.avg_degree,
            self.max_out_degree,
            self.max_in_degree,
            self.num_roots,
            self.num_leaves
        )
    }
}

/// Estimates the transitive-closure density of a DAG — the expected
/// fraction of ordered pairs `(u, v)` with `u → v` — by running
/// forward BFS from `samples` uniformly chosen vertices. Closure
/// density is the single best predictor of whether compression-family
/// indexes (INT/PT/PW8/KR) will fit in memory.
pub fn estimate_closure_density(dag: &Dag, samples: usize, seed: u64) -> f64 {
    let n = dag.num_vertices();
    if n < 2 || samples == 0 {
        return 0.0;
    }
    let g = dag.graph();
    let mut rng = Rng::new(seed);
    let mut scratch = TraversalScratch::new(n);
    let mut out: Vec<VertexId> = Vec::new();
    let mut reachable_total: u64 = 0;
    for _ in 0..samples {
        let v = rng.gen_index(n) as VertexId;
        out.clear();
        crate::traversal::collect_reachable(g, v, Direction::Forward, &mut scratch, &mut out);
        reachable_total += (out.len() - 1) as u64; // exclude v itself
    }
    (reachable_total as f64 / samples as f64) / (n as f64 - 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen;
    use crate::tc::TransitiveClosure;

    #[test]
    fn stats_on_diamond() {
        let g = DiGraph::from_edges(4, &[(0, 1), (0, 2), (1, 3), (2, 3)]).unwrap();
        let s = GraphStats::compute(&g);
        assert_eq!(s.num_vertices, 4);
        assert_eq!(s.num_edges, 4);
        assert_eq!(s.max_out_degree, 2);
        assert_eq!(s.max_in_degree, 2);
        assert_eq!(s.num_roots, 1);
        assert_eq!(s.num_leaves, 1);
        assert!((s.avg_degree - 1.0).abs() < 1e-9);
        assert!(s.to_string().contains("n=4"));
    }

    #[test]
    fn stats_on_empty() {
        let s = GraphStats::compute(&DiGraph::empty(0));
        assert_eq!(s.num_vertices, 0);
        assert_eq!(s.avg_degree, 0.0);
    }

    #[test]
    fn density_estimate_tracks_exact_value() {
        let dag = gen::random_dag(120, 420, 5);
        let tc = TransitiveClosure::build(&dag);
        let exact = tc.num_pairs() as f64 / (120.0 * 119.0);
        // Sampling every vertex once makes the estimate exact up to
        // duplicate draws.
        let est = estimate_closure_density(&dag, 2000, 9);
        assert!(
            (est - exact).abs() < 0.05,
            "estimate {est:.4} vs exact {exact:.4}"
        );
    }

    #[test]
    fn density_degenerate_inputs() {
        let dag = Dag::from_edges(1, &[]).unwrap();
        assert_eq!(estimate_closure_density(&dag, 10, 1), 0.0);
        let dag = Dag::from_edges(5, &[]).unwrap();
        assert_eq!(estimate_closure_density(&dag, 10, 1), 0.0);
        let dag = gen::grid_dag(3, 3);
        assert_eq!(estimate_closure_density(&dag, 0, 1), 0.0);
    }

    #[test]
    fn path_graph_density_is_half() {
        // On a path, Σ reachable = n(n-1)/2 → density 0.5.
        let n = 200;
        let edges: Vec<_> = (0..n as u32 - 1).map(|i| (i, i + 1)).collect();
        let dag = Dag::from_edges(n, &edges).unwrap();
        let est = estimate_closure_density(&dag, 3000, 2);
        assert!((est - 0.5).abs() < 0.03, "estimate {est}");
    }
}
