//! Validated directed acyclic graphs with a cached topological order.

use crate::digraph::DiGraph;
use crate::error::{GraphError, Result};
use crate::scc;
use crate::VertexId;

/// A [`DiGraph`] proven acyclic at construction, carrying a topological
/// order and each vertex's position in it.
///
/// All reachability indexes in the workspace take a `&Dag`; arbitrary
/// digraphs are first condensed with [`Dag::condense`].
#[derive(Clone, Debug)]
pub struct Dag {
    g: DiGraph,
    topo: Vec<VertexId>,
    pos: Vec<u32>,
}

impl Dag {
    /// Validates that `g` is acyclic (Kahn's algorithm) and caches its
    /// topological order.
    ///
    /// Returns [`GraphError::Cycle`] naming a vertex on a cycle if not.
    pub fn new(g: DiGraph) -> Result<Self> {
        let n = g.num_vertices();
        let mut indeg: Vec<u32> = (0..n as VertexId).map(|v| g.in_degree(v) as u32).collect();
        let mut topo = Vec::with_capacity(n);
        let mut queue: std::collections::VecDeque<VertexId> = (0..n as VertexId)
            .filter(|&v| indeg[v as usize] == 0)
            .collect();
        while let Some(v) = queue.pop_front() {
            topo.push(v);
            for &w in g.out_neighbors(v) {
                indeg[w as usize] -= 1;
                if indeg[w as usize] == 0 {
                    queue.push_back(w);
                }
            }
        }
        if topo.len() != n {
            let vertex = indeg
                .iter()
                .position(|&d| d > 0)
                .expect("cycle implies a vertex with residual in-degree")
                as VertexId;
            return Err(GraphError::Cycle { vertex });
        }
        let mut pos = vec![0u32; n];
        for (i, &v) in topo.iter().enumerate() {
            pos[v as usize] = i as u32;
        }
        Ok(Dag { g, topo, pos })
    }

    /// Builds and validates a DAG directly from an edge list.
    pub fn from_edges(n: usize, edges: &[(VertexId, VertexId)]) -> Result<Self> {
        Dag::new(DiGraph::from_edges(n, edges)?)
    }

    /// Condenses an arbitrary digraph into its component DAG.
    ///
    /// Convenience re-export of [`scc::condense`].
    pub fn condense(g: &DiGraph) -> scc::Condensation {
        scc::condense(g)
    }

    /// The underlying graph.
    #[inline]
    pub fn graph(&self) -> &DiGraph {
        &self.g
    }

    /// Vertices in topological order (sources first).
    #[inline]
    pub fn topo_order(&self) -> &[VertexId] {
        &self.topo
    }

    /// Position of `v` in [`Self::topo_order`]. If `u` reaches `v` then
    /// `topo_pos(u) < topo_pos(v)`; the converse does not hold.
    #[inline]
    pub fn topo_pos(&self, v: VertexId) -> u32 {
        self.pos[v as usize]
    }

    /// Number of vertices (forwarded).
    #[inline]
    pub fn num_vertices(&self) -> usize {
        self.g.num_vertices()
    }

    /// Number of edges (forwarded).
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.g.num_edges()
    }

    /// Successors of `v` (forwarded).
    #[inline]
    pub fn out_neighbors(&self, v: VertexId) -> &[VertexId] {
        self.g.out_neighbors(v)
    }

    /// Predecessors of `v` (forwarded).
    #[inline]
    pub fn in_neighbors(&self, v: VertexId) -> &[VertexId] {
        self.g.in_neighbors(v)
    }

    /// Out-degree of `v` (forwarded).
    #[inline]
    pub fn out_degree(&self, v: VertexId) -> usize {
        self.g.out_degree(v)
    }

    /// In-degree of `v` (forwarded).
    #[inline]
    pub fn in_degree(&self, v: VertexId) -> usize {
        self.g.in_degree(v)
    }

    /// Longest-path depth of every vertex: roots are 0, otherwise
    /// `1 + max(depth of predecessors)`. Useful for layered statistics
    /// and the layered dataset generators.
    pub fn longest_path_levels(&self) -> Vec<u32> {
        let mut level = vec![0u32; self.num_vertices()];
        for &v in &self.topo {
            for &w in self.g.out_neighbors(v) {
                level[w as usize] = level[w as usize].max(level[v as usize] + 1);
            }
        }
        level
    }

    /// Height of the DAG: number of vertices on the longest path
    /// (0 for an empty graph).
    pub fn height(&self) -> u32 {
        self.longest_path_levels()
            .iter()
            .max()
            .map_or(0, |&h| h + 1)
    }

    /// Consumes the DAG, returning the underlying graph.
    pub fn into_graph(self) -> DiGraph {
        self.g
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn valid_dag_gets_topo_order() {
        let dag = Dag::from_edges(4, &[(0, 1), (0, 2), (1, 3), (2, 3)]).unwrap();
        let pos = |v| dag.topo_pos(v);
        for (u, v) in dag.graph().edges() {
            assert!(pos(u) < pos(v));
        }
        assert_eq!(dag.topo_order().len(), 4);
    }

    #[test]
    fn cycle_is_rejected() {
        let g = DiGraph::from_edges(3, &[(0, 1), (1, 2), (2, 0)]).unwrap();
        match Dag::new(g) {
            Err(GraphError::Cycle { vertex }) => assert!(vertex < 3),
            other => panic!("expected cycle error, got {other:?}"),
        }
    }

    #[test]
    fn two_vertex_cycle_rejected() {
        let g = DiGraph::from_edges(2, &[(0, 1), (1, 0)]).unwrap();
        assert!(Dag::new(g).is_err());
    }

    #[test]
    fn empty_and_edgeless() {
        let dag = Dag::from_edges(0, &[]).unwrap();
        assert_eq!(dag.num_vertices(), 0);
        assert_eq!(dag.height(), 0);
        let dag = Dag::from_edges(3, &[]).unwrap();
        assert_eq!(dag.topo_order().len(), 3);
        assert_eq!(dag.height(), 1);
    }

    #[test]
    fn levels_and_height() {
        // 0 -> 1 -> 3, 0 -> 2 -> 3, 3 -> 4
        let dag = Dag::from_edges(5, &[(0, 1), (0, 2), (1, 3), (2, 3), (3, 4)]).unwrap();
        let lv = dag.longest_path_levels();
        assert_eq!(lv[0], 0);
        assert_eq!(lv[1], 1);
        assert_eq!(lv[2], 1);
        assert_eq!(lv[3], 2);
        assert_eq!(lv[4], 3);
        assert_eq!(dag.height(), 4);
    }

    #[test]
    fn diamond_levels_take_longest_path() {
        // 0 -> 3 directly and 0 -> 1 -> 2 -> 3: depth(3) = 3.
        let dag = Dag::from_edges(4, &[(0, 3), (0, 1), (1, 2), (2, 3)]).unwrap();
        assert_eq!(dag.longest_path_levels()[3], 3);
    }
}
