//! Packed fixed-size bitset over `u64` words.
//!
//! Used for transitive-closure rows ([`crate::tc`]), the PWAH-8 baseline
//! (which compresses these words), and visited sets where epoch stamping
//! is not applicable.

/// A fixed-capacity bitset packed into 64-bit words.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FixedBitset {
    words: Vec<u64>,
    nbits: usize,
}

impl FixedBitset {
    /// A bitset able to hold bits `0..nbits`, all initially zero.
    pub fn new(nbits: usize) -> Self {
        FixedBitset {
            words: vec![0u64; nbits.div_ceil(64)],
            nbits,
        }
    }

    /// Capacity in bits.
    #[inline]
    pub fn len(&self) -> usize {
        self.nbits
    }

    /// `true` if the capacity is zero bits.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.nbits == 0
    }

    /// Sets bit `i`.
    #[inline]
    pub fn set(&mut self, i: usize) {
        debug_assert!(i < self.nbits);
        self.words[i / 64] |= 1u64 << (i % 64);
    }

    /// Clears bit `i`.
    #[inline]
    pub fn unset(&mut self, i: usize) {
        debug_assert!(i < self.nbits);
        self.words[i / 64] &= !(1u64 << (i % 64));
    }

    /// Reads bit `i`.
    #[inline]
    pub fn contains(&self, i: usize) -> bool {
        debug_assert!(i < self.nbits);
        self.words[i / 64] >> (i % 64) & 1 == 1
    }

    /// Sets every bit that is set in `other` (`self |= other`).
    ///
    /// # Panics
    /// Panics if capacities differ.
    pub fn union_with(&mut self, other: &FixedBitset) {
        assert_eq!(self.nbits, other.nbits, "bitset capacity mismatch");
        for (w, o) in self.words.iter_mut().zip(&other.words) {
            *w |= o;
        }
    }

    /// `true` iff `self` and `other` share at least one set bit.
    pub fn intersects(&self, other: &FixedBitset) -> bool {
        self.words.iter().zip(&other.words).any(|(a, b)| a & b != 0)
    }

    /// Number of set bits.
    pub fn count_ones(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Clears all bits, keeping capacity.
    pub fn clear(&mut self) {
        self.words.fill(0);
    }

    /// Iterator over the indices of set bits, ascending.
    pub fn ones(&self) -> Ones<'_> {
        Ones {
            words: &self.words,
            word_idx: 0,
            current: self.words.first().copied().unwrap_or(0),
        }
    }

    /// The underlying words (low bit of word 0 is bit 0). Trailing bits
    /// beyond `len()` are zero.
    pub fn as_words(&self) -> &[u64] {
        &self.words
    }

    /// Builds a bitset from raw words; bits past `nbits` must be zero.
    pub fn from_words(words: Vec<u64>, nbits: usize) -> Self {
        assert_eq!(words.len(), nbits.div_ceil(64));
        debug_assert!(
            nbits % 64 == 0 || words.is_empty() || {
                let last = words[words.len() - 1];
                last >> (nbits % 64) == 0
            }
        );
        FixedBitset { words, nbits }
    }

    /// Heap bytes used.
    pub fn memory_bytes(&self) -> usize {
        self.words.len() * 8
    }
}

/// Iterator over set-bit indices of a [`FixedBitset`].
pub struct Ones<'a> {
    words: &'a [u64],
    word_idx: usize,
    current: u64,
}

impl Iterator for Ones<'_> {
    type Item = usize;

    fn next(&mut self) -> Option<usize> {
        while self.current == 0 {
            self.word_idx += 1;
            if self.word_idx >= self.words.len() {
                return None;
            }
            self.current = self.words[self.word_idx];
        }
        let bit = self.current.trailing_zeros() as usize;
        self.current &= self.current - 1; // clear lowest set bit
        Some(self.word_idx * 64 + bit)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_get_unset() {
        let mut b = FixedBitset::new(130);
        assert!(!b.contains(0));
        b.set(0);
        b.set(63);
        b.set(64);
        b.set(129);
        assert!(b.contains(0) && b.contains(63) && b.contains(64) && b.contains(129));
        b.unset(64);
        assert!(!b.contains(64));
        assert_eq!(b.count_ones(), 3);
    }

    #[test]
    fn ones_iterates_ascending() {
        let mut b = FixedBitset::new(200);
        for &i in &[3usize, 64, 65, 127, 128, 199] {
            b.set(i);
        }
        assert_eq!(b.ones().collect::<Vec<_>>(), vec![3, 64, 65, 127, 128, 199]);
    }

    #[test]
    fn union_and_intersects() {
        let mut a = FixedBitset::new(100);
        let mut b = FixedBitset::new(100);
        a.set(1);
        b.set(99);
        assert!(!a.intersects(&b));
        a.union_with(&b);
        assert!(a.contains(99));
        assert!(a.intersects(&b));
    }

    #[test]
    fn clear_resets() {
        let mut a = FixedBitset::new(70);
        a.set(69);
        a.clear();
        assert_eq!(a.count_ones(), 0);
        assert_eq!(a.len(), 70);
    }

    #[test]
    fn empty_bitset() {
        let b = FixedBitset::new(0);
        assert!(b.is_empty());
        assert_eq!(b.ones().count(), 0);
        assert_eq!(b.count_ones(), 0);
    }

    #[test]
    fn words_roundtrip() {
        let mut a = FixedBitset::new(128);
        a.set(5);
        a.set(100);
        let b = FixedBitset::from_words(a.as_words().to_vec(), 128);
        assert_eq!(a, b);
    }
}
