//! Seeded synthetic DAG generators.
//!
//! These stand in for the paper's real-world datasets (Table 1), one
//! generator family per dataset family — see `DESIGN.md` §4:
//!
//! * [`tree_plus_dag`] — metabolic / ontology graphs (agrocyc, kegg,
//!   ecoo, go_uniprot, uniprotenc…): |E| ≈ |V|, shallow and tree-like.
//! * [`power_law_dag`] — citation and web/social graphs (citeseer,
//!   cit-Patents, arxiv, web, wiki, lj): heavy-tailed in-degrees.
//! * [`random_dag`] — uniform Erdős–Rényi DAGs (p2p-like).
//! * [`layered_dag`] — XML-ish layered documents (xmark).
//! * [`grid_dag`] — deterministic worst-case-ish lattice used in tests.
//!
//! All generators are deterministic in `(parameters, seed)` and return
//! validated [`Dag`]s. Edges are always generated from a smaller to a
//! larger position in a hidden random permutation, so acyclicity holds
//! by construction (and is re-checked by `Dag::new`).

mod rng;

pub use rng::Rng;

use crate::dag::Dag;
use crate::digraph::GraphBuilder;
use crate::hash::FxHashSet;
use crate::VertexId;

/// Maximum number of edges an `n`-vertex DAG can have.
fn max_edges(n: usize) -> u64 {
    let n = n as u64;
    n * n.saturating_sub(1) / 2
}

/// Uniform random DAG with `n` vertices and (up to) `m` edges.
///
/// Vertex ids are randomly permuted so that id order carries no
/// topological information (several baselines are sensitive to that).
/// `m` is clamped to the maximum possible `n·(n−1)/2`.
///
/// ```
/// use hoplite_graph::gen;
/// let dag = gen::random_dag(100, 250, 42);
/// assert_eq!(dag.num_vertices(), 100);
/// assert_eq!(dag.num_edges(), 250);
/// // Same seed, same graph:
/// assert_eq!(dag.graph(), gen::random_dag(100, 250, 42).graph());
/// ```
pub fn random_dag(n: usize, m: usize, seed: u64) -> Dag {
    let mut rng = Rng::new(seed);
    let m = (m as u64).min(max_edges(n)) as usize;
    let mut perm: Vec<VertexId> = (0..n as VertexId).collect();
    rng.shuffle(&mut perm);

    let mut chosen: FxHashSet<(u32, u32)> = FxHashSet::default();
    chosen.reserve(m);
    let mut b = GraphBuilder::with_capacity(n, m);
    // Dense fallback: when m is close to the maximum, rejection sampling
    // thrashes; enumerate all pairs and sample instead.
    if n >= 2 && (m as u64) * 3 > max_edges(n) * 2 {
        let mut pairs: Vec<(u32, u32)> = Vec::with_capacity(max_edges(n) as usize);
        for i in 0..n as u32 {
            for j in (i + 1)..n as u32 {
                pairs.push((i, j));
            }
        }
        rng.shuffle(&mut pairs);
        for &(i, j) in pairs.iter().take(m) {
            b.add_edge_unchecked(perm[i as usize], perm[j as usize]);
        }
    } else if n >= 2 {
        while chosen.len() < m {
            let i = rng.gen_index(n) as u32;
            let j = rng.gen_index(n) as u32;
            if i == j {
                continue;
            }
            let (i, j) = if i < j { (i, j) } else { (j, i) };
            if chosen.insert((i, j)) {
                b.add_edge_unchecked(perm[i as usize], perm[j as usize]);
            }
        }
    }
    Dag::new(b.build()).expect("generator emits forward edges only")
}

/// Citation-style DAG with preferential attachment (heavy-tailed
/// in-degree on "old" vertices, like heavily cited papers).
///
/// Vertices arrive one at a time; each vertex draws ~`m/n` out-edges to
/// earlier vertices, choosing an endpoint from the attachment pool with
/// probability `1 − uniform_mix` (rich get richer) and uniformly
/// otherwise. `uniform_mix = 0.2` matches observed citation-graph tails
/// reasonably; the exact constant only shapes the skew.
pub fn power_law_dag(n: usize, m: usize, seed: u64) -> Dag {
    let mut rng = Rng::new(seed);
    let m = (m as u64).min(max_edges(n)) as usize;
    let mut perm: Vec<VertexId> = (0..n as VertexId).collect();
    rng.shuffle(&mut perm);

    const UNIFORM_MIX: f64 = 0.2;
    let mut b = GraphBuilder::with_capacity(n, m);
    if n >= 2 && m > 0 {
        // pool holds one entry per edge endpoint + one per vertex, so
        // sampling from it is degree-proportional.
        let mut pool: Vec<u32> = Vec::with_capacity(m + n);
        pool.push(0);
        let mut emitted = 0usize;
        let mut seen: FxHashSet<(u32, u32)> = FxHashSet::default();
        for v in 1..n as u32 {
            // Distribute remaining edges evenly over remaining vertices.
            let remaining_vertices = (n as u32 - v) as usize;
            let k = (m - emitted).div_ceil(remaining_vertices).min(v as usize);
            for _ in 0..k {
                let t = if rng.gen_bool(UNIFORM_MIX) || pool.is_empty() {
                    rng.gen_range(v as u64) as u32
                } else {
                    *rng.choose(&pool).expect("pool nonempty")
                };
                if t < v && seen.insert((t, v)) {
                    // New vertex cites old: edge new -> old, so heavily
                    // cited vertices accrue in-degree (the citation-graph
                    // heavy tail).
                    b.add_edge_unchecked(perm[v as usize], perm[t as usize]);
                    pool.push(t);
                    emitted += 1;
                }
            }
            pool.push(v);
        }
    }
    Dag::new(b.build()).expect("generator emits forward edges only")
}

/// Tree-like DAG: a random spanning tree plus `extra` forward cross
/// edges. With `extra ≪ n` this matches the metabolic / ontology
/// datasets of the paper, where |E| ≈ 1.05·|V| and most vertices have a
/// single parent.
pub fn tree_plus_dag(n: usize, extra: usize, seed: u64) -> Dag {
    let mut rng = Rng::new(seed);
    let mut perm: Vec<VertexId> = (0..n as VertexId).collect();
    rng.shuffle(&mut perm);

    let mut b = GraphBuilder::with_capacity(n, n + extra);
    for v in 1..n as u32 {
        let parent = rng.gen_range(v as u64) as u32;
        b.add_edge_unchecked(perm[parent as usize], perm[v as usize]);
    }
    let mut added = 0usize;
    let mut attempts = 0usize;
    let budget = extra.saturating_mul(20) + 100;
    let mut seen: FxHashSet<(u32, u32)> = FxHashSet::default();
    while n >= 2 && added < extra && attempts < budget {
        attempts += 1;
        let i = rng.gen_index(n) as u32;
        let j = rng.gen_index(n) as u32;
        if i == j {
            continue;
        }
        let (i, j) = if i < j { (i, j) } else { (j, i) };
        if seen.insert((i, j)) {
            b.add_edge_unchecked(perm[i as usize], perm[j as usize]);
            added += 1;
        }
    }
    Dag::new(b.build()).expect("generator emits forward edges only")
}

/// Sparse random forest DAG with exactly `m ≤ n−1` parent edges:
/// `m` randomly chosen vertices receive one parent each (uniform among
/// their predecessors in a hidden permutation). Several of the paper's
/// condensed datasets have |E| < |V| (citeseer, the uniprotenc family);
/// this is their generator.
pub fn forest_dag(n: usize, m: usize, seed: u64) -> Dag {
    let mut rng = Rng::new(seed);
    let m = m.min(n.saturating_sub(1));
    let mut perm: Vec<VertexId> = (0..n as VertexId).collect();
    rng.shuffle(&mut perm);
    // Choose which of the vertices 1..n get a parent.
    let mut children: Vec<u32> = (1..n as u32).collect();
    rng.shuffle(&mut children);
    children.truncate(m);
    let mut b = GraphBuilder::with_capacity(n, m);
    for &v in &children {
        let parent = rng.gen_range(v as u64) as u32;
        b.add_edge_unchecked(perm[parent as usize], perm[v as usize]);
    }
    Dag::new(b.build()).expect("generator emits forward edges only")
}

/// Layered DAG: `layers` strata; edges go from one layer to the next
/// (90 %) or skip one layer (10 %). Models XML-document shapes (xmark).
pub fn layered_dag(n: usize, layers: usize, m: usize, seed: u64) -> Dag {
    assert!(layers >= 2, "layered_dag needs at least two layers");
    let mut rng = Rng::new(seed);
    let m = (m as u64).min(max_edges(n)) as usize;
    let mut perm: Vec<VertexId> = (0..n as VertexId).collect();
    rng.shuffle(&mut perm);
    // Layer of (pre-permutation) vertex i: proportional split.
    let layer_of = |i: usize| -> usize { i * layers / n.max(1) };
    let layer_bounds: Vec<(usize, usize)> = (0..layers)
        .map(|l| {
            let lo = l * n / layers;
            let hi = ((l + 1) * n / layers).max(lo);
            (lo, hi)
        })
        .collect();

    let mut b = GraphBuilder::with_capacity(n, m);
    let mut seen: FxHashSet<(u32, u32)> = FxHashSet::default();
    let mut added = 0usize;
    let mut attempts = 0usize;
    let budget = m.saturating_mul(20) + 100;
    while n >= 2 && added < m && attempts < budget {
        attempts += 1;
        let u = rng.gen_index(n);
        let lu = layer_of(u);
        let skip = if rng.gen_bool(0.1) { 2 } else { 1 };
        let lt = lu + skip;
        if lt >= layers {
            continue;
        }
        let (lo, hi) = layer_bounds[lt];
        if lo == hi {
            continue;
        }
        let v = lo + rng.gen_index(hi - lo);
        if seen.insert((u as u32, v as u32)) {
            b.add_edge_unchecked(perm[u], perm[v]);
            added += 1;
        }
    }
    Dag::new(b.build()).expect("generator emits forward edges only")
}

/// Bundle of `chains` parallel deep chains plus `cross` random
/// forward cross edges — the `deep_chain` perf family.
///
/// Hidden positions `0..n` are dealt round-robin onto the chains
/// (chain `c` owns positions `c, c+chains, c+2·chains, …`), every
/// chain links consecutive positions, and cross edges go from a
/// smaller to a larger position — so acyclicity holds by construction
/// and every chain is `n/chains` deep. The shape is adversarial for
/// the level-cut pre-filter: all chains share the same level profile,
/// so cross-chain pairs survive it about half the time and the later
/// layers must carry the load (measured in `BENCH_4.json`: the
/// doubled GRAIL interval cuts absorb most cross-chain negatives
/// before the signature stage ever sees them).
pub fn deep_chain_dag(n: usize, chains: usize, cross: usize, seed: u64) -> Dag {
    assert!(chains >= 1, "deep_chain_dag needs at least one chain");
    let mut rng = Rng::new(seed);
    let mut perm: Vec<VertexId> = (0..n as VertexId).collect();
    rng.shuffle(&mut perm);

    let mut b = GraphBuilder::with_capacity(n, n.saturating_sub(chains) + cross);
    // Chain links: position p → p + chains (same chain, next depth).
    for p in 0..n.saturating_sub(chains) {
        b.add_edge_unchecked(perm[p], perm[p + chains]);
    }
    let mut added = 0usize;
    let mut attempts = 0usize;
    let budget = cross.saturating_mul(20) + 100;
    let mut seen: FxHashSet<(u32, u32)> = FxHashSet::default();
    while n >= 2 && added < cross && attempts < budget {
        attempts += 1;
        let i = rng.gen_index(n) as u32;
        let j = rng.gen_index(n) as u32;
        if i == j {
            continue;
        }
        let (i, j) = if i < j { (i, j) } else { (j, i) };
        // Skip pairs that duplicate a chain link.
        if j as usize == i as usize + chains {
            continue;
        }
        if seen.insert((i, j)) {
            b.add_edge_unchecked(perm[i as usize], perm[j as usize]);
            added += 1;
        }
    }
    Dag::new(b.build()).expect("generator emits forward edges only")
}

/// Kronecker/R-MAT-style DAG with `1 << scale` vertices and (up to)
/// `edges` edges — the `kronecker` perf family (scale-free degrees and
/// a self-similar adjacency structure, after Chakrabarti, Zhan &
/// Faloutsos, and the Graph500 generator).
///
/// Each edge endpoint pair is drawn by `scale` recursive quadrant
/// choices with the Graph500 probabilities `(a, b, c, d) =
/// (0.57, 0.19, 0.19, 0.05)`; a hidden random priority permutation
/// orients every sampled pair from lower to higher priority, so the
/// result is acyclic by construction while keeping the Kronecker block
/// structure on vertex ids.
pub fn kronecker_dag(scale: u32, edges: usize, seed: u64) -> Dag {
    assert!(scale <= 30, "kronecker_dag scale {scale} is unreasonable");
    let n = 1usize << scale;
    let mut rng = Rng::new(seed);
    let edges = (edges as u64).min(max_edges(n)) as usize;
    // prio is a topological order over vertex ids; sampled pairs are
    // oriented along it.
    let mut prio: Vec<u32> = (0..n as u32).collect();
    rng.shuffle(&mut prio);

    let (a, b_p, c_p) = (0.57, 0.19, 0.19);
    let sample = |rng: &mut Rng| -> (u32, u32) {
        let (mut u, mut v) = (0u32, 0u32);
        for _ in 0..scale {
            u <<= 1;
            v <<= 1;
            let x = rng.gen_f64();
            if x < a {
                // top-left quadrant: neither bit set
            } else if x < a + b_p {
                v |= 1;
            } else if x < a + b_p + c_p {
                u |= 1;
            } else {
                u |= 1;
                v |= 1;
            }
        }
        (u, v)
    };

    let mut builder = GraphBuilder::with_capacity(n, edges);
    let mut seen: FxHashSet<(u32, u32)> = FxHashSet::default();
    let mut added = 0usize;
    let mut attempts = 0usize;
    let budget = edges.saturating_mul(20) + 100;
    while n >= 2 && added < edges && attempts < budget {
        attempts += 1;
        let (u, v) = sample(&mut rng);
        if u == v {
            continue;
        }
        let (u, v) = if prio[u as usize] < prio[v as usize] {
            (u, v)
        } else {
            (v, u)
        };
        if seen.insert((u, v)) {
            builder.add_edge_unchecked(u, v);
            added += 1;
        }
    }
    Dag::new(builder.build()).expect("priority-oriented edges are acyclic")
}

/// Deterministic `rows × cols` grid DAG with edges right and down.
/// Dense reachability and long paths; handy in tests and ablations.
pub fn grid_dag(rows: usize, cols: usize) -> Dag {
    let n = rows * cols;
    let id = |r: usize, c: usize| (r * cols + c) as VertexId;
    let mut b = GraphBuilder::with_capacity(n, 2 * n);
    for r in 0..rows {
        for c in 0..cols {
            if c + 1 < cols {
                b.add_edge_unchecked(id(r, c), id(r, c + 1));
            }
            if r + 1 < rows {
                b.add_edge_unchecked(id(r, c), id(r + 1, c));
            }
        }
    }
    Dag::new(b.build()).expect("grid is acyclic")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn random_dag_shape() {
        let d = random_dag(100, 300, 1);
        assert_eq!(d.num_vertices(), 100);
        assert_eq!(d.num_edges(), 300);
    }

    #[test]
    fn random_dag_deterministic() {
        let a = random_dag(50, 120, 7);
        let b = random_dag(50, 120, 7);
        assert_eq!(a.graph(), b.graph());
        let c = random_dag(50, 120, 8);
        assert_ne!(a.graph(), c.graph());
    }

    #[test]
    fn random_dag_dense_request_clamped() {
        // Ask for more edges than possible.
        let d = random_dag(10, 1000, 3);
        assert_eq!(d.num_edges(), 45);
    }

    #[test]
    fn random_dag_degenerate_sizes() {
        assert_eq!(random_dag(0, 10, 1).num_vertices(), 0);
        assert_eq!(random_dag(1, 10, 1).num_edges(), 0);
        assert_eq!(random_dag(2, 1, 1).num_edges(), 1);
    }

    #[test]
    fn power_law_dag_has_skew() {
        let d = power_law_dag(2000, 8000, 42);
        assert_eq!(d.num_vertices(), 2000);
        assert!(d.num_edges() >= 7000, "got {} edges", d.num_edges());
        let max_in = (0..2000u32).map(|v| d.in_degree(v)).max().unwrap();
        let avg_in = d.num_edges() as f64 / 2000.0;
        assert!(
            (max_in as f64) > avg_in * 5.0,
            "expected heavy tail: max in-degree {max_in}, avg {avg_in:.1}"
        );
    }

    #[test]
    fn tree_plus_dag_is_connected_tree_plus_extras() {
        let d = tree_plus_dag(500, 25, 9);
        assert_eq!(d.num_vertices(), 500);
        assert_eq!(d.num_edges(), 499 + 25);
        // Exactly one root in a tree (+extras never add roots... they may
        // remove none); every vertex except the root has >= 1 parent.
        let roots: Vec<_> = d.graph().roots().collect();
        assert_eq!(roots.len(), 1);
    }

    #[test]
    fn forest_dag_shape() {
        let d = forest_dag(1000, 450, 3);
        assert_eq!(d.num_vertices(), 1000);
        assert_eq!(d.num_edges(), 450);
        // Forest: every vertex has at most one parent.
        for v in 0..1000u32 {
            assert!(d.in_degree(v) <= 1);
        }
        // Over-asking is clamped to a spanning tree.
        let d = forest_dag(10, 100, 4);
        assert_eq!(d.num_edges(), 9);
    }

    #[test]
    fn layered_dag_respects_layers() {
        let d = layered_dag(400, 8, 1200, 5);
        assert_eq!(d.num_vertices(), 400);
        assert!(d.num_edges() > 1000);
        // The longest path cannot exceed the layer count.
        assert!(d.height() <= 8);
    }

    #[test]
    fn grid_dag_shape_and_height() {
        let d = grid_dag(4, 5);
        assert_eq!(d.num_vertices(), 20);
        // Edges: right 4*(5-1)=16, down (4-1)*5=15.
        assert_eq!(d.num_edges(), 31);
        assert_eq!(d.height(), 8); // path of length (4-1)+(5-1)=7 → 8 vertices
    }

    #[test]
    fn deep_chain_dag_is_deep_and_deterministic() {
        let d = deep_chain_dag(1000, 10, 100, 3);
        assert_eq!(d.num_vertices(), 1000);
        assert_eq!(d.num_edges(), 990 + 100);
        // Every chain is n/chains deep; each cross edge on a path can
        // add at most one extra step, so the height stays deep and
        // close to the chain length.
        assert!(
            (100..=100 + 100).contains(&d.height()),
            "height {}",
            d.height()
        );
        assert_eq!(d.graph(), deep_chain_dag(1000, 10, 100, 3).graph());
        // Single chain degenerates to a path.
        let path = deep_chain_dag(50, 1, 0, 4);
        assert_eq!(path.num_edges(), 49);
        assert_eq!(path.height(), 50);
    }

    #[test]
    fn kronecker_dag_shape_and_skew() {
        let d = kronecker_dag(11, 8_192, 42);
        assert_eq!(d.num_vertices(), 2048);
        assert!(d.num_edges() >= 7_000, "got {} edges", d.num_edges());
        assert_eq!(d.graph(), kronecker_dag(11, 8_192, 42).graph());
        // R-MAT's 0.57 corner concentrates degree on low ids: the tail
        // must be heavy relative to the mean (scale-free-ish).
        let max_deg = (0..2048u32)
            .map(|v| d.in_degree(v) + d.out_degree(v))
            .max()
            .unwrap();
        let avg = 2.0 * d.num_edges() as f64 / 2048.0;
        assert!(
            max_deg as f64 > avg * 5.0,
            "expected heavy tail: max degree {max_deg}, avg {avg:.1}"
        );
    }

    #[test]
    fn generators_produce_valid_dags() {
        // Dag::new re-validates; reaching here means acyclicity held.
        for seed in 0..5 {
            random_dag(64, 200, seed);
            power_law_dag(64, 200, seed);
            tree_plus_dag(64, 20, seed);
            layered_dag(64, 4, 150, seed);
            deep_chain_dag(64, 4, 30, seed);
            kronecker_dag(6, 150, seed);
        }
    }
}
