//! Minimal deterministic PRNG (SplitMix64).
//!
//! Dataset generation must be bit-for-bit reproducible across machines
//! and crate versions so that `EXPERIMENTS.md` numbers can be recreated;
//! depending on an external RNG crate's stream stability would be
//! fragile. SplitMix64 passes BigCrush, is 4 instructions per draw, and
//! is trivially seedable.

/// SplitMix64 pseudo-random number generator.
#[derive(Clone, Debug)]
pub struct Rng {
    state: u64,
}

impl Rng {
    /// A generator seeded with `seed`. Equal seeds give equal streams.
    pub fn new(seed: u64) -> Self {
        Rng { state: seed }
    }

    /// Next raw 64-bit draw.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform draw in `0..bound` (Lemire's multiply-shift; negligible
    /// bias is irrelevant for workload generation). `bound` must be > 0.
    #[inline]
    pub fn gen_range(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }

    /// Uniform draw in `0..bound` as `usize`.
    #[inline]
    pub fn gen_index(&mut self, bound: usize) -> usize {
        self.gen_range(bound as u64) as usize
    }

    /// Uniform `f64` in `[0, 1)`.
    #[inline]
    pub fn gen_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Bernoulli draw with probability `p`.
    #[inline]
    pub fn gen_bool(&mut self, p: f64) -> bool {
        self.gen_f64() < p
    }

    /// Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, slice: &mut [T]) {
        for i in (1..slice.len()).rev() {
            let j = self.gen_index(i + 1);
            slice.swap(i, j);
        }
    }

    /// Uniformly chosen element, or `None` if the slice is empty.
    pub fn choose<'a, T>(&mut self, slice: &'a [T]) -> Option<&'a T> {
        if slice.is_empty() {
            None
        } else {
            Some(&slice[self.gen_index(slice.len())])
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_streams() {
        let mut a = Rng::new(42);
        let mut b = Rng::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = Rng::new(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_are_in_bounds() {
        let mut r = Rng::new(7);
        for _ in 0..10_000 {
            assert!(r.gen_range(10) < 10);
            let f = r.gen_f64();
            assert!((0.0..1.0).contains(&f));
        }
        assert_eq!(r.gen_range(1), 0);
    }

    #[test]
    fn range_covers_all_values() {
        let mut r = Rng::new(1);
        let mut seen = [false; 8];
        for _ in 0..1000 {
            seen[r.gen_index(8)] = true;
        }
        assert!(seen.iter().all(|&s| s), "all buckets should be hit");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut r = Rng::new(99);
        let mut v: Vec<u32> = (0..100).collect();
        r.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, sorted, "shuffle of 100 elements should move something");
    }

    #[test]
    fn choose_empty_is_none() {
        let mut r = Rng::new(5);
        let empty: [u32; 0] = [];
        assert!(r.choose(&empty).is_none());
        assert_eq!(r.choose(&[42]), Some(&42));
    }

    #[test]
    fn bool_probability_roughly_respected() {
        let mut r = Rng::new(1234);
        let hits = (0..10_000).filter(|_| r.gen_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "got {hits} hits for p=0.25");
    }
}
