//! Fast non-cryptographic hashing for hot paths.
//!
//! The standard library's SipHash is a poor fit for the integer-keyed
//! maps used during index construction (see the Rust Performance Book's
//! Hashing chapter). This is the Fx algorithm used by rustc, implemented
//! locally to keep the dependency set to the sanctioned offline crates.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// `HashMap` keyed with [`FxHasher`].
pub type FxHashMap<K, V> = HashMap<K, V, BuildHasherDefault<FxHasher>>;
/// `HashSet` keyed with [`FxHasher`].
pub type FxHashSet<T> = HashSet<T, BuildHasherDefault<FxHasher>>;

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;
const ROTATE: u32 = 5;

/// The Fx hash function: a single multiply-rotate per word. Low quality
/// but extremely fast for small integer keys, which is all we hash.
#[derive(Default, Clone)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(ROTATE) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for c in &mut chunks {
            self.add_to_hash(u64::from_le_bytes(c.try_into().unwrap()));
        }
        let rem = chunks.remainder();
        if !rem.is_empty() {
            let mut buf = [0u8; 8];
            buf[..rem.len()].copy_from_slice(rem);
            self.add_to_hash(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add_to_hash(i);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_and_set_work() {
        let mut m: FxHashMap<u32, u32> = FxHashMap::default();
        for i in 0..1000u32 {
            m.insert(i, i * 2);
        }
        assert_eq!(m.get(&500), Some(&1000));

        let mut s: FxHashSet<(u32, u32)> = FxHashSet::default();
        s.insert((1, 2));
        assert!(s.contains(&(1, 2)));
        assert!(!s.contains(&(2, 1)));
    }

    #[test]
    fn hashing_is_deterministic() {
        let mut a = FxHasher::default();
        let mut b = FxHasher::default();
        a.write_u64(42);
        b.write_u64(42);
        assert_eq!(a.finish(), b.finish());
        let mut c = FxHasher::default();
        c.write_u64(43);
        assert_ne!(a.finish(), c.finish());
    }

    #[test]
    fn byte_stream_matches_padded_words() {
        // write() must consume trailing partial words.
        let mut a = FxHasher::default();
        a.write(&[1, 2, 3]);
        let mut b = FxHasher::default();
        b.write(&[1, 2, 3]);
        assert_eq!(a.finish(), b.finish());
    }
}
