//! Compact CSR directed graph with forward and reverse adjacency.
//!
//! Every index in the workspace iterates neighbor lists in hot loops, so
//! the representation is two packed CSR arrays (one per direction) with
//! `u32` vertex ids and offsets. Neighbor lists are sorted, which makes
//! iteration deterministic and `has_edge` a binary search.

use crate::error::{GraphError, Result};
use crate::VertexId;

/// Immutable directed graph in CSR form.
///
/// Construct with [`GraphBuilder`] or [`DiGraph::from_edges`]. Parallel
/// edges and self-loops are removed during construction; neighbor lists
/// are sorted ascending.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DiGraph {
    out_offsets: Vec<u32>,
    out_targets: Vec<VertexId>,
    in_offsets: Vec<u32>,
    in_targets: Vec<VertexId>,
}

impl DiGraph {
    /// Builds a graph with `n` vertices from an edge list.
    ///
    /// Duplicate edges and self-loops are dropped. Returns an error if an
    /// endpoint is `>= n`.
    pub fn from_edges(n: usize, edges: &[(VertexId, VertexId)]) -> Result<Self> {
        let mut b = GraphBuilder::new(n);
        for &(u, v) in edges {
            b.add_edge(u, v)?;
        }
        Ok(b.build())
    }

    /// An empty graph with `n` isolated vertices.
    pub fn empty(n: usize) -> Self {
        GraphBuilder::new(n).build()
    }

    /// Reassembles a graph from the four canonical CSR arrays — the
    /// zero-copy persistence path: a loader that already holds the
    /// packed arrays (e.g. sections of a mapped index arena) skips the
    /// edge-list round trip through [`GraphBuilder`] entirely.
    ///
    /// Validation is complete: offsets must be monotone and span their
    /// target arrays, every adjacency list must be strictly ascending
    /// and in range, and the `in` side must be exactly the transpose
    /// of the `out` side — so a successful return is indistinguishable
    /// from [`GraphBuilder::build`]'s output.
    pub fn from_csr(
        out_offsets: Vec<u32>,
        out_targets: Vec<VertexId>,
        in_offsets: Vec<u32>,
        in_targets: Vec<VertexId>,
    ) -> Result<Self> {
        fn check_side(offsets: &[u32], targets: &[VertexId], n: usize) -> Result<()> {
            let ok = offsets.len() == n + 1
                && offsets.first() == Some(&0)
                && *offsets.last().expect("nonempty") as usize == targets.len()
                && offsets.windows(2).all(|w| w[0] <= w[1]);
            if !ok {
                return Err(GraphError::Parse {
                    line: 0,
                    msg: "CSR offsets are not a monotone cover of the target array".into(),
                });
            }
            for w in offsets.windows(2) {
                let list = &targets[w[0] as usize..w[1] as usize];
                if list.windows(2).any(|p| p[0] >= p[1])
                    || list.last().is_some_and(|&t| t as usize >= n)
                {
                    return Err(GraphError::Parse {
                        line: 0,
                        msg: "CSR adjacency list not strictly ascending in range".into(),
                    });
                }
            }
            Ok(())
        }
        let n = out_offsets.len().saturating_sub(1);
        check_side(&out_offsets, &out_targets, n)?;
        check_side(&in_offsets, &in_targets, n)?;
        // Transpose check: walking the out-edges in (u, v) order must
        // visit each in-list in exactly its stored order (in-lists of
        // a canonical CSR are ascending in u).
        let mut cursor: Vec<u32> = in_offsets[..n].to_vec();
        for u in 0..n {
            for &v in &out_targets[out_offsets[u] as usize..out_offsets[u + 1] as usize] {
                if u as u32 == v {
                    return Err(GraphError::Parse {
                        line: 0,
                        msg: "CSR contains a self-loop".into(),
                    });
                }
                let c = &mut cursor[v as usize];
                if *c >= in_offsets[v as usize + 1] || in_targets[*c as usize] != u as u32 {
                    return Err(GraphError::Parse {
                        line: 0,
                        msg: "in-CSR is not the transpose of the out-CSR".into(),
                    });
                }
                *c += 1;
            }
        }
        if cursor
            .iter()
            .enumerate()
            .any(|(v, &c)| c != in_offsets[v + 1])
        {
            return Err(GraphError::Parse {
                line: 0,
                msg: "in-CSR has edges the out-CSR lacks".into(),
            });
        }
        Ok(DiGraph {
            out_offsets,
            out_targets,
            in_offsets,
            in_targets,
        })
    }

    /// The four canonical CSR arrays
    /// `(out_offsets, out_targets, in_offsets, in_targets)` — the
    /// persistence layer's view, re-loadable via [`DiGraph::from_csr`].
    pub fn csr_parts(&self) -> (&[u32], &[VertexId], &[u32], &[VertexId]) {
        (
            &self.out_offsets,
            &self.out_targets,
            &self.in_offsets,
            &self.in_targets,
        )
    }

    /// Number of vertices.
    #[inline]
    pub fn num_vertices(&self) -> usize {
        self.out_offsets.len() - 1
    }

    /// Number of (deduplicated) edges.
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.out_targets.len()
    }

    /// Successors of `v`, sorted ascending.
    #[inline]
    pub fn out_neighbors(&self, v: VertexId) -> &[VertexId] {
        let lo = self.out_offsets[v as usize] as usize;
        let hi = self.out_offsets[v as usize + 1] as usize;
        &self.out_targets[lo..hi]
    }

    /// Predecessors of `v`, sorted ascending.
    #[inline]
    pub fn in_neighbors(&self, v: VertexId) -> &[VertexId] {
        let lo = self.in_offsets[v as usize] as usize;
        let hi = self.in_offsets[v as usize + 1] as usize;
        &self.in_targets[lo..hi]
    }

    /// Out-degree of `v`.
    #[inline]
    pub fn out_degree(&self, v: VertexId) -> usize {
        self.out_neighbors(v).len()
    }

    /// In-degree of `v`.
    #[inline]
    pub fn in_degree(&self, v: VertexId) -> usize {
        self.in_neighbors(v).len()
    }

    /// `true` iff the edge `u -> v` exists (binary search).
    pub fn has_edge(&self, u: VertexId, v: VertexId) -> bool {
        self.out_neighbors(u).binary_search(&v).is_ok()
    }

    /// Iterator over all edges `(u, v)` in ascending `(u, v)` order.
    pub fn edges(&self) -> impl Iterator<Item = (VertexId, VertexId)> + '_ {
        (0..self.num_vertices() as VertexId)
            .flat_map(move |u| self.out_neighbors(u).iter().map(move |&v| (u, v)))
    }

    /// All vertices with in-degree 0.
    pub fn roots(&self) -> impl Iterator<Item = VertexId> + '_ {
        (0..self.num_vertices() as VertexId).filter(move |&v| self.in_degree(v) == 0)
    }

    /// All vertices with out-degree 0.
    pub fn leaves(&self) -> impl Iterator<Item = VertexId> + '_ {
        (0..self.num_vertices() as VertexId).filter(move |&v| self.out_degree(v) == 0)
    }

    /// The graph with every edge reversed. O(1) — the two CSR halves are
    /// swapped.
    pub fn reversed(&self) -> DiGraph {
        DiGraph {
            out_offsets: self.in_offsets.clone(),
            out_targets: self.in_targets.clone(),
            in_offsets: self.out_offsets.clone(),
            in_targets: self.out_targets.clone(),
        }
    }

    /// Approximate heap footprint in bytes.
    pub fn memory_bytes(&self) -> usize {
        4 * (self.out_offsets.len()
            + self.out_targets.len()
            + self.in_offsets.len()
            + self.in_targets.len())
    }
}

/// Incremental builder for [`DiGraph`].
///
/// Collects edges, then packs both CSR directions in `build`. Self-loops
/// are silently dropped (the reachability literature condenses SCCs
/// first, after which self-loops are meaningless); duplicates are
/// deduplicated.
#[derive(Clone, Debug)]
pub struct GraphBuilder {
    n: usize,
    edges: Vec<(VertexId, VertexId)>,
}

impl GraphBuilder {
    /// A builder for a graph with `n` vertices and no edges yet.
    pub fn new(n: usize) -> Self {
        assert!(
            (n as u64) < VertexId::MAX as u64,
            "hoplite graphs are limited to u32::MAX - 1 vertices"
        );
        GraphBuilder {
            n,
            edges: Vec::new(),
        }
    }

    /// Pre-reserves capacity for `m` edges.
    pub fn with_capacity(n: usize, m: usize) -> Self {
        let mut b = Self::new(n);
        b.edges.reserve(m);
        b
    }

    /// Number of vertices the graph will have.
    pub fn num_vertices(&self) -> usize {
        self.n
    }

    /// Adds the edge `u -> v`. Self-loops are accepted here and dropped
    /// at `build` time. Errors if an endpoint is out of range.
    pub fn add_edge(&mut self, u: VertexId, v: VertexId) -> Result<()> {
        if (u as usize) >= self.n {
            return Err(GraphError::VertexOutOfRange {
                vertex: u as u64,
                num_vertices: self.n,
            });
        }
        if (v as usize) >= self.n {
            return Err(GraphError::VertexOutOfRange {
                vertex: v as u64,
                num_vertices: self.n,
            });
        }
        self.edges.push((u, v));
        Ok(())
    }

    /// Adds an edge that is known to be in range.
    ///
    /// # Panics
    /// Panics in debug builds if an endpoint is out of range.
    pub fn add_edge_unchecked(&mut self, u: VertexId, v: VertexId) {
        debug_assert!((u as usize) < self.n && (v as usize) < self.n);
        self.edges.push((u, v));
    }

    /// Packs the accumulated edges into a [`DiGraph`].
    pub fn build(mut self) -> DiGraph {
        // Drop self-loops, then sort + dedup for canonical CSR layout.
        self.edges.retain(|&(u, v)| u != v);
        self.edges.sort_unstable();
        self.edges.dedup();
        let n = self.n;
        let m = self.edges.len();
        assert!(
            (m as u64) < u32::MAX as u64,
            "hoplite graphs are limited to u32::MAX - 1 edges"
        );

        let mut out_offsets = vec![0u32; n + 1];
        let mut in_offsets = vec![0u32; n + 1];
        for &(u, v) in &self.edges {
            out_offsets[u as usize + 1] += 1;
            in_offsets[v as usize + 1] += 1;
        }
        for i in 0..n {
            out_offsets[i + 1] += out_offsets[i];
            in_offsets[i + 1] += in_offsets[i];
        }

        let mut out_targets = vec![0 as VertexId; m];
        let mut in_targets = vec![0 as VertexId; m];
        // Edges are sorted by (u, v): forward lists fill in order.
        let mut cursor = out_offsets.clone();
        for &(u, v) in &self.edges {
            let c = &mut cursor[u as usize];
            out_targets[*c as usize] = v;
            *c += 1;
        }
        let mut cursor = in_offsets.clone();
        for &(u, v) in &self.edges {
            let c = &mut cursor[v as usize];
            in_targets[*c as usize] = u;
            *c += 1;
        }
        // Reverse lists came out in (u, v) edge order grouped by v, i.e.
        // already ascending in u because the edge list was sorted.
        debug_assert!((0..n).all(|v| {
            let lo = in_offsets[v] as usize;
            let hi = in_offsets[v + 1] as usize;
            in_targets[lo..hi].windows(2).all(|w| w[0] <= w[1])
        }));

        DiGraph {
            out_offsets,
            out_targets,
            in_offsets,
            in_targets,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diamond() -> DiGraph {
        DiGraph::from_edges(4, &[(0, 1), (0, 2), (1, 3), (2, 3)]).unwrap()
    }

    #[test]
    fn basic_shape() {
        let g = diamond();
        assert_eq!(g.num_vertices(), 4);
        assert_eq!(g.num_edges(), 4);
        assert_eq!(g.out_neighbors(0), &[1, 2]);
        assert_eq!(g.in_neighbors(3), &[1, 2]);
        assert_eq!(g.out_degree(3), 0);
        assert_eq!(g.in_degree(0), 0);
    }

    #[test]
    fn has_edge_checks_direction() {
        let g = diamond();
        assert!(g.has_edge(0, 1));
        assert!(!g.has_edge(1, 0));
        assert!(!g.has_edge(0, 3));
    }

    #[test]
    fn duplicates_and_self_loops_removed() {
        let g = DiGraph::from_edges(3, &[(0, 1), (0, 1), (1, 1), (1, 2)]).unwrap();
        assert_eq!(g.num_edges(), 2);
        assert_eq!(g.out_neighbors(0), &[1]);
        assert_eq!(g.out_neighbors(1), &[2]);
    }

    #[test]
    fn out_of_range_edge_is_an_error() {
        let mut b = GraphBuilder::new(2);
        assert!(matches!(
            b.add_edge(0, 2),
            Err(GraphError::VertexOutOfRange { vertex: 2, .. })
        ));
        assert!(matches!(
            b.add_edge(5, 0),
            Err(GraphError::VertexOutOfRange { vertex: 5, .. })
        ));
    }

    #[test]
    fn edges_iterates_in_order() {
        let g = diamond();
        let edges: Vec<_> = g.edges().collect();
        assert_eq!(edges, vec![(0, 1), (0, 2), (1, 3), (2, 3)]);
    }

    #[test]
    fn reversed_swaps_directions() {
        let g = diamond().reversed();
        assert_eq!(g.out_neighbors(3), &[1, 2]);
        assert_eq!(g.in_neighbors(1), &[3]);
        assert!(g.has_edge(3, 1));
        assert!(!g.has_edge(1, 3));
    }

    #[test]
    fn roots_and_leaves() {
        let g = diamond();
        assert_eq!(g.roots().collect::<Vec<_>>(), vec![0]);
        assert_eq!(g.leaves().collect::<Vec<_>>(), vec![3]);
    }

    #[test]
    fn empty_graph() {
        let g = DiGraph::empty(5);
        assert_eq!(g.num_vertices(), 5);
        assert_eq!(g.num_edges(), 0);
        assert_eq!(g.roots().count(), 5);
    }

    #[test]
    fn zero_vertex_graph() {
        let g = DiGraph::empty(0);
        assert_eq!(g.num_vertices(), 0);
        assert_eq!(g.edges().count(), 0);
    }

    #[test]
    fn from_csr_roundtrips_canonical_graphs() {
        for g in [
            diamond(),
            DiGraph::empty(0),
            DiGraph::empty(3),
            DiGraph::from_edges(5, &[(0, 4), (0, 2), (2, 4), (1, 4), (3, 0)]).unwrap(),
        ] {
            let (oo, ot, io, it) = g.csr_parts();
            let rebuilt =
                DiGraph::from_csr(oo.to_vec(), ot.to_vec(), io.to_vec(), it.to_vec()).unwrap();
            assert_eq!(rebuilt, g);
        }
    }

    #[test]
    fn from_csr_rejects_malformed_input() {
        let g = diamond();
        let (oo, ot, io, it) = g.csr_parts();
        let (oo, ot, io, it) = (oo.to_vec(), ot.to_vec(), io.to_vec(), it.to_vec());
        // Non-monotone offsets.
        let mut bad = oo.clone();
        bad[1] = 3;
        bad[2] = 1;
        assert!(DiGraph::from_csr(bad, ot.clone(), io.clone(), it.clone()).is_err());
        // Target out of range.
        let mut bad = ot.clone();
        bad[0] = 9;
        assert!(DiGraph::from_csr(oo.clone(), bad, io.clone(), it.clone()).is_err());
        // Unsorted adjacency list.
        let mut bad = ot.clone();
        bad.swap(0, 1);
        assert!(DiGraph::from_csr(oo.clone(), bad, io.clone(), it.clone()).is_err());
        // In side not the transpose of the out side (vertex 3's
        // in-list claims predecessor 3 instead of 2).
        let mut bad = it.clone();
        *bad.last_mut().unwrap() = 3;
        assert!(DiGraph::from_csr(oo.clone(), ot.clone(), io.clone(), bad).is_err());
        // Offsets/targets length mismatch.
        assert!(DiGraph::from_csr(oo.clone(), ot[..2].to_vec(), io.clone(), it.clone()).is_err());
        // Self-loop smuggled into both sides consistently.
        let loops = DiGraph::from_csr(vec![0, 1], vec![0], vec![0, 1], vec![0]);
        assert!(loops.is_err());
    }

    #[test]
    fn neighbor_lists_sorted() {
        let g = DiGraph::from_edges(5, &[(0, 4), (0, 2), (0, 3), (0, 1), (2, 4), (1, 4)]).unwrap();
        assert_eq!(g.out_neighbors(0), &[1, 2, 3, 4]);
        assert_eq!(g.in_neighbors(4), &[0, 1, 2]);
    }
}
