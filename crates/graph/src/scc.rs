//! Strongly connected components and graph condensation.
//!
//! Reachability indexing starts by coalescing every SCC into a single
//! vertex (§2 of the paper): within an SCC everything trivially reaches
//! everything, and the condensation is a DAG that is usually much
//! smaller than the input. The implementation is Tarjan's algorithm in
//! iterative form so multi-million-vertex graphs cannot overflow the
//! call stack.

use crate::dag::Dag;
use crate::digraph::{DiGraph, GraphBuilder};
use crate::{VertexId, INVALID_VERTEX};

/// The result of condensing a digraph: the component DAG plus the
/// vertex-to-component mapping.
#[derive(Clone, Debug)]
pub struct Condensation {
    /// The condensation DAG. Component ids are topologically ordered:
    /// every edge `(c1, c2)` satisfies `c1 < c2`.
    pub dag: Dag,
    /// `comp_of[v]` is the component containing original vertex `v`.
    pub comp_of: Vec<VertexId>,
    /// Number of original vertices per component.
    pub comp_sizes: Vec<u32>,
}

impl Condensation {
    /// Answers reachability on the *original* graph through the
    /// condensation: `u` reaches `v` iff they share a component or
    /// `comp(u)` reaches `comp(v)` in the DAG (checked by the caller's
    /// index; this helper only handles the same-component case).
    pub fn same_component(&self, u: VertexId, v: VertexId) -> bool {
        self.comp_of[u as usize] == self.comp_of[v as usize]
    }

    /// Number of components.
    pub fn num_components(&self) -> usize {
        self.comp_sizes.len()
    }
}

/// Computes the strongly connected components of `g`.
///
/// Returns `(num_components, comp_of)` where component ids are assigned
/// in **topological order of the condensation**: for every edge
/// `u -> v` crossing components, `comp_of[u] < comp_of[v]`.
pub fn strongly_connected_components(g: &DiGraph) -> (usize, Vec<VertexId>) {
    let n = g.num_vertices();
    let mut index = vec![INVALID_VERTEX; n]; // discovery index per vertex
    let mut lowlink = vec![0 as VertexId; n];
    let mut on_stack = vec![false; n];
    let mut comp_of = vec![INVALID_VERTEX; n];
    let mut stack: Vec<VertexId> = Vec::new();
    // Explicit DFS call stack: (vertex, next out-neighbor offset).
    let mut call: Vec<(VertexId, u32)> = Vec::new();
    let mut next_index: VertexId = 0;
    let mut next_comp: VertexId = 0;

    for start in 0..n as VertexId {
        if index[start as usize] != INVALID_VERTEX {
            continue;
        }
        call.push((start, 0));
        index[start as usize] = next_index;
        lowlink[start as usize] = next_index;
        next_index += 1;
        stack.push(start);
        on_stack[start as usize] = true;

        while let Some(&mut (v, ref mut ni)) = call.last_mut() {
            let succs = g.out_neighbors(v);
            if (*ni as usize) < succs.len() {
                let w = succs[*ni as usize];
                *ni += 1;
                if index[w as usize] == INVALID_VERTEX {
                    // Tree edge: recurse.
                    index[w as usize] = next_index;
                    lowlink[w as usize] = next_index;
                    next_index += 1;
                    stack.push(w);
                    on_stack[w as usize] = true;
                    call.push((w, 0));
                } else if on_stack[w as usize] {
                    // Back/cross edge within the current DFS stack.
                    lowlink[v as usize] = lowlink[v as usize].min(index[w as usize]);
                }
            } else {
                // v is finished: propagate lowlink and pop SCC roots.
                call.pop();
                if let Some(&(parent, _)) = call.last() {
                    lowlink[parent as usize] = lowlink[parent as usize].min(lowlink[v as usize]);
                }
                if lowlink[v as usize] == index[v as usize] {
                    // v is an SCC root; pop its component.
                    loop {
                        let w = stack.pop().expect("tarjan stack underflow");
                        on_stack[w as usize] = false;
                        comp_of[w as usize] = next_comp;
                        if w == v {
                            break;
                        }
                    }
                    next_comp += 1;
                }
            }
        }
    }

    // Tarjan emits components in reverse topological order; flip so that
    // edges go from smaller to larger component id.
    let num_comps = next_comp as usize;
    for c in comp_of.iter_mut() {
        *c = next_comp - 1 - *c;
    }
    (num_comps, comp_of)
}

/// Condenses `g` into its component DAG.
///
/// ```
/// use hoplite_graph::{scc, DiGraph};
///
/// // 0 -> 1 -> 2 -> 0 is a cycle; 2 -> 3 leaves it.
/// let g = DiGraph::from_edges(4, &[(0, 1), (1, 2), (2, 0), (2, 3)])?;
/// let cond = scc::condense(&g);
/// assert_eq!(cond.num_components(), 2);
/// assert!(cond.same_component(0, 2));
/// assert!(!cond.same_component(0, 3));
/// # Ok::<(), hoplite_graph::GraphError>(())
/// ```
pub fn condense(g: &DiGraph) -> Condensation {
    let (num_comps, comp_of) = strongly_connected_components(g);
    let mut comp_sizes = vec![0u32; num_comps];
    for &c in &comp_of {
        comp_sizes[c as usize] += 1;
    }
    let mut b = GraphBuilder::with_capacity(num_comps, g.num_edges() / 2);
    for (u, v) in g.edges() {
        let (cu, cv) = (comp_of[u as usize], comp_of[v as usize]);
        if cu != cv {
            b.add_edge_unchecked(cu, cv);
        }
    }
    let dag_graph = b.build();
    debug_assert!(dag_graph.edges().all(|(u, v)| u < v));
    let dag = Dag::new(dag_graph).expect("condensation must be acyclic");
    Condensation {
        dag,
        comp_of,
        comp_sizes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn acyclic_graph_has_singleton_components() {
        let g = DiGraph::from_edges(4, &[(0, 1), (0, 2), (1, 3), (2, 3)]).unwrap();
        let (nc, comp) = strongly_connected_components(&g);
        assert_eq!(nc, 4);
        // Topological: comp ids respect edge direction.
        for (u, v) in g.edges() {
            assert!(comp[u as usize] < comp[v as usize]);
        }
    }

    #[test]
    fn simple_cycle_collapses() {
        // 0 -> 1 -> 2 -> 0 cycle plus tail 2 -> 3
        let g = DiGraph::from_edges(4, &[(0, 1), (1, 2), (2, 0), (2, 3)]).unwrap();
        let c = condense(&g);
        assert_eq!(c.num_components(), 2);
        assert!(c.same_component(0, 1));
        assert!(c.same_component(1, 2));
        assert!(!c.same_component(2, 3));
        assert_eq!(c.dag.graph().num_edges(), 1);
        let cyc = c.comp_of[0];
        assert_eq!(c.comp_sizes[cyc as usize], 3);
    }

    #[test]
    fn two_cycles_in_sequence() {
        // (0 <-> 1) -> (2 <-> 3), condensation is a single edge.
        let g = DiGraph::from_edges(4, &[(0, 1), (1, 0), (2, 3), (3, 2), (1, 2)]).unwrap();
        let c = condense(&g);
        assert_eq!(c.num_components(), 2);
        let (a, b) = (c.comp_of[0], c.comp_of[2]);
        assert!(a < b, "edge direction must give topological comp ids");
        assert!(c.dag.graph().has_edge(a, b));
    }

    #[test]
    fn parallel_cross_edges_are_merged() {
        // Two SCCs with two crossing edges produce one condensation edge.
        let g = DiGraph::from_edges(4, &[(0, 1), (1, 0), (2, 3), (3, 2), (0, 2), (1, 3)]).unwrap();
        let c = condense(&g);
        assert_eq!(c.dag.graph().num_edges(), 1);
    }

    #[test]
    fn disconnected_vertices() {
        let g = DiGraph::empty(3);
        let c = condense(&g);
        assert_eq!(c.num_components(), 3);
        assert_eq!(c.dag.graph().num_edges(), 0);
    }

    #[test]
    fn whole_graph_one_scc() {
        let g = DiGraph::from_edges(3, &[(0, 1), (1, 2), (2, 0)]).unwrap();
        let c = condense(&g);
        assert_eq!(c.num_components(), 1);
        assert_eq!(c.comp_sizes[0], 3);
    }

    #[test]
    fn deep_path_does_not_overflow_stack() {
        // 200k-vertex path exercises the iterative DFS.
        let n = 200_000;
        let edges: Vec<_> = (0..n as u32 - 1).map(|i| (i, i + 1)).collect();
        let g = DiGraph::from_edges(n, &edges).unwrap();
        let (nc, _) = strongly_connected_components(&g);
        assert_eq!(nc, n);
    }

    #[test]
    fn long_cycle_collapses_iteratively() {
        let n = 100_000u32;
        let mut edges: Vec<_> = (0..n - 1).map(|i| (i, i + 1)).collect();
        edges.push((n - 1, 0));
        let g = DiGraph::from_edges(n as usize, &edges).unwrap();
        let c = condense(&g);
        assert_eq!(c.num_components(), 1);
    }
}
