//! `paper perf` — the machine-readable hot-path benchmark.
//!
//! Measures the two overhauled hot paths on a large random-DAG
//! workload and emits one JSON object (the `BENCH_*.json` trajectory
//! the ROADMAP calls for):
//!
//! * **Construction** — the seed per-pop sorted-merge build
//!   ([`Pruning::SortedMerge`]) against the rank-bitmap engine,
//!   sequential and two-thread ([`Parallelism::TwoThreads`]), plus the
//!   shipped default ([`Parallelism::Auto`]).
//! * **Query** — filtered vs unfiltered batch throughput through
//!   [`Oracle::reaches_batch`] /
//!   [`Oracle::reaches_batch_unfiltered`], with per-layer
//!   [`FilterVerdict`] hit rates over the same workload.
//!
//! Every timed path is also cross-checked for answer equivalence, so a
//! fast-but-wrong regression fails the run instead of producing a
//! flattering number. `--check` additionally enforces the CI
//! invariants (nonzero filter hit rate, filtered throughput at least
//! matching unfiltered).

use std::collections::HashMap;
use std::time::Instant;

use hoplite_core::{DistributionLabeling, DlConfig, FilterVerdict, Oracle, Parallelism, Pruning};
use hoplite_graph::gen;

/// Options for [`run_perf`], parsed by the `paper` binary.
#[derive(Clone, Debug)]
pub struct PerfOptions {
    /// Small graph + workload for CI (seconds, not minutes).
    pub quick: bool,
    /// Generator and workload seed.
    pub seed: u64,
}

impl Default for PerfOptions {
    fn default() -> Self {
        PerfOptions {
            quick: false,
            seed: 7,
        }
    }
}

/// One measured suite; serializes with [`PerfReport::to_json`].
#[derive(Clone, Debug)]
pub struct PerfReport {
    /// Options the suite ran with.
    pub quick: bool,
    /// Seed used.
    pub seed: u64,
    /// Host cores visible to the process.
    pub host_cores: usize,
    /// Workload graph: vertices, edges, condensation components.
    pub n: usize,
    /// Edges.
    pub m: usize,
    /// Condensation components (== `n` on a DAG workload).
    pub components: usize,
    /// Total hop-label entries of the built index.
    pub label_entries: u64,
    /// Pre-filter footprint in 32-bit integers.
    pub filter_integers: u64,
    /// Seed engine: per-pop sorted merge, single thread.
    pub build_seed_merge_ms: f64,
    /// Rank-bitmap engine, single thread.
    pub build_bitmap_seq_ms: f64,
    /// Rank-bitmap engine, two threads (forced).
    pub build_bitmap_par_ms: f64,
    /// The shipped default (`Parallelism::Auto`).
    pub build_auto_ms: f64,
    /// `build_seed_merge_ms / build_auto_ms`.
    pub build_speedup: f64,
    /// Query batch size.
    pub queries: usize,
    /// Worker threads used for the batch measurements.
    pub query_threads: usize,
    /// Throughput with the pre-filter stack disabled.
    pub unfiltered_qps: f64,
    /// Throughput through the full hot path.
    pub filtered_qps: f64,
    /// `filtered_qps / unfiltered_qps`.
    pub query_speedup: f64,
    /// Positive answers in the workload (sanity/context).
    pub reachable: usize,
    /// Count per [`FilterVerdict`] over the workload, in
    /// [`FilterVerdict::ALL`] order.
    pub verdict_counts: Vec<(FilterVerdict, usize)>,
    /// Share of queries decided before the label intersection.
    pub filter_hit_rate: f64,
}

fn time_ms<T>(f: impl FnOnce() -> T) -> (T, f64) {
    let start = Instant::now();
    let value = f();
    (value, start.elapsed().as_secs_f64() * 1e3)
}

/// Times `f` `rounds` times and keeps the fastest (noise floor on
/// shared CI runners).
fn best_ms<T>(rounds: usize, mut f: impl FnMut() -> T) -> (T, f64) {
    let (mut value, mut best) = time_ms(&mut f);
    for _ in 1..rounds {
        let (v, ms) = time_ms(&mut f);
        if ms < best {
            best = ms;
            value = v;
        }
    }
    (value, best)
}

/// Builds the workload, measures every engine and both query paths,
/// and cross-checks equivalence along the way.
///
/// # Panics
/// Panics if any engine or query path disagrees with the reference
/// answers — a perf report for a wrong oracle is worthless.
pub fn run_perf(opts: &PerfOptions) -> PerfReport {
    // The "large random-DAG workload": Erdős–Rényi at bench scale. The
    // quick variant keeps CI in seconds while exercising the identical
    // code paths (and is big enough for Parallelism::Auto to engage on
    // a multi-core host).
    let (n, m, queries, rounds) = if opts.quick {
        (4_000, 16_000, 200_000, 2)
    } else {
        (48_000, 192_000, 1_000_000, 2)
    };
    let host_cores = std::thread::available_parallelism().map_or(1, |p| p.get());
    eprintln!(
        "# perf: generating random_dag(n={n}, m={m}, seed={})",
        opts.seed
    );
    let dag = gen::random_dag(n, m, opts.seed);

    // --- Construction engines. ------------------------------------
    let dag_ref = &dag;
    let build = |pruning: Pruning, parallelism: Parallelism| {
        let cfg = DlConfig {
            pruning,
            parallelism,
            ..DlConfig::default()
        };
        move || DistributionLabeling::build(dag_ref, &cfg)
    };
    eprintln!("# perf: timing seed sorted-merge build ...");
    let (dl_seed, build_seed_merge_ms) =
        best_ms(rounds, build(Pruning::SortedMerge, Parallelism::Sequential));
    eprintln!("# perf: timing rank-bitmap sequential build ...");
    let (dl_seq, build_bitmap_seq_ms) =
        best_ms(rounds, build(Pruning::RankBitmap, Parallelism::Sequential));
    eprintln!("# perf: timing rank-bitmap two-thread build ...");
    let (dl_par, build_bitmap_par_ms) =
        best_ms(rounds, build(Pruning::RankBitmap, Parallelism::TwoThreads));
    eprintln!("# perf: timing default (auto) build ...");
    let (dl_auto, build_auto_ms) = best_ms(rounds, build(Pruning::RankBitmap, Parallelism::Auto));
    for (engine, dl) in [
        ("bitmap-seq", &dl_seq),
        ("bitmap-par", &dl_par),
        ("auto", &dl_auto),
    ] {
        assert_eq!(
            dl.labeling().total_entries(),
            dl_seed.labeling().total_entries(),
            "engine {engine} emitted different labels than the seed build"
        );
    }
    let build_speedup = build_seed_merge_ms / build_auto_ms.max(f64::MIN_POSITIVE);

    // --- Query paths. ----------------------------------------------
    let oracle = Oracle::new(dag.graph());
    let mut rng = gen::Rng::new(opts.seed ^ 0x9E37_79B9);
    let pairs: Vec<(u32, u32)> = (0..queries)
        .map(|_| (rng.gen_index(n) as u32, rng.gen_index(n) as u32))
        .collect();
    let threads = host_cores;
    eprintln!("# perf: timing unfiltered batch ({queries} queries, {threads} threads) ...");
    let (unfiltered, unfiltered_ms) =
        best_ms(rounds, || oracle.reaches_batch_unfiltered(&pairs, threads));
    eprintln!("# perf: timing filtered batch ...");
    let (filtered, filtered_ms) = best_ms(rounds, || oracle.reaches_batch(&pairs, threads));
    assert_eq!(
        filtered, unfiltered,
        "filtered and unfiltered batch answers diverged"
    );
    let reachable = filtered.iter().filter(|&&b| b).count();
    let unfiltered_qps = queries as f64 / (unfiltered_ms / 1e3).max(f64::MIN_POSITIVE);
    let filtered_qps = queries as f64 / (filtered_ms / 1e3).max(f64::MIN_POSITIVE);

    // --- Per-layer hit rates (off the timed path). ------------------
    let comp_of = &oracle.condensation().comp_of;
    let filters = oracle.filters();
    let mut counts: HashMap<FilterVerdict, usize> = HashMap::new();
    for &(u, v) in &pairs {
        let verdict = filters.classify(comp_of[u as usize], comp_of[v as usize]);
        *counts.entry(verdict).or_insert(0) += 1;
    }
    let verdict_counts: Vec<(FilterVerdict, usize)> = FilterVerdict::ALL
        .iter()
        .map(|&v| (v, counts.get(&v).copied().unwrap_or(0)))
        .collect();
    let fallthrough = counts
        .get(&FilterVerdict::Fallthrough)
        .copied()
        .unwrap_or(0);
    let filter_hit_rate = 1.0 - fallthrough as f64 / queries as f64;

    PerfReport {
        quick: opts.quick,
        seed: opts.seed,
        host_cores,
        n,
        m: dag.num_edges(),
        components: oracle.num_components(),
        label_entries: oracle.label_entries(),
        filter_integers: filters.size_in_integers(),
        build_seed_merge_ms,
        build_bitmap_seq_ms,
        build_bitmap_par_ms,
        build_auto_ms,
        build_speedup,
        queries,
        query_threads: threads,
        unfiltered_qps,
        filtered_qps,
        query_speedup: filtered_qps / unfiltered_qps.max(f64::MIN_POSITIVE),
        reachable,
        verdict_counts,
        filter_hit_rate,
    }
}

impl PerfReport {
    /// CI sanity invariants: the filter stack must decide *some*
    /// queries, and the filtered hot path must not be slower than the
    /// unfiltered one on the same workload.
    pub fn check(&self) -> Result<(), String> {
        if self.filter_hit_rate <= 0.0 {
            return Err("filter hit-rate is zero — the pre-filter stack decided nothing".into());
        }
        if self.filtered_qps < self.unfiltered_qps {
            return Err(format!(
                "filtered throughput {:.0} q/s fell below unfiltered {:.0} q/s",
                self.filtered_qps, self.unfiltered_qps
            ));
        }
        Ok(())
    }

    /// The machine-readable report (`BENCH_3.json` schema).
    pub fn to_json(&self) -> String {
        let verdicts = self
            .verdict_counts
            .iter()
            .map(|(v, c)| format!("    \"{}\": {c}", v.name()))
            .collect::<Vec<_>>()
            .join(",\n");
        format!(
            r#"{{
  "bench": "perf",
  "schema": 1,
  "quick": {quick},
  "seed": {seed},
  "host_cores": {host_cores},
  "graph": {{
    "kind": "random_dag",
    "vertices": {n},
    "edges": {m},
    "components": {components}
  }},
  "index": {{
    "label_entries": {label_entries},
    "filter_integers": {filter_integers}
  }},
  "build": {{
    "seed_merge_ms": {seed_merge:.2},
    "bitmap_seq_ms": {bitmap_seq:.2},
    "bitmap_par_ms": {bitmap_par:.2},
    "auto_ms": {auto:.2},
    "speedup_auto_vs_seed": {build_speedup:.3}
  }},
  "query": {{
    "queries": {queries},
    "threads": {threads},
    "reachable": {reachable},
    "unfiltered_qps": {unfiltered_qps:.0},
    "filtered_qps": {filtered_qps:.0},
    "speedup_filtered_vs_unfiltered": {query_speedup:.3}
  }},
  "filters": {{
{verdicts},
    "hit_rate": {hit_rate:.4}
  }}
}}"#,
            quick = self.quick,
            seed = self.seed,
            host_cores = self.host_cores,
            n = self.n,
            m = self.m,
            components = self.components,
            label_entries = self.label_entries,
            filter_integers = self.filter_integers,
            seed_merge = self.build_seed_merge_ms,
            bitmap_seq = self.build_bitmap_seq_ms,
            bitmap_par = self.build_bitmap_par_ms,
            auto = self.build_auto_ms,
            build_speedup = self.build_speedup,
            queries = self.queries,
            threads = self.query_threads,
            reachable = self.reachable,
            unfiltered_qps = self.unfiltered_qps,
            filtered_qps = self.filtered_qps,
            query_speedup = self.query_speedup,
            hit_rate = self.filter_hit_rate,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_report_is_consistent_and_serializes() {
        // Tiny ad-hoc run through the same plumbing (not the quick
        // preset — keep the test fast even in debug builds).
        let report = {
            let mut r = run_perf_tiny_for_tests();
            // Normalize timing noise out of the invariants under test.
            r.build_speedup = r.build_seed_merge_ms / r.build_auto_ms.max(f64::MIN_POSITIVE);
            r
        };
        assert_eq!(report.verdict_counts.len(), FilterVerdict::ALL.len());
        let total: usize = report.verdict_counts.iter().map(|&(_, c)| c).sum();
        assert_eq!(total, report.queries);
        assert!(report.filter_hit_rate > 0.0 && report.filter_hit_rate <= 1.0);
        let json = report.to_json();
        for key in [
            "\"seed_merge_ms\"",
            "\"filtered_qps\"",
            "\"fallthrough\"",
            "\"hit_rate\"",
        ] {
            assert!(json.contains(key), "missing {key} in {json}");
        }
        assert_eq!(
            json.matches('{').count(),
            json.matches('}').count(),
            "unbalanced JSON braces"
        );
    }

    /// A miniature run so the debug-build test suite stays fast.
    fn run_perf_tiny_for_tests() -> PerfReport {
        use hoplite_graph::gen;
        let dag = gen::random_dag(300, 1_200, 5);
        let oracle = Oracle::new(dag.graph());
        let mut rng = gen::Rng::new(11);
        let pairs: Vec<(u32, u32)> = (0..5_000)
            .map(|_| (rng.gen_index(300) as u32, rng.gen_index(300) as u32))
            .collect();
        let (filtered, filtered_ms) = best_ms(1, || oracle.reaches_batch(&pairs, 2));
        let (unfiltered, unfiltered_ms) = best_ms(1, || oracle.reaches_batch_unfiltered(&pairs, 2));
        assert_eq!(filtered, unfiltered);
        let comp_of = &oracle.condensation().comp_of;
        let mut counts: HashMap<FilterVerdict, usize> = HashMap::new();
        for &(u, v) in &pairs {
            *counts
                .entry(
                    oracle
                        .filters()
                        .classify(comp_of[u as usize], comp_of[v as usize]),
                )
                .or_insert(0) += 1;
        }
        let fallthrough = counts
            .get(&FilterVerdict::Fallthrough)
            .copied()
            .unwrap_or(0);
        PerfReport {
            quick: true,
            seed: 5,
            host_cores: 1,
            n: 300,
            m: dag.num_edges(),
            components: oracle.num_components(),
            label_entries: oracle.label_entries(),
            filter_integers: oracle.filters().size_in_integers(),
            build_seed_merge_ms: 1.0,
            build_bitmap_seq_ms: 1.0,
            build_bitmap_par_ms: 1.0,
            build_auto_ms: 1.0,
            build_speedup: 1.0,
            queries: pairs.len(),
            query_threads: 2,
            unfiltered_qps: pairs.len() as f64 / (unfiltered_ms / 1e3).max(f64::MIN_POSITIVE),
            filtered_qps: pairs.len() as f64 / (filtered_ms / 1e3).max(f64::MIN_POSITIVE),
            query_speedup: 1.0,
            reachable: filtered.iter().filter(|&&b| b).count(),
            verdict_counts: FilterVerdict::ALL
                .iter()
                .map(|&v| (v, counts.get(&v).copied().unwrap_or(0)))
                .collect(),
            filter_hit_rate: 1.0 - fallthrough as f64 / pairs.len() as f64,
        }
    }
}
