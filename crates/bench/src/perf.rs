//! `paper perf` — the machine-readable hot-path benchmark.
//!
//! Measures the two overhauled hot paths and emits one JSON object
//! (the `BENCH_*.json` trajectory the ROADMAP calls for):
//!
//! * **Construction** — the seed per-pop sorted-merge build
//!   ([`Pruning::SortedMerge`]) against the rank-bitmap engine,
//!   sequential and N-thread chunked ([`Parallelism::Threads`]) at
//!   several widths, plus the shipped default ([`Parallelism::Auto`]).
//!   Every engine × width is verified to emit **byte-identical
//!   labels** before any number is reported.
//! * **Query** — filtered vs unfiltered batch throughput through
//!   [`Oracle::reaches_batch`] / [`Oracle::reaches_batch_unfiltered`],
//!   per-layer [`FilterVerdict`] hit rates, and the
//!   [`QueryTally`] stage mix (pre-filter / signature cut / merge)
//!   over the same workload.
//! * **Graph families** — beyond the headline `random_dag` workload,
//!   a `deep_chain` bundle (adversarial for the level cut; the
//!   doubled interval cuts carry it) and a `kronecker` R-MAT DAG
//!   (scale-free degrees, the signature layer's best case on raw
//!   labels), each with its own build/query/stage numbers.
//! * **Thread scaling** — build time and batch-query throughput on the
//!   headline index at 1/2/4/8 threads, the curve the CI
//!   `perf-multicore` job records so a parallelism regression shows up
//!   as a flat line instead of staying invisible on 1-core runners.
//! * **Wire** — QPS vs concurrent-connection count through a *real*
//!   reactor-mode [`hoplite_server::Server`] in a child process, driven
//!   by [`hoplite_server::loadgen`] over loopback TCP (child process
//!   because one process's fd budget cannot hold both ends of a
//!   10k-socket sweep), with per-step reply-latency p50/p99/p99.9 from
//!   the loadgen histogram. Skipped (`"wire": null`) when the caller
//!   does not supply a server executable — i.e. under `cargo test`.
//! * **Wire overload** — the same child server rebound with admission
//!   budgets admitting ~1/3 of the offered in-flight load, then driven
//!   flat out: typed shed fraction, goodput, and accepted-reply
//!   latency percentiles, gated so refusals stay typed, shedding stays
//!   bounded, and admitted traffic stays fast. Skipped alongside the
//!   wire stage.
//! * **Metrics overhead** — the filtered batch loop chunked with a
//!   per-chunk [`hoplite_core::Histogram`] record against the same
//!   loop without one; `--check` requires the instrumented loop to
//!   hold ≥ 97% of plain throughput, the bar the observability layer
//!   is sold under.
//! * **Dynamic mixed workload** — a durable
//!   [`hoplite_server::Registry`] namespace (WAL group commit +
//!   checkpoint rotation in a scratch dir) under a mutating writer and
//!   concurrent readers, with a low rebuild threshold forcing several
//!   background reindexes mid-measurement. Reports mutation
//!   throughput (WAL append on the acknowledgement path) and the
//!   read-latency tail; `--check` requires ≥ 1 rebuild and holds the
//!   p99 of reads that *overlapped* a rebuild under 150 ms — readers
//!   answer through the delta overlay (plus group-commit contention),
//!   never behind the reindex itself. The final answers are
//!   cross-checked against BFS ground truth.
//!
//! Every timed path is also cross-checked for answer equivalence, so a
//! fast-but-wrong regression fails the run instead of producing a
//! flattering number. `--check` additionally enforces the CI
//! invariants (nonzero filter hit rate, filtered throughput at least
//! matching unfiltered, `Parallelism::Auto` landing within 10% of
//! the best individual engine on the host — Auto must never pick a
//! loser — plus, on multi-core hosts, parallel build/query at least
//! matching sequential, and a wire-QPS floor with zero error replies
//! on every sweep step).
//!
//! In full (non-`--quick`) mode the report carries a `vs_prev` block
//! comparing the headline numbers against the committed
//! `BENCH_7.json` (same 48k/192k random-DAG workload, same seed).

use std::collections::HashMap;
use std::io::BufRead;
use std::path::PathBuf;
use std::time::Instant;

use hoplite_core::{
    DistributionLabeling, DlConfig, FilterVerdict, Histogram, OpenOptions, Oracle, Parallelism,
    Pruning, QueryTally,
};
use hoplite_graph::{gen, Dag};
use hoplite_server::{loadgen, LoadSpec};

/// Chunked-engine widths timed individually.
const TIMED_WIDTHS: [usize; 2] = [2, 4];
/// Widths whose output is verified byte-identical to the seed engine.
const IDENTITY_WIDTHS: [usize; 5] = [1, 2, 3, 4, 8];
/// Thread counts the scaling stage records build + query numbers for.
const SCALING_WIDTHS: [usize; 4] = [1, 2, 4, 8];

/// Headline numbers of the committed `BENCH_7.json` (48k/192k
/// random-DAG workload, seed 7, full mode) — the `vs_prev` baseline.
const PREV_BENCH: &str = "BENCH_7.json";
const PREV_FILTERED_QPS: f64 = 10_813_448.0;
const PREV_UNFILTERED_QPS: f64 = 9_138_360.0;
const PREV_BUILD_AUTO_MS: f64 = 318.39;

/// Pairs per chunk of the metrics-overhead stage — the granularity a
/// serving tier would realistically record at (one histogram sample
/// per batch frame, never per pair).
const OVERHEAD_CHUNK_PAIRS: usize = 4_096;
/// Minimum instrumented/plain throughput ratio `--check` accepts.
const OVERHEAD_FLOOR: f64 = 0.97;

/// Wire-stage QPS floor per sweep step. Deliberately far below
/// observed numbers (a 1-core box sustains > 160k q/s even at 10k
/// connections) — the gate exists to catch a serving tier that falls
/// off a cliff, not to chase the noise on shared runners.
const WIRE_FLOOR_QUICK_QPS: f64 = 25_000.0;
const WIRE_FLOOR_FULL_QPS: f64 = 50_000.0;

/// Overload drill: offered in-flight load per admission budget. At 3x,
/// a correct limiter sheds roughly two thirds of the offered queries
/// and keeps goodput near the unthrottled ceiling.
const OVERLOAD_FACTOR: usize = 3;

/// Ceiling on the accepted-reply p99 during the overload drill. The
/// child runs a 1 s request deadline, so anything the server *chose*
/// to answer is at most deadline + dispatch old; 5 s only trips when
/// admission control stops protecting the admitted traffic.
const OVERLOAD_ACCEPTED_P99_BOUND_NS: u64 = 5_000_000_000;

/// Options for [`run_perf`], parsed by the `paper` binary.
#[derive(Clone, Debug)]
pub struct PerfOptions {
    /// Small graphs + workloads for CI (seconds, not minutes).
    pub quick: bool,
    /// Generator and workload seed.
    pub seed: u64,
    /// Executable serving the hidden `__wire-server` subcommand (the
    /// `paper` binary passes its own path). `None` skips the wire
    /// stage — the only option under `cargo test`, where the test
    /// binary cannot serve the subcommand.
    pub wire_server: Option<PathBuf>,
}

impl Default for PerfOptions {
    fn default() -> Self {
        PerfOptions {
            quick: false,
            seed: 7,
            wire_server: None,
        }
    }
}

/// Build-engine wall-clock results on the headline workload.
#[derive(Clone, Debug)]
pub struct EngineTimings {
    /// Seed engine: per-pop sorted merge, single thread.
    pub seed_merge_ms: f64,
    /// Rank-bitmap engine, single thread.
    pub bitmap_seq_ms: f64,
    /// Chunked engine per timed width, `(threads, ms)`.
    pub chunked_ms: Vec<(usize, f64)>,
    /// The shipped default (`Parallelism::Auto`).
    pub auto_ms: f64,
    /// Threads `Auto` resolved to on this host.
    pub auto_threads: usize,
}

impl EngineTimings {
    /// Fastest individual engine time — the bar `Auto` is held to.
    pub fn best_ms(&self) -> f64 {
        self.chunked_ms
            .iter()
            .map(|&(_, ms)| ms)
            .fold(self.seed_merge_ms.min(self.bitmap_seq_ms), f64::min)
    }
}

/// Cold-start measurements on the headline index: save → drop → open,
/// HOPL v1 owned deserialize vs HOPL v3 mapped arena.
#[derive(Clone, Debug)]
pub struct ColdStart {
    /// HOPL v1 file size in bytes.
    pub v1_file_bytes: u64,
    /// HOPL v3 arena size in bytes.
    pub v3_file_bytes: u64,
    /// `Oracle::open` on the v1 file: full streaming deserialize plus
    /// filter/signature recomputation (the pre-v3 replica cold start).
    pub owned_open_ms: f64,
    /// `Oracle::open` on the v3 arena: mmap + table validation +
    /// checksum pass, no per-element deserialize, no recomputation.
    pub mapped_open_ms: f64,
    /// Mapped open with `verify: false` — the strictly O(header)
    /// path, for reference.
    pub mapped_unverified_open_ms: f64,
}

impl ColdStart {
    /// `owned_open_ms / mapped_open_ms` — the cold-start win `--check`
    /// holds the arena format to (≥ 10× on the full run).
    pub fn speedup(&self) -> f64 {
        self.owned_open_ms / self.mapped_open_ms.max(f64::MIN_POSITIVE)
    }
}

/// The metrics-overhead stage: the filtered batch hot path chunked at
/// [`OVERHEAD_CHUNK_PAIRS`] pairs, once with a per-chunk
/// [`Histogram`] record and once without, interleaved best-of like the
/// build engines so both see the same machine-load phases.
#[derive(Clone, Debug)]
pub struct MetricsOverhead {
    /// Pairs per instrumented chunk.
    pub chunk_pairs: usize,
    /// Throughput of the plain chunked loop.
    pub plain_qps: f64,
    /// Throughput of the same loop with one histogram record per chunk.
    pub instrumented_qps: f64,
}

impl MetricsOverhead {
    /// `instrumented_qps / plain_qps` — `--check` requires
    /// [`OVERHEAD_FLOOR`].
    pub fn ratio(&self) -> f64 {
        self.instrumented_qps / self.plain_qps.max(f64::MIN_POSITIVE)
    }
}

/// The dynamic mixed read/mutate stage: a durable
/// [`hoplite_server::Registry`] namespace (WAL + checkpoint in a
/// scratch dir) under a writer applying edge mutations while reader
/// threads hammer point queries, with the low rebuild threshold
/// guaranteeing several background reindexes happen *during* the
/// measurement. The headline numbers are mutation throughput (each
/// mutation is logged to the WAL before it is acknowledged) and the
/// read-latency tail — overall and, separately, for reads that
/// overlapped an in-flight rebuild, the tail `--check` holds to
/// [`READ_STALL_BOUND_NS`]: readers must answer through the delta
/// overlay, never block behind the reindex.
#[derive(Clone, Debug)]
pub struct DynamicStage {
    /// Vertices of the seed DAG.
    pub vertices: usize,
    /// Edges of the seed DAG.
    pub seed_edges: usize,
    /// Acknowledged mutations (logged, applied, and visible).
    pub mutations: u64,
    /// Mutation attempts the planner rejected (would-be cycles) —
    /// context, not counted in the throughput.
    pub rejected: u64,
    /// Acknowledged mutations per second, WAL append included.
    pub mutation_qps: f64,
    /// Overlay size that arms a background rebuild.
    pub rebuild_threshold: usize,
    /// Background rebuilds completed during the stage.
    pub rebuilds: u64,
    /// Concurrent reader threads.
    pub reader_threads: usize,
    /// Point queries answered while the writer ran.
    pub reads: u64,
    /// Median read latency in nanoseconds.
    pub read_p50_ns: u64,
    /// 99th-percentile read latency in nanoseconds.
    pub read_p99_ns: u64,
    /// Reads that overlapped an in-flight background rebuild.
    pub reads_during_rebuild: u64,
    /// 99th-percentile latency of those overlapping reads — the
    /// number the non-blocking-rebuild design is sold on.
    pub read_p99_during_rebuild_ns: u64,
    /// Worst overlapping read observed (exact, not bucketed).
    pub read_max_during_rebuild_ns: u64,
}

/// `--check` bound on [`DynamicStage::read_p99_during_rebuild_ns`].
/// Set far above honest contention — WAL group-commit fsyncs hold the
/// namespace lock and share the disk with the checkpoint writer, so a
/// loaded box sees tens of milliseconds at the tail — and far below a
/// reader actually queued behind the reindex (label build plus
/// checkpoint construction is ~700 ms at bench scale): the gate
/// catches a blocking rebuild, not fsync noise.
const READ_STALL_BOUND_NS: u64 = 150_000_000;

/// One graph family's build + query measurements.
#[derive(Clone, Debug)]
pub struct FamilyReport {
    /// Family name (`random_dag`, `deep_chain`, `kronecker`).
    pub kind: &'static str,
    /// Vertices.
    pub n: usize,
    /// Edges.
    pub m: usize,
    /// Condensation components (== `n` on DAG workloads).
    pub components: usize,
    /// Total hop-label entries of the built index.
    pub label_entries: u64,
    /// `Parallelism::Auto` build time.
    pub build_auto_ms: f64,
    /// Query batch size.
    pub queries: usize,
    /// Positive answers (sanity/context).
    pub reachable: usize,
    /// Throughput with the pre-filter stack disabled (signatures on —
    /// they are part of the label store).
    pub unfiltered_qps: f64,
    /// Throughput through the full hot path.
    pub filtered_qps: f64,
    /// Share of queries decided before the label store.
    pub filter_hit_rate: f64,
    /// Where the workload's queries died (filter / signature / merge).
    pub tally: QueryTally,
}

impl FamilyReport {
    /// `filtered_qps / unfiltered_qps`.
    pub fn query_speedup(&self) -> f64 {
        self.filtered_qps / self.unfiltered_qps.max(f64::MIN_POSITIVE)
    }
}

/// One point of the thread-scaling curve on the headline workload.
#[derive(Clone, Debug)]
pub struct ScalingStep {
    /// Threads used for both measurements.
    pub threads: usize,
    /// Rank-bitmap build wall clock at this width (sequential engine
    /// at `threads == 1`, chunked otherwise — the same engines the
    /// construction stage verifies byte-identical).
    pub build_ms: f64,
    /// Filtered batch-query throughput at this width.
    pub query_qps: f64,
}

/// One point of the wire sweep: QPS at a concurrent-connection count.
#[derive(Clone, Debug)]
pub struct WireStep {
    /// Concurrent sockets held open for the whole step.
    pub connections: usize,
    /// Reachability queries per second over the wire.
    pub qps: f64,
    /// Queries answered.
    pub queries: u64,
    /// `ERROR` replies observed (`--check` requires zero).
    pub errors: u64,
    /// Median per-reply wire latency in nanoseconds (pipelined
    /// send-to-reply, from [`hoplite_server::LoadReport::latency`]).
    pub p50_ns: u64,
    /// 99th-percentile reply latency in nanoseconds.
    pub p99_ns: u64,
    /// 99.9th-percentile reply latency in nanoseconds.
    pub p999_ns: u64,
}

/// The wire stage: a reactor-mode server in a child process, swept
/// over connection counts by [`hoplite_server::loadgen`].
#[derive(Clone, Debug)]
pub struct WireReport {
    /// Serve mode of the child (`"reactor"` on unix).
    pub mode: &'static str,
    /// Frames in flight per connection within a round.
    pub pipeline: usize,
    /// Pairs per frame (1 ⇒ single `REACH` frames, the coalescer's
    /// target shape).
    pub batch: usize,
    /// Load-generator worker threads.
    pub loadgen_threads: usize,
    /// One entry per swept connection count, ascending.
    pub steps: Vec<WireStep>,
}

/// The overload drill: the same child-process server rebound with
/// admission budgets sized to admit roughly `1/factor` of the offered
/// in-flight load, then driven flat out. What the report captures is
/// the *degradation shape*: how much was shed (typed, not errored),
/// what goodput the admitted traffic kept, and how fast the accepted
/// replies stayed.
#[derive(Clone, Debug)]
pub struct OverloadStage {
    /// Serve mode of the child (`"reactor"` on unix).
    pub mode: &'static str,
    /// Concurrent sockets held open for the whole drill.
    pub connections: usize,
    /// Frames in flight per connection within a round.
    pub pipeline: usize,
    /// Overload factor: budgets admit ~`1/factor` of the offered load.
    pub factor: usize,
    /// `shed_inflight_hwm` the child ran with.
    pub shed_inflight_hwm: usize,
    /// Queries offered = answered + shed + deadline-refused.
    pub offered: u64,
    /// Queries admitted and answered.
    pub queries: u64,
    /// Queries shed with a typed `OVERLOADED` refusal.
    pub shed: u64,
    /// Queries refused with a typed `DEADLINE_EXCEEDED`.
    pub deadline_exceeded: u64,
    /// Untyped `ERROR` replies (`--check` requires zero).
    pub errors: u64,
    /// `shed / offered`.
    pub shed_fraction: f64,
    /// Answered queries per second — goodput, not offered throughput.
    pub goodput_qps: f64,
    /// Median latency of **accepted** replies (ns).
    pub accepted_p50_ns: u64,
    /// 99th-percentile latency of accepted replies (ns).
    pub accepted_p99_ns: u64,
}

/// One measured suite; serializes with [`PerfReport::to_json`].
#[derive(Clone, Debug)]
pub struct PerfReport {
    /// Options the suite ran with.
    pub quick: bool,
    /// Seed used.
    pub seed: u64,
    /// Host cores visible to the process.
    pub host_cores: usize,
    /// Worker threads used for the batch measurements.
    pub query_threads: usize,
    /// The headline `random_dag` workload.
    pub main: FamilyReport,
    /// Pre-filter footprint in 32-bit integers.
    pub filter_integers: u64,
    /// Rank-band signature footprint in bytes.
    pub signature_bytes: u64,
    /// Build-engine timings on the headline workload.
    pub build: EngineTimings,
    /// Chunked-engine widths verified byte-identical to the seed build.
    pub identity_widths: Vec<usize>,
    /// Count per [`FilterVerdict`] over the headline workload, in
    /// [`FilterVerdict::ALL`] order.
    pub verdict_counts: Vec<(FilterVerdict, usize)>,
    /// The additional graph families (`deep_chain`, `kronecker`).
    pub families: Vec<FamilyReport>,
    /// Cold-start stage on the headline index (owned vs mapped open).
    pub cold_start: ColdStart,
    /// Thread-scaling curve (build + query) on the headline workload,
    /// one step per [`SCALING_WIDTHS`] entry.
    pub scaling: Vec<ScalingStep>,
    /// Instrumented vs plain chunked query throughput on the headline
    /// workload.
    pub metrics_overhead: MetricsOverhead,
    /// Mixed read/mutate stage on a durable dynamic namespace with
    /// background rebuilds in flight.
    pub dynamic: DynamicStage,
    /// Wire sweep through a child-process server; `None` when no
    /// server executable was supplied (e.g. under `cargo test`).
    pub wire: Option<WireReport>,
    /// Overload drill against a budget-limited child server; `None`
    /// when no server executable was supplied.
    pub wire_overload: Option<OverloadStage>,
}

fn time_ms<T>(f: impl FnOnce() -> T) -> (T, f64) {
    let start = Instant::now();
    let value = f();
    (value, start.elapsed().as_secs_f64() * 1e3)
}

/// Times `f` `rounds` times and keeps the fastest (noise floor on
/// shared CI runners).
fn best_ms<T>(rounds: usize, mut f: impl FnMut() -> T) -> (T, f64) {
    let (mut value, mut best) = time_ms(&mut f);
    for _ in 1..rounds {
        let (v, ms) = time_ms(&mut f);
        if ms < best {
            best = ms;
            value = v;
        }
    }
    (value, best)
}

/// Panics unless `dl` and `reference` carry byte-identical labels.
fn assert_identical_labels(
    engine: &str,
    dl: &DistributionLabeling,
    reference: &DistributionLabeling,
) {
    assert_eq!(
        dl.order(),
        reference.order(),
        "engine {engine} used a different order"
    );
    for v in 0..reference.labeling().num_vertices() as u32 {
        assert_eq!(
            dl.labeling().out_label(v),
            reference.labeling().out_label(v),
            "engine {engine} diverged at L_out({v})"
        );
        assert_eq!(
            dl.labeling().in_label(v),
            reference.labeling().in_label(v),
            "engine {engine} diverged at L_in({v})"
        );
    }
}

/// Builds (Auto, timed), queries (filtered + unfiltered, timed), and
/// stage-tallies one family's workload. Cross-checks answer
/// equivalence along the way. Returns the built oracle and the exact
/// pair workload too, so callers needing derived stats (verdict
/// counts, footprints) neither rebuild the index nor re-derive the
/// workload.
fn run_family(
    kind: &'static str,
    dag: &Dag,
    queries: usize,
    rounds: usize,
    threads: usize,
    seed: u64,
) -> (FamilyReport, Oracle, Vec<(u32, u32)>) {
    eprintln!("# perf[{kind}]: building (auto) ...");
    let (oracle, build_auto_ms) = best_ms(rounds, || Oracle::new(dag.graph()));
    let n = dag.num_vertices();
    let mut rng = gen::Rng::new(seed ^ 0x9E37_79B9);
    let pairs: Vec<(u32, u32)> = (0..queries)
        .map(|_| (rng.gen_index(n) as u32, rng.gen_index(n) as u32))
        .collect();
    eprintln!("# perf[{kind}]: timing unfiltered batch ({queries} queries, {threads} threads) ...");
    let (unfiltered, unfiltered_ms) =
        best_ms(rounds, || oracle.reaches_batch_unfiltered(&pairs, threads));
    eprintln!("# perf[{kind}]: timing filtered batch ...");
    let (filtered, filtered_ms) = best_ms(rounds, || oracle.reaches_batch(&pairs, threads));
    assert_eq!(
        filtered, unfiltered,
        "{kind}: filtered and unfiltered batch answers diverged"
    );
    // Stage mix, off the timed path; answers re-checked once more.
    let (tallied, tally) = oracle.reaches_batch_tallied(&pairs, threads);
    assert_eq!(tallied, filtered, "{kind}: tallied answers diverged");
    assert_eq!(tally.total(), queries as u64);
    let reachable = filtered.iter().filter(|&&b| b).count();
    let report = FamilyReport {
        kind,
        n,
        m: dag.num_edges(),
        components: oracle.num_components(),
        label_entries: oracle.label_entries(),
        build_auto_ms,
        queries,
        reachable,
        unfiltered_qps: queries as f64 / (unfiltered_ms / 1e3).max(f64::MIN_POSITIVE),
        filtered_qps: queries as f64 / (filtered_ms / 1e3).max(f64::MIN_POSITIVE),
        filter_hit_rate: tally.filter_decided as f64 / queries.max(1) as f64,
        tally,
    };
    (report, oracle, pairs)
}

/// The cold-start stage: persist the built index in both formats,
/// drop every in-memory structure, and time `Oracle::open` on each —
/// v1 pays the full owned deserialize plus filter/signature
/// recomputation, v3 maps the arena. Answers of both reopened oracles
/// are cross-checked against the builder's before any number is
/// reported; the temp files are removed either way.
fn run_cold_start(oracle: &Oracle, pairs: &[(u32, u32)], rounds: usize, seed: u64) -> ColdStart {
    // The stamp carries a process-wide counter besides pid + seed:
    // parallel tests in one process call this with the same seed and
    // must not race on the same temp files.
    static CALL: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
    let call = CALL.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
    let dir = std::env::temp_dir();
    let stamp = format!("hoplite-perf-{}-{seed}-{call}", std::process::id());
    let v1_path = dir.join(format!("{stamp}.hopl"));
    let v3_path = dir.join(format!("{stamp}.hopl3"));
    let mut v1 = Vec::new();
    oracle.save(&mut v1).expect("serialize v1");
    let mut v3 = Vec::new();
    oracle.save_arena(&mut v3).expect("serialize v3");
    std::fs::write(&v1_path, &v1).expect("write v1 index");
    std::fs::write(&v3_path, &v3).expect("write v3 arena");
    let (v1_file_bytes, v3_file_bytes) = (v1.len() as u64, v3.len() as u64);
    drop((v1, v3));

    // Opens are fast; extra rounds cost little and steady the ratio
    // the --check gate depends on.
    let opens = rounds.max(3);
    eprintln!("# perf[cold]: timing owned (v1) vs mapped (v3) open ...");
    let (owned, owned_open_ms) = best_ms(opens, || Oracle::open(&v1_path).expect("owned open"));
    let (mapped, mapped_open_ms) = best_ms(opens, || Oracle::open(&v3_path).expect("mapped open"));
    let (unverified, mapped_unverified_open_ms) = best_ms(opens, || {
        Oracle::open_with(
            &v3_path,
            &OpenOptions {
                verify: false,
                ..OpenOptions::default()
            },
        )
        .expect("unverified mapped open")
    });
    std::fs::remove_file(&v1_path).ok();
    std::fs::remove_file(&v3_path).ok();

    let probe = &pairs[..pairs.len().min(20_000)];
    let want = oracle.reaches_batch(probe, 1);
    assert_eq!(
        owned.reaches_batch(probe, 1),
        want,
        "owned-open answers diverged from the built index"
    );
    assert_eq!(
        mapped.reaches_batch(probe, 1),
        want,
        "mapped-open answers diverged from the built index"
    );
    assert_eq!(
        unverified.reaches_batch(probe, 1),
        want,
        "unverified-open answers diverged from the built index"
    );

    ColdStart {
        v1_file_bytes,
        v3_file_bytes,
        owned_open_ms,
        mapped_open_ms,
        mapped_unverified_open_ms,
    }
}

/// The metrics-overhead stage. Both loops chunk identically (the
/// chunking itself is not the cost under test); the instrumented one
/// additionally records each chunk's wall clock into a lock-free
/// [`Histogram`] — exactly what the serving tier's query-path
/// observability does per frame. Rounds interleave plain and
/// instrumented so machine-load phases hit both equally.
fn run_metrics_overhead(
    oracle: &Oracle,
    pairs: &[(u32, u32)],
    threads: usize,
    rounds: usize,
) -> MetricsOverhead {
    eprintln!("# perf[metrics]: timing plain vs instrumented chunked filtered batch ...");
    let hist = Histogram::new();
    let plain_loop = || {
        let mut positives = 0usize;
        for chunk in pairs.chunks(OVERHEAD_CHUNK_PAIRS) {
            positives += oracle
                .reaches_batch(chunk, threads)
                .iter()
                .filter(|&&b| b)
                .count();
        }
        positives
    };
    let instrumented_loop = || {
        let mut positives = 0usize;
        for chunk in pairs.chunks(OVERHEAD_CHUNK_PAIRS) {
            let started = Instant::now();
            positives += oracle
                .reaches_batch(chunk, threads)
                .iter()
                .filter(|&&b| b)
                .count();
            hist.record(started.elapsed().as_nanos() as u64);
        }
        positives
    };
    let mut plain_ms = f64::INFINITY;
    let mut instrumented_ms = f64::INFINITY;
    let mut want: Option<usize> = None;
    // The measured effect is tiny (one clock pair + one record per
    // 4096-pair chunk), so the gate is noise-bound: interleave more
    // rounds than the other stages and keep the best of each side.
    for _ in 0..rounds.max(7) {
        let (positives, ms) = time_ms(plain_loop);
        plain_ms = plain_ms.min(ms);
        let want = *want.get_or_insert(positives);
        assert_eq!(positives, want, "plain chunked loop changed the answers");
        let (positives, ms) = time_ms(instrumented_loop);
        instrumented_ms = instrumented_ms.min(ms);
        assert_eq!(
            positives, want,
            "instrumented chunked loop changed the answers"
        );
    }
    MetricsOverhead {
        chunk_pairs: OVERHEAD_CHUNK_PAIRS,
        plain_qps: pairs.len() as f64 / (plain_ms / 1e3).max(f64::MIN_POSITIVE),
        instrumented_qps: pairs.len() as f64 / (instrumented_ms / 1e3).max(f64::MIN_POSITIVE),
    }
}

/// The dynamic mixed stage at explicit sizes (the tiny test harness
/// shrinks everything; [`run_perf`] picks bench scale).
fn run_dynamic(
    n: usize,
    m: usize,
    target_mutations: u64,
    rebuild_threshold: usize,
    reader_threads: usize,
    seed: u64,
) -> DynamicStage {
    use hoplite_server::Registry;
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::Arc;

    eprintln!(
        "# perf[dynamic]: {target_mutations} mutations over random_dag(n={n}, m={m}), \
         rebuild threshold {rebuild_threshold}, {reader_threads} reader thread(s) ..."
    );
    let dag = gen::random_dag(n, m, seed);
    // Any edge consistent with one fixed topological order of the seed
    // keeps the graph acyclic no matter how many are inserted, so
    // orienting inserts by seed topo rank makes most attempts land;
    // the deliberately unoriented minority exercises the planner's
    // cycle rejection (a real mixed workload has both).
    let topo_pos: Vec<u32> = (0..n as u32).map(|v| dag.topo_pos(v)).collect();
    let mut truth: std::collections::BTreeSet<(u32, u32)> = dag.graph().edges().collect();

    let wal_root = std::env::temp_dir().join(format!(
        "hoplite-perf-dynamic-{}-{seed}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&wal_root);
    let registry = Arc::new(Registry::new());
    registry
        .open_durable(
            "dyn",
            dag,
            &wal_root,
            hoplite_core::WalConfig::default(),
            Some(rebuild_threshold),
        )
        .expect("open durable bench namespace");

    let stop = Arc::new(AtomicBool::new(false));
    let readers: Vec<_> = (0..reader_threads)
        .map(|t| {
            let registry = Arc::clone(&registry);
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                let handle = registry.get("dyn").expect("namespace registered");
                let mut all = hoplite_core::HistogramSnapshot::empty();
                let mut during = hoplite_core::HistogramSnapshot::empty();
                let mut state = seed ^ (0xD1E5_u64 << t);
                while !stop.load(Ordering::Relaxed) {
                    state ^= state << 13;
                    state ^= state >> 7;
                    state ^= state << 17;
                    let u = (state % n as u64) as u32;
                    let v = ((state >> 32) % n as u64) as u32;
                    let in_flight_before = handle.rebuild_in_flight();
                    let started = Instant::now();
                    handle.reach(u, v).expect("concurrent read");
                    let ns = started.elapsed().as_nanos() as u64;
                    all.record(ns);
                    if in_flight_before || handle.rebuild_in_flight() {
                        during.record(ns);
                    }
                }
                (all, during)
            })
        })
        .collect();

    let handle = registry.get("dyn").expect("namespace registered");
    let mut state = seed ^ 0xBEEF_CAFE;
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    let mut inserted: Vec<(u32, u32)> = Vec::new();
    let mut acknowledged = 0u64;
    let mut rejected = 0u64;
    let started = Instant::now();
    while acknowledged < target_mutations {
        let r = next();
        if r % 8 == 7 && !inserted.is_empty() {
            // Remove one of our own inserts (always present, always
            // acknowledged).
            let (u, v) = inserted.swap_remove((next() % inserted.len() as u64) as usize);
            handle.remove_edge("dyn", u, v).expect("remove");
            truth.remove(&(u, v));
            acknowledged += 1;
            continue;
        }
        let a = (r % n as u64) as u32;
        let b = ((r >> 32) % n as u64) as u32;
        if a == b {
            continue;
        }
        // 7 in 8 inserts are topo-oriented (guaranteed acyclic); the
        // rest keep the random orientation and may be rejected.
        let (u, v) = if r % 16 < 14 && topo_pos[a as usize] > topo_pos[b as usize] {
            (b, a)
        } else {
            (a, b)
        };
        match handle.add_edge("dyn", u, v) {
            Ok(()) => {
                if truth.insert((u, v)) {
                    inserted.push((u, v));
                }
                acknowledged += 1;
            }
            Err(_) => rejected += 1,
        }
    }
    let mutate_secs = started.elapsed().as_secs_f64();
    handle.quiesce("dyn");

    stop.store(true, Ordering::Relaxed);
    let mut all = hoplite_core::HistogramSnapshot::empty();
    let mut during = hoplite_core::HistogramSnapshot::empty();
    for r in readers {
        let (a, d) = r.join().expect("reader thread");
        all.merge(&a);
        during.merge(&d);
    }

    // Cross-check: the served answers must equal BFS over the
    // acknowledged edge set — a fast-but-wrong dynamic path fails the
    // run instead of producing a flattering number.
    let edges: Vec<(u32, u32)> = truth.iter().copied().collect();
    let final_graph =
        hoplite_graph::DiGraph::from_edges(n, &edges).expect("acknowledged set stayed acyclic");
    for _ in 0..200 {
        let r = next();
        let u = (r % n as u64) as u32;
        let v = ((r >> 32) % n as u64) as u32;
        assert_eq!(
            handle.reach(u, v).expect("verify read"),
            hoplite_graph::traversal::reaches(&final_graph, u, v),
            "dynamic stage diverged from BFS at ({u}, {v})"
        );
    }

    let rebuilds = handle.rebuilds_completed();
    handle.sync_durability().expect("final WAL sync");
    drop(handle);
    drop(registry);
    let _ = std::fs::remove_dir_all(&wal_root);

    DynamicStage {
        vertices: n,
        seed_edges: m,
        mutations: acknowledged,
        rejected,
        mutation_qps: acknowledged as f64 / mutate_secs.max(f64::MIN_POSITIVE),
        rebuild_threshold,
        rebuilds,
        reader_threads,
        reads: all.count(),
        read_p50_ns: all.p50(),
        read_p99_ns: all.p99(),
        reads_during_rebuild: during.count(),
        read_p99_during_rebuild_ns: during.p99(),
        read_max_during_rebuild_ns: during.max(),
    }
}

/// Builds the workloads, measures every engine and both query paths,
/// and cross-checks equivalence along the way.
///
/// # Panics
/// Panics if any engine or query path disagrees with the reference
/// answers — a perf report for a wrong oracle is worthless.
pub fn run_perf(opts: &PerfOptions) -> PerfReport {
    // The headline workload: Erdős–Rényi at bench scale (same shape
    // and seed as BENCH_4, so vs_prev compares like with like). The
    // quick variant keeps CI in seconds while exercising the identical
    // code paths.
    let (n, m, queries, rounds) = if opts.quick {
        (4_000, 16_000, 200_000, 2)
    } else {
        (48_000, 192_000, 1_000_000, 2)
    };
    let host_cores = std::thread::available_parallelism().map_or(1, |p| p.get());
    eprintln!(
        "# perf: generating random_dag(n={n}, m={m}, seed={})",
        opts.seed
    );
    let dag = gen::random_dag(n, m, opts.seed);

    // --- Construction engines. ------------------------------------
    let dag_ref = &dag;
    let build = |pruning: Pruning, parallelism: Parallelism| {
        let cfg = DlConfig {
            pruning,
            parallelism,
            ..DlConfig::default()
        };
        move || DistributionLabeling::build(dag_ref, &cfg)
    };
    // The engines are timed round-robin (engine-major inside each
    // round, best-of across rounds) rather than engine-by-engine:
    // on shared hosts machine-load phases last seconds, and measuring
    // each engine in its own phase can skew identical code paths by
    // tens of percent — interleaving exposes every engine to the same
    // phases, which the Auto-vs-best `--check` guard depends on.
    let mut seed_merge_ms = f64::INFINITY;
    let mut bitmap_seq_ms = f64::INFINITY;
    let mut chunked_ms: Vec<(usize, f64)> =
        TIMED_WIDTHS.iter().map(|&w| (w, f64::INFINITY)).collect();
    let mut auto_ms = f64::INFINITY;
    let mut dl_seed: Option<DistributionLabeling> = None;
    for round in 0..rounds {
        eprintln!("# perf: timing build engines, round {} ...", round + 1);
        let (dl, ms) = time_ms(build(Pruning::SortedMerge, Parallelism::Sequential));
        seed_merge_ms = seed_merge_ms.min(ms);
        let dl_seed = dl_seed.get_or_insert(dl);
        let (dl, ms) = time_ms(build(Pruning::RankBitmap, Parallelism::Sequential));
        bitmap_seq_ms = bitmap_seq_ms.min(ms);
        if round == 0 {
            assert_identical_labels("bitmap-seq", &dl, dl_seed);
        }
        for slot in chunked_ms.iter_mut() {
            let (dl, ms) = time_ms(build(Pruning::RankBitmap, Parallelism::Threads(slot.0)));
            slot.1 = slot.1.min(ms);
            if round == 0 {
                assert_identical_labels(&format!("chunked-t{}", slot.0), &dl, dl_seed);
            }
        }
        let (dl, ms) = time_ms(build(Pruning::RankBitmap, Parallelism::Auto));
        auto_ms = auto_ms.min(ms);
        if round == 0 {
            assert_identical_labels("auto", &dl, dl_seed);
        }
    }
    let dl_seed = dl_seed.expect("at least one round ran");
    // Build leg of the thread-scaling curve. Widths 1/2/4 reuse the
    // numbers measured above (1 thread == the sequential rank-bitmap
    // engine); widths not already timed are measured — and label
    // identity-checked — here.
    let mut scaling_build_ms = Vec::with_capacity(SCALING_WIDTHS.len());
    let mut scaling_verified: Vec<usize> = Vec::new();
    for &t in &SCALING_WIDTHS {
        let ms = if t == 1 {
            bitmap_seq_ms
        } else if let Some(&(_, ms)) = chunked_ms.iter().find(|&&(w, _)| w == t) {
            ms
        } else {
            eprintln!("# perf[scaling]: timing rank-bitmap build at {t} threads ...");
            let (dl, ms) = best_ms(rounds, build(Pruning::RankBitmap, Parallelism::Threads(t)));
            assert_identical_labels(&format!("chunked-t{t}"), &dl, &dl_seed);
            scaling_verified.push(t);
            ms
        };
        scaling_build_ms.push(ms);
    }
    // The full identity matrix the acceptance criteria call for:
    // every tested chunked width emits byte-identical labels.
    let mut identity_widths = Vec::new();
    for width in IDENTITY_WIDTHS {
        if TIMED_WIDTHS.contains(&width) || scaling_verified.contains(&width) {
            identity_widths.push(width); // already built and verified
            continue;
        }
        eprintln!("# perf: verifying chunked label identity at {width} threads ...");
        let dl = build(Pruning::RankBitmap, Parallelism::Threads(width))();
        assert_identical_labels(&format!("chunked-t{width}"), &dl, &dl_seed);
        identity_widths.push(width);
    }
    let build = EngineTimings {
        seed_merge_ms,
        bitmap_seq_ms,
        chunked_ms,
        auto_ms,
        auto_threads: Parallelism::Auto.resolve(n),
    };

    // --- Headline query paths. -------------------------------------
    let threads = host_cores;
    let (main, oracle, pairs) = run_family("random_dag", &dag, queries, rounds, threads, opts.seed);

    // --- Per-layer verdicts (off the timed path), over the *same*
    // pair workload the throughput and stage numbers came from.
    // Oracle filters are projected into original-vertex space, so
    // classification takes original ids directly.
    let filters = oracle.filters();
    let mut counts: HashMap<FilterVerdict, usize> = HashMap::new();
    for &(u, v) in &pairs {
        *counts.entry(filters.classify(u, v)).or_insert(0) += 1;
    }
    let verdict_counts: Vec<(FilterVerdict, usize)> = FilterVerdict::ALL
        .iter()
        .map(|&v| (v, counts.get(&v).copied().unwrap_or(0)))
        .collect();

    // --- The additional graph families. -----------------------------
    let (chain_n, chain_chains, chain_cross, krn_scale, krn_edges) = if opts.quick {
        (4_000, 20, 400, 12, 16_000)
    } else {
        (48_000, 48, 4_800, 16, 192_000)
    };
    eprintln!("# perf: generating deep_chain_dag(n={chain_n}, chains={chain_chains}) ...");
    let chain = gen::deep_chain_dag(chain_n, chain_chains, chain_cross, opts.seed);
    eprintln!("# perf: generating kronecker_dag(scale={krn_scale}, edges={krn_edges}) ...");
    let kron = gen::kronecker_dag(krn_scale, krn_edges, opts.seed);
    let families = vec![
        run_family("deep_chain", &chain, queries, rounds, threads, opts.seed).0,
        run_family("kronecker", &kron, queries, rounds, threads, opts.seed).0,
    ];

    // --- Cold start: save → drop → open, owned vs mapped. -----------
    let cold_start = run_cold_start(&oracle, &pairs, rounds, opts.seed);

    // --- Query leg of the thread-scaling curve, same index + pairs
    // as the headline numbers so the curve is comparable.
    let mut scaling = Vec::with_capacity(SCALING_WIDTHS.len());
    for (&t, &build_ms) in SCALING_WIDTHS.iter().zip(&scaling_build_ms) {
        eprintln!("# perf[scaling]: filtered batch at {t} thread(s) ...");
        let (answers, ms) = best_ms(rounds, || oracle.reaches_batch(&pairs, t));
        assert_eq!(
            answers.iter().filter(|&&b| b).count(),
            main.reachable,
            "scaling run at {t} threads changed the answers"
        );
        scaling.push(ScalingStep {
            threads: t,
            build_ms,
            query_qps: queries as f64 / (ms / 1e3).max(f64::MIN_POSITIVE),
        });
    }

    // --- Metrics overhead on the same index + pairs. ----------------
    let metrics_overhead = run_metrics_overhead(&oracle, &pairs, threads, rounds);

    // --- Dynamic mixed read/mutate stage (durable namespace, WAL +
    // background rebuilds under concurrent readers). -----------------
    let dynamic = if opts.quick {
        run_dynamic(
            12_000,
            48_000,
            2_000,
            400,
            (host_cores - 1).clamp(1, 2),
            opts.seed,
        )
    } else {
        run_dynamic(n, m, 10_000, 1_500, (host_cores - 1).clamp(1, 3), opts.seed)
    };

    // --- Wire sweep through a child-process reactor server. ---------
    let wire = opts.wire_server.as_deref().map(|exe| {
        run_wire(exe, opts.quick, opts.seed, host_cores)
            .unwrap_or_else(|e| panic!("wire stage failed: {e}"))
    });

    // --- Overload drill against a budget-limited child server. ------
    let wire_overload = opts.wire_server.as_deref().map(|exe| {
        run_overload(exe, opts.quick, opts.seed, host_cores)
            .unwrap_or_else(|e| panic!("overload stage failed: {e}"))
    });

    PerfReport {
        quick: opts.quick,
        seed: opts.seed,
        host_cores,
        query_threads: threads,
        main,
        filter_integers: filters.size_in_integers(),
        signature_bytes: oracle.inner().labeling().signature_bytes(),
        build,
        identity_widths,
        verdict_counts,
        families,
        cold_start,
        scaling,
        metrics_overhead,
        dynamic,
        wire,
        wire_overload,
    }
}

/// The wire stage. Spawns `server_exe __wire-server <n> <m> <seed>` —
/// the `paper` binary's hidden subcommand that builds an oracle over
/// the same `random_dag` family, binds a reactor-mode server on an
/// ephemeral loopback port, prints `ADDR <addr>`, and serves until its
/// stdin closes. A child process rather than an in-process server
/// because the full sweep holds 10k concurrent connections: each
/// connection costs one fd on *both* ends, and splitting the ends
/// across two processes gives each its own fd budget. Then sweeps
/// [`loadgen::run_load`] over the connection counts.
fn run_wire(
    server_exe: &std::path::Path,
    quick: bool,
    seed: u64,
    host_cores: usize,
) -> Result<WireReport, String> {
    use std::process::{Command, Stdio};
    // Quick mode stays under the 1024-fd default soft limit of stock
    // CI runners; the full sweep assumes `ulimit -n` has been raised
    // (the perf workflow does so explicitly).
    let (n, m) = if quick {
        (20_000, 60_000)
    } else {
        (48_000, 192_000)
    };
    let (sweep, queries_per_step): (&[usize], u64) = if quick {
        (&[64, 512], 100_000)
    } else {
        (&[100, 1_000, 10_000], 300_000)
    };
    let pipeline = 8;
    let loadgen_threads = host_cores.clamp(1, 8);

    eprintln!("# perf[wire]: spawning reactor server ({n} vertices, {m} edges) ...");
    let mut child = Command::new(server_exe)
        .arg("__wire-server")
        .arg(n.to_string())
        .arg(m.to_string())
        .arg(seed.to_string())
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::inherit())
        .spawn()
        .map_err(|e| format!("spawn {}: {e}", server_exe.display()))?;
    let result = (|| {
        let stdout = child.stdout.take().expect("child stdout is piped");
        let mut line = String::new();
        std::io::BufReader::new(stdout)
            .read_line(&mut line)
            .map_err(|e| format!("read server address: {e}"))?;
        let addr = line
            .trim()
            .strip_prefix("ADDR ")
            .ok_or_else(|| format!("wire server said {line:?}, expected \"ADDR <addr>\""))?
            .parse()
            .map_err(|e| format!("parse server address {line:?}: {e}"))?;
        let mut steps = Vec::with_capacity(sweep.len());
        for &connections in sweep {
            eprintln!("# perf[wire]: sweeping {connections} connections ...");
            let report = loadgen::run_load(&LoadSpec {
                addr,
                ns: "bench".to_string(),
                vertices: n as u32,
                connections,
                threads: loadgen_threads,
                pipeline_depth: pipeline,
                batch: 1,
                queries: queries_per_step,
                seed,
            })
            .map_err(|e| format!("wire sweep at {connections} connections: {e}"))?;
            steps.push(WireStep {
                connections,
                qps: report.qps(),
                queries: report.queries,
                errors: report.errors,
                p50_ns: report.latency.p50(),
                p99_ns: report.latency.p99(),
                p999_ns: report.latency.p999(),
            });
        }
        Ok(WireReport {
            mode: "reactor",
            pipeline,
            batch: 1,
            loadgen_threads,
            steps,
        })
    })();
    // Closing stdin is the shutdown signal; on the error path make
    // sure the child dies rather than outliving the benchmark.
    drop(child.stdin.take());
    if result.is_err() {
        let _ = child.kill();
    }
    let _ = child.wait();
    result
}

/// The overload drill. Spawns the same `__wire-server` child as the
/// wire sweep but with admission budgets (`shed_inflight_hwm`,
/// `shed_coalesced_pairs`, a 1 s request deadline) sized to admit
/// roughly `1/OVERLOAD_FACTOR` of the offered in-flight load, then
/// drives it flat out and reports the degradation shape: typed shed
/// fraction, goodput, and accepted-reply percentiles.
fn run_overload(
    server_exe: &std::path::Path,
    quick: bool,
    seed: u64,
    host_cores: usize,
) -> Result<OverloadStage, String> {
    use std::process::{Command, Stdio};
    let (n, m) = if quick {
        (20_000, 60_000)
    } else {
        (48_000, 192_000)
    };
    let (connections, queries) = if quick {
        (64usize, 80_000u64)
    } else {
        (256usize, 300_000u64)
    };
    let pipeline = 8usize;
    let factor = OVERLOAD_FACTOR;
    let inflight = connections * pipeline;
    let hwm = (inflight / factor).max(1);
    let loadgen_threads = host_cores.clamp(1, 8);

    eprintln!(
        "# perf[overload]: spawning budget-limited server \
         (hwm {hwm}, {factor}x offered in-flight {inflight}) ..."
    );
    let mut child = Command::new(server_exe)
        .arg("__wire-server")
        .arg(n.to_string())
        .arg(m.to_string())
        .arg(seed.to_string())
        .arg(hwm.to_string())
        .arg(hwm.to_string()) // pairs budget == hwm at batch=1
        .arg("1000") // request deadline, ms
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::inherit())
        .spawn()
        .map_err(|e| format!("spawn {}: {e}", server_exe.display()))?;
    let result = (|| {
        let stdout = child.stdout.take().expect("child stdout is piped");
        let mut line = String::new();
        std::io::BufReader::new(stdout)
            .read_line(&mut line)
            .map_err(|e| format!("read server address: {e}"))?;
        let addr = line
            .trim()
            .strip_prefix("ADDR ")
            .ok_or_else(|| format!("wire server said {line:?}, expected \"ADDR <addr>\""))?
            .parse()
            .map_err(|e| format!("parse server address {line:?}: {e}"))?;
        let report = loadgen::run_load(&LoadSpec {
            addr,
            ns: "bench".to_string(),
            vertices: n as u32,
            connections,
            threads: loadgen_threads,
            pipeline_depth: pipeline,
            batch: 1,
            queries,
            seed: seed ^ 0x0BAD,
        })
        .map_err(|e| format!("overload drill: {e}"))?;
        let offered = report.queries + report.shed + report.deadline_exceeded;
        Ok(OverloadStage {
            mode: if cfg!(unix) { "reactor" } else { "thread-pool" },
            connections,
            pipeline,
            factor,
            shed_inflight_hwm: hwm,
            offered,
            queries: report.queries,
            shed: report.shed,
            deadline_exceeded: report.deadline_exceeded,
            errors: report.errors,
            shed_fraction: report.shed_fraction(),
            goodput_qps: report.qps(),
            accepted_p50_ns: report.latency.p50(),
            accepted_p99_ns: report.latency.p99(),
        })
    })();
    drop(child.stdin.take());
    if result.is_err() {
        let _ = child.kill();
    }
    let _ = child.wait();
    result
}

impl PerfReport {
    /// `seed_merge_ms / auto_ms` on the headline workload.
    pub fn build_speedup(&self) -> f64 {
        self.build.seed_merge_ms / self.build.auto_ms.max(f64::MIN_POSITIVE)
    }

    /// CI sanity invariants: the filter stack must decide *some*
    /// queries, the filtered hot path must not be slower than the
    /// unfiltered one, and `Parallelism::Auto` must land within 10% of
    /// the best individual engine (plus a small absolute slack so
    /// quick-mode timing noise on tiny graphs cannot flake CI).
    pub fn check(&self) -> Result<(), String> {
        if self.main.filter_hit_rate <= 0.0 {
            return Err("filter hit-rate is zero — the pre-filter stack decided nothing".into());
        }
        // 5% tolerance: on shared CI hosts the two timed runs can land
        // in different machine-load phases; the invariant is "the
        // filter stack is not a pessimization", not an exact ordering
        // of two noisy samples.
        if self.main.filtered_qps < self.main.unfiltered_qps * 0.95 {
            return Err(format!(
                "filtered throughput {:.0} q/s fell below unfiltered {:.0} q/s",
                self.main.filtered_qps, self.main.unfiltered_qps
            ));
        }
        let best = self.build.best_ms();
        let bar = best * 1.10 + 25.0;
        if self.build.auto_ms > bar {
            return Err(format!(
                "Parallelism::Auto picked a loser: {:.1} ms vs best engine {:.1} ms \
                 (allowed {:.1} ms)",
                self.build.auto_ms, best, bar
            ));
        }
        for f in std::iter::once(&self.main).chain(&self.families) {
            if f.tally.total() != f.queries as u64 {
                return Err(format!(
                    "{}: stage tally accounts {} of {} queries",
                    f.kind,
                    f.tally.total(),
                    f.queries
                ));
            }
        }
        // The arena's reason to exist: on the full run, a mapped open
        // must beat the owned deserialize by an order of magnitude.
        // (Quick mode's index is small enough that constant costs blur
        // the ratio, so the gate binds on full runs only.)
        if !self.quick && self.cold_start.speedup() < 10.0 {
            return Err(format!(
                "mapped open is only {:.1}x faster than owned deserialize \
                 ({:.2} ms vs {:.2} ms); the v3 arena promises >= 10x",
                self.cold_start.speedup(),
                self.cold_start.mapped_open_ms,
                self.cold_start.owned_open_ms
            ));
        }
        // Scaling sanity: on a multi-core host, the best parallel
        // width must at least match sequential (same 5% / small-ms
        // noise allowances as above). On a 1-core host extra threads
        // are pure overhead, so the curve is recorded but not gated —
        // the CI `perf-multicore` job is where this gate has teeth.
        if self.host_cores >= 2 {
            let seq = self
                .scaling
                .iter()
                .find(|s| s.threads == 1)
                .ok_or("scaling curve is missing the 1-thread point")?;
            let parallel = self.scaling.iter().filter(|s| s.threads > 1);
            let best_qps = parallel.clone().map(|s| s.query_qps).fold(0.0, f64::max);
            if best_qps < seq.query_qps * 0.95 {
                return Err(format!(
                    "parallel batch query never matched sequential: best {:.0} q/s \
                     vs 1-thread {:.0} q/s",
                    best_qps, seq.query_qps
                ));
            }
            let best_build = parallel.map(|s| s.build_ms).fold(f64::INFINITY, f64::min);
            if best_build > seq.build_ms * 1.05 + 25.0 {
                return Err(format!(
                    "parallel build never matched sequential: best {:.1} ms \
                     vs 1-thread {:.1} ms",
                    best_build, seq.build_ms
                ));
            }
        }
        // The observability layer's headline promise: one histogram
        // record per batch chunk must not cost measurable throughput.
        // Both loops are interleaved best-of-N over the identical
        // code path, so a miss here is overhead, not scheduler noise.
        if self.metrics_overhead.ratio() < OVERHEAD_FLOOR {
            return Err(format!(
                "instrumented chunked query throughput {:.0} q/s is below {:.0}% of plain \
                 {:.0} q/s",
                self.metrics_overhead.instrumented_qps,
                OVERHEAD_FLOOR * 100.0,
                self.metrics_overhead.plain_qps
            ));
        }
        // The non-blocking-rebuild promise: the stage must have seen
        // at least one background reindex, and reads overlapping it
        // must never have queued behind the rebuild.
        if self.dynamic.rebuilds < 1 {
            return Err(
                "dynamic stage observed no background rebuild — the threshold never fired".into(),
            );
        }
        if self.dynamic.reads_during_rebuild > 0
            && self.dynamic.read_p99_during_rebuild_ns > READ_STALL_BOUND_NS
        {
            return Err(format!(
                "reads during background rebuild stalled: p99 {:.2} ms exceeds the \
                 {:.0} ms bound (readers must answer through the overlay, not wait \
                 for the reindex)",
                self.dynamic.read_p99_during_rebuild_ns as f64 / 1e6,
                READ_STALL_BOUND_NS as f64 / 1e6
            ));
        }
        // Wire floor: every sweep step — including the 10k-socket one —
        // must clear a deliberately low QPS bar with zero error
        // replies. Catches a serving tier that collapses or starts
        // refusing under connection pressure.
        if let Some(wire) = &self.wire {
            let floor = if self.quick {
                WIRE_FLOOR_QUICK_QPS
            } else {
                WIRE_FLOOR_FULL_QPS
            };
            for step in &wire.steps {
                if step.errors > 0 {
                    return Err(format!(
                        "wire sweep at {} connections saw {} error replies",
                        step.connections, step.errors
                    ));
                }
                if step.qps < floor {
                    return Err(format!(
                        "wire sweep at {} connections fell to {:.0} q/s \
                         (floor {:.0} q/s)",
                        step.connections, step.qps, floor
                    ));
                }
            }
        }
        // Overload drill: the shed rate at `OVERLOAD_FACTOR`x load must
        // be nonzero (the limiter is on) but bounded (the server still
        // does useful work), every refusal must be typed (zero untyped
        // errors), and the traffic the server *chose* to admit must
        // have stayed fast.
        if let Some(ov) = &self.wire_overload {
            if ov.errors > 0 {
                return Err(format!(
                    "overload drill saw {} untyped error replies — refusals must be typed",
                    ov.errors
                ));
            }
            if ov.shed == 0 {
                return Err(format!(
                    "overload drill at {}x the admission budget never shed",
                    ov.factor
                ));
            }
            if ov.shed_fraction >= 0.95 {
                return Err(format!(
                    "overload drill shed {:.1}% — the server did almost no useful work",
                    ov.shed_fraction * 100.0
                ));
            }
            if ov.queries == 0 {
                return Err("overload drill admitted zero queries".into());
            }
            if ov.accepted_p99_ns > OVERLOAD_ACCEPTED_P99_BOUND_NS {
                return Err(format!(
                    "accepted-reply p99 {:.1} ms exceeds the {:.0} ms overload bound — \
                     admission control stopped protecting admitted traffic",
                    ov.accepted_p99_ns as f64 / 1e6,
                    OVERLOAD_ACCEPTED_P99_BOUND_NS as f64 / 1e6
                ));
            }
        }
        Ok(())
    }

    fn family_json(f: &FamilyReport, indent: &str) -> String {
        format!(
            r#"{indent}{{
{indent}  "kind": "{kind}",
{indent}  "vertices": {n},
{indent}  "edges": {m},
{indent}  "components": {components},
{indent}  "label_entries": {label_entries},
{indent}  "build_auto_ms": {build_auto:.2},
{indent}  "queries": {queries},
{indent}  "reachable": {reachable},
{indent}  "unfiltered_qps": {unfiltered:.0},
{indent}  "filtered_qps": {filtered:.0},
{indent}  "speedup_filtered_vs_unfiltered": {speedup:.3},
{indent}  "filter_hit_rate": {hit_rate:.4},
{indent}  "stages": {{
{indent}    "filter_decided": {filter_decided},
{indent}    "signature_cut": {signature_cut},
{indent}    "merged": {merged}
{indent}  }}
{indent}}}"#,
            indent = indent,
            kind = f.kind,
            n = f.n,
            m = f.m,
            components = f.components,
            label_entries = f.label_entries,
            build_auto = f.build_auto_ms,
            queries = f.queries,
            reachable = f.reachable,
            unfiltered = f.unfiltered_qps,
            filtered = f.filtered_qps,
            speedup = f.query_speedup(),
            hit_rate = f.filter_hit_rate,
            filter_decided = f.tally.filter_decided,
            signature_cut = f.tally.signature_cut,
            merged = f.tally.merged,
        )
    }

    /// The machine-readable report (`BENCH_9.json`, schema 7).
    pub fn to_json(&self) -> String {
        let scaling = self
            .scaling
            .iter()
            .map(|s| {
                format!(
                    "    {{ \"threads\": {}, \"build_ms\": {:.2}, \"query_qps\": {:.0} }}",
                    s.threads, s.build_ms, s.query_qps
                )
            })
            .collect::<Vec<_>>()
            .join(",\n");
        let wire = match &self.wire {
            None => "null".to_string(),
            Some(w) => {
                let steps = w
                    .steps
                    .iter()
                    .map(|s| {
                        format!(
                            "      {{ \"connections\": {}, \"qps\": {:.0}, \
                             \"queries\": {}, \"errors\": {}, \"p50_ns\": {}, \
                             \"p99_ns\": {}, \"p999_ns\": {} }}",
                            s.connections,
                            s.qps,
                            s.queries,
                            s.errors,
                            s.p50_ns,
                            s.p99_ns,
                            s.p999_ns
                        )
                    })
                    .collect::<Vec<_>>()
                    .join(",\n");
                format!(
                    r#"{{
    "mode": "{mode}",
    "pipeline": {pipeline},
    "batch": {batch},
    "loadgen_threads": {threads},
    "qps_floor": {floor:.0},
    "steps": [
{steps}
    ]
  }}"#,
                    mode = w.mode,
                    pipeline = w.pipeline,
                    batch = w.batch,
                    threads = w.loadgen_threads,
                    floor = if self.quick {
                        WIRE_FLOOR_QUICK_QPS
                    } else {
                        WIRE_FLOOR_FULL_QPS
                    },
                )
            }
        };
        let wire_overload = match &self.wire_overload {
            None => "null".to_string(),
            Some(ov) => format!(
                r#"{{
    "mode": "{mode}",
    "connections": {connections},
    "pipeline": {pipeline},
    "factor": {factor},
    "shed_inflight_hwm": {hwm},
    "offered": {offered},
    "queries": {queries},
    "shed": {shed},
    "deadline_exceeded": {deadline_exceeded},
    "errors": {errors},
    "shed_fraction": {shed_fraction:.4},
    "goodput_qps": {goodput:.0},
    "accepted_p50_ns": {p50},
    "accepted_p99_ns": {p99},
    "accepted_p99_bound_ns": {p99_bound}
  }}"#,
                mode = ov.mode,
                connections = ov.connections,
                pipeline = ov.pipeline,
                factor = ov.factor,
                hwm = ov.shed_inflight_hwm,
                offered = ov.offered,
                queries = ov.queries,
                shed = ov.shed,
                deadline_exceeded = ov.deadline_exceeded,
                errors = ov.errors,
                shed_fraction = ov.shed_fraction,
                goodput = ov.goodput_qps,
                p50 = ov.accepted_p50_ns,
                p99 = ov.accepted_p99_ns,
                p99_bound = OVERLOAD_ACCEPTED_P99_BOUND_NS,
            ),
        };
        let verdicts = self
            .verdict_counts
            .iter()
            .map(|(v, c)| format!("    \"{}\": {c}", v.name()))
            .collect::<Vec<_>>()
            .join(",\n");
        let chunked = self
            .build
            .chunked_ms
            .iter()
            .map(|(t, ms)| format!("    \"chunked_t{t}_ms\": {ms:.2}"))
            .collect::<Vec<_>>()
            .join(",\n");
        let identity = self
            .identity_widths
            .iter()
            .map(usize::to_string)
            .collect::<Vec<_>>()
            .join(", ");
        let families = self
            .families
            .iter()
            .map(|f| Self::family_json(f, "    "))
            .collect::<Vec<_>>()
            .join(",\n");
        // vs_prev only makes sense against BENCH_4's full-mode run.
        let vs_prev = if self.quick {
            "null".to_string()
        } else {
            format!(
                r#"{{
    "prev": "{PREV_BENCH}",
    "prev_filtered_qps": {PREV_FILTERED_QPS:.0},
    "prev_unfiltered_qps": {PREV_UNFILTERED_QPS:.0},
    "prev_build_auto_ms": {PREV_BUILD_AUTO_MS:.2},
    "filtered_qps_speedup": {fq:.3},
    "unfiltered_qps_speedup": {uq:.3},
    "build_auto_speedup": {ba:.3}
  }}"#,
                fq = self.main.filtered_qps / PREV_FILTERED_QPS,
                uq = self.main.unfiltered_qps / PREV_UNFILTERED_QPS,
                ba = PREV_BUILD_AUTO_MS / self.build.auto_ms.max(f64::MIN_POSITIVE),
            )
        };
        format!(
            r#"{{
  "bench": "perf",
  "schema": 7,
  "quick": {quick},
  "seed": {seed},
  "host_cores": {host_cores},
  "graph": {{
    "kind": "random_dag",
    "vertices": {n},
    "edges": {m},
    "components": {components}
  }},
  "index": {{
    "label_entries": {label_entries},
    "filter_integers": {filter_integers},
    "signature_bytes": {signature_bytes}
  }},
  "build": {{
    "seed_merge_ms": {seed_merge:.2},
    "bitmap_seq_ms": {bitmap_seq:.2},
{chunked},
    "auto_ms": {auto:.2},
    "auto_threads": {auto_threads},
    "speedup_auto_vs_seed": {build_speedup:.3},
    "identical_label_thread_counts": [{identity}]
  }},
  "query": {{
    "queries": {queries},
    "threads": {threads},
    "reachable": {reachable},
    "unfiltered_qps": {unfiltered_qps:.0},
    "filtered_qps": {filtered_qps:.0},
    "speedup_filtered_vs_unfiltered": {query_speedup:.3},
    "stages": {{
      "filter_decided": {filter_decided},
      "signature_cut": {signature_cut},
      "merged": {merged}
    }}
  }},
  "filters": {{
{verdicts},
    "hit_rate": {hit_rate:.4}
  }},
  "families": [
{families}
  ],
  "cold_start": {{
    "v1_file_bytes": {v1_bytes},
    "v3_file_bytes": {v3_bytes},
    "owned_open_ms": {owned_open:.3},
    "mapped_open_ms": {mapped_open:.3},
    "mapped_unverified_open_ms": {mapped_unverified:.3},
    "mapped_vs_owned_speedup": {cold_speedup:.2}
  }},
  "scaling": [
{scaling}
  ],
  "metrics_overhead": {{
    "chunk_pairs": {overhead_chunk},
    "plain_qps": {overhead_plain:.0},
    "instrumented_qps": {overhead_inst:.0},
    "ratio": {overhead_ratio:.4},
    "ratio_floor": {overhead_floor:.2}
  }},
  "dynamic": {{
    "vertices": {dyn_n},
    "seed_edges": {dyn_m},
    "mutations": {dyn_mutations},
    "rejected": {dyn_rejected},
    "mutation_qps": {dyn_mut_qps:.0},
    "rebuild_threshold": {dyn_threshold},
    "rebuilds": {dyn_rebuilds},
    "reader_threads": {dyn_readers},
    "reads": {dyn_reads},
    "read_p50_ns": {dyn_p50},
    "read_p99_ns": {dyn_p99},
    "reads_during_rebuild": {dyn_reads_rebuild},
    "read_p99_during_rebuild_ns": {dyn_p99_rebuild},
    "read_max_during_rebuild_ns": {dyn_max_rebuild},
    "read_stall_bound_ns": {dyn_bound}
  }},
  "wire": {wire},
  "wire_overload": {wire_overload},
  "vs_prev": {vs_prev}
}}"#,
            quick = self.quick,
            seed = self.seed,
            host_cores = self.host_cores,
            n = self.main.n,
            m = self.main.m,
            components = self.main.components,
            label_entries = self.main.label_entries,
            filter_integers = self.filter_integers,
            signature_bytes = self.signature_bytes,
            seed_merge = self.build.seed_merge_ms,
            bitmap_seq = self.build.bitmap_seq_ms,
            auto = self.build.auto_ms,
            auto_threads = self.build.auto_threads,
            build_speedup = self.build_speedup(),
            queries = self.main.queries,
            threads = self.query_threads,
            reachable = self.main.reachable,
            unfiltered_qps = self.main.unfiltered_qps,
            filtered_qps = self.main.filtered_qps,
            query_speedup = self.main.query_speedup(),
            filter_decided = self.main.tally.filter_decided,
            signature_cut = self.main.tally.signature_cut,
            merged = self.main.tally.merged,
            hit_rate = self.main.filter_hit_rate,
            overhead_chunk = self.metrics_overhead.chunk_pairs,
            overhead_plain = self.metrics_overhead.plain_qps,
            overhead_inst = self.metrics_overhead.instrumented_qps,
            overhead_ratio = self.metrics_overhead.ratio(),
            overhead_floor = OVERHEAD_FLOOR,
            dyn_n = self.dynamic.vertices,
            dyn_m = self.dynamic.seed_edges,
            dyn_mutations = self.dynamic.mutations,
            dyn_rejected = self.dynamic.rejected,
            dyn_mut_qps = self.dynamic.mutation_qps,
            dyn_threshold = self.dynamic.rebuild_threshold,
            dyn_rebuilds = self.dynamic.rebuilds,
            dyn_readers = self.dynamic.reader_threads,
            dyn_reads = self.dynamic.reads,
            dyn_p50 = self.dynamic.read_p50_ns,
            dyn_p99 = self.dynamic.read_p99_ns,
            dyn_reads_rebuild = self.dynamic.reads_during_rebuild,
            dyn_p99_rebuild = self.dynamic.read_p99_during_rebuild_ns,
            dyn_max_rebuild = self.dynamic.read_max_during_rebuild_ns,
            dyn_bound = READ_STALL_BOUND_NS,
            v1_bytes = self.cold_start.v1_file_bytes,
            v3_bytes = self.cold_start.v3_file_bytes,
            owned_open = self.cold_start.owned_open_ms,
            mapped_open = self.cold_start.mapped_open_ms,
            mapped_unverified = self.cold_start.mapped_unverified_open_ms,
            cold_speedup = self.cold_start.speedup(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_report_is_consistent_and_serializes() {
        let report = run_perf_tiny_for_tests();
        assert_eq!(report.verdict_counts.len(), FilterVerdict::ALL.len());
        assert!(report.cold_start.owned_open_ms > 0.0);
        assert!(report.cold_start.mapped_open_ms > 0.0);
        assert!(report.cold_start.v3_file_bytes % 64 == 0);
        assert_eq!(report.main.tally.total(), report.main.queries as u64);
        for f in &report.families {
            assert_eq!(f.tally.total(), f.queries as u64, "{}", f.kind);
        }
        assert!(report.main.filter_hit_rate > 0.0 && report.main.filter_hit_rate <= 1.0);
        let json = report.to_json();
        for key in [
            "\"seed_merge_ms\"",
            "\"chunked_t2_ms\"",
            "\"filtered_qps\"",
            "\"signature_cut\"",
            "\"deep_chain\"",
            "\"kronecker\"",
            "\"vs_prev\"",
            "\"hit_rate\"",
            "\"cold_start\"",
            "\"owned_open_ms\"",
            "\"mapped_open_ms\"",
            "\"mapped_vs_owned_speedup\"",
            "\"scaling\"",
            "\"query_qps\"",
            "\"metrics_overhead\"",
            "\"instrumented_qps\"",
            "\"wire\": null",
        ] {
            assert!(json.contains(key), "missing {key} in {json}");
        }
        assert_eq!(
            json.matches('{').count(),
            json.matches('}').count(),
            "unbalanced JSON braces"
        );
    }

    #[test]
    fn wire_report_serializes_and_check_gates_floor_and_errors() {
        let mut report = run_perf_tiny_for_tests();
        report.main.filtered_qps = report.main.filtered_qps.max(report.main.unfiltered_qps);
        report.wire = Some(WireReport {
            mode: "reactor",
            pipeline: 8,
            batch: 1,
            loadgen_threads: 2,
            steps: vec![
                WireStep {
                    connections: 64,
                    qps: 200_000.0,
                    queries: 100_000,
                    errors: 0,
                    p50_ns: 120_000,
                    p99_ns: 900_000,
                    p999_ns: 2_400_000,
                },
                WireStep {
                    connections: 512,
                    qps: 150_000.0,
                    queries: 100_000,
                    errors: 0,
                    p50_ns: 250_000,
                    p99_ns: 1_500_000,
                    p999_ns: 4_000_000,
                },
            ],
        });
        report.check().expect("healthy wire sweep passes");
        let json = report.to_json();
        for key in [
            "\"qps_floor\"",
            "\"connections\": 512",
            "\"mode\": \"reactor\"",
            "\"p50_ns\": 250000",
            "\"p99_ns\": 1500000",
            "\"p999_ns\": 4000000",
        ] {
            assert!(json.contains(key), "missing {key} in {json}");
        }
        assert_eq!(json.matches('{').count(), json.matches('}').count());

        report.wire.as_mut().unwrap().steps[1].qps = 10.0;
        let err = report.check().unwrap_err();
        assert!(err.contains("fell to"), "{err}");

        report.wire.as_mut().unwrap().steps[1].qps = 150_000.0;
        report.wire.as_mut().unwrap().steps[0].errors = 3;
        let err = report.check().unwrap_err();
        assert!(err.contains("error replies"), "{err}");
    }

    #[test]
    fn check_gates_a_flat_scaling_curve_on_multicore_hosts() {
        let mut report = run_perf_tiny_for_tests();
        report.main.filtered_qps = report.main.filtered_qps.max(report.main.unfiltered_qps);
        // 1-core hosts record the curve but never gate it.
        report.scaling = vec![
            ScalingStep {
                threads: 1,
                build_ms: 10.0,
                query_qps: 1_000_000.0,
            },
            ScalingStep {
                threads: 4,
                build_ms: 40.0,
                query_qps: 200_000.0,
            },
        ];
        report.host_cores = 1;
        report.check().expect("1-core host is not gated");
        // On a multi-core host the same flat curve fails.
        report.host_cores = 4;
        let err = report.check().unwrap_err();
        assert!(err.contains("parallel batch query"), "{err}");
        // A healthy curve passes.
        report.scaling[1].query_qps = 2_000_000.0;
        report.scaling[1].build_ms = 6.0;
        report.check().expect("healthy curve passes");
    }

    #[test]
    fn check_gates_metrics_overhead() {
        let mut report = run_perf_tiny_for_tests();
        report.main.filtered_qps = report.main.filtered_qps.max(report.main.unfiltered_qps);
        report.check().expect("tiny report passes");
        report.metrics_overhead.instrumented_qps = report.metrics_overhead.plain_qps * 0.5;
        let err = report.check().unwrap_err();
        assert!(err.contains("instrumented"), "{err}");
    }

    #[test]
    fn check_rejects_a_losing_auto_engine() {
        let mut report = run_perf_tiny_for_tests();
        // Normalize debug-build timing noise out of the invariant not
        // under test (the real run measures in release mode).
        report.main.filtered_qps = report.main.filtered_qps.max(report.main.unfiltered_qps);
        report.check().expect("tiny report passes");
        report.build.auto_ms = report.build.best_ms() * 2.0 + 100.0;
        let err = report.check().unwrap_err();
        assert!(err.contains("picked a loser"), "{err}");
    }

    /// A miniature run through the real plumbing so the debug-build
    /// test suite stays fast.
    fn run_perf_tiny_for_tests() -> PerfReport {
        // The real dynamic stage at toy scale: enough mutations over a
        // threshold of 24 to force several background rebuilds, then
        // pin the rebuild-overlap tail healthy — debug-build timing
        // noise on a 400-vertex graph is not what the gate probes.
        let mut dynamic = run_dynamic(400, 1_200, 150, 24, 1, 5);
        assert!(dynamic.rebuilds >= 1, "tiny dynamic stage never rebuilt");
        assert_eq!(dynamic.mutations, 150);
        dynamic.read_p99_during_rebuild_ns =
            dynamic.read_p99_during_rebuild_ns.min(READ_STALL_BOUND_NS);
        let dag = gen::random_dag(300, 1_200, 5);
        let chain = gen::deep_chain_dag(300, 6, 40, 5);
        let kron = gen::kronecker_dag(8, 700, 5);
        let (main, oracle, pairs) = run_family("random_dag", &dag, 5_000, 1, 2, 5);
        let cold_start = run_cold_start(&oracle, &pairs, 1, 5);
        // Exercise the real stage for its internal cross-checks, then
        // pin the ratio healthy — debug-build timing noise on a
        // two-chunk workload is not what the gate tests probe.
        let mut metrics_overhead = run_metrics_overhead(&oracle, &pairs, 2, 1);
        metrics_overhead.instrumented_qps = metrics_overhead
            .instrumented_qps
            .max(metrics_overhead.plain_qps);
        let families = vec![
            run_family("deep_chain", &chain, 5_000, 1, 2, 5).0,
            run_family("kronecker", &kron, 5_000, 1, 2, 5).0,
        ];
        let mut counts: HashMap<FilterVerdict, usize> = HashMap::new();
        for &(u, v) in &pairs {
            *counts.entry(oracle.filters().classify(u, v)).or_insert(0) += 1;
        }
        PerfReport {
            quick: true,
            seed: 5,
            host_cores: 1,
            query_threads: 2,
            main,
            filter_integers: oracle.filters().size_in_integers(),
            signature_bytes: oracle.inner().labeling().signature_bytes(),
            build: EngineTimings {
                seed_merge_ms: 4.0,
                bitmap_seq_ms: 2.0,
                chunked_ms: vec![(2, 2.5), (4, 2.6)],
                auto_ms: 2.0,
                auto_threads: 1,
            },
            identity_widths: IDENTITY_WIDTHS.to_vec(),
            verdict_counts: FilterVerdict::ALL
                .iter()
                .map(|&v| (v, counts.get(&v).copied().unwrap_or(0)))
                .collect(),
            families,
            cold_start,
            scaling: SCALING_WIDTHS
                .iter()
                .map(|&t| ScalingStep {
                    threads: t,
                    build_ms: 4.0 / t as f64 + 1.0,
                    query_qps: 1_000_000.0 * t as f64,
                })
                .collect(),
            metrics_overhead,
            dynamic,
            wire: None,
            wire_overload: None,
        }
    }

    #[test]
    fn check_gates_the_dynamic_stage() {
        let mut report = run_perf_tiny_for_tests();
        report.main.filtered_qps = report.main.filtered_qps.max(report.main.unfiltered_qps);
        report.check().expect("tiny report passes");
        let json = report.to_json();
        for key in [
            "\"dynamic\"",
            "\"mutation_qps\"",
            "\"rebuilds\"",
            "\"read_p99_during_rebuild_ns\"",
            "\"read_stall_bound_ns\"",
        ] {
            assert!(json.contains(key), "missing {key} in {json}");
        }
        // No rebuild observed ⇒ the stage measured nothing.
        let rebuilds = report.dynamic.rebuilds;
        report.dynamic.rebuilds = 0;
        let err = report.check().unwrap_err();
        assert!(err.contains("no background rebuild"), "{err}");
        report.dynamic.rebuilds = rebuilds;
        // Readers queued behind the reindex ⇒ fail.
        report.dynamic.reads_during_rebuild = report.dynamic.reads_during_rebuild.max(1);
        report.dynamic.read_p99_during_rebuild_ns = READ_STALL_BOUND_NS * 20;
        let err = report.check().unwrap_err();
        assert!(err.contains("stalled"), "{err}");
    }

    #[test]
    fn check_gates_the_overload_stage() {
        let mut report = run_perf_tiny_for_tests();
        report.main.filtered_qps = report.main.filtered_qps.max(report.main.unfiltered_qps);
        report.wire_overload = Some(OverloadStage {
            mode: "reactor",
            connections: 64,
            pipeline: 8,
            factor: 3,
            shed_inflight_hwm: 170,
            offered: 90_000,
            queries: 30_000,
            shed: 58_000,
            deadline_exceeded: 2_000,
            errors: 0,
            shed_fraction: 58_000.0 / 90_000.0,
            goodput_qps: 120_000.0,
            accepted_p50_ns: 1_000_000,
            accepted_p99_ns: 90_000_000,
        });
        report.check().expect("healthy overload stage passes");
        let json = report.to_json();
        for key in [
            "\"wire_overload\"",
            "\"shed_fraction\"",
            "\"goodput_qps\"",
            "\"accepted_p99_ns\"",
            "\"accepted_p99_bound_ns\"",
        ] {
            assert!(json.contains(key), "missing {key} in {json}");
        }
        // No sheds at 3x load ⇒ the limiter never engaged.
        report.wire_overload.as_mut().unwrap().shed = 0;
        let err = report.check().unwrap_err();
        assert!(err.contains("never shed"), "{err}");
        report.wire_overload.as_mut().unwrap().shed = 58_000;
        // Untyped errors ⇒ refusals leaked out as ERROR replies.
        report.wire_overload.as_mut().unwrap().errors = 3;
        let err = report.check().unwrap_err();
        assert!(err.contains("typed"), "{err}");
        report.wire_overload.as_mut().unwrap().errors = 0;
        // Slow accepted traffic ⇒ admission control stopped helping.
        report.wire_overload.as_mut().unwrap().accepted_p99_ns = OVERLOAD_ACCEPTED_P99_BOUND_NS + 1;
        let err = report.check().unwrap_err();
        assert!(err.contains("p99"), "{err}");
    }
}
