//! Builds the paper's 12 methods on the dataset analogues and measures
//! construction time, index size, and query time.
//!
//! Builders run under a memory budget and (for 2HOP) a wall-clock
//! budget; a [`hoplite_graph::GraphError::BudgetExceeded`] shows up as
//! the paper's "—" table cell. Every successfully built index is
//! validated against the workload's ground truth before timing — a
//! wrong answer poisons the cell with `WRONG` rather than reporting a
//! meaningless time.

use std::time::{Duration, Instant};

use hoplite_baselines::twohop::TwoHopConfig;
use hoplite_baselines::{
    ChainIndex, DualLabeling, Grail, IntervalIndex, KReach, PathTree, PrunedLandmark, Pwah8,
    Scarab, TfLabel, TwoHop,
};
use hoplite_core::{DistributionLabeling, DlConfig, HierarchicalLabeling, HlConfig, ReachIndex};
use hoplite_graph::{Dag, GraphError};

use crate::datasets::DatasetSpec;
use crate::workload::{equal_workload_with, random_workload_with, Workload};

/// The paper's method columns.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum MethodId {
    /// GRAIL (GL), 5 random traversals.
    Grail,
    /// GRAIL scaled by SCARAB (GL\*).
    GrailStar,
    /// Path-Tree (PT).
    PathTree,
    /// Path-Tree scaled by SCARAB (PT\*).
    PathTreeStar,
    /// K-Reach (KR).
    KReach,
    /// PWAH-8 (PW8).
    Pwah8,
    /// Nuutila's Interval (INT).
    Interval,
    /// Set-cover 2-hop (2HOP).
    TwoHop,
    /// Pruned Landmark (PL).
    PrunedLandmark,
    /// TF-label (TF).
    TfLabel,
    /// Hierarchical-Labeling (HL) — this paper.
    Hl,
    /// Distribution-Labeling (DL) — this paper.
    Dl,
    /// Dual labeling (§2.1 reference [36]; `paper extras` column).
    Dual,
    /// Chain-cover compression (§2.1 references [18,7]; `paper extras`
    /// column).
    Chain,
}

impl MethodId {
    /// The twelve columns in the paper's table order.
    pub fn paper_columns() -> [MethodId; 12] {
        [
            MethodId::Grail,
            MethodId::GrailStar,
            MethodId::PathTree,
            MethodId::PathTreeStar,
            MethodId::KReach,
            MethodId::Pwah8,
            MethodId::Interval,
            MethodId::TwoHop,
            MethodId::PrunedLandmark,
            MethodId::TfLabel,
            MethodId::Hl,
            MethodId::Dl,
        ]
    }

    /// The paper's twelve columns plus the §2.1 TC-compression
    /// references the paper describes but does not re-run (dual
    /// labeling, chain cover) — the `paper extras` table.
    pub fn extended_columns() -> [MethodId; 14] {
        [
            MethodId::Grail,
            MethodId::GrailStar,
            MethodId::PathTree,
            MethodId::PathTreeStar,
            MethodId::KReach,
            MethodId::Pwah8,
            MethodId::Interval,
            MethodId::TwoHop,
            MethodId::PrunedLandmark,
            MethodId::TfLabel,
            MethodId::Dual,
            MethodId::Chain,
            MethodId::Hl,
            MethodId::Dl,
        ]
    }

    /// Column header as printed in the paper.
    pub fn name(self) -> &'static str {
        match self {
            MethodId::Grail => "GL",
            MethodId::GrailStar => "GL*",
            MethodId::PathTree => "PT",
            MethodId::PathTreeStar => "PT*",
            MethodId::KReach => "KR",
            MethodId::Pwah8 => "PW8",
            MethodId::Interval => "INT",
            MethodId::TwoHop => "2HOP",
            MethodId::PrunedLandmark => "PL",
            MethodId::TfLabel => "TF",
            MethodId::Hl => "HL",
            MethodId::Dl => "DL",
            MethodId::Dual => "DUAL",
            MethodId::Chain => "CHAIN",
        }
    }
}

/// Harness configuration (CLI flags of the `paper` binary).
#[derive(Clone, Debug)]
pub struct RunConfig {
    /// Scale for the small-graph analogues (1.0 = paper size).
    pub scale_small: f64,
    /// Scale for the large-graph analogues.
    pub scale_large: f64,
    /// Queries per workload (the paper uses 100 000).
    pub queries: usize,
    /// Per-build memory budget in bytes (emulates the 32 GB machine).
    pub budget_bytes: u64,
    /// Per-build wall-clock budget (emulates the 24 h limit).
    pub time_budget: Duration,
    /// Workload seed.
    pub seed: u64,
}

impl Default for RunConfig {
    fn default() -> Self {
        RunConfig {
            scale_small: 0.25,
            scale_large: 0.01,
            queries: 20_000,
            budget_bytes: 1 << 30, // 1 GiB per index
            time_budget: Duration::from_secs(60),
            seed: 0x5EED,
        }
    }
}

/// Result of one index build attempt.
pub struct BuildOutcome {
    /// The built index, if construction fit the budgets.
    pub index: Option<Box<dyn ReachIndex>>,
    /// Construction wall-clock in milliseconds.
    pub build_ms: f64,
    /// Failure description (budget exceeded etc.) — the "—" cell.
    pub error: Option<String>,
}

/// Builds one method on `dag` under the configured budgets.
pub fn build_method(id: MethodId, dag: &Dag, cfg: &RunConfig) -> BuildOutcome {
    let start = Instant::now();
    let built: Result<Box<dyn ReachIndex>, GraphError> = match id {
        MethodId::Grail => Ok(Box::new(Grail::build(dag, 5, cfg.seed))),
        MethodId::GrailStar => Scarab::build(dag, 2, "GL*", |bb| Ok(Grail::build(bb, 5, cfg.seed)))
            .map(|s| Box::new(s) as Box<dyn ReachIndex>),
        MethodId::PathTree => PathTree::build_limited(dag, cfg.budget_bytes, Some(cfg.time_budget))
            .map(|i| Box::new(i) as Box<dyn ReachIndex>),
        MethodId::PathTreeStar => Scarab::build(dag, 2, "PT*", |bb| {
            PathTree::build_limited(bb, cfg.budget_bytes, Some(cfg.time_budget))
        })
        .map(|s| Box::new(s) as Box<dyn ReachIndex>),
        MethodId::KReach => KReach::build_limited(dag, cfg.budget_bytes, Some(cfg.time_budget))
            .map(|i| Box::new(i) as Box<dyn ReachIndex>),
        MethodId::Pwah8 => Pwah8::build_limited(dag, cfg.budget_bytes, Some(cfg.time_budget))
            .map(|i| Box::new(i) as Box<dyn ReachIndex>),
        MethodId::Interval => {
            IntervalIndex::build_limited(dag, cfg.budget_bytes, Some(cfg.time_budget))
                .map(|i| Box::new(i) as Box<dyn ReachIndex>)
        }
        MethodId::TwoHop => TwoHop::build(
            dag,
            &TwoHopConfig {
                budget_bytes: cfg.budget_bytes,
                time_budget: Some(cfg.time_budget),
            },
        )
        .map(|i| Box::new(i) as Box<dyn ReachIndex>),
        MethodId::PrunedLandmark => Ok(Box::new(PrunedLandmark::build(dag))),
        MethodId::TfLabel => Ok(Box::new(TfLabel::build(dag, 1_024))),
        MethodId::Hl => Ok(Box::new(HierarchicalLabeling::build(
            dag,
            &HlConfig::default(),
        ))),
        MethodId::Dl => Ok(Box::new(DistributionLabeling::build(
            dag,
            &DlConfig::default(),
        ))),
        MethodId::Dual => {
            DualLabeling::build(dag, cfg.budget_bytes).map(|i| Box::new(i) as Box<dyn ReachIndex>)
        }
        MethodId::Chain => {
            ChainIndex::build(dag, cfg.budget_bytes).map(|i| Box::new(i) as Box<dyn ReachIndex>)
        }
    };
    let build_ms = start.elapsed().as_secs_f64() * 1e3;
    match built {
        Ok(index) => BuildOutcome {
            index: Some(index),
            build_ms,
            error: None,
        },
        Err(e) => BuildOutcome {
            index: None,
            build_ms,
            error: Some(e.to_string()),
        },
    }
}

/// Runs `w` against `idx`, returning (total milliseconds, positives).
pub fn measure_queries(idx: &dyn ReachIndex, w: &Workload) -> (f64, usize) {
    let start = Instant::now();
    let mut positives = 0usize;
    for &(u, v) in &w.pairs {
        positives += idx.query(u, v) as usize;
    }
    (start.elapsed().as_secs_f64() * 1e3, positives)
}

/// Validates `idx` against the workload ground truth.
pub fn validate(idx: &dyn ReachIndex, w: &Workload) -> bool {
    w.pairs
        .iter()
        .zip(&w.expected)
        .all(|(&(u, v), &e)| idx.query(u, v) == e)
}

/// Per-method measurements on one dataset.
#[derive(Clone, Debug)]
pub struct MethodResult {
    /// Construction time (ms); meaningless when `error` is set.
    pub build_ms: f64,
    /// Index size in integers.
    pub size_integers: u64,
    /// Equal-load query time for the whole workload (ms).
    pub equal_ms: f64,
    /// Random-load query time (ms).
    pub random_ms: f64,
    /// Failure ("—") or wrong-answer marker.
    pub error: Option<String>,
}

/// All measurements for one dataset.
pub struct DatasetResult {
    /// The dataset emulated.
    pub spec: DatasetSpec,
    /// Generated |V|.
    pub n: usize,
    /// Generated |E|.
    pub m: usize,
    /// One entry per requested method, in order.
    pub methods: Vec<MethodResult>,
}

/// The full measurement matrix for a set of datasets × methods.
pub struct SuiteResult {
    /// Methods measured (column order).
    pub methods: Vec<MethodId>,
    /// Per-dataset rows.
    pub datasets: Vec<DatasetResult>,
}

/// Generates both workloads for a dataset. Ground truth comes from a
/// freshly built DL reference oracle (per-pair BFS would take minutes
/// on the dense large analogues); the reference is spot-checked
/// against bidirectional BFS on 200 pairs before use.
fn dataset_workloads(dag: &Dag, cfg: &RunConfig) -> (Workload, Workload) {
    use hoplite_graph::gen::Rng;
    use hoplite_graph::traversal::{bidirectional_reaches, TraversalScratch};

    let reference = DistributionLabeling::build(dag, &DlConfig::default());
    let n = dag.num_vertices();
    if n >= 2 {
        let mut rng = Rng::new(cfg.seed ^ 0xC0FFEE);
        let mut fwd = TraversalScratch::new(n);
        let mut bwd = TraversalScratch::new(n);
        for _ in 0..200 {
            let u = rng.gen_index(n) as u32;
            let v = rng.gen_index(n) as u32;
            assert_eq!(
                reference.query(u, v),
                bidirectional_reaches(dag.graph(), u, v, &mut fwd, &mut bwd),
                "reference oracle failed its BFS spot-check at ({u},{v})"
            );
        }
    }
    let equal = equal_workload_with(dag, cfg.queries, cfg.seed, |u, v| reference.query(u, v));
    let random = random_workload_with(dag, cfg.queries, cfg.seed ^ 0xABCD, |u, v| {
        reference.query(u, v)
    });
    (equal, random)
}

/// Runs the complete matrix. Builds and measurements are sequential so
/// timings are not perturbed by sibling work.
pub fn run_suite(specs: &[DatasetSpec], methods: &[MethodId], cfg: &RunConfig) -> SuiteResult {
    let mut datasets = Vec::with_capacity(specs.len());
    for spec in specs {
        let scale = if spec.small {
            cfg.scale_small
        } else {
            cfg.scale_large
        };
        let dag = spec.generate(scale);
        let (equal, random) = dataset_workloads(&dag, cfg);
        let mut rows = Vec::with_capacity(methods.len());
        for &mid in methods {
            let outcome = build_method(mid, &dag, cfg);
            let r = match outcome.index {
                Some(idx) => {
                    if !validate(idx.as_ref(), &equal) || !validate(idx.as_ref(), &random) {
                        MethodResult {
                            build_ms: outcome.build_ms,
                            size_integers: idx.size_in_integers(),
                            equal_ms: f64::NAN,
                            random_ms: f64::NAN,
                            error: Some("WRONG".into()),
                        }
                    } else {
                        let (equal_ms, _) = measure_queries(idx.as_ref(), &equal);
                        let (random_ms, _) = measure_queries(idx.as_ref(), &random);
                        MethodResult {
                            build_ms: outcome.build_ms,
                            size_integers: idx.size_in_integers(),
                            equal_ms,
                            random_ms,
                            error: None,
                        }
                    }
                }
                None => MethodResult {
                    build_ms: outcome.build_ms,
                    size_integers: 0,
                    equal_ms: f64::NAN,
                    random_ms: f64::NAN,
                    error: outcome.error,
                },
            };
            rows.push(r);
        }
        datasets.push(DatasetResult {
            spec: spec.clone(),
            n: dag.num_vertices(),
            m: dag.num_edges(),
            methods: rows,
        });
    }
    SuiteResult {
        methods: methods.to_vec(),
        datasets,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::datasets::small_datasets;

    fn tiny_cfg() -> RunConfig {
        RunConfig {
            scale_small: 0.02,
            scale_large: 0.001,
            queries: 300,
            budget_bytes: 1 << 28,
            time_budget: Duration::from_secs(10),
            seed: 1,
        }
    }

    #[test]
    fn all_methods_build_and_validate_on_a_small_analogue() {
        let spec = &small_datasets()[7]; // kegg (tiny)
        let dag = spec.generate(0.2);
        let cfg = tiny_cfg();
        let equal = crate::workload::equal_workload(&dag, 500, 3);
        for mid in MethodId::paper_columns() {
            let o = build_method(mid, &dag, &cfg);
            let idx = o
                .index
                .unwrap_or_else(|| panic!("{} failed: {:?}", mid.name(), o.error));
            assert!(
                validate(idx.as_ref(), &equal),
                "{} gave a wrong answer",
                mid.name()
            );
        }
    }

    #[test]
    fn budget_failures_become_errors_not_panics() {
        let spec = &small_datasets()[3]; // arxiv: dense
        let dag = spec.generate(0.2);
        let cfg = RunConfig {
            budget_bytes: 1 << 10, // 1 KiB: everything budgeted must fail
            ..tiny_cfg()
        };
        for mid in [
            MethodId::PathTree,
            MethodId::KReach,
            MethodId::Pwah8,
            MethodId::Interval,
            MethodId::TwoHop,
        ] {
            let o = build_method(mid, &dag, &cfg);
            assert!(o.index.is_none(), "{} should fail on 1KiB", mid.name());
            assert!(o.error.is_some());
        }
    }

    #[test]
    fn suite_produces_full_matrix() {
        let specs = vec![small_datasets()[7].clone(), small_datasets()[11].clone()];
        let methods = [MethodId::Grail, MethodId::Dl];
        let res = run_suite(&specs, &methods, &tiny_cfg());
        assert_eq!(res.datasets.len(), 2);
        for d in &res.datasets {
            assert_eq!(d.methods.len(), 2);
            for m in &d.methods {
                assert!(m.error.is_none(), "unexpected failure: {:?}", m.error);
                assert!(m.equal_ms.is_finite());
                assert!(m.size_integers > 0 || m.error.is_some());
            }
        }
    }
}
