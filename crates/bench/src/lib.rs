//! # hoplite-bench
//!
//! Benchmark harness regenerating **every table and figure** of the
//! paper's evaluation (§6):
//!
//! * [`datasets`] — seeded synthetic analogues of the 27 real graphs in
//!   Table 1 (one generator family per dataset family; `DESIGN.md` §4
//!   documents each substitution), with a `--scale` knob.
//! * [`workload`] — the paper's two query loads: *equal*
//!   (≈50 % reachable / 50 % unreachable, 100 000 queries) and
//!   *random* (uniform vertex pairs).
//! * [`runner`] — builds each of the paper's 12 methods on each
//!   dataset under memory/time budgets, measuring construction time,
//!   index size, and query time; budget failures become the paper's
//!   "—" cells.
//! * [`tables`] — plain-text renderers shaped like Tables 1–7 and the
//!   index-size series of Figures 3–4.
//! * [`perf`] — the hot-path JSON benchmark behind `paper perf`:
//!   build-engine comparison (seed merge vs rank-bitmap vs two-thread)
//!   and filtered vs unfiltered query throughput with per-layer filter
//!   hit rates (`BENCH_*.json`).
//!
//! The `paper` binary (`cargo run --release -p hoplite-bench --bin
//! paper -- all`) drives everything; Criterion micro-benches live in
//! `benches/`.

pub mod datasets;
pub mod perf;
pub mod runner;
pub mod tables;
pub mod workload;

pub use datasets::{large_datasets, small_datasets, DatasetSpec, Family};
pub use runner::{BuildOutcome, MethodId, RunConfig, SuiteResult};
pub use workload::{equal_workload, random_workload, Workload};
