//! Plain-text table rendering shaped like the paper's Tables 1–7 and
//! the per-dataset index-size series of Figures 3–4.

use crate::runner::{MethodResult, SuiteResult};

/// Renders a titled table. `cells[r][c]` pairs with `row_names[r]` and
/// `col_headers[c]`.
pub fn render(
    title: &str,
    row_label: &str,
    col_headers: &[String],
    row_names: &[String],
    cells: &[Vec<String>],
) -> String {
    assert_eq!(row_names.len(), cells.len());
    // Widths in characters, not bytes: "—" is 3 bytes but 1 column.
    let chars = |s: &String| s.chars().count();
    let mut widths: Vec<usize> = Vec::with_capacity(col_headers.len() + 1);
    widths.push(
        row_names
            .iter()
            .map(chars)
            .chain([row_label.chars().count()])
            .max()
            .unwrap_or(0),
    );
    for (c, h) in col_headers.iter().enumerate() {
        let w = cells
            .iter()
            .map(|row| chars(&row[c]))
            .chain([chars(h)])
            .max()
            .unwrap_or(0);
        widths.push(w);
    }
    let mut out = String::new();
    out.push_str(title);
    out.push('\n');
    let total: usize = widths.iter().sum::<usize>() + 2 * widths.len();
    out.push_str(&"-".repeat(total));
    out.push('\n');
    out.push_str(&format!("{:<w$}", row_label, w = widths[0]));
    for (h, w) in col_headers.iter().zip(&widths[1..]) {
        out.push_str(&format!("  {:>w$}", h, w = w));
    }
    out.push('\n');
    for (name, row) in row_names.iter().zip(cells) {
        out.push_str(&format!("{:<w$}", name, w = widths[0]));
        for (cell, w) in row.iter().zip(&widths[1..]) {
            out.push_str(&format!("  {:>w$}", cell, w = w));
        }
        out.push('\n');
    }
    out
}

/// Milliseconds with one decimal, or "—" on failure.
pub fn fmt_ms(r: &MethodResult, value: f64) -> String {
    match &r.error {
        Some(e) if e == "WRONG" => "WRONG".into(),
        Some(_) => "—".into(),
        None => format!("{value:.1}"),
    }
}

/// Integer count in thousands (the unit of Figures 3–4), or "—".
pub fn fmt_kints(r: &MethodResult) -> String {
    match &r.error {
        Some(e) if e == "WRONG" => "WRONG".into(),
        Some(_) => "—".into(),
        None => format!("{:.1}", r.size_integers as f64 / 1e3),
    }
}

/// Projection selecting which measurement a table shows.
#[derive(Copy, Clone, Debug)]
pub enum Projection {
    /// Equal-load query time (Tables 2 and 5).
    EqualQuery,
    /// Random-load query time (Tables 3 and 6).
    RandomQuery,
    /// Construction time (Tables 4 and 7).
    Construction,
    /// Index size in 1000s of integers (Figures 3 and 4).
    IndexSize,
}

/// Renders one paper table/figure from a measured suite.
pub fn render_suite(title: &str, suite: &SuiteResult, proj: Projection) -> String {
    let headers: Vec<String> = suite.methods.iter().map(|m| m.name().to_string()).collect();
    let rows: Vec<String> = suite
        .datasets
        .iter()
        .map(|d| d.spec.name.to_string())
        .collect();
    let cells: Vec<Vec<String>> = suite
        .datasets
        .iter()
        .map(|d| {
            d.methods
                .iter()
                .map(|m| match proj {
                    Projection::EqualQuery => fmt_ms(m, m.equal_ms),
                    Projection::RandomQuery => fmt_ms(m, m.random_ms),
                    Projection::Construction => fmt_ms(m, m.build_ms),
                    Projection::IndexSize => fmt_kints(m),
                })
                .collect()
        })
        .collect();
    render(title, "Dataset", &headers, &rows, &cells)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_aligns_columns() {
        let s = render(
            "T",
            "DS",
            &["A".into(), "LONGHEAD".into()],
            &["row1".into(), "longer-row".into()],
            &[
                vec!["1.0".into(), "2.0".into()],
                vec!["10.5".into(), "—".into()],
            ],
        );
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines[0], "T");
        assert!(lines[2].contains("LONGHEAD"));
        assert!(lines[3].starts_with("row1"));
        assert!(lines[4].starts_with("longer-row"));
        // Header and data lines align to equal display width
        // (character count — cells may contain multi-byte "—").
        assert_eq!(lines[2].chars().count(), lines[4].chars().count());
        assert_eq!(lines[3].chars().count(), lines[4].chars().count());
    }

    #[test]
    fn formatting_of_failures() {
        let fail = MethodResult {
            build_ms: 1.0,
            size_integers: 0,
            equal_ms: f64::NAN,
            random_ms: f64::NAN,
            error: Some("budget".into()),
        };
        assert_eq!(fmt_ms(&fail, fail.equal_ms), "—");
        assert_eq!(fmt_kints(&fail), "—");
        let wrong = MethodResult {
            error: Some("WRONG".into()),
            ..fail
        };
        assert_eq!(fmt_ms(&wrong, 1.0), "WRONG");
        let ok = MethodResult {
            build_ms: 12.34,
            size_integers: 4200,
            equal_ms: 3.21,
            random_ms: 1.0,
            error: None,
        };
        assert_eq!(fmt_ms(&ok, ok.equal_ms), "3.2");
        assert_eq!(fmt_kints(&ok), "4.2");
    }
}
