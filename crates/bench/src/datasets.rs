//! Synthetic analogues of the paper's Table 1 datasets.
//!
//! Each spec records the *paper's* vertex/edge counts and the generator
//! family matching the dataset's provenance (metabolic/ontology →
//! tree-like, citation/web/social → power-law, XML → layered, P2P →
//! uniform random, |E| < |V| condensations → forest). Generation takes
//! a `scale` factor so the full 12-method × 27-dataset matrix runs on a
//! laptop; the default harness scales keep small graphs at paper size
//! and large graphs at a few percent of paper edges.

use hoplite_graph::{gen, Dag};

/// Generator family standing in for a dataset's provenance.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum Family {
    /// Spanning tree + a few cross edges (metabolic / ontology).
    Tree,
    /// Forest with |E| < |V| − 1 (sparse condensations).
    Forest,
    /// Preferential attachment (citation / web / social).
    PowerLaw,
    /// Uniform Erdős–Rényi DAG (P2P).
    Random,
    /// Stratified layers (XML documents).
    Layered,
}

/// One Table 1 row: the real dataset we emulate.
#[derive(Clone, Debug)]
pub struct DatasetSpec {
    /// Dataset name as printed in the paper.
    pub name: &'static str,
    /// Generator family (see `DESIGN.md` §4).
    pub family: Family,
    /// |V| of the coalesced DAG in the paper.
    pub paper_vertices: usize,
    /// |E| of the coalesced DAG in the paper.
    pub paper_edges: usize,
    /// Small-graph table (Tables 2–4) vs large (Tables 5–7).
    pub small: bool,
}

impl DatasetSpec {
    /// Generates the analogue DAG at `scale` (1.0 = paper size).
    /// The seed is derived from the dataset name, so every run of the
    /// harness sees identical graphs.
    pub fn generate(&self, scale: f64) -> Dag {
        let n = ((self.paper_vertices as f64 * scale).round() as usize).max(16);
        let m = ((self.paper_edges as f64 * scale).round() as usize).max(8);
        let seed = name_seed(self.name);
        match self.family {
            Family::Tree => {
                let extra = m.saturating_sub(n.saturating_sub(1));
                gen::tree_plus_dag(n, extra, seed)
            }
            Family::Forest => gen::forest_dag(n, m, seed),
            Family::PowerLaw => gen::power_law_dag(n, m, seed),
            Family::Random => gen::random_dag(n, m, seed),
            Family::Layered => gen::layered_dag(n, 12, m, seed),
        }
    }
}

/// Deterministic seed from the dataset name (FNV-1a).
fn name_seed(name: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// The 14 small graphs of Table 1 (left columns).
pub fn small_datasets() -> Vec<DatasetSpec> {
    use Family::*;
    let rows: [(&'static str, Family, usize, usize); 14] = [
        ("agrocyc", Tree, 12_684, 13_408),
        ("amaze", Forest, 3_710, 3_600),
        ("anthra", Tree, 12_499, 13_104),
        ("arxiv", PowerLaw, 21_608, 116_805),
        ("ecoo", Tree, 12_620, 13_350),
        ("hpycyc", Tree, 4_771, 5_859),
        ("human", Tree, 38_811, 39_576),
        ("kegg", Tree, 3_617, 3_908),
        ("mtbrv", Tree, 9_602, 10_245),
        ("nasa", Layered, 5_605, 7_735),
        ("p2p", Random, 48_438, 55_349),
        ("reactome", Forest, 901, 846),
        ("vchocyc", Tree, 9_491, 10_143),
        ("xmark", Layered, 6_080, 7_028),
    ];
    rows.iter()
        .map(|&(name, family, v, e)| DatasetSpec {
            name,
            family,
            paper_vertices: v,
            paper_edges: e,
            small: true,
        })
        .collect()
}

/// The 13 large graphs of Table 1 (right columns).
pub fn large_datasets() -> Vec<DatasetSpec> {
    use Family::*;
    let rows: [(&'static str, Family, usize, usize); 13] = [
        ("citeseer", Forest, 693_947, 312_282),
        ("citeseerx", PowerLaw, 6_540_399, 15_011_259),
        ("cit-Patents", PowerLaw, 3_774_768, 16_518_947),
        ("email", Forest, 231_000, 223_004),
        ("go_uniprot", Tree, 6_967_956, 34_770_235),
        ("lj", PowerLaw, 971_232, 1_024_140),
        ("mapped_100K", Tree, 2_658_702, 2_660_628),
        ("mapped_1M", Tree, 9_387_448, 9_440_404),
        ("uniprotenc_100m", Forest, 16_087_295, 16_087_293),
        ("uniprotenc_150m", Forest, 25_037_600, 25_037_598),
        ("uniprotenc_22m", Forest, 1_595_444, 1_595_442),
        ("web", PowerLaw, 371_764, 517_805),
        ("wiki", PowerLaw, 2_281_879, 2_311_570),
    ];
    rows.iter()
        .map(|&(name, family, v, e)| DatasetSpec {
            name,
            family,
            paper_vertices: v,
            paper_edges: e,
            small: false,
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_matches_table1_shape() {
        assert_eq!(small_datasets().len(), 14);
        assert_eq!(large_datasets().len(), 13);
    }

    #[test]
    fn generation_is_deterministic() {
        let spec = &small_datasets()[0];
        let a = spec.generate(0.05);
        let b = spec.generate(0.05);
        assert_eq!(a.graph(), b.graph());
    }

    #[test]
    fn scale_shrinks_graphs() {
        let spec = &small_datasets()[3]; // arxiv
        let d = spec.generate(0.02);
        assert!(d.num_vertices() < spec.paper_vertices / 10);
        assert!(d.num_vertices() >= 16);
    }

    #[test]
    fn small_specs_generate_roughly_right_sizes() {
        for spec in small_datasets() {
            let d = spec.generate(0.1);
            let want_n = (spec.paper_vertices as f64 * 0.1) as usize;
            assert!(
                (d.num_vertices() as f64) >= want_n as f64 * 0.99,
                "{}: n={} want≈{want_n}",
                spec.name,
                d.num_vertices()
            );
            // Edge counts are approximate (dedup/clamping) but must be
            // within 2x of target for the density to be comparable.
            let want_m = (spec.paper_edges as f64 * 0.1).max(8.0);
            assert!(
                (d.num_edges() as f64) > want_m * 0.4,
                "{}: m={} want≈{want_m}",
                spec.name,
                d.num_edges()
            );
        }
    }

    #[test]
    fn families_have_expected_sparsity() {
        for spec in small_datasets() {
            if matches!(spec.family, Family::Forest) {
                let d = spec.generate(0.2);
                assert!(d.num_edges() < d.num_vertices());
            }
        }
    }

    #[test]
    fn tiny_scale_floors_apply() {
        let spec = &small_datasets()[11]; // reactome, 901 vertices
        let d = spec.generate(0.001);
        assert!(d.num_vertices() >= 16);
    }
}
