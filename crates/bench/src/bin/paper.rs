//! `paper` — regenerate the tables and figures of the VLDB 2013
//! reachability-oracle evaluation on the synthetic dataset analogues.
//!
//! ```text
//! paper <command> [--scale-small=F] [--scale-large=F] [--queries=N]
//!                 [--budget-mb=N] [--time-cap-s=N] [--seed=N]
//!
//! commands:
//!   table1   dataset statistics (Table 1)
//!   table2   query time, equal load, small graphs (Table 2)
//!   table3   query time, random load, small graphs (Table 3)
//!   table4   construction time, small graphs (Table 4)
//!   table5   query time, equal load, large graphs (Table 5)
//!   table6   query time, random load, large graphs (Table 6)
//!   table7   construction time, large graphs (Table 7)
//!   fig3     index size, small graphs (Figure 3)
//!   fig4     index size, large graphs (Figure 4)
//!   small    tables 2-4 + figure 3 from one measured suite
//!   large    tables 5-7 + figure 4 from one measured suite
//!   all      everything above
//!
//!   backbone    hierarchy shrinkage per level (§4.1)
//!   verify      validate every method against ground truth
//!   ablation    DL order / HL eps / core-labeler tables
//!   extras      small suite incl. DUAL + CHAIN (§2.1 references)
//!   throughput  multi-core DL query scaling
//!   scarab-depth  recursive SCARAB study (§2.3's open option)
//! ```
//!
//! Query-time cells are the total milliseconds for the whole workload
//! (`--queries`, default 20 000), mirroring the paper's "running time
//! of a total of 100,000 reachability queries". "—" marks builds that
//! exceeded the memory or time budget, exactly like the paper's
//! out-of-memory / 24-hour entries.

use std::time::Duration;

use hoplite_bench::runner::{run_suite, MethodId, RunConfig};
use hoplite_bench::tables::{render, render_suite, Projection};
use hoplite_bench::{large_datasets, small_datasets, DatasetSpec};

const USAGE: &str = "\
paper — regenerate the VLDB 2013 reachability-oracle evaluation

usage: paper <command> [--scale-small=F] [--scale-large=F] [--queries=N]
                       [--budget-mb=N] [--time-cap-s=N] [--seed=N]

commands:
  table1   dataset statistics (Table 1)
  table2   query time, equal load, small graphs (Table 2)
  table3   query time, random load, small graphs (Table 3)
  table4   construction time, small graphs (Table 4)
  table5   query time, equal load, large graphs (Table 5)
  table6   query time, random load, large graphs (Table 6)
  table7   construction time, large graphs (Table 7)
  fig3     index size, small graphs (Figure 3)
  fig4     index size, large graphs (Figure 4)
  small    tables 2-4 + figure 3 from one measured suite
  large    tables 5-7 + figure 4 from one measured suite
  all      everything above

  backbone      hierarchy shrinkage per level (§4.1)
  verify        validate every method against ground truth
  smoke         fast non-timed sanity check (one dataset, one method)
  ablation      DL order / HL eps / core-labeler tables
  extras        small suite incl. DUAL + CHAIN (§2.1 references)
  throughput    multi-core DL query scaling
  scarab-depth  recursive SCARAB study (§2.3's open option)
  perf          hot-path JSON benchmark: build engines, query filters,
                thread scaling, and a wire sweep through a reactor server
                (flags: --quick --check --out=FILE --seed=N --no-wire)
  help          this text";

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(command) = args.first().cloned() else {
        eprintln!("{USAGE}");
        std::process::exit(2);
    };
    if matches!(command.as_str(), "help" | "--help" | "-h") {
        println!("{USAGE}");
        return;
    }
    if command == "perf" {
        perf_cmd(&args[1..]);
        return;
    }
    // Hidden: the perf wire stage re-invokes this binary as the server
    // side of the sweep (own process == own fd budget).
    if command == "__wire-server" {
        wire_server_cmd(&args[1..]);
        return;
    }
    let mut cfg = RunConfig::default();
    for a in &args[1..] {
        let Some((key, val)) = a.split_once('=') else {
            eprintln!("unrecognized flag {a} (expected --key=value)");
            std::process::exit(2);
        };
        match key {
            "--scale-small" => cfg.scale_small = parse(a, val),
            "--scale-large" => cfg.scale_large = parse(a, val),
            "--queries" => cfg.queries = parse::<u64>(a, val) as usize,
            "--budget-mb" => cfg.budget_bytes = parse::<u64>(a, val) << 20,
            "--time-cap-s" => cfg.time_budget = Duration::from_secs(parse(a, val)),
            "--seed" => cfg.seed = parse(a, val),
            _ => {
                eprintln!("unknown flag {key}");
                std::process::exit(2);
            }
        }
    }

    let small_all = [
        Projection::EqualQuery,
        Projection::RandomQuery,
        Projection::Construction,
        Projection::IndexSize,
    ];
    match command.as_str() {
        "table1" => table1(&cfg),
        "table2" => small_suite(&cfg, &[Projection::EqualQuery]),
        "table3" => small_suite(&cfg, &[Projection::RandomQuery]),
        "table4" => small_suite(&cfg, &[Projection::Construction]),
        "fig3" => small_suite(&cfg, &[Projection::IndexSize]),
        "table5" => large_suite(&cfg, &[Projection::EqualQuery]),
        "table6" => large_suite(&cfg, &[Projection::RandomQuery]),
        "table7" => large_suite(&cfg, &[Projection::Construction]),
        "fig4" => large_suite(&cfg, &[Projection::IndexSize]),
        "small" => small_suite(&cfg, &small_all),
        "large" => large_suite(&cfg, &small_all),
        "backbone" => backbone_stats(&cfg),
        "verify" => verify(&cfg),
        "smoke" => smoke(&cfg),
        "ablation" => ablation(&cfg),
        "extras" => extras(&cfg),
        "throughput" => throughput(&cfg),
        "scarab-depth" => scarab_depth(&cfg),
        "all" => {
            table1(&cfg);
            small_suite(&cfg, &small_all);
            large_suite(&cfg, &small_all);
            backbone_stats(&cfg);
        }
        other => {
            eprintln!("unknown command {other}");
            std::process::exit(2);
        }
    }
}

/// `paper perf [--quick] [--check] [--out=FILE] [--seed=N] [--no-wire]`
/// — runs the hot-path suite (`hoplite_bench::perf`), prints the JSON
/// report to stdout (and `--out=FILE`), and with `--check` enforces the
/// CI invariants (filter/auto/scaling/metrics-overhead/wire gates; see
/// `PerfReport::check`). `--no-wire` skips the wire sweep, for
/// sandboxes without loopback TCP.
fn perf_cmd(args: &[String]) {
    use hoplite_bench::perf::{run_perf, PerfOptions};
    // The wire stage re-invokes this very binary as the server child.
    let mut opts = PerfOptions {
        wire_server: std::env::current_exe().ok(),
        ..PerfOptions::default()
    };
    let mut check = false;
    let mut out: Option<String> = None;
    for a in args {
        match a.as_str() {
            "--quick" => opts.quick = true,
            "--check" => check = true,
            "--no-wire" => opts.wire_server = None,
            other => match other.split_once('=') {
                Some(("--out", path)) => out = Some(path.to_string()),
                Some(("--seed", val)) => opts.seed = parse(a, val),
                _ => {
                    eprintln!(
                        "unknown perf flag {a} \
                         (expected --quick, --check, --no-wire, --out=, --seed=)"
                    );
                    std::process::exit(2);
                }
            },
        }
    }
    let report = run_perf(&opts);
    let json = report.to_json();
    println!("{json}");
    if let Some(path) = &out {
        if let Err(e) = std::fs::write(path, format!("{json}\n")) {
            eprintln!("perf: could not write {path}: {e}");
            std::process::exit(1);
        }
        eprintln!("# perf: report written to {path}");
    }
    eprintln!(
        "# perf: build {:.0} ms (seed merge) -> {:.0} ms (auto), {:.2}x; \
         query {:.2} Mq/s (unfiltered) -> {:.2} Mq/s (filtered), hit rate {:.1}%; \
         stages filter/sig/merge = {}/{}/{}",
        report.build.seed_merge_ms,
        report.build.auto_ms,
        report.build_speedup(),
        report.main.unfiltered_qps / 1e6,
        report.main.filtered_qps / 1e6,
        report.main.filter_hit_rate * 100.0,
        report.main.tally.filter_decided,
        report.main.tally.signature_cut,
        report.main.tally.merged,
    );
    for f in &report.families {
        eprintln!(
            "# perf[{}]: build {:.0} ms; {:.2} Mq/s filtered ({:.2} unfiltered), hit rate {:.1}%",
            f.kind,
            f.build_auto_ms,
            f.filtered_qps / 1e6,
            f.unfiltered_qps / 1e6,
            f.filter_hit_rate * 100.0
        );
    }
    eprintln!(
        "# perf[cold]: open {:.2} ms owned (v1) -> {:.2} ms mapped (v3), {:.1}x \
         ({:.2} ms unverified; files {} / {} bytes)",
        report.cold_start.owned_open_ms,
        report.cold_start.mapped_open_ms,
        report.cold_start.speedup(),
        report.cold_start.mapped_unverified_open_ms,
        report.cold_start.v1_file_bytes,
        report.cold_start.v3_file_bytes,
    );
    for s in &report.scaling {
        eprintln!(
            "# perf[scaling]: {} thr -> build {:.0} ms, query {:.2} Mq/s",
            s.threads,
            s.build_ms,
            s.query_qps / 1e6
        );
    }
    eprintln!(
        "# perf[metrics]: chunked query {:.2} Mq/s plain -> {:.2} Mq/s instrumented \
         ({:.1}% retained)",
        report.metrics_overhead.plain_qps / 1e6,
        report.metrics_overhead.instrumented_qps / 1e6,
        report.metrics_overhead.ratio() * 100.0,
    );
    eprintln!(
        "# perf[dynamic]: {} mutations at {:.0}/s ({} rejected), {} rebuilds in \
         background; {} reads, p50/p99 = {:.1}/{:.1} µs ({} overlapped a rebuild, \
         p99 {:.1} µs, max {:.2} ms)",
        report.dynamic.mutations,
        report.dynamic.mutation_qps,
        report.dynamic.rejected,
        report.dynamic.rebuilds,
        report.dynamic.reads,
        report.dynamic.read_p50_ns as f64 / 1e3,
        report.dynamic.read_p99_ns as f64 / 1e3,
        report.dynamic.reads_during_rebuild,
        report.dynamic.read_p99_during_rebuild_ns as f64 / 1e3,
        report.dynamic.read_max_during_rebuild_ns as f64 / 1e6,
    );
    if let Some(wire) = &report.wire {
        for s in &wire.steps {
            eprintln!(
                "# perf[wire]: {} conns -> {:.0} q/s over TCP ({} queries, {} errors; \
                 reply p50/p99/p99.9 = {:.0}/{:.0}/{:.0} µs)",
                s.connections,
                s.qps,
                s.queries,
                s.errors,
                s.p50_ns as f64 / 1e3,
                s.p99_ns as f64 / 1e3,
                s.p999_ns as f64 / 1e3,
            );
        }
    } else {
        eprintln!("# perf[wire]: skipped (--no-wire)");
    }
    if check {
        if let Err(msg) = report.check() {
            eprintln!("perf check FAILED: {msg}");
            std::process::exit(1);
        }
        eprintln!("# perf: checks passed");
    }
}

/// `paper __wire-server <vertices> <edges> <seed> [<hwm> <pairs>
/// <deadline_ms>]` — the server side of the perf wire sweep and (with
/// the trailing budget args) of the overload drill. Builds an oracle
/// over the same
/// `random_dag` family the headline numbers use, binds a reactor-mode
/// server (thread pool where no reactor exists) on an ephemeral
/// loopback port, prints `ADDR <addr>` so the parent can connect, and
/// serves until stdin reaches EOF — which is how the parent says
/// "done" without signals.
fn wire_server_cmd(args: &[String]) {
    use hoplite_core::Oracle;
    use hoplite_server::{Registry, ServeMode, Server, ServerConfig};
    use std::io::{Read, Write};
    use std::sync::Arc;

    if args.len() != 3 && args.len() != 6 {
        eprintln!(
            "usage: paper __wire-server <vertices> <edges> <seed> \
             [<shed_inflight_hwm> <shed_pairs> <deadline_ms>]"
        );
        std::process::exit(2);
    }
    let n: usize = parse("vertices", &args[0]);
    let m: usize = parse("edges", &args[1]);
    let seed: u64 = parse("seed", &args[2]);

    let dag = hoplite_graph::gen::random_dag(n, m, seed);
    let oracle = Oracle::new(dag.graph());
    let registry = Arc::new(Registry::new());
    registry
        .insert_frozen("bench", oracle)
        .expect("fresh registry accepts one namespace");
    let mut config = ServerConfig {
        mode: if cfg!(unix) {
            ServeMode::Reactor
        } else {
            ServeMode::ThreadPool
        },
        ..ServerConfig::default()
    };
    // The overload drill passes admission budgets; zero means "leave
    // that knob off".
    if args.len() == 6 {
        let hwm: usize = parse("shed_inflight_hwm", &args[3]);
        let pairs: usize = parse("shed_pairs", &args[4]);
        let deadline_ms: u64 = parse("deadline_ms", &args[5]);
        if hwm > 0 {
            config.shed_inflight_hwm = Some(hwm);
        }
        if pairs > 0 {
            config.shed_coalesced_pairs = Some(pairs);
        }
        if deadline_ms > 0 {
            config.request_deadline = Some(Duration::from_millis(deadline_ms));
        }
    }
    let handle = Server::bind("127.0.0.1:0", registry, config).expect("bind loopback server");
    println!("ADDR {}", handle.local_addr());
    std::io::stdout().flush().expect("flush address line");

    let mut sink = Vec::new();
    let _ = std::io::stdin().read_to_end(&mut sink);
    handle.shutdown();
}

fn parse<T: std::str::FromStr>(flag: &str, val: &str) -> T {
    val.parse().unwrap_or_else(|_| {
        eprintln!("could not parse flag {flag}");
        std::process::exit(2);
    })
}

/// Table 1: dataset statistics — the paper's sizes next to the
/// generated analogue sizes at the current scale, plus the structural
/// quantities (height, closure density) that drive index behaviour.
fn table1(cfg: &RunConfig) {
    use hoplite_graph::stats::estimate_closure_density;
    let headers: Vec<String> = [
        "paper |V|",
        "paper |E|",
        "scale",
        "gen |V|",
        "gen |E|",
        "height",
        "tc-density",
    ]
    .iter()
    .map(|s| s.to_string())
    .collect();
    let mut rows = Vec::new();
    let mut cells = Vec::new();
    let specs: Vec<DatasetSpec> = small_datasets()
        .into_iter()
        .chain(large_datasets())
        .collect();
    for spec in specs {
        let scale = if spec.small {
            cfg.scale_small
        } else {
            cfg.scale_large
        };
        let dag = spec.generate(scale);
        let density = estimate_closure_density(&dag, 500, cfg.seed);
        rows.push(spec.name.to_string());
        cells.push(vec![
            spec.paper_vertices.to_string(),
            spec.paper_edges.to_string(),
            format!("{scale}"),
            dag.num_vertices().to_string(),
            dag.num_edges().to_string(),
            dag.height().to_string(),
            format!("{density:.4}"),
        ]);
    }
    println!(
        "{}",
        render(
            "Table 1: Real datasets (paper sizes vs generated analogues)",
            "Dataset",
            &headers,
            &rows,
            &cells
        )
    );
}

/// Ablation tables for the design choices DESIGN.md calls out:
/// DL vertex order (§5.2), HL backbone locality ε and core-size stop
/// rule (§4.1), and the Formula-3 core labeler (Algorithm 1, Line 2).
/// Complements the Criterion benches with paper-style tables.
fn ablation(cfg: &RunConfig) {
    use hoplite_bench::workload::equal_workload;
    use hoplite_core::{
        CoreLabeler, DistributionLabeling, DlConfig, HierarchicalLabeling, HlConfig, OrderKind,
        ReachIndex,
    };
    use std::time::Instant;

    let picks = ["agrocyc", "arxiv", "p2p"];
    let specs: Vec<DatasetSpec> = small_datasets()
        .into_iter()
        .filter(|s| picks.contains(&s.name))
        .collect();

    // --- DL vertex order. -------------------------------------------
    let orders = [
        ("deg-product", OrderKind::DegProduct),
        ("deg-sum", OrderKind::DegSum),
        ("random", OrderKind::Random(cfg.seed)),
        ("topological", OrderKind::Topological),
        // §5.2's "principled but needs the TC" order — the ablation
        // quantifies how close the cheap deg-product proxy gets.
        ("cov-size", OrderKind::CoverSize),
    ];
    let mut rows = Vec::new();
    let mut cells = Vec::new();
    for spec in &specs {
        let dag = spec.generate(cfg.scale_small);
        let load = equal_workload(&dag, cfg.queries.min(20_000), cfg.seed);
        for (name, order) in orders {
            let t = Instant::now();
            let dl = DistributionLabeling::build(
                &dag,
                &DlConfig {
                    order,
                    ..DlConfig::default()
                },
            );
            let build_ms = t.elapsed().as_secs_f64() * 1e3;
            let t = Instant::now();
            let mut hits = 0usize;
            for &(u, v) in &load.pairs {
                hits += dl.query(u, v) as usize;
            }
            let query_ms = t.elapsed().as_secs_f64() * 1e3;
            std::hint::black_box(hits);
            rows.push(format!("{}/{name}", spec.name));
            cells.push(vec![
                format!("{build_ms:.1}"),
                format!("{:.1}", dl.labeling().total_entries() as f64 / 1e3),
                format!("{query_ms:.1}"),
            ]);
        }
    }
    println!(
        "{}",
        render(
            "Ablation A: DL vertex order (build ms / label k-ints / equal-load query ms, §5.2)",
            "Dataset/order",
            &["build".into(), "k-ints".into(), "query".into()],
            &rows,
            &cells
        )
    );

    // --- HL locality ε and core limit. --------------------------------
    let mut rows = Vec::new();
    let mut cells = Vec::new();
    for spec in &specs {
        let dag = spec.generate(cfg.scale_small);
        let load = equal_workload(&dag, cfg.queries.min(20_000), cfg.seed);
        for eps in [1u32, 2, 3] {
            let hl_cfg = HlConfig {
                eps,
                ..HlConfig::default()
            };
            let t = Instant::now();
            let hl = HierarchicalLabeling::build(&dag, &hl_cfg);
            let build_ms = t.elapsed().as_secs_f64() * 1e3;
            let t = Instant::now();
            let mut hits = 0usize;
            for &(u, v) in &load.pairs {
                hits += hl.query(u, v) as usize;
            }
            let query_ms = t.elapsed().as_secs_f64() * 1e3;
            std::hint::black_box(hits);
            rows.push(format!("{}/eps={eps}", spec.name));
            cells.push(vec![
                format!("{build_ms:.1}"),
                format!("{:.1}", hl.labeling().total_entries() as f64 / 1e3),
                format!("{query_ms:.1}"),
                format!("{}", hl.level_sizes().len()),
            ]);
        }
    }
    println!(
        "{}",
        render(
            "Ablation B: HL backbone locality eps (build ms / label k-ints / query ms / levels, §4)",
            "Dataset/eps",
            &["build".into(), "k-ints".into(), "query".into(), "levels".into()],
            &rows,
            &cells
        )
    );

    // --- Core labeler: DL vs Formula 3. -------------------------------
    let mut rows = Vec::new();
    let mut cells = Vec::new();
    for spec in &specs {
        let dag = spec.generate(cfg.scale_small);
        for (name, core_labeler) in [
            ("dl-core", CoreLabeler::Distribution),
            ("formula3", CoreLabeler::EpsilonNeighborhood),
        ] {
            let hl_cfg = HlConfig {
                core_labeler,
                core_size_limit: 64,
                ..HlConfig::default()
            };
            let t = Instant::now();
            let hl = HierarchicalLabeling::build(&dag, &hl_cfg);
            let build_ms = t.elapsed().as_secs_f64() * 1e3;
            rows.push(format!("{}/{name}", spec.name));
            cells.push(vec![
                format!("{build_ms:.1}"),
                format!("{:.1}", hl.labeling().total_entries() as f64 / 1e3),
                if hl.core_formula3_used() {
                    "yes"
                } else {
                    "no (fallback)"
                }
                .into(),
            ]);
        }
    }
    println!(
        "{}",
        render(
            "Ablation C: core labeler (build ms / label k-ints / Formula 3 used, Alg. 1 Line 2)",
            "Dataset/core",
            &["build".into(), "k-ints".into(), "formula3".into()],
            &rows,
            &cells
        )
    );
}

/// Extended small-graph suite: the paper's 12 columns plus the §2.1
/// TC-compression references it describes but does not re-run — dual
/// labeling [36] and chain-cover compression [18,7].
fn extras(cfg: &RunConfig) {
    let specs = small_datasets();
    eprintln!(
        "# building 14 methods x {} small datasets (scale {}) ...",
        specs.len(),
        cfg.scale_small
    );
    let suite = run_suite(&specs, &MethodId::extended_columns(), cfg);
    for (p, title) in [
        (
            Projection::EqualQuery,
            "Extras: equal-load query time (ms) incl. DUAL and CHAIN",
        ),
        (
            Projection::Construction,
            "Extras: construction time (ms) incl. DUAL and CHAIN",
        ),
        (
            Projection::IndexSize,
            "Extras: index size (1000s of integers) incl. DUAL and CHAIN",
        ),
    ] {
        println!("{}", render_suite(title, &suite, p));
    }
}

/// Recursive SCARAB study. §2.3 observes that "theoretically, the
/// reachability backbone could be applied recursively; this may
/// further slow down query performance. In [23], this option is not
/// studied." — here we measure it: GRAIL behind a depth-0/1/2
/// backbone stack, reporting backbone size, build time, and
/// equal-load query time per depth.
fn scarab_depth(cfg: &RunConfig) {
    use hoplite_baselines::{Grail, Scarab};
    use hoplite_bench::workload::equal_workload;
    use hoplite_core::ReachIndex;
    use std::time::Instant;

    let picks = ["agrocyc", "arxiv", "p2p"];
    let mut rows = Vec::new();
    let mut cells = Vec::new();
    for spec in small_datasets()
        .into_iter()
        .filter(|s| picks.contains(&s.name))
    {
        let dag = spec.generate(cfg.scale_small);
        let load = equal_workload(&dag, cfg.queries.min(20_000), cfg.seed);
        let mut measure = |label: &str, verts: usize, build: &dyn Fn() -> Box<dyn ReachIndex>| {
            let t = Instant::now();
            let idx = build();
            let build_ms = t.elapsed().as_secs_f64() * 1e3;
            let t = Instant::now();
            let mut hits = 0usize;
            for &(u, v) in &load.pairs {
                hits += idx.query(u, v) as usize;
            }
            let query_ms = t.elapsed().as_secs_f64() * 1e3;
            std::hint::black_box(hits);
            rows.push(format!("{}/{label}", spec.name));
            cells.push(vec![
                verts.to_string(),
                format!("{build_ms:.1}"),
                format!("{query_ms:.1}"),
            ]);
        };
        let seed = cfg.seed;
        measure("depth0", dag.num_vertices(), &|| {
            Box::new(Grail::build(&dag, 5, seed))
        });
        let d1 = Scarab::build(&dag, 2, "GL*", |bb| Ok(Grail::build(bb, 5, seed)))
            .expect("grail never fails");
        let d1_size = d1.backbone_size();
        drop(d1);
        measure("depth1", d1_size, &|| {
            Box::new(Scarab::build(&dag, 2, "GL*", |bb| Ok(Grail::build(bb, 5, seed))).unwrap())
        });
        let d2 = Scarab::build(&dag, 2, "GL**", |bb| {
            Scarab::build(bb, 2, "GL*", |bb2| Ok(Grail::build(bb2, 5, seed)))
        })
        .expect("grail never fails");
        let d2_size = d2.inner().backbone_size();
        drop(d2);
        measure("depth2", d2_size, &|| {
            Box::new(
                Scarab::build(&dag, 2, "GL**", |bb| {
                    Scarab::build(bb, 2, "GL*", |bb2| Ok(Grail::build(bb2, 5, seed)))
                })
                .unwrap(),
            )
        });
    }
    println!(
        "{}",
        render(
            "Recursive SCARAB (GRAIL inner): innermost |V| / build ms / equal-load query ms",
            "Dataset/depth",
            &["inner |V|".into(), "build".into(), "query".into()],
            &rows,
            &cells
        )
    );
}

/// Multi-core query throughput of the frozen DL oracle
/// (`hoplite_core::parallel`): thread-count scaling per dataset.
fn throughput(cfg: &RunConfig) {
    use hoplite_bench::workload::equal_workload;
    use hoplite_core::parallel::measure_scaling;
    use hoplite_core::{DistributionLabeling, DlConfig};

    let picks = ["agrocyc", "arxiv", "p2p"];
    let mut rows = Vec::new();
    let mut cells = Vec::new();
    let widths = [1usize, 2, 4, 8];
    for spec in small_datasets()
        .into_iter()
        .filter(|s| picks.contains(&s.name))
    {
        let dag = spec.generate(cfg.scale_small);
        let dl = DistributionLabeling::build(&dag, &DlConfig::default());
        let load = equal_workload(&dag, cfg.queries.max(100_000), cfg.seed);
        let reports = measure_scaling(dl.labeling(), &load.pairs, &widths);
        rows.push(spec.name.to_string());
        cells.push(
            reports
                .iter()
                .map(|r| format!("{:.2}", r.qps() / 1e6))
                .collect::<Vec<_>>(),
        );
    }
    let headers: Vec<String> = widths.iter().map(|t| format!("{t} thr (Mq/s)")).collect();
    println!(
        "{}",
        render(
            "Query throughput scaling of the DL oracle (million queries/s)",
            "Dataset",
            &headers,
            &rows,
            &cells
        )
    );
}

/// Smoke verification: every method on every small analogue at a tiny
/// scale, validated against workload ground truth. Exits non-zero on
/// the first wrong answer — run this before trusting any table.
fn verify(cfg: &RunConfig) {
    use hoplite_bench::runner::{build_method, validate};
    use hoplite_bench::workload::{equal_workload, random_workload};
    let scale = cfg.scale_small.min(0.05);
    let mut checked = 0usize;
    let mut skipped = 0usize;
    for spec in small_datasets() {
        let dag = spec.generate(scale);
        let equal = equal_workload(&dag, 1_000, cfg.seed);
        let random = random_workload(&dag, 1_000, cfg.seed ^ 1);
        for mid in MethodId::paper_columns() {
            let outcome = build_method(mid, &dag, cfg);
            match outcome.index {
                Some(idx) => {
                    if !validate(idx.as_ref(), &equal) || !validate(idx.as_ref(), &random) {
                        eprintln!("FAIL: {} on {} gave a wrong answer", mid.name(), spec.name);
                        std::process::exit(1);
                    }
                    checked += 1;
                }
                None => skipped += 1,
            }
        }
    }
    println!(
        "verify: {checked} method/dataset builds validated against ground truth \
         ({skipped} skipped on budget), 0 mismatches"
    );
}

/// Fast non-timed sanity check for CI: one tiny dataset, the paper's
/// recommended method, validated against workload ground truth. Proves
/// the harness still launches end to end in well under a second.
fn smoke(cfg: &RunConfig) {
    use hoplite_bench::runner::{build_method, validate};
    use hoplite_bench::workload::random_workload;
    let spec = small_datasets()
        .into_iter()
        .next()
        .expect("at least one small dataset");
    let dag = spec.generate(cfg.scale_small.min(0.05));
    let workload = random_workload(&dag, 500, cfg.seed);
    let outcome = build_method(MethodId::Dl, &dag, cfg);
    let idx = outcome
        .index
        .unwrap_or_else(|| panic!("DL build failed: {:?}", outcome.error));
    if !validate(idx.as_ref(), &workload) {
        eprintln!("FAIL: smoke validation mismatch on {}", spec.name);
        std::process::exit(1);
    }
    println!(
        "smoke ok: {} ({} vertices, {} edges), DL validated on {} queries",
        spec.name,
        dag.num_vertices(),
        dag.num_edges(),
        workload.len()
    );
}

/// Hierarchy shrinkage per dataset (§4.1: "the vertex set V_i shrinks
/// very quickly"; SCARAB reports backbones near 1/10 of |V|). One row
/// per dataset, one column per decomposition level.
fn backbone_stats(cfg: &RunConfig) {
    use hoplite_core::hierarchy::{Hierarchy, HierarchyConfig};
    let hcfg = HierarchyConfig {
        eps: 2,
        core_size_limit: 32,
        max_levels: 7,
    };
    let mut rows = Vec::new();
    let mut cells: Vec<Vec<String>> = Vec::new();
    let mut max_levels = 0usize;
    for spec in small_datasets() {
        let dag = spec.generate(cfg.scale_small);
        let hier = Hierarchy::build(&dag, &hcfg);
        let sizes = hier.level_sizes();
        max_levels = max_levels.max(sizes.len());
        rows.push(spec.name.to_string());
        cells.push(sizes.iter().map(|s| s.to_string()).collect());
    }
    for row in &mut cells {
        row.resize(max_levels, String::new());
    }
    let headers: Vec<String> = (0..max_levels).map(|i| format!("|V{i}|")).collect();
    println!(
        "{}",
        render(
            "Hierarchy shrinkage (eps=2) on small analogues (Section 4.1)",
            "Dataset",
            &headers,
            &rows,
            &cells
        )
    );
}

fn small_suite(cfg: &RunConfig, projections: &[Projection]) {
    let specs = small_datasets();
    eprintln!(
        "# building 12 methods x {} small datasets (scale {}) ...",
        specs.len(),
        cfg.scale_small
    );
    let suite = run_suite(&specs, &MethodId::paper_columns(), cfg);
    for &p in projections {
        let title = match p {
            Projection::EqualQuery => {
                "Table 2: Query Time (ms) Based on Equal Query of Small Real Datasets"
            }
            Projection::RandomQuery => {
                "Table 3: Query Time (ms) Based on Random Query of Small Real Datasets"
            }
            Projection::Construction => "Table 4: Construction Time (ms) of Small Real Datasets",
            Projection::IndexSize => {
                "Figure 3: Index Size on Small Real Graphs (1000s of integers)"
            }
        };
        println!("{}", render_suite(title, &suite, p));
    }
}

fn large_suite(cfg: &RunConfig, projections: &[Projection]) {
    let specs = large_datasets();
    eprintln!(
        "# building 12 methods x {} large datasets (scale {}) ...",
        specs.len(),
        cfg.scale_large
    );
    let suite = run_suite(&specs, &MethodId::paper_columns(), cfg);
    for &p in projections {
        let title = match p {
            Projection::EqualQuery => {
                "Table 5: Query Time (ms) Based on Equal Query of Large Real Datasets"
            }
            Projection::RandomQuery => {
                "Table 6: Query Time (ms) Based on Random Query of Large Real Datasets"
            }
            Projection::Construction => "Table 7: Construction Time (ms) of Large Real Datasets",
            Projection::IndexSize => {
                "Figure 4: Index Size on Large Real Graphs (1000s of integers)"
            }
        };
        println!("{}", render_suite(title, &suite, p));
    }
}
