//! Query-filter stack ablation: latency with each pre-filter layer
//! toggled on three graph families.
//!
//! Layers stack cheap-first the way [`hoplite_core::QueryFilters`]
//! applies them: `none` is the bare label intersection, `levels` adds
//! the topological-level negative cut, `intervals` adds the GRAIL-style
//! min-post cut, and `full` is the shipped stack (levels + spanning
//! -tree positive cut + degree shortcuts + intervals). The gap between
//! adjacent rows is the marginal value of that layer on the family's
//! workload shape.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::time::Duration;

use hoplite_core::{DistributionLabeling, DlConfig, QueryFilters};
use hoplite_graph::gen;
use hoplite_graph::{Dag, VertexId};

const N: usize = 3_000;
const QUERIES: usize = 20_000;

fn families() -> [(&'static str, Dag); 3] {
    [
        ("random", gen::random_dag(N, 4 * N, 17)),
        ("tree_plus", gen::tree_plus_dag(N, N / 5, 17)),
        ("power_law", gen::power_law_dag(N, 3 * N, 17)),
    ]
}

fn bench_filter_stack(c: &mut Criterion) {
    for (family, dag) in families() {
        let dl = DistributionLabeling::build(&dag, &DlConfig::default());
        let labeling = dl.labeling();
        let filters = QueryFilters::build(&dag);
        let mut rng = gen::Rng::new(0xF1);
        let pairs: Vec<(VertexId, VertexId)> = (0..QUERIES)
            .map(|_| (rng.gen_index(N) as u32, rng.gen_index(N) as u32))
            .collect();

        let mut group = c.benchmark_group(format!("filters/{family}"));
        group.sample_size(10);
        group.measurement_time(Duration::from_secs(2));
        group.throughput(Throughput::Elements(QUERIES as u64));

        group.bench_with_input(BenchmarkId::from_parameter("none"), &pairs, |b, pairs| {
            b.iter(|| {
                let mut hits = 0usize;
                for &(u, v) in pairs {
                    hits += labeling.query(u, v) as usize;
                }
                std::hint::black_box(hits)
            })
        });
        group.bench_with_input(BenchmarkId::from_parameter("levels"), &pairs, |b, pairs| {
            b.iter(|| {
                let mut hits = 0usize;
                for &(u, v) in pairs {
                    let reach = if u == v {
                        true
                    } else if filters.level_cut(u, v) {
                        false
                    } else {
                        labeling.query(u, v)
                    };
                    hits += reach as usize;
                }
                std::hint::black_box(hits)
            })
        });
        group.bench_with_input(
            BenchmarkId::from_parameter("intervals"),
            &pairs,
            |b, pairs| {
                b.iter(|| {
                    let mut hits = 0usize;
                    for &(u, v) in pairs {
                        let reach = if u == v {
                            true
                        } else if filters.level_cut(u, v) || filters.interval_cut(u, v) {
                            false
                        } else {
                            labeling.query(u, v)
                        };
                        hits += reach as usize;
                    }
                    std::hint::black_box(hits)
                })
            },
        );
        group.bench_with_input(BenchmarkId::from_parameter("full"), &pairs, |b, pairs| {
            b.iter(|| {
                let mut hits = 0usize;
                for &(u, v) in pairs {
                    let reach = match filters.check(u, v) {
                        Some(decided) => decided,
                        None => labeling.query(u, v),
                    };
                    hits += reach as usize;
                }
                std::hint::black_box(hits)
            })
        });
        group.finish();
    }
}

criterion_group!(benches, bench_filter_stack);
criterion_main!(benches);
