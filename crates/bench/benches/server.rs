//! Wire-level serving throughput (`hoplite-server`).
//!
//! The `throughput` bench measures the in-process batch path; this one
//! measures the same frozen oracle served over TCP loopback — framing,
//! decode, registry lookup, batch fan-out, reply encode — so the
//! serving-tier overhead over `par_query_batch` is visible. Single
//! REACH round-trips bound per-query latency; BATCH frames amortize
//! it.

use std::sync::Arc;
use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

use hoplite_core::Oracle;
use hoplite_graph::gen::{self, Rng};
use hoplite_server::{Client, Registry, Server, ServerConfig};

fn bench_wire_throughput(c: &mut Criterion) {
    let dag = gen::power_law_dag(20_000, 60_000, 42);
    let n = dag.num_vertices();
    let oracle = Oracle::new(&dag.into_graph());

    let registry = Arc::new(Registry::new());
    registry.insert_frozen("bench", oracle).unwrap();
    let server = Server::bind("127.0.0.1:0", registry, ServerConfig::default()).unwrap();
    let mut client = Client::connect(server.local_addr()).unwrap();

    let mut rng = Rng::new(7);
    let pairs: Vec<(u32, u32)> = (0..4096)
        .map(|_| (rng.gen_index(n) as u32, rng.gen_index(n) as u32))
        .collect();

    let mut group = c.benchmark_group("server/wire");
    group.sample_size(10);
    group.measurement_time(Duration::from_secs(2));

    group.throughput(Throughput::Elements(1));
    group.bench_function("reach_single", |b| {
        let mut i = 0usize;
        b.iter(|| {
            let (u, v) = pairs[i % pairs.len()];
            i += 1;
            std::hint::black_box(client.reach("bench", u, v).unwrap())
        })
    });

    for batch in [64usize, 512, 4096] {
        group.throughput(Throughput::Elements(batch as u64));
        group.bench_with_input(
            BenchmarkId::new("reach_batch", batch),
            &batch,
            |b, &batch| {
                b.iter(|| {
                    std::hint::black_box(client.reach_batch("bench", &pairs[..batch]).unwrap())
                })
            },
        );
    }
    group.finish();
    server.shutdown();
}

criterion_group!(benches, bench_wire_throughput);
criterion_main!(benches);
