//! Construction-time benches (Tables 4 and 7 in miniature).
//!
//! One representative analogue per dataset family, all twelve methods.
//! The `paper` binary regenerates the full tables; this bench tracks
//! regressions on the hot construction paths with Criterion rigor.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;

use hoplite_bench::runner::{build_method, MethodId, RunConfig};
use hoplite_bench::small_datasets;

fn bench_construction(c: &mut Criterion) {
    let cfg = RunConfig {
        budget_bytes: 1 << 28,
        time_budget: Duration::from_secs(20),
        ..RunConfig::default()
    };
    let mut group = c.benchmark_group("construction");
    group.sample_size(10);
    group.measurement_time(Duration::from_secs(3));

    // kegg: tree-like metabolic; arxiv: dense citation; p2p: random.
    for name in ["kegg", "arxiv", "p2p"] {
        let spec = small_datasets()
            .into_iter()
            .find(|s| s.name == name)
            .expect("known dataset");
        // Scaled down so the slow baselines (2HOP) stay benchable.
        let dag = spec.generate(0.12);
        for mid in MethodId::paper_columns() {
            group.bench_with_input(BenchmarkId::new(mid.name(), name), &dag, |b, dag| {
                b.iter(|| {
                    let o = build_method(mid, dag, &cfg);
                    // Budget failures are valid outcomes for the
                    // heavyweight baselines on the dense analogue.
                    std::hint::black_box(o.build_ms)
                })
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_construction);
criterion_main!(benches);
