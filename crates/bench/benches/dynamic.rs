//! Bench for the dynamic-overlay extension (paper §7 future work,
//! `hoplite_core::dynamic`).
//!
//! Measures a mixed insert+query stream at different rebuild
//! thresholds: a tiny threshold rebuilds constantly (paying DL's
//! construction over and over), a huge one degrades query time (the
//! Δ-overlay BFS grows). The sweet spot in between is the point of the
//! design.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::time::Duration;

use hoplite_core::dynamic::DynamicOracle;
use hoplite_core::DlConfig;
use hoplite_graph::gen::{self, Rng};

fn bench_dynamic(c: &mut Criterion) {
    let base = gen::tree_plus_dag(5_000, 1_000, 3);
    let n = base.num_vertices();
    const OPS: usize = 2_000; // 5% insertions, 95% queries

    let mut group = c.benchmark_group("dynamic_mixed_stream");
    group.sample_size(10);
    group.measurement_time(Duration::from_secs(3));
    group.throughput(Throughput::Elements(OPS as u64));
    for threshold in [8usize, 64, 512] {
        group.bench_with_input(
            BenchmarkId::from_parameter(threshold),
            &threshold,
            |b, &threshold| {
                b.iter(|| {
                    let mut oracle =
                        DynamicOracle::with_config(base.clone(), DlConfig::default(), threshold);
                    let mut rng = Rng::new(7);
                    let mut acc = 0usize;
                    for i in 0..OPS {
                        let u = rng.gen_index(n) as u32;
                        let v = rng.gen_index(n) as u32;
                        if i % 20 == 0 {
                            let _ = oracle.insert_edge(u, v);
                        } else {
                            acc += oracle.query(u, v) as usize;
                        }
                    }
                    std::hint::black_box(acc)
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_dynamic);
criterion_main!(benches);
