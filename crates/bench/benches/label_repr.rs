//! Ablation: label representation (§1 of the paper).
//!
//! The paper attributes earlier reports of slow hop-labeling queries to
//! implementing `L_out`/`L_in` as *sets*: "employing a sorted
//! vector/array instead of a set can significantly eliminate the query
//! performance gap". This bench measures the same 10 000-query workload
//! against three intersection back-ends over identical DL labels:
//!
//! * sorted-`Vec` merge walk (what `hoplite` ships),
//! * `HashSet` membership probing (the historical implementation),
//! * per-query binary search of the smaller list into the larger.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::collections::HashSet;
use std::time::Duration;

use hoplite_bench::small_datasets;
use hoplite_bench::workload::equal_workload;
use hoplite_core::{sorted_intersect, DistributionLabeling, DlConfig};

fn bench_label_repr(c: &mut Criterion) {
    let dag = small_datasets()
        .into_iter()
        .find(|s| s.name == "arxiv")
        .expect("known dataset")
        .generate(0.25);
    let dl = DistributionLabeling::build(&dag, &DlConfig::default());
    let labeling = dl.labeling();
    let load = equal_workload(&dag, 10_000, 3);
    let n = dag.num_vertices() as u32;

    // Hash-set mirror of the same labels.
    let out_sets: Vec<HashSet<u32>> = (0..n)
        .map(|v| labeling.out_label(v).iter().copied().collect())
        .collect();
    let in_sets: Vec<HashSet<u32>> = (0..n)
        .map(|v| labeling.in_label(v).iter().copied().collect())
        .collect();

    let mut group = c.benchmark_group("label_repr");
    group.sample_size(20);
    group.measurement_time(Duration::from_secs(2));
    group.throughput(Throughput::Elements(load.len() as u64));

    group.bench_function("sorted_vec_merge", |b| {
        b.iter(|| {
            let mut hits = 0usize;
            for &(u, v) in &load.pairs {
                hits += (u == v || sorted_intersect(labeling.out_label(u), labeling.in_label(v)))
                    as usize;
            }
            std::hint::black_box(hits)
        })
    });

    group.bench_function("hash_set_probe", |b| {
        b.iter(|| {
            let mut hits = 0usize;
            for &(u, v) in &load.pairs {
                let (a, bset) = (&out_sets[u as usize], &in_sets[v as usize]);
                let (small, big) = if a.len() <= bset.len() {
                    (a, bset)
                } else {
                    (bset, a)
                };
                hits += (u == v || small.iter().any(|h| big.contains(h))) as usize;
            }
            std::hint::black_box(hits)
        })
    });

    group.bench_function("binary_search", |b| {
        b.iter(|| {
            let mut hits = 0usize;
            for &(u, v) in &load.pairs {
                let (a, bl) = (labeling.out_label(u), labeling.in_label(v));
                let (small, big) = if a.len() <= bl.len() {
                    (a, bl)
                } else {
                    (bl, a)
                };
                hits += (u == v || small.iter().any(|h| big.binary_search(h).is_ok())) as usize;
            }
            std::hint::black_box(hits)
        })
    });

    group.finish();
}

criterion_group!(benches, bench_label_repr);
criterion_main!(benches);
