//! Query-kernel ablation: what does each layer of the label store's
//! query path buy?
//!
//! Four variants answer the same negative-heavy random workload over
//! real Distribution-Labeling labels:
//!
//! * `merge`          — the plain sorted-merge intersection (the PR 3
//!   query kernel; range pre-check included).
//! * `adaptive`       — the size-adaptive kernel (8-lane unrolled
//!   merge vs galloping by length ratio), no signatures.
//! * `signature`      — the O(1) rank-band signature `AND` in front of
//!   the plain merge.
//! * `sig+adaptive`   — the shipped `Labeling::query` hot path.
//!
//! Three graph families bracket the design space: `random_dag` (the
//! headline workload), `deep_chain` (long, overlapping labels — the
//! merge-bound regime), and `kronecker` (scale-free skew, tiny
//! band-sparse labels — measured as the signature's best case and the
//! galloping path's home turf).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;

use hoplite_core::label::{sorted_intersect, sorted_intersect_adaptive};
use hoplite_core::{DistributionLabeling, DlConfig, Labeling};
use hoplite_graph::gen::{self, Rng};
use hoplite_graph::Dag;

fn workload(n: usize, queries: usize, seed: u64) -> Vec<(u32, u32)> {
    let mut rng = Rng::new(seed);
    (0..queries)
        .map(|_| (rng.gen_index(n) as u32, rng.gen_index(n) as u32))
        .collect()
}

fn bench_family(c: &mut Criterion, family: &str, dag: &Dag) {
    let dl = DistributionLabeling::build(dag, &DlConfig::default());
    let labeling: &Labeling = dl.labeling();
    let pairs = workload(dag.num_vertices(), 20_000, 0xFEED);

    let mut group = c.benchmark_group(format!("label_kernel/{family}"));
    group.sample_size(10);
    group.measurement_time(Duration::from_secs(2));
    group.bench_with_input(BenchmarkId::from_parameter("merge"), &pairs, |b, pairs| {
        b.iter(|| {
            let mut hits = 0usize;
            for &(u, v) in pairs {
                hits += sorted_intersect(labeling.out_label(u), labeling.in_label(v)) as usize;
            }
            std::hint::black_box(hits)
        })
    });
    group.bench_with_input(
        BenchmarkId::from_parameter("adaptive"),
        &pairs,
        |b, pairs| {
            b.iter(|| {
                let mut hits = 0usize;
                for &(u, v) in pairs {
                    hits += sorted_intersect_adaptive(labeling.out_label(u), labeling.in_label(v))
                        as usize;
                }
                std::hint::black_box(hits)
            })
        },
    );
    group.bench_with_input(
        BenchmarkId::from_parameter("signature"),
        &pairs,
        |b, pairs| {
            b.iter(|| {
                let mut hits = 0usize;
                for &(u, v) in pairs {
                    let alive = labeling.out_signature(u) & labeling.in_signature(v) != 0;
                    hits += (alive && sorted_intersect(labeling.out_label(u), labeling.in_label(v)))
                        as usize;
                }
                std::hint::black_box(hits)
            })
        },
    );
    group.bench_with_input(
        BenchmarkId::from_parameter("sig+adaptive"),
        &pairs,
        |b, pairs| {
            b.iter(|| {
                let mut hits = 0usize;
                for &(u, v) in pairs {
                    hits += labeling.query(u, v) as usize;
                }
                std::hint::black_box(hits)
            })
        },
    );
    group.finish();
}

fn bench_kernels(c: &mut Criterion) {
    bench_family(c, "random_dag", &gen::random_dag(6_000, 24_000, 7));
    bench_family(c, "deep_chain", &gen::deep_chain_dag(6_000, 24, 600, 7));
    bench_family(c, "kronecker", &gen::kronecker_dag(13, 24_000, 7));
}

criterion_group!(benches, bench_kernels);
criterion_main!(benches);
